// Figure 18: same comparison as Fig. 16 for (a) four-level and (b)
// five-level multigrid — a gradual degradation as levels are added.
#include <cstdio>

#include "bench_util.hpp"

using namespace columbia;

int main(int argc, char** argv) {
  bench::banner("Fig 18 — interconnects, 4- and 5-level multigrid",
                "speedup vs CPUs");
  bench::Reporter rep(argc, argv, "fig18_mg45_interconnects");
  const auto fx = bench::Nsu3dFixture::make(6);
  auto lm = fx.load_model();

  std::printf("\n(a) four-level multigrid:\n");
  bench::print_interconnect_series(lm, 4, 0, &rep, "mg4");
  std::printf("\n(b) five-level multigrid:\n");
  bench::print_interconnect_series(lm, 5, 0, &rep, "mg5");

  std::printf(
      "\npaper shape check: monotone growth of the InfiniBand gap from\n"
      "Fig. 17 through Fig. 16(b) as the hierarchy deepens.\n");
  return 0;
}
