// Ablation (paper Sec. III): line-implicit vs point-implicit smoothing on
// a stretched viscous mesh, and the effect of wall spacing (stiffness) on
// each. The line-implicit scheme's convergence should be insensitive to
// the degree of mesh stretching; the point scheme degrades.
#include <cstdio>

#include "bench_util.hpp"

using namespace columbia;

int main(int argc, char** argv) {
  bench::banner("Ablation — line-implicit vs point-implicit smoothing",
                "convergence after 40 W-cycles vs wall spacing");
  bench::Reporter rep(argc, argv, "ablation_line_solver");

  euler::FlowConditions fc;
  fc.mach = 0.75;
  fc.reynolds = 3e6;

  Table t({"wall spacing", "anisotropy", "point ratio", "line ratio",
           "line advantage"});
  for (real_t spacing : {1e-2, 1e-3, 1e-4}) {
    mesh::WingMeshSpec spec;
    spec.n_wrap = 32;
    spec.n_span = 4;
    spec.n_normal = 16;
    spec.wall_spacing = spacing;
    const auto m = mesh::make_wing_mesh(spec);
    const auto dm = mesh::compute_dual_metrics(m);

    real_t ratio[2];
    for (int k = 0; k < 2; ++k) {
      nsu3d::Nsu3dOptions opt;
      opt.mg_levels = 3;
      opt.smoother = k == 0 ? nsu3d::SmootherKind::PointImplicit
                            : nsu3d::SmootherKind::LineImplicit;
      nsu3d::Nsu3dSolver s(m, fc, opt);
      const auto h = s.solve(40, 10);
      ratio[k] = h.back() / h.front();
    }
    char aniso[32];
    std::snprintf(aniso, sizeof(aniso), "%.1e", dm.max_anisotropy(m));
    t.add_row({Table::num(spacing, 5), aniso, Table::num(ratio[0], 6),
               Table::num(ratio[1], 6), Table::num(ratio[0] / ratio[1], 1)});
  }
  t.print();
  rep.table("smoothers", t);

  std::printf(
      "\npaper shape check: the line-implicit advantage grows with mesh\n"
      "stretching; line-implicit convergence stays nearly flat.\n");
  return 0;
}
