// Figure 14(a): NSU3D multigrid convergence with 4, 5 and 6 agglomerated
// levels (W-cycle) on the wing configuration, M = 0.75, Re = 3e6.
//
// The paper's 72M-point case converges in ~800 W-cycles with 5-6 levels,
// with 4 levels visibly slower and the single grid hopeless. This harness
// runs the real solver on the in-repo wing mesh and reports the residual
// history; the expected *shape* is: more levels converge at least as fast
// per cycle, single grid trails far behind. A V-cycle ablation is included
// (the paper states the W-cycle is superior and uses it exclusively).
#include <cstdio>

#include "bench_util.hpp"

using namespace columbia;

int main(int argc, char** argv) {
  bench::banner("Fig 14a — NSU3D multigrid convergence (real solver)",
                "72M-pt case in the paper; scaled wing mesh here. "
                "Residual vs W-cycle for 1/2/3/4-level multigrid + V-cycle.");
  bench::Reporter rep(argc, argv, "fig14a_nsu3d_convergence");

  mesh::WingMeshSpec spec;
  spec.n_wrap = 48;
  spec.n_span = 8;
  spec.n_normal = 20;
  spec.wall_spacing = 1e-4;
  const auto m = mesh::make_wing_mesh(spec);
  std::printf("mesh: %d points, %d elements\n\n", m.num_points(),
              m.num_elements());

  euler::FlowConditions fc;
  fc.mach = 0.75;
  fc.alpha_deg = 0.0;
  fc.beta_deg = 0.0;
  fc.reynolds = 3.0e6;

  const int cycles = 100;
  struct Run {
    const char* name;
    int levels;
    nsu3d::CycleType cycle;
  };
  const Run runs[] = {{"single grid", 1, nsu3d::CycleType::W},
                      {"2-level W", 2, nsu3d::CycleType::W},
                      {"3-level W", 3, nsu3d::CycleType::W},
                      {"4-level W", 4, nsu3d::CycleType::W},
                      {"4-level V", 4, nsu3d::CycleType::V}};

  std::vector<std::vector<real_t>> histories;
  std::vector<std::string> names;
  for (const Run& r : runs) {
    nsu3d::Nsu3dOptions opt;
    opt.mg_levels = r.levels;
    opt.cycle = r.cycle;
    nsu3d::Nsu3dSolver solver(m, fc, opt);
    histories.push_back(solver.solve(cycles, 8));
    names.push_back(r.name);
    const auto& h = histories.back();
    std::printf("%-12s levels=%d  r0=%.3e  r%d=%.3e  drop=%.2e orders=%.2f\n",
                r.name, solver.num_levels(), h.front(), int(h.size()) - 1,
                h.back(), h.back() / h.front(),
                -std::log10(h.back() / h.front()));
  }

  std::printf("\nresidual history (density residual, normalized):\n");
  Table t([&] {
    std::vector<std::string> hdr{"cycle"};
    for (const auto& n : names) hdr.push_back(n);
    return hdr;
  }());
  for (std::size_t c = 0; c < histories[0].size(); c += 10) {
    std::vector<std::string> row{std::to_string(c)};
    for (const auto& h : histories) {
      const std::size_t k = std::min(c, h.size() - 1);
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.3e", h[k] / h[0]);
      row.push_back(buf);
    }
    t.add_row(row);
  }
  t.print();
  rep.table("residual_history", t);

  std::printf(
      "\npaper shape check: multigrid >> single grid; W >= V; deeper\n"
      "hierarchies converge at least as fast per cycle.\n");
  return 0;
}
