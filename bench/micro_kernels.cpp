// Google-benchmark microbenchmarks for the hot kernels of both solvers:
// Riemann fluxes, 6x6 block solves, block-tridiagonal lines, SFC encoding,
// graph partitioning, and RCM reordering.
//
// `micro_kernels --kernels-json [path]` switches to the solver-kernel
// timing mode: it sweeps the shared-memory pool over thread counts on the
// fine-level residual kernels of both solvers, compares against a replica
// of the pre-pool serial implementation, and writes machine-readable JSON
// (default path BENCH_kernels.json).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "cart3d/kernels.hpp"
#include "cart3d/solver.hpp"
#include "euler/flux.hpp"
#include "euler/jacobian.hpp"
#include "geom/components.hpp"
#include "graph/partition.hpp"
#include "graph/rcm.hpp"
#include "linalg/block_tridiag.hpp"
#include "mesh/builders.hpp"
#include "nsu3d/kernels.hpp"
#include "nsu3d/solver.hpp"
#include "obs/json.hpp"
#include "sfc/hilbert.hpp"
#include "sfc/morton.hpp"
#include "smp/pool.hpp"
#include "support/build_info.hpp"
#include "support/random.hpp"

namespace {

using namespace columbia;

void BM_RoeFlux(benchmark::State& state) {
  const euler::Prim l{1.0, {0.5, 0.1, -0.2}, 0.8};
  const euler::Prim r{0.9, {0.4, 0.0, -0.1}, 0.7};
  const geom::Vec3 n{1, 0, 0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        euler::numerical_flux(l, r, n, euler::FluxScheme::Roe));
  }
}
BENCHMARK(BM_RoeFlux);

void BM_VanLeerFlux(benchmark::State& state) {
  const euler::Prim l{1.0, {0.5, 0.1, -0.2}, 0.8};
  const euler::Prim r{0.9, {0.4, 0.0, -0.1}, 0.7};
  const geom::Vec3 n{0, 1, 0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        euler::numerical_flux(l, r, n, euler::FluxScheme::VanLeer));
  }
}
BENCHMARK(BM_VanLeerFlux);

void BM_FluxJacobian(benchmark::State& state) {
  const euler::Prim w{1.0, {0.5, 0.1, -0.2}, 0.8};
  const geom::Vec3 n{0.6, 0.8, 0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(euler::flux_jacobian(w, n));
  }
}
BENCHMARK(BM_FluxJacobian);

void BM_Block6LU(benchmark::State& state) {
  Xoshiro256 rng(1);
  linalg::BlockMat<6> m;
  for (int i = 0; i < 6; ++i) {
    for (int j = 0; j < 6; ++j) m(i, j) = rng.uniform(-1, 1);
    m(i, i) += 8;
  }
  linalg::BlockVec<6> b;
  for (int i = 0; i < 6; ++i) b[i] = rng.uniform(-1, 1);
  for (auto _ : state) {
    linalg::BlockLU<6> lu;
    lu.factor(m);
    benchmark::DoNotOptimize(lu.solve(b));
  }
}
BENCHMARK(BM_Block6LU);

void BM_BlockTridiagLine(benchmark::State& state) {
  const std::size_t n = std::size_t(state.range(0));
  Xoshiro256 rng(2);
  std::vector<linalg::BlockMat<6>> lo(n), di(n), up(n);
  std::vector<linalg::BlockVec<6>> rhs(n);
  for (std::size_t k = 0; k < n; ++k) {
    for (int i = 0; i < 6; ++i) {
      for (int j = 0; j < 6; ++j) {
        di[k](i, j) = rng.uniform(-0.2, 0.2);
        lo[k](i, j) = rng.uniform(-0.2, 0.2);
        up[k](i, j) = rng.uniform(-0.2, 0.2);
      }
      di[k](i, i) += 6;
      rhs[k][i] = rng.uniform(-1, 1);
    }
  }
  for (auto _ : state) {
    auto l = lo;
    auto d = di;
    auto u = up;
    auto r = rhs;
    benchmark::DoNotOptimize(linalg::solve_block_tridiag<6>(l, d, u, r));
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(n));
}
BENCHMARK(BM_BlockTridiagLine)->Arg(16)->Arg(64);

void BM_Hilbert3(benchmark::State& state) {
  std::uint32_t x = 12345, y = 54321, z = 9999;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sfc::hilbert3(x, y, z, 21));
    ++x;
  }
}
BENCHMARK(BM_Hilbert3);

void BM_Morton3(benchmark::State& state) {
  std::uint32_t x = 12345, y = 54321, z = 9999;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sfc::morton3(x, y, z));
    ++x;
  }
}
BENCHMARK(BM_Morton3);

graph::Csr make_grid(index_t n) {
  std::vector<std::pair<index_t, index_t>> edges;
  auto id = [&](index_t i, index_t j) { return j * n + i; };
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i) {
      if (i + 1 < n) edges.emplace_back(id(i, j), id(i + 1, j));
      if (j + 1 < n) edges.emplace_back(id(i, j), id(i, j + 1));
    }
  return graph::Csr::from_edges(n * n, edges);
}

void BM_Partition16(benchmark::State& state) {
  const graph::Csr g = make_grid(64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::partition(g, 16));
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * g.num_vertices());
}
BENCHMARK(BM_Partition16);

void BM_Rcm(benchmark::State& state) {
  const graph::Csr g = make_grid(64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::reverse_cuthill_mckee(g));
  }
}
BENCHMARK(BM_Rcm);

// ---------------------------------------------------------------------------
// --kernels-json mode: solver-kernel thread sweep with a seed baseline.

/// Serial replica of the residual kernel as it existed before the pool /
/// workspace work: per-call allocations, duplicated q_of lambdas, and
/// per-edge norm / normalize / pow recomputation. Kept verbatim (modulo
/// member access) so `speedup_vs_seed` measures the real delta.
void seed_residual_replica(const nsu3d::Level& lvl,
                           const std::vector<nsu3d::State>& u,
                           std::vector<nsu3d::State>& res,
                           const euler::Prim& freestream, real_t mu_lam,
                           real_t nut_inf) {
  using nsu3d::State;
  using geom::Vec3;
  constexpr real_t kSigma = 2.0 / 3.0;
  constexpr real_t kCb1 = 0.1355;
  constexpr real_t kCb2 = 0.622;
  constexpr real_t kKappa = 0.41;
  constexpr real_t kCw1 = kCb1 / (kKappa * kKappa) + (1.0 + kCb2) / kSigma;
  constexpr real_t kCw2 = 0.3;
  constexpr real_t kCw3 = 2.0;
  constexpr real_t kCv1 = 7.1;
  constexpr real_t kPrandtl = 0.72;
  constexpr real_t kPrandtlTurb = 0.9;

  const std::size_t n = std::size_t(lvl.num_nodes);
  res.assign(n, State{});
  std::vector<euler::Prim> w(n);
  std::vector<real_t> nut(n), mut(n);
  for (std::size_t i = 0; i < n; ++i) {
    const real_t inv = 1.0 / u[i][0];
    const Vec3 vel{u[i][1] * inv, u[i][2] * inv, u[i][3] * inv};
    const real_t p =
        (euler::kGamma - 1) * (u[i][4] - 0.5 * u[i][0] * dot(vel, vel));
    w[i] = {u[i][0], vel, p};
    nut[i] = u[i][5] * inv;
    const real_t nu_lam = mu_lam / w[i].rho;
    if (nut[i] <= 0) {
      mut[i] = 0;
    } else {
      const real_t chi = nut[i] / nu_lam;
      const real_t chi3 = chi * chi * chi;
      mut[i] = w[i].rho * nut[i] * chi3 / (chi3 + kCv1 * kCv1 * kCv1);
    }
  }

  auto q_of = [&](std::size_t i, int c) -> real_t {
    switch (c) {
      case 0: return w[i].rho;
      case 1: return w[i].vel.x;
      case 2: return w[i].vel.y;
      case 3: return w[i].vel.z;
      case 4: return w[i].p;
      default: return nut[i];
    }
  };

  std::vector<std::array<Vec3, 6>> grad(n);
  for (std::size_t e = 0; e < lvl.edges.size(); ++e) {
    const auto [a, b] = lvl.edges[e];
    const Vec3& nrm = lvl.edge_normal[e];
    for (int c = 0; c < 6; ++c) {
      const real_t qf =
          0.5 * (q_of(std::size_t(a), c) + q_of(std::size_t(b), c));
      grad[std::size_t(a)][std::size_t(c)] += qf * nrm;
      grad[std::size_t(b)][std::size_t(c)] -= qf * nrm;
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    Vec3 bn{};
    for (const Vec3& t : lvl.boundary_normal[i]) bn += t;
    for (int c = 0; c < 6; ++c) {
      grad[i][std::size_t(c)] += q_of(i, c) * bn;
      grad[i][std::size_t(c)] =
          grad[i][std::size_t(c)] / std::max(lvl.node_volume[i], real_t(1e-300));
    }
  }

  std::vector<std::array<real_t, 6>> qmin(n), qmax(n);
  for (std::size_t i = 0; i < n; ++i)
    for (int c = 0; c < 6; ++c)
      qmin[i][std::size_t(c)] = qmax[i][std::size_t(c)] = q_of(i, c);
  for (std::size_t e = 0; e < lvl.edges.size(); ++e) {
    const auto [a, b] = lvl.edges[e];
    for (int c = 0; c < 6; ++c) {
      const real_t qa = q_of(std::size_t(a), c), qb = q_of(std::size_t(b), c);
      auto& mna = qmin[std::size_t(a)][std::size_t(c)];
      auto& mxa = qmax[std::size_t(a)][std::size_t(c)];
      auto& mnb = qmin[std::size_t(b)][std::size_t(c)];
      auto& mxb = qmax[std::size_t(b)][std::size_t(c)];
      mna = std::min(mna, qb);
      mxa = std::max(mxa, qb);
      mnb = std::min(mnb, qa);
      mxb = std::max(mxb, qa);
    }
  }
  std::vector<std::array<real_t, 6>> phi(n, {1, 1, 1, 1, 1, 1});
  auto venkat = [](real_t dplus, real_t dq, real_t eps2) {
    const real_t num = (dplus * dplus + eps2) + 2.0 * dplus * dq;
    const real_t den = dplus * dplus + 2.0 * dq * dq + dplus * dq + eps2;
    return den > 0 ? num / den : 1.0;
  };
  for (std::size_t e = 0; e < lvl.edges.size(); ++e) {
    const auto [a, b] = lvl.edges[e];
    const Vec3 dab = 0.5 * (lvl.node_center[std::size_t(b)] -
                            lvl.node_center[std::size_t(a)]);
    for (int side = 0; side < 2; ++side) {
      const std::size_t i = std::size_t(side == 0 ? a : b);
      const Vec3 d = side == 0 ? dab : -1.0 * dab;
      const real_t h = lvl.edge_length[e];
      const real_t eps2 = std::pow(0.3 * h, 3);
      for (int c = 0; c < 6; ++c) {
        const real_t dq = dot(grad[i][std::size_t(c)], d);
        real_t lim = 1.0;
        if (dq > 1e-14)
          lim = venkat(qmax[i][std::size_t(c)] - q_of(i, c), dq, eps2);
        else if (dq < -1e-14)
          lim = venkat(q_of(i, c) - qmin[i][std::size_t(c)], -dq, eps2);
        phi[i][std::size_t(c)] = std::min(phi[i][std::size_t(c)], lim);
      }
    }
  }

  auto reconstruct = [&](std::size_t i, const Vec3& d,
                         real_t& nut_out) -> euler::Prim {
    nut_out = nut[i];
    std::array<real_t, 6> q{w[i].rho, w[i].vel.x, w[i].vel.y,
                            w[i].vel.z, w[i].p, nut[i]};
    for (int c = 0; c < 6; ++c)
      q[std::size_t(c)] +=
          phi[i][std::size_t(c)] * dot(grad[i][std::size_t(c)], d);
    if (q[0] <= 0 || q[4] <= 0) return w[i];
    nut_out = q[5];
    return euler::Prim{q[0], {q[1], q[2], q[3]}, q[4]};
  };

  for (std::size_t e = 0; e < lvl.edges.size(); ++e) {
    const auto [a, b] = lvl.edges[e];
    const Vec3& nrm = lvl.edge_normal[e];
    const real_t area = norm(nrm);
    if (area <= 0) continue;
    const Vec3 nh = nrm / area;
    const Vec3 dab = 0.5 * (lvl.node_center[std::size_t(b)] -
                            lvl.node_center[std::size_t(a)]);
    real_t nut_l, nut_r;
    const euler::Prim wl = reconstruct(std::size_t(a), dab, nut_l);
    const euler::Prim wr = reconstruct(std::size_t(b), -1.0 * dab, nut_r);
    const euler::Cons flux =
        euler::numerical_flux(wl, wr, nh, euler::FluxScheme::Roe);
    const real_t mdot = flux[0] * area;
    const real_t fnut = mdot * (mdot >= 0 ? nut_l : nut_r);
    for (int c = 0; c < 5; ++c) {
      res[std::size_t(a)][std::size_t(c)] += area * flux[std::size_t(c)];
      res[std::size_t(b)][std::size_t(c)] -= area * flux[std::size_t(c)];
    }
    res[std::size_t(a)][5] += fnut;
    res[std::size_t(b)][5] -= fnut;

    if (lvl.edge_length[e] > 0) {
      const real_t geo = area / lvl.edge_length[e];
      const real_t mu_m =
          mu_lam + 0.5 * (mut[std::size_t(a)] + mut[std::size_t(b)]);
      const real_t cm = mu_m * geo;
      const Vec3 dvel = w[std::size_t(b)].vel - w[std::size_t(a)].vel;
      res[std::size_t(a)][1] -= cm * dvel.x;
      res[std::size_t(a)][2] -= cm * dvel.y;
      res[std::size_t(a)][3] -= cm * dvel.z;
      res[std::size_t(b)][1] += cm * dvel.x;
      res[std::size_t(b)][2] += cm * dvel.y;
      res[std::size_t(b)][3] += cm * dvel.z;
      const real_t ck =
          (mu_lam / kPrandtl +
           0.5 * (mut[std::size_t(a)] + mut[std::size_t(b)]) / kPrandtlTurb) *
          euler::kGamma / (euler::kGamma - 1) * geo;
      const real_t dT = w[std::size_t(b)].p / w[std::size_t(b)].rho -
                        w[std::size_t(a)].p / w[std::size_t(a)].rho;
      const Vec3 vm = 0.5 * (w[std::size_t(a)].vel + w[std::size_t(b)].vel);
      const real_t dke = dot(vm, dvel);
      res[std::size_t(a)][4] -= ck * dT + cm * dke;
      res[std::size_t(b)][4] += ck * dT + cm * dke;
      const real_t rho_m = 0.5 * (w[std::size_t(a)].rho + w[std::size_t(b)].rho);
      const real_t nu_m = mu_lam / rho_m;
      const real_t nut_m = 0.5 * (nut[std::size_t(a)] + nut[std::size_t(b)]);
      const real_t cs =
          rho_m * (nu_m + std::max<real_t>(nut_m, 0)) / kSigma * geo;
      const real_t dnt = nut[std::size_t(b)] - nut[std::size_t(a)];
      res[std::size_t(a)][5] -= cs * dnt;
      res[std::size_t(b)][5] += cs * dnt;
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    const Vec3& fn =
        lvl.boundary_normal[i][std::size_t(mesh::BoundaryTag::Farfield)];
    const real_t fa = norm(fn);
    if (fa > 0) {
      const Vec3 nh = fn / fa;
      const euler::Cons flux =
          euler::farfield_flux(w[i], freestream, nh, euler::FluxScheme::Roe);
      for (int c = 0; c < 5; ++c)
        res[i][std::size_t(c)] += fa * flux[std::size_t(c)];
      const real_t mdot = flux[0] * fa;
      res[i][5] += mdot * (mdot >= 0 ? nut[i] : nut_inf);
    }
    for (mesh::BoundaryTag tag :
         {mesh::BoundaryTag::Wall, mesh::BoundaryTag::Symmetry}) {
      const Vec3& bn = lvl.boundary_normal[i][std::size_t(tag)];
      if (dot(bn, bn) > 0) {
        const euler::Cons flux = euler::wall_flux(w[i], bn);
        for (int c = 0; c < 5; ++c)
          res[i][std::size_t(c)] += flux[std::size_t(c)];
      }
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    if (lvl.is_wall_node(index_t(i))) {
      res[i][1] = res[i][2] = res[i][3] = 0;
      res[i][5] = 0;
      continue;
    }
    const Vec3& sn =
        lvl.boundary_normal[i][std::size_t(mesh::BoundaryTag::Symmetry)];
    const real_t s2 = dot(sn, sn);
    if (s2 > 0) {
      const Vec3 nh = sn / std::sqrt(s2);
      Vec3 rm{res[i][1], res[i][2], res[i][3]};
      rm -= dot(rm, nh) * nh;
      res[i][1] = rm.x;
      res[i][2] = rm.y;
      res[i][3] = rm.z;
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    const real_t d = std::max(lvl.wall_distance[i], real_t(1e-8));
    const real_t nu = mu_lam / w[i].rho;
    const real_t nt = std::max<real_t>(nut[i], 0);
    const Vec3 gx = grad[i][1], gy = grad[i][2], gz = grad[i][3];
    const Vec3 omega{gz.y - gy.z, gx.z - gz.x, gy.x - gx.y};
    const real_t s = norm(omega);
    const real_t chi = nt / nu;
    const real_t chi3 = chi * chi * chi;
    const real_t fv1 = chi3 / (chi3 + kCv1 * kCv1 * kCv1);
    const real_t fv2 = 1.0 - chi / (1.0 + chi * fv1);
    const real_t k2d2 = kKappa * kKappa * d * d;
    real_t stilde = s + nt / k2d2 * fv2;
    stilde = std::max(stilde, real_t(0.3) * s);
    const real_t prod = kCb1 * stilde * w[i].rho * nt;
    real_t r = stilde > 0 ? nt / (stilde * k2d2) : 10.0;
    r = std::min(r, real_t(10.0));
    const real_t g = r + kCw2 * (std::pow(r, 6) - r);
    const real_t c6 = std::pow(kCw3, 6);
    const real_t fw =
        g * std::pow((1.0 + c6) / (std::pow(g, 6) + c6), 1.0 / 6.0);
    const real_t destr = kCw1 * fw * w[i].rho * (nt / d) * (nt / d);
    res[i][5] += lvl.node_volume[i] * (destr - prod);
  }
}

/// Best-of-repetitions wall time per call, in nanoseconds.
template <class Fn>
double time_kernel_ns(Fn&& fn) {
  using clock = std::chrono::steady_clock;
  fn();  // warm caches and workspace capacity
  fn();
  double best = 1e300;
  for (int rep = 0; rep < 5; ++rep) {
    int iters = 0;
    const auto t0 = clock::now();
    do {
      fn();
      ++iters;
    } while (clock::now() - t0 < std::chrono::milliseconds(60));
    const double ns =
        double(std::chrono::duration_cast<std::chrono::nanoseconds>(
                   clock::now() - t0)
                   .count()) /
        iters;
    best = std::min(best, ns);
  }
  return best;
}

struct KernelRow {
  std::string kernel;
  int threads = 1;
  double ns_per_edge = 0;
  double speedup_vs_serial = 1;
  double speedup_vs_seed = 0;  // 0 = no seed baseline for this kernel
};

int run_kernels_json(const std::string& path) {
  std::vector<KernelRow> rows;
  const std::vector<int> sweep{1, 2, 4};

  // --- NSU3D fine-level residual (viscous RANS, second order). ---
  {
    mesh::WingMeshSpec spec;
    spec.n_wrap = 48;
    spec.n_span = 6;
    spec.n_normal = 16;
    spec.wall_spacing = 1e-4;
    const auto m = mesh::make_wing_mesh(spec);
    euler::FlowConditions fc;
    fc.mach = 0.75;
    fc.reynolds = 3e6;
    nsu3d::Nsu3dOptions o;
    o.mg_levels = 1;
    smp::set_global_threads(1);
    nsu3d::Nsu3dSolver s(m, fc, o);
    const nsu3d::Level& lvl = s.level(0);
    const double edges = double(lvl.edges.size());
    const auto sol = s.solution();
    const std::vector<nsu3d::State> u(sol.begin(), sol.end());
    std::vector<nsu3d::State> res;

    const real_t mu_lam = fc.mach / fc.reynolds;
    const real_t nut_inf = 3.0 * mu_lam / fc.freestream().rho;
    const double seed_ns = time_kernel_ns([&] {
      seed_residual_replica(lvl, u, res, fc.freestream(), mu_lam, nut_inf);
    });
    std::printf("nsu3d seed replica baseline: %.1f ns/edge\n",
                seed_ns / edges);

    double serial_ns = 0;
    for (int t : sweep) {
      smp::set_global_threads(t);
      const double ns =
          time_kernel_ns([&] { s.compute_residual(0, u, res, true); });
      if (t == 1) serial_ns = ns;
      rows.push_back({"nsu3d_residual_fine", t, ns / edges, serial_ns / ns,
                      seed_ns / ns});
      std::printf("nsu3d_residual_fine t=%d: %.1f ns/edge (%.2fx serial, "
                  "%.2fx seed)\n",
                  t, ns / edges, serial_ns / ns, seed_ns / ns);
    }
    smp::set_global_threads(1);

    // Per-kernel phase breakdown (serial): the residual phases measured
    // through their public kernels, plus the two smoother sweeps. Phase
    // rows carry no seed baseline; the gate compares their ns_per_edge
    // against the committed baseline like any other row.
    {
      namespace K = nsu3d::kernels;
      K::Physics phys;
      phys.freestream = fc.freestream();
      phys.flux = o.flux;
      phys.mu_lam = mu_lam;
      phys.nut_inf = nut_inf;
      phys.viscous = true;
      K::Scratch ws;
      ws.resize(lvl);
      auto phase = [&](const char* name, auto&& fn) {
        const double ns = time_kernel_ns(fn);
        rows.push_back({name, 1, ns / edges, 1, 0});
        std::printf("%s t=1: %.1f ns/edge\n", name, ns / edges);
      };
      phase("nsu3d_prim_cache", [&] { K::prim_cache(lvl, phys, u, ws); });
      phase("nsu3d_gradients", [&] { K::gradients(lvl, ws, true); });
      phase("nsu3d_limiter", [&] { K::limiter(lvl, ws); });
      phase("nsu3d_flux", [&] { K::flux_residual(lvl, phys, ws, true, res); });
      phase("nsu3d_sa_source", [&] { K::sa_source(lvl, phys, ws, res); });
      // Smoother sweeps: assemble once, then time the update kernels on a
      // working copy of the state (each call is a valid implicit sweep).
      K::wave_speeds(lvl, phys, ws);
      K::assemble_diag(lvl, phys, o.cfl, u, ws);
      const std::vector<nsu3d::State> forcing(u.size(), nsu3d::State{});
      std::vector<nsu3d::State> uu(u.begin(), u.end());
      phase("nsu3d_point_sweep",
            [&] { K::point_sweep(lvl, 0.8, forcing, res, ws, uu); });
      uu.assign(u.begin(), u.end());
      phase("nsu3d_line_sweep",
            [&] { K::line_sweep(lvl, phys, 0.8, forcing, res, ws, uu); });
    }
  }

  // --- Cart3D fine-level residual (second-order Euler, cut cells). ---
  {
    geom::Aabb domain;
    domain.expand({-1.5, -1.5, -1.5});
    domain.expand({1.5, 1.5, 1.5});
    const auto sphere = geom::make_sphere({0, 0, 0}, 0.4, 24, 48);
    cartesian::CartMeshOptions mo;
    mo.base_n = 16;
    mo.max_level = 2;
    const auto m = cartesian::build_cart_mesh(sphere, domain, mo);
    euler::FlowConditions fc;
    fc.mach = 0.3;
    cart3d::SolverOptions o;
    o.mg_levels = 1;
    smp::set_global_threads(1);
    cart3d::Cart3DSolver s(m, fc, o);
    const double faces = double(s.mesh(0).faces.size());
    std::vector<euler::Cons> u(s.solution());
    std::vector<euler::Cons> res;

    // Seed replica: the retained scalar reference is a verbatim copy of
    // the pre-SoA residual (geometry recomputed per call).
    cart3d::kernels::ReferenceScratch ref;
    const double seed_ns = time_kernel_ns([&] {
      cart3d::kernels::residual_reference(s.mesh(0), fc.freestream(), o.flux,
                                          u, true, ref, res);
    });
    std::printf("cart3d seed replica baseline: %.1f ns/face\n",
                seed_ns / faces);

    double serial_ns = 0;
    for (int t : sweep) {
      smp::set_global_threads(t);
      const double ns =
          time_kernel_ns([&] { s.compute_residual(0, u, res, true); });
      if (t == 1) serial_ns = ns;
      rows.push_back({"cart3d_residual_fine", t, ns / faces, serial_ns / ns,
                      seed_ns / ns});
      std::printf("cart3d_residual_fine t=%d: %.1f ns/face (%.2fx serial, "
                  "%.2fx seed)\n",
                  t, ns / faces, serial_ns / ns, seed_ns / ns);
    }
    smp::set_global_threads(1);
  }

  // Same schema as before (bench/hardware_threads/note/kernels), emitted
  // through the shared obs JSON writer the harness --json reports use.
  std::ofstream f(path);
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  obs::JsonWriter w(f);
  w.begin_object();
  w.kv("bench", "micro_kernels");
  const BuildInfo& bi = build_info();
  w.key("provenance");
  w.begin_object();
  w.kv("git_sha", bi.git_sha);
  w.kv("build_type", bi.build_type);
  w.kv("obs_compiled", bi.obs_compiled);
  w.kv("columbia_threads", std::int64_t(smp::env_threads()));
  w.kv("hardware_threads", std::int64_t(hardware_threads()));
  w.end_object();
  w.kv("hardware_threads",
       std::uint64_t(std::thread::hardware_concurrency()));
  w.kv("note",
       "ns_per_edge is wall time per edge (NSU3D) or per face (Cart3D); "
       "speedup_vs_seed compares against a replica of the pre-workspace "
       "serial kernel; speedup_vs_seed 0 means no seed baseline; "
       "nsu3d_* phase rows time the public SoA phase kernels serially; "
       "thread-sweep speedups are bounded by hardware_threads — with a "
       "single hardware thread the sweep only measures pool overhead");
  w.key("kernels");
  w.begin_array();
  for (const KernelRow& r : rows) {
    w.begin_object();
    w.kv("kernel", r.kernel);
    w.kv("threads", r.threads);
    w.kv("ns_per_edge", r.ns_per_edge);
    w.kv("speedup_vs_serial", r.speedup_vs_serial);
    w.kv("speedup_vs_seed", r.speedup_vs_seed);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  f << "\n";
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--kernels-json") {
      const std::string path =
          i + 1 < argc ? argv[i + 1] : "BENCH_kernels.json";
      return run_kernels_json(path);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
