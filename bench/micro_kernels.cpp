// Google-benchmark microbenchmarks for the hot kernels of both solvers:
// Riemann fluxes, 6x6 block solves, block-tridiagonal lines, SFC encoding,
// graph partitioning, and RCM reordering.
#include <benchmark/benchmark.h>

#include "euler/flux.hpp"
#include "euler/jacobian.hpp"
#include "graph/partition.hpp"
#include "graph/rcm.hpp"
#include "linalg/block_tridiag.hpp"
#include "sfc/hilbert.hpp"
#include "sfc/morton.hpp"
#include "support/random.hpp"

namespace {

using namespace columbia;

void BM_RoeFlux(benchmark::State& state) {
  const euler::Prim l{1.0, {0.5, 0.1, -0.2}, 0.8};
  const euler::Prim r{0.9, {0.4, 0.0, -0.1}, 0.7};
  const geom::Vec3 n{1, 0, 0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        euler::numerical_flux(l, r, n, euler::FluxScheme::Roe));
  }
}
BENCHMARK(BM_RoeFlux);

void BM_VanLeerFlux(benchmark::State& state) {
  const euler::Prim l{1.0, {0.5, 0.1, -0.2}, 0.8};
  const euler::Prim r{0.9, {0.4, 0.0, -0.1}, 0.7};
  const geom::Vec3 n{0, 1, 0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        euler::numerical_flux(l, r, n, euler::FluxScheme::VanLeer));
  }
}
BENCHMARK(BM_VanLeerFlux);

void BM_FluxJacobian(benchmark::State& state) {
  const euler::Prim w{1.0, {0.5, 0.1, -0.2}, 0.8};
  const geom::Vec3 n{0.6, 0.8, 0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(euler::flux_jacobian(w, n));
  }
}
BENCHMARK(BM_FluxJacobian);

void BM_Block6LU(benchmark::State& state) {
  Xoshiro256 rng(1);
  linalg::BlockMat<6> m;
  for (int i = 0; i < 6; ++i) {
    for (int j = 0; j < 6; ++j) m(i, j) = rng.uniform(-1, 1);
    m(i, i) += 8;
  }
  linalg::BlockVec<6> b;
  for (int i = 0; i < 6; ++i) b[i] = rng.uniform(-1, 1);
  for (auto _ : state) {
    linalg::BlockLU<6> lu;
    lu.factor(m);
    benchmark::DoNotOptimize(lu.solve(b));
  }
}
BENCHMARK(BM_Block6LU);

void BM_BlockTridiagLine(benchmark::State& state) {
  const std::size_t n = std::size_t(state.range(0));
  Xoshiro256 rng(2);
  std::vector<linalg::BlockMat<6>> lo(n), di(n), up(n);
  std::vector<linalg::BlockVec<6>> rhs(n);
  for (std::size_t k = 0; k < n; ++k) {
    for (int i = 0; i < 6; ++i) {
      for (int j = 0; j < 6; ++j) {
        di[k](i, j) = rng.uniform(-0.2, 0.2);
        lo[k](i, j) = rng.uniform(-0.2, 0.2);
        up[k](i, j) = rng.uniform(-0.2, 0.2);
      }
      di[k](i, i) += 6;
      rhs[k][i] = rng.uniform(-1, 1);
    }
  }
  for (auto _ : state) {
    auto l = lo;
    auto d = di;
    auto u = up;
    auto r = rhs;
    benchmark::DoNotOptimize(linalg::solve_block_tridiag<6>(l, d, u, r));
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * int64_t(n));
}
BENCHMARK(BM_BlockTridiagLine)->Arg(16)->Arg(64);

void BM_Hilbert3(benchmark::State& state) {
  std::uint32_t x = 12345, y = 54321, z = 9999;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sfc::hilbert3(x, y, z, 21));
    ++x;
  }
}
BENCHMARK(BM_Hilbert3);

void BM_Morton3(benchmark::State& state) {
  std::uint32_t x = 12345, y = 54321, z = 9999;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sfc::morton3(x, y, z));
    ++x;
  }
}
BENCHMARK(BM_Morton3);

graph::Csr make_grid(index_t n) {
  std::vector<std::pair<index_t, index_t>> edges;
  auto id = [&](index_t i, index_t j) { return j * n + i; };
  for (index_t j = 0; j < n; ++j)
    for (index_t i = 0; i < n; ++i) {
      if (i + 1 < n) edges.emplace_back(id(i, j), id(i + 1, j));
      if (j + 1 < n) edges.emplace_back(id(i, j), id(i, j + 1));
    }
  return graph::Csr::from_edges(n * n, edges);
}

void BM_Partition16(benchmark::State& state) {
  const graph::Csr g = make_grid(64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::partition(g, 16));
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * g.num_vertices());
}
BENCHMARK(BM_Partition16);

void BM_Rcm(benchmark::State& state) {
  const graph::Csr g = make_grid(64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::reverse_cuthill_mckee(g));
  }
}
BENCHMARK(BM_Rcm);

}  // namespace

BENCHMARK_MAIN();
