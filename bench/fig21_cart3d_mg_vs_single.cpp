// Figure 21: Cart3D parallel speedup across four Columbia nodes on
// NUMAlink, 32-2016 CPUs, comparing the baseline 4-level multigrid with
// the single-grid scheme on the 25M-cell SSLV case.
//
// Paper shape: single grid nearly ideal (~1900 at 2016 CPUs); multigrid
// rolls off above ~1024 CPUs to ~1585 (only ~16 coarsest-level cells per
// partition at 2016 CPUs); NUMAlink 4-level posts ~2.4 TFLOP/s at 2016.
#include <cstdio>

#include "bench_util.hpp"

using namespace columbia;

int main(int argc, char** argv) {
  bench::banner("Fig 21 — Cart3D multigrid vs single grid (NUMAlink)",
                "25M-cell SSLV, 32-2016 CPUs");
  bench::Reporter rep(argc, argv, "fig21_cart3d_mg_vs_single");

  const auto fx = bench::Cart3dFixture::make(4);
  auto lm = fx.load_model();
  perf::MachineModel model;

  perf::HybridLayout ref;
  ref.total_cpus = 32;
  ref.fabric = perf::Interconnect::NumaLink4;

  const auto visits_mg = perf::cycle_visits(lm.num_levels(), true);
  const std::vector<index_t> visits_1{1};
  const auto ref_mg = lm.loads(32, visits_mg);
  const auto ref_1 = lm.loads(32, visits_1, 1);

  Table t({"CPUs", "sp(4-level MG)", "sp(single)", "TF(MG)"});
  for (index_t P : bench::cart3d_cpu_series()) {
    perf::HybridLayout lay;
    lay.total_cpus = P;
    lay.fabric = perf::Interconnect::NumaLink4;
    const auto mg = lm.loads(P, visits_mg);
    const auto single = lm.loads(P, visits_1, 1);
    t.add_row({std::to_string(P),
               Table::num(model.speedup(mg, lay, ref_mg, ref), 0),
               Table::num(model.speedup(single, lay, ref_1, ref), 0),
               Table::num(model.cycle_time(mg, lay).tflops(), 2)});
  }
  t.print();
  rep.table("speedup", t);

  // The coarse-grid starvation the paper quotes: cells/partition at 2016.
  std::printf("\ncoarsest level: %.3g cells scaled -> %.1f cells/partition "
              "at 2016 CPUs (paper: ~16)\n",
              lm.scaled_cells(lm.num_levels() - 1),
              lm.scaled_cells(lm.num_levels() - 1) / 2016.0);
  std::printf(
      "paper shape check: single grid ~ideal; multigrid rolls off beyond\n"
      "~1024 CPUs; ~2.4 TFLOP/s for 4-level multigrid at 2016 CPUs.\n");
  return 0;
}
