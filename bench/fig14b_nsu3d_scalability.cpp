// Figure 14(b) + Sec. VI anchors: NSU3D parallel speedup and computational
// rate on 128-2008 CPUs of Columbia (NUMAlink4), for the single grid and
// the 4/5/6-level multigrid W-cycles on the 72M-point mesh.
//
// Paper values at 2008 CPUs: speedups 2395 (single), 2250 (4-level),
// 2044 (6-level); rates 3.4 / 3.1 / 2.95 / 2.8 TFLOP/s for single/4/5/6
// levels; 1.95 s per 6-level cycle.
#include <cstdio>

#include "bench_util.hpp"

using namespace columbia;

int main(int argc, char** argv) {
  bench::banner("Fig 14b — NSU3D scalability on Columbia (machine model)",
                "speedup + TFLOP/s vs CPUs, NUMAlink4, 72M-point problem");
  bench::Reporter rep(argc, argv, "fig14b_nsu3d_scalability");

  const auto fx = bench::Nsu3dFixture::make(6);
  std::printf("in-repo mesh %d points; hierarchy:", fx.mesh.num_points());
  for (const auto& l : fx.levels) std::printf(" %d", l.num_nodes);
  std::printf("  (scaled x%.0f to 72M)\n\n", fx.scale);

  auto lm = fx.load_model();
  perf::MachineModel model;
  perf::HybridLayout ref;
  ref.total_cpus = 128;
  ref.fabric = perf::Interconnect::NumaLink4;
  ref.nodes_override = 4;  // all NSU3D runs span the four BX2 boxes

  const int variants[] = {1, 4, 5, 6};
  Table t({"CPUs", "sp(single)", "sp(4-lvl)", "sp(5-lvl)", "sp(6-lvl)",
           "TF(single)", "TF(4)", "TF(5)", "TF(6)"});
  for (index_t P : bench::nsu3d_cpu_series()) {
    std::vector<std::string> row{std::to_string(P)};
    std::vector<std::string> tf;
    for (int nl : variants) {
      const int use = std::min(nl, lm.num_levels());
      const auto visits = perf::cycle_visits(use, true);
      auto loads = lm.loads(P, visits, use);
      auto ref_loads = lm.loads(128, visits, use);
      perf::HybridLayout lay = ref;
      lay.total_cpus = P;
      row.push_back(Table::num(model.speedup(loads, lay, ref_loads, ref), 0));
      tf.push_back(Table::num(model.cycle_time(loads, lay).tflops(), 2));
    }
    row.insert(row.end(), tf.begin(), tf.end());
    t.add_row(row);
  }
  t.print();
  rep.table("scalability", t);

  // Sec. VI wall-clock anchor.
  {
    const auto visits = perf::cycle_visits(std::min(6, lm.num_levels()), true);
    perf::HybridLayout lay;
    lay.total_cpus = 2008;
    const auto ct =
        model.cycle_time(lm.loads(2008, visits, std::min(6, lm.num_levels())), lay);
    std::printf("\n6-level W-cycle at 2008 CPUs: %.2f s/cycle "
                "(paper: 1.95 s); %.2f TFLOP/s (paper: 2.8)\n",
                ct.total_s, ct.tflops());
    std::printf("800 cycles -> %.0f min wall clock (paper: <30 min incl. I/O)\n",
                800.0 * ct.total_s / 60.0);
  }
  std::printf(
      "\npaper shape check: superlinear speedups (cache effect), ordered\n"
      "single > 4-level > 5-level > 6-level in both speedup and TFLOP/s.\n");
  return 0;
}
