// Figure 19: the second (9M-point) and third (1M-point) multigrid levels
// run *alone*, comparing NUMAlink and InfiniBand.
//
// Paper finding: these coarser grids scale worse than the 72M fine grid —
// but NUMAlink and InfiniBand degrade at SIMILAR rates. This acquits the
// coarse-level intra-grid communication and indicts the inter-grid
// transfers (which a single-level run does not perform) for the multigrid
// InfiniBand collapse.
#include <cstdio>

#include "bench_util.hpp"

using namespace columbia;

int main(int argc, char** argv) {
  bench::banner("Fig 19 — coarse multigrid levels run alone",
                "level 2 (9M pts) and level 3 (1M pts), NL vs IB");
  bench::Reporter rep(argc, argv, "fig19_coarse_levels");

  const auto fx = bench::Nsu3dFixture::make(6);
  auto lm = fx.load_model();

  std::printf("\n(a) second grid alone (paper: ~9M points; scaled %.2g):\n",
              lm.scaled_nodes(1));
  bench::print_interconnect_series(lm, 1, /*first_level=*/1, &rep, "level2");

  std::printf("\n(b) third grid alone (paper: ~1M points; scaled %.2g):\n",
              lm.scaled_nodes(2));
  bench::print_interconnect_series(lm, 1, /*first_level=*/2, &rep, "level3");

  std::printf(
      "\npaper shape check: both fabrics roll off together (no inter-grid\n"
      "traffic in a single-level run), unlike the full multigrid of Fig 16b.\n");
  return 0;
}
