// Section IV: automated parameter studies / aero-database fill.
//
// Reproduces the machinery, not a specific figure: hierarchical job
// control (geometry instances on top, wind points below), amortized mesh
// generation per instance, simultaneous case execution, and the mesh
// generator's cells-per-minute rate (paper: 3-5M cells/minute on a 2005
// Itanium2; a modern core is faster).
#include <cstdio>

#include "bench_util.hpp"
#include "driver/database.hpp"

using namespace columbia;

int main(int argc, char** argv) {
  bench::banner("Sec IV — parametric aero-database fill",
                "config-space x wind-space sweep with amortized meshing");
  bench::Reporter rep(argc, argv, "sec4_database_fill");

  driver::DatabaseSpec spec;
  spec.deflections = {-0.15, 0.0, 0.15};          // elevon settings
  spec.machs = {0.8, 1.6, 2.6};
  spec.alphas_deg = {-2.0, 0.0, 2.0};
  spec.betas_deg = {0.0};
  spec.mesh_options.base_n = 8;
  spec.mesh_options.max_level = 2;
  spec.solver_options.flux = euler::FluxScheme::VanLeer;
  spec.solver_options.second_order = false;
  spec.solver_options.mg_levels = 2;
  spec.max_cycles = 12;
  spec.simultaneous_cases = 8;

  driver::DatabaseFill fill(spec);
  std::printf("cases: %d (3 geometry instances x 9 wind points)\n\n",
              fill.num_cases());
  const auto results = fill.run();

  Table t({"defl(rad)", "Mach", "alpha", "CL", "CD", "res drop"});
  for (const auto& r : results) {
    if (r.wind.beta_deg != 0) continue;
    t.add_row({Table::num(r.deflection_rad, 2), Table::num(r.wind.mach, 1),
               Table::num(r.wind.alpha_deg, 1), Table::num(r.cl, 4),
               Table::num(r.cd, 4), Table::num(r.residual_drop, 4)});
  }
  t.print();
  rep.table("cases", t);

  const auto& st = fill.stats();
  std::printf("\nmeshes generated: %d (one per geometry instance; %d cases)\n",
              st.meshes_generated, st.cases_run);
  std::printf("mesh generation: %.0f cells in %.2f s -> %.2fM cells/minute\n",
              st.total_cells_meshed, st.mesh_gen_seconds,
              st.cells_per_minute() / 1e6);
  std::printf("solver time (8 cases in flight): %.2f s\n", st.solve_seconds);
  std::printf(
      "\npaper check: meshing amortized per instance; paper quotes 3-5M\n"
      "cells/min on Itanium2 — same order on one modern core.\n");
  return 0;
}
