// Figure 15: relative parallel efficiency of the 72M-point six-level
// multigrid case on 128 processors spread over four Columbia boxes, for
// NUMAlink vs InfiniBand and 1/2/4 OpenMP threads per MPI process.
//
// Paper anchors: NUMAlink 2 threads 98.4%, 4 threads 87.2%; InfiniBand
// pure-MPI 95.7%, with the 4-thread hybrid on a par with NUMAlink.
#include <cstdio>

#include "bench_util.hpp"

using namespace columbia;

int main(int argc, char** argv) {
  bench::banner("Fig 15 — hybrid MPI/OpenMP efficiency at 128 CPUs",
                "six-level multigrid, NUMAlink vs InfiniBand, 1/2/4 threads");
  bench::Reporter rep(argc, argv, "fig15_hybrid_efficiency");

  const auto fx = bench::Nsu3dFixture::make(6);
  auto lm = fx.load_model();
  perf::MachineModel model;
  const int use = std::min(6, lm.num_levels());
  const auto visits = perf::cycle_visits(use, true);

  // Baseline: pure MPI on NUMAlink, 128 CPUs.
  perf::HybridLayout base;
  base.total_cpus = 128;
  base.fabric = perf::Interconnect::NumaLink4;
  const real_t t_base =
      model.cycle_time(lm.loads(128, visits, use), base).total_s;
  std::printf("baseline cycle time (NUMAlink, pure MPI): %.2f s "
              "(paper: 31.3 s)\n\n", t_base);

  Table t({"fabric", "OMP threads", "MPI procs", "cycle (s)",
           "rel. efficiency", "paper"});
  struct Case {
    perf::Interconnect fabric;
    index_t threads;
    const char* paper;
  };
  const Case cases[] = {
      {perf::Interconnect::NumaLink4, 1, "1.000"},
      {perf::Interconnect::NumaLink4, 2, "0.984"},
      {perf::Interconnect::NumaLink4, 4, "0.872"},
      {perf::Interconnect::InfiniBand, 1, "0.957"},
      {perf::Interconnect::InfiniBand, 2, "~0.95"},
      {perf::Interconnect::InfiniBand, 4, "~0.88 (beats NUMAlink)"},
  };
  for (const Case& c : cases) {
    perf::HybridLayout lay;
    lay.total_cpus = 128;
    lay.omp_threads_per_mpi = c.threads;
    lay.fabric = c.fabric;
    lay.nodes_override = 4;  // "128 processors distributed over four nodes" 
    const auto loads = lm.loads(lay.mpi_processes(), visits, use);
    const real_t tt = model.cycle_time(loads, lay).total_s;
    t.add_row({c.fabric == perf::Interconnect::NumaLink4 ? "NUMAlink4"
                                                         : "InfiniBand",
               std::to_string(c.threads), std::to_string(lay.mpi_processes()),
               Table::num(tt, 2), Table::num(t_base / tt, 3), c.paper});
  }
  t.print();
  rep.table("efficiency", t);

  std::printf(
      "\npaper shape check: modest degradation with threads (quadratic in\n"
      "T), InfiniBand within a few percent of NUMAlink at this CPU count.\n");
  return 0;
}
