// Figure 20(b): Cart3D scalability on a single 512-CPU Columbia node for
// the 25M-cell SSLV case (4-level multigrid), comparing the OpenMP and MPI
// builds, 32-504 CPUs.
//
// Paper shape: both nearly ideal; the OpenMP curve breaks slope slightly
// at 128 CPUs ("coarse mode" pointer dereferencing beyond a 128-CPU
// double-cabinet); ~0.75 TFLOP/s at 496 CPUs (1.5 GFLOP/s per CPU).
#include <cstdio>

#include "bench_util.hpp"

using namespace columbia;

int main(int argc, char** argv) {
  bench::banner("Fig 20b — Cart3D OpenMP vs MPI on one Columbia node",
                "25M-cell SSLV, 4-level multigrid, 32-504 CPUs");
  bench::Reporter rep(argc, argv, "fig20_cart3d_single_node");

  const auto fx = bench::Cart3dFixture::make(4);
  std::printf("in-repo mesh: %d cells (%d cut); hierarchy:",
              fx.mesh.num_cells(), fx.mesh.num_cut_cells());
  for (const auto& l : fx.hierarchy.levels) std::printf(" %d", l.num_cells());
  std::printf("  (scaled x%.0f to 25M)\n\n", fx.scale);

  auto lm = fx.load_model();
  perf::MachineModel model;
  const int use = lm.num_levels();
  const auto visits = perf::cycle_visits(use, true);

  perf::HybridLayout ref;
  ref.total_cpus = 32;
  ref.fabric = perf::Interconnect::NumaLink4;  // MPI within the node
  const auto ref_loads = lm.loads(32, visits);

  Table t({"CPUs", "sp(MPI)", "sp(OpenMP)", "TF(MPI)"});
  for (index_t P : {32, 64, 96, 128, 192, 256, 384, 496, 504}) {
    perf::HybridLayout mpi;
    mpi.total_cpus = P;
    mpi.fabric = perf::Interconnect::NumaLink4;
    perf::HybridLayout omp;
    omp.total_cpus = P;
    omp.fabric = perf::Interconnect::SharedMemory;
    const auto loads = lm.loads(P, visits);
    t.add_row({std::to_string(P),
               Table::num(model.speedup(loads, mpi, ref_loads, ref), 0),
               Table::num(model.speedup(loads, omp, ref_loads, ref), 0),
               Table::num(model.cycle_time(loads, mpi).tflops(), 3)});
  }
  t.print();
  rep.table("speedup", t);

  std::printf(
      "\npaper shape check: both near-ideal; OpenMP slope break above 128\n"
      "CPUs; ~0.75 TFLOP/s at 496 CPUs.\n");
  return 0;
}
