// Shared fixtures for the figure-reproduction benchmarks.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "cartesian/coarsen.hpp"
#include "mesh/builders.hpp"
#include "nsu3d/solver.hpp"
#include "perf/loads.hpp"
#include "support/table.hpp"

namespace columbia::bench {

/// Shared machine-readable output for every bench harness. Pass
/// `--json PATH` to any fig*/sec*/ablation binary and its tables are
/// mirrored to one JSON document:
///
///   {"bench": <name>, "meta": {...}, "tables": {<series>: [<row obj>...]}}
///
/// Rows are objects keyed by the table header; cells that parse fully as
/// numbers are emitted as numbers, everything else as strings. Without
/// `--json` the reporter is inert. The document is written on destruction.
class Reporter {
 public:
  Reporter(int argc, char** argv, std::string name);
  ~Reporter();

  Reporter(const Reporter&) = delete;
  Reporter& operator=(const Reporter&) = delete;

  /// True when `--json PATH` was given (tables are being captured).
  bool active() const { return !path_.empty(); }

  /// Adds a scalar to the "meta" object (numbers stay numbers).
  void meta(const std::string& key, double value);
  void meta(const std::string& key, const std::string& value);

  /// Captures `t` under `series` in the "tables" object.
  void table(const std::string& series, const Table& t);

 private:
  struct MetaEntry {
    std::string key;
    bool is_number = false;
    double number = 0;
    std::string text;
  };
  std::string name_;
  std::string path_;
  std::vector<MetaEntry> meta_;
  std::vector<std::pair<std::string, Table>> tables_;
};

/// The NSU3D scalability fixture: a hybrid wing mesh with a full
/// agglomeration hierarchy, plus the granularity-matched load model scaled
/// to the paper's 72-million-point problem.
struct Nsu3dFixture {
  mesh::UnstructuredMesh mesh;
  std::vector<nsu3d::Level> levels;
  real_t scale = 1;  // to 72M points

  static Nsu3dFixture make(int max_levels = 6);
  perf::Nsu3dLoadModel load_model() const {
    return perf::Nsu3dLoadModel(levels, scale);
  }
};

/// The Cart3D scalability fixture: adapted cut-cell mesh around the SSLV
/// assembly with its SFC-coarsened hierarchy, scaled to 25M cells.
struct Cart3dFixture {
  cartesian::CartMesh mesh;
  cartesian::CartHierarchy hierarchy;
  real_t scale = 1;  // to 25M cells

  static Cart3dFixture make(int mg_levels = 4);
  perf::Cart3dLoadModel load_model() const {
    return perf::Cart3dLoadModel(hierarchy, scale);
  }
};

/// The paper's CPU-count series for the NSU3D studies.
std::vector<index_t> nsu3d_cpu_series();
/// ... and for the Cart3D studies (Figs. 20-22).
std::vector<index_t> cart3d_cpu_series();

/// Prints the standard benchmark banner.
void banner(const std::string& figure, const std::string& what);

/// Shared harness for Figs. 16-19: speedup vs CPUs for NUMAlink and
/// InfiniBand with 1 and 2 OpenMP threads per MPI process, for an n-level
/// multigrid built from `first_level` (0 = include the finest grid).
/// The InfiniBand 1-thread column is capped by eq. (1) at 1524 processes.
/// When `rep` is non-null the table is also captured under `series`.
void print_interconnect_series(perf::Nsu3dLoadModel& lm, int use_levels,
                               int first_level = 0, Reporter* rep = nullptr,
                               const std::string& series = "speedup");

}  // namespace columbia::bench
