// Section V: space-filling-curve machinery quality numbers.
//
// Reproduced claims: single-pass SFC coarsening achieves ratios in excess
// of 7 on typical adapted meshes (Fig. 11); SFC-derived partitions track
// an idealized cubic partitioner's surface-to-volume ratio (Fig. 12, with
// cut cells weighted 2.1); Peano-Hilbert preferred over Morton in 3D.
#include <cstdio>

#include "bench_util.hpp"
#include "geom/components.hpp"
#include "sfc/sfc_partition.hpp"

using namespace columbia;

int main(int argc, char** argv) {
  bench::banner("Sec V — SFC coarsening and partition quality",
                "coarsening ratio, Morton vs Peano-Hilbert, cut-cell weights");
  bench::Reporter rep(argc, argv, "sec5_sfc_quality");

  // Adapted mesh around a small sphere in a large domain (the >7 regime).
  geom::Aabb dom;
  dom.expand({-1, -1, -1});
  dom.expand({1, 1, 1});
  const auto sphere = geom::make_sphere({0, 0, 0}, 0.15, 12, 24);
  cartesian::CartMeshOptions opt;
  opt.base_n = 64;
  opt.max_level = 2;
  const auto m = cartesian::build_cart_mesh(sphere, dom, opt);

  std::printf("adapted mesh: %d cells, %d cut\n", m.num_cells(),
              m.num_cut_cells());
  Table t({"coarsening sweep", "cells", "ratio"});
  cartesian::CartMesh cur = m;
  for (int sweep = 1; sweep <= 3; ++sweep) {
    const auto r = cartesian::coarsen_sfc(cur);
    t.add_row({std::to_string(sweep), std::to_string(r.coarse.num_cells()),
               Table::num(r.coarsening_ratio(), 2)});
    cur = r.coarse;
  }
  t.print();
  rep.table("coarsening", t);
  std::printf("(paper: ratios in excess of 7 on typical examples)\n\n");

  // Partition surface-to-volume vs the ideal cube, Morton vs Hilbert.
  Table q({"SFC", "parts", "mean surf/vol", "ideal cubic", "ratio"});
  for (const auto kind :
       {cartesian::SfcKind::PeanoHilbert, cartesian::SfcKind::Morton}) {
    cartesian::CartMesh um = cartesian::build_uniform_mesh(dom, 32, kind);
    for (index_t p : {6, 12, 48}) {
      const auto part = cartesian::partition_cells(um, p);
      const auto st = cartesian::partition_surface_stats(um, part, p);
      q.add_row({kind == cartesian::SfcKind::PeanoHilbert ? "Peano-Hilbert"
                                                          : "Morton",
                 std::to_string(p), Table::num(st.mean_surface_to_volume, 3),
                 Table::num(st.ideal_cubic, 3),
                 Table::num(st.mean_surface_to_volume / st.ideal_cubic, 2)});
    }
  }
  q.print();
  rep.table("partition_quality", q);
  std::printf("(paper: SFC partitions track the idealized cubic partitioner.\n"
              " The two curves are nearly equivalent at these part counts;\n"
              " the paper prefers Peano-Hilbert in 3D for its unit-step\n"
              " locality, verified in tests/test_sfc.cpp)\n\n");

  // Cut-cell weighting: 2.1x weights balance weighted work.
  const auto part = cartesian::partition_cells(m, 16, 2.1);
  std::vector<real_t> w(std::size_t(m.num_cells()));
  for (std::size_t i = 0; i < w.size(); ++i)
    w[i] = m.cells[i].cut ? 2.1 : 1.0;
  std::printf("16-way partition with cut weight 2.1: balance factor %.3f "
              "(1.0 = perfect)\n",
              sfc::balance_factor(part, w, 16));
  return 0;
}
