// Figure 17: same comparison as Fig. 16 for (a) two-level and (b)
// three-level multigrid. The paper finds that even the two-level scheme
// shows substantial NUMAlink/InfiniBand separation — the inter-grid
// transfer, not the coarse-level smoothing, is the culprit.
#include <cstdio>

#include "bench_util.hpp"

using namespace columbia;

int main(int argc, char** argv) {
  bench::banner("Fig 17 — interconnects, 2- and 3-level multigrid",
                "speedup vs CPUs");
  bench::Reporter rep(argc, argv, "fig17_mg23_interconnects");
  const auto fx = bench::Nsu3dFixture::make(6);
  auto lm = fx.load_model();

  std::printf("\n(a) two-level multigrid:\n");
  bench::print_interconnect_series(lm, 2, 0, &rep, "mg2");
  std::printf("\n(b) three-level multigrid:\n");
  bench::print_interconnect_series(lm, 3, 0, &rep, "mg3");

  std::printf(
      "\npaper shape check: InfiniBand already separates with two levels;\n"
      "the gap widens with each added level (compare Figs. 16b, 18).\n");
  return 0;
}
