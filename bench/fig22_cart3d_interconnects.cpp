// Figure 22: Cart3D 4-level multigrid speedup, NUMAlink vs InfiniBand,
// 32-2016 CPUs (pure MPI — the paper's Cart3D has no hybrid build).
//
// Paper shape: identical within one box (32-496 CPUs: no box-to-box
// traffic); InfiniBand lags across two boxes, with the 508-CPU point
// *under-performing* the single-box 496-CPU run; a further drop across
// four boxes; InfiniBand stops at 1524 CPUs (eq. 1).
#include <cstdio>

#include "bench_util.hpp"

using namespace columbia;

int main(int argc, char** argv) {
  bench::banner("Fig 22 — Cart3D 4-level multigrid, NUMAlink vs InfiniBand",
                "25M-cell SSLV, pure MPI, eq. (1) caps InfiniBand at 1524");
  bench::Reporter rep(argc, argv, "fig22_cart3d_interconnects");

  const auto fx = bench::Cart3dFixture::make(4);
  auto lm = fx.load_model();
  perf::MachineModel model;

  perf::HybridLayout ref;
  ref.total_cpus = 32;
  ref.fabric = perf::Interconnect::NumaLink4;
  const auto visits = perf::cycle_visits(lm.num_levels(), true);
  const auto ref_loads = lm.loads(32, visits);

  // The paper's placements: 32-496 on one box, 508-1000 across two,
  // 1024-2016 across four (Sec. VII).
  auto boxes_of = [](index_t P) {
    if (P <= 496) return 1;
    if (P <= 1000) return 2;
    return 4;
  };
  Table t({"CPUs", "boxes", "sp(NUMAlink)", "sp(InfiniBand)"});
  for (index_t P : bench::cart3d_cpu_series()) {
    perf::HybridLayout nl;
    nl.total_cpus = P;
    nl.fabric = perf::Interconnect::NumaLink4;
    nl.nodes_override = boxes_of(P);
    perf::HybridLayout ib = nl;
    ib.fabric = perf::Interconnect::InfiniBand;
    const auto loads = lm.loads(P, visits);
    std::string ib_cell;
    if (P > perf::max_mpi_processes_infiniband(4))
      ib_cell = "n/a (eq.1: >1524)";
    else
      ib_cell = Table::num(model.speedup(loads, ib, ref_loads, ref), 0);
    t.add_row({std::to_string(P), std::to_string(boxes_of(P)),
               Table::num(model.speedup(loads, nl, ref_loads, ref), 0),
               ib_cell});
  }
  t.print();
  rep.table("speedup", t);

  std::printf(
      "\npaper shape check: curves coincide within one box; InfiniBand's\n"
      "508-CPU (two-box) point falls at/below the 496-CPU single-box point;\n"
      "the gap widens on four boxes; InfiniBand column ends at 1524.\n");
  return 0;
}
