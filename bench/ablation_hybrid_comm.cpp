// Ablation (paper Fig. 7): thread-to-thread vs master-thread hybrid
// communication, measured on the in-process message-passing runtime.
//
// The paper: "the thread parallel approach to communication scales poorly
// due to the MPI calls locking ... Thus, the master thread communication
// strategy is used exclusively in this work", and the master strategy
// "results in a smaller number of larger messages". We measure message
// counts and mean message sizes for a real halo exchange over the wing
// mesh decomposition.
// A second set of series compares the legacy per-call exchange entry
// points (which re-derive message layouts and reallocate buffers every
// call) against the persistent core::ExchangePlan the solvers use in
// steady state: one-time plan build cost, per-exchange wall time, and
// heap allocations per steady-state exchange (the plan contract is zero).
// A third set of series is the overlap ablation: the same halo schedule
// driven blocking (exchange(); compute) vs split (post(); compute;
// finish()) over a real two-member wire (core::LocalGroup) with a
// deliberate compute imbalance, per strategy and per multigrid level.
// "halo stall" is the time the member thread spends inside the halo
// calls themselves — the wait the split path exists to hide.
#include <algorithm>
#include <atomic>
#include <barrier>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <optional>
#include <thread>

#include "bench_util.hpp"
#include "core/exchange_plan.hpp"
#include "nsu3d/partitioned.hpp"
#include "obs/comm_report.hpp"
#include "obs/obs.hpp"
#include "obs/shard.hpp"
#include "smp/hybrid.hpp"
#include "support/timer.hpp"

// Allocation counter for the allocations-per-exchange column.
namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t n) {
  void* p = std::malloc(n ? n : 1);
  if (!p) throw std::bad_alloc();
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return p;
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

using namespace columbia;

int main(int argc, char** argv) {
  bench::banner("Ablation — Fig. 7 hybrid communication strategies",
                "messages and payloads, thread-to-thread vs master-thread");
  bench::Reporter rep(argc, argv, "ablation_hybrid_comm");
  rep.meta("strategy", "thread-to-thread + master-thread (plan vs legacy)");

  // A real decomposition of the wing mesh provides the halo pattern.
  mesh::WingMeshSpec spec;
  spec.n_wrap = 48;
  spec.n_span = 8;
  spec.n_normal = 20;
  const auto m = mesh::make_wing_mesh(spec);
  nsu3d::LevelOptions lo;
  lo.num_levels = 2;  // level 1 feeds the coarse rows of the overlap ablation
  const auto levels = nsu3d::build_levels(m, lo);
  const nsu3d::Level& lvl = levels[0];

  const index_t nparts = 16;
  const auto plan = nsu3d::build_partition_plan(levels, nparts);

  // Partition-local data (6 doubles per owned node, flattened) and the
  // ghost request lists implied by cross-partition edges.
  auto make_halo = [nparts](const nsu3d::Level& L,
                            const std::vector<index_t>& part,
                            smp::PartitionData& data,
                            smp::RequestLists& requests) {
    std::vector<std::vector<index_t>> local_ids(std::size_t(nparts),
                                                std::vector<index_t>{});
    std::vector<index_t> slot(std::size_t(L.num_nodes));
    for (index_t v = 0; v < L.num_nodes; ++v) {
      slot[std::size_t(v)] =
          index_t(local_ids[std::size_t(part[std::size_t(v)])].size());
      local_ids[std::size_t(part[std::size_t(v)])].push_back(v);
    }
    data.assign(std::size_t(nparts), std::vector<real_t>{});
    for (index_t p = 0; p < nparts; ++p) {
      data[std::size_t(p)].resize(local_ids[std::size_t(p)].size() * 6);
      for (std::size_t k = 0; k < data[std::size_t(p)].size(); ++k)
        data[std::size_t(p)][k] = real_t(p) + 1e-3 * real_t(k);
    }
    requests.assign(std::size_t(nparts), std::vector<smp::HaloRequest>{});
    for (std::size_t e = 0; e < L.edges.size(); ++e) {
      const auto [a, b] = L.edges[e];
      const index_t pa = part[std::size_t(a)];
      const index_t pb = part[std::size_t(b)];
      if (pa == pb) continue;
      for (int c = 0; c < 6; ++c) {
        requests[std::size_t(pa)].push_back(
            {pb, slot[std::size_t(b)] * 6 + c});
        requests[std::size_t(pb)].push_back(
            {pa, slot[std::size_t(a)] * 6 + c});
      }
    }
  };
  smp::PartitionData data;
  smp::RequestLists requests;
  make_halo(lvl, plan.levels[0].part, data, requests);

  Table t({"strategy", "ranks", "messages", "total MB", "mean msg (KB)"});
  {
    smp::Runtime rt{int(nparts)};
    smp::exchange_thread_to_thread(rt, data, requests);
    const auto tr = rt.total_traffic();
    t.add_row({"thread-to-thread (Fig 7a)", std::to_string(nparts),
               std::to_string(tr.messages),
               Table::num(double(tr.bytes) / 1e6, 3),
               Table::num(double(tr.bytes) / double(tr.messages) / 1024, 2)});
  }
  for (int tpp : {2, 4, 8}) {
    smp::Runtime rt{int(nparts) / tpp};
    smp::exchange_master_thread(rt, data, requests, tpp);
    const auto tr = rt.total_traffic();
    char name[64];
    std::snprintf(name, sizeof(name), "master-thread, %d threads (Fig 7b)",
                  tpp);
    t.add_row({name, std::to_string(nparts / tpp),
               std::to_string(tr.messages),
               Table::num(double(tr.bytes) / 1e6, 3),
               Table::num(tr.messages
                              ? double(tr.bytes) / double(tr.messages) / 1024
                              : 0.0,
                          2)});
  }
  t.print();
  rep.table("strategies", t);

  // Legacy per-call API vs the persistent ExchangePlan, per strategy.
  const int kExchanges = 50;
  Table pt({"schedule", "build (ms)", "exchange (us)", "allocs/exchange",
            "messages", "total MB"});
  struct Config {
    const char* name;
    core::ExchangePlanOptions opt;
    int tpp;  // 0 = thread-to-thread
  };
  const Config configs[] = {
      {"thread-to-thread (Fig 7a)",
       {core::ExchangeStrategy::ThreadToThread, 1}, 0},
      {"master-thread, 4 threads (Fig 7b)",
       {core::ExchangeStrategy::MasterThread, 4}, 4},
  };
  for (const Config& cfg : configs) {
    // Legacy: layouts re-derived (and buffers reallocated) on every call.
    double legacy_us = 0;
    std::uint64_t legacy_allocs = 0;
    {
      smp::Runtime rt{cfg.tpp ? int(nparts) / cfg.tpp : int(nparts)};
      const std::uint64_t a0 = g_alloc_count.load();
      WallTimer timer;
      for (int e = 0; e < kExchanges; ++e) {
        if (cfg.tpp)
          smp::exchange_master_thread(rt, data, requests, cfg.tpp);
        else
          smp::exchange_thread_to_thread(rt, data, requests);
      }
      legacy_us = timer.seconds() * 1e6 / kExchanges;
      legacy_allocs = (g_alloc_count.load() - a0) / std::uint64_t(kExchanges);
      const auto tr = rt.total_traffic();
      char name[96];
      std::snprintf(name, sizeof(name), "legacy %s", cfg.name);
      pt.add_row({name, Table::num(0.0, 3), Table::num(legacy_us, 1),
                  std::to_string(legacy_allocs),
                  std::to_string(tr.messages / std::uint64_t(kExchanges)),
                  Table::num(double(tr.bytes) / kExchanges / 1e6, 3)});
    }
    // Plan: layouts precomputed once, buffers persistent.
    WallTimer build_timer;
    core::ExchangePlan xplan(requests, cfg.opt);
    const double build_ms = build_timer.seconds() * 1e3;
    xplan.exchange(data);  // warm-up (first-use obs registries)
    const std::uint64_t a0 = g_alloc_count.load();
    WallTimer timer;
    for (int e = 0; e < kExchanges; ++e) xplan.exchange(data);
    const double plan_us = timer.seconds() * 1e6 / kExchanges;
    const std::uint64_t plan_allocs =
        (g_alloc_count.load() - a0) / std::uint64_t(kExchanges);
    char name[96];
    std::snprintf(name, sizeof(name), "plan %s", cfg.name);
    pt.add_row(
        {name, Table::num(build_ms, 3), Table::num(plan_us, 1),
         std::to_string(plan_allocs),
         std::to_string(xplan.messages_per_exchange()),
         Table::num(double(xplan.stats().bytes) /
                        double(xplan.stats().exchanges) / 1e6,
                    3)});
  }
  pt.print();
  rep.table("plan_vs_legacy", pt);

  // Comm observatory: wait-state cost per exchange, per strategy. This
  // pass runs with span recording ON (the timing/alloc passes above run
  // obs-off, so instrumentation overhead never contaminates those rows).
  // "wait/exchange (us)" is Timing-gated by the perf gate; "messages" is
  // exact. Table exists only when observability is compiled in, matching
  // the build that produced the committed baseline.
  if (obs::kCompiledIn) {
    Table ct({"strategy", "messages", "wait/exchange (us)", "late-send %",
              "retransmits"});
    for (const Config& cfg : configs) {
      core::ExchangePlanOptions opt = cfg.opt;
      opt.level = 0;
      core::ExchangePlan xplan(requests, opt);
      xplan.exchange(data);  // warm-up (first-use obs registries)
      obs::reset_trace();
      obs::set_enabled(true);
      for (int e = 0; e < kExchanges; ++e) xplan.exchange(data);
      obs::set_enabled(false);
      const obs::CommReport cr =
          obs::build_comm_report(obs::phase_events_since());
      std::uint64_t msgs = 0;
      for (const obs::CommGroup& g : cr.groups) msgs += g.messages;
      char name[96];
      std::snprintf(name, sizeof(name), "plan %s", cfg.name);
      ct.add_row(
          {name, std::to_string(msgs / std::uint64_t(kExchanges)),
           Table::num(cr.wait_s * 1e6 / kExchanges, 2),
           Table::num(cr.wait_s > 0 ? 100.0 * cr.late_sender_s / cr.wait_s : 0.0,
                      1),
           std::to_string(cr.retransmits)});
      obs::reset_trace();
    }
    ct.print();
    rep.table("comm_observatory", ct);
  }

  // Flight-recorder ablation: the distributed flight recorder
  // (obs/shard.hpp) arms the same span recorder the observatory pass
  // uses, plus a durable-rewrite autoflush thread that keeps rewriting
  // the whole shard through fsync+rename on a short period. This series
  // prices that against the recorder-off exchange on the same plan —
  // the cost a forked rank pays for leaving a mergeable shard behind.
  // "exchange (us)" is Timing-gated by the perf gate; "messages" is
  // exact. Obs-compiled builds only, like comm_observatory.
  if (obs::kCompiledIn) {
    Table ft({"mode", "messages", "exchange (us)"});
    for (const bool armed : {false, true}) {
      core::ExchangePlanOptions opt = configs[0].opt;
      opt.level = 0;
      core::ExchangePlan xplan(requests, opt);
      xplan.exchange(data);  // warm-up (first-use obs registries)
      std::optional<obs::FlightRecorder> rec;
      if (armed) {
        obs::ShardOptions so;
        const char* tmp = std::getenv("TMPDIR");
        so.path = std::string(tmp != nullptr && *tmp != '\0' ? tmp : "/tmp") +
                  "/columbia_bench_flight_recorder.rank0.round0.jsonl";
        so.backend = "local";
        so.flush_ms = 25;  // durable rewrites land mid-measurement
        rec.emplace(so);
      }
      WallTimer timer;
      for (int e = 0; e < kExchanges; ++e) xplan.exchange(data);
      const double us = timer.seconds() * 1e6 / kExchanges;
      if (rec) {
        rec->finalize(obs::ShardClock{});
        std::remove(rec->path().c_str());
      }
      obs::set_enabled(false);
      obs::reset_trace();
      ft.add_row({armed ? "recorder on (t2t)" : "recorder off (t2t)",
                  std::to_string(xplan.messages_per_exchange()),
                  Table::num(us, 1)});
    }
    ft.print();
    rep.table("flight_recorder", ft);
  }

  // Overlap ablation (interior/boundary split, Figs. 16-19): two group
  // members on a real wire (core::LocalGroup), each owning half the
  // partitions, with member 0 carrying twice the interior compute — the
  // load imbalance whose arrival wait the split post()/finish() path
  // hides. Each row drives the identical schedule either blocking
  // (exchange(); compute) or split (post(); compute; finish()).
  //
  //   "arrival wait (us)"  attributed halo.xchg.wait time per iteration:
  //                      how long receivers blocked for data that was not
  //                      yet on the wire. Blocking mode pays the
  //                      straggler's lateness here; split mode posts
  //                      before computing, so frames arrive while the
  //                      fast member still computes. Informational (small
  //                      absolute values under a relative gate would
  //                      amplify CI noise) — this is the per-exchange
  //                      wait the split path reduces.
  //   "halo stall (us)"  wall time inside the halo calls themselves (max
  //                      over members) — bounded below by the ack
  //                      rendezvous both modes share; informational.
  //   "exchange (us)"    end-to-end per iteration (compute + protocol),
  //                      Timing-gated; "messages" is the schedule's wire
  //                      cost, Exact-gated.
  //
  // The coarse rows (level 1) repeat the ablation on the next multigrid
  // level's halo pattern: tiny partitions leave little interior compute
  // to hide behind, which is the Fig. 19 agglomeration motivation.
  smp::PartitionData data1;
  smp::RequestLists requests1;
  make_halo(levels[1], plan.levels[1].part, data1, requests1);

  struct MemberResult {
    double iter_s = 0;
    double stall_s = 0;
    double acc = 0;  // defeats dead-code elimination of the compute loop
  };
  static volatile double g_sink = 0;
  const int kOverlapIters = 20;

  auto run_overlap = [&](const smp::RequestLists& reqs,
                         const smp::PartitionData& dat,
                         core::ExchangeStrategy strat, int tpp, int level,
                         bool split, int reps_base, MemberResult out[2]) {
    core::LocalGroup group(2);
    std::barrier<> sync(3);
    auto compute = [&dat](int r, int reps) {
      real_t acc = 0;
      for (int rep = 0; rep < reps; ++rep)
        for (std::size_t p = std::size_t(r); p < dat.size(); p += 2)
          for (real_t x : dat[p]) acc += x * real_t(1.0000001);
      return acc;
    };
    auto member = [&](int r) {
      auto ep = group.endpoint(r);
      core::ExchangePlanOptions opt;
      opt.strategy = strat;
      opt.threads_per_process = tpp;
      opt.level = level;
      opt.transport = ep.get();
      core::ExchangePlan xplan(reqs, opt);
      // Member 0 is the deliberately imbalanced member. Global channel
      // order starts at member 0's send channels, so the fast member's
      // first wire act is RECEIVING member 0's data: blocking mode pays
      // the straggler's compute as attributed arrival wait, the split
      // mode's early post() hides it.
      const int reps = r == 0 ? reps_base * 2 : reps_base;
      real_t acc = real_t(xplan.exchange(dat)[0].empty() ? 0 : 1);  // warm-up
      sync.arrive_and_wait();  // main resets + enables span recording
      sync.arrive_and_wait();
      WallTimer iter_timer;
      for (int i = 0; i < kOverlapIters; ++i) {
        if (split) {
          WallTimer t1;
          xplan.post(dat);
          out[r].stall_s += t1.seconds();
          acc += compute(r, reps);
          WallTimer t2;
          xplan.finish();
          out[r].stall_s += t2.seconds();
        } else {
          WallTimer t1;
          xplan.exchange(dat);
          out[r].stall_s += t1.seconds();
          acc += compute(r, reps);
        }
      }
      out[r].iter_s = iter_timer.seconds();
      out[r].acc = double(acc);
      sync.arrive_and_wait();  // main stops recording; plans still alive
    };
    std::thread t0(member, 0), t1(member, 1);
    sync.arrive_and_wait();
    obs::reset_trace();
    obs::set_enabled(true);
    sync.arrive_and_wait();
    sync.arrive_and_wait();
    obs::set_enabled(false);
    t0.join();
    t1.join();
    g_sink = g_sink + out[0].acc + out[1].acc;
  };

  Table ot({"mode", "messages", "exchange (us)", "arrival wait (us)",
            "halo stall (us)", "retransmits"});
  struct OverlapConfig {
    const char* name;
    core::ExchangeStrategy strat;
    int tpp;
    int level;
    int reps;  // interior compute per iteration; L1 keeps the realistic
               // coarse-level ratio (little compute to hide behind)
  };
  const OverlapConfig ocfgs[] = {
      {"L0 thread-to-thread", core::ExchangeStrategy::ThreadToThread, 1, 0,
       400},
      {"L0 master-thread, 4 threads", core::ExchangeStrategy::MasterThread, 4,
       0, 400},
      {"L1 thread-to-thread", core::ExchangeStrategy::ThreadToThread, 1, 1,
       50},
      {"L1 master-thread, 4 threads", core::ExchangeStrategy::MasterThread, 4,
       1, 50},
  };
  for (const OverlapConfig& cfg : ocfgs) {
    const smp::RequestLists& reqs = cfg.level == 0 ? requests : requests1;
    const smp::PartitionData& dat = cfg.level == 0 ? data : data1;
    // Schedule wire cost is a build-time property; read it off a local
    // throwaway plan rather than racing the member threads for theirs.
    const std::uint64_t msgs =
        core::ExchangePlan(reqs, {cfg.strat, cfg.tpp}).messages_per_exchange();
    for (const bool split : {false, true}) {
      MemberResult res[2] = {};
      run_overlap(reqs, dat, cfg.strat, cfg.tpp, cfg.level, split, cfg.reps,
                  res);
      std::uint64_t retransmits = 0;
      double wait_s = 0;
      if (obs::kCompiledIn) {
        const obs::CommReport cr =
            obs::build_comm_report(obs::phase_events_since());
        retransmits = cr.retransmits;
        wait_s = cr.wait_s;
        obs::reset_trace();
      }
      char name[96];
      std::snprintf(name, sizeof(name), "%s %s", cfg.name,
                    split ? "split" : "blocking");
      ot.add_row(
          {name, std::to_string(msgs),
           Table::num(std::max(res[0].iter_s, res[1].iter_s) * 1e6 /
                          kOverlapIters,
                      1),
           Table::num(wait_s * 1e6 / kOverlapIters, 1),
           Table::num(std::max(res[0].stall_s, res[1].stall_s) * 1e6 /
                          kOverlapIters,
                      1),
           std::to_string(retransmits)});
    }
  }
  ot.print();
  rep.table("overlap_ablation", ot);

  std::printf(
      "\npaper shape check: the master-thread strategy issues far fewer,\n"
      "larger messages (latency amortization), at the cost of a\n"
      "(thread-)sequential send/receive phase modeled in perf/.\n"
      "plan rows amortize the one-time build over steady-state exchanges\n"
      "and must show zero allocations per exchange.\n"
      "overlap rows: the split path's \"halo stall\" must undercut the\n"
      "blocking path's on the fine level (claimed overlap > 0), while the\n"
      "coarse level shows why agglomeration, not overlap, is the coarse\n"
      "remedy.\n");
  return 0;
}
