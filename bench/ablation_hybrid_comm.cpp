// Ablation (paper Fig. 7): thread-to-thread vs master-thread hybrid
// communication, measured on the in-process message-passing runtime.
//
// The paper: "the thread parallel approach to communication scales poorly
// due to the MPI calls locking ... Thus, the master thread communication
// strategy is used exclusively in this work", and the master strategy
// "results in a smaller number of larger messages". We measure message
// counts and mean message sizes for a real halo exchange over the wing
// mesh decomposition.
// A second set of series compares the legacy per-call exchange entry
// points (which re-derive message layouts and reallocate buffers every
// call) against the persistent core::ExchangePlan the solvers use in
// steady state: one-time plan build cost, per-exchange wall time, and
// heap allocations per steady-state exchange (the plan contract is zero).
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <new>

#include "bench_util.hpp"
#include "core/exchange_plan.hpp"
#include "nsu3d/partitioned.hpp"
#include "obs/comm_report.hpp"
#include "obs/obs.hpp"
#include "smp/hybrid.hpp"
#include "support/timer.hpp"

// Allocation counter for the allocations-per-exchange column.
namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t n) {
  void* p = std::malloc(n ? n : 1);
  if (!p) throw std::bad_alloc();
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return p;
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

using namespace columbia;

int main(int argc, char** argv) {
  bench::banner("Ablation — Fig. 7 hybrid communication strategies",
                "messages and payloads, thread-to-thread vs master-thread");
  bench::Reporter rep(argc, argv, "ablation_hybrid_comm");
  rep.meta("strategy", "thread-to-thread + master-thread (plan vs legacy)");

  // A real decomposition of the wing mesh provides the halo pattern.
  mesh::WingMeshSpec spec;
  spec.n_wrap = 48;
  spec.n_span = 8;
  spec.n_normal = 20;
  const auto m = mesh::make_wing_mesh(spec);
  nsu3d::LevelOptions lo;
  lo.num_levels = 1;
  const auto levels = nsu3d::build_levels(m, lo);
  const nsu3d::Level& lvl = levels[0];

  const index_t nparts = 16;
  const auto plan = nsu3d::build_partition_plan(levels, nparts);
  const auto& part = plan.levels[0].part;

  // Partition-local data (6 doubles per owned node, flattened) and the
  // ghost request lists implied by cross-partition edges.
  std::vector<std::vector<index_t>> local_ids(std::size_t(nparts),
                                              std::vector<index_t>{});
  std::vector<index_t> slot(std::size_t(lvl.num_nodes));
  for (index_t v = 0; v < lvl.num_nodes; ++v) {
    slot[std::size_t(v)] = index_t(local_ids[std::size_t(part[std::size_t(v)])].size());
    local_ids[std::size_t(part[std::size_t(v)])].push_back(v);
  }
  smp::PartitionData data(std::size_t(nparts), std::vector<real_t>{});
  for (index_t p = 0; p < nparts; ++p) {
    data[std::size_t(p)].resize(local_ids[std::size_t(p)].size() * 6);
    for (std::size_t k = 0; k < data[std::size_t(p)].size(); ++k)
      data[std::size_t(p)][k] = real_t(p) + 1e-3 * real_t(k);
  }
  smp::RequestLists requests(std::size_t(nparts),
                             std::vector<smp::HaloRequest>{});
  for (std::size_t e = 0; e < lvl.edges.size(); ++e) {
    const auto [a, b] = lvl.edges[e];
    const index_t pa = part[std::size_t(a)];
    const index_t pb = part[std::size_t(b)];
    if (pa == pb) continue;
    for (int c = 0; c < 6; ++c) {
      requests[std::size_t(pa)].push_back(
          {pb, slot[std::size_t(b)] * 6 + c});
      requests[std::size_t(pb)].push_back(
          {pa, slot[std::size_t(a)] * 6 + c});
    }
  }

  Table t({"strategy", "ranks", "messages", "total MB", "mean msg (KB)"});
  {
    smp::Runtime rt{int(nparts)};
    smp::exchange_thread_to_thread(rt, data, requests);
    const auto tr = rt.total_traffic();
    t.add_row({"thread-to-thread (Fig 7a)", std::to_string(nparts),
               std::to_string(tr.messages),
               Table::num(double(tr.bytes) / 1e6, 3),
               Table::num(double(tr.bytes) / double(tr.messages) / 1024, 2)});
  }
  for (int tpp : {2, 4, 8}) {
    smp::Runtime rt{int(nparts) / tpp};
    smp::exchange_master_thread(rt, data, requests, tpp);
    const auto tr = rt.total_traffic();
    char name[64];
    std::snprintf(name, sizeof(name), "master-thread, %d threads (Fig 7b)",
                  tpp);
    t.add_row({name, std::to_string(nparts / tpp),
               std::to_string(tr.messages),
               Table::num(double(tr.bytes) / 1e6, 3),
               Table::num(tr.messages
                              ? double(tr.bytes) / double(tr.messages) / 1024
                              : 0.0,
                          2)});
  }
  t.print();
  rep.table("strategies", t);

  // Legacy per-call API vs the persistent ExchangePlan, per strategy.
  const int kExchanges = 50;
  Table pt({"schedule", "build (ms)", "exchange (us)", "allocs/exchange",
            "messages", "total MB"});
  struct Config {
    const char* name;
    core::ExchangePlanOptions opt;
    int tpp;  // 0 = thread-to-thread
  };
  const Config configs[] = {
      {"thread-to-thread (Fig 7a)",
       {core::ExchangeStrategy::ThreadToThread, 1}, 0},
      {"master-thread, 4 threads (Fig 7b)",
       {core::ExchangeStrategy::MasterThread, 4}, 4},
  };
  for (const Config& cfg : configs) {
    // Legacy: layouts re-derived (and buffers reallocated) on every call.
    double legacy_us = 0;
    std::uint64_t legacy_allocs = 0;
    {
      smp::Runtime rt{cfg.tpp ? int(nparts) / cfg.tpp : int(nparts)};
      const std::uint64_t a0 = g_alloc_count.load();
      WallTimer timer;
      for (int e = 0; e < kExchanges; ++e) {
        if (cfg.tpp)
          smp::exchange_master_thread(rt, data, requests, cfg.tpp);
        else
          smp::exchange_thread_to_thread(rt, data, requests);
      }
      legacy_us = timer.seconds() * 1e6 / kExchanges;
      legacy_allocs = (g_alloc_count.load() - a0) / std::uint64_t(kExchanges);
      const auto tr = rt.total_traffic();
      char name[96];
      std::snprintf(name, sizeof(name), "legacy %s", cfg.name);
      pt.add_row({name, Table::num(0.0, 3), Table::num(legacy_us, 1),
                  std::to_string(legacy_allocs),
                  std::to_string(tr.messages / std::uint64_t(kExchanges)),
                  Table::num(double(tr.bytes) / kExchanges / 1e6, 3)});
    }
    // Plan: layouts precomputed once, buffers persistent.
    WallTimer build_timer;
    core::ExchangePlan xplan(requests, cfg.opt);
    const double build_ms = build_timer.seconds() * 1e3;
    xplan.exchange(data);  // warm-up (first-use obs registries)
    const std::uint64_t a0 = g_alloc_count.load();
    WallTimer timer;
    for (int e = 0; e < kExchanges; ++e) xplan.exchange(data);
    const double plan_us = timer.seconds() * 1e6 / kExchanges;
    const std::uint64_t plan_allocs =
        (g_alloc_count.load() - a0) / std::uint64_t(kExchanges);
    char name[96];
    std::snprintf(name, sizeof(name), "plan %s", cfg.name);
    pt.add_row(
        {name, Table::num(build_ms, 3), Table::num(plan_us, 1),
         std::to_string(plan_allocs),
         std::to_string(xplan.messages_per_exchange()),
         Table::num(double(xplan.stats().bytes) /
                        double(xplan.stats().exchanges) / 1e6,
                    3)});
  }
  pt.print();
  rep.table("plan_vs_legacy", pt);

  // Comm observatory: wait-state cost per exchange, per strategy. This
  // pass runs with span recording ON (the timing/alloc passes above run
  // obs-off, so instrumentation overhead never contaminates those rows).
  // "wait/exchange (us)" is Timing-gated by the perf gate; "messages" is
  // exact. Table exists only when observability is compiled in, matching
  // the build that produced the committed baseline.
  if (obs::kCompiledIn) {
    Table ct({"strategy", "messages", "wait/exchange (us)", "late-send %",
              "retransmits"});
    for (const Config& cfg : configs) {
      core::ExchangePlanOptions opt = cfg.opt;
      opt.level = 0;
      core::ExchangePlan xplan(requests, opt);
      xplan.exchange(data);  // warm-up (first-use obs registries)
      obs::reset_trace();
      obs::set_enabled(true);
      for (int e = 0; e < kExchanges; ++e) xplan.exchange(data);
      obs::set_enabled(false);
      const obs::CommReport cr =
          obs::build_comm_report(obs::phase_events_since());
      std::uint64_t msgs = 0;
      for (const obs::CommGroup& g : cr.groups) msgs += g.messages;
      char name[96];
      std::snprintf(name, sizeof(name), "plan %s", cfg.name);
      ct.add_row(
          {name, std::to_string(msgs / std::uint64_t(kExchanges)),
           Table::num(cr.wait_s * 1e6 / kExchanges, 2),
           Table::num(cr.wait_s > 0 ? 100.0 * cr.late_sender_s / cr.wait_s : 0.0,
                      1),
           std::to_string(cr.retransmits)});
      obs::reset_trace();
    }
    ct.print();
    rep.table("comm_observatory", ct);
  }

  std::printf(
      "\npaper shape check: the master-thread strategy issues far fewer,\n"
      "larger messages (latency amortization), at the cost of a\n"
      "(thread-)sequential send/receive phase modeled in perf/.\n"
      "plan rows amortize the one-time build over steady-state exchanges\n"
      "and must show zero allocations per exchange.\n");
  return 0;
}
