// Ablation (paper Fig. 7): thread-to-thread vs master-thread hybrid
// communication, measured on the in-process message-passing runtime.
//
// The paper: "the thread parallel approach to communication scales poorly
// due to the MPI calls locking ... Thus, the master thread communication
// strategy is used exclusively in this work", and the master strategy
// "results in a smaller number of larger messages". We measure message
// counts and mean message sizes for a real halo exchange over the wing
// mesh decomposition.
#include <cstdio>

#include "bench_util.hpp"
#include "nsu3d/partitioned.hpp"
#include "smp/hybrid.hpp"

using namespace columbia;

int main(int argc, char** argv) {
  bench::banner("Ablation — Fig. 7 hybrid communication strategies",
                "messages and payloads, thread-to-thread vs master-thread");
  bench::Reporter rep(argc, argv, "ablation_hybrid_comm");

  // A real decomposition of the wing mesh provides the halo pattern.
  mesh::WingMeshSpec spec;
  spec.n_wrap = 48;
  spec.n_span = 8;
  spec.n_normal = 20;
  const auto m = mesh::make_wing_mesh(spec);
  nsu3d::LevelOptions lo;
  lo.num_levels = 1;
  const auto levels = nsu3d::build_levels(m, lo);
  const nsu3d::Level& lvl = levels[0];

  const index_t nparts = 16;
  const auto plan = nsu3d::build_partition_plan(levels, nparts);
  const auto& part = plan.levels[0].part;

  // Partition-local data (6 doubles per owned node, flattened) and the
  // ghost request lists implied by cross-partition edges.
  std::vector<std::vector<index_t>> local_ids(std::size_t(nparts),
                                              std::vector<index_t>{});
  std::vector<index_t> slot(std::size_t(lvl.num_nodes));
  for (index_t v = 0; v < lvl.num_nodes; ++v) {
    slot[std::size_t(v)] = index_t(local_ids[std::size_t(part[std::size_t(v)])].size());
    local_ids[std::size_t(part[std::size_t(v)])].push_back(v);
  }
  smp::PartitionData data(std::size_t(nparts), std::vector<real_t>{});
  for (index_t p = 0; p < nparts; ++p) {
    data[std::size_t(p)].resize(local_ids[std::size_t(p)].size() * 6);
    for (std::size_t k = 0; k < data[std::size_t(p)].size(); ++k)
      data[std::size_t(p)][k] = real_t(p) + 1e-3 * real_t(k);
  }
  smp::RequestLists requests(std::size_t(nparts),
                             std::vector<smp::HaloRequest>{});
  for (std::size_t e = 0; e < lvl.edges.size(); ++e) {
    const auto [a, b] = lvl.edges[e];
    const index_t pa = part[std::size_t(a)];
    const index_t pb = part[std::size_t(b)];
    if (pa == pb) continue;
    for (int c = 0; c < 6; ++c) {
      requests[std::size_t(pa)].push_back(
          {pb, slot[std::size_t(b)] * 6 + c});
      requests[std::size_t(pb)].push_back(
          {pa, slot[std::size_t(a)] * 6 + c});
    }
  }

  Table t({"strategy", "ranks", "messages", "total MB", "mean msg (KB)"});
  {
    smp::Runtime rt{int(nparts)};
    smp::exchange_thread_to_thread(rt, data, requests);
    const auto tr = rt.total_traffic();
    t.add_row({"thread-to-thread (Fig 7a)", std::to_string(nparts),
               std::to_string(tr.messages),
               Table::num(double(tr.bytes) / 1e6, 3),
               Table::num(double(tr.bytes) / double(tr.messages) / 1024, 2)});
  }
  for (int tpp : {2, 4, 8}) {
    smp::Runtime rt{int(nparts) / tpp};
    smp::exchange_master_thread(rt, data, requests, tpp);
    const auto tr = rt.total_traffic();
    char name[64];
    std::snprintf(name, sizeof(name), "master-thread, %d threads (Fig 7b)",
                  tpp);
    t.add_row({name, std::to_string(nparts / tpp),
               std::to_string(tr.messages),
               Table::num(double(tr.bytes) / 1e6, 3),
               Table::num(tr.messages
                              ? double(tr.bytes) / double(tr.messages) / 1024
                              : 0.0,
                          2)});
  }
  t.print();
  rep.table("strategies", t);

  std::printf(
      "\npaper shape check: the master-thread strategy issues far fewer,\n"
      "larger messages (latency amortization), at the cost of a\n"
      "(thread-)sequential send/receive phase modeled in perf/.\n");
  return 0;
}
