// Figure 16: NSU3D 72M-point speedup comparing NUMAlink vs InfiniBand and
// 1 vs 2 OpenMP threads per MPI process: (a) single grid, (b) six-level
// multigrid.
//
// Paper shape: (a) single grid — only slight degradation from NUMAlink to
// InfiniBand, superlinear on both; (b) six-level multigrid — dramatic
// InfiniBand degradation at high CPU counts (inter-grid transfers run at
// the fabric's collapsed random-ring bandwidth). At 2008 CPUs InfiniBand
// pure MPI exceeds the eq. (1) limit and needs 2 threads/process.
#include <cstdio>

#include "bench_util.hpp"

using namespace columbia;

int main(int argc, char** argv) {
  bench::banner("Fig 16 — NUMAlink vs InfiniBand, single grid and 6-level MG",
                "speedup vs CPUs (model over measured decompositions)");
  bench::Reporter rep(argc, argv, "fig16_interconnects");

  const auto fx = bench::Nsu3dFixture::make(6);
  auto lm = fx.load_model();

  std::printf("\n(a) single grid (no multigrid):\n");
  bench::print_interconnect_series(lm, 1, 0, &rep, "single_grid");

  std::printf("\n(b) six-level multigrid W-cycle:\n");
  bench::print_interconnect_series(lm, 6, 0, &rep, "mg6");

  std::printf(
      "\npaper shape check: (a) near-identical curves; (b) InfiniBand falls\n"
      "far below NUMAlink as CPUs grow; 2-OMP hybrid close to pure MPI.\n");
  return 0;
}
