#include "bench_util.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "geom/components.hpp"
#include "obs/json.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "smp/pool.hpp"
#include "support/build_info.hpp"
#include "support/durable.hpp"

namespace columbia::bench {

namespace {

/// True iff the whole cell parses as a finite double ("12", "0.93", "1e3");
/// "n/a (eq.1)" and friends stay strings.
bool numeric_cell(const std::string& cell, double& value) {
  if (cell.empty()) return false;
  char* end = nullptr;
  value = std::strtod(cell.c_str(), &end);
  return end == cell.c_str() + cell.size();
}

}  // namespace

Reporter::Reporter(int argc, char** argv, std::string name)
    : name_(std::move(name)) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], "--json") == 0) path_ = argv[i + 1];
}

void Reporter::meta(const std::string& key, double value) {
  meta_.push_back({key, true, value, {}});
}

void Reporter::meta(const std::string& key, const std::string& value) {
  meta_.push_back({key, false, 0, value});
}

void Reporter::table(const std::string& series, const Table& t) {
  if (active()) tables_.emplace_back(series, t);
}

Reporter::~Reporter() {
  if (!active()) return;
  // Render the whole document in memory and land it tmp+rename (same
  // durability discipline as resil::checkpoint): an aborted run can never
  // leave a truncated JSON for the perf gate to choke on.
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.begin_object();
  w.kv("bench", name_);
  // Provenance stamp: enough to tell two BENCH_*.json files apart without
  // the shell history that produced them. The perf gate refuses to compare
  // documents whose "bench" names differ; provenance explains the rest.
  const BuildInfo& bi = build_info();
  w.key("provenance");
  w.begin_object();
  w.kv("git_sha", bi.git_sha);
  w.kv("build_type", bi.build_type);
  w.kv("obs_compiled", bi.obs_compiled);
  w.kv("columbia_threads", std::int64_t(smp::env_threads()));
  w.kv("hardware_threads", std::int64_t(hardware_threads()));
  w.end_object();
  w.key("meta");
  w.begin_object();
  for (const MetaEntry& m : meta_) {
    w.key(m.key);
    if (m.is_number)
      w.value(m.number);
    else
      w.value(m.text);
  }
  w.end_object();
  w.key("tables");
  w.begin_object();
  for (const auto& [series, t] : tables_) {
    w.key(series);
    w.begin_array();
    for (const auto& row : t.rows()) {
      w.begin_object();
      for (std::size_t c = 0; c < row.size() && c < t.header().size(); ++c) {
        w.key(t.header()[c]);
        double v = 0;
        if (numeric_cell(row[c], v))
          w.value(v);
        else
          w.value(row[c]);
      }
      w.end_object();
    }
    w.end_array();
  }
  w.end_object();
  // With COLUMBIA_REPORT set and spans recorded, embed the process-wide
  // phase profile so a single --json artifact carries both the bench
  // tables and the flight-recorder view that produced them.
  if (obs::kCompiledIn && obs::report_enabled() &&
      obs::num_trace_events() > 0) {
    const obs::PhaseProfile p = obs::current_profile();
    w.key("report");
    obs::write_profile_json_into(w, name_, p);
  }
  w.end_object();
  os << "\n";
  if (!support::durable_write_file(path_, os.str())) {
    std::fprintf(stderr, "reporter: cannot write %s\n", path_.c_str());
    return;
  }
  std::printf("[reporter] wrote %s\n", path_.c_str());
}

Nsu3dFixture Nsu3dFixture::make(int max_levels) {
  Nsu3dFixture fx;
  mesh::WingMeshSpec spec;
  spec.n_wrap = 96;
  spec.n_span = 16;
  spec.n_normal = 32;
  spec.wall_spacing = 1e-4;
  fx.mesh = mesh::make_wing_mesh(spec);
  nsu3d::LevelOptions lo;
  lo.num_levels = max_levels;
  fx.levels = nsu3d::build_levels(fx.mesh, lo);
  fx.scale = 72.0e6 / real_t(fx.mesh.num_points());
  return fx;
}

Cart3dFixture Cart3dFixture::make(int mg_levels) {
  Cart3dFixture fx;
  const geom::TriSurface sslv = geom::make_sslv(0.1, 1);
  geom::Aabb domain = sslv.bounds();
  const geom::Vec3 pad = 1.0 * (domain.hi - domain.lo);
  domain.lo -= pad;
  domain.hi += pad;
  // A large uniform base grid with two adaptation levels: the off-body
  // region dominates, so the SFC coarsener reaches the paper's >7 ratios
  // and the hierarchy bottoms out in a genuinely small coarsest mesh.
  cartesian::CartMeshOptions opt;
  opt.base_n = 48;
  opt.max_level = 2;
  fx.mesh = cartesian::build_cart_mesh(sslv, domain, opt);
  fx.hierarchy = cartesian::build_hierarchy(fx.mesh, mg_levels);
  fx.scale = 25.0e6 / real_t(fx.mesh.num_cells());
  return fx;
}

std::vector<index_t> nsu3d_cpu_series() {
  return {128, 256, 502, 1004, 2008};
}

std::vector<index_t> cart3d_cpu_series() {
  return {32, 64, 128, 256, 496, 508, 1000, 1524, 2016};
}

void print_interconnect_series(perf::Nsu3dLoadModel& lm, int use_levels,
                               int first_level, Reporter* rep,
                               const std::string& series) {
  perf::MachineModel model;
  const int use = std::min(use_levels, lm.num_levels() - first_level);
  const auto visits = perf::cycle_visits(use, true);

  // The paper runs every NSU3D case spread across all four boxes (Sec.
  // VI: even 128 CPUs use 32 per box), so box-to-box traffic is always
  // present.
  perf::HybridLayout ref;
  ref.total_cpus = 128;
  ref.fabric = perf::Interconnect::NumaLink4;
  ref.nodes_override = 4;
  const auto ref_loads = lm.loads(128, visits, use, first_level);

  Table t({"CPUs", "NL 1omp", "NL 2omp", "IB 1omp", "IB 2omp"});
  for (index_t P : nsu3d_cpu_series()) {
    std::vector<std::string> row{std::to_string(P)};
    for (const perf::Interconnect fabric :
         {perf::Interconnect::NumaLink4, perf::Interconnect::InfiniBand}) {
      for (index_t threads : {index_t(1), index_t(2)}) {
        perf::HybridLayout lay;
        lay.total_cpus = P;
        lay.omp_threads_per_mpi = threads;
        lay.fabric = fabric;
        lay.nodes_override = 4;
        // Eq. (1): pure MPI on InfiniBand cannot exceed 1524 processes.
        if (fabric == perf::Interconnect::InfiniBand &&
            lay.mpi_processes() >
                perf::max_mpi_processes_infiniband(4)) {
          row.push_back("n/a (eq.1)");
          continue;
        }
        const auto loads = lm.loads(lay.mpi_processes(), visits, use,
                                    first_level);
        row.push_back(
            Table::num(model.speedup(loads, lay, ref_loads, ref), 0));
      }
    }
    t.add_row(row);
  }
  t.print();
  if (rep) rep->table(series, t);
}

void banner(const std::string& figure, const std::string& what) {
  std::printf("==========================================================\n");
  std::printf("%s\n", figure.c_str());
  std::printf("%s\n", what.c_str());
  std::printf("==========================================================\n");
}

}  // namespace columbia::bench
