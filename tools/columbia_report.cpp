// columbia_report — the performance observatory's offline half.
//
// Ingests the observability layer's machine-readable outputs (Chrome
// traces, convergence JSONL, bench --json reports) and produces the
// paper-style analyses: phase profiles with imbalance factors, Fig.
// 14b/15-style speedup and parallel-efficiency tables across runs, per-
// level time rollups, a halo critical-path estimate, and — with
// --baseline — the perf-regression gate scripts/perf_gate.sh drives.
// All logic lives in obs::report::run (src/obs/report_cli.*) so the
// report test suite covers it hermetically.
#include <iostream>
#include <string>
#include <vector>

#include "obs/report_cli.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return columbia::obs::report::run(args, std::cout, std::cerr);
}
