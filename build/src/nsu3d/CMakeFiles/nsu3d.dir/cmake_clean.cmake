file(REMOVE_RECURSE
  "CMakeFiles/nsu3d.dir/level.cpp.o"
  "CMakeFiles/nsu3d.dir/level.cpp.o.d"
  "CMakeFiles/nsu3d.dir/partitioned.cpp.o"
  "CMakeFiles/nsu3d.dir/partitioned.cpp.o.d"
  "CMakeFiles/nsu3d.dir/solver.cpp.o"
  "CMakeFiles/nsu3d.dir/solver.cpp.o.d"
  "libnsu3d.a"
  "libnsu3d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nsu3d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
