file(REMOVE_RECURSE
  "libnsu3d.a"
)
