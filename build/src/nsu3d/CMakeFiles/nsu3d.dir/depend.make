# Empty dependencies file for nsu3d.
# This may be replaced when dependencies are built.
