file(REMOVE_RECURSE
  "CMakeFiles/mesh.dir/builders.cpp.o"
  "CMakeFiles/mesh.dir/builders.cpp.o.d"
  "CMakeFiles/mesh.dir/dual_metrics.cpp.o"
  "CMakeFiles/mesh.dir/dual_metrics.cpp.o.d"
  "CMakeFiles/mesh.dir/io.cpp.o"
  "CMakeFiles/mesh.dir/io.cpp.o.d"
  "CMakeFiles/mesh.dir/reorder.cpp.o"
  "CMakeFiles/mesh.dir/reorder.cpp.o.d"
  "CMakeFiles/mesh.dir/unstructured.cpp.o"
  "CMakeFiles/mesh.dir/unstructured.cpp.o.d"
  "libmesh.a"
  "libmesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
