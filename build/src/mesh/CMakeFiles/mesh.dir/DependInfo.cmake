
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mesh/builders.cpp" "src/mesh/CMakeFiles/mesh.dir/builders.cpp.o" "gcc" "src/mesh/CMakeFiles/mesh.dir/builders.cpp.o.d"
  "/root/repo/src/mesh/dual_metrics.cpp" "src/mesh/CMakeFiles/mesh.dir/dual_metrics.cpp.o" "gcc" "src/mesh/CMakeFiles/mesh.dir/dual_metrics.cpp.o.d"
  "/root/repo/src/mesh/io.cpp" "src/mesh/CMakeFiles/mesh.dir/io.cpp.o" "gcc" "src/mesh/CMakeFiles/mesh.dir/io.cpp.o.d"
  "/root/repo/src/mesh/reorder.cpp" "src/mesh/CMakeFiles/mesh.dir/reorder.cpp.o" "gcc" "src/mesh/CMakeFiles/mesh.dir/reorder.cpp.o.d"
  "/root/repo/src/mesh/unstructured.cpp" "src/mesh/CMakeFiles/mesh.dir/unstructured.cpp.o" "gcc" "src/mesh/CMakeFiles/mesh.dir/unstructured.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/support.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/geom.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
