file(REMOVE_RECURSE
  "CMakeFiles/driver.dir/database.cpp.o"
  "CMakeFiles/driver.dir/database.cpp.o.d"
  "CMakeFiles/driver.dir/flight.cpp.o"
  "CMakeFiles/driver.dir/flight.cpp.o.d"
  "CMakeFiles/driver.dir/variable_fidelity.cpp.o"
  "CMakeFiles/driver.dir/variable_fidelity.cpp.o.d"
  "libdriver.a"
  "libdriver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
