# Empty compiler generated dependencies file for driver.
# This may be replaced when dependencies are built.
