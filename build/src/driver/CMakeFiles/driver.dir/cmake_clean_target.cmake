file(REMOVE_RECURSE
  "libdriver.a"
)
