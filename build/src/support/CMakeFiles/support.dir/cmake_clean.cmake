file(REMOVE_RECURSE
  "CMakeFiles/support.dir/table.cpp.o"
  "CMakeFiles/support.dir/table.cpp.o.d"
  "libsupport.a"
  "libsupport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
