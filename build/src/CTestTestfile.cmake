# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("linalg")
subdirs("graph")
subdirs("sfc")
subdirs("geom")
subdirs("mesh")
subdirs("cartesian")
subdirs("euler")
subdirs("smp")
subdirs("nsu3d")
subdirs("cart3d")
subdirs("perf")
subdirs("driver")
