file(REMOVE_RECURSE
  "libcart3d.a"
)
