# Empty compiler generated dependencies file for cart3d.
# This may be replaced when dependencies are built.
