file(REMOVE_RECURSE
  "CMakeFiles/cart3d.dir/solver.cpp.o"
  "CMakeFiles/cart3d.dir/solver.cpp.o.d"
  "libcart3d.a"
  "libcart3d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cart3d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
