file(REMOVE_RECURSE
  "CMakeFiles/perf.dir/columbia.cpp.o"
  "CMakeFiles/perf.dir/columbia.cpp.o.d"
  "CMakeFiles/perf.dir/loads.cpp.o"
  "CMakeFiles/perf.dir/loads.cpp.o.d"
  "libperf.a"
  "libperf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
