
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cartesian/adaptation.cpp" "src/cartesian/CMakeFiles/cartesian.dir/adaptation.cpp.o" "gcc" "src/cartesian/CMakeFiles/cartesian.dir/adaptation.cpp.o.d"
  "/root/repo/src/cartesian/cart_mesh.cpp" "src/cartesian/CMakeFiles/cartesian.dir/cart_mesh.cpp.o" "gcc" "src/cartesian/CMakeFiles/cartesian.dir/cart_mesh.cpp.o.d"
  "/root/repo/src/cartesian/clip.cpp" "src/cartesian/CMakeFiles/cartesian.dir/clip.cpp.o" "gcc" "src/cartesian/CMakeFiles/cartesian.dir/clip.cpp.o.d"
  "/root/repo/src/cartesian/coarsen.cpp" "src/cartesian/CMakeFiles/cartesian.dir/coarsen.cpp.o" "gcc" "src/cartesian/CMakeFiles/cartesian.dir/coarsen.cpp.o.d"
  "/root/repo/src/cartesian/inside.cpp" "src/cartesian/CMakeFiles/cartesian.dir/inside.cpp.o" "gcc" "src/cartesian/CMakeFiles/cartesian.dir/inside.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/support.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/geom.dir/DependInfo.cmake"
  "/root/repo/build/src/sfc/CMakeFiles/sfc.dir/DependInfo.cmake"
  "/root/repo/build/src/euler/CMakeFiles/euler.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
