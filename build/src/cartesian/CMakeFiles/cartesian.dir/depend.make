# Empty dependencies file for cartesian.
# This may be replaced when dependencies are built.
