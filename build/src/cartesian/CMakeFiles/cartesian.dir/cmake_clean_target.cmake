file(REMOVE_RECURSE
  "libcartesian.a"
)
