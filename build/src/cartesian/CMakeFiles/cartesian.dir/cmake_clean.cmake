file(REMOVE_RECURSE
  "CMakeFiles/cartesian.dir/adaptation.cpp.o"
  "CMakeFiles/cartesian.dir/adaptation.cpp.o.d"
  "CMakeFiles/cartesian.dir/cart_mesh.cpp.o"
  "CMakeFiles/cartesian.dir/cart_mesh.cpp.o.d"
  "CMakeFiles/cartesian.dir/clip.cpp.o"
  "CMakeFiles/cartesian.dir/clip.cpp.o.d"
  "CMakeFiles/cartesian.dir/coarsen.cpp.o"
  "CMakeFiles/cartesian.dir/coarsen.cpp.o.d"
  "CMakeFiles/cartesian.dir/inside.cpp.o"
  "CMakeFiles/cartesian.dir/inside.cpp.o.d"
  "libcartesian.a"
  "libcartesian.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cartesian.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
