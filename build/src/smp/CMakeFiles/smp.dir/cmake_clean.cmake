file(REMOVE_RECURSE
  "CMakeFiles/smp.dir/hybrid.cpp.o"
  "CMakeFiles/smp.dir/hybrid.cpp.o.d"
  "CMakeFiles/smp.dir/runtime.cpp.o"
  "CMakeFiles/smp.dir/runtime.cpp.o.d"
  "libsmp.a"
  "libsmp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
