file(REMOVE_RECURSE
  "libsmp.a"
)
