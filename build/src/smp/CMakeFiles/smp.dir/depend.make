# Empty dependencies file for smp.
# This may be replaced when dependencies are built.
