file(REMOVE_RECURSE
  "libsfc.a"
)
