
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sfc/hilbert.cpp" "src/sfc/CMakeFiles/sfc.dir/hilbert.cpp.o" "gcc" "src/sfc/CMakeFiles/sfc.dir/hilbert.cpp.o.d"
  "/root/repo/src/sfc/sfc_partition.cpp" "src/sfc/CMakeFiles/sfc.dir/sfc_partition.cpp.o" "gcc" "src/sfc/CMakeFiles/sfc.dir/sfc_partition.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
