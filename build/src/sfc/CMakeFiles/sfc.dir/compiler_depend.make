# Empty compiler generated dependencies file for sfc.
# This may be replaced when dependencies are built.
