file(REMOVE_RECURSE
  "CMakeFiles/sfc.dir/hilbert.cpp.o"
  "CMakeFiles/sfc.dir/hilbert.cpp.o.d"
  "CMakeFiles/sfc.dir/sfc_partition.cpp.o"
  "CMakeFiles/sfc.dir/sfc_partition.cpp.o.d"
  "libsfc.a"
  "libsfc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
