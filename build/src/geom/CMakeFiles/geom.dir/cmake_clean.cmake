file(REMOVE_RECURSE
  "CMakeFiles/geom.dir/components.cpp.o"
  "CMakeFiles/geom.dir/components.cpp.o.d"
  "CMakeFiles/geom.dir/surface.cpp.o"
  "CMakeFiles/geom.dir/surface.cpp.o.d"
  "CMakeFiles/geom.dir/tribox.cpp.o"
  "CMakeFiles/geom.dir/tribox.cpp.o.d"
  "libgeom.a"
  "libgeom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
