# Empty compiler generated dependencies file for geom.
# This may be replaced when dependencies are built.
