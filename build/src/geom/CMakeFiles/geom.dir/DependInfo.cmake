
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geom/components.cpp" "src/geom/CMakeFiles/geom.dir/components.cpp.o" "gcc" "src/geom/CMakeFiles/geom.dir/components.cpp.o.d"
  "/root/repo/src/geom/surface.cpp" "src/geom/CMakeFiles/geom.dir/surface.cpp.o" "gcc" "src/geom/CMakeFiles/geom.dir/surface.cpp.o.d"
  "/root/repo/src/geom/tribox.cpp" "src/geom/CMakeFiles/geom.dir/tribox.cpp.o" "gcc" "src/geom/CMakeFiles/geom.dir/tribox.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
