file(REMOVE_RECURSE
  "libeuler.a"
)
