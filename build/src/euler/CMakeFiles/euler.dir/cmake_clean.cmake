file(REMOVE_RECURSE
  "CMakeFiles/euler.dir/flux.cpp.o"
  "CMakeFiles/euler.dir/flux.cpp.o.d"
  "libeuler.a"
  "libeuler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/euler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
