# Empty compiler generated dependencies file for euler.
# This may be replaced when dependencies are built.
