
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/agglomerate.cpp" "src/graph/CMakeFiles/graph.dir/agglomerate.cpp.o" "gcc" "src/graph/CMakeFiles/graph.dir/agglomerate.cpp.o.d"
  "/root/repo/src/graph/coloring.cpp" "src/graph/CMakeFiles/graph.dir/coloring.cpp.o" "gcc" "src/graph/CMakeFiles/graph.dir/coloring.cpp.o.d"
  "/root/repo/src/graph/csr.cpp" "src/graph/CMakeFiles/graph.dir/csr.cpp.o" "gcc" "src/graph/CMakeFiles/graph.dir/csr.cpp.o.d"
  "/root/repo/src/graph/lines.cpp" "src/graph/CMakeFiles/graph.dir/lines.cpp.o" "gcc" "src/graph/CMakeFiles/graph.dir/lines.cpp.o.d"
  "/root/repo/src/graph/partition.cpp" "src/graph/CMakeFiles/graph.dir/partition.cpp.o" "gcc" "src/graph/CMakeFiles/graph.dir/partition.cpp.o.d"
  "/root/repo/src/graph/rcm.cpp" "src/graph/CMakeFiles/graph.dir/rcm.cpp.o" "gcc" "src/graph/CMakeFiles/graph.dir/rcm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
