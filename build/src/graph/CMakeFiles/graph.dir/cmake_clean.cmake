file(REMOVE_RECURSE
  "CMakeFiles/graph.dir/agglomerate.cpp.o"
  "CMakeFiles/graph.dir/agglomerate.cpp.o.d"
  "CMakeFiles/graph.dir/coloring.cpp.o"
  "CMakeFiles/graph.dir/coloring.cpp.o.d"
  "CMakeFiles/graph.dir/csr.cpp.o"
  "CMakeFiles/graph.dir/csr.cpp.o.d"
  "CMakeFiles/graph.dir/lines.cpp.o"
  "CMakeFiles/graph.dir/lines.cpp.o.d"
  "CMakeFiles/graph.dir/partition.cpp.o"
  "CMakeFiles/graph.dir/partition.cpp.o.d"
  "CMakeFiles/graph.dir/rcm.cpp.o"
  "CMakeFiles/graph.dir/rcm.cpp.o.d"
  "libgraph.a"
  "libgraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
