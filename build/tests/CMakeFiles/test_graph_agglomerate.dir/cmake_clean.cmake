file(REMOVE_RECURSE
  "CMakeFiles/test_graph_agglomerate.dir/test_graph_agglomerate.cpp.o"
  "CMakeFiles/test_graph_agglomerate.dir/test_graph_agglomerate.cpp.o.d"
  "test_graph_agglomerate"
  "test_graph_agglomerate.pdb"
  "test_graph_agglomerate[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_graph_agglomerate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
