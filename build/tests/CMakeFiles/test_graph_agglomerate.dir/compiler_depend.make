# Empty compiler generated dependencies file for test_graph_agglomerate.
# This may be replaced when dependencies are built.
