file(REMOVE_RECURSE
  "CMakeFiles/test_cart3d.dir/test_cart3d.cpp.o"
  "CMakeFiles/test_cart3d.dir/test_cart3d.cpp.o.d"
  "test_cart3d"
  "test_cart3d.pdb"
  "test_cart3d[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cart3d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
