# Empty dependencies file for test_cart3d.
# This may be replaced when dependencies are built.
