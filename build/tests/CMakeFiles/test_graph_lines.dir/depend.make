# Empty dependencies file for test_graph_lines.
# This may be replaced when dependencies are built.
