file(REMOVE_RECURSE
  "CMakeFiles/test_graph_lines.dir/test_graph_lines.cpp.o"
  "CMakeFiles/test_graph_lines.dir/test_graph_lines.cpp.o.d"
  "test_graph_lines"
  "test_graph_lines.pdb"
  "test_graph_lines[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_graph_lines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
