file(REMOVE_RECURSE
  "CMakeFiles/test_euler.dir/test_euler.cpp.o"
  "CMakeFiles/test_euler.dir/test_euler.cpp.o.d"
  "test_euler"
  "test_euler.pdb"
  "test_euler[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_euler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
