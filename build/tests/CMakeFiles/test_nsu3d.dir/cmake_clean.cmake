file(REMOVE_RECURSE
  "CMakeFiles/test_nsu3d.dir/test_nsu3d.cpp.o"
  "CMakeFiles/test_nsu3d.dir/test_nsu3d.cpp.o.d"
  "test_nsu3d"
  "test_nsu3d.pdb"
  "test_nsu3d[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nsu3d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
