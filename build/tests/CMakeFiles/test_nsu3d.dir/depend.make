# Empty dependencies file for test_nsu3d.
# This may be replaced when dependencies are built.
