file(REMOVE_RECURSE
  "CMakeFiles/test_hybrid_comm.dir/test_hybrid_comm.cpp.o"
  "CMakeFiles/test_hybrid_comm.dir/test_hybrid_comm.cpp.o.d"
  "test_hybrid_comm"
  "test_hybrid_comm.pdb"
  "test_hybrid_comm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hybrid_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
