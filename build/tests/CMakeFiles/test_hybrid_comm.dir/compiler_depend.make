# Empty compiler generated dependencies file for test_hybrid_comm.
# This may be replaced when dependencies are built.
