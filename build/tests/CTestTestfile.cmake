# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_linalg[1]_include.cmake")
include("/root/repo/build/tests/test_graph_csr[1]_include.cmake")
include("/root/repo/build/tests/test_graph_partition[1]_include.cmake")
include("/root/repo/build/tests/test_graph_agglomerate[1]_include.cmake")
include("/root/repo/build/tests/test_graph_lines[1]_include.cmake")
include("/root/repo/build/tests/test_sfc[1]_include.cmake")
include("/root/repo/build/tests/test_geom[1]_include.cmake")
include("/root/repo/build/tests/test_mesh[1]_include.cmake")
include("/root/repo/build/tests/test_euler[1]_include.cmake")
include("/root/repo/build/tests/test_cartesian[1]_include.cmake")
include("/root/repo/build/tests/test_cart3d[1]_include.cmake")
include("/root/repo/build/tests/test_smp[1]_include.cmake")
include("/root/repo/build/tests/test_nsu3d[1]_include.cmake")
include("/root/repo/build/tests/test_perf[1]_include.cmake")
include("/root/repo/build/tests/test_driver[1]_include.cmake")
include("/root/repo/build/tests/test_mesh_io[1]_include.cmake")
include("/root/repo/build/tests/test_flight[1]_include.cmake")
include("/root/repo/build/tests/test_hybrid_comm[1]_include.cmake")
include("/root/repo/build/tests/test_adaptation[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_reorder[1]_include.cmake")
