# Empty compiler generated dependencies file for fig16_interconnects.
# This may be replaced when dependencies are built.
