file(REMOVE_RECURSE
  "../bench/fig16_interconnects"
  "../bench/fig16_interconnects.pdb"
  "CMakeFiles/fig16_interconnects.dir/fig16_interconnects.cpp.o"
  "CMakeFiles/fig16_interconnects.dir/fig16_interconnects.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_interconnects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
