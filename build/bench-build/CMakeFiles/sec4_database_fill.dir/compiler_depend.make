# Empty compiler generated dependencies file for sec4_database_fill.
# This may be replaced when dependencies are built.
