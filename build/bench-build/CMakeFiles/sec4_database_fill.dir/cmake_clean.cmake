file(REMOVE_RECURSE
  "../bench/sec4_database_fill"
  "../bench/sec4_database_fill.pdb"
  "CMakeFiles/sec4_database_fill.dir/sec4_database_fill.cpp.o"
  "CMakeFiles/sec4_database_fill.dir/sec4_database_fill.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec4_database_fill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
