# Empty compiler generated dependencies file for fig15_hybrid_efficiency.
# This may be replaced when dependencies are built.
