file(REMOVE_RECURSE
  "../bench/fig15_hybrid_efficiency"
  "../bench/fig15_hybrid_efficiency.pdb"
  "CMakeFiles/fig15_hybrid_efficiency.dir/fig15_hybrid_efficiency.cpp.o"
  "CMakeFiles/fig15_hybrid_efficiency.dir/fig15_hybrid_efficiency.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_hybrid_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
