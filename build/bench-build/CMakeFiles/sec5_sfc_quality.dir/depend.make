# Empty dependencies file for sec5_sfc_quality.
# This may be replaced when dependencies are built.
