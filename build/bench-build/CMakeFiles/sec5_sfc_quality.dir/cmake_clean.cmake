file(REMOVE_RECURSE
  "../bench/sec5_sfc_quality"
  "../bench/sec5_sfc_quality.pdb"
  "CMakeFiles/sec5_sfc_quality.dir/sec5_sfc_quality.cpp.o"
  "CMakeFiles/sec5_sfc_quality.dir/sec5_sfc_quality.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec5_sfc_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
