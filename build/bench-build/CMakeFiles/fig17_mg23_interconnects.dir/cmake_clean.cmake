file(REMOVE_RECURSE
  "../bench/fig17_mg23_interconnects"
  "../bench/fig17_mg23_interconnects.pdb"
  "CMakeFiles/fig17_mg23_interconnects.dir/fig17_mg23_interconnects.cpp.o"
  "CMakeFiles/fig17_mg23_interconnects.dir/fig17_mg23_interconnects.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_mg23_interconnects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
