# Empty dependencies file for fig17_mg23_interconnects.
# This may be replaced when dependencies are built.
