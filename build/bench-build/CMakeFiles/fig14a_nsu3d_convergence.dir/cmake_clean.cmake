file(REMOVE_RECURSE
  "../bench/fig14a_nsu3d_convergence"
  "../bench/fig14a_nsu3d_convergence.pdb"
  "CMakeFiles/fig14a_nsu3d_convergence.dir/fig14a_nsu3d_convergence.cpp.o"
  "CMakeFiles/fig14a_nsu3d_convergence.dir/fig14a_nsu3d_convergence.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14a_nsu3d_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
