# Empty dependencies file for fig14a_nsu3d_convergence.
# This may be replaced when dependencies are built.
