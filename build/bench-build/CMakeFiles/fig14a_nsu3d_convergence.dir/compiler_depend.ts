# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig14a_nsu3d_convergence.
