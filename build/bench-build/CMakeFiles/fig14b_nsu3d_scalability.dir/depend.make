# Empty dependencies file for fig14b_nsu3d_scalability.
# This may be replaced when dependencies are built.
