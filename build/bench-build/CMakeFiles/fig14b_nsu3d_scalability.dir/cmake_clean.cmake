file(REMOVE_RECURSE
  "../bench/fig14b_nsu3d_scalability"
  "../bench/fig14b_nsu3d_scalability.pdb"
  "CMakeFiles/fig14b_nsu3d_scalability.dir/fig14b_nsu3d_scalability.cpp.o"
  "CMakeFiles/fig14b_nsu3d_scalability.dir/fig14b_nsu3d_scalability.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14b_nsu3d_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
