
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig14b_nsu3d_scalability.cpp" "bench-build/CMakeFiles/fig14b_nsu3d_scalability.dir/fig14b_nsu3d_scalability.cpp.o" "gcc" "bench-build/CMakeFiles/fig14b_nsu3d_scalability.dir/fig14b_nsu3d_scalability.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench-build/CMakeFiles/bench_util.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/perf.dir/DependInfo.cmake"
  "/root/repo/build/src/driver/CMakeFiles/driver.dir/DependInfo.cmake"
  "/root/repo/build/src/nsu3d/CMakeFiles/nsu3d.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/graph.dir/DependInfo.cmake"
  "/root/repo/build/src/smp/CMakeFiles/smp.dir/DependInfo.cmake"
  "/root/repo/build/src/cart3d/CMakeFiles/cart3d.dir/DependInfo.cmake"
  "/root/repo/build/src/cartesian/CMakeFiles/cartesian.dir/DependInfo.cmake"
  "/root/repo/build/src/sfc/CMakeFiles/sfc.dir/DependInfo.cmake"
  "/root/repo/build/src/euler/CMakeFiles/euler.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/geom.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
