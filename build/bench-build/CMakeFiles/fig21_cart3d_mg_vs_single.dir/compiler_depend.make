# Empty compiler generated dependencies file for fig21_cart3d_mg_vs_single.
# This may be replaced when dependencies are built.
