file(REMOVE_RECURSE
  "../bench/fig21_cart3d_mg_vs_single"
  "../bench/fig21_cart3d_mg_vs_single.pdb"
  "CMakeFiles/fig21_cart3d_mg_vs_single.dir/fig21_cart3d_mg_vs_single.cpp.o"
  "CMakeFiles/fig21_cart3d_mg_vs_single.dir/fig21_cart3d_mg_vs_single.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig21_cart3d_mg_vs_single.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
