# Empty dependencies file for fig18_mg45_interconnects.
# This may be replaced when dependencies are built.
