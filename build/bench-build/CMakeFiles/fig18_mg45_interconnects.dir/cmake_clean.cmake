file(REMOVE_RECURSE
  "../bench/fig18_mg45_interconnects"
  "../bench/fig18_mg45_interconnects.pdb"
  "CMakeFiles/fig18_mg45_interconnects.dir/fig18_mg45_interconnects.cpp.o"
  "CMakeFiles/fig18_mg45_interconnects.dir/fig18_mg45_interconnects.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_mg45_interconnects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
