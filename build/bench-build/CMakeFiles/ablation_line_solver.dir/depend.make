# Empty dependencies file for ablation_line_solver.
# This may be replaced when dependencies are built.
