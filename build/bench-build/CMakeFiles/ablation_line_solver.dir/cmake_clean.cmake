file(REMOVE_RECURSE
  "../bench/ablation_line_solver"
  "../bench/ablation_line_solver.pdb"
  "CMakeFiles/ablation_line_solver.dir/ablation_line_solver.cpp.o"
  "CMakeFiles/ablation_line_solver.dir/ablation_line_solver.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_line_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
