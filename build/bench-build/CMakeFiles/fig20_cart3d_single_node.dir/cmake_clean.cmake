file(REMOVE_RECURSE
  "../bench/fig20_cart3d_single_node"
  "../bench/fig20_cart3d_single_node.pdb"
  "CMakeFiles/fig20_cart3d_single_node.dir/fig20_cart3d_single_node.cpp.o"
  "CMakeFiles/fig20_cart3d_single_node.dir/fig20_cart3d_single_node.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_cart3d_single_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
