# Empty dependencies file for fig20_cart3d_single_node.
# This may be replaced when dependencies are built.
