# Empty dependencies file for ablation_hybrid_comm.
# This may be replaced when dependencies are built.
