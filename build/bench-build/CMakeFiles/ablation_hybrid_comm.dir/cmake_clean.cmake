file(REMOVE_RECURSE
  "../bench/ablation_hybrid_comm"
  "../bench/ablation_hybrid_comm.pdb"
  "CMakeFiles/ablation_hybrid_comm.dir/ablation_hybrid_comm.cpp.o"
  "CMakeFiles/ablation_hybrid_comm.dir/ablation_hybrid_comm.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hybrid_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
