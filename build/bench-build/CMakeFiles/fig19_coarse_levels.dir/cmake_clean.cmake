file(REMOVE_RECURSE
  "../bench/fig19_coarse_levels"
  "../bench/fig19_coarse_levels.pdb"
  "CMakeFiles/fig19_coarse_levels.dir/fig19_coarse_levels.cpp.o"
  "CMakeFiles/fig19_coarse_levels.dir/fig19_coarse_levels.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_coarse_levels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
