# Empty compiler generated dependencies file for fig19_coarse_levels.
# This may be replaced when dependencies are built.
