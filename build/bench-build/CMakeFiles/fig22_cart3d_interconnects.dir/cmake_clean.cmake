file(REMOVE_RECURSE
  "../bench/fig22_cart3d_interconnects"
  "../bench/fig22_cart3d_interconnects.pdb"
  "CMakeFiles/fig22_cart3d_interconnects.dir/fig22_cart3d_interconnects.cpp.o"
  "CMakeFiles/fig22_cart3d_interconnects.dir/fig22_cart3d_interconnects.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig22_cart3d_interconnects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
