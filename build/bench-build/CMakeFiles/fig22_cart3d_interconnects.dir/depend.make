# Empty dependencies file for fig22_cart3d_interconnects.
# This may be replaced when dependencies are built.
