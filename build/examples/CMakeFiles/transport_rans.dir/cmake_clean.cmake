file(REMOVE_RECURSE
  "CMakeFiles/transport_rans.dir/transport_rans.cpp.o"
  "CMakeFiles/transport_rans.dir/transport_rans.cpp.o.d"
  "transport_rans"
  "transport_rans.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transport_rans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
