# Empty compiler generated dependencies file for transport_rans.
# This may be replaced when dependencies are built.
