# Empty compiler generated dependencies file for adaptive_refinement.
# This may be replaced when dependencies are built.
