file(REMOVE_RECURSE
  "CMakeFiles/adaptive_refinement.dir/adaptive_refinement.cpp.o"
  "CMakeFiles/adaptive_refinement.dir/adaptive_refinement.cpp.o.d"
  "adaptive_refinement"
  "adaptive_refinement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_refinement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
