file(REMOVE_RECURSE
  "CMakeFiles/shuttle_database.dir/shuttle_database.cpp.o"
  "CMakeFiles/shuttle_database.dir/shuttle_database.cpp.o.d"
  "shuttle_database"
  "shuttle_database.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shuttle_database.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
