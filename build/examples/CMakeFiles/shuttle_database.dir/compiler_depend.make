# Empty compiler generated dependencies file for shuttle_database.
# This may be replaced when dependencies are built.
