file(REMOVE_RECURSE
  "CMakeFiles/variable_fidelity_campaign.dir/variable_fidelity_campaign.cpp.o"
  "CMakeFiles/variable_fidelity_campaign.dir/variable_fidelity_campaign.cpp.o.d"
  "variable_fidelity_campaign"
  "variable_fidelity_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/variable_fidelity_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
