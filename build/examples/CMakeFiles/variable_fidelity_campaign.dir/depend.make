# Empty dependencies file for variable_fidelity_campaign.
# This may be replaced when dependencies are built.
