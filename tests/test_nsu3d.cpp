#include <gtest/gtest.h>

#include "mesh/builders.hpp"
#include "nsu3d/partitioned.hpp"
#include "nsu3d/solver.hpp"

namespace columbia::nsu3d {
namespace {

mesh::UnstructuredMesh small_wing() {
  mesh::WingMeshSpec spec;
  spec.n_wrap = 24;
  spec.n_span = 3;
  spec.n_normal = 10;
  spec.wall_spacing = 1e-4;
  return mesh::make_wing_mesh(spec);
}

TEST(Levels, HierarchyShrinksGeometrically) {
  const auto m = small_wing();
  LevelOptions opt;
  opt.num_levels = 5;
  const auto levels = build_levels(m, opt);
  ASSERT_GE(levels.size(), 3u);
  for (std::size_t l = 1; l < levels.size(); ++l) {
    const real_t ratio = real_t(levels[l - 1].num_nodes) /
                         real_t(levels[l].num_nodes);
    EXPECT_GT(ratio, 3.0) << "level " << l;
  }
}

TEST(Levels, CoarseVolumesConserved) {
  const auto m = small_wing();
  LevelOptions opt;
  opt.num_levels = 4;
  const auto levels = build_levels(m, opt);
  real_t v0 = 0, vl = 0;
  for (real_t v : levels[0].node_volume) v0 += v;
  for (real_t v : levels.back().node_volume) vl += v;
  EXPECT_NEAR(vl, v0, 1e-8 * std::abs(v0));
}

TEST(Levels, CoarseEdgeNormalsStillClose) {
  // The accumulated coarse closure must still telescope: for each coarse
  // node, signed edge normals + boundary normals sum to ~0.
  const auto m = small_wing();
  LevelOptions opt;
  opt.num_levels = 3;
  const auto levels = build_levels(m, opt);
  const Level& c = levels[1];
  std::vector<geom::Vec3> sum(std::size_t(c.num_nodes));
  for (std::size_t e = 0; e < c.edges.size(); ++e) {
    const auto [a, b] = c.edges[e];
    sum[std::size_t(a)] += c.edge_normal[e];
    sum[std::size_t(b)] -= c.edge_normal[e];
  }
  for (index_t v = 0; v < c.num_nodes; ++v)
    for (const geom::Vec3& bn : c.boundary_normal[std::size_t(v)])
      sum[std::size_t(v)] += bn;
  for (const geom::Vec3& s : sum) EXPECT_LT(norm(s), 1e-10);
}

TEST(Levels, WallDistancePropagatesToCoarse) {
  const auto m = small_wing();
  LevelOptions opt;
  opt.num_levels = 3;
  const auto levels = build_levels(m, opt);
  real_t max_d = 0;
  for (real_t d : levels[1].wall_distance) max_d = std::max(max_d, d);
  EXPECT_GT(max_d, 1.0);  // farfield agglomerates are far from the wall
}

TEST(Nsu3d, FreestreamPreservedInviscid) {
  // Inviscid mode on the wing mesh: a symmetric airfoil at freestream
  // init; the scheme must not blow up in one cycle and the residual stays
  // finite (the wing disturbs the freestream, so it is not zero).
  const auto m = small_wing();
  euler::FlowConditions fc;
  fc.mach = 0.5;
  Nsu3dOptions o;
  o.viscous = false;
  o.mg_levels = 1;
  Nsu3dSolver s(m, fc, o);
  const real_t r0 = s.residual_norm();
  EXPECT_TRUE(std::isfinite(r0));
  s.run_cycle();
  EXPECT_TRUE(std::isfinite(s.residual_norm()));
}

TEST(Nsu3d, ConvergesTwoOrders) {
  const auto m = small_wing();
  euler::FlowConditions fc;
  fc.mach = 0.75;
  fc.reynolds = 3e6;
  Nsu3dOptions o;
  o.mg_levels = 3;
  Nsu3dSolver s(m, fc, o);
  const auto h = s.solve(60, 2);
  EXPECT_LT(h.back(), h.front() * 1.5e-2);
}

TEST(Nsu3d, MultigridBeatsSingleGrid) {
  const auto m = small_wing();
  euler::FlowConditions fc;
  fc.mach = 0.75;
  Nsu3dOptions single;
  single.mg_levels = 1;
  Nsu3dOptions mg;
  mg.mg_levels = 3;
  Nsu3dSolver s1(m, fc, single);
  Nsu3dSolver s3(m, fc, mg);
  const auto h1 = s1.solve(25, 10);
  const auto h3 = s3.solve(25, 10);
  EXPECT_LT(h3.back(), h1.back());
}

TEST(Nsu3d, LineSmootherBeatsPointSmootherOnStretchedMesh) {
  // The paper's central algorithmic claim (Sec. III): line-implicit
  // smoothing overcomes the anisotropy-induced stiffness.
  const auto m = small_wing();
  euler::FlowConditions fc;
  fc.mach = 0.75;
  Nsu3dOptions point;
  point.mg_levels = 2;
  point.smoother = SmootherKind::PointImplicit;
  Nsu3dOptions line = point;
  line.smoother = SmootherKind::LineImplicit;
  Nsu3dSolver sp(m, fc, point);
  Nsu3dSolver sl(m, fc, line);
  const auto hp = sp.solve(25, 10);
  const auto hl = sl.solve(25, 10);
  EXPECT_LT(hl.back(), hp.back());
}

TEST(Nsu3d, WallNodesStayNoSlip) {
  const auto m = small_wing();
  euler::FlowConditions fc;
  fc.mach = 0.75;
  Nsu3dOptions o;
  o.mg_levels = 2;
  Nsu3dSolver s(m, fc, o);
  s.run_cycle();
  s.run_cycle();
  const Level& lvl = s.level(0);
  const auto sol = s.solution();
  for (index_t v = 0; v < lvl.num_nodes; ++v) {
    if (!lvl.is_wall_node(v)) continue;
    EXPECT_DOUBLE_EQ(sol[std::size_t(v)][1], 0.0);
    EXPECT_DOUBLE_EQ(sol[std::size_t(v)][2], 0.0);
    EXPECT_DOUBLE_EQ(sol[std::size_t(v)][3], 0.0);
    EXPECT_DOUBLE_EQ(sol[std::size_t(v)][5], 0.0);
  }
}

TEST(Nsu3d, WCycleVisitCounts) {
  const auto m = small_wing();
  euler::FlowConditions fc;
  Nsu3dOptions o;
  o.mg_levels = 4;
  o.cycle = CycleType::W;
  Nsu3dSolver s(m, fc, o);
  const auto w = s.level_work();
  ASSERT_GE(w.size(), 3u);
  EXPECT_EQ(w[0].visits_per_cycle, 1);
  EXPECT_EQ(w[1].visits_per_cycle, 2);
  if (w.size() >= 4) {
    EXPECT_EQ(w[2].visits_per_cycle, 4);
  }
}

TEST(Nsu3d, ForcesFiniteAfterSolve) {
  const auto m = small_wing();
  euler::FlowConditions fc;
  fc.mach = 0.75;
  Nsu3dOptions o;
  o.mg_levels = 3;
  Nsu3dSolver s(m, fc, o);
  s.solve(30, 2);
  const Forces f = s.integrate_forces();
  EXPECT_TRUE(std::isfinite(f.cl));
  EXPECT_TRUE(std::isfinite(f.cd));
}

TEST(Partitioned, PlanCoversAllLevels) {
  const auto m = small_wing();
  LevelOptions lo;
  lo.num_levels = 3;
  const auto levels = build_levels(m, lo);
  const auto plan = build_partition_plan(levels, 8);
  ASSERT_EQ(plan.levels.size(), levels.size());
  for (std::size_t l = 0; l < levels.size(); ++l) {
    EXPECT_EQ(index_t(plan.levels[l].part.size()), levels[l].num_nodes);
    for (index_t p : plan.levels[l].part) {
      EXPECT_GE(p, 0);
      EXPECT_LT(p, 8);
    }
  }
}

TEST(Partitioned, LinesNeverBroken) {
  const auto m = small_wing();
  LevelOptions lo;
  lo.num_levels = 2;
  const auto levels = build_levels(m, lo);
  ASSERT_GT(levels[0].lines.longest(), 1);
  const auto plan = build_partition_plan(levels, 6);
  EXPECT_TRUE(lines_unbroken(levels[0], plan.levels[0].part));
}

TEST(Partitioned, CommDegreeModest) {
  // The paper quotes max degree 18 for the fine-grid communication graph
  // and 19 for the inter-grid graph; small decompositions stay well below.
  const auto m = small_wing();
  LevelOptions lo;
  lo.num_levels = 3;
  const auto levels = build_levels(m, lo);
  const auto plan = build_partition_plan(levels, 8);
  EXPECT_LE(plan.levels[0].max_comm_degree, 19);
  EXPECT_LE(plan.levels[0].intergrid_degree, 20);
}

TEST(Partitioned, ParallelResidualMatchesSerialStructure) {
  // The halo machinery end-to-end: the rank-parallel first-order residual
  // equals a serial evaluation up to floating-point summation order.
  const auto m = small_wing();
  LevelOptions lo;
  lo.num_levels = 1;
  const auto levels = build_levels(m, lo);
  const Level& lvl = levels[0];

  euler::FlowConditions fc;
  fc.mach = 0.6;
  const euler::Prim inf = fc.freestream();
  std::vector<State> u(std::size_t(lvl.num_nodes));
  // A smooth, non-trivial field: freestream perturbed by position.
  for (index_t v = 0; v < lvl.num_nodes; ++v) {
    const geom::Vec3& x = lvl.node_center[std::size_t(v)];
    euler::Prim w = inf;
    w.rho *= 1.0 + 0.05 * std::sin(x.x + 0.3 * x.y);
    w.p *= 1.0 + 0.05 * std::cos(0.7 * x.z);
    const auto c5 = euler::to_conservative(w);
    for (int c = 0; c < 5; ++c) u[std::size_t(v)][std::size_t(c)] = c5[std::size_t(c)];
    u[std::size_t(v)][5] = 1e-5 * w.rho;
  }

  const auto plan = build_partition_plan(levels, 4);
  const auto par = parallel_residual(lvl, u, inf, plan.levels[0].part, 4);
  // Serial reference: one "partition".
  std::vector<index_t> one(std::size_t(lvl.num_nodes), 0);
  const auto ser = parallel_residual(lvl, u, inf, one, 1);
  ASSERT_EQ(par.size(), ser.size());
  real_t scale = 0;
  for (const auto& r : ser)
    for (real_t x : r) scale = std::max(scale, std::abs(x));
  for (std::size_t i = 0; i < par.size(); ++i)
    for (int c = 0; c < 6; ++c)
      EXPECT_NEAR(par[i][std::size_t(c)], ser[i][std::size_t(c)], 1e-10 * scale)
          << "node " << i << " comp " << c;
}

TEST(Partitioned, EmptyPartsOnTinyCoarseLevels) {
  // Paper Sec. VI: at 2008 CPUs some coarsest-level partitions are empty.
  const auto m = small_wing();
  LevelOptions lo;
  lo.num_levels = 4;
  const auto levels = build_levels(m, lo);
  const index_t coarse_nodes = levels.back().num_nodes;
  const auto plan = build_partition_plan(levels, coarse_nodes + 4);
  EXPECT_GT(plan.levels.back().empty_parts, 0);
}

}  // namespace
}  // namespace columbia::nsu3d
