// Thread-count equivalence and edge-reorder properties of the solver
// kernels. The pool's determinism contract (smp/pool.hpp) plus colored
// scatter loops promise bit-identical results for every thread count;
// these tests hold the solvers to that promise.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "cart3d/solver.hpp"
#include "geom/components.hpp"
#include "mesh/builders.hpp"
#include "nsu3d/solver.hpp"
#include "smp/pool.hpp"

namespace columbia {
namespace {

/// Restores the global pool to a single thread when a test exits.
struct PoolGuard {
  ~PoolGuard() { smp::set_global_threads(1); }
};

mesh::UnstructuredMesh small_wing() {
  mesh::WingMeshSpec spec;
  spec.n_wrap = 24;
  spec.n_span = 3;
  spec.n_normal = 10;
  spec.wall_spacing = 1e-4;
  return mesh::make_wing_mesh(spec);
}

std::vector<real_t> run_nsu3d(const mesh::UnstructuredMesh& m,
                              nsu3d::SmootherKind smoother, int threads) {
  PoolGuard guard;
  smp::set_global_threads(threads);
  euler::FlowConditions fc;
  fc.mach = 0.75;
  fc.reynolds = 3e6;
  nsu3d::Nsu3dOptions o;
  o.mg_levels = 3;
  o.smoother = smoother;
  nsu3d::Nsu3dSolver s(m, fc, o);
  return s.solve(6, 10);
}

TEST(ThreadEquivalence, Nsu3dLineImplicitHistoryBitIdentical) {
  const auto m = small_wing();
  const auto h1 = run_nsu3d(m, nsu3d::SmootherKind::LineImplicit, 1);
  const auto h4 = run_nsu3d(m, nsu3d::SmootherKind::LineImplicit, 4);
  ASSERT_EQ(h1.size(), h4.size());
  for (std::size_t i = 0; i < h1.size(); ++i)
    EXPECT_EQ(h1[i], h4[i]) << "cycle " << i;
}

TEST(ThreadEquivalence, Nsu3dPointImplicitHistoryBitIdentical) {
  const auto m = small_wing();
  const auto h1 = run_nsu3d(m, nsu3d::SmootherKind::PointImplicit, 1);
  const auto h3 = run_nsu3d(m, nsu3d::SmootherKind::PointImplicit, 3);
  ASSERT_EQ(h1.size(), h3.size());
  for (std::size_t i = 0; i < h1.size(); ++i)
    EXPECT_EQ(h1[i], h3[i]) << "cycle " << i;
}

TEST(ThreadEquivalence, Cart3dHistoryBitIdentical) {
  geom::Aabb domain;
  domain.expand({-1.5, -1.5, -1.5});
  domain.expand({1.5, 1.5, 1.5});
  const auto sphere = geom::make_sphere({0, 0, 0}, 0.4, 16, 32);
  cartesian::CartMeshOptions mo;
  mo.base_n = 8;
  mo.max_level = 2;
  const auto m = cartesian::build_cart_mesh(sphere, domain, mo);

  euler::FlowConditions fc;
  fc.mach = 0.3;
  cart3d::SolverOptions o;
  o.mg_levels = 2;
  auto run = [&](int threads) {
    PoolGuard guard;
    smp::set_global_threads(threads);
    cart3d::Cart3DSolver s(m, fc, o);
    return s.solve(8, 12);
  };
  const auto h1 = run(1);
  const auto h4 = run(4);
  ASSERT_EQ(h1.size(), h4.size());
  for (std::size_t i = 0; i < h1.size(); ++i)
    EXPECT_EQ(h1[i], h4[i]) << "cycle " << i;
}

TEST(ColorReorder, SpansAreConflictFree) {
  // The property the threaded scatter relies on: within one color span,
  // every node appears in at most one edge.
  const auto m = small_wing();
  nsu3d::LevelOptions lo;
  lo.num_levels = 2;
  const auto levels = nsu3d::build_levels(m, lo);
  for (const nsu3d::Level& lvl : levels) {
    ASSERT_GE(lvl.color_offsets.size(), 2u);
    EXPECT_EQ(lvl.color_offsets.front(), 0u);
    EXPECT_EQ(lvl.color_offsets.back(), lvl.edges.size());
    std::vector<int> stamp(std::size_t(lvl.num_nodes), -1);
    for (std::size_t c = 0; c + 1 < lvl.color_offsets.size(); ++c) {
      for (std::size_t e = lvl.color_offsets[c]; e < lvl.color_offsets[c + 1];
           ++e) {
        const auto [a, b] = lvl.edges[e];
        ASSERT_NE(stamp[std::size_t(a)], int(c)) << "node " << a;
        ASSERT_NE(stamp[std::size_t(b)], int(c)) << "node " << b;
        stamp[std::size_t(a)] = int(c);
        stamp[std::size_t(b)] = int(c);
      }
    }
  }
}

TEST(ColorReorder, PreservesResidualUpToRoundoff) {
  // Color-major reordering permutes the per-node accumulation order, so
  // bit-exact agreement with the unordered edge loop is not expected
  // (floating-point addition is not associative); the sums must agree to
  // tight roundoff.
  const auto m = small_wing();
  euler::FlowConditions fc;
  fc.mach = 0.75;
  fc.reynolds = 3e6;
  nsu3d::Nsu3dOptions colored;
  colored.mg_levels = 1;
  nsu3d::Nsu3dOptions plain = colored;
  plain.color_edges = false;

  PoolGuard guard;
  smp::set_global_threads(1);
  nsu3d::Nsu3dSolver sc(m, fc, colored);
  nsu3d::Nsu3dSolver sp(m, fc, plain);
  ASSERT_GE(sc.level(0).num_edge_colors(), 2);
  ASSERT_EQ(sp.level(0).num_edge_colors(), 1);

  const auto sol = sc.solution();
  const std::vector<nsu3d::State> u(sol.begin(), sol.end());
  std::vector<nsu3d::State> rc, rp;
  sc.compute_residual(0, u, rc, true);
  sp.compute_residual(0, u, rp, true);

  ASSERT_EQ(rc.size(), rp.size());
  real_t scale = 0;
  for (const auto& r : rp)
    for (real_t x : r) scale = std::max(scale, std::abs(x));
  ASSERT_GT(scale, 0);
  for (std::size_t i = 0; i < rc.size(); ++i)
    for (int c = 0; c < 6; ++c)
      EXPECT_NEAR(rc[i][std::size_t(c)], rp[i][std::size_t(c)], 1e-12 * scale)
          << "node " << i << " comp " << c;
}

}  // namespace
}  // namespace columbia
