#include <gtest/gtest.h>

#include "mesh/builders.hpp"
#include "mesh/dual_metrics.hpp"
#include "mesh/reorder.hpp"
#include "nsu3d/solver.hpp"
#include "support/random.hpp"

namespace columbia::mesh {
namespace {

/// Scrambles the node numbering (grids from real generators arrive in
/// whatever order the generator emitted).
void shuffle_nodes(UnstructuredMesh& m, std::uint64_t seed) {
  const index_t n = m.num_points();
  std::vector<index_t> perm(std::size_t(n), 0);
  for (index_t i = 0; i < n; ++i) perm[std::size_t(i)] = i;
  Xoshiro256 rng{seed};
  for (index_t i = n - 1; i > 0; --i)
    std::swap(perm[std::size_t(i)],
              perm[std::size_t(rng.below(std::uint64_t(i) + 1))]);
  std::vector<index_t> inverse(std::size_t(n), 0);
  for (index_t i = 0; i < n; ++i) inverse[std::size_t(perm[std::size_t(i)])] = i;
  std::vector<geom::Vec3> points(std::size_t(n), geom::Vec3{});
  for (index_t i = 0; i < n; ++i)
    points[std::size_t(i)] = m.points[std::size_t(perm[std::size_t(i)])];
  m.points = std::move(points);
  for (Element& e : m.elements)
    for (int k = 0; k < e.num_nodes(); ++k)
      e.nodes[std::size_t(k)] = inverse[std::size_t(e.nodes[std::size_t(k)])];
  for (BoundaryFace& f : m.boundary)
    for (int k = 0; k < f.n; ++k)
      f.nodes[std::size_t(k)] = inverse[std::size_t(f.nodes[std::size_t(k)])];
}

TEST(Reorder, ImprovesLocalityOnWingMesh) {
  WingMeshSpec spec;
  spec.n_wrap = 24;
  spec.n_span = 3;
  spec.n_normal = 10;
  auto m = make_wing_mesh(spec);
  shuffle_nodes(m, 7);  // generator-order meshes arrive scrambled
  const ReorderResult r = reorder_for_cache(m);
  EXPECT_LT(r.mean_edge_span_after, 0.2 * r.mean_edge_span_before);
}

TEST(Reorder, PreservesGeometryAndMetrics) {
  WingMeshSpec spec;
  spec.n_wrap = 16;
  spec.n_span = 2;
  spec.n_normal = 6;
  auto m = make_wing_mesh(spec);
  const real_t vol_before = m.total_volume();
  const auto counts_before = m.element_counts();
  reorder_for_cache(m);
  EXPECT_NEAR(m.total_volume(), vol_before, 1e-10 * std::abs(vol_before));
  EXPECT_EQ(m.element_counts(), counts_before);
  for (index_t e = 0; e < m.num_elements(); ++e)
    EXPECT_GT(m.element_volume(e), 0.0);
  const auto dm = compute_dual_metrics(m);
  EXPECT_LT(metric_closure_error(m, dm), 1e-10);
}

TEST(Reorder, SolverConvergesIdenticallyAfterPermutation) {
  // The edge-based solver's convergence must not depend on node numbering
  // (summation order shifts at machine precision only).
  WingMeshSpec spec;
  spec.n_wrap = 16;
  spec.n_span = 2;
  spec.n_normal = 8;
  auto m1 = make_wing_mesh(spec);
  auto m2 = m1;
  reorder_for_cache(m2);

  euler::FlowConditions fc;
  fc.mach = 0.75;
  nsu3d::Nsu3dOptions opt;
  opt.mg_levels = 2;
  nsu3d::Nsu3dSolver s1(m1, fc, opt);
  nsu3d::Nsu3dSolver s2(m2, fc, opt);
  const auto h1 = s1.solve(10, 10);
  const auto h2 = s2.solve(10, 10);
  ASSERT_EQ(h1.size(), h2.size());
  // Same initial residual (bit-reorderings only) and similar trajectory.
  EXPECT_NEAR(h1.front(), h2.front(), 1e-8 * h1.front());
  EXPECT_NEAR(std::log10(h1.back()), std::log10(h2.back()), 0.5);
}

TEST(Reorder, PermutationIsValid) {
  WingMeshSpec spec;
  spec.n_wrap = 12;
  spec.n_span = 1;
  spec.n_normal = 4;
  auto m = make_wing_mesh(spec);
  const index_t n = m.num_points();
  const ReorderResult r = reorder_for_cache(m);
  std::vector<index_t> sorted = r.perm;
  std::sort(sorted.begin(), sorted.end());
  for (index_t i = 0; i < n; ++i) EXPECT_EQ(sorted[std::size_t(i)], i);
}

}  // namespace
}  // namespace columbia::mesh
