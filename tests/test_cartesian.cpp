#include <gtest/gtest.h>
#include "sfc/sfc_partition.hpp"

#include <cmath>
#include <numbers>

#include "cartesian/cart_mesh.hpp"
#include "cartesian/clip.hpp"
#include "cartesian/coarsen.hpp"
#include "geom/components.hpp"

namespace columbia::cartesian {
namespace {

using geom::Aabb;
using geom::Vec3;

Aabb unit_domain() {
  Aabb d;
  d.expand({-1, -1, -1});
  d.expand({1, 1, 1});
  return d;
}

TEST(Inside, SphereClassification) {
  const auto sphere = geom::make_sphere({0, 0, 0}, 0.5, 24, 48);
  const InsideClassifier cls(sphere);
  EXPECT_TRUE(cls.inside({0, 0, 0}));
  EXPECT_TRUE(cls.inside({0.3, 0.2, 0.1}));
  EXPECT_FALSE(cls.inside({0.9, 0, 0}));
  EXPECT_FALSE(cls.inside({0, 0, 0.7}));
}

TEST(Inside, FluidFractionLimits) {
  const auto sphere = geom::make_sphere({0, 0, 0}, 0.5, 24, 48);
  const InsideClassifier cls(sphere);
  Aabb solid_box;
  solid_box.expand({-0.1, -0.1, -0.1});
  solid_box.expand({0.1, 0.1, 0.1});
  EXPECT_DOUBLE_EQ(cls.fluid_fraction(solid_box, 3), 0.0);
  Aabb fluid_box;
  fluid_box.expand({0.8, 0.8, 0.8});
  fluid_box.expand({0.95, 0.95, 0.95});
  EXPECT_DOUBLE_EQ(cls.fluid_fraction(fluid_box, 3), 1.0);
}

TEST(Clip, TriangleFullyInside) {
  Aabb box;
  box.expand({0, 0, 0});
  box.expand({1, 1, 1});
  const auto poly = clip_triangle_to_box({0.1, 0.1, 0.5}, {0.9, 0.1, 0.5},
                                         {0.1, 0.9, 0.5}, box);
  EXPECT_EQ(poly.size(), 3u);
  const Vec3 area = polygon_area_vector(poly);
  EXPECT_NEAR(norm(area), 0.32, 1e-12);
  EXPECT_NEAR(area.z, 0.32, 1e-12);
}

TEST(Clip, TriangleHalfOutside) {
  Aabb box;
  box.expand({0, 0, 0});
  box.expand({1, 1, 1});
  // Plane z=0.5 triangle poking out of the +x face: clipped area < full.
  const auto full = polygon_area_vector(clip_triangle_to_box(
      {0.0, 0.2, 0.5}, {0.8, 0.2, 0.5}, {0.0, 0.8, 0.5}, box));
  const auto clipped = polygon_area_vector(clip_triangle_to_box(
      {0.0, 0.2, 0.5}, {1.6, 0.2, 0.5}, {0.0, 0.8, 0.5}, box));
  EXPECT_GT(norm(clipped), 0.0);
  EXPECT_LT(norm(clipped), 2 * norm(full));  // sanity: finite and clipped
}

TEST(Clip, NoOverlapEmpty) {
  Aabb box;
  box.expand({0, 0, 0});
  box.expand({1, 1, 1});
  const auto poly =
      clip_triangle_to_box({5, 5, 5}, {6, 5, 5}, {5, 6, 5}, box);
  EXPECT_LT(polygon_area_vector(poly).x, 1e-12);
  EXPECT_TRUE(poly.size() < 3);
}

TEST(UniformMesh, CountsAndFaces) {
  const CartMesh m = build_uniform_mesh(unit_domain(), 4);
  EXPECT_EQ(m.num_cells(), 64);
  // Interior faces: 3 * 4^2 * 3 = 144; boundary: 6 * 16 = 96.
  EXPECT_EQ(m.faces.size(), 144u);
  EXPECT_EQ(m.boundary_faces.size(), 96u);
  EXPECT_NEAR(m.total_fluid_volume(), 8.0, 1e-12);
}

TEST(UniformMesh, FaceAreasUniform) {
  const CartMesh m = build_uniform_mesh(unit_domain(), 4);
  for (const CartFace& f : m.faces) EXPECT_NEAR(f.area, 0.25, 1e-12);
}

TEST(CartMesh, SphereRefinementProducesCutCells) {
  const auto sphere = geom::make_sphere({0, 0, 0}, 0.4, 16, 32);
  CartMeshOptions opt;
  opt.base_n = 8;
  opt.max_level = 2;
  const CartMesh m = build_cart_mesh(sphere, unit_domain(), opt);
  EXPECT_GT(m.num_cells(), 500);
  EXPECT_GT(m.num_cut_cells(), 50);
  // Solid interior removed: fluid volume < domain volume - most of sphere.
  const real_t sphere_vol = 4.0 / 3.0 * std::numbers::pi * 0.4 * 0.4 * 0.4;
  EXPECT_LT(m.total_fluid_volume(), 8.0 - 0.5 * sphere_vol);
  EXPECT_GT(m.total_fluid_volume(), 8.0 - 1.5 * sphere_vol);
}

TEST(CartMesh, CutCellsCarryWallArea) {
  const auto sphere = geom::make_sphere({0, 0, 0}, 0.4, 16, 32);
  CartMeshOptions opt;
  opt.base_n = 8;
  opt.max_level = 2;
  const CartMesh m = build_cart_mesh(sphere, unit_domain(), opt);
  // Total embedded area ~ sphere area; wall vectors sum to ~0 (closed).
  Vec3 sum{};
  real_t total = 0;
  for (const CartCell& c : m.cells) {
    if (!c.cut) continue;
    sum += c.wall_area;
    total += norm(c.wall_area);
  }
  const real_t sphere_area = 4 * std::numbers::pi * 0.4 * 0.4;
  EXPECT_NEAR(total, sphere_area, 0.25 * sphere_area);
  EXPECT_LT(norm(sum), 0.05 * sphere_area);
}

TEST(CartMesh, TwoToOneBalance) {
  const auto sphere = geom::make_sphere({0, 0, 0}, 0.4, 16, 32);
  CartMeshOptions opt;
  opt.base_n = 4;
  opt.max_level = 3;
  const CartMesh m = build_cart_mesh(sphere, unit_domain(), opt);
  // Across every face the level difference is at most 1.
  for (const CartFace& f : m.faces) {
    if (f.right == kInvalidIndex) continue;
    const int dl = int(m.cells[std::size_t(f.left)].level) -
                   int(m.cells[std::size_t(f.right)].level);
    EXPECT_LE(std::abs(dl), 1);
  }
}

TEST(CartMesh, SfcOrderingSorted) {
  const auto sphere = geom::make_sphere({0, 0, 0}, 0.4, 12, 24);
  CartMeshOptions opt;
  opt.base_n = 8;
  opt.max_level = 1;
  const CartMesh m = build_cart_mesh(sphere, unit_domain(), opt);
  for (std::size_t i = 1; i < m.sfc_keys.size(); ++i)
    EXPECT_LE(m.sfc_keys[i - 1], m.sfc_keys[i]);
}

TEST(CartMesh, FaceAreasConsistentAcrossLevels) {
  // Sum of face areas between level-L and level-L+1 cells uses the fine
  // cell's face size; conservation is checked via total flux closure in
  // the solver tests. Here: every face has positive area and valid ids.
  const auto sphere = geom::make_sphere({0, 0, 0}, 0.4, 12, 24);
  CartMeshOptions opt;
  opt.base_n = 4;
  opt.max_level = 2;
  const CartMesh m = build_cart_mesh(sphere, unit_domain(), opt);
  for (const CartFace& f : m.faces) {
    EXPECT_GT(f.area, 0.0);
    EXPECT_GE(f.left, 0);
    EXPECT_LT(f.left, m.num_cells());
    EXPECT_GE(f.right, 0);
    EXPECT_LT(f.right, m.num_cells());
  }
}

TEST(Coarsen, UniformMeshFullOctets) {
  const CartMesh m = build_uniform_mesh(unit_domain(), 8, SfcKind::PeanoHilbert, 2);
  const CoarsenResult r = coarsen_sfc(m);
  EXPECT_EQ(r.coarse.num_cells(), 64);  // 8^3 -> 4^3
  EXPECT_NEAR(r.coarsening_ratio(), 8.0, 1e-12);
  // Every fine cell mapped.
  for (index_t c : r.fine_to_coarse) {
    EXPECT_GE(c, 0);
    EXPECT_LT(c, r.coarse.num_cells());
  }
  // Volume preserved.
  EXPECT_NEAR(r.coarse.total_fluid_volume(), m.total_fluid_volume(), 1e-10);
}

TEST(Coarsen, RatioExceedsSevenOnAdaptedMesh) {
  // The paper's claim (Sec. V): coarsening ratios in excess of 7 on
  // typical adapted examples. That regime needs the adapted region to be a
  // small fraction of the cell count (the paper's meshes have 25M cells);
  // a 64^3 base grid (~270k cells) with a small sphere reproduces it.
  const auto sphere = geom::make_sphere({0, 0, 0}, 0.15, 12, 24);
  CartMeshOptions opt;
  opt.base_n = 64;
  opt.max_level = 2;
  const CartMesh m = build_cart_mesh(sphere, unit_domain(), opt);
  const CoarsenResult r = coarsen_sfc(m);
  EXPECT_GT(r.coarsening_ratio(), 7.0);
}

TEST(Coarsen, CoarseMeshImmediatelyRecoarsenable) {
  const CartMesh m = build_uniform_mesh(unit_domain(), 8, SfcKind::PeanoHilbert, 3);
  const CoarsenResult r1 = coarsen_sfc(m);
  const CoarsenResult r2 = coarsen_sfc(r1.coarse);
  EXPECT_EQ(r2.coarse.num_cells(), 8);  // 8^3 -> 4^3 -> 2^3
}

TEST(Coarsen, HierarchyCoarsensBelowBaseGrid) {
  const CartMesh m = build_uniform_mesh(unit_domain(), 8, SfcKind::PeanoHilbert, 2);
  const CartHierarchy h = build_hierarchy(m, 10);
  // 8^3 -> 4^3 -> 2^3 -> 1: coarsening continues below the base grid
  // (negative levels) until a single cell remains.
  EXPECT_EQ(h.levels.size(), 4u);
  EXPECT_EQ(h.levels.back().num_cells(), 1);
  EXPECT_NEAR(h.levels.back().total_fluid_volume(), 8.0, 1e-10);
}

TEST(PartitionCells, BalancedAndContiguous) {
  const auto sphere = geom::make_sphere({0, 0, 0}, 0.4, 16, 32);
  CartMeshOptions opt;
  opt.base_n = 8;
  opt.max_level = 2;
  const CartMesh m = build_cart_mesh(sphere, unit_domain(), opt);
  const auto part = partition_cells(m, 16);
  std::vector<real_t> w(m.cells.size());
  for (std::size_t i = 0; i < m.cells.size(); ++i)
    w[i] = m.cells[i].cut ? 2.1 : 1.0;
  EXPECT_LT(columbia::sfc::balance_factor(part, w, 16), 1.25);
  // SFC-ordered cells have non-decreasing part ids (contiguous segments).
  for (std::size_t i = 1; i < part.size(); ++i)
    EXPECT_GE(part[i], part[i - 1]);
}

TEST(PartitionCells, SurfaceToVolumeTracksIdealCube) {
  const CartMesh m = build_uniform_mesh(unit_domain(), 16, SfcKind::PeanoHilbert);
  const auto part = partition_cells(m, 8);
  const auto st = partition_surface_stats(m, part, 8);
  // Paper: SFC partitions track the idealized cubic partitioner; allow 2x.
  EXPECT_LT(st.mean_surface_to_volume, 2.0 * st.ideal_cubic);
}

TEST(PartitionCells, MortonVsHilbertQuality) {
  // Hilbert's unit-step locality should be at least as good as Morton's.
  const CartMesh mh = build_uniform_mesh(unit_domain(), 16, SfcKind::PeanoHilbert);
  const CartMesh mm = build_uniform_mesh(unit_domain(), 16, SfcKind::Morton);
  const auto ph = partition_cells(mh, 8);
  const auto pm = partition_cells(mm, 8);
  const auto sh = partition_surface_stats(mh, ph, 8);
  const auto sm = partition_surface_stats(mm, pm, 8);
  EXPECT_LE(sh.mean_surface_to_volume, sm.mean_surface_to_volume * 1.05);
}

}  // namespace
}  // namespace columbia::cartesian
