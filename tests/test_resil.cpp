// Resilience layer: checkpoint round-trips (bit-identical restart at 1 and
// 4 threads), deterministic fault injection, guarded solves, checksummed
// halo frames, and database sweep recovery/resume.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "cart3d/solver.hpp"
#include "driver/database.hpp"
#include "mesh/builders.hpp"
#include "nsu3d/solver.hpp"
#include "resil/checkpoint.hpp"
#include "resil/crc32.hpp"
#include "resil/faults.hpp"
#include "resil/guard.hpp"
#include "resil/manifest.hpp"
#include "smp/hybrid.hpp"
#include "smp/pool.hpp"
#include "support/random.hpp"

namespace columbia {
namespace {

/// Restores the global pool to a single thread when a test exits.
struct PoolGuard {
  ~PoolGuard() { smp::set_global_threads(1); }
};

/// Arms the global injector for one test and always disarms on exit so no
/// fault spec leaks into later tests.
struct InjectorGuard {
  explicit InjectorGuard(const std::string& spec) {
    resil::FaultInjector::global().configure(resil::parse_fault_spec(spec));
  }
  ~InjectorGuard() { resil::FaultInjector::global().reset(); }
};

// --- CRC32 -----------------------------------------------------------------

TEST(Crc32, KnownAnswer) {
  // The IEEE 802.3 check value for the ASCII digits "123456789".
  const char digits[] = "123456789";
  EXPECT_EQ(resil::crc32(digits, 9), 0xCBF43926u);
}

TEST(Crc32, StreamingMatchesOneShot) {
  const char data[] = "resilience layer streaming checksum";
  const std::size_t n = sizeof(data) - 1;
  const std::uint32_t whole = resil::crc32(data, n);
  const std::uint32_t first = resil::crc32(data, 10);
  EXPECT_EQ(resil::crc32(data + 10, n - 10, first), whole);
}

// --- Fault spec parsing ----------------------------------------------------

TEST(FaultSpec, ParsesSeedRatesAndCaps) {
  const resil::FaultSpec s =
      resil::parse_fault_spec("seed=42,state_nan=0.25@1,halo_corrupt=0.1");
  EXPECT_EQ(s.seed, 42u);
  EXPECT_DOUBLE_EQ(s.rate[std::size_t(resil::FaultKind::StateNaN)], 0.25);
  EXPECT_EQ(s.max_count[std::size_t(resil::FaultKind::StateNaN)], 1u);
  EXPECT_DOUBLE_EQ(s.rate[std::size_t(resil::FaultKind::HaloCorrupt)], 0.1);
  EXPECT_EQ(s.max_count[std::size_t(resil::FaultKind::HaloCorrupt)],
            std::numeric_limits<std::uint64_t>::max());
  EXPECT_TRUE(s.any());
}

TEST(FaultSpec, RejectsMalformedInput) {
  EXPECT_THROW(resil::parse_fault_spec("seed"), std::invalid_argument);
  EXPECT_THROW(resil::parse_fault_spec("bogus_kind=0.5"),
               std::invalid_argument);
  EXPECT_THROW(resil::parse_fault_spec("state_nan=1.5"),
               std::invalid_argument);
  EXPECT_THROW(resil::parse_fault_spec("state_nan=abc"),
               std::invalid_argument);
}

// --- Injector determinism --------------------------------------------------

TEST(FaultInjector, DecisionsAreAPureFunctionOfSeedAndSite) {
  resil::FaultInjector a, b;
  const resil::FaultSpec spec = resil::parse_fault_spec("seed=7,state_nan=0.5");
  a.configure(spec);
  b.configure(spec);
  for (std::uint64_t site = 0; site < 200; ++site)
    EXPECT_EQ(a.should_inject(resil::FaultKind::StateNaN, site),
              b.should_inject(resil::FaultKind::StateNaN, site))
        << "site " << site;
  EXPECT_GT(a.injected(resil::FaultKind::StateNaN), 0u);
  EXPECT_LT(a.injected(resil::FaultKind::StateNaN), 200u);
}

TEST(FaultInjector, BudgetCapStopsInjections) {
  resil::FaultInjector inj;
  inj.configure(resil::parse_fault_spec("seed=1,case_throw=1@3"));
  int fired = 0;
  for (std::uint64_t site = 0; site < 50; ++site)
    if (inj.should_inject(resil::FaultKind::CaseThrow, site)) ++fired;
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(inj.injected(resil::FaultKind::CaseThrow), 3u);
}

TEST(FaultInjector, DisarmedInjectsNothing) {
  resil::FaultInjector inj;
  for (std::uint64_t site = 0; site < 50; ++site)
    EXPECT_FALSE(inj.should_inject(resil::FaultKind::StateNaN, site));
}

// --- Checksummed halo frames -----------------------------------------------

TEST(HaloFrames, RoundTrip) {
  const std::vector<real_t> payload = {1.5, -2.25, 0.0, 1e-300, 3.75};
  const std::vector<real_t> frame = resil::frame_payload(payload);
  ASSERT_EQ(frame.size(), payload.size() + 2);
  std::vector<real_t> got;
  ASSERT_TRUE(resil::unframe_payload(frame, got));
  EXPECT_EQ(got, payload);
}

TEST(HaloFrames, DetectsCorruptionAndTruncation) {
  const std::vector<real_t> payload = {1.0, 2.0, 3.0, 4.0};
  std::vector<real_t> corrupted = resil::frame_payload(payload);
  resil::corrupt_frame(corrupted, /*site=*/99);
  std::vector<real_t> got;
  EXPECT_FALSE(resil::unframe_payload(corrupted, got));

  std::vector<real_t> dropped = resil::frame_payload(payload);
  resil::drop_frame(dropped);
  EXPECT_FALSE(resil::unframe_payload(dropped, got));

  EXPECT_FALSE(resil::unframe_payload(std::vector<real_t>{}, got));
}

// --- Checkpoint wire format ------------------------------------------------

resil::Checkpoint sample_checkpoint() {
  resil::Checkpoint c;
  c.solver = "nsu3d";
  c.cycle = 17;
  c.state_stride = 6;
  c.history = {1.0, 0.31, 0.07};
  c.state = {0.25, -1.5, 3.0, 1e-12, 42.0, 0.0};
  return c;
}

TEST(CheckpointIo, StreamRoundTripIsExact) {
  const resil::Checkpoint c = sample_checkpoint();
  std::stringstream ss;
  resil::write_checkpoint(ss, c);
  const resil::Checkpoint r = resil::read_checkpoint(ss);
  EXPECT_EQ(r.solver, c.solver);
  EXPECT_EQ(r.cycle, c.cycle);
  EXPECT_EQ(r.state_stride, c.state_stride);
  EXPECT_EQ(r.history, c.history);
  EXPECT_EQ(r.state, c.state);
}

TEST(CheckpointIo, RejectsCorruptionTruncationAndBadMagic) {
  const resil::Checkpoint c = sample_checkpoint();
  std::stringstream ss;
  resil::write_checkpoint(ss, c);
  std::string bytes = ss.str();

  std::string corrupt = bytes;
  corrupt[corrupt.size() / 2] ^= 0x40;  // payload bit flip => CRC mismatch
  std::stringstream cs(corrupt);
  EXPECT_THROW(resil::read_checkpoint(cs), std::runtime_error);

  std::stringstream ts(bytes.substr(0, bytes.size() - 5));
  EXPECT_THROW(resil::read_checkpoint(ts), std::runtime_error);

  std::string magic = bytes;
  magic[0] = 'X';
  std::stringstream ms(magic);
  EXPECT_THROW(resil::read_checkpoint(ms), std::runtime_error);
}

TEST(CheckpointIo, DurableFileWriteAndTolerantRead) {
  const std::string path = testing::TempDir() + "resil_ckpt_roundtrip.bin";
  std::remove(path.c_str());
  EXPECT_FALSE(resil::try_read_checkpoint_file(path).has_value());

  const resil::Checkpoint c = sample_checkpoint();
  ASSERT_TRUE(resil::write_checkpoint_file(path, c));
  const auto r = resil::try_read_checkpoint_file(path);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->state, c.state);

  // A corrupt file is a recoverable condition, not a crash.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(20);
    f.put('\x7f');
  }
  EXPECT_FALSE(resil::try_read_checkpoint_file(path).has_value());
  std::remove(path.c_str());
}

/// Every corruption mode must surface as the matching typed
/// CheckpointError kind, not a generic failure: recovery code branches on
/// kind() (a BadVersion file is an operator problem; a CrcMismatch is
/// silent corruption worth alerting on).
TEST(CheckpointIo, CorruptionModesRaiseTypedErrors) {
  std::stringstream ss;
  resil::write_checkpoint(ss, sample_checkpoint());
  const std::string bytes = ss.str();

  const auto kind_of = [](const std::string& raw) {
    std::stringstream in(raw);
    try {
      resil::read_checkpoint(in);
    } catch (const resil::CheckpointError& e) {
      return e.kind();
    }
    return resil::CheckpointError::Kind::Malformed;
  };

  std::string magic = bytes;
  magic[3] ^= 0x08;  // mangled header
  EXPECT_EQ(kind_of(magic), resil::CheckpointError::Kind::BadMagic);

  std::string version = bytes;
  version[8] ^= 0x02;  // format revision u32 follows the 8-byte magic
  EXPECT_EQ(kind_of(version), resil::CheckpointError::Kind::BadVersion);

  EXPECT_EQ(kind_of(bytes.substr(0, bytes.size() - 5)),
            resil::CheckpointError::Kind::Truncated);
  EXPECT_EQ(kind_of(bytes.substr(0, 11)),
            resil::CheckpointError::Kind::Truncated);

  std::string flipped = bytes;
  flipped[flipped.size() - 5] ^= 0x10;  // last payload byte, not the crc
  EXPECT_EQ(kind_of(flipped), resil::CheckpointError::Kind::CrcMismatch);

  std::string crc = bytes;
  crc[crc.size() - 1] ^= 0x01;  // the stored crc itself
  EXPECT_EQ(kind_of(crc), resil::CheckpointError::Kind::CrcMismatch);
}

TEST(CheckpointIo, SuccessfulWriteLeavesNoStagingFile) {
  const std::string path = testing::TempDir() + "resil_ckpt_staged.bin";
  std::remove(path.c_str());
  ASSERT_TRUE(resil::write_checkpoint_file(path, sample_checkpoint()));
  // The durable writer stages into <path>.tmp and publishes via rename;
  // success must leave only the published file behind.
  std::ifstream staged(path + ".tmp");
  EXPECT_FALSE(staged.good());
  std::remove(path.c_str());
}

// --- Bit-identical checkpoint/restart on both solvers ----------------------

mesh::UnstructuredMesh small_wing() {
  mesh::WingMeshSpec spec;
  spec.n_wrap = 24;
  spec.n_span = 3;
  spec.n_normal = 10;
  spec.wall_spacing = 1e-4;
  return mesh::make_wing_mesh(spec);
}

nsu3d::Nsu3dSolver make_nsu3d(const mesh::UnstructuredMesh& m) {
  euler::FlowConditions fc;
  fc.mach = 0.75;
  fc.reynolds = 3e6;
  nsu3d::Nsu3dOptions o;
  o.mg_levels = 2;
  return nsu3d::Nsu3dSolver(m, fc, o);
}

/// Uninterrupted vs. checkpoint-at-k-then-restart histories must agree bit
/// for bit; the checkpoint additionally passes through the binary format.
void check_nsu3d_restart(int threads) {
  PoolGuard guard;
  smp::set_global_threads(threads);
  const auto m = small_wing();
  constexpr int kTotal = 4, kSplit = 2;

  auto full_solver = make_nsu3d(m);
  std::vector<real_t> full{full_solver.residual_norm()};
  for (int c = 0; c < kTotal; ++c) full.push_back(full_solver.run_cycle());

  auto a = make_nsu3d(m);
  std::vector<real_t> hist{a.residual_norm()};
  for (int c = 0; c < kSplit; ++c) hist.push_back(a.run_cycle());
  std::stringstream ss;
  resil::write_checkpoint(ss, a.make_checkpoint(kSplit, hist));
  const resil::Checkpoint ck = resil::read_checkpoint(ss);

  auto b = make_nsu3d(m);
  b.restore_checkpoint(ck);
  std::vector<real_t> restarted(ck.history.begin(), ck.history.end());
  for (int c = kSplit; c < kTotal; ++c) restarted.push_back(b.run_cycle());

  ASSERT_EQ(restarted.size(), full.size());
  for (std::size_t i = 0; i < full.size(); ++i)
    EXPECT_EQ(restarted[i], full[i]) << "cycle " << i;
}

TEST(CheckpointRestart, Nsu3dBitIdenticalSingleThread) {
  check_nsu3d_restart(1);
}

TEST(CheckpointRestart, Nsu3dBitIdenticalFourThreads) {
  check_nsu3d_restart(4);
}

cartesian::CartMesh small_sphere_mesh() {
  geom::Aabb domain;
  domain.expand({-1.5, -1.5, -1.5});
  domain.expand({1.5, 1.5, 1.5});
  const auto sphere = geom::make_sphere({0, 0, 0}, 0.4, 12, 24);
  cartesian::CartMeshOptions mo;
  mo.base_n = 6;
  mo.max_level = 1;
  return cartesian::build_cart_mesh(sphere, domain, mo);
}

cart3d::Cart3DSolver make_cart3d(const cartesian::CartMesh& m) {
  euler::FlowConditions fc;
  fc.mach = 0.3;
  cart3d::SolverOptions o;
  o.mg_levels = 2;
  return cart3d::Cart3DSolver(m, fc, o);
}

void check_cart3d_restart(int threads) {
  PoolGuard guard;
  smp::set_global_threads(threads);
  const auto m = small_sphere_mesh();
  constexpr int kTotal = 6, kSplit = 3;

  auto full_solver = make_cart3d(m);
  std::vector<real_t> full{full_solver.residual_norm()};
  for (int c = 0; c < kTotal; ++c) full.push_back(full_solver.run_cycle());

  auto a = make_cart3d(m);
  std::vector<real_t> hist{a.residual_norm()};
  for (int c = 0; c < kSplit; ++c) hist.push_back(a.run_cycle());
  std::stringstream ss;
  resil::write_checkpoint(ss, a.make_checkpoint(kSplit, hist));
  const resil::Checkpoint ck = resil::read_checkpoint(ss);

  auto b = make_cart3d(m);
  b.restore_checkpoint(ck);
  std::vector<real_t> restarted(ck.history.begin(), ck.history.end());
  for (int c = kSplit; c < kTotal; ++c) restarted.push_back(b.run_cycle());

  ASSERT_EQ(restarted.size(), full.size());
  for (std::size_t i = 0; i < full.size(); ++i)
    EXPECT_EQ(restarted[i], full[i]) << "cycle " << i;
}

TEST(CheckpointRestart, Cart3dBitIdenticalSingleThread) {
  check_cart3d_restart(1);
}

TEST(CheckpointRestart, Cart3dBitIdenticalFourThreads) {
  check_cart3d_restart(4);
}

TEST(CheckpointRestart, RestoreRejectsWrongSolverOrShape) {
  const auto m = small_sphere_mesh();
  auto s = make_cart3d(m);
  resil::Checkpoint wrong_tag = s.make_checkpoint(0, {});
  wrong_tag.solver = "nsu3d";
  EXPECT_THROW(s.restore_checkpoint(wrong_tag), std::runtime_error);

  resil::Checkpoint wrong_size = s.make_checkpoint(0, {});
  wrong_size.state.pop_back();
  EXPECT_THROW(s.restore_checkpoint(wrong_size), std::runtime_error);
}

/// A rejected restore must leave the solver exactly where it was: after
/// the throw, the continued run stays bit-identical to a control solver
/// that never saw the bad checkpoint — at every thread count.
void check_failed_restore_mutates_nothing(int threads) {
  PoolGuard guard;
  smp::set_global_threads(threads);
  const auto m = small_wing();

  auto control = make_nsu3d(m);
  auto victim = make_nsu3d(m);
  control.run_cycle();
  victim.run_cycle();

  resil::Checkpoint wrong_tag = victim.make_checkpoint(1, {});
  wrong_tag.solver = "cart3d";
  EXPECT_THROW(victim.restore_checkpoint(wrong_tag), std::runtime_error);
  resil::Checkpoint ragged = victim.make_checkpoint(1, {});
  ragged.state.pop_back();
  EXPECT_THROW(victim.restore_checkpoint(ragged), std::runtime_error);

  for (int c = 0; c < 2; ++c)
    EXPECT_EQ(victim.run_cycle(), control.run_cycle()) << "cycle " << c;
}

TEST(CheckpointRestart, FailedRestoreMutatesNothingSingleThread) {
  check_failed_restore_mutates_nothing(1);
}

TEST(CheckpointRestart, FailedRestoreMutatesNothingTwoThreads) {
  check_failed_restore_mutates_nothing(2);
}

TEST(CheckpointRestart, FailedRestoreMutatesNothingFourThreads) {
  check_failed_restore_mutates_nothing(4);
}

// --- Guarded solves --------------------------------------------------------

TEST(GuardedSolve, MatchesPlainSolveWithoutFaults) {
  const auto m = small_sphere_mesh();
  auto plain = make_cart3d(m);
  const std::vector<real_t> expected = plain.solve(6, 12);

  auto guarded = make_cart3d(m);
  const resil::GuardedSolveResult gr = guarded.solve_guarded(6, 12);
  EXPECT_EQ(gr.outcome, resil::SolveOutcome::Ok);
  EXPECT_EQ(gr.rollbacks, 0);
  ASSERT_EQ(gr.history.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i)
    EXPECT_EQ(gr.history[i], expected[i]) << "cycle " << i;
}

TEST(GuardedSolve, RecoversFromInjectedNaN) {
  InjectorGuard faults("seed=11,state_nan=1@1");
  const auto m = small_sphere_mesh();
  auto s = make_cart3d(m);
  const resil::GuardedSolveResult gr = s.solve_guarded(6, 12);
  EXPECT_EQ(gr.outcome, resil::SolveOutcome::Recovered);
  EXPECT_GE(gr.rollbacks, 1);
  for (real_t r : gr.history) EXPECT_TRUE(std::isfinite(r));
  EXPECT_EQ(resil::FaultInjector::global().injected(
                resil::FaultKind::StateNaN),
            1u);
}

TEST(GuardedSolve, FailsOnceRetryBudgetIsExhausted) {
  // Every cycle is poisoned and only one retry is allowed: the guard must
  // give up cleanly (outcome Failed), never hang or throw.
  InjectorGuard faults("seed=11,state_nan=1");
  const auto m = small_sphere_mesh();
  auto s = make_cart3d(m);
  resil::GuardedSolveOptions opt;
  opt.guard.max_retries = 1;
  const resil::GuardedSolveResult gr = s.solve_guarded(6, 12, opt);
  EXPECT_EQ(gr.outcome, resil::SolveOutcome::Failed);
  EXPECT_EQ(gr.rollbacks, 1);
}

TEST(GuardedSolve, ResumesFromDurableCheckpointBitIdentically) {
  const std::string path = testing::TempDir() + "resil_guarded_resume.bin";
  std::remove(path.c_str());
  const auto m = small_sphere_mesh();

  resil::GuardedSolveOptions opt;
  opt.checkpoint_path = path;
  opt.checkpoint_interval = 2;

  auto uninterrupted = make_cart3d(m);
  const resil::GuardedSolveResult whole = uninterrupted.solve_guarded(8, 12);

  auto first = make_cart3d(m);
  const resil::GuardedSolveResult half = first.solve_guarded(4, 12, opt);
  EXPECT_FALSE(half.resumed);

  // A "new process": a fresh solver picks up the on-disk checkpoint and
  // reproduces the uninterrupted history exactly.
  auto second = make_cart3d(m);
  const resil::GuardedSolveResult rest = second.solve_guarded(8, 12, opt);
  EXPECT_TRUE(rest.resumed);
  EXPECT_EQ(rest.resumed_from, 4u);
  ASSERT_EQ(rest.history.size(), whole.history.size());
  for (std::size_t i = 0; i < whole.history.size(); ++i)
    EXPECT_EQ(rest.history[i], whole.history[i]) << "cycle " << i;
  std::remove(path.c_str());
}

// --- Halo exchanges under injected faults ----------------------------------

smp::PartitionData halo_expected(const smp::PartitionData& data,
                                 const smp::RequestLists& requests) {
  smp::PartitionData out(data.size(), std::vector<real_t>{});
  for (std::size_t p = 0; p < data.size(); ++p)
    for (const smp::HaloRequest& r : requests[p])
      out[p].push_back(
          data[std::size_t(r.from_partition)][std::size_t(r.item)]);
  return out;
}

void make_halo_scenario(smp::PartitionData& data, smp::RequestLists& requests) {
  Xoshiro256 rng(21);
  constexpr index_t nparts = 8, items = 16, reqs = 12;
  data.resize(nparts);
  for (auto& d : data) {
    d.resize(items);
    for (auto& v : d) v = rng.uniform(-10, 10);
  }
  requests.resize(nparts);
  for (auto& rl : requests)
    for (index_t k = 0; k < reqs; ++k)
      rl.push_back({index_t(rng.below(nparts)), index_t(rng.below(items))});
}

TEST(HaloFaults, DroppedMessagesAreRetransmittedExactly) {
  smp::PartitionData data;
  smp::RequestLists requests;
  make_halo_scenario(data, requests);
  InjectorGuard faults("seed=3,halo_drop=1");
  smp::Runtime rt(8);
  const auto got = smp::exchange_thread_to_thread(rt, data, requests);
  EXPECT_EQ(got, halo_expected(data, requests));
  EXPECT_GT(resil::FaultInjector::global().injected(
                resil::FaultKind::HaloDrop),
            0u);
}

TEST(HaloFaults, CorruptedMessagesAreRejectedAndResent) {
  smp::PartitionData data;
  smp::RequestLists requests;
  make_halo_scenario(data, requests);
  InjectorGuard faults("seed=5,halo_corrupt=0.5");
  smp::Runtime rt(4);
  const auto got = smp::exchange_master_thread(rt, data, requests, 2);
  EXPECT_EQ(got, halo_expected(data, requests));
  EXPECT_GT(resil::FaultInjector::global().injected(
                resil::FaultKind::HaloCorrupt),
            0u);
}

// --- Database sweep recovery -----------------------------------------------

driver::DatabaseSpec tiny_db() {
  driver::DatabaseSpec spec;
  spec.deflections = {0.0};
  spec.machs = {1.4};
  spec.alphas_deg = {0.0, 2.0};
  spec.betas_deg = {0.0};
  spec.geometry = [](real_t d) { return geom::make_sslv(d, 1); };
  spec.mesh_options.base_n = 6;
  spec.mesh_options.max_level = 1;
  spec.solver_options.flux = euler::FluxScheme::VanLeer;
  spec.solver_options.second_order = false;
  spec.solver_options.mg_levels = 1;
  spec.max_cycles = 4;
  spec.simultaneous_cases = 1;  // exact budget accounting in the test
  return spec;
}

TEST(DatabaseResilience, CrashedCaseIsRetriedAndRecovered) {
  InjectorGuard faults("seed=2,case_throw=1@1");
  driver::DatabaseFill fill(tiny_db());
  const auto results = fill.run();
  ASSERT_EQ(results.size(), 2u);
  int recovered = 0;
  for (const auto& r : results) {
    EXPECT_NE(r.status, driver::CaseStatus::Failed);
    if (r.status == driver::CaseStatus::Recovered) {
      ++recovered;
      EXPECT_GE(r.attempts, 2);
    }
  }
  EXPECT_EQ(recovered, 1);
  EXPECT_EQ(fill.stats().cases_recovered, 1);
  EXPECT_EQ(fill.stats().cases_failed, 0);
}

TEST(DatabaseResilience, ExhaustedRetriesFallBackToDegraded) {
  // Two full-fidelity attempts per case; a budget of exactly two injected
  // crashes sinks both, leaving only the degraded re-run.
  driver::DatabaseSpec spec = tiny_db();
  spec.alphas_deg = {0.0};
  spec.case_retries = 1;
  InjectorGuard faults("seed=2,case_throw=1@2");
  driver::DatabaseFill fill(spec);
  const auto results = fill.run();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status, driver::CaseStatus::Degraded);
  EXPECT_EQ(results[0].attempts, 3);
  EXPECT_TRUE(std::isfinite(results[0].cl));
  EXPECT_EQ(fill.stats().cases_degraded, 1);
}

TEST(DatabaseResilience, SweepCompletesEvenWhenEveryPathFails) {
  driver::DatabaseSpec spec = tiny_db();
  spec.case_retries = 0;
  InjectorGuard faults("seed=2,case_throw=1");  // uncapped: every attempt dies
  driver::DatabaseFill fill(spec);
  const auto results = fill.run();
  ASSERT_EQ(results.size(), 2u);
  for (const auto& r : results)
    EXPECT_EQ(r.status, driver::CaseStatus::Failed);
  EXPECT_EQ(fill.stats().cases_failed, 2);
}

TEST(DatabaseResilience, ManifestResumeSkipsCompletedCases) {
  const std::string path = testing::TempDir() + "resil_sweep_manifest.txt";
  std::remove(path.c_str());
  driver::DatabaseSpec spec = tiny_db();
  spec.manifest_path = path;

  driver::DatabaseFill first(spec);
  const auto before = first.run();
  EXPECT_EQ(first.stats().cases_run, 2);
  EXPECT_EQ(first.stats().cases_skipped, 0);

  // "Restart after a kill": the second sweep reloads every completed case
  // from the manifest, bit for bit, without re-running a single solve.
  driver::DatabaseFill second(spec);
  const auto after = second.run();
  EXPECT_EQ(second.stats().cases_run, 0);
  EXPECT_EQ(second.stats().cases_skipped, 2);
  ASSERT_EQ(after.size(), before.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_TRUE(after[i].from_manifest);
    EXPECT_EQ(after[i].cl, before[i].cl) << "case " << i;
    EXPECT_EQ(after[i].cd, before[i].cd) << "case " << i;
    EXPECT_EQ(after[i].status, before[i].status) << "case " << i;
  }
  std::remove(path.c_str());
}

TEST(SweepManifest, SkipsTruncatedTrailingLine) {
  const std::string path = testing::TempDir() + "resil_manifest_trunc.txt";
  {
    std::ofstream f(path);
    f << "case 0 ok 1 2 3 4 5 6\n";
    f << "case 1 ok 1 2";  // killed mid-write
  }
  resil::SweepManifest m(path);
  EXPECT_TRUE(m.contains(0));
  EXPECT_FALSE(m.contains(1));
  EXPECT_EQ(m.size(), 1u);
  std::remove(path.c_str());
}

TEST(SweepManifest, SkipsCorruptedMiddleLinesAndKeepsTheRest) {
  const std::string path = testing::TempDir() + "resil_manifest_corrupt.txt";
  {
    std::ofstream f(path);
    f << "case 0 ok 1 2 3 4 5 6\n";
    f << "garbage that is not a record\n";    // bit rot / editor accident
    f << "case 2 ok 1 2 x 4 5 6\n";           // non-numeric value
    f << "case 3 recovered 9 8 7 6 5 4\n";
  }
  resil::SweepManifest m(path);
  EXPECT_TRUE(m.contains(0));
  EXPECT_FALSE(m.contains(2));  // corrupt record re-runs, never half-loads
  EXPECT_TRUE(m.contains(3));
  EXPECT_EQ(m.size(), 2u);
  ASSERT_NE(m.find(3), nullptr);
  EXPECT_EQ(m.find(3)->status, "recovered");
  EXPECT_EQ(m.find(3)->values[0], 9.0);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace columbia
