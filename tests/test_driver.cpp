#include <gtest/gtest.h>

#include "driver/variable_fidelity.hpp"

namespace columbia::driver {
namespace {

DatabaseSpec tiny_db() {
  DatabaseSpec spec;
  spec.deflections = {0.0, 0.15};
  spec.machs = {0.6, 1.4};
  spec.alphas_deg = {0.0, 4.0};
  spec.betas_deg = {0.0};
  spec.geometry = [](real_t d) { return geom::make_sslv(d, 1); };
  spec.mesh_options.base_n = 6;
  spec.mesh_options.max_level = 1;
  spec.solver_options.flux = euler::FluxScheme::VanLeer;
  spec.solver_options.second_order = false;
  spec.solver_options.mg_levels = 1;
  spec.max_cycles = 6;
  spec.simultaneous_cases = 4;
  return spec;
}

TEST(Database, RunsFullTensorProduct) {
  DatabaseFill fill(tiny_db());
  EXPECT_EQ(fill.num_cases(), 8);
  const auto results = fill.run();
  ASSERT_EQ(results.size(), 8u);
  for (const auto& r : results) {
    EXPECT_TRUE(std::isfinite(r.cl));
    EXPECT_TRUE(std::isfinite(r.cd));
    EXPECT_GT(r.cycles, 0);
  }
}

TEST(Database, MeshGenerationAmortizedPerGeometry) {
  // One mesh per geometry instance, not per case (paper Sec. IV).
  DatabaseFill fill(tiny_db());
  fill.run();
  EXPECT_EQ(fill.stats().meshes_generated, 2);
  EXPECT_EQ(fill.stats().cases_run, 8);
  EXPECT_GT(fill.stats().cells_per_minute(), 0.0);
}

TEST(Database, ResultsOrderedByHierarchy) {
  DatabaseFill fill(tiny_db());
  const auto results = fill.run();
  // Deflection is the outer loop.
  EXPECT_DOUBLE_EQ(results[0].deflection_rad, 0.0);
  EXPECT_DOUBLE_EQ(results[4].deflection_rad, 0.15);
  // Wind points identical across instances.
  EXPECT_DOUBLE_EQ(results[0].wind.mach, results[4].wind.mach);
}

TEST(Database, DeflectionChangesForces) {
  // The config-space parameter must influence the answer: elevon
  // deflection changes the pitching force balance.
  DatabaseSpec spec = tiny_db();
  spec.machs = {1.4};
  spec.alphas_deg = {0.0};
  spec.max_cycles = 12;
  DatabaseFill fill(spec);
  const auto results = fill.run();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_NE(results[0].cl, results[1].cl);
}

TEST(Campaign, VariableFidelityEndToEnd) {
  CampaignSpec spec;
  spec.anchor_points = {{0.75, 0.0, 0.0}};
  spec.wing_mesh.n_wrap = 16;
  spec.wing_mesh.n_span = 2;
  spec.wing_mesh.n_normal = 8;
  spec.nsu3d_options.mg_levels = 2;
  spec.nsu3d_max_cycles = 10;
  spec.database = tiny_db();
  spec.database.deflections = {0.0};
  spec.database.machs = {0.8};
  spec.database.alphas_deg = {0.0};

  const CampaignResult result = run_campaign(spec);
  ASSERT_EQ(result.anchors.size(), 1u);
  EXPECT_LT(result.anchors[0].residual_drop, 1.0);  // residual decreased
  ASSERT_EQ(result.database.size(), 1u);
  EXPECT_EQ(result.database_stats.meshes_generated, 1);
}

}  // namespace
}  // namespace columbia::driver
