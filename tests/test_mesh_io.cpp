#include <gtest/gtest.h>

#include <limits>
#include <sstream>

#include "mesh/builders.hpp"
#include "mesh/io.hpp"

namespace columbia::mesh {
namespace {

TEST(MeshIo, BinaryRoundTripBoxMesh) {
  const auto m = make_box_mesh(3, 4, 5, {0, 0, 0}, {1, 2, 3});
  std::stringstream buf;
  const std::size_t bytes = write_binary(buf, m);
  EXPECT_EQ(bytes, buf.str().size());
  EXPECT_EQ(bytes, binary_size_bytes(m));

  const auto back = read_binary(buf);
  ASSERT_EQ(back.num_points(), m.num_points());
  ASSERT_EQ(back.num_elements(), m.num_elements());
  ASSERT_EQ(back.boundary.size(), m.boundary.size());
  for (index_t i = 0; i < m.num_points(); ++i)
    EXPECT_DOUBLE_EQ(distance(back.points[std::size_t(i)],
                              m.points[std::size_t(i)]), 0.0);
  EXPECT_DOUBLE_EQ(back.total_volume(), m.total_volume());
}

TEST(MeshIo, BinaryRoundTripHybridWing) {
  WingMeshSpec spec;
  spec.n_wrap = 16;
  spec.n_span = 2;
  spec.n_normal = 6;
  const auto m = make_wing_mesh(spec);
  std::stringstream buf;
  write_binary(buf, m);
  const auto back = read_binary(buf);
  EXPECT_EQ(back.element_counts(), m.element_counts());
  // Boundary tags preserved.
  int walls = 0, walls_back = 0;
  for (const auto& f : m.boundary)
    if (f.tag == BoundaryTag::Wall) ++walls;
  for (const auto& f : back.boundary)
    if (f.tag == BoundaryTag::Wall) ++walls_back;
  EXPECT_EQ(walls, walls_back);
}

TEST(MeshIo, RejectsBadMagic) {
  std::stringstream buf("NOTAMESHxxxxxxxxxxxxxxxxxxxxxxxx");
  EXPECT_THROW(read_binary(buf), std::runtime_error);
}

TEST(MeshIo, RejectsTruncatedStream) {
  const auto m = make_box_mesh(2, 2, 2, {0, 0, 0}, {1, 1, 1});
  std::stringstream buf;
  write_binary(buf, m);
  std::string s = buf.str();
  s.resize(s.size() / 2);
  std::stringstream cut(s);
  EXPECT_THROW(read_binary(cut), std::runtime_error);
}

TEST(MeshIo, RejectsOutOfRangeIndices) {
  const auto m = make_box_mesh(2, 2, 2, {0, 0, 0}, {1, 1, 1});
  std::stringstream buf;
  write_binary(buf, m);
  std::string s = buf.str();
  // Corrupt the first element's first node index to a huge value.
  const std::size_t header = 8 + 3 * 8;
  const std::size_t points = std::size_t(m.num_points()) * 3 * sizeof(real_t);
  const std::size_t pos = header + points + 1;  // after the type byte
  s[pos] = char(0xFF);
  s[pos + 1] = char(0xFF);
  s[pos + 2] = char(0xFF);
  s[pos + 3] = char(0x7F);
  std::stringstream bad(s);
  EXPECT_THROW(read_binary(bad), std::runtime_error);
}

TEST(MeshIo, SeventyTwoMillionPointBookkeeping) {
  // Sanity-check against the paper's "35 Gbytes for 72M points" (their
  // tet-dominated format is heavier than this compact one): extrapolate our
  // format's bytes/point from a small mesh. Same order of magnitude.
  const auto m = make_box_mesh(10, 10, 10, {0, 0, 0}, {1, 1, 1});
  const real_t bytes_per_point =
      real_t(binary_size_bytes(m)) / real_t(m.num_points());
  const real_t gb_72m = 72e6 * bytes_per_point / (1u << 30);
  EXPECT_GT(gb_72m, 2.0);
  EXPECT_LT(gb_72m, 80.0);
}

TEST(MeshIo, VtkContainsExpectedSections) {
  const auto m = make_box_mesh(2, 2, 2, {0, 0, 0}, {1, 1, 1});
  std::vector<real_t> field(std::size_t(m.num_points()), 1.5);
  const PointField f{"density", field};
  std::stringstream out;
  write_vtk(out, m, std::span<const PointField>(&f, 1));
  const std::string s = out.str();
  EXPECT_NE(s.find("DATASET UNSTRUCTURED_GRID"), std::string::npos);
  EXPECT_NE(s.find("POINTS 27 double"), std::string::npos);
  EXPECT_NE(s.find("CELLS 8"), std::string::npos);
  EXPECT_NE(s.find("SCALARS density double 1"), std::string::npos);
}

TEST(MeshIo, VtkRefusesNonFiniteCoordinates) {
  auto m = make_box_mesh(2, 2, 2, {0, 0, 0}, {1, 1, 1});
  m.points[3].y = std::numeric_limits<real_t>::quiet_NaN();
  std::stringstream out;
  try {
    write_vtk(out, m);
    FAIL() << "expected write_vtk to refuse the NaN coordinate";
  } catch (const std::runtime_error& e) {
    // The error names the offending point instead of emitting a broken file.
    EXPECT_NE(std::string(e.what()).find("point 3"), std::string::npos);
  }
}

TEST(MeshIo, VtkRefusesNonFiniteFieldValues) {
  const auto m = make_box_mesh(2, 2, 2, {0, 0, 0}, {1, 1, 1});
  std::vector<real_t> field(std::size_t(m.num_points()), 1.0);
  field[5] = std::numeric_limits<real_t>::infinity();
  const PointField f{"pressure", field};
  std::stringstream out;
  try {
    write_vtk(out, m, std::span<const PointField>(&f, 1));
    FAIL() << "expected write_vtk to refuse the Inf field value";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("pressure"), std::string::npos);
    EXPECT_NE(msg.find("point 5"), std::string::npos);
  }
}

TEST(MeshIo, VtkCellTypesMatchElements) {
  WingMeshSpec spec;
  spec.n_wrap = 12;
  spec.n_span = 1;
  spec.n_normal = 4;
  const auto m = make_wing_mesh(spec);  // hexes + prisms
  std::stringstream out;
  write_vtk(out, m);
  const std::string s = out.str();
  EXPECT_NE(s.find("\n12\n"), std::string::npos);  // VTK hex
  EXPECT_NE(s.find("\n13\n"), std::string::npos);  // VTK wedge
}

}  // namespace
}  // namespace columbia::mesh
