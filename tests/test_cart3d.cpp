#include <gtest/gtest.h>

#include "cart3d/solver.hpp"
#include "geom/components.hpp"

namespace columbia::cart3d {
namespace {

using cartesian::CartMesh;
using geom::Aabb;

Aabb domain3() {
  Aabb d;
  d.expand({-1.5, -1.5, -1.5});
  d.expand({1.5, 1.5, 1.5});
  return d;
}

CartMesh sphere_mesh(int base_n = 8, int max_level = 2) {
  const auto sphere = geom::make_sphere({0, 0, 0}, 0.4, 16, 32);
  cartesian::CartMeshOptions opt;
  opt.base_n = base_n;
  opt.max_level = max_level;
  return cartesian::build_cart_mesh(sphere, domain3(), opt);
}

TEST(Cart3D, FreestreamIsExactlyPreservedOnUniformMesh) {
  // With no geometry, the freestream is an exact steady solution; one
  // cycle must not disturb it (residual at machine zero).
  const CartMesh m = cartesian::build_uniform_mesh(domain3(), 8);
  euler::FlowConditions fc;
  fc.mach = 0.5;
  fc.alpha_deg = 3.0;
  Cart3DSolver solver(m, fc);
  EXPECT_LT(solver.residual_norm(), 1e-12);
  solver.run_cycle();
  EXPECT_LT(solver.residual_norm(), 1e-12);
}

TEST(Cart3D, FreestreamPreservedAcrossRefinementJumps) {
  // Freestream preservation on a mesh with hanging faces checks that the
  // face areas close each control volume exactly.
  const CartMesh m = sphere_mesh();
  euler::FlowConditions fc;
  fc.mach = 0.0;  // static gas: pressure must stay uniform
  Cart3DSolver solver(m, fc);
  // A static gas around a body is an exact solution (wall flux = p n sums
  // against the closed cell boundary).
  EXPECT_LT(solver.residual_norm(), 1e-10);
}

TEST(Cart3D, SubsonicSphereConverges) {
  const CartMesh m = sphere_mesh();
  euler::FlowConditions fc;
  fc.mach = 0.3;
  SolverOptions opt;
  opt.mg_levels = 1;
  opt.cfl = 1.0;
  Cart3DSolver solver(m, fc, opt);
  const auto hist = solver.solve(300, 2);
  // Two orders of residual reduction single-grid; multigrid goes deeper
  // (see MultigridConvergesFasterThanSingleGrid).
  EXPECT_LT(hist.back(), hist.front() * 1.1e-2);
}

TEST(Cart3D, MultigridConvergesFasterThanSingleGrid) {
  const CartMesh m = sphere_mesh();
  euler::FlowConditions fc;
  fc.mach = 0.3;

  SolverOptions single;
  single.mg_levels = 1;
  Cart3DSolver s1(m, fc, single);

  SolverOptions mg;
  mg.mg_levels = 3;
  Cart3DSolver s3(m, fc, mg);

  const int cycles = 40;
  const auto h1 = s1.solve(cycles, 12);
  const auto h3 = s3.solve(cycles, 12);
  // Same cycle count: multigrid must reach a lower residual.
  EXPECT_LT(h3.back(), h1.back());
}

TEST(Cart3D, WCycleVisitCountsMatchPaper) {
  const CartMesh m = cartesian::build_uniform_mesh(
      domain3(), 16, cartesian::SfcKind::PeanoHilbert, 3);
  euler::FlowConditions fc;
  SolverOptions opt;
  opt.mg_levels = 4;
  opt.cycle = CycleType::W;
  Cart3DSolver solver(m, fc, opt);
  ASSERT_EQ(solver.num_levels(), 4);
  const auto work = solver.level_work();
  EXPECT_EQ(work[0].visits_per_cycle, 1);
  EXPECT_EQ(work[1].visits_per_cycle, 2);
  EXPECT_EQ(work[2].visits_per_cycle, 4);
  // Coarsest is entered once per visit of its parent (no double descend
  // into the last level).
  EXPECT_EQ(work[3].visits_per_cycle, 4);
}

TEST(Cart3D, SupersonicSphereRunsStably) {
  // The paper's SSLV case runs at Mach 2.6 (Fig. 20). Use the robust
  // scheme combination on the sphere.
  const CartMesh m = sphere_mesh(8, 1);
  euler::FlowConditions fc;
  fc.mach = 2.6;
  fc.alpha_deg = 2.09;
  fc.beta_deg = 0.8;
  SolverOptions opt;
  opt.flux = euler::FluxScheme::VanLeer;
  opt.cfl = 0.8;
  opt.mg_levels = 1;
  Cart3DSolver solver(m, fc, opt);
  const auto hist = solver.solve(60, 2);
  // Residual must drop (stability), final state valid everywhere.
  EXPECT_LT(hist.back(), hist.front());
  for (const auto& u : solver.solution()) EXPECT_TRUE(euler::is_valid(u));
}

TEST(Cart3D, DragPositiveOnSphere) {
  const CartMesh m = sphere_mesh();
  euler::FlowConditions fc;
  fc.mach = 0.3;
  Cart3DSolver solver(m, fc);
  solver.solve(120, 3);
  const Forces f = solver.integrate_forces();
  // Inviscid subsonic flow has small (spurious numerical) drag; the force
  // must at least be finite and the x-force should dominate z for alpha=0.
  EXPECT_TRUE(std::isfinite(f.cd));
  EXPECT_TRUE(std::isfinite(f.cl));
}

TEST(Cart3D, LevelWorkShrinksWithLevel) {
  const CartMesh m = sphere_mesh();
  euler::FlowConditions fc;
  SolverOptions opt;
  opt.mg_levels = 3;
  Cart3DSolver solver(m, fc, opt);
  const auto work = solver.level_work();
  for (std::size_t l = 1; l < work.size(); ++l)
    EXPECT_LT(work[l].cells, work[l - 1].cells);
}

TEST(Cart3D, SslvMeshSolves) {
  // End-to-end smoke test on the paper's flagship geometry (scaled down).
  const auto sslv = geom::make_sslv(0.1, 1);
  Aabb dom;
  dom.expand({-0.4, -0.7, -0.7});
  dom.expand({1.4, 0.7, 0.7});
  cartesian::CartMeshOptions mopt;
  mopt.base_n = 8;
  mopt.max_level = 2;
  const CartMesh m = cartesian::build_cart_mesh(sslv, dom, mopt);
  ASSERT_GT(m.num_cut_cells(), 100);

  euler::FlowConditions fc;
  fc.mach = 2.6;
  fc.alpha_deg = 2.09;
  fc.beta_deg = 0.8;
  SolverOptions opt;
  opt.flux = euler::FluxScheme::VanLeer;
  opt.cfl = 0.6;
  opt.mg_levels = 2;
  opt.second_order = false;  // robustness at this mesh density
  Cart3DSolver solver(m, fc, opt);
  const auto hist = solver.solve(30, 1.5);
  EXPECT_LT(hist.back(), hist.front());
  for (const auto& u : solver.solution()) EXPECT_TRUE(euler::is_valid(u));
}

}  // namespace
}  // namespace columbia::cart3d
