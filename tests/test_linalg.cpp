#include <gtest/gtest.h>

#include "linalg/block.hpp"
#include "linalg/block_tridiag.hpp"
#include "support/random.hpp"

namespace columbia::linalg {
namespace {

template <int N>
BlockMat<N> random_diag_dominant(Xoshiro256& rng) {
  BlockMat<N> m;
  for (int i = 0; i < N; ++i) {
    real_t row = 0;
    for (int j = 0; j < N; ++j) {
      m(i, j) = rng.uniform(-1, 1);
      row += std::abs(m(i, j));
    }
    m(i, i) += row + 1.0;  // strict diagonal dominance
  }
  return m;
}

TEST(Block, IdentitySolve) {
  const auto I = BlockMat<6>::identity();
  BlockLU<6> lu;
  ASSERT_TRUE(lu.factor(I));
  BlockVec<6> b;
  for (int i = 0; i < 6; ++i) b[i] = i + 1;
  const auto x = lu.solve(b);
  for (int i = 0; i < 6; ++i) EXPECT_DOUBLE_EQ(x[i], b[i]);
}

TEST(Block, LUSolveResidual) {
  Xoshiro256 rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    const auto m = random_diag_dominant<6>(rng);
    BlockVec<6> b;
    for (int i = 0; i < 6; ++i) b[i] = rng.uniform(-5, 5);
    BlockLU<6> lu;
    ASSERT_TRUE(lu.factor(m));
    const auto x = lu.solve(b);
    const auto r = m * x - b;
    EXPECT_LT(r.norm2(), 1e-10);
  }
}

TEST(Block, SingularDetected) {
  BlockMat<3> m;  // all zeros
  BlockLU<3> lu;
  EXPECT_FALSE(lu.factor(m));
}

TEST(Block, PivotingHandlesZeroDiagonal) {
  BlockMat<2> m;
  m(0, 0) = 0;
  m(0, 1) = 1;
  m(1, 0) = 1;
  m(1, 1) = 0;
  BlockLU<2> lu;
  ASSERT_TRUE(lu.factor(m));
  BlockVec<2> b;
  b[0] = 3;
  b[1] = 5;
  const auto x = lu.solve(b);
  EXPECT_NEAR(x[0], 5, 1e-14);
  EXPECT_NEAR(x[1], 3, 1e-14);
}

TEST(Block, MatrixSolveInverts) {
  Xoshiro256 rng(5);
  const auto m = random_diag_dominant<4>(rng);
  BlockLU<4> lu;
  ASSERT_TRUE(lu.factor(m));
  const auto inv = lu.solve(BlockMat<4>::identity());
  const auto prod = m * inv;
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 4; ++j)
      EXPECT_NEAR(prod(i, j), i == j ? 1.0 : 0.0, 1e-10);
}

TEST(Block, MatVecMatchesManual) {
  BlockMat<2> m;
  m(0, 0) = 1;
  m(0, 1) = 2;
  m(1, 0) = 3;
  m(1, 1) = 4;
  BlockVec<2> v;
  v[0] = 5;
  v[1] = 6;
  const auto r = m * v;
  EXPECT_DOUBLE_EQ(r[0], 17);
  EXPECT_DOUBLE_EQ(r[1], 39);
}

TEST(Block, ArithmeticOperators) {
  auto a = BlockMat<3>::diagonal(2.0);
  auto b = BlockMat<3>::diagonal(3.0);
  const auto s = a + b;
  EXPECT_DOUBLE_EQ(s(1, 1), 5.0);
  const auto d = b - a;
  EXPECT_DOUBLE_EQ(d(2, 2), 1.0);
  const auto p = a * b;
  EXPECT_DOUBLE_EQ(p(0, 0), 6.0);
  EXPECT_DOUBLE_EQ((2.0 * a)(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(a.max_abs(), 2.0);
}

template <int N>
void check_tridiag_roundtrip(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<BlockMat<N>> lower(n), diag(n), upper(n);
  std::vector<BlockVec<N>> x_true(n), rhs(n);
  for (std::size_t i = 0; i < n; ++i) {
    diag[i] = random_diag_dominant<N>(rng);
    diag[i] += BlockMat<N>::diagonal(4.0 * N);  // keep system well-posed
    for (int c = 0; c < N; ++c) {
      for (int r = 0; r < N; ++r) {
        if (i > 0) lower[i](r, c) = rng.uniform(-0.3, 0.3);
        if (i + 1 < n) upper[i](r, c) = rng.uniform(-0.3, 0.3);
      }
      x_true[i][c] = rng.uniform(-2, 2);
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    BlockVec<N> b = diag[i] * x_true[i];
    if (i > 0) b += lower[i] * x_true[i - 1];
    if (i + 1 < n) b += upper[i] * x_true[i + 1];
    rhs[i] = b;
  }
  ASSERT_TRUE(solve_block_tridiag<N>(lower, diag, upper, rhs));
  for (std::size_t i = 0; i < n; ++i)
    for (int c = 0; c < N; ++c) EXPECT_NEAR(rhs[i][c], x_true[i][c], 1e-8);
}

TEST(BlockTridiag, SolvesSize1) { check_tridiag_roundtrip<6>(1, 2); }
TEST(BlockTridiag, SolvesSize2) { check_tridiag_roundtrip<6>(2, 3); }
TEST(BlockTridiag, SolvesLong6) { check_tridiag_roundtrip<6>(40, 4); }
TEST(BlockTridiag, SolvesLong5) { check_tridiag_roundtrip<5>(64, 5); }
TEST(BlockTridiag, EmptySystemOk) {
  std::vector<BlockMat<6>> l, d, u;
  std::vector<BlockVec<6>> r;
  EXPECT_TRUE(solve_block_tridiag<6>(l, d, u, r));
}

TEST(ScalarTridiag, SolvesKnownSystem) {
  // -u'' = f discretized: tridiag(-1, 2, -1); solution of [1..n] recovered.
  const std::size_t n = 50;
  std::vector<real_t> lower(n, -1), diag(n, 2), upper(n, -1), x(n), rhs(n);
  Xoshiro256 rng(8);
  for (auto& v : x) v = rng.uniform(-1, 1);
  for (std::size_t i = 0; i < n; ++i) {
    rhs[i] = 2 * x[i];
    if (i > 0) rhs[i] -= x[i - 1];
    if (i + 1 < n) rhs[i] -= x[i + 1];
  }
  ASSERT_TRUE(solve_tridiag(lower, diag, upper, rhs));
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(rhs[i], x[i], 1e-9);
}

TEST(FactorStatus, ReportsFailingPivotColumn) {
  // A matrix whose third column becomes unpivotable: rows 2 and 3 of the
  // identity zeroed leaves no nonzero pivot candidate in column 2.
  BlockMat<4> m = BlockMat<4>::identity();
  m(2, 2) = 0;
  m(3, 3) = 0;
  BlockLU<4> lu;
  const FactorStatus st = lu.factor_status(m);
  EXPECT_FALSE(st.ok);
  EXPECT_FALSE(bool(st));
  EXPECT_EQ(st.pivot_col, 2);
  EXPECT_EQ(st.pivot_mag, 0.0);
  // The boolean wrapper agrees.
  EXPECT_FALSE(lu.factor(m));
}

TEST(FactorStatus, OkOnWellConditionedBlock) {
  BlockLU<3> lu;
  const FactorStatus st = lu.factor_status(BlockMat<3>::diagonal(2.0));
  EXPECT_TRUE(st.ok);
  EXPECT_EQ(st.pivot_col, -1);
}

TEST(TridiagStatus, ReportsSingularRowAndColumn) {
  // Decoupled 1x1-ish blocks: a zero diagonal block at row 2 must be
  // named in the status, not folded into a bare false.
  const std::size_t n = 4;
  std::vector<BlockMat<2>> lower(n), diag(n), upper(n);
  std::vector<BlockVec<2>> rhs(n);
  for (std::size_t i = 0; i < n; ++i) diag[i] = BlockMat<2>::diagonal(3.0);
  diag[2] = BlockMat<2>{};  // singular pivot block
  const TridiagStatus st =
      solve_block_tridiag_status<2>(lower, diag, upper, rhs);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.row, 2u);
  EXPECT_EQ(st.factor.pivot_col, 0);
}

TEST(TridiagStatus, OkRoundTripsThroughBooleanWrapper) {
  const std::size_t n = 3;
  std::vector<BlockMat<2>> lower(n), diag(n), upper(n);
  std::vector<BlockVec<2>> rhs(n);
  for (std::size_t i = 0; i < n; ++i) {
    diag[i] = BlockMat<2>::diagonal(2.0);
    rhs[i][0] = real_t(i);
    rhs[i][1] = 1.0;
  }
  EXPECT_TRUE(solve_block_tridiag<2>(lower, diag, upper, rhs));
  EXPECT_DOUBLE_EQ(rhs[1][0], 0.5);
}

TEST(BlockVec, NormAndOps) {
  BlockVec<3> v;
  v[0] = 3;
  v[1] = 4;
  v[2] = 0;
  EXPECT_DOUBLE_EQ(v.norm2(), 5.0);
  auto w = 2.0 * v;
  EXPECT_DOUBLE_EQ(w[1], 8.0);
  w -= v;
  EXPECT_DOUBLE_EQ(w[0], 3.0);
}

}  // namespace
}  // namespace columbia::linalg
