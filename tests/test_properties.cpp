// Cross-module property tests: parameterized sweeps over configurations,
// checking the invariants the solvers depend on.
#include <gtest/gtest.h>

#include "euler/flux.hpp"
#include "euler/jacobian.hpp"
#include "graph/partition.hpp"
#include "mesh/builders.hpp"
#include "mesh/dual_metrics.hpp"
#include "support/random.hpp"

namespace columbia {
namespace {

// ---------------------------------------------------------------------
// Flux Jacobian vs finite differences: the implicit smoothers linearize
// the residual with euler::flux_jacobian; a wrong entry silently degrades
// convergence, so check every entry against central differences.
class JacobianSweep : public ::testing::TestWithParam<int> {};

TEST_P(JacobianSweep, MatchesFiniteDifferences) {
  Xoshiro256 rng{std::uint64_t(GetParam())};
  const euler::Prim w{rng.uniform(0.3, 2.0),
                      {rng.uniform(-1, 1), rng.uniform(-1, 1),
                       rng.uniform(-1, 1)},
                      rng.uniform(0.3, 2.0)};
  geom::Vec3 n{rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1)};
  n = normalized(n);

  const auto a = euler::flux_jacobian(w, n);
  const euler::Cons u0 = euler::to_conservative(w);
  const real_t eps = 1e-6;
  for (int j = 0; j < 5; ++j) {
    euler::Cons up = u0, um = u0;
    const real_t h = eps * std::max<real_t>(1.0, std::abs(u0[std::size_t(j)]));
    up[std::size_t(j)] += h;
    um[std::size_t(j)] -= h;
    const euler::Cons fp = euler::physical_flux(euler::to_primitive(up), n);
    const euler::Cons fm = euler::physical_flux(euler::to_primitive(um), n);
    for (int i = 0; i < 5; ++i) {
      const real_t fd = (fp[std::size_t(i)] - fm[std::size_t(i)]) / (2 * h);
      EXPECT_NEAR(a(i, j), fd, 2e-5 * std::max<real_t>(1.0, std::abs(fd)))
          << "entry (" << i << "," << j << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomStates, JacobianSweep,
                         ::testing::Range(1, 13));

// ---------------------------------------------------------------------
// Jacobian linearity in the normal: A(w, s*n) = s*A(w, n). The implicit
// assembly exploits this by passing scaled dual-face normals directly.
TEST(Jacobian, LinearInNormal) {
  const euler::Prim w{1.2, {0.4, -0.2, 0.7}, 0.9};
  const geom::Vec3 n{0.3, -0.5, 0.81};
  const auto a1 = euler::flux_jacobian(w, n);
  const auto a3 = euler::flux_jacobian(w, 3.0 * n);
  for (int i = 0; i < 5; ++i)
    for (int j = 0; j < 5; ++j)
      EXPECT_NEAR(a3(i, j), 3.0 * a1(i, j), 1e-12);
}

// ---------------------------------------------------------------------
// Dual-metric closure must hold for every wing-mesh configuration, not
// just the one the solver tests use.
struct WingCase {
  int n_wrap, n_span, n_normal;
  real_t wall_spacing, hex_fraction;
};

class WingMeshSweep : public ::testing::TestWithParam<WingCase> {};

TEST_P(WingMeshSweep, MetricsCloseAndVolumesPositive) {
  const WingCase c = GetParam();
  mesh::WingMeshSpec spec;
  spec.n_wrap = c.n_wrap;
  spec.n_span = c.n_span;
  spec.n_normal = c.n_normal;
  spec.wall_spacing = c.wall_spacing;
  spec.hex_layer_fraction = c.hex_fraction;
  const auto m = mesh::make_wing_mesh(spec);
  for (index_t e = 0; e < m.num_elements(); ++e)
    ASSERT_GT(m.element_volume(e), 0.0);
  const auto dm = mesh::compute_dual_metrics(m);
  EXPECT_LT(mesh::metric_closure_error(m, dm), 1e-9);
  real_t sum = 0;
  for (real_t v : dm.node_volume) {
    ASSERT_GT(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum, m.total_volume(), 1e-7 * std::abs(sum));
}

INSTANTIATE_TEST_SUITE_P(
    Configurations, WingMeshSweep,
    ::testing::Values(WingCase{16, 2, 6, 1e-3, 0.5},
                      WingCase{24, 4, 10, 1e-4, 0.5},
                      WingCase{32, 3, 8, 1e-2, 0.25},
                      WingCase{16, 2, 8, 1e-4, 1.0},    // all hex
                      WingCase{20, 2, 8, 1e-3, 0.12})); // thin hex block

// ---------------------------------------------------------------------
// Partitioner sweep: valid ids, bounded imbalance, sane cut growth across
// part counts on the same graph.
class PartitionSweep : public ::testing::TestWithParam<index_t> {};

TEST_P(PartitionSweep, BalancedValidPartitions) {
  const index_t nparts = GetParam();
  std::vector<std::pair<index_t, index_t>> edges;
  const index_t n = 18;
  auto id = [&](index_t i, index_t j, index_t k) {
    return (k * n + j) * n + i;
  };
  for (index_t k = 0; k < n; ++k)
    for (index_t j = 0; j < n; ++j)
      for (index_t i = 0; i < n; ++i) {
        if (i + 1 < n) edges.emplace_back(id(i, j, k), id(i + 1, j, k));
        if (j + 1 < n) edges.emplace_back(id(i, j, k), id(i, j + 1, k));
        if (k + 1 < n) edges.emplace_back(id(i, j, k), id(i, j, k + 1));
      }
  const graph::Csr g = graph::Csr::from_edges(n * n * n, edges);
  const auto part = graph::partition(g, nparts);
  const auto q = graph::evaluate_partition(g, part, nparts);
  EXPECT_EQ(q.nonempty_parts, nparts);
  EXPECT_LT(q.imbalance, 0.35);
  // Cut should scale like the total partition surface ~ n^2 * nparts^(1/3).
  const real_t surface_scale =
      real_t(n) * real_t(n) * std::cbrt(real_t(nparts));
  EXPECT_LT(q.edge_cut, 5.0 * surface_scale);
}

INSTANTIATE_TEST_SUITE_P(PartCounts, PartitionSweep,
                         ::testing::Values(2, 3, 5, 8, 13, 21, 32));

// ---------------------------------------------------------------------
// Numerical flux positivity-adjacent property: for two states with equal
// pressure and velocity, the interface mass flux is bounded by the
// physical fluxes on either side (no scheme invents mass from nowhere).
class FluxBoundSweep : public ::testing::TestWithParam<euler::FluxScheme> {};

TEST_P(FluxBoundSweep, MassFluxBetweenUpwindBounds) {
  Xoshiro256 rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    const geom::Vec3 vel{rng.uniform(-0.5, 0.5), rng.uniform(-0.5, 0.5),
                         rng.uniform(-0.5, 0.5)};
    const real_t p = rng.uniform(0.5, 2.0);
    const euler::Prim l{rng.uniform(0.5, 2.0), vel, p};
    const euler::Prim r{rng.uniform(0.5, 2.0), vel, p};
    const geom::Vec3 nrm{1, 0, 0};
    const auto f = euler::numerical_flux(l, r, nrm, GetParam());
    const real_t fl = euler::physical_flux(l, nrm)[0];
    const real_t fr = euler::physical_flux(r, nrm)[0];
    // Dissipation is bounded by 0.5 * max wave speed * |density jump|
    // (the Rusanov bound; Roe/van Leer sit strictly inside it).
    const real_t margin = 0.5 *
                              std::max(euler::spectral_radius(l, nrm),
                                       euler::spectral_radius(r, nrm)) *
                              std::abs(r.rho - l.rho) +
                          1e-12;
    EXPECT_GT(f[0], std::min(fl, fr) - margin);
    EXPECT_LT(f[0], std::max(fl, fr) + margin);
  }
}

INSTANTIATE_TEST_SUITE_P(Schemes, FluxBoundSweep,
                         ::testing::Values(euler::FluxScheme::Roe,
                                           euler::FluxScheme::VanLeer,
                                           euler::FluxScheme::Rusanov));

}  // namespace
}  // namespace columbia
