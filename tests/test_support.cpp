#include <gtest/gtest.h>

#include <set>

#include "support/random.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

namespace columbia {
namespace {

TEST(Random, SplitMix64Deterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Random, XoshiroUniformRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Random, XoshiroUniformIntervalRange) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.0, 3.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(Random, BelowStaysBelow) {
  Xoshiro256 rng(1);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(17), 17u);
}

TEST(Random, XoshiroRoughlyUniformMean) {
  Xoshiro256 rng(3);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Random, DifferentSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 3);
}

TEST(Table, FormatsAligned) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22"), std::string::npos);
  // Header rule present.
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(Table, PadsShortRows) {
  Table t({"a", "b", "c"});
  t.add_row({"only"});
  EXPECT_NO_THROW(t.to_string());
}

TEST(Table, NumFormatsDigits) {
  EXPECT_EQ(Table::num(1.23456, 2), "1.23");
  EXPECT_EQ(Table::num(2.0, 0), "2");
}

TEST(Timer, MeasuresNonNegative) {
  WallTimer t;
  EXPECT_GE(t.seconds(), 0.0);
  t.reset();
  EXPECT_GE(t.seconds(), 0.0);
}

}  // namespace
}  // namespace columbia
