// The interior/halo split invariant (DESIGN.md): ExchangePlan::post() +
// finish() must be bit-identical to the blocking exchange() — same values,
// same wire accounting — and the solvers' overlap=true residual paths must
// reproduce the overlap=false results bit-for-bit at every thread count,
// under both Fig. 7 strategies, over every wire backend, with fault
// injection on or off. Coarse-level rank agglomeration (active_members)
// must likewise leave the delivered halo values untouched: parked members
// fill their replicated schedule by local validation and agree bitwise
// with the full-rank run.
//
// Everything here is fork-free (loopback Group(1) endpoints and two-thread
// LocalGroup members), so unlike test_transport this suite runs under the
// tsan and asan sanitizer configurations.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cart3d/partitioned.hpp"
#include "core/exchange_plan.hpp"
#include "core/transport.hpp"
#include "geom/components.hpp"
#include "mesh/builders.hpp"
#include "nsu3d/partitioned.hpp"
#include "resil/faults.hpp"
#include "smp/pool.hpp"
#include "smp/shm_transport.hpp"
#include "smp/tcp_transport.hpp"
#include "support/random.hpp"

namespace columbia {
namespace {

struct InjectorGuard {
  explicit InjectorGuard(const std::string& spec) {
    resil::FaultInjector::global().configure(resil::parse_fault_spec(spec));
  }
  ~InjectorGuard() { resil::FaultInjector::global().reset(); }
};

struct PoolGuard {
  ~PoolGuard() { smp::set_global_threads(1); }
};

struct Scenario {
  core::PartitionData data;
  core::RequestLists requests;
};

Scenario make_scenario(index_t nparts, index_t items_per_part,
                       index_t requests_per_part, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  Scenario s;
  s.data.resize(std::size_t(nparts));
  for (auto& d : s.data) {
    d.resize(std::size_t(items_per_part));
    for (auto& v : d) v = rng.uniform(-10, 10);
  }
  s.requests.resize(std::size_t(nparts));
  for (index_t p = 0; p < nparts; ++p) {
    for (index_t k = 0; k < requests_per_part; ++k) {
      core::HaloRequest r;
      r.from_partition = index_t(rng.below(std::uint64_t(nparts)));
      r.item = index_t(rng.below(std::uint64_t(items_per_part)));
      s.requests[std::size_t(p)].push_back(r);
    }
  }
  return s;
}

core::PartitionData expected(const Scenario& s) {
  core::PartitionData out(s.data.size(), std::vector<real_t>{});
  for (std::size_t p = 0; p < s.data.size(); ++p)
    for (const core::HaloRequest& r : s.requests[p])
      out[p].push_back(
          s.data[std::size_t(r.from_partition)][std::size_t(r.item)]);
  return out;
}

core::WireOptions test_wire() {
  core::WireOptions w;
  w.deadline_ms = 50;
  w.max_attempts = 8;
  w.backoff_base_ms = 1;
  w.backoff_max_ms = 4;
  w.loopback_self = true;
  return w;
}

// --- post()/finish() against the blocking exchange -------------------------

TEST(SplitExchange, PostFinishMatchesBlockingBitwise) {
  for (const core::ExchangeStrategy strat :
       {core::ExchangeStrategy::ThreadToThread,
        core::ExchangeStrategy::MasterThread}) {
    const int tpp = strat == core::ExchangeStrategy::MasterThread ? 2 : 1;
    Scenario s = make_scenario(8, 20, 15, 31);
    core::ExchangePlan split(s.requests, {strat, tpp});
    core::ExchangePlan block(s.requests, {strat, tpp});
    for (int round = 0; round < 4; ++round) {
      const core::PartitionData snapshot = s.data;
      EXPECT_FALSE(split.posted());
      split.post(s.data);
      EXPECT_TRUE(split.posted());
      // post() snapshots: the caller owns `data` again and may scribble on
      // it while the exchange is in flight (the overlapped interior loop).
      for (auto& d : s.data)
        for (auto& v : d) v = -4096.0;
      const core::PartitionData got = split.finish();
      EXPECT_FALSE(split.posted());
      s.data = snapshot;
      EXPECT_EQ(got, block.exchange(s.data)) << "round " << round;
      EXPECT_EQ(got, expected(s)) << "round " << round;
      for (auto& d : s.data)
        for (auto& v : d) v += 0.25 * real_t(round + 1);
    }
    // Same wire accounting too: the split path is the same machinery.
    EXPECT_EQ(split.stats().messages, block.stats().messages);
    EXPECT_EQ(split.stats().bytes, block.stats().bytes);
    EXPECT_EQ(split.stats().exchanges, block.stats().exchanges);
  }
}

TEST(SplitExchange, PostFinishBitIdenticalUnderHaloFaults) {
  const Scenario s = make_scenario(8, 20, 15, 32);
  const core::PartitionData want = expected(s);
  InjectorGuard faults("seed=11,halo_corrupt=0.4,halo_drop=0.4");
  core::ExchangePlan t2t(s.requests);
  core::ExchangePlan master(s.requests,
                            {core::ExchangeStrategy::MasterThread, 4});
  for (int round = 0; round < 4; ++round) {
    t2t.post(s.data);
    master.post(s.data);
    EXPECT_EQ(t2t.finish(), want) << "round " << round;
    EXPECT_EQ(master.finish(), want) << "round " << round;
  }
  EXPECT_GT(t2t.stats().retransmits + master.stats().retransmits, 0u);
}

// --- post()/finish() over every wire backend (fork-free loopback) ----------

void expect_split_loopback_identity(core::Transport& t,
                                    const std::string& faults) {
  const Scenario s = make_scenario(6, 18, 14, 33);
  const core::PartitionData want = expected(s);
  for (const core::ExchangeStrategy strat :
       {core::ExchangeStrategy::ThreadToThread,
        core::ExchangeStrategy::MasterThread}) {
    core::ExchangePlanOptions opt;
    opt.strategy = strat;
    opt.threads_per_process =
        strat == core::ExchangeStrategy::MasterThread ? 2 : 1;
    opt.level = 0;
    opt.transport = &t;
    opt.wire = test_wire();
    core::ExchangePlan plan(s.requests, opt);
    if (!faults.empty()) {
      InjectorGuard inj(faults);
      for (int round = 0; round < 3; ++round) {
        plan.post(s.data);
        EXPECT_EQ(plan.finish(), want)
            << "faulted, strat " << int(strat) << " round " << round;
      }
      EXPECT_GT(plan.stats().retransmits, 0u) << "fault spec never fired";
    } else {
      for (int round = 0; round < 3; ++round) {
        plan.post(s.data);
        EXPECT_EQ(plan.finish(), want)
            << "clean, strat " << int(strat) << " round " << round;
      }
      EXPECT_EQ(plan.stats().retransmits, 0u);
    }
  }
}

TEST(SplitExchange, LocalWireDeliversBitIdentical) {
  core::LocalGroup group(1);
  auto t = group.endpoint(0);
  expect_split_loopback_identity(*t, "");
  expect_split_loopback_identity(*t, "seed=13,halo_corrupt=0.3,msg_drop=0.2");
}

TEST(SplitExchange, ShmWireDeliversBitIdentical) {
  smp::ShmGroup group(1);
  auto t = group.endpoint(0);
  expect_split_loopback_identity(*t, "");
  expect_split_loopback_identity(*t, "seed=13,halo_corrupt=0.3,msg_drop=0.2");
}

TEST(SplitExchange, TcpWireDeliversBitIdentical) {
  smp::TcpGroup group(1);
  auto t = group.endpoint(0);
  expect_split_loopback_identity(*t, "");
  expect_split_loopback_identity(*t, "seed=13,halo_corrupt=0.3,msg_drop=0.2");
}

// --- Solver overlap paths: NSU3D ------------------------------------------

struct WingCase {
  std::vector<nsu3d::Level> levels;
  std::vector<nsu3d::State> u;
  euler::Prim inf;
  nsu3d::PartitionPlan plan;
};

WingCase make_wing_case() {
  mesh::WingMeshSpec spec;
  spec.n_wrap = 24;
  spec.n_span = 3;
  spec.n_normal = 10;
  spec.wall_spacing = 1e-4;
  const auto m = mesh::make_wing_mesh(spec);
  nsu3d::LevelOptions lo;
  lo.num_levels = 1;
  WingCase w;
  w.levels = nsu3d::build_levels(m, lo);
  const nsu3d::Level& lvl = w.levels[0];

  euler::FlowConditions fc;
  fc.mach = 0.6;
  w.inf = fc.freestream();
  w.u.resize(std::size_t(lvl.num_nodes));
  for (index_t v = 0; v < lvl.num_nodes; ++v) {
    const geom::Vec3& x = lvl.node_center[std::size_t(v)];
    euler::Prim prim = w.inf;
    prim.rho *= 1.0 + 0.05 * std::sin(x.x + 0.3 * x.y);
    prim.p *= 1.0 + 0.05 * std::cos(0.7 * x.z);
    const auto c5 = euler::to_conservative(prim);
    for (int c = 0; c < 5; ++c)
      w.u[std::size_t(v)][std::size_t(c)] = c5[std::size_t(c)];
    w.u[std::size_t(v)][5] = 1e-5 * prim.rho;
  }
  w.plan = nsu3d::build_partition_plan(w.levels, 4);
  return w;
}

TEST(SplitResidual, Nsu3dOverlapBitIdenticalAcrossThreadsAndStrategies) {
  const WingCase w = make_wing_case();
  const nsu3d::Level& lvl = w.levels[0];
  const auto& part = w.plan.levels[0].part;
  PoolGuard pool;
  const auto baseline = nsu3d::parallel_residual(lvl, w.u, w.inf, part, 4);
  for (const int threads : {1, 2, 4}) {
    smp::set_global_threads(threads);
    for (const core::ExchangeStrategy strat :
         {core::ExchangeStrategy::ThreadToThread,
          core::ExchangeStrategy::MasterThread}) {
      core::ExchangePlanOptions comm;
      comm.strategy = strat;
      comm.threads_per_process =
          strat == core::ExchangeStrategy::MasterThread ? 2 : 1;
      const auto plain =
          nsu3d::parallel_residual(lvl, w.u, w.inf, part, 4, comm, false);
      const auto lap =
          nsu3d::parallel_residual(lvl, w.u, w.inf, part, 4, comm, true);
      EXPECT_EQ(plain, lap)
          << threads << " threads, strat " << int(strat);
      EXPECT_EQ(lap, baseline)
          << threads << " threads, strat " << int(strat);
    }
  }
}

TEST(SplitResidual, Nsu3dOverlapBitIdenticalUnderHaloFaults) {
  const WingCase w = make_wing_case();
  const nsu3d::Level& lvl = w.levels[0];
  const auto& part = w.plan.levels[0].part;
  PoolGuard pool;
  const auto baseline = nsu3d::parallel_residual(lvl, w.u, w.inf, part, 4);
  smp::set_global_threads(2);
  InjectorGuard faults("seed=7,halo_corrupt=0.3,halo_drop=0.3");
  EXPECT_EQ(nsu3d::parallel_residual(lvl, w.u, w.inf, part, 4, {}, true),
            baseline);
  EXPECT_EQ(nsu3d::parallel_residual(
                lvl, w.u, w.inf, part, 4,
                {core::ExchangeStrategy::MasterThread, 2}, true),
            baseline);
  EXPECT_GT(resil::FaultInjector::global().injected(
                resil::FaultKind::HaloCorrupt) +
                resil::FaultInjector::global().injected(
                    resil::FaultKind::HaloDrop),
            0u);
}

TEST(SplitResidual, Nsu3dOverlapBitIdenticalOverWireBackends) {
  const WingCase w = make_wing_case();
  const nsu3d::Level& lvl = w.levels[0];
  const auto& part = w.plan.levels[0].part;
  const auto baseline = nsu3d::parallel_residual(lvl, w.u, w.inf, part, 4);

  const auto check = [&](core::Transport& t, const std::string& faults) {
    core::ExchangePlanOptions comm;
    comm.level = 0;
    comm.transport = &t;
    comm.wire = test_wire();
    std::unique_ptr<InjectorGuard> inj;
    if (!faults.empty()) inj = std::make_unique<InjectorGuard>(faults);
    const auto plain =
        nsu3d::parallel_residual(lvl, w.u, w.inf, part, 4, comm, false);
    const auto lap =
        nsu3d::parallel_residual(lvl, w.u, w.inf, part, 4, comm, true);
    EXPECT_EQ(plain, lap);
    EXPECT_EQ(lap, baseline);
  };

  {
    core::LocalGroup group(1);
    auto t = group.endpoint(0);
    check(*t, "");
  }
  {
    smp::ShmGroup group(1);
    auto t = group.endpoint(0);
    check(*t, "");
    check(*t, "seed=13,halo_corrupt=0.3,msg_drop=0.2");
  }
  {
    smp::TcpGroup group(1);
    auto t = group.endpoint(0);
    check(*t, "");
    check(*t, "seed=13,halo_corrupt=0.3,msg_drop=0.2");
  }
}

// --- Solver overlap paths: Cart3D ------------------------------------------

TEST(SplitResidual, Cart3dOverlapBitIdentical) {
  const auto sphere = geom::make_sphere({0, 0, 0}, 0.4, 16, 32);
  geom::Aabb dom;
  dom.expand({-1.5, -1.5, -1.5});
  dom.expand({1.5, 1.5, 1.5});
  cartesian::CartMeshOptions mopt;
  mopt.base_n = 8;
  mopt.max_level = 2;
  const cartesian::CartMesh m = cartesian::build_cart_mesh(sphere, dom, mopt);

  euler::FlowConditions fc;
  fc.mach = 0.5;
  fc.alpha_deg = 2.0;
  const euler::Prim inf = fc.freestream();
  std::vector<euler::Cons> u(m.cells.size());
  for (std::size_t i = 0; i < m.cells.size(); ++i) {
    euler::Prim prim = inf;
    const geom::Vec3 x = m.cell_center(m.cells[i]);
    prim.rho *= 1.0 + 0.04 * std::sin(1.3 * x.x + 0.5 * x.y);
    prim.p *= 1.0 + 0.04 * std::cos(0.9 * x.z);
    u[i] = euler::to_conservative(prim);
  }
  const auto part = cartesian::partition_cells(m, 4);

  PoolGuard pool;
  const auto baseline = cart3d::parallel_residual(m, u, inf, part, 4);
  for (const int threads : {1, 2}) {
    smp::set_global_threads(threads);
    for (const core::ExchangeStrategy strat :
         {core::ExchangeStrategy::ThreadToThread,
          core::ExchangeStrategy::MasterThread}) {
      core::ExchangePlanOptions comm;
      comm.strategy = strat;
      comm.threads_per_process =
          strat == core::ExchangeStrategy::MasterThread ? 2 : 1;
      const auto lap = cart3d::parallel_residual(
          m, u, inf, part, 4, euler::FluxScheme::Roe, comm, true);
      EXPECT_EQ(lap, baseline)
          << threads << " threads, strat " << int(strat);
    }
  }
  InjectorGuard faults("seed=7,halo_corrupt=0.3,halo_drop=0.3");
  EXPECT_EQ(cart3d::parallel_residual(m, u, inf, part, 4,
                                      euler::FluxScheme::Roe, {}, true),
            baseline);
}

// --- Coarse-level rank agglomeration ---------------------------------------

/// Two live member threads over one LocalGroup: the agglomerated plan
/// (active_members=1, member 1 parked) must deliver the same halo values
/// on BOTH members as the full-rank plan, through the split post/finish
/// path, with the data evolving between rounds.
TEST(Agglomeration, ParkedMemberAgreesBitwiseWithFullRank) {
  const Scenario base = make_scenario(6, 18, 14, 41);
  const auto run = [&](int active_members) {
    // [member][round] -> delivered values.
    std::vector<std::vector<core::PartitionData>> got(
        2, std::vector<core::PartitionData>(3));
    std::vector<int> codes(2, -1);
    core::LocalGroup group(2);
    std::vector<std::thread> members;
    for (int r = 0; r < 2; ++r)
      members.emplace_back([&, r] {
        try {
          auto t = group.endpoint(r);
          core::ExchangePlanOptions opt;
          opt.level = 2;
          opt.transport = t.get();
          opt.wire.deadline_ms = 200;
          opt.active_members = active_members;
          core::ExchangePlan plan(base.requests, opt);
          Scenario s = base;  // members run replicated data
          for (int round = 0; round < 3; ++round) {
            plan.post(s.data);
            got[std::size_t(r)][std::size_t(round)] = plan.finish();
            for (auto& d : s.data)
              for (auto& v : d) v += 0.5 * real_t(round + 1);
          }
          plan.drain(50);
          codes[std::size_t(r)] = 0;
        } catch (const std::exception&) {
          codes[std::size_t(r)] = 70;
        }
      });
    for (auto& th : members) th.join();
    EXPECT_EQ(codes[0], 0) << "active_members " << active_members;
    EXPECT_EQ(codes[1], 0) << "active_members " << active_members;
    return got;
  };

  const auto agglomerated = run(1);
  const auto full_rank = run(0);
  // Round-0 sanity against the schedule semantics...
  EXPECT_EQ(agglomerated[0][0], expected(base));
  // ...then full cross-mode, cross-member bitwise identity.
  for (int r = 0; r < 2; ++r)
    for (int round = 0; round < 3; ++round) {
      EXPECT_EQ(agglomerated[std::size_t(r)][std::size_t(round)],
                full_rank[0][std::size_t(round)])
          << "member " << r << " round " << round;
      EXPECT_EQ(full_rank[std::size_t(r)][std::size_t(round)],
                full_rank[0][std::size_t(round)])
          << "member " << r << " round " << round;
    }
}

}  // namespace
}  // namespace columbia
