// Tracing must be numerically invisible: residual histories are
// bit-identical with observability on or off, at any thread count, and
// with the convergence-telemetry JSONL sink open. This is the contract
// that lets the instrumentation live permanently in the solver hot paths.
#include <gtest/gtest.h>

#include <cmath>
#include <span>
#include <string>
#include <vector>

#include "cart3d/solver.hpp"
#include "core/exchange_plan.hpp"
#include "geom/components.hpp"
#include "mesh/builders.hpp"
#include "nsu3d/partitioned.hpp"
#include "nsu3d/solver.hpp"
#include "obs/obs.hpp"
#include "obs/shard.hpp"
#include "resil/faults.hpp"
#include "smp/pool.hpp"

namespace columbia {
namespace {

/// Restores single-threaded, observability-off state when a test exits.
struct Guard {
  ~Guard() {
    obs::close_jsonl();
    obs::set_report(false);
    obs::set_enabled(false);
    obs::reset_trace();
    obs::reset_metrics();
    smp::set_global_threads(1);
  }
};

mesh::UnstructuredMesh small_wing() {
  mesh::WingMeshSpec spec;
  spec.n_wrap = 24;
  spec.n_span = 3;
  spec.n_normal = 10;
  spec.wall_spacing = 1e-4;
  return mesh::make_wing_mesh(spec);
}

std::vector<real_t> run_nsu3d(const mesh::UnstructuredMesh& m, int threads,
                              bool tracing, const std::string& jsonl = {},
                              bool report = false,
                              const std::string& report_jsonl = {}) {
  Guard guard;
  smp::set_global_threads(threads);
  obs::set_enabled(tracing);
  obs::set_report(report, report_jsonl);
  // open_jsonl is a stub returning false when compiled out; the history
  // comparison is still meaningful there (everything is a no-op).
  if (!jsonl.empty() && obs::kCompiledIn) EXPECT_TRUE(obs::open_jsonl(jsonl));
  euler::FlowConditions fc;
  fc.mach = 0.75;
  fc.reynolds = 3e6;
  nsu3d::Nsu3dOptions o;
  o.mg_levels = 3;
  nsu3d::Nsu3dSolver s(m, fc, o);
  return s.solve(5, 10);
}

std::vector<real_t> run_cart3d(const cartesian::CartMesh& m, int threads,
                               bool tracing, bool report = false) {
  Guard guard;
  smp::set_global_threads(threads);
  obs::set_enabled(tracing);
  obs::set_report(report);
  euler::FlowConditions fc;
  fc.mach = 0.3;
  fc.alpha_deg = 2.0;
  cart3d::SolverOptions o;
  o.mg_levels = 2;
  cart3d::Cart3DSolver s(m, fc, o);
  return s.solve(10, 6);
}

cartesian::CartMesh small_sphere_mesh() {
  const geom::TriSurface sphere = geom::make_sphere({0, 0, 0}, 0.4, 12, 24);
  geom::Aabb domain;
  domain.expand({-1.5, -1.5, -1.5});
  domain.expand({1.5, 1.5, 1.5});
  cartesian::CartMeshOptions opt;
  opt.base_n = 8;
  opt.max_level = 1;
  return cartesian::build_cart_mesh(sphere, domain, opt);
}

void expect_equal(const std::vector<real_t>& a, const std::vector<real_t>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i])
      << "cycle " << i;
}

TEST(ObsDeterminism, Nsu3dTracingOnVsOff) {
  const auto m = small_wing();
  expect_equal(run_nsu3d(m, 1, false), run_nsu3d(m, 1, true));
}

TEST(ObsDeterminism, Nsu3dTracedHistoryThreadInvariant) {
  const auto m = small_wing();
  expect_equal(run_nsu3d(m, 1, true), run_nsu3d(m, 3, true));
}

TEST(ObsDeterminism, Nsu3dTelemetrySinkInvisible) {
  const auto m = small_wing();
  const std::string path = testing::TempDir() + "obs_det_nsu3d.jsonl";
  expect_equal(run_nsu3d(m, 2, true), run_nsu3d(m, 2, true, path));
}

TEST(ObsDeterminism, Cart3dTracingOnVsOff) {
  const auto m = small_sphere_mesh();
  expect_equal(run_cart3d(m, 1, false), run_cart3d(m, 1, true));
}

TEST(ObsDeterminism, Cart3dTracedHistoryThreadInvariant) {
  const auto m = small_sphere_mesh();
  expect_equal(run_cart3d(m, 1, true), run_cart3d(m, 4, true));
}

// COLUMBIA_REPORT (the end-of-solve flight recorder) must be exactly as
// invisible as tracing: SolveReportScope only toggles the span recorder
// and reads telemetry after the fact, never solver arithmetic.

TEST(ObsDeterminism, Nsu3dReportOnVsOff) {
  const auto m = small_wing();
  expect_equal(run_nsu3d(m, 1, false),
               run_nsu3d(m, 1, false, {}, /*report=*/true));
}

TEST(ObsDeterminism, Nsu3dReportedHistoryThreadInvariant) {
  const auto m = small_wing();
  expect_equal(run_nsu3d(m, 1, false, {}, true),
               run_nsu3d(m, 3, false, {}, true));
}

TEST(ObsDeterminism, Nsu3dReportJsonlSinkInvisible) {
  const auto m = small_wing();
  const std::string path = testing::TempDir() + "obs_det_report.jsonl";
  expect_equal(run_nsu3d(m, 2, false, {}, true),
               run_nsu3d(m, 2, false, {}, true, path));
}

TEST(ObsDeterminism, Cart3dReportOnVsOff) {
  const auto m = small_sphere_mesh();
  expect_equal(run_cart3d(m, 1, false), run_cart3d(m, 1, false, true));
}

TEST(ObsDeterminism, Cart3dReportedHistoryThreadInvariant) {
  const auto m = small_sphere_mesh();
  expect_equal(run_cart3d(m, 1, false, true),
               run_cart3d(m, 4, false, true));
}

// The distributed flight recorder (obs/shard.hpp) must be exactly as
// invisible as plain tracing: it arms the same span recorder, adds a
// durable-rewrite autoflush thread, and never touches solver arithmetic.
// (The forked shm/tcp recorder-on/off story lives in test_flight_recorder;
// here the in-process threads backend pins the same contract under tsan.)

std::vector<real_t> run_nsu3d_recorded(const mesh::UnstructuredMesh& m,
                                       int threads) {
  Guard guard;
  smp::set_global_threads(threads);
  obs::ShardOptions so;
  so.path = testing::TempDir() + "obs_det_shard.jsonl";
  so.backend = "threads";
  so.flush_ms = 20;  // keep the autoflush thread busy during the solve
  obs::FlightRecorder rec(so);
  euler::FlowConditions fc;
  fc.mach = 0.75;
  fc.reynolds = 3e6;
  nsu3d::Nsu3dOptions o;
  o.mg_levels = 3;
  nsu3d::Nsu3dSolver s(m, fc, o);
  const std::vector<real_t> hist = s.solve(5, 10);
  obs::ShardClock clock;
  clock.synced = true;
  rec.finalize(clock);
  return hist;
}

TEST(ObsDeterminism, Nsu3dFlightRecorderOnVsOff) {
  const auto m = small_wing();
  expect_equal(run_nsu3d(m, 2, false), run_nsu3d_recorded(m, 2));
}

// The comm observatory (halo.xchg spans on the partitioned exchange path)
// must be exactly as invisible as the rest of the instrumentation: the
// partitioned residual is bit-identical with span recording on or off, at
// any thread count, with either exchange strategy, and with halo fault
// injection armed or not.

struct FaultGuard {
  explicit FaultGuard(const std::string& spec) {
    resil::FaultInjector::global().configure(resil::parse_fault_spec(spec));
  }
  ~FaultGuard() { resil::FaultInjector::global().reset(); }
};

std::vector<nsu3d::State> run_nsu3d_partitioned(
    const nsu3d::Level& lvl, const std::vector<nsu3d::State>& u,
    const euler::Prim& inf, std::span<const index_t> part, int threads,
    bool tracing, const core::ExchangePlanOptions& comm) {
  Guard guard;
  smp::set_global_threads(threads);
  obs::set_enabled(tracing);
  return nsu3d::parallel_residual(lvl, u, inf, part, 4, comm);
}

TEST(ObsDeterminism, PartitionedResidualCommObservatoryInvisible) {
  mesh::WingMeshSpec spec;
  spec.n_wrap = 24;
  spec.n_span = 3;
  spec.n_normal = 10;
  spec.wall_spacing = 1e-4;
  const auto m = mesh::make_wing_mesh(spec);
  nsu3d::LevelOptions lo;
  lo.num_levels = 1;
  const auto levels = nsu3d::build_levels(m, lo);
  const nsu3d::Level& lvl = levels[0];

  euler::FlowConditions fc;
  fc.mach = 0.6;
  const euler::Prim inf = fc.freestream();
  std::vector<nsu3d::State> u(std::size_t(lvl.num_nodes));
  for (index_t v = 0; v < lvl.num_nodes; ++v) {
    const geom::Vec3& x = lvl.node_center[std::size_t(v)];
    euler::Prim w = inf;
    w.rho *= 1.0 + 0.05 * std::sin(x.x + 0.3 * x.y);
    w.p *= 1.0 + 0.05 * std::cos(0.7 * x.z);
    const auto c5 = euler::to_conservative(w);
    for (int c = 0; c < 5; ++c)
      u[std::size_t(v)][std::size_t(c)] = c5[std::size_t(c)];
    u[std::size_t(v)][5] = 1e-5 * w.rho;
  }
  const auto plan = nsu3d::build_partition_plan(levels, 4);
  const auto& part = plan.levels[0].part;

  const core::ExchangePlanOptions configs[] = {
      {core::ExchangeStrategy::ThreadToThread, 1, 0},
      {core::ExchangeStrategy::MasterThread, 2, 0},
  };
  const auto baseline =
      run_nsu3d_partitioned(lvl, u, inf, part, 1, false, configs[0]);
  for (const auto& comm : configs) {
    for (int threads : {1, 2, 4}) {
      EXPECT_EQ(baseline, run_nsu3d_partitioned(lvl, u, inf, part, threads,
                                                true, comm))
          << "threads " << threads << " strat "
          << core::strategy_id(comm.strategy);
      FaultGuard faults("seed=21,halo_corrupt=0.3,halo_drop=0.3");
      EXPECT_EQ(baseline, run_nsu3d_partitioned(lvl, u, inf, part, threads,
                                                true, comm))
          << "faulted, threads " << threads;
    }
  }
}

}  // namespace
}  // namespace columbia
