// Tracing must be numerically invisible: residual histories are
// bit-identical with observability on or off, at any thread count, and
// with the convergence-telemetry JSONL sink open. This is the contract
// that lets the instrumentation live permanently in the solver hot paths.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cart3d/solver.hpp"
#include "geom/components.hpp"
#include "mesh/builders.hpp"
#include "nsu3d/solver.hpp"
#include "obs/obs.hpp"
#include "smp/pool.hpp"

namespace columbia {
namespace {

/// Restores single-threaded, observability-off state when a test exits.
struct Guard {
  ~Guard() {
    obs::close_jsonl();
    obs::set_report(false);
    obs::set_enabled(false);
    obs::reset_trace();
    obs::reset_metrics();
    smp::set_global_threads(1);
  }
};

mesh::UnstructuredMesh small_wing() {
  mesh::WingMeshSpec spec;
  spec.n_wrap = 24;
  spec.n_span = 3;
  spec.n_normal = 10;
  spec.wall_spacing = 1e-4;
  return mesh::make_wing_mesh(spec);
}

std::vector<real_t> run_nsu3d(const mesh::UnstructuredMesh& m, int threads,
                              bool tracing, const std::string& jsonl = {},
                              bool report = false,
                              const std::string& report_jsonl = {}) {
  Guard guard;
  smp::set_global_threads(threads);
  obs::set_enabled(tracing);
  obs::set_report(report, report_jsonl);
  // open_jsonl is a stub returning false when compiled out; the history
  // comparison is still meaningful there (everything is a no-op).
  if (!jsonl.empty() && obs::kCompiledIn) EXPECT_TRUE(obs::open_jsonl(jsonl));
  euler::FlowConditions fc;
  fc.mach = 0.75;
  fc.reynolds = 3e6;
  nsu3d::Nsu3dOptions o;
  o.mg_levels = 3;
  nsu3d::Nsu3dSolver s(m, fc, o);
  return s.solve(5, 10);
}

std::vector<real_t> run_cart3d(const cartesian::CartMesh& m, int threads,
                               bool tracing, bool report = false) {
  Guard guard;
  smp::set_global_threads(threads);
  obs::set_enabled(tracing);
  obs::set_report(report);
  euler::FlowConditions fc;
  fc.mach = 0.3;
  fc.alpha_deg = 2.0;
  cart3d::SolverOptions o;
  o.mg_levels = 2;
  cart3d::Cart3DSolver s(m, fc, o);
  return s.solve(10, 6);
}

cartesian::CartMesh small_sphere_mesh() {
  const geom::TriSurface sphere = geom::make_sphere({0, 0, 0}, 0.4, 12, 24);
  geom::Aabb domain;
  domain.expand({-1.5, -1.5, -1.5});
  domain.expand({1.5, 1.5, 1.5});
  cartesian::CartMeshOptions opt;
  opt.base_n = 8;
  opt.max_level = 1;
  return cartesian::build_cart_mesh(sphere, domain, opt);
}

void expect_equal(const std::vector<real_t>& a, const std::vector<real_t>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i])
      << "cycle " << i;
}

TEST(ObsDeterminism, Nsu3dTracingOnVsOff) {
  const auto m = small_wing();
  expect_equal(run_nsu3d(m, 1, false), run_nsu3d(m, 1, true));
}

TEST(ObsDeterminism, Nsu3dTracedHistoryThreadInvariant) {
  const auto m = small_wing();
  expect_equal(run_nsu3d(m, 1, true), run_nsu3d(m, 3, true));
}

TEST(ObsDeterminism, Nsu3dTelemetrySinkInvisible) {
  const auto m = small_wing();
  const std::string path = testing::TempDir() + "obs_det_nsu3d.jsonl";
  expect_equal(run_nsu3d(m, 2, true), run_nsu3d(m, 2, true, path));
}

TEST(ObsDeterminism, Cart3dTracingOnVsOff) {
  const auto m = small_sphere_mesh();
  expect_equal(run_cart3d(m, 1, false), run_cart3d(m, 1, true));
}

TEST(ObsDeterminism, Cart3dTracedHistoryThreadInvariant) {
  const auto m = small_sphere_mesh();
  expect_equal(run_cart3d(m, 1, true), run_cart3d(m, 4, true));
}

// COLUMBIA_REPORT (the end-of-solve flight recorder) must be exactly as
// invisible as tracing: SolveReportScope only toggles the span recorder
// and reads telemetry after the fact, never solver arithmetic.

TEST(ObsDeterminism, Nsu3dReportOnVsOff) {
  const auto m = small_wing();
  expect_equal(run_nsu3d(m, 1, false),
               run_nsu3d(m, 1, false, {}, /*report=*/true));
}

TEST(ObsDeterminism, Nsu3dReportedHistoryThreadInvariant) {
  const auto m = small_wing();
  expect_equal(run_nsu3d(m, 1, false, {}, true),
               run_nsu3d(m, 3, false, {}, true));
}

TEST(ObsDeterminism, Nsu3dReportJsonlSinkInvisible) {
  const auto m = small_wing();
  const std::string path = testing::TempDir() + "obs_det_report.jsonl";
  expect_equal(run_nsu3d(m, 2, false, {}, true),
               run_nsu3d(m, 2, false, {}, true, path));
}

TEST(ObsDeterminism, Cart3dReportOnVsOff) {
  const auto m = small_sphere_mesh();
  expect_equal(run_cart3d(m, 1, false), run_cart3d(m, 1, false, true));
}

TEST(ObsDeterminism, Cart3dReportedHistoryThreadInvariant) {
  const auto m = small_sphere_mesh();
  expect_equal(run_cart3d(m, 1, false, true),
               run_cart3d(m, 4, false, true));
}

}  // namespace
}  // namespace columbia
