// Fault-tolerant multi-process transport: the wire codec, the COLUMBIA_FAULTS
// transport-seam kinds, bit-identical halo delivery over every backend
// (in-process mailboxes, shared-memory rings, TCP sockets — driven through
// the single-process loopback harness), timeout/retransmit/peer-loss
// behavior, and the fork-based ProcessGroup launcher with its heartbeat
// failure detector and relaunch recovery.
//
// Fork discipline: the ProcessGroup tests must not touch the global smp
// thread pool before forking (children inherit memory, not threads), so
// everything here works on raw PartitionData scenarios, never solvers.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/exchange_plan.hpp"
#include "core/transport.hpp"
#include "obs/comm_report.hpp"
#include "obs/obs.hpp"
#include "resil/faults.hpp"
#include "smp/process_group.hpp"
#include "smp/shm_transport.hpp"
#include "smp/tcp_transport.hpp"
#include "support/random.hpp"

namespace columbia {
namespace {

struct InjectorGuard {
  explicit InjectorGuard(const std::string& spec) {
    resil::FaultInjector::global().configure(resil::parse_fault_spec(spec));
  }
  ~InjectorGuard() { resil::FaultInjector::global().reset(); }
};

struct ObsGuard {
  ~ObsGuard() {
    obs::set_enabled(false);
    obs::reset_trace();
    resil::FaultInjector::global().reset();
  }
};

struct Scenario {
  core::PartitionData data;
  core::RequestLists requests;
};

Scenario make_scenario(index_t nparts, index_t items_per_part,
                       index_t requests_per_part, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  Scenario s;
  s.data.resize(std::size_t(nparts));
  for (auto& d : s.data) {
    d.resize(std::size_t(items_per_part));
    for (auto& v : d) v = rng.uniform(-10, 10);
  }
  s.requests.resize(std::size_t(nparts));
  for (index_t p = 0; p < nparts; ++p) {
    for (index_t k = 0; k < requests_per_part; ++k) {
      core::HaloRequest r;
      r.from_partition = index_t(rng.below(std::uint64_t(nparts)));
      r.item = index_t(rng.below(std::uint64_t(items_per_part)));
      s.requests[std::size_t(p)].push_back(r);
    }
  }
  return s;
}

core::PartitionData expected(const Scenario& s) {
  core::PartitionData out(s.data.size(), std::vector<real_t>{});
  for (std::size_t p = 0; p < s.data.size(); ++p)
    for (const core::HaloRequest& r : s.requests[p])
      out[p].push_back(
          s.data[std::size_t(r.from_partition)][std::size_t(r.item)]);
  return out;
}

/// Fast wire options for tests: tight deadlines so injected drops resolve
/// in milliseconds, generous attempt budget so they still always resolve.
core::WireOptions test_wire() {
  core::WireOptions w;
  w.deadline_ms = 50;
  w.max_attempts = 8;
  w.backoff_base_ms = 1;
  w.backoff_max_ms = 4;
  w.loopback_self = true;
  return w;
}

// --- Wire codec ------------------------------------------------------------

TEST(WireCodec, RoundTripsHeaderAndFrame) {
  const std::vector<real_t> frame = {3.0, 12345.0, 1.5, -2.25, 1e-300};
  std::vector<std::uint8_t> wire;
  core::encode_wire({0x1122334455667788ull, 42,
                     std::uint16_t(core::WireType::Data), 3},
                    frame, wire);
  EXPECT_EQ(wire.size(), core::kWireHeaderBytes + frame.size() * sizeof(real_t));
  core::WireHeader h;
  std::vector<real_t> back;
  ASSERT_TRUE(core::decode_wire(wire, h, back));
  EXPECT_EQ(h.seq, 0x1122334455667788ull);
  EXPECT_EQ(h.channel, 42u);
  EXPECT_EQ(h.type, std::uint16_t(core::WireType::Data));
  EXPECT_EQ(h.attempt, 3u);
  EXPECT_EQ(back, frame);
}

TEST(WireCodec, RejectsShortAndRaggedDatagrams) {
  std::vector<std::uint8_t> wire;
  core::encode_wire({7, 0, std::uint16_t(core::WireType::Ack), 0}, {}, wire);
  core::WireHeader h;
  std::vector<real_t> frame;
  ASSERT_TRUE(core::decode_wire(wire, h, frame));
  EXPECT_TRUE(frame.empty());
  // Shorter than a header: reject.
  EXPECT_FALSE(core::decode_wire(
      std::span<const std::uint8_t>(wire.data(), core::kWireHeaderBytes - 1),
      h, frame));
  // Body not a whole number of real_t words: reject without crashing.
  wire.push_back(0xab);
  EXPECT_FALSE(core::decode_wire(wire, h, frame));
}

// --- COLUMBIA_FAULTS transport kinds ---------------------------------------

TEST(TransportFaults, GrammarParsesTransportKinds) {
  const resil::FaultSpec spec = resil::parse_fault_spec(
      "seed=9,msg_delay=0.5@25,msg_drop=0.25@3,conn_reset=0.125,peer_hang=1@1");
  EXPECT_EQ(spec.seed, 9u);
  EXPECT_EQ(spec.rate[std::size_t(resil::FaultKind::MsgDelay)], 0.5);
  // msg_delay's @ suffix is the latency parameter, not a budget cap.
  EXPECT_EQ(spec.param[std::size_t(resil::FaultKind::MsgDelay)], 25u);
  EXPECT_EQ(spec.max_count[std::size_t(resil::FaultKind::MsgDelay)],
            std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(spec.rate[std::size_t(resil::FaultKind::MsgDrop)], 0.25);
  EXPECT_EQ(spec.max_count[std::size_t(resil::FaultKind::MsgDrop)], 3u);
  EXPECT_EQ(spec.rate[std::size_t(resil::FaultKind::ConnReset)], 0.125);
  EXPECT_EQ(spec.rate[std::size_t(resil::FaultKind::PeerHang)], 1.0);
  EXPECT_EQ(spec.max_count[std::size_t(resil::FaultKind::PeerHang)], 1u);
}

TEST(TransportFaults, ParseErrorsNameTheFullGrammar) {
  const auto expect_grammar = [](const std::string& spec) {
    try {
      resil::parse_fault_spec(spec);
      FAIL() << "expected invalid_argument for: " << spec;
    } catch (const std::invalid_argument& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("COLUMBIA_FAULTS grammar"), std::string::npos)
          << what;
      // Every kind is listed so the user can fix the typo from the message.
      for (int k = 0; k < resil::kNumFaultKinds; ++k)
        EXPECT_NE(what.find(resil::fault_kind_name(resil::FaultKind(k))),
                  std::string::npos)
            << what;
    }
  };
  expect_grammar("seed=1,msg_dorp=0.5");     // unknown kind
  expect_grammar("seed=1,msg_drop");         // not key=value
  expect_grammar("seed=1,msg_drop=1.5");     // rate outside [0,1]
  expect_grammar("seed=1,msg_drop=banana");  // bad number
}

// --- Loopback bit-identity on every backend --------------------------------

/// Runs the same schedule once without a transport and once with the given
/// endpoint in loopback mode; the delivered values must be bit-identical,
/// fault injection on or off.
void expect_loopback_identity(core::Transport& t, const std::string& faults) {
  const Scenario s = make_scenario(6, 18, 14, 21);
  const core::PartitionData want = expected(s);
  for (const core::ExchangeStrategy strat :
       {core::ExchangeStrategy::ThreadToThread,
        core::ExchangeStrategy::MasterThread}) {
    const int tpp = strat == core::ExchangeStrategy::MasterThread ? 2 : 1;
    core::ExchangePlanOptions opt;
    opt.strategy = strat;
    opt.threads_per_process = tpp;
    opt.transport = &t;
    opt.wire = test_wire();
    core::ExchangePlan plan(s.requests, opt);
    if (!faults.empty()) {
      InjectorGuard inj(faults);
      for (int round = 0; round < 3; ++round)
        EXPECT_EQ(plan.exchange(s.data), want) << "faulted, strat " << int(strat);
      EXPECT_GT(plan.stats().retransmits, 0u) << "fault spec never fired";
    } else {
      for (int round = 0; round < 3; ++round)
        EXPECT_EQ(plan.exchange(s.data), want) << "clean, strat " << int(strat);
      EXPECT_EQ(plan.stats().retransmits, 0u);
    }
  }
}

TEST(LoopbackTransport, LocalBackendDeliversBitIdentical) {
  core::LocalGroup group(1);
  auto t = group.endpoint(0);
  expect_loopback_identity(*t, "");
  expect_loopback_identity(*t, "seed=13,halo_corrupt=0.3,msg_drop=0.2");
}

TEST(LoopbackTransport, ShmBackendDeliversBitIdentical) {
  smp::ShmGroup group(1);
  auto t = group.endpoint(0);
  EXPECT_EQ(t->backend(), core::TransportBackend::Shm);
  expect_loopback_identity(*t, "");
  expect_loopback_identity(*t, "seed=13,halo_corrupt=0.3,msg_drop=0.2");
}

TEST(LoopbackTransport, TcpBackendDeliversBitIdentical) {
  smp::TcpGroup group(1);
  auto t = group.endpoint(0);
  EXPECT_EQ(t->backend(), core::TransportBackend::Tcp);
  expect_loopback_identity(*t, "");
  expect_loopback_identity(*t, "seed=13,halo_corrupt=0.3,msg_drop=0.2");
}

// Regression: two concurrent member threads in ONE process must agree on
// the per-round wire sequence. When exchange() drew it from the injector's
// process-global counter, each member claimed a different value, peers
// discarded each other's frames as stale, and the group deadlocked until
// the failure detector fired.
TEST(LoopbackTransport, ThreadMembersShareWireSequence) {
  const Scenario s = make_scenario(6, 18, 14, 21);
  const core::PartitionData want = expected(s);
  core::LocalGroup group(2);
  std::vector<int> codes(2, -1);
  std::vector<std::thread> members;
  for (int r = 0; r < 2; ++r)
    members.emplace_back([&, r] {
      try {
        auto t = group.endpoint(r);
        core::ExchangePlanOptions opt;
        opt.transport = t.get();
        opt.wire.deadline_ms = 200;
        core::ExchangePlan plan(s.requests, opt);
        for (int round = 0; round < 3; ++round)
          if (plan.exchange(s.data) != want) {
            codes[std::size_t(r)] = 2;
            return;
          }
        codes[std::size_t(r)] = 0;
      } catch (const std::exception&) {
        codes[std::size_t(r)] = 70;
      }
    });
  for (auto& th : members) th.join();
  EXPECT_EQ(codes[0], 0);
  EXPECT_EQ(codes[1], 0);
}

TEST(LoopbackTransport, ConnResetIsAbsorbedByReconnect) {
  smp::TcpGroup group(1);
  auto t = group.endpoint(0);
  expect_loopback_identity(*t, "seed=29,conn_reset=0.15");
  EXPECT_GT(t->counters().reconnects() + t->counters().timeouts(), 0u);
}

// --- The retransmit ledger over a real wire (test_comm_obs discipline) -----

std::uint64_t retransmit_spans(const std::vector<obs::PhaseEvent>& events) {
  std::uint64_t n = 0;
  for (const obs::PhaseEvent& e : events)
    if (e.phase == 'B' && e.name == "halo.xchg.retransmit") ++n;
  return n;
}

/// Every wire retransmission must show up identically in four ledgers: the
/// halo.xchg.retransmit span stream, the plan's ExchangeStats, the
/// resil.halo.retransmits counter, and the transport's own
/// resil.transport.retransmit counter — over genuine TCP bytes.
TEST(RetransmitAccounting, TcpWireSpansMatchStatsAndCounters) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "observability compiled out";
  const Scenario s = make_scenario(8, 20, 15, 11);
  const core::PartitionData want = expected(s);
  ObsGuard guard;
  resil::FaultInjector::global().configure(
      resil::parse_fault_spec("seed=13,halo_corrupt=0.3,msg_drop=0.3"));
  obs::reset_trace();
  obs::set_enabled(true);
  const std::uint64_t c0 = obs::counter("resil.halo.retransmits").value();
  const std::uint64_t t0 = obs::counter("resil.transport.retransmit").value();
  smp::TcpGroup group(1);
  auto t = group.endpoint(0);
  core::ExchangePlanOptions opt;
  opt.level = 2;
  opt.transport = t.get();
  opt.wire = test_wire();
  core::ExchangePlan plan(s.requests, opt);
  for (int round = 0; round < 3; ++round)
    EXPECT_EQ(plan.exchange(s.data), want);
  obs::set_enabled(false);
  const std::uint64_t counted =
      obs::counter("resil.halo.retransmits").value() - c0;
  const std::uint64_t transported =
      obs::counter("resil.transport.retransmit").value() - t0;
  const std::vector<obs::PhaseEvent> events = obs::phase_events_since();
  EXPECT_GT(plan.stats().retransmits, 0u) << "fault spec never fired";
  EXPECT_EQ(retransmit_spans(events), plan.stats().retransmits);
  EXPECT_EQ(counted, plan.stats().retransmits);
  EXPECT_EQ(transported, plan.stats().retransmits);
  EXPECT_EQ(t->counters().retransmits(), plan.stats().retransmits);
  const obs::CommReport cr = obs::build_comm_report(events);
  EXPECT_EQ(cr.retransmits, plan.stats().retransmits);
}

// --- Failure detection -----------------------------------------------------

TEST(FailureDetection, SilentPeerSurfacesAsTransportError) {
  // Two members, but member 1 never runs: every cross-member channel must
  // end in a typed TransportError after the bounded retransmit schedule —
  // never a hang.
  const Scenario s = make_scenario(4, 8, 6, 5);
  core::LocalGroup group(2);
  auto t = group.endpoint(0);
  core::ExchangePlanOptions opt;
  opt.transport = t.get();
  opt.wire.deadline_ms = 5;
  opt.wire.max_attempts = 2;
  opt.wire.backoff_base_ms = 1;
  opt.wire.backoff_max_ms = 2;
  core::ExchangePlan plan(s.requests, opt);
  try {
    plan.exchange(s.data);
    FAIL() << "expected TransportError";
  } catch (const core::TransportError& e) {
    EXPECT_EQ(e.peer(), 1);
    EXPECT_EQ(int(e.kind()), int(core::TransportError::Kind::PeerLost));
  }
  EXPECT_EQ(t->counters().peer_lost(), 1u);
  EXPECT_GT(t->counters().timeouts(), 0u);
}

TEST(FailureDetection, InjectedPeerHangThrowsOnLocalBackend) {
  const Scenario s = make_scenario(4, 8, 6, 5);
  core::LocalGroup group(1);
  auto t = group.endpoint(0);
  bool hook_fired = false;
  t->set_hang_hook([&] { hook_fired = true; });
  core::ExchangePlanOptions opt;
  opt.transport = t.get();
  opt.wire = test_wire();
  core::ExchangePlan plan(s.requests, opt);
  InjectorGuard inj("seed=3,peer_hang=1@1");
  EXPECT_THROW(plan.exchange(s.data), core::TransportError);
  EXPECT_TRUE(hook_fired);
  EXPECT_EQ(t->counters().peer_lost(), 1u);
}

// --- ProcessGroup: forked ranks, heartbeats, recovery ----------------------

/// Child body: the full replicated exchange protocol over the group wire,
/// verified against the expected values inside the child. Any mismatch or
/// exception turns into a nonzero exit the parent sees.
smp::ProcessGroup::Body exchange_body(int rounds) {
  return [rounds](int rank, core::Transport& t) {
    (void)rank;
    const Scenario s = make_scenario(6, 18, 14, 21);
    const core::PartitionData want = expected(s);
    core::ExchangePlanOptions opt;
    opt.transport = &t;
    opt.wire.deadline_ms = 200;
    opt.wire.max_attempts = 8;
    core::ExchangePlan plan(s.requests, opt);
    for (int round = 0; round < rounds; ++round)
      if (plan.exchange(s.data) != want) return 2;
    // Exit grace: a member leaving the instant its schedule completes can
    // strand a peer whose final Ack a conn_reset destroyed.
    plan.drain();
    return 0;
  };
}

TEST(ProcessGroup, ShmRanksExchangeBitIdentical) {
  smp::ProcessGroupOptions opts;
  opts.ranks = 3;
  opts.backend = smp::GroupBackend::Shm;
  opts.heartbeat_ms = 10;
  opts.stall_ms = 2000;
  opts.wall_timeout_ms = 60000;
  const smp::GroupResult res =
      smp::ProcessGroup::run(opts, exchange_body(4));
  EXPECT_TRUE(res.ok) << "first failing exit: " << res.first_failure_exit();
  EXPECT_FALSE(res.hung);
  for (const smp::MemberReport& m : res.members) {
    EXPECT_TRUE(m.exited);
    EXPECT_EQ(m.exit_code, 0);
    EXPECT_GT(m.heartbeats, 0u);
  }
}

TEST(ProcessGroup, TcpRanksExchangeBitIdentical) {
  smp::ProcessGroupOptions opts;
  opts.ranks = 2;
  opts.backend = smp::GroupBackend::Tcp;
  opts.heartbeat_ms = 10;
  opts.stall_ms = 2000;
  opts.wall_timeout_ms = 60000;
  const smp::GroupResult res =
      smp::ProcessGroup::run(opts, exchange_body(4));
  EXPECT_TRUE(res.ok) << "first failing exit: " << res.first_failure_exit();
  EXPECT_FALSE(res.hung);
  EXPECT_GT(res.total.heartbeats(), 0u);
}

TEST(ProcessGroup, InjectedDropsAreAbsorbedAcrossProcesses) {
  InjectorGuard inj("seed=13,msg_drop=0.2,halo_corrupt=0.2");  // inherited
  smp::ProcessGroupOptions opts;
  opts.ranks = 2;
  opts.backend = smp::GroupBackend::Shm;
  opts.heartbeat_ms = 10;
  opts.stall_ms = 3000;
  opts.wall_timeout_ms = 60000;
  const smp::GroupResult res =
      smp::ProcessGroup::run(opts, exchange_body(3));
  EXPECT_TRUE(res.ok) << "first failing exit: " << res.first_failure_exit();
  // Somebody retransmitted (children mirror counters into the control
  // block, so the parent can see it even though they are processes).
  EXPECT_GT(res.total.retransmits() + res.total.timeouts(), 0u);
}

TEST(ProcessGroup, ConnResetsAreSurvivedAcrossTcpProcesses) {
  // Injected resets tear the shared bidirectional link down with frames
  // in flight, in both directions, repeatedly. The ranks must reconnect,
  // retransmit, and finish with the exact expected halo — in particular
  // an Ack destroyed by a reset must not let the peer's run-ahead Data be
  // acknowledged-and-discarded by await_ack (the deadlock this test
  // pins down).
  InjectorGuard inj("seed=29,conn_reset=0.3");  // inherited by children
  smp::ProcessGroupOptions opts;
  opts.ranks = 2;
  opts.backend = smp::GroupBackend::Tcp;
  opts.heartbeat_ms = 10;
  opts.stall_ms = 5000;
  opts.wall_timeout_ms = 120000;
  const smp::GroupResult res = smp::ProcessGroup::run(opts, exchange_body(4));
  EXPECT_TRUE(res.ok) << "first failing exit: " << res.first_failure_exit();
  EXPECT_FALSE(res.hung);
  EXPECT_GT(res.total.reconnects(), 0u);
  EXPECT_GT(res.total.retransmits(), 0u);
}

TEST(ProcessGroup, DeadRankIsRelaunchedAndRecovers) {
  // Round 1: rank 1 dies with a nonzero exit before touching the wire
  // (flagged through the filesystem so round 2 behaves). The recovery
  // driver relaunches the group, which then completes cleanly.
  const std::string flag =
      "test_transport_deadrank_" + std::to_string(::getpid()) + ".flag";
  std::remove(flag.c_str());
  smp::ProcessGroupOptions opts;
  opts.ranks = 2;
  opts.backend = smp::GroupBackend::Shm;
  opts.heartbeat_ms = 10;
  opts.stall_ms = 1000;
  opts.wall_timeout_ms = 60000;
  const auto body = [flag](int rank, core::Transport& t) {
    if (rank == 1) {
      if (FILE* f = std::fopen(flag.c_str(), "r"); f != nullptr) {
        std::fclose(f);
      } else {
        f = std::fopen(flag.c_str(), "w");
        if (f != nullptr) std::fclose(f);
        return 9;  // first life: die before serving peers
      }
    }
    return exchange_body(2)(rank, t);
  };
  int relaunches = 0;
  const smp::GroupResult res =
      smp::ProcessGroup::run_recovering(opts, body, 2, &relaunches);
  std::remove(flag.c_str());
  EXPECT_TRUE(res.ok) << "first failing exit: " << res.first_failure_exit();
  EXPECT_EQ(relaunches, 1);
}

TEST(ProcessGroup, HungRankIsDetectedKilledAndRecovered) {
  // peer_hang at rate 1: every rank goes silent at its first wire
  // operation — heartbeats included. The watchdog must declare the group
  // hung (not wait forever), kill it, strip peer_hang, and relaunch into
  // a clean run.
  InjectorGuard inj("seed=3,peer_hang=1@1");
  smp::ProcessGroupOptions opts;
  opts.ranks = 2;
  opts.backend = smp::GroupBackend::Shm;
  opts.heartbeat_ms = 10;
  opts.stall_ms = 400;
  opts.wall_timeout_ms = 60000;
  int relaunches = 0;
  const smp::GroupResult res =
      smp::ProcessGroup::run_recovering(opts, exchange_body(2), 2,
                                        &relaunches);
  EXPECT_TRUE(res.ok) << "first failing exit: " << res.first_failure_exit();
  EXPECT_EQ(relaunches, 1);
  EXPECT_GT(res.total.heartbeats(), 0u);
}

}  // namespace
}  // namespace columbia
