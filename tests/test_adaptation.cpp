#include <gtest/gtest.h>

#include "cart3d/solver.hpp"
#include "cartesian/adaptation.hpp"
#include "geom/components.hpp"

namespace columbia::cartesian {
namespace {

geom::Aabb unit_domain() {
  geom::Aabb d;
  d.expand({-1, -1, -1});
  d.expand({1, 1, 1});
  return d;
}

TEST(Adaptation, NoFlagsIsIdentityOnUniformMesh) {
  const CartMesh m = build_uniform_mesh(unit_domain(), 8);
  std::vector<bool> flags(std::size_t(m.num_cells()), false);
  const CartMesh r = refine_cells(m, nullptr, flags);
  EXPECT_EQ(r.num_cells(), m.num_cells());
  EXPECT_NEAR(r.total_fluid_volume(), m.total_fluid_volume(), 1e-12);
}

TEST(Adaptation, FlaggedCellsSplitIntoEight) {
  const CartMesh m = build_uniform_mesh(unit_domain(), 4);
  std::vector<bool> flags(64, false);
  flags[10] = true;
  const CartMesh r = refine_cells(m, nullptr, flags);
  // One cell replaced by 8 children; 2:1 balance may split neighbors of
  // neighbors only when levels differ by 2+ (not here).
  EXPECT_EQ(r.num_cells(), 64 - 1 + 8);
  EXPECT_NEAR(r.total_fluid_volume(), 8.0, 1e-12);
}

TEST(Adaptation, DeepensMaxLevelWhenNeeded) {
  const CartMesh m = build_uniform_mesh(unit_domain(), 4);  // max_level 0
  std::vector<bool> flags(64, true);
  const CartMesh r = refine_cells(m, nullptr, flags);
  EXPECT_EQ(r.max_level, 1);
  EXPECT_EQ(r.num_cells(), 64 * 8);
  EXPECT_NEAR(r.total_fluid_volume(), 8.0, 1e-12);
}

TEST(Adaptation, MaintainsTwoToOneBalance) {
  // Flag a single cell twice in a row: the second refinement must force
  // neighbor splits to keep the 2:1 rule.
  CartMesh m = build_uniform_mesh(unit_domain(), 4);
  for (int round = 0; round < 2; ++round) {
    std::vector<bool> flags(std::size_t(m.num_cells()), false);
    // Flag the cell nearest the domain center.
    index_t best = 0;
    real_t best_d = 1e30;
    for (index_t i = 0; i < m.num_cells(); ++i) {
      const real_t d = norm(m.cell_center(m.cells[std::size_t(i)]));
      if (d < best_d) {
        best_d = d;
        best = i;
      }
    }
    flags[std::size_t(best)] = true;
    m = refine_cells(m, nullptr, flags);
  }
  for (const CartFace& f : m.faces) {
    if (f.right == kInvalidIndex) continue;
    EXPECT_LE(std::abs(int(m.cells[std::size_t(f.left)].level) -
                       int(m.cells[std::size_t(f.right)].level)),
              1);
  }
}

TEST(Adaptation, ReclassifiesCutCellsAgainstSurface) {
  const auto sphere = geom::make_sphere({0, 0, 0}, 0.4, 16, 32);
  CartMeshOptions opt;
  opt.base_n = 8;
  opt.max_level = 1;
  const CartMesh m = build_cart_mesh(sphere, unit_domain(), opt);
  // Refine all cut cells.
  std::vector<bool> flags(std::size_t(m.num_cells()), false);
  for (index_t i = 0; i < m.num_cells(); ++i)
    flags[std::size_t(i)] = m.cells[std::size_t(i)].cut;
  const CartMesh r = refine_cells(m, &sphere, flags);
  EXPECT_GT(r.num_cells(), m.num_cells());
  EXPECT_GT(r.num_cut_cells(), m.num_cut_cells());
  // The embedded area is still ~the sphere area and closes.
  geom::Vec3 sum{};
  real_t total = 0;
  for (const CartCell& c : r.cells) {
    sum += c.wall_area;
    total += norm(c.wall_area);
  }
  const real_t sphere_area = 4 * 3.14159265 * 0.4 * 0.4;
  EXPECT_NEAR(total, sphere_area, 0.25 * sphere_area);
  EXPECT_LT(norm(sum), 0.05 * sphere_area);
}

TEST(Adaptation, FlagByDensityJumpPicksJumpCells) {
  const CartMesh m = build_uniform_mesh(unit_domain(), 8);
  // Synthetic solution: density jump at x = 0.
  std::vector<euler::Cons> u(std::size_t(m.num_cells()));
  for (index_t i = 0; i < m.num_cells(); ++i) {
    const real_t rho = m.cell_center(m.cells[std::size_t(i)]).x < 0 ? 1.0 : 2.0;
    u[std::size_t(i)] = euler::to_conservative({rho, {0, 0, 0}, 1.0});
  }
  const auto flags = flag_by_density_jump(m, u, 0.3);
  // Only the two cell layers adjacent to x=0 see a jump.
  for (index_t i = 0; i < m.num_cells(); ++i) {
    const real_t x = m.cell_center(m.cells[std::size_t(i)]).x;
    if (flags[std::size_t(i)]) {
      EXPECT_LT(std::abs(x), 0.26);
    }
  }
  index_t n_flagged = 0;
  for (bool f : flags)
    if (f) ++n_flagged;
  EXPECT_EQ(n_flagged, 2 * 8 * 8);  // two layers of 64 cells
}

TEST(Adaptation, SolverRunsOnAdaptedMesh) {
  // Full loop: solve, flag, adapt, solve again (the Cart3D workflow).
  const auto sphere = geom::make_sphere({0, 0, 0}, 0.4, 16, 32);
  geom::Aabb dom;
  dom.expand({-1.5, -1.5, -1.5});
  dom.expand({1.5, 1.5, 1.5});
  CartMeshOptions opt;
  opt.base_n = 8;
  opt.max_level = 1;
  const CartMesh m = build_cart_mesh(sphere, dom, opt);

  euler::FlowConditions fc;
  fc.mach = 0.4;
  cart3d::SolverOptions sopt;
  sopt.mg_levels = 2;
  cart3d::Cart3DSolver coarse_solver(m, fc, sopt);
  coarse_solver.solve(40, 2);

  const auto flags = flag_by_density_jump(
      m, coarse_solver.solution(), 0.15);
  const CartMesh fine = refine_cells(m, &sphere, flags);
  EXPECT_GT(fine.num_cells(), m.num_cells());

  cart3d::Cart3DSolver fine_solver(fine, fc, sopt);
  const auto h = fine_solver.solve(30, 2);
  EXPECT_LT(h.back(), h.front());
}

}  // namespace
}  // namespace columbia::cartesian
