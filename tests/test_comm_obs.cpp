// Comm-observatory tests: the wait-state analyzer pinned to the committed
// fixture traces (every expectation below is hand-computed from the span
// timestamps in tests/data/comm_trace_*.json), the `columbia_report comm`
// subcommand over the same fixtures, and retransmit accounting — the
// halo.xchg.retransmit span count must equal the transport's own ledger
// and the resil counter on both the plan and legacy paths, at 1/2/4
// threads per process, with fault injection armed.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <iostream>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cart3d/partitioned.hpp"
#include "cartesian/cart_mesh.hpp"
#include "core/exchange_plan.hpp"
#include "geom/components.hpp"
#include "mesh/builders.hpp"
#include "nsu3d/partitioned.hpp"
#include "obs/comm_report.hpp"
#include "obs/json_parse.hpp"
#include "obs/obs.hpp"
#include "obs/report_cli.hpp"
#include "resil/faults.hpp"
#include "smp/hybrid.hpp"
#include "support/random.hpp"

namespace columbia {
namespace {

std::string fixture(const std::string& name) {
  return std::string(COLUMBIA_TEST_DATA_DIR) + "/" + name;
}

/// Loads a Chrome-trace fixture into PhaseEvents the same way the CLI's
/// trace ingest does (name/ph/ts/tid plus the halo.xchg args).
std::vector<obs::PhaseEvent> load_trace(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is.good()) << path;
  std::ostringstream ss;
  ss << is.rdbuf();
  obs::JsonValue doc;
  EXPECT_TRUE(obs::parse_json(ss.str(), doc)) << path;
  std::vector<obs::PhaseEvent> events;
  const obs::JsonValue* evs = doc.find("traceEvents");
  if (evs == nullptr) return events;
  for (const obs::JsonValue& e : evs->items()) {
    const std::string ph = e.string_or("ph", "");
    if (ph != "B" && ph != "E") continue;
    obs::PhaseEvent pe;
    pe.name = e.string_or("name", "");
    pe.phase = ph[0];
    pe.ts_us = e.number_or("ts", 0);
    pe.tid = int(e.number_or("tid", 0));
    if (const obs::JsonValue* args = e.find("args");
        args != nullptr && args->is_object()) {
      pe.level = std::int64_t(args->number_or("level", -1));
      pe.rank = std::int64_t(args->number_or("rank", -1));
      pe.nbr = std::int64_t(args->number_or("nbr", -1));
      pe.strat = std::int64_t(args->number_or("strat", -1));
      pe.bytes = std::int64_t(args->number_or("bytes", -1));
    }
    events.push_back(std::move(pe));
  }
  return events;
}

struct CliResult {
  int exit_code;
  std::string out, err;
};

CliResult run_cli(std::vector<std::string> args) {
  std::ostringstream out, err;
  const int code = obs::report::run(args, out, err);
  return {code, out.str(), err.str()};
}

constexpr double kTol = 1e-12;

// --- Analyzer math vs hand-computed fixtures ------------------------------

// comm_trace_small.json: 2 ranks, thread-to-thread. Level 0 is a clean
// exchange where rank 0 waits 100 ms on rank 1's slow 310 ms post (late
// sender) while rank 1's 5 ms wait follows a message that aged 90 ms
// (late receiver). Level 1 replays the same pair with one faulted attempt:
// rank 0 posts twice (retransmit marker between), rank 1 waits twice.
TEST(CommReport, SmallFixtureWaitMatrixExact) {
  const obs::CommReport r = obs::build_comm_report(
      load_trace(fixture("comm_trace_small.json")));
  ASSERT_FALSE(r.empty());
  EXPECT_EQ(r.ranks, 2);
  EXPECT_EQ(r.retransmits, 1u);
  EXPECT_NEAR(r.wait_s, 0.105 + 0.00116, kTol);
  EXPECT_NEAR(r.late_sender_s, 0.09 + 0.00109, kTol);
  EXPECT_NEAR(r.late_receiver_s, 0.09 + 0.0011, kTol);

  ASSERT_EQ(r.groups.size(), 2u);
  const obs::CommGroup& g0 = r.groups[0];
  EXPECT_EQ(g0.level, 0);
  EXPECT_EQ(g0.strat, 0);
  EXPECT_EQ(g0.ranks, 2);
  EXPECT_EQ(g0.messages, 2u);
  EXPECT_EQ(g0.bytes, 1600u);
  EXPECT_EQ(g0.retransmits, 0u);
  EXPECT_NEAR(g0.pack_s, 0.020, kTol);
  EXPECT_NEAR(g0.post_s, 0.330, kTol);
  EXPECT_NEAR(g0.wait_s, 0.105, kTol);
  EXPECT_NEAR(g0.unpack_s, 0.020, kTol);
  ASSERT_EQ(g0.cells.size(), 2u);
  // Cell (rank 0 <- 1): the receiver blocked 100 ms, 90 ms of which ran
  // concurrently with the sender's still-open post -> late sender.
  EXPECT_EQ(g0.cells[0].rank, 0);
  EXPECT_EQ(g0.cells[0].nbr, 1);
  EXPECT_EQ(g0.cells[0].messages, 1u);
  EXPECT_EQ(g0.cells[0].bytes, 800u);
  EXPECT_NEAR(g0.cells[0].wait_s, 0.100, kTol);
  EXPECT_NEAR(g0.cells[0].late_sender_s, 0.090, kTol);
  EXPECT_NEAR(g0.cells[0].late_receiver_s, 0.0, kTol);
  // Cell (rank 1 <- 0): the message was posted 90 ms before the receiver
  // asked for it -> late receiver.
  EXPECT_EQ(g0.cells[1].rank, 1);
  EXPECT_EQ(g0.cells[1].nbr, 0);
  EXPECT_NEAR(g0.cells[1].wait_s, 0.005, kTol);
  EXPECT_NEAR(g0.cells[1].late_sender_s, 0.0, kTol);
  EXPECT_NEAR(g0.cells[1].late_receiver_s, 0.090, kTol);

  const obs::CommGroup& g1 = r.groups[1];
  EXPECT_EQ(g1.level, 1);
  EXPECT_EQ(g1.messages, 3u);  // 2 attempts rank0->1 + 1 clean rank1->0
  EXPECT_EQ(g1.bytes, 240u);
  EXPECT_EQ(g1.retransmits, 1u);
  EXPECT_NEAR(g1.wait_s, 0.00116, kTol);
  ASSERT_EQ(g1.cells.size(), 2u);
  // k-th wait matches k-th post per directed pair, so the faulted first
  // attempt (1010 us wait vs the post that ends mid-wait: 1000 us late
  // sender) and the clean retry (90 us late sender) both line up.
  EXPECT_EQ(g1.cells[1].rank, 1);
  EXPECT_EQ(g1.cells[1].messages, 2u);
  EXPECT_NEAR(g1.cells[1].wait_s, 0.00111, kTol);
  EXPECT_NEAR(g1.cells[1].late_sender_s, 0.00109, kTol);
  EXPECT_EQ(g1.cells[0].rank, 0);
  EXPECT_NEAR(g1.cells[0].wait_s, 0.00005, kTol);
  EXPECT_NEAR(g1.cells[0].late_receiver_s, 0.0011, kTol);
}

// Critical path, level 0: rank 1's chain pack(10ms) -> post(310ms) feeds
// rank 0's wait (100ms exclusive) through the post->wait edge, then rank
// 0's unpack (10ms): 10+310+100+10 = 430 ms. Level 1: rank 1's chain
// pack(100us) -> post(100us) -> wait1(1010us) -> wait2(100us) ->
// unpack(100us) = 1410 us.
TEST(CommReport, SmallFixtureCriticalPathExact) {
  const obs::CommReport r = obs::build_comm_report(
      load_trace(fixture("comm_trace_small.json")));
  ASSERT_EQ(r.groups.size(), 2u);
  EXPECT_NEAR(r.groups[0].critical_path_s, 0.430, kTol);
  EXPECT_NEAR(r.groups[1].critical_path_s, 0.00141, kTol);
}

// Overlap headroom: level 0 has 800 ms of level-tagged interior compute
// against 105 ms of wait -> fully coverable, no advice. Level 1 has 800 us
// of interior against 1160 us of wait (headroom 0.6896...) and per-rank
// interior per exchange (800/(2*2) = 200 us) below per-rank comm per
// exchange (1860/(2*2) = 465 us) -> the Fig. 19 agglomeration regime.
TEST(CommReport, SmallFixtureOverlapHeadroomExact) {
  const obs::CommReport r = obs::build_comm_report(
      load_trace(fixture("comm_trace_small.json")));
  ASSERT_EQ(r.levels.size(), 2u);
  const obs::LevelOverlap& l0 = r.levels[0];
  EXPECT_EQ(l0.level, 0);
  EXPECT_EQ(l0.ranks, 2);
  EXPECT_EQ(l0.exchanges, 1u);
  EXPECT_NEAR(l0.interior_s, 0.800, kTol);
  EXPECT_NEAR(l0.comm_s, 0.475, kTol);
  EXPECT_NEAR(l0.wait_s, 0.105, kTol);
  EXPECT_NEAR(l0.coverable_s, 0.105, kTol);
  EXPECT_NEAR(l0.headroom, 1.0, kTol);
  EXPECT_FALSE(l0.agglomerate);

  const obs::LevelOverlap& l1 = r.levels[1];
  EXPECT_EQ(l1.level, 1);
  EXPECT_EQ(l1.exchanges, 2u);  // two matched messages in one cell
  EXPECT_NEAR(l1.interior_s, 0.0008, kTol);
  EXPECT_NEAR(l1.comm_s, 0.00186, kTol);
  EXPECT_NEAR(l1.wait_s, 0.00116, kTol);
  EXPECT_NEAR(l1.coverable_s, 0.0008, kTol);
  EXPECT_NEAR(l1.headroom, 0.0008 / 0.00116, kTol);
  EXPECT_NEAR(l1.comm_per_exchange_s, 0.00186 / 4, kTol);
  EXPECT_NEAR(l1.compute_per_exchange_s, 0.0008 / 4, kTol);
  EXPECT_TRUE(l1.agglomerate);
}

// comm_trace_master.json: master strategy, waits nested inside unpack.
// Exclusive time keeps the nested waits out of the unpack totals: rank 0
// unpack 700 us inclusive - 500 us wait = 200 us, rank 1 400 - 100 = 300.
// Critical path is rank 1's post (cp 400 us) feeding rank 0's 500 us
// wait: 900 us.
TEST(CommReport, MasterFixtureNestedWaitsExact) {
  const obs::CommReport r = obs::build_comm_report(
      load_trace(fixture("comm_trace_master.json")));
  ASSERT_EQ(r.groups.size(), 1u);
  const obs::CommGroup& g = r.groups[0];
  EXPECT_EQ(g.level, 0);
  EXPECT_EQ(g.strat, 1);
  EXPECT_EQ(g.ranks, 2);
  EXPECT_EQ(g.messages, 2u);
  EXPECT_EQ(g.bytes, 3200u);
  EXPECT_NEAR(g.wait_s, 600e-6, kTol);
  EXPECT_NEAR(g.unpack_s, 500e-6, kTol);
  EXPECT_NEAR(g.critical_path_s, 900e-6, kTol);
  double ls = 0, lr = 0;
  for (const obs::WaitCell& c : g.cells) {
    ls += c.late_sender_s;
    lr += c.late_receiver_s;
  }
  EXPECT_NEAR(ls, 50e-6, kTol);
  EXPECT_NEAR(lr, 350e-6, kTol);
  // No level-tagged interior compute in this fixture: nothing coverable,
  // and comm per exchange dominates -> agglomeration advice fires.
  ASSERT_EQ(r.levels.size(), 1u);
  EXPECT_NEAR(r.levels[0].headroom, 0.0, kTol);
  EXPECT_TRUE(r.levels[0].agglomerate);
}

// --- The columbia_report comm subcommand over the same fixtures -----------

TEST(CommCli, SingleTraceReportsMatrixRollupAndHeadroom) {
  const CliResult r = run_cli({"comm", fixture("comm_trace_small.json")});
  EXPECT_EQ(r.exit_code, 0) << r.err;
  // Provenance header, then the three observatory tables.
  EXPECT_NE(r.out.find("columbia_report "), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("comm observatory"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("wait matrix"), std::string::npos);
  EXPECT_NE(r.out.find("strategy rollup"), std::string::npos);
  EXPECT_NE(r.out.find("overlap headroom"), std::string::npos);
  // Hand-computed numbers surface in the tables: level 0 wait 100.000 ms
  // with 90.000 ms late-send on the (0 <- 1) cell; level 1 critical path
  // 1.410 ms; level 1 flagged for agglomeration, level 0 not.
  EXPECT_NE(r.out.find("100.000"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("90.000"), std::string::npos);
  EXPECT_NE(r.out.find("430.000"), std::string::npos);
  EXPECT_NE(r.out.find("1.410"), std::string::npos);
  EXPECT_NE(r.out.find("agglomerate"), std::string::npos);
  EXPECT_NE(r.out.find("retransmits"), std::string::npos);
}

TEST(CommCli, MultiTraceComparesStrategies) {
  const CliResult r = run_cli({"comm", fixture("comm_trace_small.json"),
                               fixture("comm_trace_master.json")});
  EXPECT_EQ(r.exit_code, 0) << r.err;
  EXPECT_NE(r.out.find("strategy comparison"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("t2t"), std::string::npos);
  EXPECT_NE(r.out.find("master"), std::string::npos);
}

TEST(CommCli, RejectsNonTraceDocuments) {
  const CliResult r =
      run_cli({"comm", fixture("bench_kernels_base.json")});
  EXPECT_NE(r.exit_code, 0);
  EXPECT_NE(r.err.find("comm subcommand"), std::string::npos) << r.err;
}

// --- Retransmit accounting on the live transports -------------------------

/// Restores observability-off state when a test exits.
struct ObsGuard {
  ~ObsGuard() {
    obs::set_enabled(false);
    obs::reset_trace();
    resil::FaultInjector::global().reset();
  }
};

struct Scenario {
  core::PartitionData data;
  core::RequestLists requests;
};

Scenario make_scenario(index_t nparts, index_t items_per_part,
                       index_t requests_per_part, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  Scenario s;
  s.data.resize(std::size_t(nparts));
  for (auto& d : s.data) {
    d.resize(std::size_t(items_per_part));
    for (auto& v : d) v = rng.uniform(-10, 10);
  }
  s.requests.resize(std::size_t(nparts));
  for (index_t p = 0; p < nparts; ++p)
    for (index_t k = 0; k < requests_per_part; ++k) {
      core::HaloRequest r;
      r.from_partition = index_t(rng.below(std::uint64_t(nparts)));
      r.item = index_t(rng.below(std::uint64_t(items_per_part)));
      s.requests[std::size_t(p)].push_back(r);
    }
  return s;
}

core::PartitionData expected(const Scenario& s) {
  core::PartitionData out(s.data.size(), std::vector<real_t>{});
  for (std::size_t p = 0; p < s.data.size(); ++p)
    for (const core::HaloRequest& r : s.requests[p])
      out[p].push_back(
          s.data[std::size_t(r.from_partition)][std::size_t(r.item)]);
  return out;
}

std::uint64_t retransmit_spans(const std::vector<obs::PhaseEvent>& events) {
  std::uint64_t n = 0;
  for (const obs::PhaseEvent& e : events)
    if (e.phase == 'B' && e.name == "halo.xchg.retransmit") ++n;
  return n;
}

// Every faulted attempt must show up identically in three ledgers: the
// halo.xchg.retransmit span stream, the plan's ExchangeStats, and the
// resil.halo.retransmits counter.
TEST(RetransmitAccounting, PlanSpansMatchStatsAndCounter) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "observability compiled out";
  const Scenario s = make_scenario(8, 20, 15, 11);
  const core::PartitionData want = expected(s);
  struct Config {
    core::ExchangeStrategy strategy;
    int tpp;
  };
  const Config configs[] = {{core::ExchangeStrategy::ThreadToThread, 1},
                            {core::ExchangeStrategy::MasterThread, 2},
                            {core::ExchangeStrategy::MasterThread, 4}};
  for (const Config& cfg : configs) {
    ObsGuard guard;
    resil::FaultInjector::global().configure(
        resil::parse_fault_spec("seed=13,halo_corrupt=0.3,halo_drop=0.3"));
    obs::reset_trace();
    obs::set_enabled(true);
    const std::uint64_t c0 = obs::counter("resil.halo.retransmits").value();
    core::ExchangePlan plan(s.requests, {cfg.strategy, cfg.tpp, /*level=*/2});
    for (int round = 0; round < 3; ++round)
      EXPECT_EQ(plan.exchange(s.data), want) << "tpp " << cfg.tpp;
    obs::set_enabled(false);
    const std::uint64_t counted =
        obs::counter("resil.halo.retransmits").value() - c0;
    const std::vector<obs::PhaseEvent> events = obs::phase_events_since();
    EXPECT_GT(plan.stats().retransmits, 0u) << "fault spec never fired";
    EXPECT_EQ(retransmit_spans(events), plan.stats().retransmits);
    EXPECT_EQ(counted, plan.stats().retransmits);
    // The analyzer sees the same count, attributed to the plan's level
    // and strategy.
    const obs::CommReport cr = obs::build_comm_report(events);
    EXPECT_EQ(cr.retransmits, plan.stats().retransmits);
    for (const obs::CommGroup& g : cr.groups) {
      EXPECT_EQ(g.level, 2);
      EXPECT_EQ(g.strat, core::strategy_id(cfg.strategy));
    }
  }
}

// Same three-way agreement on the legacy per-call transports, which drive
// real OS threads through smp::Runtime (1, 2, and 4 partitions per rank).
TEST(RetransmitAccounting, HybridSpansMatchCounter) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "observability compiled out";
  const Scenario s = make_scenario(8, 16, 12, 17);
  const core::PartitionData want = expected(s);
  for (int tpp : {1, 2, 4}) {
    ObsGuard guard;
    resil::FaultInjector::global().configure(
        resil::parse_fault_spec("seed=19,halo_corrupt=0.4,halo_drop=0.2"));
    obs::reset_trace();
    obs::set_enabled(true);
    const std::uint64_t c0 = obs::counter("resil.halo.retransmits").value();
    smp::Runtime rt(8 / tpp);
    // Several rounds: the 2-process master layout moves only two messages
    // per exchange, so a single round can dodge the fault sites entirely.
    for (int round = 0; round < 6; ++round) {
      const core::PartitionData got =
          tpp == 1 ? smp::exchange_thread_to_thread(rt, s.data, s.requests,
                                                    /*level=*/0)
                   : smp::exchange_master_thread(rt, s.data, s.requests, tpp,
                                                 /*level=*/0);
      EXPECT_EQ(got, want) << "tpp " << tpp << " round " << round;
    }
    obs::set_enabled(false);
    const std::uint64_t counted =
        obs::counter("resil.halo.retransmits").value() - c0;
    const std::vector<obs::PhaseEvent> events = obs::phase_events_since();
    EXPECT_GT(counted, 0u) << "fault spec never fired";
    EXPECT_EQ(retransmit_spans(events), counted) << "tpp " << tpp;
    EXPECT_EQ(obs::build_comm_report(events).retransmits, counted);
  }
}

// --- End to end: both partitioned drivers under COLUMBIA_REPORT ----------

/// Captures std::cerr (where SolveReportScope prints) for one scope.
struct CerrCapture {
  std::ostringstream captured;
  std::streambuf* old = std::cerr.rdbuf(captured.rdbuf());
  ~CerrCapture() { std::cerr.rdbuf(old); }
  std::string str() const { return captured.str(); }
};

// A real NSU3D partitioned residual and a real Cart3D one, each inside a
// SolveReportScope with a JSONL sink: the end-of-solve summary must print
// the wait matrix / strategy rollup / overlap headroom tables, and every
// appended JSONL record must parse and carry the comm_xchg object with
// the exchanges attributed to the level the plan was tagged with.
TEST(CommEndToEnd, PartitionedDriversReportWaitAndOverlap) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "observability compiled out";
  const std::string jsonl = testing::TempDir() + "comm_e2e.jsonl";
  std::remove(jsonl.c_str());

  {  // NSU3D wing decomposition, thread-to-thread, tagged level 0.
    mesh::WingMeshSpec spec;
    spec.n_wrap = 24;
    spec.n_span = 3;
    spec.n_normal = 10;
    spec.wall_spacing = 1e-4;
    const auto m = mesh::make_wing_mesh(spec);
    nsu3d::LevelOptions lo;
    lo.num_levels = 1;
    const auto levels = nsu3d::build_levels(m, lo);
    const nsu3d::Level& lvl = levels[0];
    euler::FlowConditions fc;
    fc.mach = 0.6;
    const euler::Prim inf = fc.freestream();
    std::vector<nsu3d::State> u(std::size_t(lvl.num_nodes));
    for (index_t v = 0; v < lvl.num_nodes; ++v) {
      const auto c5 = euler::to_conservative(inf);
      for (int c = 0; c < 5; ++c)
        u[std::size_t(v)][std::size_t(c)] = c5[std::size_t(c)];
      u[std::size_t(v)][5] = 1e-5 * inf.rho;
    }
    const auto plan = nsu3d::build_partition_plan(levels, 4);

    CerrCapture cerr_log;
    obs::set_report(true, jsonl);
    {
      obs::SolveReportScope scope("nsu3d.partitioned");
      nsu3d::parallel_residual(lvl, u, inf, plan.levels[0].part, 4,
                               {core::ExchangeStrategy::ThreadToThread, 1, 0});
    }
    obs::set_report(false);
    const std::string log = cerr_log.str();
    EXPECT_NE(log.find("comm observatory: wait matrix"), std::string::npos)
        << log;
    EXPECT_NE(log.find("strategy rollup"), std::string::npos);
    EXPECT_NE(log.find("overlap headroom"), std::string::npos);
    EXPECT_NE(log.find("t2t"), std::string::npos);
  }

  {  // Cart3D SFC decomposition, master strategy, tagged level 0.
    const auto sphere = geom::make_sphere({0, 0, 0}, 0.4, 12, 24);
    geom::Aabb dom;
    dom.expand({-1.5, -1.5, -1.5});
    dom.expand({1.5, 1.5, 1.5});
    cartesian::CartMeshOptions mopt;
    mopt.base_n = 8;
    mopt.max_level = 1;
    const cartesian::CartMesh m = cartesian::build_cart_mesh(sphere, dom, mopt);
    euler::FlowConditions fc;
    fc.mach = 0.5;
    const euler::Prim inf = fc.freestream();
    std::vector<euler::Cons> u(m.cells.size(), euler::to_conservative(inf));
    const auto part = cartesian::partition_cells(m, 4);

    CerrCapture cerr_log;
    obs::set_report(true, jsonl);
    {
      obs::SolveReportScope scope("cart3d.partitioned");
      cart3d::parallel_residual(m, u, inf, part, 4, euler::FluxScheme::Roe,
                                {core::ExchangeStrategy::MasterThread, 2, 0});
    }
    obs::set_report(false);
    const std::string log = cerr_log.str();
    EXPECT_NE(log.find("comm observatory: wait matrix"), std::string::npos)
        << log;
    EXPECT_NE(log.find("master"), std::string::npos);
  }

  // The JSONL sink now holds one record per scope; each must parse and
  // carry the comm observatory object attributed to level 0.
  std::ifstream is(jsonl);
  ASSERT_TRUE(is.good()) << jsonl;
  std::string line;
  int records = 0;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    ++records;
    obs::JsonValue doc;
    ASSERT_TRUE(obs::parse_json(line, doc)) << line;
    const obs::JsonValue* comm = doc.find("comm_xchg");
    ASSERT_NE(comm, nullptr) << line;
    const obs::JsonValue* groups = comm->find("groups");
    ASSERT_NE(groups, nullptr);
    ASSERT_FALSE(groups->items().empty());
    EXPECT_EQ(std::int64_t(groups->items()[0].number_or("level", -1)), 0);
    const obs::JsonValue* lvls = comm->find("levels");
    ASSERT_NE(lvls, nullptr);
    ASSERT_FALSE(lvls->items().empty());
    EXPECT_GE(lvls->items()[0].number_or("headroom", -1), 0.0);
  }
  EXPECT_EQ(records, 2);
  std::remove(jsonl.c_str());
}

}  // namespace
}  // namespace columbia
