#include <gtest/gtest.h>

#include <atomic>

#include "smp/runtime.hpp"

namespace columbia::smp {
namespace {

TEST(Runtime, RunsAllRanks) {
  Runtime rt(8);
  std::atomic<int> count{0};
  rt.run([&](Comm& c) {
    EXPECT_GE(c.rank(), 0);
    EXPECT_LT(c.rank(), 8);
    EXPECT_EQ(c.size(), 8);
    ++count;
  });
  EXPECT_EQ(count.load(), 8);
}

TEST(Runtime, PointToPointRoundTrip) {
  Runtime rt(2);
  rt.run([&](Comm& c) {
    if (c.rank() == 0) {
      std::vector<real_t> data{1.5, 2.5, 3.5};
      c.send(1, 7, data);
      const auto back = c.recv(1, 8);
      ASSERT_EQ(back.size(), 3u);
      EXPECT_DOUBLE_EQ(back[0], 3.0);
    } else {
      auto msg = c.recv(0, 7);
      ASSERT_EQ(msg.size(), 3u);
      EXPECT_DOUBLE_EQ(msg[1], 2.5);
      for (auto& v : msg) v *= 2;
      c.send(0, 8, msg);
    }
  });
}

TEST(Runtime, TagsAreMatchedNotOrdered) {
  Runtime rt(2);
  rt.run([&](Comm& c) {
    if (c.rank() == 0) {
      c.send(1, 100, std::vector<real_t>{1});
      c.send(1, 200, std::vector<real_t>{2});
    } else {
      // Receive in reverse tag order: matching is by (from, tag).
      const auto b = c.recv(0, 200);
      const auto a = c.recv(0, 100);
      EXPECT_DOUBLE_EQ(a[0], 1);
      EXPECT_DOUBLE_EQ(b[0], 2);
    }
  });
}

TEST(Runtime, AllReduceSum) {
  Runtime rt(16);
  rt.run([&](Comm& c) {
    const real_t total = c.allreduce_sum(real_t(c.rank()));
    EXPECT_DOUBLE_EQ(total, 120.0);  // 0+1+...+15
  });
}

TEST(Runtime, AllReduceMax) {
  Runtime rt(5);
  rt.run([&](Comm& c) {
    const real_t m = c.allreduce_max(real_t(c.rank() * c.rank()));
    EXPECT_DOUBLE_EQ(m, 16.0);
  });
}

TEST(Runtime, RepeatedReductions) {
  Runtime rt(4);
  rt.run([&](Comm& c) {
    for (int i = 0; i < 50; ++i) {
      const real_t s = c.allreduce_sum(1.0);
      EXPECT_DOUBLE_EQ(s, 4.0);
    }
  });
}

TEST(Runtime, BarrierSynchronizes) {
  Runtime rt(6);
  std::atomic<int> before{0};
  std::atomic<bool> violated{false};
  rt.run([&](Comm& c) {
    ++before;
    c.barrier();
    if (before.load() != 6) violated = true;
  });
  EXPECT_FALSE(violated.load());
}

TEST(Runtime, TrafficCountersTrackBytes) {
  Runtime rt(2);
  rt.run([&](Comm& c) {
    if (c.rank() == 0) {
      c.send(1, 1, std::vector<real_t>(10, 0.0));
      c.barrier();
      EXPECT_EQ(c.traffic().messages, 1u);
      EXPECT_EQ(c.traffic().bytes, 10 * sizeof(real_t));
    } else {
      c.recv(0, 1);
      c.barrier();
    }
  });
  EXPECT_EQ(rt.total_traffic().messages, 1u);
}

TEST(Runtime, AllToAllExchange) {
  const int p = 6;
  Runtime rt(p);
  rt.run([&](Comm& c) {
    for (int q = 0; q < p; ++q)
      if (q != c.rank())
        c.send(q, 5, std::vector<real_t>{real_t(c.rank())});
    real_t sum = 0;
    for (int q = 0; q < p; ++q)
      if (q != c.rank()) sum += c.recv(q, 5)[0];
    EXPECT_DOUBLE_EQ(sum, real_t(p * (p - 1) / 2 - c.rank()));
  });
}

}  // namespace
}  // namespace columbia::smp
