#include <gtest/gtest.h>

#include "smp/hybrid.hpp"
#include "support/random.hpp"

namespace columbia::smp {
namespace {

/// Random partition data + random cross-partition requests.
struct Scenario {
  PartitionData data;
  RequestLists requests;
};

Scenario make_scenario(index_t nparts, index_t items_per_part,
                       index_t requests_per_part, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  Scenario s;
  s.data.resize(std::size_t(nparts));
  for (auto& d : s.data) {
    d.resize(std::size_t(items_per_part));
    for (auto& v : d) v = rng.uniform(-10, 10);
  }
  s.requests.resize(std::size_t(nparts));
  for (index_t p = 0; p < nparts; ++p) {
    for (index_t k = 0; k < requests_per_part; ++k) {
      HaloRequest r;
      r.from_partition = index_t(rng.below(std::uint64_t(nparts)));
      r.item = index_t(rng.below(std::uint64_t(items_per_part)));
      s.requests[std::size_t(p)].push_back(r);
    }
  }
  return s;
}

/// Ground truth: direct lookups.
PartitionData expected(const Scenario& s) {
  PartitionData out(s.data.size(), std::vector<real_t>{});
  for (std::size_t p = 0; p < s.data.size(); ++p)
    for (const HaloRequest& r : s.requests[p])
      out[p].push_back(
          s.data[std::size_t(r.from_partition)][std::size_t(r.item)]);
  return out;
}

TEST(HybridComm, ThreadToThreadMatchesDirect) {
  const Scenario s = make_scenario(8, 20, 15, 1);
  Runtime rt(8);
  const auto got = exchange_thread_to_thread(rt, s.data, s.requests);
  EXPECT_EQ(got, expected(s));
}

TEST(HybridComm, MasterThreadMatchesDirect) {
  const Scenario s = make_scenario(8, 20, 15, 2);
  for (int tpp : {1, 2, 4, 8}) {
    Runtime rt(8 / tpp);
    const auto got = exchange_master_thread(rt, s.data, s.requests, tpp);
    EXPECT_EQ(got, expected(s)) << tpp << " threads per process";
  }
}

TEST(HybridComm, BothStrategiesAgree) {
  const Scenario s = make_scenario(12, 30, 25, 3);
  Runtime rt_a(12);
  const auto a = exchange_thread_to_thread(rt_a, s.data, s.requests);
  Runtime rt_b(4);
  const auto b = exchange_master_thread(rt_b, s.data, s.requests, 3);
  EXPECT_EQ(a, b);
}

TEST(HybridComm, MasterThreadSendsFewerLargerMessages) {
  // The paper's rationale for the master-thread strategy (Fig. 7b):
  // "a smaller number of larger messages being issued by the MPI
  // routines". Verify with the runtime's traffic counters.
  const Scenario s = make_scenario(16, 50, 40, 4);

  Runtime flat(16);
  exchange_thread_to_thread(flat, s.data, s.requests);
  const auto t_flat = flat.total_traffic();

  Runtime packed(4);  // 4 threads per process
  exchange_master_thread(packed, s.data, s.requests, 4);
  const auto t_packed = packed.total_traffic();

  EXPECT_LT(t_packed.messages, t_flat.messages);
  EXPECT_GT(real_t(t_packed.bytes) / real_t(std::max<std::uint64_t>(1, t_packed.messages)),
            real_t(t_flat.bytes) / real_t(std::max<std::uint64_t>(1, t_flat.messages)));
}

TEST(HybridComm, IntraProcessRequestsNeedNoMessages) {
  // All requests stay within each process: zero traffic.
  Scenario s = make_scenario(8, 10, 0, 5);
  for (index_t p = 0; p < 8; ++p)
    for (index_t k = 0; k < 5; ++k)
      s.requests[std::size_t(p)].push_back({p ^ 1, k});  // partner partition
  Runtime rt(4);  // pairs (0,1),(2,3),... share a process
  const auto got = exchange_master_thread(rt, s.data, s.requests, 2);
  EXPECT_EQ(got, expected(s));
  EXPECT_EQ(rt.total_traffic().messages, 0u);
}

TEST(HybridComm, SinglePartitionDegenerate) {
  Scenario s = make_scenario(1, 5, 3, 6);
  for (auto& reqs : s.requests)
    for (auto& r : reqs) r.from_partition = 0;
  Runtime rt(1);
  const auto got = exchange_master_thread(rt, s.data, s.requests, 1);
  EXPECT_EQ(got, expected(s));
}

}  // namespace
}  // namespace columbia::smp
