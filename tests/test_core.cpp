// The shared solver-runtime core: persistent ExchangePlans must be
// bit-identical to the legacy per-call smp::exchange_* reference
// implementation (both strategies, with halo fault injection on or off),
// allocation-free in steady state, and the unified cycle bookkeeping must
// reproduce the solvers' historical visit counts.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <new>

#include "cart3d/partitioned.hpp"
#include "core/exchange_plan.hpp"
#include "core/params.hpp"
#include "geom/components.hpp"
#include "mesh/builders.hpp"
#include "nsu3d/partitioned.hpp"
#include "perf/loads.hpp"
#include "resil/faults.hpp"
#include "smp/hybrid.hpp"
#include "support/random.hpp"

// ---------------------------------------------------------------------------
// Global allocation counter: replaces operator new/delete for this binary so
// the zero-steady-state-allocation contract of ExchangePlan::exchange is a
// hard assertion, not a benchmark-only observation.
namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t n) {
  void* p = std::malloc(n ? n : 1);
  if (!p) throw std::bad_alloc();
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return p;
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t al) {
  void* p = std::aligned_alloc(std::size_t(al),
                               (n + std::size_t(al) - 1) &
                                   ~(std::size_t(al) - 1));
  if (!p) throw std::bad_alloc();
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return p;
}
void* operator new[](std::size_t n, std::align_val_t al) {
  return ::operator new(n, al);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
// ---------------------------------------------------------------------------

namespace columbia::core {
namespace {

struct InjectorGuard {
  explicit InjectorGuard(const std::string& spec) {
    resil::FaultInjector::global().configure(resil::parse_fault_spec(spec));
  }
  ~InjectorGuard() { resil::FaultInjector::global().reset(); }
};

/// Random partition data + random cross-partition requests (mirrors the
/// scenario generator of tests/test_hybrid_comm.cpp so the two suites pin
/// the same protocol).
struct Scenario {
  PartitionData data;
  RequestLists requests;
};

Scenario make_scenario(index_t nparts, index_t items_per_part,
                       index_t requests_per_part, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  Scenario s;
  s.data.resize(std::size_t(nparts));
  for (auto& d : s.data) {
    d.resize(std::size_t(items_per_part));
    for (auto& v : d) v = rng.uniform(-10, 10);
  }
  s.requests.resize(std::size_t(nparts));
  for (index_t p = 0; p < nparts; ++p) {
    for (index_t k = 0; k < requests_per_part; ++k) {
      HaloRequest r;
      r.from_partition = index_t(rng.below(std::uint64_t(nparts)));
      r.item = index_t(rng.below(std::uint64_t(items_per_part)));
      s.requests[std::size_t(p)].push_back(r);
    }
  }
  return s;
}

PartitionData expected(const Scenario& s) {
  PartitionData out(s.data.size(), std::vector<real_t>{});
  for (std::size_t p = 0; p < s.data.size(); ++p)
    for (const HaloRequest& r : s.requests[p])
      out[p].push_back(
          s.data[std::size_t(r.from_partition)][std::size_t(r.item)]);
  return out;
}

TEST(ExchangePlan, ThreadToThreadMatchesLegacyBitwise) {
  const Scenario s = make_scenario(8, 20, 15, 1);
  smp::Runtime rt(8);
  const auto legacy = smp::exchange_thread_to_thread(rt, s.data, s.requests);
  ExchangePlan plan(s.requests);
  EXPECT_EQ(plan.exchange(s.data), legacy);
  EXPECT_EQ(legacy, expected(s));
}

TEST(ExchangePlan, MasterThreadMatchesLegacyBitwise) {
  const Scenario s = make_scenario(8, 20, 15, 2);
  for (int tpp : {1, 2, 4, 8}) {
    smp::Runtime rt(8 / tpp);
    const auto legacy = smp::exchange_master_thread(rt, s.data, s.requests, tpp);
    ExchangePlan plan(s.requests,
                      {ExchangeStrategy::MasterThread, tpp});
    EXPECT_EQ(plan.exchange(s.data), legacy) << tpp << " threads per process";
  }
}

TEST(ExchangePlan, RepeatedExchangesTrackChangingData) {
  Scenario s = make_scenario(6, 12, 10, 3);
  ExchangePlan plan(s.requests);
  for (int round = 0; round < 5; ++round) {
    EXPECT_EQ(plan.exchange(s.data), expected(s)) << "round " << round;
    for (auto& d : s.data)
      for (auto& v : d) v += 0.25 * real_t(round + 1);
  }
  EXPECT_EQ(plan.stats().exchanges, 5u);
}

TEST(ExchangePlan, FaultFreeTrafficMatchesLegacyCounters) {
  // Same wire accounting as smp::Comm::send: one message per framed send,
  // frame bytes (payload + count + crc words) per message.
  const Scenario s = make_scenario(10, 25, 20, 4);

  smp::Runtime flat(10);
  smp::exchange_thread_to_thread(flat, s.data, s.requests);
  ExchangePlan plan(s.requests);
  plan.exchange(s.data);
  EXPECT_EQ(plan.stats().messages, flat.total_traffic().messages);
  EXPECT_EQ(plan.stats().bytes, flat.total_traffic().bytes);
  EXPECT_EQ(plan.stats().messages, plan.messages_per_exchange());

  smp::Runtime packed(5);
  smp::exchange_master_thread(packed, s.data, s.requests, 2);
  ExchangePlan mplan(s.requests, {ExchangeStrategy::MasterThread, 2});
  mplan.exchange(s.data);
  EXPECT_EQ(mplan.stats().messages, packed.total_traffic().messages);
  EXPECT_EQ(mplan.stats().bytes, packed.total_traffic().bytes);
  // Fig. 7b: fewer, larger messages.
  EXPECT_LT(mplan.messages_per_exchange(), plan.messages_per_exchange());
}

TEST(ExchangePlan, BitIdenticalUnderHaloCorruption) {
  const Scenario s = make_scenario(8, 20, 15, 5);
  const PartitionData want = expected(s);
  InjectorGuard faults("seed=5,halo_corrupt=0.5");
  for (int tpp : {1, 2, 4}) {
    ExchangePlan plan(s.requests, {ExchangeStrategy::MasterThread, tpp});
    for (int round = 0; round < 4; ++round)
      EXPECT_EQ(plan.exchange(s.data), want)
          << "tpp " << tpp << " round " << round;
    smp::Runtime rt(8 / tpp);
    EXPECT_EQ(smp::exchange_master_thread(rt, s.data, s.requests, tpp), want);
  }
  EXPECT_GT(resil::FaultInjector::global().injected(
                resil::FaultKind::HaloCorrupt),
            0u);
}

TEST(ExchangePlan, BitIdenticalUnderHaloDrops) {
  const Scenario s = make_scenario(8, 20, 15, 6);
  const PartitionData want = expected(s);
  InjectorGuard faults("seed=3,halo_drop=0.5");
  ExchangePlan t2t(s.requests);
  ExchangePlan master(s.requests, {ExchangeStrategy::MasterThread, 4});
  for (int round = 0; round < 4; ++round) {
    EXPECT_EQ(t2t.exchange(s.data), want);
    EXPECT_EQ(master.exchange(s.data), want);
  }
  EXPECT_GT(t2t.stats().retransmits + master.stats().retransmits, 0u);
  EXPECT_GT(resil::FaultInjector::global().injected(resil::FaultKind::HaloDrop),
            0u);
}

TEST(ExchangePlan, SteadyStateExchangePerformsZeroAllocations) {
  Scenario s = make_scenario(12, 30, 25, 7);
  // Level-tagged plans take the exact same hot path as untagged ones; the
  // halo.xchg span guards they carry must cost zero allocations while
  // observability is disabled (the default), which is the state this test
  // runs in.
  ExchangePlan t2t(s.requests, {ExchangeStrategy::ThreadToThread, 1, 0});
  ExchangePlan master(s.requests, {ExchangeStrategy::MasterThread, 3, 1});
  // Warm-up: first exchange may touch lazily-created observability
  // registries; everything after it must be allocation-free.
  t2t.exchange(s.data);
  master.exchange(s.data);

  const std::uint64_t before = g_alloc_count.load();
  for (int round = 0; round < 8; ++round) {
    t2t.exchange(s.data);
    master.exchange(s.data);
    for (auto& d : s.data)
      for (auto& v : d) v *= 1.0 + 1e-6;
  }
  EXPECT_EQ(g_alloc_count.load() - before, 0u)
      << "ExchangePlan::exchange allocated on the steady-state path";

  // The split overlap entry points are the same machinery under the same
  // contract: post() + interior compute + finish() must stay
  // allocation-free in steady state too.
  const std::uint64_t split_before = g_alloc_count.load();
  for (int round = 0; round < 8; ++round) {
    t2t.post(s.data);
    master.post(s.data);
    for (auto& d : s.data)
      for (auto& v : d) v *= 1.0 + 1e-6;  // overlapped "interior compute"
    t2t.finish();
    master.finish();
  }
  EXPECT_EQ(g_alloc_count.load() - split_before, 0u)
      << "ExchangePlan::post/finish allocated on the steady-state path";
}

TEST(ExchangePlan, ScheduleStatisticsMatchRequestLists) {
  const Scenario s = make_scenario(6, 15, 12, 8);
  ExchangePlan plan(s.requests);
  index_t max_ghost = 0, total_ghost = 0, max_nbrs = 0;
  for (index_t p = 0; p < 6; ++p) {
    index_t ghosts = 0;
    std::set<index_t> owners;
    for (const HaloRequest& r : s.requests[std::size_t(p)])
      if (r.from_partition != p) {
        ++ghosts;
        owners.insert(r.from_partition);
      }
    EXPECT_EQ(plan.ghost_items(p), ghosts);
    EXPECT_EQ(plan.neighbor_count(p), index_t(owners.size()));
    max_ghost = std::max(max_ghost, ghosts);
    total_ghost += ghosts;
    max_nbrs = std::max(max_nbrs, index_t(owners.size()));
  }
  EXPECT_EQ(plan.max_ghost_items(), max_ghost);
  EXPECT_EQ(plan.total_ghost_items(), total_ghost);
  EXPECT_EQ(plan.max_neighbors(), max_nbrs);

  const perf::MeasuredStats st = perf::stats_from_plan(plan);
  EXPECT_EQ(st.max_halo_items, real_t(max_ghost));
  EXPECT_EQ(st.comm_neighbors, max_nbrs);
}

TEST(CycleVisits, MatchesLegacyRecursionForBothCycleTypes) {
  for (int nl = 1; nl <= 6; ++nl) {
    EXPECT_EQ(cycle_visits(nl, CycleType::W), perf::cycle_visits(nl, true))
        << nl << " levels, W";
    EXPECT_EQ(cycle_visits(nl, CycleType::V), perf::cycle_visits(nl, false))
        << nl << " levels, V";
  }
  const auto w4 = cycle_visits(4, CycleType::W);
  EXPECT_EQ(w4, (std::vector<index_t>{1, 2, 4, 4}));
  const auto v4 = cycle_visits(4, CycleType::V);
  EXPECT_EQ(v4, (std::vector<index_t>{1, 1, 1, 1}));
}

// --- Solver consumers: both decompositions run the same plan type. ---

TEST(PlanConsumers, Nsu3dParallelResidualAgreesAcrossStrategies) {
  mesh::WingMeshSpec spec;
  spec.n_wrap = 24;
  spec.n_span = 3;
  spec.n_normal = 10;
  spec.wall_spacing = 1e-4;
  const auto m = mesh::make_wing_mesh(spec);
  nsu3d::LevelOptions lo;
  lo.num_levels = 1;
  const auto levels = nsu3d::build_levels(m, lo);
  const nsu3d::Level& lvl = levels[0];

  euler::FlowConditions fc;
  fc.mach = 0.6;
  const euler::Prim inf = fc.freestream();
  std::vector<nsu3d::State> u(std::size_t(lvl.num_nodes));
  for (index_t v = 0; v < lvl.num_nodes; ++v) {
    const geom::Vec3& x = lvl.node_center[std::size_t(v)];
    euler::Prim w = inf;
    w.rho *= 1.0 + 0.05 * std::sin(x.x + 0.3 * x.y);
    w.p *= 1.0 + 0.05 * std::cos(0.7 * x.z);
    const auto c5 = euler::to_conservative(w);
    for (int c = 0; c < 5; ++c)
      u[std::size_t(v)][std::size_t(c)] = c5[std::size_t(c)];
    u[std::size_t(v)][5] = 1e-5 * w.rho;
  }

  const auto plan = nsu3d::build_partition_plan(levels, 4);
  const auto& part = plan.levels[0].part;
  const auto t2t = nsu3d::parallel_residual(lvl, u, inf, part, 4);
  // The transport strategy must not change a single bit of the result.
  const auto master = nsu3d::parallel_residual(
      lvl, u, inf, part, 4, {ExchangeStrategy::MasterThread, 2});
  EXPECT_EQ(t2t, master);

  // Neither may fault injection on the halo frames.
  InjectorGuard faults("seed=7,halo_corrupt=0.3,halo_drop=0.3");
  const auto faulted = nsu3d::parallel_residual(
      lvl, u, inf, part, 4, {ExchangeStrategy::MasterThread, 2});
  EXPECT_EQ(t2t, faulted);
}

TEST(PlanConsumers, Cart3dParallelResidualMatchesSinglePartition) {
  const auto sphere = geom::make_sphere({0, 0, 0}, 0.4, 16, 32);
  geom::Aabb dom;
  dom.expand({-1.5, -1.5, -1.5});
  dom.expand({1.5, 1.5, 1.5});
  cartesian::CartMeshOptions mopt;
  mopt.base_n = 8;
  mopt.max_level = 2;
  const cartesian::CartMesh m = cartesian::build_cart_mesh(sphere, dom, mopt);

  euler::FlowConditions fc;
  fc.mach = 0.5;
  fc.alpha_deg = 2.0;
  const euler::Prim inf = fc.freestream();
  std::vector<euler::Cons> u(m.cells.size());
  for (std::size_t i = 0; i < m.cells.size(); ++i) {
    euler::Prim w = inf;
    const geom::Vec3 x = m.cell_center(m.cells[i]);
    w.rho *= 1.0 + 0.04 * std::sin(1.3 * x.x + 0.5 * x.y);
    w.p *= 1.0 + 0.04 * std::cos(0.9 * x.z);
    u[i] = euler::to_conservative(w);
  }

  const auto part = cartesian::partition_cells(m, 4);
  const auto par = cart3d::parallel_residual(m, u, inf, part, 4);
  const std::vector<index_t> one(m.cells.size(), 0);
  const auto ser = cart3d::parallel_residual(m, u, inf, one, 1);
  ASSERT_EQ(par.size(), ser.size());
  real_t scale = 0;
  for (const auto& r : ser)
    for (real_t x : r) scale = std::max(scale, std::abs(x));
  for (std::size_t i = 0; i < par.size(); ++i)
    for (int c = 0; c < 5; ++c)
      EXPECT_NEAR(par[i][std::size_t(c)], ser[i][std::size_t(c)],
                  1e-10 * scale)
          << "cell " << i << " comp " << c;

  // Strategy- and fault-independence are exact, as for NSU3D.
  const auto master = cart3d::parallel_residual(
      m, u, inf, part, 4, euler::FluxScheme::Roe,
      {ExchangeStrategy::MasterThread, 2});
  EXPECT_EQ(par, master);
  InjectorGuard faults("seed=9,halo_corrupt=0.3,halo_drop=0.3");
  const auto faulted = cart3d::parallel_residual(m, u, inf, part, 4);
  EXPECT_EQ(par, faulted);
}

}  // namespace
}  // namespace columbia::core
