// Distributed flight recorder: the NTP-style clock-offset estimator under
// synthetic skew and asymmetric delay, shard round-trip and truncated-tail
// tolerance, clock-aligned multi-shard merging (post<->wait pairing must
// survive offset correction and never cross a relaunch seam), and the
// fork-based shm/tcp end-to-end story: ProcessGroup-armed recorders whose
// gathered shards merge into a non-empty comm report, a killed rank
// leaving a truncated-but-mergeable shard, and exchanged values staying
// bit-identical with the recorder on or off.
//
// Fork discipline as in test_transport: no global thread pool before
// forking, raw exchange scenarios only, and deliberately NOT tsan (forked
// children carry live autoflush threads).
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/clock_sync.hpp"
#include "core/exchange_plan.hpp"
#include "core/transport.hpp"
#include "obs/comm_report.hpp"
#include "obs/obs.hpp"
#include "obs/report_cli.hpp"
#include "obs/shard.hpp"
#include "smp/process_group.hpp"
#include "support/random.hpp"

namespace columbia {
namespace {

/// Restores observability-off state when a test exits.
struct ObsGuard {
  ~ObsGuard() {
    obs::close_jsonl();
    obs::set_enabled(false);
    obs::reset_trace();
    obs::reset_metrics();
  }
};

// --- clock-offset estimator (core/clock_sync.hpp) --------------------------

/// One four-timestamp exchange against a server whose clock leads the
/// client's by `skew`, with `fwd`/`back` one-way path delays and `serve`
/// ns of server-side processing.
core::ClockSample sample_at(std::int64_t t0, std::int64_t skew,
                            std::int64_t fwd, std::int64_t back,
                            std::int64_t serve) {
  core::ClockSample s;
  s.t0 = t0;
  s.t1 = t0 + fwd + skew;  // server receipt, on the server's clock
  s.t2 = s.t1 + serve;
  s.t3 = s.t2 - skew + back;  // client return, back on the client's clock
  return s;
}

TEST(ClockEstimator, RecoversSkewExactlyUnderSymmetricDelay) {
  const std::int64_t skew = 5'000'000;  // server 5ms ahead
  std::vector<core::ClockSample> burst;
  for (int i = 0; i < 8; ++i)
    burst.push_back(
        sample_at(1'000'000 * (i + 1), skew, 100'000, 100'000, 30'000));
  const core::ClockEstimate est = core::estimate_clock_offset(burst);
  EXPECT_TRUE(est.synced);
  EXPECT_EQ(est.samples, 8);
  // Symmetric path delay and server processing both cancel exactly.
  EXPECT_EQ(est.offset_ns, skew);
  EXPECT_EQ(est.rtt_ns, 200'000);
}

TEST(ClockEstimator, MinRttSampleWinsUnderAsymmetricQueueing) {
  const std::int64_t skew = -3'000'000;  // server 3ms behind
  std::vector<core::ClockSample> burst;
  // Seven samples contaminated by 2ms of return-path queueing: each is
  // biased by (fwd - back) / 2 = -950us. One clean symmetric sample.
  for (int i = 0; i < 7; ++i)
    burst.push_back(
        sample_at(1'000'000 * (i + 1), skew, 100'000, 2'000'000, 50'000));
  burst.push_back(sample_at(9'000'000, skew, 100'000, 100'000, 50'000));
  const core::ClockEstimate est = core::estimate_clock_offset(burst);
  EXPECT_TRUE(est.synced);
  EXPECT_EQ(est.samples, 8);
  // The estimate comes from the minimum-RTT survivor, not an average —
  // asymmetric queueing on the other seven never touches it.
  EXPECT_EQ(est.offset_ns, skew);
  EXPECT_EQ(est.rtt_ns, 200'000);
}

TEST(ClockEstimator, DiscardsSteppedClockSamplesAndEmptyBursts) {
  // A clock stepped mid-exchange yields rtt < 0; such samples must not
  // poison the estimate.
  std::vector<core::ClockSample> burst;
  core::ClockSample stepped;
  stepped.t0 = 1'000'000;
  stepped.t1 = 1'050'000;
  stepped.t2 = 1'060'000;
  stepped.t3 = 900'000;  // returned "before" it left
  burst.push_back(stepped);
  burst.push_back(sample_at(2'000'000, 7'000, 10'000, 10'000, 5'000));
  const core::ClockEstimate est = core::estimate_clock_offset(burst);
  EXPECT_TRUE(est.synced);
  EXPECT_EQ(est.samples, 1);
  EXPECT_EQ(est.offset_ns, 7'000);

  EXPECT_FALSE(core::estimate_clock_offset({}).synced);
  EXPECT_FALSE(core::estimate_clock_offset({stepped}).synced);
}

// --- per-rank path spelling -------------------------------------------------

TEST(ShardPaths, RankSuffixInsertsBeforeFinalExtension) {
  EXPECT_EQ(obs::rank_suffixed_path("conv.jsonl", 3), "conv.rank3.jsonl");
  EXPECT_EQ(obs::rank_suffixed_path("out/run.trace.json", 0),
            "out/run.trace.rank0.json");
  // A dot in a directory is not an extension.
  EXPECT_EQ(obs::rank_suffixed_path("/tmp/a.b/conv", 2),
            "/tmp/a.b/conv.rank2");
  EXPECT_EQ(obs::shard_file_path("trace.json.shards", 2, 1),
            "trace.json.shards.rank2.round1.jsonl");
}

// --- shard round-trip and truncated-tail tolerance --------------------------

#if COLUMBIA_OBS_ENABLED

TEST(FlightRecorder, ShardRoundTripsThroughParse) {
  ObsGuard guard;
  const std::string shard_path = testing::TempDir() + "fr_roundtrip.jsonl";
  const std::string conv_path = testing::TempDir() + "fr_roundtrip_conv.jsonl";
  obs::ShardOptions so;
  so.path = shard_path;
  so.rank = 1;
  so.ranks = 2;
  so.round = 3;
  so.backend = "shm";
  so.fault_spec = "seed=9,msg_drop=0.1";
  so.flush_ms = 0;  // explicit flushes only
  obs::FlightRecorder rec(so);
  ASSERT_TRUE(obs::open_jsonl(conv_path));
  {
    obs::SpanGuard post("halo.xchg.post", {{"rank", 0},
                                           {"nbr", 1},
                                           {"level", 0},
                                           {"strat", 0},
                                           {"bytes", 4096}});
  }
  obs::CycleRecord cr;
  cr.solver = "nsu3d";
  cr.cycle = 1;
  cr.residual = 0.25;
  obs::emit_cycle(cr);
  // Raw-ns clock fields must round-trip exactly even past 2^53 (they are
  // serialized as JSON strings, never doubles).
  obs::ShardClock clock;
  clock.synced = true;
  clock.offset_ns = (std::int64_t(1) << 60) + 7;
  clock.rtt_ns = 4242;
  clock.samples = 8;
  rec.set_clock(clock);
  ASSERT_TRUE(rec.finalize(clock));

  obs::TelemetryShard s;
  std::string err;
  ASSERT_TRUE(obs::read_shard_file(shard_path, s, &err)) << err;
  EXPECT_EQ(s.rank, 1);
  EXPECT_EQ(s.ranks, 2);
  EXPECT_EQ(s.round, 3);
  EXPECT_EQ(s.pid, std::int64_t(::getpid()));
  EXPECT_EQ(s.backend, "shm");
  EXPECT_EQ(s.fault_spec, "seed=9,msg_drop=0.1");
  EXPECT_FALSE(s.truncated);
  EXPECT_GE(s.flushes, 1);
  EXPECT_TRUE(s.clock.synced);
  EXPECT_EQ(s.clock.offset_ns, (std::int64_t(1) << 60) + 7);
  EXPECT_EQ(s.clock.rtt_ns, 4242);
  EXPECT_EQ(s.clock.samples, 8);
  ASSERT_EQ(s.events.size(), 2u);  // the span's B and E
  EXPECT_EQ(s.events[0].name, "halo.xchg.post");
  EXPECT_EQ(s.events[0].bytes, 4096);
  EXPECT_EQ(s.events[0].round, 3);  // events inherit the header round
  ASSERT_EQ(s.conv.size(), 1u);
  EXPECT_EQ(s.conv[0].string_or("solver", ""), "nsu3d");
}

TEST(FlightRecorder, TruncatedTailStillParsesAsMergeableShard) {
  ObsGuard guard;
  const std::string shard_path = testing::TempDir() + "fr_truncated.jsonl";
  obs::ShardOptions so;
  so.path = shard_path;
  so.backend = "tcp";
  so.flush_ms = 0;
  obs::FlightRecorder rec(so);
  { obs::SpanGuard sp("halo.xchg.wait", {{"rank", 1}, {"nbr", 0}}); }
  obs::ShardClock clock;
  clock.synced = true;
  ASSERT_TRUE(rec.finalize(clock));

  std::ifstream is(shard_path);
  std::stringstream ss;
  ss << is.rdbuf();
  const std::string text = ss.str();
  ASSERT_TRUE(obs::is_shard_text(text));
  // Chop the footer (and then some) off mid-line: exactly what a rank
  // killed mid-rewrite leaves behind.
  const std::string cut = text.substr(0, text.size() * 2 / 3);
  obs::TelemetryShard s;
  ASSERT_TRUE(obs::parse_shard(cut, s));
  EXPECT_TRUE(s.truncated);
  EXPECT_FALSE(s.events.empty());
  // Merging a lone truncated shard must still work.
  const obs::MergedTelemetry m = obs::merge_shards({s});
  EXPECT_EQ(m.ranks, 1);
  EXPECT_FALSE(m.events.empty());
}

// --- clock-aligned merging --------------------------------------------------

obs::TelemetryShard synthetic_shard(int rank, int round,
                                    std::uint64_t base_ns,
                                    std::int64_t offset_ns) {
  obs::TelemetryShard s;
  s.rank = rank;
  s.ranks = 2;
  s.round = round;
  s.backend = "shm";
  s.git_sha = "cafe01";
  s.build_type = "Release";
  s.truncated = false;
  s.clock_base_ns = base_ns;
  s.clock.synced = true;
  s.clock.offset_ns = offset_ns;
  s.clock.samples = 8;
  return s;
}

void add_span(obs::TelemetryShard& s, const char* name, double b_us,
              double e_us, std::int64_t rank, std::int64_t nbr,
              std::int64_t bytes) {
  obs::PhaseEvent b;
  b.name = name;
  b.phase = 'B';
  b.ts_us = b_us;
  b.level = 0;
  b.strat = 0;
  b.rank = rank;
  b.nbr = nbr;
  b.bytes = bytes;
  b.round = s.round;
  obs::PhaseEvent e;
  e.name = name;
  e.phase = 'E';
  e.ts_us = e_us;
  e.round = s.round;
  s.events.push_back(b);
  s.events.push_back(e);
}

/// The matched-message count over every group of a report.
std::uint64_t matched_messages(const obs::CommReport& r) {
  std::uint64_t n = 0;
  for (const obs::CommGroup& g : r.groups) n += g.messages;
  return n;
}

TEST(ShardMerge, PostWaitPairingSurvivesOffsetCorrection) {
  // Rank 1's steady clock reads 1s "later" than rank 0's for the same
  // instant; clock sync measured offset_ns = -1s (member 0's clock minus
  // rank 1's). After correction both shards share one timeline.
  obs::TelemetryShard a = synthetic_shard(0, 0, 1'000'000'000, 0);
  obs::TelemetryShard b =
      synthetic_shard(1, 0, 2'000'000'000, -1'000'000'000);
  add_span(a, "halo.xchg.post", 100, 110, /*rank=*/0, /*nbr=*/1, 1000);
  add_span(b, "halo.xchg.wait", 140, 160, /*rank=*/1, /*nbr=*/0, -1);

  obs::MergedTelemetry m = obs::merge_shards({a, b});
  EXPECT_TRUE(m.warnings.empty())
      << (m.warnings.empty() ? "" : m.warnings.front());
  const obs::CommReport r = obs::build_comm_report(m.events);
  ASSERT_EQ(matched_messages(r), 1u);
  ASSERT_EQ(r.groups.size(), 1u);
  // Delivery time on the corrected timeline: wait end 160 - post begin
  // 100 = 60us. Without offset correction the 1s skew would drown it.
  EXPECT_NEAR(r.groups[0].xfer_s, 60e-6, 1e-9);
  EXPECT_EQ(r.groups[0].bytes, 1000u);

  // Control: drop the offset and the same spans measure ~1s of "wire".
  obs::TelemetryShard b_raw = b;
  b_raw.clock.offset_ns = 0;
  obs::MergedTelemetry raw = obs::merge_shards({a, b_raw});
  const obs::CommReport r_raw = obs::build_comm_report(raw.events);
  ASSERT_EQ(matched_messages(r_raw), 1u);
  EXPECT_GT(r_raw.groups[0].xfer_s, 0.9);
}

TEST(ShardMerge, PairingNeverCrossesRelaunchSeam) {
  // A post recorded in round 0 must not match a wait recorded by the
  // relaunched round-1 incarnation of the receiver.
  obs::TelemetryShard a = synthetic_shard(0, 0, 1'000'000'000, 0);
  obs::TelemetryShard b = synthetic_shard(1, 1, 1'000'000'000, 0);
  add_span(a, "halo.xchg.post", 100, 110, 0, 1, 512);
  add_span(b, "halo.xchg.wait", 140, 160, 1, 0, -1);
  obs::MergedTelemetry m = obs::merge_shards({a, b});
  EXPECT_EQ(m.rounds, 2);
  EXPECT_EQ(matched_messages(obs::build_comm_report(m.events)), 0u);
}

TEST(ShardMerge, ProvenanceMismatchRaisesWarning) {
  obs::TelemetryShard a = synthetic_shard(0, 0, 0, 0);
  obs::TelemetryShard b = synthetic_shard(1, 0, 0, 0);
  b.git_sha = "deadbeef";
  b.fault_spec = "seed=3,peer_hang=1@1";
  const obs::MergedTelemetry m = obs::merge_shards({a, b});
  ASSERT_GE(m.warnings.size(), 2u);
  bool saw_sha = false, saw_faults = false;
  for (const std::string& w : m.warnings) {
    if (w.find("git SHA") != std::string::npos) saw_sha = true;
    if (w.find("fault spec") != std::string::npos) saw_faults = true;
  }
  EXPECT_TRUE(saw_sha);
  EXPECT_TRUE(saw_faults);
}

// --- end-to-end: forked groups, gathered shards, merged comm report ---------

struct Scenario {
  core::PartitionData data;
  core::RequestLists requests;
};

Scenario make_scenario(index_t nparts, index_t items_per_part,
                       index_t requests_per_part, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  Scenario s;
  s.data.resize(std::size_t(nparts));
  for (auto& d : s.data) {
    d.resize(std::size_t(items_per_part));
    for (auto& v : d) v = rng.uniform(-10, 10);
  }
  s.requests.resize(std::size_t(nparts));
  for (index_t p = 0; p < nparts; ++p) {
    for (index_t k = 0; k < requests_per_part; ++k) {
      core::HaloRequest r;
      r.from_partition = index_t(rng.below(std::uint64_t(nparts)));
      r.item = index_t(rng.below(std::uint64_t(items_per_part)));
      s.requests[std::size_t(p)].push_back(r);
    }
  }
  return s;
}

/// Child body: a few replicated exchange rounds over the group wire.
/// `result_base`, when set, writes the exchanged values hexfloat-exact to
/// "<result_base>.rank<r>.txt" for the determinism comparison.
smp::ProcessGroup::Body exchange_body(int rounds,
                                      const std::string& result_base = {}) {
  return [rounds, result_base](int rank, core::Transport& t) {
    const Scenario s = make_scenario(6, 18, 14, 21);
    core::ExchangePlanOptions opt;
    opt.transport = &t;
    opt.wire.deadline_ms = 200;
    opt.wire.max_attempts = 8;
    core::ExchangePlan plan(s.requests, opt);
    core::PartitionData got;
    for (int round = 0; round < rounds; ++round) got = plan.exchange(s.data);
    plan.drain();  // exit grace, as in test_transport
    if (!result_base.empty()) {
      std::ofstream os(obs::rank_suffixed_path(result_base + ".txt", rank));
      os << std::hexfloat;
      for (const auto& part : got)
        for (const real_t v : part) os << double(v) << "\n";
    }
    return 0;
  };
}

smp::ProcessGroupOptions group_options(smp::GroupBackend backend, int ranks) {
  smp::ProcessGroupOptions opts;
  opts.ranks = ranks;
  opts.backend = backend;
  opts.heartbeat_ms = 10;
  opts.stall_ms = 2000;
  opts.wall_timeout_ms = 60000;
  return opts;
}

void expect_merged_comm_report(smp::GroupBackend backend,
                               const char* base_name) {
  const std::string base = testing::TempDir() + base_name;
  smp::ProcessGroupOptions opts = group_options(backend, 3);
  opts.telemetry_base = base;
  const smp::GroupResult res =
      smp::ProcessGroup::run(opts, exchange_body(3));
  ASSERT_TRUE(res.ok) << "first failing exit: " << res.first_failure_exit();
  ASSERT_EQ(res.shards.size(), 3u);

  std::vector<obs::TelemetryShard> shards;
  for (const std::string& path : res.shards) {
    obs::TelemetryShard s;
    std::string err;
    ASSERT_TRUE(obs::read_shard_file(path, s, &err)) << path << ": " << err;
    EXPECT_FALSE(s.truncated) << path;
    EXPECT_TRUE(s.clock.synced) << path;
    if (s.rank != 0) EXPECT_GT(s.clock.samples, 0) << path;
    shards.push_back(std::move(s));
  }
  obs::MergedTelemetry m = obs::merge_shards(std::move(shards));
  EXPECT_TRUE(m.warnings.empty())
      << (m.warnings.empty() ? "" : m.warnings.front());
  EXPECT_EQ(m.ranks, 3);
  ASSERT_FALSE(m.events.empty());

  const obs::CommReport r = obs::build_comm_report(m.events);
  ASSERT_FALSE(r.empty());
  EXPECT_GT(matched_messages(r), 0u);
  for (const obs::CommGroup& g : r.groups) {
    if (g.messages == 0) continue;
    // Offset-corrected deliveries are sane: non-negative and nowhere near
    // the run's wall time (a failed correction shows up as seconds).
    EXPECT_GE(g.xfer_min_s, 0.0);
    EXPECT_LT(g.xfer_s / double(g.messages), 10.0);
  }

  // The documented CLI entry point consumes the raw shards directly.
  std::ostringstream out, err;
  std::vector<std::string> args = {"comm", "--json"};
  args.insert(args.end(), res.shards.begin(), res.shards.end());
  EXPECT_EQ(obs::report::run(args, out, err), obs::report::kOk) << err.str();
  EXPECT_NE(out.str().find("\"wait_s\""), std::string::npos);
  EXPECT_NE(out.str().find("\"provenance_mismatch\":false"),
            std::string::npos);
  EXPECT_NE(out.str().find("\"liveness\""), std::string::npos);
}

TEST(FlightRecorderE2E, ShmShardsMergeIntoCommReport) {
  expect_merged_comm_report(smp::GroupBackend::Shm, "fr_e2e_shm");
}

TEST(FlightRecorderE2E, TcpShardsMergeIntoCommReport) {
  expect_merged_comm_report(smp::GroupBackend::Tcp, "fr_e2e_tcp");
}

TEST(FlightRecorderE2E, KilledRankLeavesMergeableShard) {
  const std::string base = testing::TempDir() + "fr_e2e_kill";
  smp::ProcessGroupOptions opts = group_options(smp::GroupBackend::Shm, 2);
  opts.telemetry_base = base;
  const smp::GroupResult res = smp::ProcessGroup::run(
      opts, [](int rank, core::Transport& t) {
        (void)t;
        { obs::SpanGuard sp("child.work", {{"level", 0}}); }
        if (rank == 1) {
          // Outlive at least one autoflush period, then die without
          // finalize — the watchdog-kill / crash shape.
          std::this_thread::sleep_for(std::chrono::milliseconds(700));
          ::_exit(7);
        }
        return 0;
      });
  EXPECT_FALSE(res.ok);
  ASSERT_EQ(res.shards.size(), 2u);

  std::vector<obs::TelemetryShard> shards;
  for (const std::string& path : res.shards) {
    obs::TelemetryShard s;
    std::string err;
    ASSERT_TRUE(obs::read_shard_file(path, s, &err)) << path << ": " << err;
    shards.push_back(std::move(s));
  }
  EXPECT_FALSE(shards[0].truncated);  // rank 0 finalized normally
  EXPECT_TRUE(shards[1].truncated);   // rank 1 never wrote its footer
  EXPECT_GE(shards[1].flushes, 1);
  EXPECT_FALSE(shards[1].events.empty());

  const obs::MergedTelemetry m = obs::merge_shards(std::move(shards));
  EXPECT_EQ(m.ranks, 2);
  EXPECT_FALSE(m.events.empty());
}

void expect_recorder_invisible(smp::GroupBackend backend,
                               const char* base_name) {
  const std::string dir = testing::TempDir();
  const std::string off_base = dir + base_name + "_off";
  const std::string on_base = dir + base_name + "_on";

  smp::ProcessGroupOptions off = group_options(backend, 2);
  ASSERT_TRUE(smp::ProcessGroup::run(off, exchange_body(2, off_base)).ok);

  smp::ProcessGroupOptions on = group_options(backend, 2);
  on.telemetry_base = dir + base_name + "_shards";
  ASSERT_TRUE(smp::ProcessGroup::run(on, exchange_body(2, on_base)).ok);

  for (int rank = 0; rank < 2; ++rank) {
    const std::string a = obs::rank_suffixed_path(off_base + ".txt", rank);
    const std::string b = obs::rank_suffixed_path(on_base + ".txt", rank);
    std::ifstream ia(a), ib(b);
    ASSERT_TRUE(ia) << a;
    ASSERT_TRUE(ib) << b;
    std::stringstream sa, sb;
    sa << ia.rdbuf();
    sb << ib.rdbuf();
    EXPECT_FALSE(sa.str().empty());
    EXPECT_EQ(sa.str(), sb.str()) << "rank " << rank << " over "
                                  << smp::group_backend_name(backend);
  }
}

TEST(FlightRecorderE2E, ShmExchangedValuesIdenticalRecorderOnOrOff) {
  expect_recorder_invisible(smp::GroupBackend::Shm, "fr_det_shm");
}

TEST(FlightRecorderE2E, TcpExchangedValuesIdenticalRecorderOnOrOff) {
  expect_recorder_invisible(smp::GroupBackend::Tcp, "fr_det_tcp");
}

#endif  // COLUMBIA_OBS_ENABLED

}  // namespace
}  // namespace columbia
