#include <gtest/gtest.h>

#include "graph/partition.hpp"
#include "support/random.hpp"

namespace columbia::graph {
namespace {

using Edge = std::pair<index_t, index_t>;

Csr grid_graph(index_t nx, index_t ny) {
  std::vector<Edge> edges;
  auto id = [&](index_t i, index_t j) { return j * nx + i; };
  for (index_t j = 0; j < ny; ++j)
    for (index_t i = 0; i < nx; ++i) {
      if (i + 1 < nx) edges.emplace_back(id(i, j), id(i + 1, j));
      if (j + 1 < ny) edges.emplace_back(id(i, j), id(i, j + 1));
    }
  return Csr::from_edges(nx * ny, edges);
}

Csr grid3d(index_t n) {
  std::vector<Edge> edges;
  auto id = [&](index_t i, index_t j, index_t k) {
    return (k * n + j) * n + i;
  };
  for (index_t k = 0; k < n; ++k)
    for (index_t j = 0; j < n; ++j)
      for (index_t i = 0; i < n; ++i) {
        if (i + 1 < n) edges.emplace_back(id(i, j, k), id(i + 1, j, k));
        if (j + 1 < n) edges.emplace_back(id(i, j, k), id(i, j + 1, k));
        if (k + 1 < n) edges.emplace_back(id(i, j, k), id(i, j, k + 1));
      }
  return Csr::from_edges(n * n * n, edges);
}

TEST(Partition, SinglePartIsTrivial) {
  const Csr g = grid_graph(5, 5);
  const auto part = partition(g, 1);
  for (index_t p : part) EXPECT_EQ(p, 0);
}

TEST(Partition, AllIdsInRange) {
  const Csr g = grid_graph(16, 16);
  for (index_t k : {2, 3, 4, 7, 8}) {
    const auto part = partition(g, k);
    for (index_t p : part) {
      EXPECT_GE(p, 0);
      EXPECT_LT(p, k);
    }
  }
}

TEST(Partition, BalanceWithinTolerance) {
  const Csr g = grid_graph(32, 32);
  PartitionOptions opt;
  opt.imbalance = 0.05;
  const auto part = partition(g, 8, opt);
  const auto q = evaluate_partition(g, part, 8);
  EXPECT_EQ(q.nonempty_parts, 8);
  EXPECT_LT(q.imbalance, 0.20);  // refinement tolerance, not a hard bound
}

TEST(Partition, CutQualityOnGrid) {
  // 32x32 grid, 4 parts: ideal quadrant cut = 64 edges. Accept within 3x.
  const Csr g = grid_graph(32, 32);
  const auto part = partition(g, 4);
  const auto q = evaluate_partition(g, part, 4);
  EXPECT_LT(q.edge_cut, 3 * 64.0);
}

TEST(Partition, Cut3DGridScalesWithSurface) {
  const Csr g = grid3d(12);
  const auto part = partition(g, 8);
  const auto q = evaluate_partition(g, part, 8);
  // Ideal octant cut: 3 internal planes of 144 faces = 432. Allow 3x.
  EXPECT_LT(q.edge_cut, 3 * 432.0);
  EXPECT_EQ(q.nonempty_parts, 8);
}

TEST(Partition, MoreVerticesThanPartsDegenerate) {
  const Csr g = grid_graph(2, 2);  // 4 vertices
  const auto part = partition(g, 8);
  // One vertex per part, remaining parts empty (paper Sec. VI observes
  // empty coarse-level partitions).
  const auto q = evaluate_partition(g, part, 8);
  EXPECT_EQ(q.nonempty_parts, 4);
}

TEST(Partition, RespectsVertexWeights) {
  // Star of heavy vs light vertices: weighted balance should spread heavy
  // vertices across parts.
  Csr g = grid_graph(8, 8);
  std::vector<real_t> w(64, 1.0);
  for (int i = 0; i < 8; ++i) w[std::size_t(i)] = 20.0;  // heavy first row
  g.set_vertex_weights(std::move(w));
  const auto part = partition(g, 4);
  const auto q = evaluate_partition(g, part, 4);
  EXPECT_LT(q.imbalance, 0.5);
}

TEST(Partition, DeterministicWithSeed) {
  const Csr g = grid_graph(20, 20);
  PartitionOptions opt;
  opt.seed = 77;
  const auto a = partition(g, 4, opt);
  const auto b = partition(g, 4, opt);
  EXPECT_EQ(a, b);
}

TEST(Partition, EdgeWeightsSteerCut) {
  // Two 8x8 blocks joined by heavy edges: a 2-way partition should cut the
  // light internal edges rather than the heavy bridge.
  std::vector<Edge> edges;
  std::vector<real_t> w;
  auto id = [&](index_t i, index_t j) { return j * 16 + i; };
  for (index_t j = 0; j < 8; ++j)
    for (index_t i = 0; i < 16; ++i) {
      if (i + 1 < 16) {
        edges.emplace_back(id(i, j), id(i + 1, j));
        w.push_back(i == 7 ? 0.01 : 1.0);  // weak seam down the middle
      }
      if (j + 1 < 8) {
        edges.emplace_back(id(i, j), id(i, j + 1));
        w.push_back(1.0);
      }
    }
  const Csr g = Csr::from_weighted_edges(128, edges, w);
  const auto part = partition(g, 2);
  const auto q = evaluate_partition(g, part, 2);
  // Cutting the weak seam costs 8 * 0.01; anything near that is a win.
  EXPECT_LT(q.edge_cut, 4.0);
}

TEST(CommunicationGraph, GridQuadrants) {
  const Csr g = grid_graph(16, 16);
  // Hand-build a quadrant partition.
  std::vector<index_t> part(256);
  for (index_t j = 0; j < 16; ++j)
    for (index_t i = 0; i < 16; ++i)
      part[std::size_t(j * 16 + i)] = (j / 8) * 2 + (i / 8);
  const Csr cg = communication_graph(g, part, 4);
  EXPECT_EQ(cg.num_vertices(), 4);
  // Quadrants: each part talks to 2 side neighbors (no diagonal adjacency
  // in a 4-connected grid).
  for (index_t p = 0; p < 4; ++p) EXPECT_EQ(cg.degree(p), 2);
  // Each boundary has 8 cut edges.
  const auto ws = cg.edge_weights(0);
  for (real_t x : ws) EXPECT_DOUBLE_EQ(x, 8.0);
}

TEST(EvaluatePartition, CountsCutEdges) {
  const Csr g = grid_graph(4, 1);  // path of 4
  std::vector<index_t> part{0, 0, 1, 1};
  const auto q = evaluate_partition(g, part, 2);
  EXPECT_DOUBLE_EQ(q.edge_cut, 1.0);
  EXPECT_EQ(q.nonempty_parts, 2);
}

}  // namespace
}  // namespace columbia::graph
