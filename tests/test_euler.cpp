#include <gtest/gtest.h>

#include "euler/flux.hpp"
#include "support/random.hpp"

namespace columbia::euler {
namespace {

using geom::Vec3;

Prim random_state(Xoshiro256& rng) {
  return {rng.uniform(0.2, 3.0),
          {rng.uniform(-1.5, 1.5), rng.uniform(-1.5, 1.5),
           rng.uniform(-1.5, 1.5)},
          rng.uniform(0.2, 3.0)};
}

Vec3 random_unit(Xoshiro256& rng) {
  Vec3 n{rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1)};
  return normalized(n);
}

TEST(State, RoundTripConservativePrimitive) {
  Xoshiro256 rng(1);
  for (int i = 0; i < 100; ++i) {
    const Prim w = random_state(rng);
    const Prim back = to_primitive(to_conservative(w));
    EXPECT_NEAR(back.rho, w.rho, 1e-12);
    EXPECT_NEAR(back.p, w.p, 1e-11);
    EXPECT_NEAR(norm(back.vel - w.vel), 0.0, 1e-12);
  }
}

TEST(State, SoundSpeedAndMach) {
  const Prim w{1.0, {1.0, 0, 0}, 1.0 / kGamma};
  EXPECT_NEAR(w.sound_speed(), 1.0, 1e-14);
  EXPECT_NEAR(w.mach(), 1.0, 1e-14);
}

TEST(State, ValidityDetection) {
  const Prim ok{1.0, {0, 0, 0}, 1.0};
  EXPECT_TRUE(is_valid(to_conservative(ok)));
  Cons bad = to_conservative(ok);
  bad[0] = -1;
  EXPECT_FALSE(is_valid(bad));
  Cons neg_p = to_conservative(ok);
  neg_p[4] = 0;  // energy below kinetic => negative pressure
  EXPECT_FALSE(is_valid(neg_p));
}

TEST(State, FreestreamDirectionFromAngles) {
  FlowConditions fc;
  fc.mach = 2.0;
  fc.alpha_deg = 90.0;
  const Prim w = fc.freestream();
  EXPECT_NEAR(w.vel.z, 2.0, 1e-12);
  EXPECT_NEAR(w.vel.x, 0.0, 1e-12);
  EXPECT_NEAR(w.rho, 1.0, 1e-15);
  // Unit sound speed normalization.
  EXPECT_NEAR(w.sound_speed(), 1.0, 1e-12);
}

TEST(Flux, PhysicalFluxKnownValues) {
  // Static gas: only pressure terms.
  const Prim w{1.0, {0, 0, 0}, 2.0};
  const Cons f = physical_flux(w, {1, 0, 0});
  EXPECT_DOUBLE_EQ(f[0], 0.0);
  EXPECT_DOUBLE_EQ(f[1], 2.0);
  EXPECT_DOUBLE_EQ(f[4], 0.0);
}

class FluxSchemes : public ::testing::TestWithParam<FluxScheme> {};

TEST_P(FluxSchemes, ConsistencyFww) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 60; ++i) {
    const Prim w = random_state(rng);
    const Vec3 n = random_unit(rng);
    const Cons fn = numerical_flux(w, w, n, GetParam());
    const Cons fp = physical_flux(w, n);
    for (int c = 0; c < 5; ++c)
      EXPECT_NEAR(fn[std::size_t(c)], fp[std::size_t(c)], 1e-10)
          << "component " << c;
  }
}

TEST_P(FluxSchemes, ConservationAntisymmetry) {
  Xoshiro256 rng(8);
  for (int i = 0; i < 60; ++i) {
    const Prim l = random_state(rng);
    const Prim r = random_state(rng);
    const Vec3 n = random_unit(rng);
    const Cons f1 = numerical_flux(l, r, n, GetParam());
    const Cons f2 = numerical_flux(r, l, -n, GetParam());
    for (int c = 0; c < 5; ++c)
      EXPECT_NEAR(f1[std::size_t(c)], -f2[std::size_t(c)], 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, FluxSchemes,
                         ::testing::Values(FluxScheme::Roe,
                                           FluxScheme::VanLeer,
                                           FluxScheme::Rusanov));

/// Roe and van Leer are exactly upwind for supersonic flow; Rusanov keeps
/// its |lambda|max dissipation and is deliberately excluded.
class UpwindExact : public ::testing::TestWithParam<FluxScheme> {};

TEST_P(UpwindExact, SupersonicFullUpwind) {
  const Prim l{1.0, {3.0, 0, 0}, 1.0 / kGamma};
  const Prim r{0.5, {3.0, 0, 0}, 0.5 / kGamma};
  const Cons f = numerical_flux(l, r, {1, 0, 0}, GetParam());
  const Cons fl = physical_flux(l, {1, 0, 0});
  for (int c = 0; c < 5; ++c)
    EXPECT_NEAR(f[std::size_t(c)], fl[std::size_t(c)], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(ExactSchemes, UpwindExact,
                         ::testing::Values(FluxScheme::Roe,
                                           FluxScheme::VanLeer));

TEST(Flux, RoeCapturesContactExactly) {
  // Stationary contact: rho jumps, u = 0, p equal => Roe flux has zero
  // mass flux.
  const Prim l{1.0, {0, 0, 0}, 1.0};
  const Prim r{2.0, {0, 0, 0}, 1.0};
  const Cons f = numerical_flux(l, r, {1, 0, 0}, FluxScheme::Roe);
  EXPECT_NEAR(f[0], 0.0, 1e-12);
  EXPECT_NEAR(f[4], 0.0, 1e-12);
}

TEST(Flux, RusanovMoreDissipativeThanRoe) {
  const Prim l{1.0, {0.1, 0, 0}, 1.0};
  const Prim r{0.5, {0.1, 0, 0}, 0.4};
  const Cons froe = numerical_flux(l, r, {1, 0, 0}, FluxScheme::Roe);
  const Cons frus = numerical_flux(l, r, {1, 0, 0}, FluxScheme::Rusanov);
  // Dissipation shows up as a larger mass flux toward the low-density side.
  EXPECT_GT(frus[0], froe[0]);
}

TEST(Flux, WallFluxOnlyPressure) {
  const Prim w{1.0, {5, 5, 5}, 3.0};
  const Vec3 n{0, 0, 2.0};  // scaled normal (area included)
  const Cons f = wall_flux(w, n);
  EXPECT_DOUBLE_EQ(f[0], 0.0);
  EXPECT_DOUBLE_EQ(f[3], 6.0);
  EXPECT_DOUBLE_EQ(f[4], 0.0);
}

TEST(Flux, SpectralRadius) {
  const Prim w{1.0, {3, 0, 0}, 1.0 / kGamma};
  EXPECT_NEAR(spectral_radius(w, {1, 0, 0}), 4.0, 1e-12);
  EXPECT_NEAR(spectral_radius(w, {0, 1, 0}), 1.0, 1e-12);
}

TEST(Flux, FarfieldReducesToPhysicalWhenUniform) {
  const Prim w{1.0, {0.5, 0.1, 0}, 1.0 / kGamma};
  const Cons f = farfield_flux(w, w, {1, 0, 0}, FluxScheme::Roe);
  const Cons fp = physical_flux(w, {1, 0, 0});
  for (int c = 0; c < 5; ++c)
    EXPECT_NEAR(f[std::size_t(c)], fp[std::size_t(c)], 1e-10);
}

}  // namespace
}  // namespace columbia::euler
