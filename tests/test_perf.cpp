#include <gtest/gtest.h>

#include "mesh/builders.hpp"
#include "nsu3d/solver.hpp"
#include "perf/loads.hpp"

namespace columbia::perf {
namespace {

TEST(Eq1, FourNodesGives1524) {
  // The paper's practical statement of eq. (1): a pure MPI code on four
  // Columbia boxes can have at most 1524 MPI processes under InfiniBand.
  EXPECT_EQ(max_mpi_processes_infiniband(4), 1524);
}

TEST(Eq1, MonotoneInNodes) {
  // More boxes -> smaller sqrt(n/(n-1)) factor -> tighter per-pair budget.
  EXPECT_GT(max_mpi_processes_infiniband(2), max_mpi_processes_infiniband(3));
  EXPECT_GT(max_mpi_processes_infiniband(3), max_mpi_processes_infiniband(4));
  // One box needs no box-to-box IB connections at all.
  EXPECT_GT(max_mpi_processes_infiniband(1), 1 << 20);
}

TEST(MachineConfig, ColumbiaFacts) {
  const MachineConfig cfg;
  EXPECT_EQ(cfg.cpus_per_node, 512);
  EXPECT_EQ(cfg.num_nodes, 20);          // 10,240 CPUs total
  EXPECT_DOUBLE_EQ(cfg.clock_hz, 1.6e9); // BX2 nodes c17-c20
  EXPECT_DOUBLE_EQ(cfg.flops_per_cycle, 4);
  EXPECT_DOUBLE_EQ(cfg.l3_bytes, 9.0 * 1024 * 1024);
}

TEST(CycleVisits, WCycleDoubling) {
  const auto v = cycle_visits(6, true);
  ASSERT_EQ(v.size(), 6u);
  EXPECT_EQ(v[0], 1);
  EXPECT_EQ(v[1], 2);
  EXPECT_EQ(v[2], 4);
  EXPECT_EQ(v[3], 8);
  EXPECT_EQ(v[4], 16);
  EXPECT_EQ(v[5], 16);  // coarsest entered once per parent visit
}

TEST(CycleVisits, VCycleAllOnes) {
  const auto v = cycle_visits(4, false);
  for (index_t x : v) EXPECT_EQ(x, 1);
}

class ModelShapes : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    mesh::WingMeshSpec spec;
    spec.n_wrap = 32;
    spec.n_span = 6;
    spec.n_normal = 16;
    spec.wall_spacing = 1e-4;
    const auto m = mesh::make_wing_mesh(spec);
    nsu3d::LevelOptions lo;
    lo.num_levels = 5;
    levels_ = new std::vector<nsu3d::Level>(nsu3d::build_levels(m, lo));
    scale_ = 72.0e6 / real_t(m.num_points());
  }
  static void TearDownTestSuite() {
    delete levels_;
    levels_ = nullptr;
  }
  static std::vector<nsu3d::Level>* levels_;
  static real_t scale_;
};

std::vector<nsu3d::Level>* ModelShapes::levels_ = nullptr;
real_t ModelShapes::scale_ = 1;

TEST_F(ModelShapes, SuperlinearSpeedupOnNumaLink) {
  Nsu3dLoadModel lm(*levels_, scale_);
  MachineModel model;
  const auto visits = cycle_visits(lm.num_levels(), true);
  HybridLayout ref;
  ref.total_cpus = 128;
  auto ref_loads = lm.loads(128, visits);
  HybridLayout lay;
  lay.total_cpus = 2008;
  auto loads = lm.loads(2008, visits);
  const real_t sp = model.speedup(loads, lay, ref_loads, ref);
  // Paper Fig. 14b: 2044-2395 depending on level count.
  EXPECT_GT(sp, 2008.0);
  EXPECT_LT(sp, 2600.0);
}

TEST_F(ModelShapes, CycleTimeNearPaperAnchor) {
  // Paper Sec. VI: 1.95 s per six-level W-cycle at 2008 CPUs; ~31.3 s at
  // 128 CPUs. Within 30% counts as an absolute-scale match here.
  Nsu3dLoadModel lm(*levels_, scale_);
  MachineModel model;
  const auto visits = cycle_visits(lm.num_levels(), true);
  HybridLayout lay;
  lay.total_cpus = 2008;
  const auto ct = model.cycle_time(lm.loads(2008, visits), lay);
  EXPECT_GT(ct.total_s, 1.95 * 0.7);
  EXPECT_LT(ct.total_s, 1.95 * 1.3);
  HybridLayout small;
  small.total_cpus = 128;
  const auto ct128 = model.cycle_time(lm.loads(128, visits), small);
  EXPECT_GT(ct128.total_s, 31.3 * 0.7);
  EXPECT_LT(ct128.total_s, 31.3 * 1.3);
}

TEST_F(ModelShapes, TflopsNearPaper) {
  Nsu3dLoadModel lm(*levels_, scale_);
  MachineModel model;
  const auto visits = cycle_visits(lm.num_levels(), true);
  HybridLayout lay;
  lay.total_cpus = 2008;
  const auto ct = model.cycle_time(lm.loads(2008, visits), lay);
  // Paper: 2.8-3.4 TFLOP/s depending on level count.
  EXPECT_GT(ct.tflops(), 2.0);
  EXPECT_LT(ct.tflops(), 4.5);
}

TEST_F(ModelShapes, InfiniBandDegradesMultigridNotSingleGrid) {
  Nsu3dLoadModel lm(*levels_, scale_);
  MachineModel model;
  HybridLayout nl, ib;
  nl.total_cpus = ib.total_cpus = 2008;
  nl.fabric = Interconnect::NumaLink4;
  ib.fabric = Interconnect::InfiniBand;

  // Single grid: IB within a few percent of NUMAlink (Fig. 16a).
  const std::vector<index_t> v1{1};
  auto single = lm.loads(2008, v1, 1);
  const real_t t_nl_1 = model.cycle_time(single, nl).total_s;
  const real_t t_ib_1 = model.cycle_time(single, ib).total_s;
  EXPECT_LT(t_ib_1 / t_nl_1, 1.10);

  // Full multigrid: IB substantially slower (Fig. 16b). The magnitude
  // grows with the fixture mesh size (the bench fixture shows ~1.6x); the
  // small test mesh must still separate clearly from the single grid.
  const auto visits = cycle_visits(lm.num_levels(), true);
  auto mg = lm.loads(2008, visits);
  const real_t t_nl = model.cycle_time(mg, nl).total_s;
  const real_t t_ib = model.cycle_time(mg, ib).total_s;
  EXPECT_GT(t_ib / t_nl, 1.08);
  EXPECT_GT(t_ib / t_nl, (t_ib_1 / t_nl_1) * 1.05);
}

TEST_F(ModelShapes, DegradationGrowsWithLevelCount) {
  // Figs. 16-18: each added multigrid level worsens the IB/NUMAlink gap.
  Nsu3dLoadModel lm(*levels_, scale_);
  MachineModel model;
  HybridLayout nl, ib;
  nl.total_cpus = ib.total_cpus = 2008;
  nl.fabric = Interconnect::NumaLink4;
  ib.fabric = Interconnect::InfiniBand;
  real_t prev_gap = 0;
  for (int nlv = 1; nlv <= lm.num_levels(); ++nlv) {
    const auto visits = cycle_visits(nlv, true);
    auto loads = lm.loads(2008, visits, nlv);
    const real_t gap = model.cycle_time(loads, ib).total_s /
                       model.cycle_time(loads, nl).total_s;
    EXPECT_GE(gap, prev_gap - 0.02) << nlv << " levels";
    prev_gap = gap;
  }
  EXPECT_GT(prev_gap, 1.08);
}

TEST_F(ModelShapes, CoarseLevelAloneSimilarOnBothFabrics) {
  // Fig. 19: running the second or third grid alone, NUMAlink and IB
  // degrade at similar rates (no inter-grid traffic).
  Nsu3dLoadModel lm(*levels_, scale_);
  MachineModel model;
  HybridLayout nl, ib;
  nl.total_cpus = ib.total_cpus = 1004;
  nl.fabric = Interconnect::NumaLink4;
  ib.fabric = Interconnect::InfiniBand;
  const std::vector<index_t> v1{1};
  auto coarse = lm.loads(1004, v1, 1, /*first_level=*/1);
  const real_t t_nl = model.cycle_time(coarse, nl).total_s;
  const real_t t_ib = model.cycle_time(coarse, ib).total_s;
  EXPECT_LT(t_ib / t_nl, 1.15);
}

TEST_F(ModelShapes, HybridEfficiencyMatchesFig15Anchors) {
  // Fig. 15: at 128 CPUs on NUMAlink, 2 OpenMP threads per MPI process
  // give ~98.4% relative efficiency and 4 threads ~87.2%.
  Nsu3dLoadModel lm(*levels_, scale_);
  MachineModel model;
  const auto visits = cycle_visits(lm.num_levels(), true);
  HybridLayout base;
  base.total_cpus = 128;
  const real_t t1 = model.cycle_time(lm.loads(128, visits), base).total_s;

  HybridLayout two = base;
  two.omp_threads_per_mpi = 2;
  const real_t t2 = model.cycle_time(lm.loads(64, visits), two).total_s;
  EXPECT_NEAR(t1 / t2, 0.984, 0.02);

  HybridLayout four = base;
  four.omp_threads_per_mpi = 4;
  const real_t t4 = model.cycle_time(lm.loads(32, visits), four).total_s;
  EXPECT_NEAR(t1 / t4, 0.872, 0.04);
}

TEST(ScaleLoads, VolumeAndSurfaceExponents) {
  std::vector<LevelLoad> loads(1);
  loads[0].max_work_items = 1000;
  loads[0].max_halo_items = 100;
  loads[0].intergrid_items = 10;
  const auto s = scale_loads(loads, 8.0);
  EXPECT_DOUBLE_EQ(s[0].max_work_items, 8000);
  EXPECT_DOUBLE_EQ(s[0].max_halo_items, 400);  // 8^(2/3) = 4
  EXPECT_DOUBLE_EQ(s[0].intergrid_items, 40);
}

}  // namespace
}  // namespace columbia::perf
