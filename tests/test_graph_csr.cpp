#include <gtest/gtest.h>

#include <algorithm>

#include "graph/coloring.hpp"
#include "graph/csr.hpp"
#include "graph/rcm.hpp"
#include "support/random.hpp"

namespace columbia::graph {
namespace {

using Edge = std::pair<index_t, index_t>;

Csr path_graph(index_t n) {
  std::vector<Edge> edges;
  for (index_t i = 0; i + 1 < n; ++i) edges.emplace_back(i, i + 1);
  return Csr::from_edges(n, edges);
}

Csr grid_graph(index_t nx, index_t ny) {
  std::vector<Edge> edges;
  auto id = [&](index_t i, index_t j) { return j * nx + i; };
  for (index_t j = 0; j < ny; ++j)
    for (index_t i = 0; i < nx; ++i) {
      if (i + 1 < nx) edges.emplace_back(id(i, j), id(i + 1, j));
      if (j + 1 < ny) edges.emplace_back(id(i, j), id(i, j + 1));
    }
  return Csr::from_edges(nx * ny, edges);
}

TEST(Csr, BuildsFromEdges) {
  const Csr g = path_graph(4);
  EXPECT_EQ(g.num_vertices(), 4);
  EXPECT_EQ(g.num_directed_edges(), 6);
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_EQ(g.degree(1), 2);
}

TEST(Csr, DropsSelfLoops) {
  std::vector<Edge> edges{{0, 0}, {0, 1}};
  const Csr g = Csr::from_edges(2, edges);
  EXPECT_EQ(g.num_directed_edges(), 2);
}

TEST(Csr, NeighborsSymmetric) {
  const Csr g = grid_graph(5, 5);
  for (index_t v = 0; v < g.num_vertices(); ++v)
    for (index_t u : g.neighbors(v)) {
      const auto nb = g.neighbors(u);
      EXPECT_NE(std::find(nb.begin(), nb.end(), v), nb.end());
    }
}

TEST(Csr, EdgeWeightsRoundTrip) {
  std::vector<Edge> edges{{0, 1}, {1, 2}};
  std::vector<real_t> w{2.5, 4.0};
  const Csr g = Csr::from_weighted_edges(3, edges, w);
  ASSERT_TRUE(g.has_edge_weights());
  // Vertex 1 sees both weights.
  const auto ws = g.edge_weights(1);
  real_t sum = 0;
  for (real_t x : ws) sum += x;
  EXPECT_DOUBLE_EQ(sum, 6.5);
}

TEST(Csr, VertexWeightDefaultsToOne) {
  const Csr g = path_graph(3);
  EXPECT_DOUBLE_EQ(g.vertex_weight(0), 1.0);
  EXPECT_DOUBLE_EQ(g.total_vertex_weight(), 3.0);
}

TEST(Csr, MaxDegreeOfGrid) {
  const Csr g = grid_graph(4, 4);
  EXPECT_EQ(g.max_degree(), 4);
}

TEST(Csr, EmptyGraph) {
  const Csr g = Csr::from_edges(0, {});
  EXPECT_EQ(g.num_vertices(), 0);
  EXPECT_EQ(g.num_directed_edges(), 0);
}

TEST(Csr, PermutePreservesStructure) {
  const Csr g = grid_graph(3, 3);
  std::vector<index_t> perm(9);
  for (index_t i = 0; i < 9; ++i) perm[std::size_t(i)] = 8 - i;
  const Csr p = permute(g, perm);
  EXPECT_EQ(p.num_vertices(), g.num_vertices());
  EXPECT_EQ(p.num_directed_edges(), g.num_directed_edges());
  // Degree multiset preserved.
  std::vector<index_t> dg, dp;
  for (index_t v = 0; v < 9; ++v) {
    dg.push_back(g.degree(v));
    dp.push_back(p.degree(v));
  }
  std::sort(dg.begin(), dg.end());
  std::sort(dp.begin(), dp.end());
  EXPECT_EQ(dg, dp);
}

TEST(Rcm, ReducesEdgeSpanOnShuffledGrid) {
  const Csr g = grid_graph(20, 20);
  // Shuffle, then RCM should bring mean edge span near the grid's natural
  // bandwidth (~nx).
  std::vector<index_t> shuffle(400);
  for (index_t i = 0; i < 400; ++i) shuffle[std::size_t(i)] = i;
  Xoshiro256 rng(99);
  for (index_t i = 399; i > 0; --i)
    std::swap(shuffle[std::size_t(i)],
              shuffle[std::size_t(rng.below(std::uint64_t(i) + 1))]);
  const Csr shuffled = permute(g, shuffle);
  const double before = mean_edge_span(shuffled);
  const auto order = reverse_cuthill_mckee(shuffled);
  const Csr reordered = permute(shuffled, order);
  const double after = mean_edge_span(reordered);
  EXPECT_LT(after, before * 0.3);
  EXPECT_LT(after, 40);
}

TEST(Rcm, IsAPermutation) {
  const Csr g = grid_graph(7, 5);
  const auto order = reverse_cuthill_mckee(g);
  std::vector<index_t> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  for (index_t i = 0; i < 35; ++i) EXPECT_EQ(sorted[std::size_t(i)], i);
}

TEST(Rcm, HandlesDisconnectedComponents) {
  std::vector<Edge> edges{{0, 1}, {2, 3}, {4, 5}};
  const Csr g = Csr::from_edges(6, edges);
  const auto order = reverse_cuthill_mckee(g);
  EXPECT_EQ(order.size(), 6u);
}

TEST(Coloring, ProperVertexColoring) {
  const Csr g = grid_graph(10, 10);
  const auto color = greedy_color(g);
  for (index_t v = 0; v < g.num_vertices(); ++v)
    for (index_t u : g.neighbors(v))
      EXPECT_NE(color[std::size_t(v)], color[std::size_t(u)]);
  // Grid is bipartite: greedy should use few colors.
  EXPECT_LE(num_colors(color), 5);
}

TEST(Coloring, EdgeColoringConflictFree) {
  std::vector<Edge> edges;
  auto id = [&](index_t i, index_t j) { return j * 6 + i; };
  for (index_t j = 0; j < 6; ++j)
    for (index_t i = 0; i < 6; ++i) {
      if (i + 1 < 6) edges.emplace_back(id(i, j), id(i + 1, j));
      if (j + 1 < 6) edges.emplace_back(id(i, j), id(i, j + 1));
    }
  const auto color = color_edges(36, edges);
  // No two same-colored edges may share a vertex.
  for (std::size_t a = 0; a < edges.size(); ++a)
    for (std::size_t b = a + 1; b < edges.size(); ++b) {
      if (color[a] != color[b]) continue;
      EXPECT_TRUE(edges[a].first != edges[b].first &&
                  edges[a].first != edges[b].second &&
                  edges[a].second != edges[b].first &&
                  edges[a].second != edges[b].second);
    }
  // Max degree 4 grid: first-fit stays within 2*Delta-1 = 7.
  EXPECT_LE(num_colors(color), 7);
}

TEST(MeanEdgeSpan, PathIsOne) {
  EXPECT_DOUBLE_EQ(mean_edge_span(path_graph(10)), 1.0);
}

}  // namespace
}  // namespace columbia::graph
