// Observability layer: span buffers, metrics registry, JSON writer, and
// exporter schemas. The concurrency tests (many threads recording spans
// and bumping counters at once) carry the tsan label together with the
// rest of this binary — run under -DCOLUMBIA_SANITIZE=thread to check the
// lock-free buffer publication.
#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "obs/obs.hpp"
#include "smp/pool.hpp"

namespace columbia {
namespace {

/// Minimal recursive-descent JSON validator — enough to assert that the
/// exporters emit well-formed documents without adding a parser
/// dependency. Returns true iff `s` is exactly one valid JSON value.
class JsonValidator {
 public:
  static bool valid(const std::string& s) {
    JsonValidator v(s);
    v.skip_ws();
    if (!v.value()) return false;
    v.skip_ws();
    return v.p_ == s.size();
  }

 private:
  explicit JsonValidator(const std::string& s) : s_(s) {}

  bool value() {
    if (p_ >= s_.size()) return false;
    switch (s_[p_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++p_;  // '{'
    skip_ws();
    if (peek() == '}') { ++p_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++p_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++p_; continue; }
      if (peek() == '}') { ++p_; return true; }
      return false;
    }
  }
  bool array() {
    ++p_;  // '['
    skip_ws();
    if (peek() == ']') { ++p_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++p_; continue; }
      if (peek() == ']') { ++p_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++p_;
    while (p_ < s_.size() && s_[p_] != '"') {
      if (s_[p_] == '\\') ++p_;
      ++p_;
    }
    if (p_ >= s_.size()) return false;
    ++p_;  // closing quote
    return true;
  }
  bool number() {
    const std::size_t start = p_;
    if (peek() == '-') ++p_;
    while (p_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[p_])) ||
            s_[p_] == '.' || s_[p_] == 'e' || s_[p_] == 'E' ||
            s_[p_] == '+' || s_[p_] == '-'))
      ++p_;
    return p_ > start;
  }
  bool literal(const char* lit) {
    const std::string l(lit);
    if (s_.compare(p_, l.size(), l) != 0) return false;
    p_ += l.size();
    return true;
  }
  char peek() const { return p_ < s_.size() ? s_[p_] : '\0'; }
  void skip_ws() {
    while (p_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[p_])))
      ++p_;
  }

  const std::string& s_;
  std::size_t p_ = 0;
};

/// Restores a clean observability state when a test exits.
struct ObsGuard {
  ~ObsGuard() {
    obs::set_enabled(false);
    obs::reset_trace();
    obs::reset_metrics();
    smp::set_global_threads(1);
  }
};

TEST(JsonWriterTest, NestedDocumentWellFormed) {
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.begin_object();
  w.kv("name", "a \"quoted\"\nvalue");
  w.kv("count", std::uint64_t(42));
  w.kv("pi", 3.14159);
  w.kv("bad", std::nan(""));  // non-finite -> null
  w.key("list");
  w.begin_array();
  w.value(1);
  w.value("two");
  w.begin_object();
  w.kv("ok", true);
  w.end_object();
  w.end_array();
  w.end_object();
  const std::string doc = os.str();
  EXPECT_TRUE(JsonValidator::valid(doc)) << doc;
  EXPECT_NE(doc.find("\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(doc.find("\"bad\":null"), std::string::npos);
}

TEST(JsonWriterTest, EscapeControlCharacters) {
  EXPECT_EQ(obs::JsonWriter::escape(std::string("a\tb\x01")), "a\\tb\\u0001");
}

TEST(ObsTest, DisabledByDefault) {
  // The runtime flag defaults to off (unless COLUMBIA_TRACE is set, which
  // the test environment does not do), and recording while disabled is a
  // no-op.
  if (!obs::kCompiledIn) GTEST_SKIP() << "observability compiled out";
  EXPECT_FALSE(obs::enabled());
  obs::reset_trace();
  {
    OBS_SPAN("obs_test.disabled");
    OBS_COUNT("obs_test.disabled", 1);
  }
  EXPECT_EQ(obs::num_trace_events(), 0u);
}

TEST(ObsTest, CompiledOutExportsEmptyDocuments) {
  if (obs::kCompiledIn) GTEST_SKIP() << "only meaningful with COLUMBIA_OBS=OFF";
  obs::set_enabled(true);
  EXPECT_FALSE(obs::enabled());
  { OBS_SPAN("obs_test.off"); }
  EXPECT_EQ(obs::num_trace_events(), 0u);
  std::ostringstream os;
  obs::write_chrome_trace(os);
  EXPECT_TRUE(JsonValidator::valid(os.str())) << os.str();
}

TEST(ObsTest, SpanRecordingAndSnapshot) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "observability compiled out";
  ObsGuard guard;
  obs::reset_trace();
  obs::set_enabled(true);
  {
    OBS_SPAN("obs_test.outer", "level", 3);
    OBS_SPAN("obs_test.inner");
  }
  ASSERT_EQ(obs::num_trace_events(), 4u);
  const auto events = obs::trace_snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(std::string(events[0].name), "obs_test.outer");
  EXPECT_EQ(events[0].phase, 'B');
  ASSERT_EQ(events[0].nargs, 1);
  EXPECT_EQ(std::string(events[0].args[0].name), "level");
  EXPECT_EQ(events[0].args[0].value, 3);
  EXPECT_EQ(events[0].arg_or("level", -1), 3);
  EXPECT_EQ(events[0].arg_or("rank", -1), -1);
  // Destruction order closes inner before outer.
  EXPECT_EQ(std::string(events[2].name), "obs_test.inner");
  EXPECT_EQ(events[2].phase, 'E');
  EXPECT_EQ(std::string(events[3].name), "obs_test.outer");
  EXPECT_EQ(events[3].phase, 'E');
}

TEST(ObsTest, SpanCloseIsIdempotent) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "observability compiled out";
  ObsGuard guard;
  obs::reset_trace();
  obs::set_enabled(true);
  {
    obs::SpanGuard span("obs_test.close");
    span.close();
    span.close();  // second close records nothing
  }                // destructor records nothing either
  EXPECT_EQ(obs::num_trace_events(), 2u);
}

TEST(ObsTest, SpanClosesWhenDisabledMidSpan) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "observability compiled out";
  ObsGuard guard;
  obs::reset_trace();
  obs::set_enabled(true);
  {
    OBS_SPAN("obs_test.mid");
    obs::set_enabled(false);
  }  // the end event still pairs with the begin
  const auto events = obs::trace_snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].phase, 'B');
  EXPECT_EQ(events[1].phase, 'E');
}

TEST(ObsTest, ChromeTraceExportParsesAndBalances) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "observability compiled out";
  ObsGuard guard;
  obs::reset_trace();
  obs::set_enabled(true);
  constexpr int kThreads = 8;
  constexpr int kSpans = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([] {
      for (int i = 0; i < kSpans; ++i) {
        OBS_SPAN("obs_test.worker", "i", i);
        OBS_SPAN("obs_test.nested");
      }
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(obs::num_trace_events(), std::size_t(kThreads) * kSpans * 4);

  std::ostringstream os;
  obs::write_chrome_trace(os);
  EXPECT_TRUE(JsonValidator::valid(os.str()));
  EXPECT_NE(os.str().find("\"traceEvents\""), std::string::npos);

  // Balanced, properly nested begin/end per thread.
  std::map<std::uint32_t, int> depth;
  for (const obs::TraceEvent& e : obs::trace_snapshot()) {
    if (e.phase == 'B') ++depth[e.tid];
    if (e.phase == 'E') {
      --depth[e.tid];
      ASSERT_GE(depth[e.tid], 0);
    }
  }
  for (const auto& [tid, d] : depth) EXPECT_EQ(d, 0) << "tid " << tid;
}

TEST(ObsTest, CountersConcurrent) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "observability compiled out";
  ObsGuard guard;
  obs::set_enabled(true);
  obs::Counter& c = obs::counter("obs_test.concurrent");
  c.reset();
  constexpr int kThreads = 8;
  constexpr int kAdds = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&c] {
      for (int i = 0; i < kAdds; ++i) c.add(1);
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), std::uint64_t(kThreads) * kAdds);
  // Same entry on every lookup.
  EXPECT_EQ(&obs::counter("obs_test.concurrent"), &c);
}

TEST(ObsTest, CounterGatedByRuntimeFlag) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "observability compiled out";
  ObsGuard guard;
  obs::set_enabled(true);
  obs::Counter& c = obs::counter("obs_test.gated");
  c.reset();
  c.add(5);
  obs::set_enabled(false);
  c.add(7);  // ignored
  EXPECT_EQ(c.value(), 5u);
}

TEST(ObsTest, HistogramBuckets) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "observability compiled out";
  ObsGuard guard;
  obs::set_enabled(true);
  EXPECT_EQ(obs::Histogram::bucket_of(0), 0);
  EXPECT_EQ(obs::Histogram::bucket_of(1), 1);
  EXPECT_EQ(obs::Histogram::bucket_of(2), 2);
  EXPECT_EQ(obs::Histogram::bucket_of(3), 2);
  EXPECT_EQ(obs::Histogram::bucket_of(4), 3);
  EXPECT_EQ(obs::Histogram::bucket_of(std::uint64_t(1) << 63), 64);
  EXPECT_EQ(obs::Histogram::bucket_of(~std::uint64_t(0)), 64);

  obs::Histogram& h = obs::histogram("obs_test.hist");
  h.reset();
  h.observe(0);
  h.observe(3);
  h.observe(3);
  h.observe(1024);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 1030u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(2), 2u);
  EXPECT_EQ(h.bucket(11), 1u);
  EXPECT_DOUBLE_EQ(h.mean(), 1030.0 / 4.0);
}

TEST(ObsTest, HistogramBucketEdgesPinned) {
  // Regression pin for the log2 bucketing boundaries (audited 2026-08):
  // bucket 0 holds exactly zero; bucket i>=1 is [2^(i-1), 2^i). An exact
  // power of two 2^k is the *lower* edge of bucket k+1, never the top of
  // bucket k.
  if (!obs::kCompiledIn) GTEST_SKIP() << "observability compiled out";
  for (int k = 0; k < 63; ++k) {
    const std::uint64_t pow2 = std::uint64_t(1) << k;
    EXPECT_EQ(obs::Histogram::bucket_of(pow2), k + 1) << "2^" << k;
    EXPECT_EQ(obs::Histogram::bucket_of(pow2 + (pow2 >> 1)), k + 1)
        << "1.5 * 2^" << k;
    if (k > 0)
      EXPECT_EQ(obs::Histogram::bucket_of(pow2 - 1), k) << "2^" << k << "-1";
  }
  EXPECT_EQ(obs::Histogram::bucket_of(0), 0);
  EXPECT_EQ(obs::Histogram::bucket_of(std::uint64_t(1) << 63), 64);
  EXPECT_EQ(obs::Histogram::bucket_of(~std::uint64_t(0)), 64);
}

TEST(ObsTest, HistogramExportedEdgesMatchBucketing) {
  // The [lo, hi] edges the JSON export prints must agree with bucket_of:
  // every observed value lands inside its printed interval, and the edges
  // of adjacent buckets tile without gap or overlap.
  if (!obs::kCompiledIn) GTEST_SKIP() << "observability compiled out";
  ObsGuard guard;
  obs::set_enabled(true);
  obs::Histogram& h = obs::histogram("obs_test.edges");
  h.reset();
  h.observe(0);                        // bucket 0: [0, 0]
  h.observe(1);                        // bucket 1: [1, 1]
  h.observe(2);                        // bucket 2: [2, 3]
  h.observe(4);                        // bucket 3: [4, 7]
  h.observe(7);                        // bucket 3 again (top edge)
  h.observe(8);                        // bucket 4: [8, 15]
  h.observe(std::uint64_t(1) << 63);   // bucket 64: [2^63, 2^64 - 1]
  std::ostringstream os;
  obs::write_metrics_json(os);
  const std::string doc = os.str();
  EXPECT_NE(doc.find("\"obs_test.edges\""), std::string::npos) << doc;
  EXPECT_NE(doc.find("[0,0,1]"), std::string::npos) << doc;
  EXPECT_NE(doc.find("[1,1,1]"), std::string::npos) << doc;
  EXPECT_NE(doc.find("[2,3,1]"), std::string::npos) << doc;
  EXPECT_NE(doc.find("[4,7,2]"), std::string::npos) << doc;
  EXPECT_NE(doc.find("[8,15,1]"), std::string::npos) << doc;
  EXPECT_NE(doc.find("[9223372036854775808,18446744073709551615,1]"),
            std::string::npos)
      << doc;
}

TEST(ObsTest, MetricsJsonExportParses) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "observability compiled out";
  ObsGuard guard;
  obs::set_enabled(true);
  obs::counter("obs_test.export.c").add(3);
  obs::gauge("obs_test.export.g").set(-7);
  obs::histogram("obs_test.export.h").observe(100);
  std::ostringstream os;
  obs::write_metrics_json(os);
  const std::string doc = os.str();
  EXPECT_TRUE(JsonValidator::valid(doc)) << doc;
  EXPECT_NE(doc.find("\"obs_test.export.c\":3"), std::string::npos);
  EXPECT_NE(doc.find("\"obs_test.export.g\":-7"), std::string::npos);
}

TEST(ObsTest, PoolPublishesThreadStats) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "observability compiled out";
  ObsGuard guard;
  obs::set_enabled(true);
  smp::ThreadPool& pool = smp::ThreadPool::global();
  smp::set_global_threads(4);
  pool.reset_stats();
  std::vector<int> data(4096, 0);
  pool.parallel_for(0, data.size(), 64,
                    [&](std::size_t b, std::size_t e, int) {
                      for (std::size_t i = b; i < e; ++i) data[i] = 1;
                    });
  const auto stats = pool.thread_stats();
  ASSERT_EQ(stats.size(), 4u);
  std::uint64_t total_chunks = 0;
  for (const auto& s : stats) total_chunks += s.chunks;
  EXPECT_EQ(total_chunks, 4096u / 64u);
  pool.publish_stats();
  EXPECT_EQ(obs::gauge("pool.threads").value(), 4);
  std::uint64_t published = 0;
  for (int t = 0; t < 4; ++t)
    published += std::uint64_t(
        obs::gauge("pool.thread" + std::to_string(t) + ".chunks").value());
  EXPECT_EQ(published, total_chunks);
}

TEST(ObsTest, ResetTraceKeepsBuffersValid) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "observability compiled out";
  ObsGuard guard;
  obs::reset_trace();
  obs::set_enabled(true);
  { OBS_SPAN("obs_test.first"); }
  EXPECT_EQ(obs::num_trace_events(), 2u);
  obs::reset_trace();
  EXPECT_EQ(obs::num_trace_events(), 0u);
  { OBS_SPAN("obs_test.second"); }  // same thread-local buffer, reused
  EXPECT_EQ(obs::num_trace_events(), 2u);
  EXPECT_EQ(std::string(obs::trace_snapshot()[0].name), "obs_test.second");
}

}  // namespace
}  // namespace columbia
