// Performance-observatory tests: the JSON parser, the phase-profile
// aggregator, the columbia_report CLI (golden outputs from the committed
// fixtures in tests/data/), and the perf-regression gate's exit codes.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/json_parse.hpp"
#include "obs/obs.hpp"
#include "obs/report_cli.hpp"

namespace columbia {
namespace {

std::string fixture(const std::string& name) {
  return std::string(COLUMBIA_TEST_DATA_DIR) + "/" + name;
}

struct CliResult {
  int exit_code;
  std::string out, err;
};

CliResult run_cli(std::vector<std::string> args) {
  std::ostringstream out, err;
  const int code = obs::report::run(args, out, err);
  return {code, out.str(), err.str()};
}

// --- JSON parser ----------------------------------------------------------

TEST(JsonParseTest, Scalars) {
  obs::JsonValue v;
  ASSERT_TRUE(obs::parse_json("null", v));
  EXPECT_TRUE(v.is_null());
  ASSERT_TRUE(obs::parse_json("true", v));
  EXPECT_TRUE(v.boolean());
  ASSERT_TRUE(obs::parse_json("-12.5e2", v));
  EXPECT_DOUBLE_EQ(v.number(), -1250.0);
  ASSERT_TRUE(obs::parse_json("\"hi\"", v));
  EXPECT_EQ(v.str(), "hi");
}

TEST(JsonParseTest, NestedContainers) {
  obs::JsonValue v;
  ASSERT_TRUE(obs::parse_json(R"({"a":[1,2,{"b":null}],"c":{"d":false}})", v));
  const obs::JsonValue* a = v.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->items().size(), 3u);
  EXPECT_DOUBLE_EQ(a->items()[1].number(), 2.0);
  EXPECT_TRUE(a->items()[2].find("b")->is_null());
  EXPECT_FALSE(v.find("c")->find("d")->boolean());
}

TEST(JsonParseTest, StringEscapes) {
  obs::JsonValue v;
  ASSERT_TRUE(obs::parse_json(R"("a\"b\\c\nd\teA")", v));
  EXPECT_EQ(v.str(), "a\"b\\c\nd\teA");
  // Surrogate pair: U+1F600 -> 4-byte UTF-8.
  ASSERT_TRUE(obs::parse_json(R"("😀")", v));
  EXPECT_EQ(v.str(), "\xF0\x9F\x98\x80");
}

TEST(JsonParseTest, RejectsMalformed) {
  obs::JsonValue v;
  std::string err;
  EXPECT_FALSE(obs::parse_json("{\"a\":}", v, &err));
  EXPECT_FALSE(err.empty());
  EXPECT_FALSE(obs::parse_json("[1,2", v));
  EXPECT_FALSE(obs::parse_json("12 34", v));  // trailing garbage
  EXPECT_FALSE(obs::parse_json("", v));
}

TEST(JsonParseTest, JsonlKeepsParsedPrefixOfTruncatedStream) {
  // A telemetry stream cut mid-write: the tail line is incomplete.
  const std::string text =
      "{\"cycle\":1}\n{\"cycle\":2}\n{\"cyc";
  std::string err;
  const std::vector<obs::JsonValue> recs = obs::parse_jsonl(text, &err);
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_DOUBLE_EQ(recs[1].number_or("cycle", 0), 2.0);
}

// --- JsonWriter edge cases (round-trip through the parser) ----------------

TEST(JsonWriterTest, EscapesRoundTrip) {
  std::ostringstream os;
  {
    obs::JsonWriter w(os);
    w.begin_object();
    w.kv("k", std::string("quote\" slash\\ nl\n tab\t ctl\x01"));
    w.end_object();
  }
  obs::JsonValue v;
  ASSERT_TRUE(obs::parse_json(os.str(), v)) << os.str();
  EXPECT_EQ(v.string_or("k", ""), "quote\" slash\\ nl\n tab\t ctl\x01");
}

TEST(JsonWriterTest, NanAndInfBecomeNull) {
  std::ostringstream os;
  {
    obs::JsonWriter w(os);
    w.begin_object();
    w.kv("nan", std::numeric_limits<double>::quiet_NaN());
    w.kv("inf", std::numeric_limits<double>::infinity());
    w.kv("ninf", -std::numeric_limits<double>::infinity());
    w.kv("ok", 2.5);
    w.end_object();
  }
  obs::JsonValue v;
  ASSERT_TRUE(obs::parse_json(os.str(), v)) << os.str();
  EXPECT_TRUE(v.find("nan")->is_null());
  EXPECT_TRUE(v.find("inf")->is_null());
  EXPECT_TRUE(v.find("ninf")->is_null());
  EXPECT_DOUBLE_EQ(v.number_or("ok", 0), 2.5);
}

TEST(JsonWriterTest, DoublesRoundTripAtTenDigits) {
  // The writer deliberately emits %.10g (see json.hpp): values with up to
  // 10 significant digits round-trip exactly; beyond that is out of
  // contract.
  std::ostringstream os;
  {
    obs::JsonWriter w(os);
    w.begin_array();
    w.value(12345678.25);
    w.value(1e-300);
    w.value(-0.001);
    w.end_array();
  }
  obs::JsonValue v;
  ASSERT_TRUE(obs::parse_json(os.str(), v));
  EXPECT_DOUBLE_EQ(v.items()[0].number(), 12345678.25);
  EXPECT_DOUBLE_EQ(v.items()[1].number(), 1e-300);
  EXPECT_DOUBLE_EQ(v.items()[2].number(), -0.001);
}

// --- phase-profile aggregation --------------------------------------------

obs::PhaseEvent ev(const char* name, char ph, double ts_us, int tid,
                   std::int64_t level = -1) {
  obs::PhaseEvent e;
  e.name = name;
  e.phase = ph;
  e.ts_us = ts_us;
  e.tid = tid;
  e.level = level;
  return e;
}

TEST(PhaseProfileTest, ExclusiveTimeSubtractsChildren) {
  // outer [0,100] with child inner [20,50]: exclusive outer = 70us.
  const std::vector<obs::PhaseEvent> events = {
      ev("outer", 'B', 0, 0),
      ev("inner", 'B', 20, 0),
      ev("inner", 'E', 50, 0),
      ev("outer", 'E', 100, 0),
  };
  const obs::PhaseProfile p = obs::build_profile(events);
  ASSERT_EQ(p.phases.size(), 2u);
  // Sorted by total_s descending: outer 70us, inner 30us.
  EXPECT_EQ(p.phases[0].phase, "outer");
  EXPECT_NEAR(p.phases[0].total_s, 70e-6, 1e-12);
  EXPECT_EQ(p.phases[1].phase, "inner");
  EXPECT_NEAR(p.phases[1].total_s, 30e-6, 1e-12);
  EXPECT_NEAR(p.busy_s, 100e-6, 1e-12);
  EXPECT_NEAR(p.wall_s, 100e-6, 1e-12);
}

TEST(PhaseProfileTest, ImbalanceIsMaxOverMeanAcrossThreads) {
  // tid0 does 30us of work, tid1 does 10us: imbalance = 30 / 20 = 1.5.
  const std::vector<obs::PhaseEvent> events = {
      ev("work", 'B', 0, 0), ev("work", 'E', 30, 0),
      ev("work", 'B', 0, 1), ev("work", 'E', 10, 1),
  };
  const obs::PhaseProfile p = obs::build_profile(events);
  ASSERT_EQ(p.phases.size(), 1u);
  EXPECT_EQ(p.phases[0].threads, 2);
  EXPECT_NEAR(p.phases[0].imbalance, 1.5, 1e-12);
}

TEST(PhaseProfileTest, CommFractionAndCriticalPath) {
  const std::vector<obs::PhaseEvent> events = {
      ev("solver.smooth", 'B', 0, 0),  ev("solver.smooth", 'E', 60, 0),
      ev("halo.exchange", 'B', 60, 0), ev("halo.exchange", 'E', 100, 0),
      ev("solver.smooth", 'B', 0, 1),  ev("solver.smooth", 'E', 90, 1),
      ev("halo.exchange", 'B', 90, 1), ev("halo.exchange", 'E', 100, 1),
  };
  const obs::PhaseProfile p = obs::build_profile(events);
  // comm = 40 + 10 = 50us of 200us busy.
  EXPECT_NEAR(p.comm_s, 50e-6, 1e-12);
  EXPECT_NEAR(p.comm_fraction, 0.25, 1e-12);
  ASSERT_EQ(p.comm_per_thread.size(), 2u);
  double crit = 0;
  for (double s : p.comm_per_thread) crit = std::max(crit, s);
  EXPECT_NEAR(crit, 40e-6, 1e-12);  // busiest thread's halo time
}

TEST(PhaseProfileTest, LevelRollupFromSpanArgs) {
  const std::vector<obs::PhaseEvent> events = {
      ev("s.level", 'B', 0, 0, 0),  ev("s.level", 'E', 80, 0),
      ev("s.level", 'B', 80, 0, 1), ev("s.level", 'E', 100, 0),
  };
  const obs::PhaseProfile p = obs::build_profile(events);
  ASSERT_EQ(p.levels.size(), 2u);
  EXPECT_EQ(p.levels[0].level, 0);
  EXPECT_NEAR(p.levels[0].total_s, 80e-6, 1e-12);
  EXPECT_EQ(p.levels[1].level, 1);
  EXPECT_NEAR(p.levels[1].total_s, 20e-6, 1e-12);
}

TEST(PhaseProfileTest, UnmatchedEdgesOfWindowAreDropped) {
  // An 'E' with no 'B' (span began before the window) and a 'B' with no
  // 'E' (window closed mid-span) contribute nothing.
  const std::vector<obs::PhaseEvent> events = {
      ev("pre", 'E', 10, 0),
      ev("work", 'B', 20, 0),
      ev("work", 'E', 50, 0),
      ev("post", 'B', 60, 0),
  };
  const obs::PhaseProfile p = obs::build_profile(events);
  ASSERT_EQ(p.phases.size(), 1u);
  EXPECT_EQ(p.phases[0].phase, "work");
  EXPECT_NEAR(p.busy_s, 30e-6, 1e-12);
}

TEST(PhaseProfileTest, P95IsNearestRank) {
  std::vector<obs::PhaseEvent> events;
  // 100 instances of 1..100us: p95 (nearest-rank) = 95us.
  for (int i = 1; i <= 100; ++i) {
    events.push_back(ev("k", 'B', i * 1000.0, 0));
    events.push_back(ev("k", 'E', i * 1000.0 + i, 0));
  }
  const obs::PhaseProfile p = obs::build_profile(events);
  ASSERT_EQ(p.phases.size(), 1u);
  EXPECT_NEAR(p.phases[0].p95_s, 95e-6, 1e-12);
}

// --- columbia_report CLI: golden outputs from committed fixtures ----------

TEST(ReportCliTest, ScalingSeriesReproducesEfficiencyTable) {
  const CliResult r = run_cli({fixture("trace_t1.json"),
                               fixture("trace_t2.json"),
                               fixture("trace_t4.json")});
  EXPECT_EQ(r.exit_code, obs::report::kOk) << r.err;
  // The hand-authored fixtures encode wall times 8.0 / 5.0 / 2.5 s, i.e.
  // speedups 1.0 / 1.6 / 3.2 and parallel efficiencies 1.0 / 0.8 / 0.8 —
  // the Fig. 15-style table.
  EXPECT_NE(r.out.find("== scaling series"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("1        8.0000  1.000    1.000  1.000       0.125"),
            std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find("2        5.0000  1.600    2.000  0.800       0.150"),
            std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find("4        2.5000  3.200    4.000  0.800       0.200"),
            std::string::npos)
      << r.out;
}

TEST(ReportCliTest, PerLevelImbalanceFactorsFromTrace) {
  const CliResult r = run_cli({fixture("trace_t2.json")});
  EXPECT_EQ(r.exit_code, obs::report::kOk) << r.err;
  // trace_t2: level 0 per-thread {3.0, 2.0} s -> imbalance 1.20; level 1
  // per-thread {1.0, 2.5} s -> 2.5 / 1.75 = 1.43.
  EXPECT_NE(r.out.find("0      2      5.0000  0.588  1.20"),
            std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find("1      2      3.5000  0.412  1.43"),
            std::string::npos)
      << r.out;
  // Summary: comm fraction 1.5 / 10.0, critical path = busiest thread 1.0 s.
  EXPECT_NE(r.out.find("comm fraction"), std::string::npos);
  EXPECT_NE(r.out.find("0.150"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("halo critical path s (busiest thread)  1.0000"),
            std::string::npos)
      << r.out;
}

TEST(ReportCliTest, ThreadsComeFromColumbiaMetadata) {
  const CliResult r = run_cli({fixture("trace_t4.json")});
  EXPECT_EQ(r.exit_code, obs::report::kOk);
  EXPECT_NE(r.out.find("threads=4"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("git fixture"), std::string::npos) << r.out;
}

TEST(ReportCliTest, ConvergenceJsonlRollup) {
  const CliResult r = run_cli({fixture("conv.jsonl")});
  EXPECT_EQ(r.exit_code, obs::report::kOk) << r.err;
  EXPECT_NE(r.out.find("10 cycles"), std::string::npos) << r.out;
  // 10 halvings: log10(2^10) = 3.01 orders... but the fixture's first
  // record is already halved, so first/last span 9 halvings = 2.709.
  EXPECT_NE(r.out.find("2.709"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("0      0.8000   0.0800   0.800"), std::string::npos)
      << r.out;
}

TEST(ReportCliTest, UsageErrors) {
  EXPECT_EQ(run_cli({}).exit_code, obs::report::kUsage);
  EXPECT_EQ(run_cli({"--tolerance", "bogus", fixture("conv.jsonl")}).exit_code,
            obs::report::kUsage);
  EXPECT_EQ(run_cli({"/nonexistent/path.json"}).exit_code,
            obs::report::kUsage);
  // A bench report without --baseline is a usage error, not a silent pass.
  const CliResult r = run_cli({fixture("bench_kernels_base.json")});
  EXPECT_EQ(r.exit_code, obs::report::kUsage);
  EXPECT_NE(r.err.find("--baseline"), std::string::npos);
}

// --- perf-regression gate -------------------------------------------------

TEST(PerfGateTest, IdenticalInputPasses) {
  const CliResult r = run_cli({fixture("bench_kernels_base.json"),
                               "--baseline",
                               fixture("bench_kernels_base.json")});
  EXPECT_EQ(r.exit_code, obs::report::kOk) << r.out << r.err;
  EXPECT_NE(r.out.find("2 compared, 0 skipped, 0 regressions"),
            std::string::npos)
      << r.out;
}

TEST(PerfGateTest, SlowedInputFailsWithNonzeroExit) {
  const CliResult r = run_cli({fixture("bench_kernels_slow.json"),
                               "--baseline",
                               fixture("bench_kernels_base.json"),
                               "--tolerance", "10%"});
  EXPECT_EQ(r.exit_code, obs::report::kRegression) << r.out;
  EXPECT_NE(r.out.find("REGRESSION"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("1 regression"), std::string::npos) << r.out;
}

TEST(PerfGateTest, SlowdownWithinToleranceIsOk) {
  const CliResult r = run_cli({fixture("bench_kernels_slow.json"),
                               "--baseline",
                               fixture("bench_kernels_base.json"),
                               "--tolerance", "60%"});
  EXPECT_EQ(r.exit_code, obs::report::kOk) << r.out;
}

TEST(PerfGateTest, UnmeasurableThreadRowsSkipWithExplicitReason) {
  // Same 50% slowdown on the t=4 row, but the current document says the
  // host has a single hardware thread: the row must be skipped (with the
  // ROADMAP's reason), not failed — and the verdict stays green.
  const CliResult r = run_cli({fixture("bench_kernels_slow_1hw.json"),
                               "--baseline",
                               fixture("bench_kernels_base.json"),
                               "--tolerance", "10%"});
  EXPECT_EQ(r.exit_code, obs::report::kOk) << r.out;
  EXPECT_NE(r.out.find("skipped: single hardware thread"), std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find("1 compared, 1 skipped, 0 regressions"),
            std::string::npos)
      << r.out;
}

TEST(PerfGateTest, MismatchedBenchNamesAreAUsageError) {
  const CliResult r = run_cli({fixture("bench_kernels_base.json"),
                               "--baseline", fixture("trace_t1.json")});
  EXPECT_EQ(r.exit_code, obs::report::kUsage);
}

// --- round trip: live spans -> Chrome trace -> offline ingest -------------

TEST(ReportRoundTripTest, LiveProfileMatchesOfflineTraceIngest) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "obs compiled out";
  obs::reset_trace();
  const bool was = obs::enabled();
  obs::set_enabled(true);
  {
    OBS_SPAN("rt.outer", "level", 0);
    OBS_SPAN("halo.rt.exchange");
  }
  obs::set_enabled(was);

  const obs::PhaseProfile live = obs::current_profile();
  ASSERT_EQ(live.phases.size(), 2u);

  const std::string path = testing::TempDir() + "/rt_trace.json";
  ASSERT_TRUE(obs::write_chrome_trace_file(path));
  const CliResult r = run_cli({path});
  EXPECT_EQ(r.exit_code, obs::report::kOk) << r.err;
  // The offline ingest sees the same two phases with one call each, and
  // classifies the halo span as communication.
  EXPECT_NE(r.out.find("rt.outer"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("halo.rt.exchange"), std::string::npos) << r.out;
  EXPECT_GT(live.comm_s, 0.0);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace columbia
