#include <gtest/gtest.h>

#include "graph/lines.hpp"
#include "graph/partition.hpp"

namespace columbia::graph {
namespace {

using Edge = std::pair<index_t, index_t>;

/// Anisotropic grid: strong vertical coupling (boundary-layer normal
/// direction), weak horizontal coupling — the Fig. 5 situation.
Csr stretched_grid(index_t nx, index_t ny, real_t strong = 100.0,
                   real_t weak = 1.0) {
  std::vector<Edge> edges;
  std::vector<real_t> w;
  auto id = [&](index_t i, index_t j) { return j * nx + i; };
  for (index_t j = 0; j < ny; ++j)
    for (index_t i = 0; i < nx; ++i) {
      if (i + 1 < nx) {
        edges.emplace_back(id(i, j), id(i + 1, j));
        w.push_back(weak);
      }
      if (j + 1 < ny) {
        edges.emplace_back(id(i, j), id(i, j + 1));
        w.push_back(strong);
      }
    }
  return Csr::from_weighted_edges(nx * ny, edges, w);
}

TEST(Lines, EveryVertexInExactlyOneLine) {
  const Csr g = stretched_grid(8, 10);
  const LineSet ls = extract_lines(g);
  std::vector<int> seen(80, 0);
  for (const auto& line : ls.lines)
    for (index_t v : line) ++seen[std::size_t(v)];
  for (int s : seen) EXPECT_EQ(s, 1);
}

TEST(Lines, FollowsStrongDirection) {
  const Csr g = stretched_grid(8, 10);
  const LineSet ls = extract_lines(g);
  // Lines should run vertically: full columns of length 10.
  EXPECT_EQ(ls.longest(), 10);
  index_t full_columns = 0;
  for (const auto& line : ls.lines)
    if (index_t(line.size()) == 10) ++full_columns;
  EXPECT_EQ(full_columns, 8);
}

TEST(Lines, LinesArePaths) {
  const Csr g = stretched_grid(6, 12);
  const LineSet ls = extract_lines(g);
  for (const auto& line : ls.lines) {
    for (std::size_t k = 0; k + 1 < line.size(); ++k) {
      // Consecutive line vertices are graph neighbors.
      const auto nb = g.neighbors(line[k]);
      EXPECT_NE(std::find(nb.begin(), nb.end(), line[k + 1]), nb.end());
    }
  }
}

TEST(Lines, IsotropicMeshGivesSingletons) {
  const Csr g = stretched_grid(10, 10, 1.0, 1.0);  // no anisotropy
  const LineSet ls = extract_lines(g);
  EXPECT_EQ(ls.longest(), 1);
  EXPECT_EQ(ls.vertices_in_lines(), 0);
}

TEST(Lines, UnweightedGraphGivesSingletons) {
  std::vector<Edge> edges{{0, 1}, {1, 2}};
  const Csr g = Csr::from_edges(3, edges);
  const LineSet ls = extract_lines(g);
  EXPECT_EQ(ls.longest(), 1);
}

TEST(Lines, ThresholdControlsExtraction) {
  const Csr g = stretched_grid(6, 8, 3.0, 1.0);
  LineOptions strict;
  strict.anisotropy_threshold = 5.0;  // 3:1 coupling no longer qualifies
  EXPECT_EQ(extract_lines(g, strict).longest(), 1);
  LineOptions loose;
  loose.anisotropy_threshold = 1.2;
  EXPECT_GT(extract_lines(g, loose).longest(), 1);
}

TEST(ContractLines, VertexWeightsEqualLineLengths) {
  const Csr g = stretched_grid(5, 9);
  const LineSet ls = extract_lines(g);
  const ContractedGraph cg = contract_lines(g, ls);
  EXPECT_EQ(cg.graph.num_vertices(), ls.num_lines());
  EXPECT_DOUBLE_EQ(cg.graph.total_vertex_weight(), 45.0);
}

TEST(ContractLines, PartitionNeverBreaksALine) {
  const Csr g = stretched_grid(16, 12);
  const LineSet ls = extract_lines(g);
  const ContractedGraph cg = contract_lines(g, ls);
  const auto line_part = partition(cg.graph, 4);
  const auto part = expand_line_partition(cg, line_part);
  for (const auto& line : ls.lines) {
    for (index_t v : line)
      EXPECT_EQ(part[std::size_t(v)], part[std::size_t(line[0])]);
  }
}

TEST(GroupLines, BatchesOf64SortedByLength) {
  LineSet ls;
  for (int len : {3, 10, 1, 7, 7, 2}) {
    std::vector<index_t> line(std::size_t(len), 0);
    ls.lines.push_back(line);
  }
  const auto groups = group_lines_for_vectorization(ls, 4);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].size(), 4u);
  EXPECT_EQ(groups[1].size(), 2u);
  // First group starts with the longest line (length 10 = index 1).
  EXPECT_EQ(groups[0][0], 1);
  // Lengths non-increasing across the ordering.
  std::size_t prev = 1u << 30;
  for (const auto& grp : groups)
    for (index_t li : grp) {
      EXPECT_LE(ls.lines[std::size_t(li)].size(), prev);
      prev = ls.lines[std::size_t(li)].size();
    }
}

TEST(GroupLines, DefaultGroupOf64) {
  LineSet ls;
  for (int i = 0; i < 130; ++i) ls.lines.push_back({index_t(i)});
  const auto groups = group_lines_for_vectorization(ls);
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[0].size(), 64u);
  EXPECT_EQ(groups[2].size(), 2u);
}

}  // namespace
}  // namespace columbia::graph
