#include <gtest/gtest.h>

#include <cstdlib>

#include "sfc/hilbert.hpp"
#include "sfc/morton.hpp"
#include "sfc/sfc_partition.hpp"
#include "support/random.hpp"

namespace columbia::sfc {
namespace {

TEST(Morton, Interleave2DKnownValues) {
  EXPECT_EQ(morton2(0, 0), 0u);
  EXPECT_EQ(morton2(1, 0), 1u);
  EXPECT_EQ(morton2(0, 1), 2u);
  EXPECT_EQ(morton2(1, 1), 3u);
  EXPECT_EQ(morton2(2, 0), 4u);
}

TEST(Morton, RoundTrip2D) {
  Xoshiro256 rng(1);
  for (int i = 0; i < 1000; ++i) {
    const auto x = std::uint32_t(rng.next());
    const auto y = std::uint32_t(rng.next());
    const auto [dx, dy] = morton2_decode(morton2(x, y));
    EXPECT_EQ(dx, x);
    EXPECT_EQ(dy, y);
  }
}

TEST(Morton, RoundTrip3D) {
  Xoshiro256 rng(2);
  for (int i = 0; i < 1000; ++i) {
    const auto x = std::uint32_t(rng.next()) & 0x1fffff;
    const auto y = std::uint32_t(rng.next()) & 0x1fffff;
    const auto z = std::uint32_t(rng.next()) & 0x1fffff;
    const auto [dx, dy, dz] = morton3_decode(morton3(x, y, z));
    EXPECT_EQ(dx, x);
    EXPECT_EQ(dy, y);
    EXPECT_EQ(dz, z);
  }
}

TEST(Morton, PreservesOctantOrder) {
  // The high bits select octants: points in octant 0 sort before octant 7.
  EXPECT_LT(morton3(0, 0, 0), morton3(1 << 20, 1 << 20, 1 << 20));
}

TEST(Hilbert, RoundTrip2D) {
  Xoshiro256 rng(3);
  for (int bits : {4, 8, 16}) {
    const std::uint32_t mask = (1u << bits) - 1;
    for (int i = 0; i < 300; ++i) {
      const auto x = std::uint32_t(rng.next()) & mask;
      const auto y = std::uint32_t(rng.next()) & mask;
      std::uint32_t dx, dy;
      hilbert2_decode(hilbert2(x, y, bits), bits, dx, dy);
      EXPECT_EQ(dx, x);
      EXPECT_EQ(dy, y);
    }
  }
}

TEST(Hilbert, RoundTrip3D) {
  Xoshiro256 rng(4);
  for (int bits : {3, 7, 16}) {
    const std::uint32_t mask = (1u << bits) - 1;
    for (int i = 0; i < 300; ++i) {
      const auto x = std::uint32_t(rng.next()) & mask;
      const auto y = std::uint32_t(rng.next()) & mask;
      const auto z = std::uint32_t(rng.next()) & mask;
      std::uint32_t dx, dy, dz;
      hilbert3_decode(hilbert3(x, y, z, bits), bits, dx, dy, dz);
      EXPECT_EQ(dx, x);
      EXPECT_EQ(dy, y);
      EXPECT_EQ(dz, z);
    }
  }
}

TEST(Hilbert, IsABijectionOnSmallGrid) {
  std::vector<bool> seen(64, false);
  for (std::uint32_t x = 0; x < 8; ++x)
    for (std::uint32_t y = 0; y < 8; ++y) {
      const auto k = hilbert2(x, y, 3);
      ASSERT_LT(k, 64u);
      EXPECT_FALSE(seen[k]);
      seen[k] = true;
    }
}

TEST(Hilbert, UnitStepsIn2D) {
  // Defining property: consecutive curve positions are grid neighbors.
  const int bits = 4;
  std::uint32_t px = 0, py = 0;
  hilbert2_decode(0, bits, px, py);
  for (std::uint64_t k = 1; k < (1u << (2 * bits)); ++k) {
    std::uint32_t x, y;
    hilbert2_decode(k, bits, x, y);
    const int d = std::abs(int(x) - int(px)) + std::abs(int(y) - int(py));
    EXPECT_EQ(d, 1) << "jump at k=" << k;
    px = x;
    py = y;
  }
}

TEST(Hilbert, UnitStepsIn3D) {
  const int bits = 3;
  std::uint32_t px, py, pz;
  hilbert3_decode(0, bits, px, py, pz);
  for (std::uint64_t k = 1; k < (1u << (3 * bits)); ++k) {
    std::uint32_t x, y, z;
    hilbert3_decode(k, bits, x, y, z);
    const int d = std::abs(int(x) - int(px)) + std::abs(int(y) - int(py)) +
                  std::abs(int(z) - int(pz));
    EXPECT_EQ(d, 1) << "jump at k=" << k;
    px = x;
    py = y;
    pz = z;
  }
}

TEST(SfcPartition, SortOrderSorts) {
  std::vector<std::uint64_t> keys{5, 1, 3, 2, 4};
  const auto order = sort_order(keys);
  for (std::size_t i = 1; i < order.size(); ++i)
    EXPECT_LT(keys[std::size_t(order[i - 1])], keys[std::size_t(order[i])]);
}

TEST(SfcPartition, UnweightedEqualSegments) {
  std::vector<std::uint64_t> keys(100);
  for (std::size_t i = 0; i < 100; ++i) keys[i] = i;
  const auto part = partition_weighted(keys, {}, 4);
  std::vector<int> count(4, 0);
  for (index_t p : part) ++count[std::size_t(p)];
  for (int c : count) EXPECT_EQ(c, 25);
  // Segments are contiguous along the curve.
  for (std::size_t i = 1; i < 100; ++i) EXPECT_GE(part[i], part[i - 1]);
}

TEST(SfcPartition, WeightsShiftBoundaries) {
  // First 10 items carry almost all the weight (cut cells at 2.1x would be
  // a mild version of this): they should spread across parts.
  std::vector<std::uint64_t> keys(40);
  std::vector<real_t> w(40, 0.01);
  for (std::size_t i = 0; i < 40; ++i) keys[i] = i;
  for (std::size_t i = 0; i < 10; ++i) w[i] = 10.0;
  const auto part = partition_weighted(keys, w, 5);
  EXPECT_LT(balance_factor(part, w, 5), 1.5);
  // The heavy prefix cannot all land in part 0.
  EXPECT_GT(part[9], 0);
}

TEST(SfcPartition, BalanceFactorPerfect) {
  std::vector<index_t> part{0, 0, 1, 1};
  std::vector<real_t> w{1, 1, 1, 1};
  EXPECT_DOUBLE_EQ(balance_factor(part, w, 2), 1.0);
}

TEST(SfcPartition, MorePartsThanItems) {
  std::vector<std::uint64_t> keys{1, 2};
  const auto part = partition_weighted(keys, {}, 8);
  for (index_t p : part) {
    EXPECT_GE(p, 0);
    EXPECT_LT(p, 8);
  }
}

TEST(SfcPartition, HilbertSegmentsAreCompact2D) {
  // Partition a 32x32 grid of cells along the Hilbert curve into 4 parts;
  // each part's bounding box should be much smaller than the full domain
  // (locality), unlike a scanline split (paper: SFC partitions track an
  // idealized cubic partitioner).
  const int n = 32;
  std::vector<std::uint64_t> keys;
  std::vector<std::pair<int, int>> coords;
  for (int y = 0; y < n; ++y)
    for (int x = 0; x < n; ++x) {
      keys.push_back(hilbert2(std::uint32_t(x), std::uint32_t(y), 5));
      coords.emplace_back(x, y);
    }
  const auto part = partition_weighted(keys, {}, 4);
  for (index_t p = 0; p < 4; ++p) {
    int xmin = n, xmax = -1, ymin = n, ymax = -1;
    for (std::size_t i = 0; i < coords.size(); ++i) {
      if (part[i] != p) continue;
      xmin = std::min(xmin, coords[i].first);
      xmax = std::max(xmax, coords[i].first);
      ymin = std::min(ymin, coords[i].second);
      ymax = std::max(ymax, coords[i].second);
    }
    // Hilbert quarters of a 32x32 grid are 16x16 quadrants.
    EXPECT_LE((xmax - xmin + 1) * (ymax - ymin + 1), 2 * 16 * 16);
  }
}

}  // namespace
}  // namespace columbia::sfc
