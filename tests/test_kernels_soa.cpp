// SoA kernel layer equivalence: the blocked/stream kernels must reproduce
// the retained scalar reference paths BIT FOR BIT — same residual, same
// gradient/limiter intermediates — at every thread count, and the
// temp-free block solves must match their operator*-based formulations
// exactly. These tests are the enforcement arm of the bit-identity
// contract documented in nsu3d/kernels.hpp and cart3d/kernels.hpp.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <vector>

#include "cart3d/kernels.hpp"
#include "cart3d/partitioned.hpp"
#include "cartesian/cart_mesh.hpp"
#include "core/exchange_plan.hpp"
#include "geom/components.hpp"
#include "linalg/block.hpp"
#include "linalg/block_tridiag.hpp"
#include "mesh/builders.hpp"
#include "nsu3d/kernels.hpp"
#include "nsu3d/partitioned.hpp"
#include "smp/pool.hpp"
#include "support/random.hpp"

namespace columbia {
namespace {

using core::ExchangeStrategy;

/// Restores the global pool to a single thread when a test exits.
struct PoolGuard {
  ~PoolGuard() { smp::set_global_threads(1); }
};

// --- NSU3D ---

mesh::UnstructuredMesh small_wing() {
  mesh::WingMeshSpec spec;
  spec.n_wrap = 24;
  spec.n_span = 3;
  spec.n_normal = 10;
  spec.wall_spacing = 1e-4;
  return mesh::make_wing_mesh(spec);
}

nsu3d::kernels::Physics wing_physics(const euler::FlowConditions& fc) {
  nsu3d::kernels::Physics phys;
  phys.freestream = fc.freestream();
  phys.flux = euler::FluxScheme::Roe;
  phys.mu_lam = fc.mach / fc.reynolds;
  phys.nut_inf = 3.0 * phys.mu_lam / phys.freestream.rho;
  phys.viscous = true;
  return phys;
}

/// Smooth non-freestream state so gradients, limiter and SA terms are all
/// exercised with nontrivial values.
std::vector<nsu3d::State> wing_state(const nsu3d::Level& lvl,
                                     const nsu3d::kernels::Physics& phys) {
  std::vector<nsu3d::State> u(std::size_t(lvl.num_nodes));
  for (index_t v = 0; v < lvl.num_nodes; ++v) {
    const geom::Vec3& x = lvl.node_center[std::size_t(v)];
    euler::Prim w = phys.freestream;
    w.rho *= 1.0 + 0.05 * std::sin(1.1 * x.x + 0.4 * x.y);
    w.p *= 1.0 + 0.05 * std::cos(0.8 * x.z + 0.2 * x.x);
    w.vel.x *= 1.0 + 0.03 * std::sin(0.6 * x.y);
    const auto c5 = euler::to_conservative(w);
    for (int c = 0; c < 5; ++c)
      u[std::size_t(v)][std::size_t(c)] = c5[std::size_t(c)];
    u[std::size_t(v)][5] =
        w.rho * phys.nut_inf * (1.0 + 0.2 * std::cos(0.5 * x.x));
  }
  return u;
}

TEST(Nsu3dSoA, ResidualMatchesReferenceBitwiseAcrossThreads) {
  PoolGuard guard;
  const auto m = small_wing();
  nsu3d::LevelOptions lo;
  lo.num_levels = 2;
  const auto levels = nsu3d::build_levels(m, lo);
  euler::FlowConditions fc;
  fc.mach = 0.75;
  fc.reynolds = 3e6;
  const auto phys = wing_physics(fc);

  for (const nsu3d::Level& lvl : levels) {
    const int level = (&lvl == &levels.front()) ? 0 : 1;
    const auto u = wing_state(lvl, phys);

    for (bool second_order : {true, false}) {
      smp::set_global_threads(1);
      nsu3d::kernels::ReferenceScratch rs;
      std::vector<nsu3d::State> ref;
      nsu3d::kernels::residual_reference(lvl, phys, level, u, second_order,
                                         rs, ref);

      for (int threads : {1, 2, 4}) {
        smp::set_global_threads(threads);
        nsu3d::kernels::Scratch s;
        std::vector<nsu3d::State> res;
        nsu3d::kernels::residual(lvl, phys, level, u, second_order, s, res);
        ASSERT_EQ(res.size(), ref.size());
        for (std::size_t i = 0; i < res.size(); ++i)
          for (int c = 0; c < 6; ++c)
            EXPECT_EQ(res[i][std::size_t(c)], ref[i][std::size_t(c)])
                << "level " << level << " order " << second_order << " t="
                << threads << " node " << i << " comp " << c;
      }
    }
  }
}

TEST(Nsu3dSoA, GradientLimiterBlocksMatchReferenceBitwise) {
  // The intermediates, not just the final residual: the blocked gradient /
  // min-max / phi streams must hold exactly the values the scalar
  // reference computes into its AoS arrays.
  PoolGuard guard;
  const auto m = small_wing();
  nsu3d::LevelOptions lo;
  lo.num_levels = 1;
  const auto levels = nsu3d::build_levels(m, lo);
  const nsu3d::Level& lvl = levels[0];
  euler::FlowConditions fc;
  fc.mach = 0.75;
  fc.reynolds = 3e6;
  const auto phys = wing_physics(fc);
  const auto u = wing_state(lvl, phys);

  smp::set_global_threads(1);
  nsu3d::kernels::ReferenceScratch rs;
  std::vector<nsu3d::State> ref;
  nsu3d::kernels::residual_reference(lvl, phys, 0, u, true, rs, ref);

  for (int threads : {1, 4}) {
    smp::set_global_threads(threads);
    nsu3d::kernels::Scratch s;
    std::vector<nsu3d::State> res;
    nsu3d::kernels::residual(lvl, phys, 0, u, true, s, res);

    using nsu3d::kernels::kGradStride;
    using nsu3d::kernels::kPhiStride;
    for (index_t i = 0; i < lvl.num_nodes; ++i) {
      const real_t* g = &s.gb[std::size_t(i) * kGradStride];
      const real_t* p = &s.ph[std::size_t(i) * kPhiStride];
      for (int c = 0; c < 6; ++c) {
        const auto sc = std::size_t(c);
        EXPECT_EQ(g[c], rs.grad[std::size_t(i)][sc].x) << i << "/" << c;
        EXPECT_EQ(g[6 + c], rs.grad[std::size_t(i)][sc].y) << i << "/" << c;
        EXPECT_EQ(g[12 + c], rs.grad[std::size_t(i)][sc].z) << i << "/" << c;
        EXPECT_EQ(g[18 + c], rs.qmin[std::size_t(i)][sc]) << i << "/" << c;
        EXPECT_EQ(g[24 + c], rs.qmax[std::size_t(i)][sc]) << i << "/" << c;
        EXPECT_EQ(p[c], rs.phi[std::size_t(i)][sc]) << i << "/" << c;
      }
    }
  }
}

TEST(Nsu3dSoA, HaloStrategiesBitIdenticalWithPackedComponents) {
  // The component-major halo packing reorders only copies; both exchange
  // strategies must still deliver bit-identical residuals.
  PoolGuard guard;
  smp::set_global_threads(4);
  const auto m = small_wing();
  nsu3d::LevelOptions lo;
  lo.num_levels = 1;
  const auto levels = nsu3d::build_levels(m, lo);
  const nsu3d::Level& lvl = levels[0];
  euler::FlowConditions fc;
  fc.mach = 0.6;
  const auto phys = wing_physics(fc);
  const auto u = wing_state(lvl, phys);
  const euler::Prim inf = fc.freestream();

  const auto plan = nsu3d::build_partition_plan(levels, 4);
  const auto& part = plan.levels[0].part;
  const auto t2t = nsu3d::parallel_residual(lvl, u, inf, part, 4);
  const auto master = nsu3d::parallel_residual(
      lvl, u, inf, part, 4, {ExchangeStrategy::MasterThread, 2});
  EXPECT_EQ(t2t, master);
}

// --- Cart3D ---

cartesian::CartMesh sphere_mesh() {
  const auto sphere = geom::make_sphere({0, 0, 0}, 0.4, 16, 32);
  geom::Aabb dom;
  dom.expand({-1.5, -1.5, -1.5});
  dom.expand({1.5, 1.5, 1.5});
  cartesian::CartMeshOptions mopt;
  mopt.base_n = 8;
  mopt.max_level = 2;
  return cartesian::build_cart_mesh(sphere, dom, mopt);
}

std::vector<euler::Cons> sphere_state(const cartesian::CartMesh& m,
                                      const euler::Prim& inf) {
  std::vector<euler::Cons> u(m.cells.size());
  for (std::size_t i = 0; i < m.cells.size(); ++i) {
    euler::Prim w = inf;
    const geom::Vec3 x = m.cell_center(m.cells[i]);
    w.rho *= 1.0 + 0.04 * std::sin(1.3 * x.x + 0.5 * x.y);
    w.p *= 1.0 + 0.04 * std::cos(0.9 * x.z);
    u[i] = euler::to_conservative(w);
  }
  return u;
}

TEST(Cart3dSoA, ResidualMatchesReferenceBitwiseAcrossThreads) {
  PoolGuard guard;
  const auto m = sphere_mesh();
  euler::FlowConditions fc;
  fc.mach = 0.5;
  fc.alpha_deg = 2.0;
  const euler::Prim inf = fc.freestream();
  const auto u = sphere_state(m, inf);

  cart3d::kernels::LevelGeom geomc;
  geomc.build(m);

  for (bool second_order : {true, false}) {
    smp::set_global_threads(1);
    cart3d::kernels::ReferenceScratch rs;
    std::vector<euler::Cons> ref;
    cart3d::kernels::residual_reference(m, inf, euler::FluxScheme::Roe, u,
                                        second_order, rs, ref);

    for (int threads : {1, 2, 4}) {
      smp::set_global_threads(threads);
      cart3d::kernels::Scratch s;
      std::vector<euler::Cons> res;
      cart3d::kernels::residual(geomc, m, inf, euler::FluxScheme::Roe, u,
                                second_order, s, res);
      ASSERT_EQ(res.size(), ref.size());
      for (std::size_t i = 0; i < res.size(); ++i)
        for (int c = 0; c < 5; ++c)
          EXPECT_EQ(res[i][std::size_t(c)], ref[i][std::size_t(c)])
              << "order " << second_order << " t=" << threads << " cell "
              << i << " comp " << c;
    }
  }
}

TEST(Cart3dSoA, HaloStrategiesBitIdenticalWithPackedComponents) {
  PoolGuard guard;
  smp::set_global_threads(4);
  const auto m = sphere_mesh();
  euler::FlowConditions fc;
  fc.mach = 0.5;
  fc.alpha_deg = 2.0;
  const euler::Prim inf = fc.freestream();
  const auto u = sphere_state(m, inf);

  const auto part = cartesian::partition_cells(m, 4);
  const auto t2t = cart3d::parallel_residual(m, u, inf, part, 4);
  const auto master =
      cart3d::parallel_residual(m, u, inf, part, 4, euler::FluxScheme::Roe,
                                {ExchangeStrategy::MasterThread, 2});
  EXPECT_EQ(t2t, master);
}

// --- Block solves ---

template <int N>
linalg::BlockMat<N> random_mat(Xoshiro256& rng, real_t diag_boost) {
  linalg::BlockMat<N> m;
  for (int i = 0; i < N; ++i)
    for (int j = 0; j < N; ++j) m(i, j) = rng.uniform(-1, 1);
  for (int i = 0; i < N; ++i) m(i, i) += diag_boost;
  return m;
}

template <int N>
linalg::BlockVec<N> random_vec(Xoshiro256& rng) {
  linalg::BlockVec<N> v;
  for (int i = 0; i < N; ++i) v[i] = rng.uniform(-1, 1);
  return v;
}

TEST(BlockSolvesSoA, MsubMatchesTempFormBitwise) {
  // msub promises exactly `r -= m * x` / `r -= x * y` without the
  // temporary; the accumulation order inside is identical, so the results
  // must be bit-equal, not merely close.
  Xoshiro256 rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    const auto m = random_mat<6>(rng, 0.0);
    const auto x = random_vec<6>(rng);
    auto r1 = random_vec<6>(rng);
    auto r2 = r1;
    linalg::msub(r1, m, x);
    r2 -= m * x;
    for (int i = 0; i < 6; ++i) EXPECT_EQ(r1[i], r2[i]) << trial << "/" << i;

    const auto a = random_mat<6>(rng, 0.0);
    const auto b = random_mat<6>(rng, 0.0);
    auto m1 = random_mat<6>(rng, 0.0);
    auto m2 = m1;
    linalg::msub(m1, a, b);
    m2 -= a * b;
    for (int i = 0; i < 6; ++i)
      for (int j = 0; j < 6; ++j)
        EXPECT_EQ(m1(i, j), m2(i, j)) << trial << "/" << i << "," << j;
  }
}

TEST(BlockSolvesSoA, MatrixSolveMatchesColumnSolvesBitwise) {
  // BlockLU::solve(BlockMat) advances all columns together; per element it
  // must apply the identical update chain a column-by-column solve would.
  Xoshiro256 rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    const auto a = random_mat<6>(rng, 3.0);
    const auto b = random_mat<6>(rng, 0.0);
    linalg::BlockLU<6> lu;
    ASSERT_TRUE(lu.factor(a));
    const auto x = lu.solve(b);
    for (int c = 0; c < 6; ++c) {
      linalg::BlockVec<6> col;
      for (int i = 0; i < 6; ++i) col[i] = b(i, c);
      const auto xc = lu.solve(col);
      for (int i = 0; i < 6; ++i) EXPECT_EQ(x(i, c), xc[i]) << trial;
    }
  }
}

/// The pre-msub block-tridiagonal formulation, kept verbatim as the
/// reference the production solver must reproduce bitwise.
template <int N>
bool solve_block_tridiag_naive(std::vector<linalg::BlockMat<N>>& lower,
                               std::vector<linalg::BlockMat<N>>& diag,
                               std::vector<linalg::BlockMat<N>>& upper,
                               std::vector<linalg::BlockVec<N>>& rhs) {
  const std::size_t n = diag.size();
  if (n == 0) return true;
  std::vector<linalg::BlockLU<N>> lu(n);
  if (!lu[0].factor(diag[0])) return false;
  for (std::size_t i = 1; i < n; ++i) {
    const linalg::BlockMat<N> m = lu[i - 1].solve(upper[i - 1]);
    diag[i] -= lower[i] * m;
    const linalg::BlockVec<N> r = lu[i - 1].solve(rhs[i - 1]);
    rhs[i] -= lower[i] * r;
    if (!lu[i].factor(diag[i])) return false;
  }
  rhs[n - 1] = lu[n - 1].solve(rhs[n - 1]);
  for (std::size_t i = n - 1; i-- > 0;) {
    linalg::BlockVec<N> r = rhs[i];
    r -= upper[i] * rhs[i + 1];
    rhs[i] = lu[i].solve(r);
  }
  return true;
}

TEST(BlockSolvesSoA, TridiagMatchesNaiveFormulationBitwise) {
  Xoshiro256 rng(19);
  for (std::size_t n : {1u, 2u, 5u, 16u}) {
    std::vector<linalg::BlockMat<6>> lo(n), dg(n), up(n);
    std::vector<linalg::BlockVec<6>> rhs(n);
    for (std::size_t i = 0; i < n; ++i) {
      lo[i] = random_mat<6>(rng, 0.0);
      dg[i] = random_mat<6>(rng, 5.0);
      up[i] = random_mat<6>(rng, 0.0);
      rhs[i] = random_vec<6>(rng);
    }
    auto lo2 = lo;
    auto dg2 = dg;
    auto up2 = up;
    auto rhs2 = rhs;
    ASSERT_TRUE(linalg::solve_block_tridiag<6>(lo, dg, up, rhs));
    ASSERT_TRUE(solve_block_tridiag_naive<6>(lo2, dg2, up2, rhs2));
    for (std::size_t i = 0; i < n; ++i)
      for (int c = 0; c < 6; ++c)
        EXPECT_EQ(rhs[i][c], rhs2[i][c]) << "n=" << n << " row " << i;
  }
}

}  // namespace
}  // namespace columbia
