#include <gtest/gtest.h>

#include <numbers>

#include "geom/components.hpp"
#include "geom/tribox.hpp"

namespace columbia::geom {
namespace {

constexpr real_t kPi = std::numbers::pi_v<real_t>;

TEST(Vec3, BasicOps) {
  const Vec3 a{1, 2, 3}, b{4, 5, 6};
  EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
  const Vec3 c = cross(a, b);
  EXPECT_DOUBLE_EQ(c.x, -3);
  EXPECT_DOUBLE_EQ(c.y, 6);
  EXPECT_DOUBLE_EQ(c.z, -3);
  EXPECT_DOUBLE_EQ(norm(Vec3{3, 4, 0}), 5.0);
  EXPECT_NEAR(norm(normalized(b)), 1.0, 1e-15);
}

TEST(Aabb, ExpandAndOverlap) {
  Aabb a;
  a.expand({0, 0, 0});
  a.expand({1, 1, 1});
  Aabb b;
  b.expand({0.5, 0.5, 0.5});
  b.expand({2, 2, 2});
  EXPECT_TRUE(a.overlaps(b));
  EXPECT_TRUE(a.contains({0.5, 0.5, 0.5}));
  EXPECT_FALSE(a.contains({1.5, 0.5, 0.5}));
  Aabb c;
  c.expand({3, 3, 3});
  c.expand({4, 4, 4});
  EXPECT_FALSE(a.overlaps(c));
}

TEST(TriBox, TriangleInsideBox) {
  Aabb box;
  box.expand({0, 0, 0});
  box.expand({1, 1, 1});
  EXPECT_TRUE(triangle_box_overlap({0.2, 0.2, 0.5}, {0.8, 0.2, 0.5},
                                   {0.5, 0.8, 0.5}, box));
}

TEST(TriBox, TriangleFarAway) {
  Aabb box;
  box.expand({0, 0, 0});
  box.expand({1, 1, 1});
  EXPECT_FALSE(triangle_box_overlap({5, 5, 5}, {6, 5, 5}, {5, 6, 5}, box));
}

TEST(TriBox, LargeTriangleSpanningBox) {
  Aabb box;
  box.expand({0, 0, 0});
  box.expand({1, 1, 1});
  // Plane z=0.5 cutting through, vertices all outside.
  EXPECT_TRUE(triangle_box_overlap({-10, -10, 0.5}, {10, -10, 0.5},
                                   {0, 20, 0.5}, box));
}

TEST(TriBox, PlaneMissesCorner) {
  Aabb box;
  box.expand({0, 0, 0});
  box.expand({1, 1, 1});
  // Diagonal plane x+y+z = 4 does not reach the unit box (max corner sum 3).
  const Vec3 a{4, 0, 0}, b{0, 4, 0}, c{0, 0, 4};
  EXPECT_FALSE(triangle_box_overlap(a, b, c, box));
  // x+y+z = 2.9 clips the corner region near (1,1,1).
  const Vec3 d{2.9, 0, 0}, e{0, 2.9, 0}, f{0, 0, 2.9};
  EXPECT_TRUE(triangle_box_overlap(d, e, f, box));
}

TEST(TriBox, EdgeCrossAxisSeparation) {
  Aabb box;
  box.expand({0, 0, 0});
  box.expand({1, 1, 1});
  // Thin sliver passing near but outside an edge of the box.
  EXPECT_FALSE(triangle_box_overlap({1.6, 1.6, -1}, {1.6, 1.6, 2},
                                    {1.7, 1.7, 0.5}, box));
}

TEST(Sphere, WatertightAndVolume) {
  const TriSurface s = make_sphere({0, 0, 0}, 1.0, 24, 48);
  EXPECT_TRUE(s.is_watertight());
  const real_t v = s.enclosed_volume();
  EXPECT_NEAR(v, 4.0 / 3.0 * kPi, 0.05 * 4.0 / 3.0 * kPi);
  EXPECT_NEAR(s.total_area(), 4 * kPi, 0.05 * 4 * kPi);
}

TEST(Sphere, TranslatedCenterPreservesVolume) {
  const TriSurface s = make_sphere({5, -3, 2}, 0.5, 16, 32);
  EXPECT_TRUE(s.is_watertight());
  EXPECT_NEAR(s.enclosed_volume(), 4.0 / 3.0 * kPi * 0.125,
              0.1 * 4.0 / 3.0 * kPi * 0.125);
}

TEST(Box, WatertightExactVolume) {
  const TriSurface b = make_box({0, 0, 0}, {2, 3, 4});
  EXPECT_TRUE(b.is_watertight());
  EXPECT_NEAR(b.enclosed_volume(), 24.0, 1e-12);
  EXPECT_NEAR(b.total_area(), 2 * (2 * 3 + 3 * 4 + 2 * 4), 1e-12);
}

TEST(BodyOfRevolution, WatertightPositiveVolume) {
  std::vector<std::pair<real_t, real_t>> prof{
      {0, 0}, {0.2, 0.5}, {0.8, 0.5}, {1, 0}};
  const TriSurface s = make_body_of_revolution(prof, 32);
  EXPECT_TRUE(s.is_watertight());
  EXPECT_GT(s.enclosed_volume(), 0.3);  // > cylinder 0.6 long r=0.5 is ~0.47
}

TEST(RocketBody, WatertightAndBounded) {
  const TriSurface s = make_rocket_body(2.0, 0.3);
  EXPECT_TRUE(s.is_watertight());
  const Aabb b = s.bounds();
  EXPECT_NEAR(b.lo.x, 0.0, 1e-9);
  EXPECT_NEAR(b.hi.x, 2.0, 1e-9);
  EXPECT_LE(b.hi.y, 0.3 + 1e-9);
  EXPECT_GT(s.enclosed_volume(), 0.0);
}

TEST(Wing, WatertightAtZeroAndDeflected) {
  WingSpec spec;
  const TriSurface w0 = make_wing(spec);
  EXPECT_TRUE(w0.is_watertight());
  EXPECT_GT(w0.enclosed_volume(), 0.0);

  spec.flap_deflection = 0.3;
  const TriSurface w1 = make_wing(spec);
  EXPECT_TRUE(w1.is_watertight());
  EXPECT_GT(w1.enclosed_volume(), 0.0);
}

TEST(Wing, DeflectionMovesTrailingEdge) {
  WingSpec spec;
  const TriSurface w0 = make_wing(spec);
  spec.flap_deflection = 0.4;
  const TriSurface w1 = make_wing(spec);
  // Positive deflection pushes the trailing edge down: min z decreases.
  EXPECT_LT(w1.bounds().lo.z, w0.bounds().lo.z - 1e-4);
  // Same triangle count: re-triangulation is structural, not topological.
  EXPECT_EQ(w0.num_triangles(), w1.num_triangles());
}

TEST(Sslv, AssemblyComponentsAndWatertight) {
  const TriSurface s = make_sslv(0.1, 1);
  // ET + 2 SRB + fuselage + wing + tail + 4 attach + 5 engines = 15.
  EXPECT_EQ(s.num_components(), 15);
  EXPECT_TRUE(s.is_watertight());
  EXPECT_GT(s.num_triangles(), 3000);
}

TEST(Transport, NacelleAddsComponents) {
  const TriSurface plain = make_transport(false, 1);
  const TriSurface nac = make_transport(true, 1);
  EXPECT_EQ(plain.num_components(), 2);
  EXPECT_EQ(nac.num_components(), 4);
  EXPECT_TRUE(plain.is_watertight());
  EXPECT_TRUE(nac.is_watertight());
}

TEST(Surface, AppendRemapsComponents) {
  TriSurface a = make_box({0, 0, 0}, {1, 1, 1});
  const TriSurface b = make_box({2, 0, 0}, {3, 1, 1});
  a.append(b);
  EXPECT_EQ(a.num_components(), 2);
  EXPECT_EQ(a.num_triangles(), 24);
  EXPECT_TRUE(a.is_watertight());
}

TEST(Surface, RotateIsRigid) {
  TriSurface s = make_box({-1, -1, -1}, {1, 1, 1});
  const real_t v0 = s.enclosed_volume();
  const real_t a0 = s.total_area();
  s.rotate({0, 0, 0}, {0, 0, 1}, 0.7);
  EXPECT_NEAR(s.enclosed_volume(), v0, 1e-10);
  EXPECT_NEAR(s.total_area(), a0, 1e-10);
}

TEST(Surface, NonWatertightDetected) {
  TriSurface s;
  const auto a = s.add_vertex({0, 0, 0});
  const auto b = s.add_vertex({1, 0, 0});
  const auto c = s.add_vertex({0, 1, 0});
  s.add_triangle(a, b, c);
  EXPECT_FALSE(s.is_watertight());
}

}  // namespace
}  // namespace columbia::geom
