#include <gtest/gtest.h>

#include "graph/lines.hpp"
#include "mesh/builders.hpp"
#include "mesh/dual_metrics.hpp"

namespace columbia::mesh {
namespace {

TEST(BoxMesh, HexCountsAndVolume) {
  const auto m = make_box_mesh(3, 4, 5, {0, 0, 0}, {3, 4, 5});
  EXPECT_EQ(m.num_points(), 4 * 5 * 6);
  EXPECT_EQ(m.num_elements(), 60);
  EXPECT_NEAR(m.total_volume(), 60.0, 1e-10);
  EXPECT_EQ(m.element_counts()[std::size_t(ElementType::Hex)], 60);
}

TEST(BoxMesh, TetVersionSameVolume) {
  const auto m = make_box_mesh(3, 3, 3, {0, 0, 0}, {1, 1, 1}, true);
  EXPECT_EQ(m.num_elements(), 27 * 6);
  EXPECT_NEAR(m.total_volume(), 1.0, 1e-12);
  // Every tet positively oriented.
  for (index_t e = 0; e < m.num_elements(); ++e)
    EXPECT_GT(m.element_volume(e), 0.0);
}

TEST(DualMetrics, VolumesPartitionTheDomain) {
  for (bool tets : {false, true}) {
    const auto m = make_box_mesh(4, 3, 5, {0, 0, 0}, {2, 1, 3}, tets);
    const auto dm = compute_dual_metrics(m);
    real_t sum = 0;
    for (real_t v : dm.node_volume) {
      EXPECT_GT(v, 0.0);
      sum += v;
    }
    EXPECT_NEAR(sum, 6.0, 1e-10) << (tets ? "tets" : "hexes");
  }
}

TEST(DualMetrics, ClosureIsConservative) {
  // The defining property of the median-dual construction: each node's
  // dual faces + boundary faces close exactly.
  for (bool tets : {false, true}) {
    const auto m = make_box_mesh(5, 4, 3, {-1, 0, 2}, {1, 2, 3}, tets);
    const auto dm = compute_dual_metrics(m);
    EXPECT_LT(metric_closure_error(m, dm), 1e-12);
  }
}

TEST(DualMetrics, UniformHexEdgeNormals) {
  // On a uniform unit-spacing hex grid, an x-edge's dual face area is 1.
  const auto m = make_box_mesh(4, 4, 4, {0, 0, 0}, {4, 4, 4});
  const auto dm = compute_dual_metrics(m);
  for (std::size_t e = 0; e < dm.edges.size(); ++e) {
    const auto [a, b] = dm.edges[e];
    const geom::Vec3 d = m.points[std::size_t(b)] - m.points[std::size_t(a)];
    // Axis-aligned edges only in a hex grid.
    const real_t len = norm(d);
    EXPECT_NEAR(len, 1.0, 1e-12);
    // Dual face area scales with how interior the edge is; interior edges
    // get the full unit face.
    const real_t area = norm(dm.edge_normal[e]);
    EXPECT_GT(area, 0.2);
    EXPECT_LT(area, 1.0 + 1e-12);
    // Normal is parallel to the edge for a uniform grid.
    EXPECT_NEAR(std::abs(dot(dm.edge_normal[e], d)) / (area * len), 1.0,
                1e-12);
  }
}

TEST(DualMetrics, WallDistanceZeroAtWallMonotoneOut) {
  WingMeshSpec spec;
  spec.n_wrap = 16;
  spec.n_span = 2;
  spec.n_normal = 8;
  const auto m = make_wing_mesh(spec);
  const auto dm = compute_dual_metrics(m);
  // Nodes on the wall (k=0 ring) have distance 0.
  index_t zero_count = 0;
  for (real_t d : dm.wall_distance)
    if (d == 0.0) ++zero_count;
  EXPECT_EQ(zero_count, 16 * 3);  // n_wrap * (n_span+1)
  // Farfield nodes are far.
  real_t dmax = 0;
  for (real_t d : dm.wall_distance) dmax = std::max(dmax, d);
  EXPECT_GT(dmax, 5.0);
}

TEST(WingMesh, AllElementsPositive) {
  WingMeshSpec spec;
  spec.n_wrap = 24;
  spec.n_span = 3;
  spec.n_normal = 10;
  const auto m = make_wing_mesh(spec);
  for (index_t e = 0; e < m.num_elements(); ++e)
    EXPECT_GT(m.element_volume(e), 0.0) << "element " << e;
}

TEST(WingMesh, HybridHexPrism) {
  WingMeshSpec spec;
  spec.n_wrap = 16;
  spec.n_span = 2;
  spec.n_normal = 8;
  spec.hex_layer_fraction = 0.5;
  const auto m = make_wing_mesh(spec);
  const auto counts = m.element_counts();
  EXPECT_GT(counts[std::size_t(ElementType::Hex)], 0);
  EXPECT_GT(counts[std::size_t(ElementType::Prism)], 0);
  // Prism block has twice the element count per layer.
  EXPECT_EQ(counts[std::size_t(ElementType::Prism)],
            2 * counts[std::size_t(ElementType::Hex)]);
}

TEST(WingMesh, MetricsCloseDespiteMixedElements) {
  WingMeshSpec spec;
  spec.n_wrap = 20;
  spec.n_span = 2;
  spec.n_normal = 8;
  const auto m = make_wing_mesh(spec);
  const auto dm = compute_dual_metrics(m);
  // Dual volumes positive and sum to the domain volume.
  real_t sum = 0;
  for (real_t v : dm.node_volume) {
    EXPECT_GT(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum, m.total_volume(), 1e-8 * std::abs(sum));
  EXPECT_LT(metric_closure_error(m, dm), 1e-10);
}

TEST(WingMesh, StronglyAnisotropicNearWall) {
  WingMeshSpec spec;
  spec.n_wrap = 24;
  spec.n_span = 2;
  spec.n_normal = 12;
  spec.wall_spacing = 1e-4;
  const auto m = make_wing_mesh(spec);
  const auto dm = compute_dual_metrics(m);
  // Boundary-layer meshes in the paper run chord/normal ratios of 1e3+.
  EXPECT_GT(dm.max_anisotropy(m), 100.0);
}

TEST(WingMesh, LinesFormInBoundaryLayer) {
  WingMeshSpec spec;
  spec.n_wrap = 24;
  spec.n_span = 2;
  spec.n_normal = 12;
  spec.wall_spacing = 1e-4;
  const auto m = make_wing_mesh(spec);
  const auto dm = compute_dual_metrics(m);
  const auto coupling = dm.edge_coupling(m);
  std::vector<std::pair<index_t, index_t>> edges = dm.edges;
  const auto g = graph::Csr::from_weighted_edges(m.num_points(), edges,
                                                 coupling);
  const auto ls = graph::extract_lines(g);
  // Wall-normal lines should span several layers.
  EXPECT_GE(ls.longest(), 4);
  EXPECT_GT(ls.vertices_in_lines(), m.num_points() / 4);
}

TEST(MeshStats, ReportsConsistentNumbers) {
  WingMeshSpec spec;
  spec.n_wrap = 16;
  spec.n_span = 2;
  spec.n_normal = 6;
  const auto m = make_wing_mesh(spec);
  const auto st = compute_stats(m);
  EXPECT_EQ(st.points, m.num_points());
  EXPECT_GT(st.edges, st.points);  // 3D meshes have more edges than nodes
  EXPECT_GT(st.max_aspect_ratio, 1.0);
  EXPECT_NEAR(st.total_volume, m.total_volume(), 1e-12);
}

TEST(ElementTables, FacesCloseEachElement) {
  // For each canonical element placed at unit coordinates, the sum of face
  // area vectors must vanish (closed polyhedron).
  UnstructuredMesh m;
  m.points = {{0, 0, 0}, {1, 0, 0}, {1, 1, 0}, {0, 1, 0},
              {0, 0, 1}, {1, 0, 1}, {1, 1, 1}, {0, 1, 1}};
  Element hex{ElementType::Hex, {0, 1, 2, 3, 4, 5, 6, 7}};
  m.elements = {hex};
  EXPECT_NEAR(m.element_volume(0), 1.0, 1e-12);

  UnstructuredMesh t;
  t.points = {{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {0, 0, 1}};
  t.elements = {Element{ElementType::Tet, {0, 1, 2, 3, -1, -1, -1, -1}}};
  EXPECT_NEAR(t.element_volume(0), 1.0 / 6.0, 1e-12);

  UnstructuredMesh p;
  p.points = {{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {0, 0, 1}, {1, 0, 1}, {0, 1, 1}};
  p.elements = {Element{ElementType::Prism, {0, 1, 2, 3, 4, 5, -1, -1}}};
  EXPECT_NEAR(p.element_volume(0), 0.5, 1e-12);

  UnstructuredMesh y;
  y.points = {{0, 0, 0}, {1, 0, 0}, {1, 1, 0}, {0, 1, 0}, {0.5, 0.5, 1}};
  y.elements = {Element{ElementType::Pyramid, {0, 1, 2, 3, 4, -1, -1, -1}}};
  EXPECT_NEAR(y.element_volume(0), 1.0 / 3.0, 1e-12);
}

}  // namespace
}  // namespace columbia::mesh
