#include <gtest/gtest.h>

#include "driver/flight.hpp"

namespace columbia::driver {
namespace {

/// Builds a synthetic database with known linear aerodynamics:
/// CL = 0.1*alpha + 0.5*deflection, CD = 0.02 + 0.001*alpha^2 + 0.01*mach.
std::pair<DatabaseSpec, std::vector<CaseResult>> linear_db() {
  DatabaseSpec spec;
  spec.deflections = {-0.2, 0.0, 0.2};
  spec.machs = {0.5, 0.8, 1.1};
  spec.alphas_deg = {-4.0, 0.0, 4.0, 8.0};
  spec.betas_deg = {0.0};
  std::vector<CaseResult> results;
  for (real_t d : spec.deflections)
    for (real_t m : spec.machs)
      for (real_t a : spec.alphas_deg) {
        CaseResult r;
        r.deflection_rad = d;
        r.wind = {m, a, 0.0};
        r.cl = 0.1 * a + 0.5 * d;
        r.cd = 0.02 + 0.001 * a * a + 0.01 * m;
        results.push_back(r);
      }
  return {spec, results};
}

TEST(AeroDatabase, ExactAtGridPoints) {
  const auto [spec, results] = linear_db();
  const AeroDatabase db(spec, results);
  EXPECT_NEAR(db.cl(0.0, 0.8, 4.0), 0.4, 1e-12);
  EXPECT_NEAR(db.cl(0.2, 0.5, -4.0), -0.3, 1e-12);
  EXPECT_NEAR(db.cd(0.0, 1.1, 0.0), 0.031, 1e-12);
}

TEST(AeroDatabase, LinearInterpolationIsExactForLinearData) {
  const auto [spec, results] = linear_db();
  const AeroDatabase db(spec, results);
  // CL is linear in alpha and deflection: trilinear interp is exact.
  EXPECT_NEAR(db.cl(0.1, 0.65, 2.0), 0.1 * 2.0 + 0.5 * 0.1, 1e-12);
  EXPECT_NEAR(db.cl(-0.1, 0.8, 6.0), 0.6 - 0.05, 1e-12);
}

TEST(AeroDatabase, ClampsOutsideHull) {
  const auto [spec, results] = linear_db();
  const AeroDatabase db(spec, results);
  // Beyond the alpha range: clamped to the 8-degree value.
  EXPECT_NEAR(db.cl(0.0, 0.8, 20.0), 0.8, 1e-12);
  EXPECT_NEAR(db.cl(0.0, 0.8, -20.0), -0.4, 1e-12);
}

TEST(TrimAlpha, RecoversLinearTrim) {
  const auto [spec, results] = linear_db();
  const AeroDatabase db(spec, results);
  // CL = 0.1 alpha => alpha(CL=0.5) = 5 degrees.
  EXPECT_NEAR(trim_alpha(db, 0.0, 0.8, 0.5), 5.0, 1e-6);
  // With 0.2 rad deflection contributing 0.1 CL: alpha = 4 degrees.
  EXPECT_NEAR(trim_alpha(db, 0.2, 0.8, 0.5), 4.0, 1e-6);
}

TEST(TrimAlpha, ClampsToDatabaseRange) {
  const auto [spec, results] = linear_db();
  const AeroDatabase db(spec, results);
  const real_t a = trim_alpha(db, 0.0, 0.8, 5.0);  // unreachable CL
  EXPECT_LE(a, 8.0 + 1e-9);
}

TEST(FlyLongitudinal, TrajectoryAdvances) {
  const auto [spec, results] = linear_db();
  const AeroDatabase db(spec, results);
  FlightSpec fs;
  fs.steps = 50;
  const auto traj = fly_longitudinal(db, fs);
  ASSERT_EQ(traj.size(), 51u);
  EXPECT_GT(traj.back().range, traj.front().range);
  EXPECT_NEAR(traj.back().time, 25.0, 1e-9);
  for (const auto& s : traj) {
    EXPECT_TRUE(std::isfinite(s.velocity));
    EXPECT_TRUE(std::isfinite(s.altitude));
    EXPECT_GT(s.velocity, 0.0);
  }
}

TEST(TrimAlphaChecked, FlagsUnreachableTargetCl) {
  // linear_db: CL = 0.1*alpha + 0.5*deflection with alpha in [-4, 8], so
  // at deflection 0 the achievable envelope is [-0.4, 0.8]. A target of
  // 2.0 saturates — the result must say so instead of silently flying the
  // clamped angle as if it delivered CL = 2.
  const auto [spec, results] = linear_db();
  const AeroDatabase db(spec, results);
  const TrimResult out = trim_alpha_checked(db, 0.0, 0.8, 2.0);
  EXPECT_FALSE(out.in_range);
  EXPECT_NEAR(out.cl_lo, -0.4, 1e-9);
  EXPECT_NEAR(out.cl_hi, 0.8, 1e-9);
  EXPECT_NEAR(out.alpha_deg, 8.0, 1e-6);       // saturated endpoint
  EXPECT_NEAR(out.achieved_cl, 0.8, 1e-6);     // what it actually delivers
  // The convenience wrapper returns the same (saturated) angle.
  EXPECT_DOUBLE_EQ(trim_alpha(db, 0.0, 0.8, 2.0), out.alpha_deg);
}

TEST(TrimAlphaChecked, InRangeTargetIsAchieved) {
  const auto [spec, results] = linear_db();
  const AeroDatabase db(spec, results);
  const TrimResult out = trim_alpha_checked(db, 0.0, 0.8, 0.3);
  EXPECT_TRUE(out.in_range);
  EXPECT_NEAR(out.alpha_deg, 3.0, 1e-6);  // CL = 0.1 * alpha
  EXPECT_NEAR(out.achieved_cl, 0.3, 1e-6);
}

TEST(FlyLongitudinal, LiftTrimHoldsGamma) {
  // With CL trimmed so lift ~ weight, the flight-path angle stays small.
  const auto [spec, results] = linear_db();
  const AeroDatabase db(spec, results);
  FlightSpec fs;
  fs.steps = 100;
  // Pick target CL so L = W at the initial speed:
  // W = m g = 588 kN; q S = 0.5*0.41*250^2*120 = 1.5375e6 N.
  fs.target_cl = 588399.0 / 1537500.0;
  const auto traj = fly_longitudinal(db, fs);
  for (const auto& s : traj) EXPECT_LT(std::abs(s.gamma), 0.2);
}

TEST(FlyLongitudinal, MoreThrustClimbsFaster) {
  const auto [spec, results] = linear_db();
  const AeroDatabase db(spec, results);
  FlightSpec low, high;
  low.steps = high.steps = 80;
  low.thrust = 0.5e5;
  high.thrust = 3.0e5;
  const auto tl = fly_longitudinal(db, low);
  const auto th = fly_longitudinal(db, high);
  EXPECT_GT(th.back().velocity, tl.back().velocity);
}

}  // namespace
}  // namespace columbia::driver
