#include <gtest/gtest.h>

#include "graph/agglomerate.hpp"
#include "graph/partition.hpp"

namespace columbia::graph {
namespace {

using Edge = std::pair<index_t, index_t>;

Csr grid_graph(index_t nx, index_t ny) {
  std::vector<Edge> edges;
  auto id = [&](index_t i, index_t j) { return j * nx + i; };
  for (index_t j = 0; j < ny; ++j)
    for (index_t i = 0; i < nx; ++i) {
      if (i + 1 < nx) edges.emplace_back(id(i, j), id(i + 1, j));
      if (j + 1 < ny) edges.emplace_back(id(i, j), id(i, j + 1));
    }
  return Csr::from_edges(nx * ny, edges);
}

TEST(Agglomerate, CoversAllVertices) {
  const Csr g = grid_graph(10, 10);
  const auto agg = agglomerate(g);
  EXPECT_EQ(agg.fine_to_coarse.size(), 100u);
  for (index_t c : agg.fine_to_coarse) {
    EXPECT_GE(c, 0);
    EXPECT_LT(c, agg.coarse.num_vertices());
  }
}

TEST(Agglomerate, CoarseningRatioMatchesPaperHierarchy) {
  // Distance-2 agglomeration: the paper's NSU3D hierarchy shrinks by ~8x
  // per level (72M -> 9M -> 1M points, Sec. VI). A 2D grid's distance-2
  // neighborhood holds up to 13 vertices; greedy lands in ~[4, 13].
  const Csr g = grid_graph(30, 30);
  const auto agg = agglomerate(g);
  EXPECT_GT(agg.coarsening_ratio(), 4.0);
  EXPECT_LT(agg.coarsening_ratio(), 13.5);
}

TEST(Agglomerate, RecursiveHierarchyShrinks) {
  Csr g = grid_graph(40, 40);
  std::vector<index_t> sizes{g.num_vertices()};
  for (int l = 0; l < 4; ++l) {
    const auto agg = agglomerate(g);
    sizes.push_back(agg.coarse.num_vertices());
    g = agg.coarse;
  }
  for (std::size_t i = 1; i < sizes.size(); ++i)
    EXPECT_LT(sizes[i], sizes[i - 1]);
  EXPECT_LT(sizes.back(), 40);
}

TEST(Agglomerate, AgglomeratesAreConnectedSeedStars) {
  const Csr g = grid_graph(12, 12);
  const auto agg = agglomerate(g);
  // Every agglomerate has >= 1 vertex; coarse vertex weights sum to n.
  EXPECT_DOUBLE_EQ(agg.coarse.total_vertex_weight(), 144.0);
}

TEST(Agglomerate, PriorityOrdersSeeds) {
  const Csr g = grid_graph(10, 10);
  std::vector<real_t> priority(100, 0.0);
  priority[55] = 10.0;  // force vertex 55 to seed first
  const auto agg = agglomerate(g, priority);
  const index_t c = agg.fine_to_coarse[55];
  // All of 55's neighbors joined its agglomerate.
  for (index_t u : g.neighbors(55)) EXPECT_EQ(agg.fine_to_coarse[std::size_t(u)], c);
}

TEST(MatchPartitions, RelabelsForOverlap) {
  const Csr g = grid_graph(16, 16);
  const auto fine_part = partition(g, 4);
  const auto agg = agglomerate(g);
  auto coarse_part = partition(agg.coarse, 4);

  const real_t before =
      partition_overlap(fine_part, agg.fine_to_coarse, coarse_part);
  const auto matched =
      match_partitions(fine_part, agg.fine_to_coarse, coarse_part, 4);
  const real_t after =
      partition_overlap(fine_part, agg.fine_to_coarse, matched);
  EXPECT_GE(after, before - 1e-12);
  EXPECT_GT(after, 0.25);  // better than random labeling
}

TEST(MatchPartitions, PermutationOfLabels) {
  const Csr g = grid_graph(8, 8);
  const auto fine_part = partition(g, 3);
  const auto agg = agglomerate(g);
  const auto coarse_part = partition(agg.coarse, 3);
  const auto matched =
      match_partitions(fine_part, agg.fine_to_coarse, coarse_part, 3);
  for (index_t p : matched) {
    EXPECT_GE(p, 0);
    EXPECT_LT(p, 3);
  }
  // Same multiset of part sizes (labels permuted only).
  std::vector<int> a(3, 0), b(3, 0);
  for (index_t p : coarse_part) ++a[std::size_t(p)];
  for (index_t p : matched) ++b[std::size_t(p)];
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

TEST(PartitionOverlap, PerfectNestingIsOne) {
  std::vector<index_t> fine_part{0, 0, 1, 1};
  std::vector<index_t> f2c{0, 0, 1, 1};
  std::vector<index_t> coarse_part{0, 1};
  EXPECT_DOUBLE_EQ(partition_overlap(fine_part, f2c, coarse_part), 1.0);
}

}  // namespace
}  // namespace columbia::graph
