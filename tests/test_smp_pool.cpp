#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "smp/pool.hpp"
#include "support/random.hpp"

namespace columbia::smp {
namespace {

TEST(Pool, EnvThreadsAtLeastOne) { EXPECT_GE(env_threads(), 1); }

TEST(Pool, CoversRangeExactlyOnce) {
  ThreadPool pool(4);
  // Chunks are disjoint, so plain (non-atomic) counters are race-free.
  std::vector<int> hits(10013, 0);
  pool.parallel_for(0, hits.size(), 64,
                    [&](std::size_t b, std::size_t e, int) {
                      for (std::size_t i = b; i < e; ++i) ++hits[i];
                    });
  for (std::size_t i = 0; i < hits.size(); ++i)
    ASSERT_EQ(hits[i], 1) << "index " << i;
}

TEST(Pool, SubrangeAndTidBounds) {
  ThreadPool pool(3);
  std::vector<int> hits(5000, 0);
  std::atomic<bool> tid_ok{true};
  pool.parallel_for(1200, 4321, 128,
                    [&](std::size_t b, std::size_t e, int tid) {
                      if (tid < 0 || tid >= 3) tid_ok = false;
                      for (std::size_t i = b; i < e; ++i) ++hits[i];
                    });
  EXPECT_TRUE(tid_ok.load());
  for (std::size_t i = 0; i < hits.size(); ++i)
    ASSERT_EQ(hits[i], (i >= 1200 && i < 4321) ? 1 : 0) << "index " << i;
}

TEST(Pool, ReduceSumBitIdenticalAcrossThreadCounts) {
  std::vector<real_t> v(25003);
  Xoshiro256 rng(42);
  for (real_t& x : v) x = rng.uniform(-1, 1);
  auto run = [&](int threads) {
    ThreadPool pool(threads);
    return pool.reduce_sum(0, v.size(), 97,
                           [&](std::size_t b, std::size_t e) {
                             real_t s = 0;
                             for (std::size_t i = b; i < e; ++i) s += v[i];
                             return s;
                           });
  };
  const real_t r1 = run(1);
  // Bit-identical, not merely close: chunking is independent of the
  // thread count and partials combine in chunk order.
  EXPECT_EQ(r1, run(2));
  EXPECT_EQ(r1, run(4));
  EXPECT_EQ(r1, run(7));
}

TEST(Pool, NestedParallelForFallsBackToSerial) {
  ThreadPool pool(4);
  std::vector<int> hits(2000, 0);
  pool.parallel_for(0, 2, 1, [&](std::size_t ob, std::size_t oe, int) {
    for (std::size_t o = ob; o < oe; ++o) {
      const std::size_t base = o * 1000;
      pool.parallel_for(base, base + 1000, 64,
                        [&](std::size_t b, std::size_t e, int) {
                          for (std::size_t i = b; i < e; ++i) ++hits[i];
                        });
    }
  });
  for (std::size_t i = 0; i < hits.size(); ++i) ASSERT_EQ(hits[i], 1);
}

TEST(Pool, ResizeKeepsWorking) {
  ThreadPool pool(1);
  for (int threads : {1, 4, 2, 1}) {
    pool.resize(threads);
    EXPECT_EQ(pool.num_threads(), threads);
    std::vector<int> hits(1000, 0);
    pool.parallel_for(0, hits.size(), 32,
                      [&](std::size_t b, std::size_t e, int) {
                        for (std::size_t i = b; i < e; ++i) ++hits[i];
                      });
    for (int h : hits) ASSERT_EQ(h, 1);
  }
}

TEST(Pool, ManySmallJobsDrainCleanly) {
  ThreadPool pool(4);
  std::atomic<long> total{0};
  for (int rep = 0; rep < 200; ++rep)
    pool.parallel_for(0, 64, 4, [&](std::size_t b, std::size_t e, int) {
      total += long(e - b);
    });
  EXPECT_EQ(total.load(), 200 * 64);
}

TEST(Pool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(5, 5, 16, [&](std::size_t, std::size_t, int) {
    called = true;
  });
  EXPECT_FALSE(called);
  EXPECT_EQ(pool.reduce_sum(3, 3, 8, [](std::size_t, std::size_t) {
    return real_t(1);
  }), real_t(0));
}

}  // namespace
}  // namespace columbia::smp
