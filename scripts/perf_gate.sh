#!/usr/bin/env bash
# Perf-regression gate: re-measure the benchmarked kernels and the halo
# transport, then compare against the committed baselines with
# columbia_report --baseline. Exits nonzero on a regression, so CI treats
# BENCH_kernels.json / BENCH_comm.json as enforced numbers, not décor.
#
#   scripts/perf_gate.sh                 # build dir ./build, tolerance 40%
#   BUILD=build-x PERF_GATE_TOL=15% scripts/perf_gate.sh
#   BUILD=build-native scripts/perf_gate.sh   # release-native preset
#
# The gate prints which build configuration produced the measurement
# (build dir + compiler flags from the CMake cache) so a number measured
# under the `release-native` preset (-march=native, FP contraction off)
# is never mistaken for one from the portable `release` build.
#
# The default tolerance is deliberately loose: these are wall-clock numbers
# from a shared CI container, and the gate's job is catching step-function
# regressions (an accidental O(n^2), a lost workspace reuse), not 5% noise.
# Thread-sweep rows the host cannot run (threads > hardware threads) are
# skipped inside columbia_report with an explicit reason rather than failed
# — the CI container has a single hardware thread (see ROADMAP.md).
#
# BENCH_comm.json also carries the comm-observatory rows ("wait/exchange
# (us)", measured with span recording on): those are Timing-gated like the
# other wall-clock columns, while per-exchange "messages" stays exact.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${BUILD:-build}"
TOL="${PERF_GATE_TOL:-40%}"
JOBS="${JOBS:-$(nproc 2>/dev/null || echo 2)}"

for target in micro_kernels ablation_hybrid_comm columbia_report; do
  cmake --build "$BUILD" -j "$JOBS" --target "$target"
done

# Measurement provenance: name the build configuration the numbers came
# from before printing any of them.
build_type=$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$BUILD/CMakeCache.txt")
cxx_flags=$(sed -n 's/^CMAKE_CXX_FLAGS:[^=]*=//p' "$BUILD/CMakeCache.txt")
echo "== perf gate: measuring with BUILD=$BUILD" \
  "(CMAKE_BUILD_TYPE=${build_type:-?}${cxx_flags:+, CMAKE_CXX_FLAGS=$cxx_flags}) =="
echo

echo "== perf gate: re-measuring kernels (micro_kernels --kernels-json) =="
"$BUILD/bench/micro_kernels" --kernels-json "$BUILD/BENCH_kernels_fresh.json"

echo
echo "== perf gate: re-measuring halo transport (ablation_hybrid_comm) =="
"$BUILD/bench/ablation_hybrid_comm" --json "$BUILD/BENCH_comm_fresh.json" \
  > /dev/null

echo
"$BUILD/tools/columbia_report" "$BUILD/BENCH_kernels_fresh.json" \
  --baseline BENCH_kernels.json --tolerance "$TOL"

echo
"$BUILD/tools/columbia_report" "$BUILD/BENCH_comm_fresh.json" \
  --baseline BENCH_comm.json --tolerance "$TOL"

echo
echo "== perf gate passed (tolerance $TOL) =="
