#!/usr/bin/env bash
# Tier-1 verification: the full suite in the release preset, then the
# thread-sensitive suites (labels tsan + resil) under ThreadSanitizer.
#
#   scripts/check.sh            # release + tsan
#   JOBS=8 scripts/check.sh     # override parallelism
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc 2>/dev/null || echo 2)}"

echo "== release: configure + build + full ctest =="
cmake --preset release
cmake --build --preset release -j "$JOBS"
ctest --preset release -j "$JOBS"

echo
echo "== tsan: configure + build + ctest -L tsan (includes resil) =="
cmake --preset tsan
cmake --build --preset tsan -j "$JOBS"
ctest --preset tsan -j "$JOBS"

echo
echo "== soak: distributed fault matrix (scripts/soak.sh) =="
# Backend x strategy x fault-kind sweep of the guarded multi-rank solve:
# every cell must converge or recover under a watchdog, with the history
# artifact bit-identical to the clean in-process reference.
BUILD_DIR=build scripts/soak.sh

echo
echo "== perf gate: BENCH_*.json baselines (scripts/perf_gate.sh) =="
# Gates every row in BENCH_kernels.json — the end-to-end residual sweeps,
# the nsu3d_* per-phase kernel rows (gradient/limiter/flux/smoother/line
# solve), and the halo-transport rows in BENCH_comm.json.
scripts/perf_gate.sh

echo
echo "== all checks passed =="
