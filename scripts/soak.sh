#!/usr/bin/env bash
# Bounded fault-matrix soak for the distributed transport: runs the
# guarded multi-rank solve (examples/distributed_solve) across
# backend x strategy x fault-mix, requires every run to converge or
# recover (never hang — each run sits under a hard watchdog), and
# bit-compares the residual/CL/CD history artifact across every cell
# against the clean in-process reference.
#
#   scripts/soak.sh                   # build dir ./build, watchdog 300s
#   BUILD_DIR=out scripts/soak.sh     # alternate build tree
#   SOAK_TIMEOUT=120 scripts/soak.sh  # tighter per-run watchdog (seconds)
set -uo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"
SOLVE="$BUILD_DIR/examples/distributed_solve"
TIMEOUT_S="${SOAK_TIMEOUT:-300}"
CYCLES=8
WORK="$(mktemp -d "${TMPDIR:-/tmp}/columbia_soak.XXXXXX")"
trap 'rm -rf "$WORK"' EXIT

if [[ ! -x "$SOLVE" ]]; then
  echo "soak: $SOLVE not built (cmake --build $BUILD_DIR -j)" >&2
  exit 2
fi

fail=0
run() { # run <name> <history-file> <args...>
  local name="$1" hist="$2"
  shift 2
  local log="$WORK/$name.log"
  if ! timeout "$TIMEOUT_S" "$SOLVE" --cycles "$CYCLES" --history "$hist" \
      --checkpoint "$WORK/$name.ckpt" "$@" >"$log" 2>&1; then
    echo "FAIL $name (exit $?)"
    sed 's/^/    /' "$log"
    fail=1
    return 1
  fi
  local status
  status="$(grep -o 'status: [a-z]*' "$log" | head -1)"
  echo "ok   $name (${status:-status: ok})"
}

echo "== soak: clean in-process reference (both Fig. 7 strategies) =="
run ref-t2t "$WORK/ref-t2t.txt" --backend threads --ranks 2 --strategy t2t
run ref-master "$WORK/ref-master.txt" --backend threads --ranks 2 \
  --strategy master --tpp 2

# The fault matrix: every wire backend under every transport fault kind.
# conn_reset tears down a connection (tcp) or flushes the peer-directed
# ring mid-flight (shm); the frame/timing faults run everywhere. The
# overlap-agg cells pin the interior/halo split AND coarse-level rank
# agglomeration on explicitly, so msg_delay and conn_reset land while
# exchanges are in flight between post() and finish() — delayed or
# reset-flushed frames must be recovered by the finish()-side protocol
# without perturbing the history.
declare -a CELLS=(
  "shm-clean|shm|t2t||"
  "tcp-clean|tcp|t2t||"
  "shm-master|shm|master||"
  "shm-drop|shm|t2t|seed=13,msg_drop=0.2,halo_corrupt=0.2|"
  "tcp-drop|tcp|t2t|seed=13,msg_drop=0.2,halo_corrupt=0.2|"
  "tcp-delay|tcp|t2t|seed=5,msg_delay=0.3@5|"
  "tcp-reset|tcp|t2t|seed=29,conn_reset=0.3|"
  "shm-hang|shm|t2t|seed=3,peer_hang=1@1|"
  "shm-overlap-agg|shm|t2t|seed=7,msg_delay=0.2,conn_reset=0.05|--overlap 1 --agglomerate 64"
  "tcp-overlap-agg|tcp|t2t|seed=11,msg_delay=0.2@5,conn_reset=0.1|--overlap 1 --agglomerate 64"
)

echo
echo "== soak: fault matrix (backend x strategy x fault) =="
for cell in "${CELLS[@]}"; do
  IFS='|' read -r name backend strategy faults extra <<<"$cell"
  args=(--backend "$backend" --ranks 2 --strategy "$strategy")
  [[ "$strategy" == master ]] && args+=(--tpp 2)
  [[ -n "$faults" ]] && args+=(--faults "$faults")
  # shellcheck disable=SC2206 — extra is a deliberate word-split flag list
  [[ -n "$extra" ]] && args+=($extra)
  run "$name" "$WORK/$name.txt" "${args[@]}" || continue
  ref="$WORK/ref-t2t.txt"
  [[ "$strategy" == master ]] && ref="$WORK/ref-master.txt"
  if ! cmp -s "$ref" "$WORK/$name.txt"; then
    echo "FAIL $name: history differs from the clean reference"
    fail=1
  fi
done

# Traced cell: the distributed flight recorder end-to-end. A traced shm
# run must (a) leave one durable telemetry shard per rank next to the
# requested trace, (b) keep the solve history bit-identical to the
# untraced reference (the recorder is numerically invisible), and (c)
# yield a non-empty clock-aligned comm report when the shards are fed to
# `columbia_report comm` — matched halo messages > 0, both ranks in the
# liveness table, and no provenance mismatch.
echo
echo "== soak: traced shm run -> merged comm report =="
REPORT="$BUILD_DIR/tools/columbia_report"
if [[ ! -x "$REPORT" ]]; then
  echo "FAIL trace-shm: $REPORT not built"
  fail=1
elif run trace-shm "$WORK/trace-shm.txt" --backend shm --ranks 2 \
    --strategy t2t --trace "$WORK/trace-shm.json"; then
  if ! cmp -s "$WORK/ref-t2t.txt" "$WORK/trace-shm.txt"; then
    echo "FAIL trace-shm: traced history differs from the clean reference"
    fail=1
  fi
  shards=("$WORK"/trace-shm.json.shards.rank*.jsonl)
  if [[ ! -e "${shards[0]:-}" ]]; then
    echo "FAIL trace-shm: no telemetry shards left beside the trace"
    fail=1
  elif grep -q '"obs":false' "${shards[0]}"; then
    echo "skip trace-shm report: observability compiled out in this build"
  elif ! "$REPORT" comm --json "${shards[@]}" >"$WORK/trace-shm-comm.json" \
      2>"$WORK/trace-shm-comm.err"; then
    echo "FAIL trace-shm: columbia_report comm failed on the shards"
    sed 's/^/    /' "$WORK/trace-shm-comm.err"
    fail=1
  else
    python3 - "$WORK/trace-shm-comm.json" <<'PY' || fail=1
import json, sys
run = json.load(open(sys.argv[1]))["runs"][0]
msgs = sum(g["messages"] for g in run["comm"]["groups"])
live = len(run["liveness"])
ok = msgs > 0 and live == 2 and not run["provenance_mismatch"]
word = "ok  " if ok else "FAIL"
print(f"{word} trace-shm comm report: {msgs} matched messages, "
      f"{live} liveness rows, provenance "
      f"{'mismatch' if run['provenance_mismatch'] else 'clean'}")
sys.exit(0 if ok else 1)
PY
  fi
fi

echo
if [[ "$fail" -ne 0 ]]; then
  echo "== soak: FAILED =="
  exit 1
fi
echo "== soak: every cell converged or recovered, histories bit-identical =="
