#!/usr/bin/env bash
# Bounded fault-matrix soak for the distributed transport: runs the
# guarded multi-rank solve (examples/distributed_solve) across
# backend x strategy x fault-mix, requires every run to converge or
# recover (never hang — each run sits under a hard watchdog), and
# bit-compares the residual/CL/CD history artifact across every cell
# against the clean in-process reference.
#
#   scripts/soak.sh                   # build dir ./build, watchdog 300s
#   BUILD_DIR=out scripts/soak.sh     # alternate build tree
#   SOAK_TIMEOUT=120 scripts/soak.sh  # tighter per-run watchdog (seconds)
set -uo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"
SOLVE="$BUILD_DIR/examples/distributed_solve"
TIMEOUT_S="${SOAK_TIMEOUT:-300}"
CYCLES=8
WORK="$(mktemp -d "${TMPDIR:-/tmp}/columbia_soak.XXXXXX")"
trap 'rm -rf "$WORK"' EXIT

if [[ ! -x "$SOLVE" ]]; then
  echo "soak: $SOLVE not built (cmake --build $BUILD_DIR -j)" >&2
  exit 2
fi

fail=0
run() { # run <name> <history-file> <args...>
  local name="$1" hist="$2"
  shift 2
  local log="$WORK/$name.log"
  if ! timeout "$TIMEOUT_S" "$SOLVE" --cycles "$CYCLES" --history "$hist" \
      --checkpoint "$WORK/$name.ckpt" "$@" >"$log" 2>&1; then
    echo "FAIL $name (exit $?)"
    sed 's/^/    /' "$log"
    fail=1
    return 1
  fi
  local status
  status="$(grep -o 'status: [a-z]*' "$log" | head -1)"
  echo "ok   $name (${status:-status: ok})"
}

echo "== soak: clean in-process reference (both Fig. 7 strategies) =="
run ref-t2t "$WORK/ref-t2t.txt" --backend threads --ranks 2 --strategy t2t
run ref-master "$WORK/ref-master.txt" --backend threads --ranks 2 \
  --strategy master --tpp 2

# The fault matrix: every wire backend under every transport fault kind.
# conn_reset tears down a connection (tcp) or flushes the peer-directed
# ring mid-flight (shm); the frame/timing faults run everywhere. The
# overlap-agg cells pin the interior/halo split AND coarse-level rank
# agglomeration on explicitly, so msg_delay and conn_reset land while
# exchanges are in flight between post() and finish() — delayed or
# reset-flushed frames must be recovered by the finish()-side protocol
# without perturbing the history.
declare -a CELLS=(
  "shm-clean|shm|t2t||"
  "tcp-clean|tcp|t2t||"
  "shm-master|shm|master||"
  "shm-drop|shm|t2t|seed=13,msg_drop=0.2,halo_corrupt=0.2|"
  "tcp-drop|tcp|t2t|seed=13,msg_drop=0.2,halo_corrupt=0.2|"
  "tcp-delay|tcp|t2t|seed=5,msg_delay=0.3@5|"
  "tcp-reset|tcp|t2t|seed=29,conn_reset=0.3|"
  "shm-hang|shm|t2t|seed=3,peer_hang=1@1|"
  "shm-overlap-agg|shm|t2t|seed=7,msg_delay=0.2,conn_reset=0.05|--overlap 1 --agglomerate 64"
  "tcp-overlap-agg|tcp|t2t|seed=11,msg_delay=0.2@5,conn_reset=0.1|--overlap 1 --agglomerate 64"
)

echo
echo "== soak: fault matrix (backend x strategy x fault) =="
for cell in "${CELLS[@]}"; do
  IFS='|' read -r name backend strategy faults extra <<<"$cell"
  args=(--backend "$backend" --ranks 2 --strategy "$strategy")
  [[ "$strategy" == master ]] && args+=(--tpp 2)
  [[ -n "$faults" ]] && args+=(--faults "$faults")
  # shellcheck disable=SC2206 — extra is a deliberate word-split flag list
  [[ -n "$extra" ]] && args+=($extra)
  run "$name" "$WORK/$name.txt" "${args[@]}" || continue
  ref="$WORK/ref-t2t.txt"
  [[ "$strategy" == master ]] && ref="$WORK/ref-master.txt"
  if ! cmp -s "$ref" "$WORK/$name.txt"; then
    echo "FAIL $name: history differs from the clean reference"
    fail=1
  fi
done

echo
if [[ "$fail" -ne 0 ]]; then
  echo "== soak: FAILED =="
  exit 1
fi
echo "== soak: every cell converged or recovered, histories bit-identical =="
