// Solution-adaptive refinement loop — the workflow behind the paper's
// "adaptively refined Cartesian meshes": solve on a coarse mesh, flag the
// cells with the strongest density jumps, refine, re-solve. Writes the
// final surface-adjacent mesh statistics and a VTK file of the wing mesh
// for inspection.
#include <cstdio>
#include <fstream>

#include "cart3d/solver.hpp"
#include "cartesian/adaptation.hpp"
#include "geom/components.hpp"
#include "mesh/builders.hpp"
#include "mesh/dual_metrics.hpp"
#include "mesh/io.hpp"

using namespace columbia;

int main() {
  // Transonic flow over a sphere: a bow of compression the sensor finds.
  const auto sphere = geom::make_sphere({0, 0, 0}, 0.4, 20, 40);
  geom::Aabb dom;
  dom.expand({-1.6, -1.6, -1.6});
  dom.expand({1.6, 1.6, 1.6});
  cartesian::CartMeshOptions opt;
  opt.base_n = 8;
  opt.max_level = 1;
  cartesian::CartMesh mesh = cartesian::build_cart_mesh(sphere, dom, opt);

  euler::FlowConditions fc;
  fc.mach = 0.7;
  cart3d::SolverOptions sopt;
  sopt.mg_levels = 2;
  sopt.cfl = 1.0;

  for (int cycle = 0; cycle < 3; ++cycle) {
    cart3d::Cart3DSolver solver(mesh, fc, sopt);
    const auto hist = solver.solve(60, 2.5);
    const auto forces = solver.integrate_forces();
    std::printf("adapt cycle %d: %6d cells (%5d cut), residual drop %.1e, "
                "CD=%.4f\n",
                cycle, mesh.num_cells(), mesh.num_cut_cells(),
                hist.back() / hist.front(), forces.cd);
    if (cycle == 2) break;
    const auto flags =
        cartesian::flag_by_density_jump(mesh, solver.solution(), 0.12);
    mesh = cartesian::refine_cells(mesh, &sphere, flags);
  }

  // Also demonstrate unstructured-mesh I/O: write the RANS wing mesh with
  // its wall-distance field to VTK for ParaView.
  mesh::WingMeshSpec wspec;
  wspec.n_wrap = 32;
  wspec.n_span = 4;
  wspec.n_normal = 12;
  const auto wing = mesh::make_wing_mesh(wspec);
  const auto dm = mesh::compute_dual_metrics(wing);
  std::ofstream vtk("wing_mesh.vtk");
  const mesh::PointField fields[] = {{"wall_distance", dm.wall_distance}};
  mesh::write_vtk(vtk, wing, fields);
  std::printf("\nwrote wing_mesh.vtk (%d points, wall-distance field)\n",
              wing.num_points());
  return 0;
}
