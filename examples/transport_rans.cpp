// High-fidelity RANS analysis of a transport wing with the NSU3D-style
// solver — the paper's workhorse (Secs. III, VI): hybrid viscous mesh with
// geometrically stretched wall layers, Spalart-Allmaras turbulence model,
// line-implicit agglomeration multigrid with W-cycles.
//
// Observability flags:
//   --trace out.json   record solver spans (view in chrome://tracing)
//   --jsonl conv.jsonl stream per-cycle residual/forces/level timings
// Resilience flags:
//   --faults "seed=42,state_nan=0.2@2"  arm deterministic fault injection
//                      (COLUMBIA_FAULTS grammar) and run the guarded solve
//   --faults-help      print the full COLUMBIA_FAULTS grammar and exit
#include <cstdio>
#include <cstring>
#include <string>

#include "mesh/builders.hpp"
#include "nsu3d/solver.hpp"
#include "obs/obs.hpp"
#include "resil/faults.hpp"
#include "smp/pool.hpp"

using namespace columbia;

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--faults-help") == 0) {
      std::printf("%s", resil::fault_grammar_help().c_str());
      return 0;
    }
  std::string trace_path, jsonl_path, faults_spec;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0) trace_path = argv[i + 1];
    if (std::strcmp(argv[i], "--jsonl") == 0) jsonl_path = argv[i + 1];
    if (std::strcmp(argv[i], "--faults") == 0) faults_spec = argv[i + 1];
  }
  if (!trace_path.empty() || !jsonl_path.empty()) obs::set_enabled(true);
  if (!jsonl_path.empty() && !obs::open_jsonl(jsonl_path))
    std::fprintf(stderr, "telemetry: cannot open %s\n", jsonl_path.c_str());
  if (!faults_spec.empty()) {
    try {
      resil::FaultInjector::global().configure(
          resil::parse_fault_spec(faults_spec));
      std::printf("faults: armed with '%s'\n", faults_spec.c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "faults: %s\n", e.what());
      return 1;
    }
  }

  // Hybrid viscous wing mesh: hexahedral stretched wall layers under a
  // prismatic outer block (the DPW-style case of the paper's Fig. 13).
  mesh::WingMeshSpec spec;
  spec.n_wrap = 48;
  spec.n_span = 8;
  spec.n_normal = 20;
  spec.wall_spacing = 1e-4;  // ~Re-appropriate first layer
  const mesh::UnstructuredMesh wing = mesh::make_wing_mesh(spec);
  const mesh::MeshStats st = mesh::compute_stats(wing);
  std::printf("mesh: %d points, %d edges, hex=%d prism=%d, max aspect %.1e\n",
              st.points, st.edges,
              st.elements_by_type[std::size_t(mesh::ElementType::Hex)],
              st.elements_by_type[std::size_t(mesh::ElementType::Prism)],
              st.max_aspect_ratio);

  // The paper's benchmark conditions: M = 0.75, Re = 3e6 (DPW wing/body).
  euler::FlowConditions conditions;
  conditions.mach = 0.75;
  conditions.alpha_deg = 0.0;
  conditions.reynolds = 3.0e6;

  nsu3d::Nsu3dOptions opt;
  opt.mg_levels = 4;
  opt.cycle = nsu3d::CycleType::W;  // "found to produce superior rates"
  opt.smoother = nsu3d::SmootherKind::LineImplicit;
  nsu3d::Nsu3dSolver solver(wing, conditions, opt);

  std::printf("multigrid hierarchy:");
  for (int l = 0; l < solver.num_levels(); ++l)
    std::printf(" %d", solver.level(l).num_nodes);
  std::printf(" nodes; implicit lines up to %d points\n",
              solver.level(0).lines.longest());

  std::vector<real_t> history;
  if (!faults_spec.empty()) {
    const resil::GuardedSolveResult gr = solver.solve_guarded(120, 4);
    history = gr.history;
    std::printf("guarded solve: outcome=%s rollbacks=%d backoffs=%d\n",
                resil::outcome_name(gr.outcome), gr.rollbacks, gr.backoffs);
  } else {
    history = solver.solve(120, 4);
  }
  std::printf("RANS convergence: %.3e -> %.3e in %zu W-cycles "
              "(%.2f orders)\n",
              history.front(), history.back(), history.size() - 1,
              -std::log10(history.back() / history.front()));

  const nsu3d::Forces f = solver.integrate_forces();
  std::printf("wing pressure forces: CL=%.4f CD=%.4f\n", f.cl, f.cd);

  if (!jsonl_path.empty()) {
    obs::close_jsonl();
    std::printf("telemetry: per-cycle JSONL -> %s\n", jsonl_path.c_str());
  }
  if (!trace_path.empty()) {
    smp::ThreadPool::global().publish_stats();
    if (obs::write_chrome_trace_file(trace_path))
      std::printf("trace: %zu events -> %s\n", obs::num_trace_events(),
                  trace_path.c_str());
    else
      std::fprintf(stderr, "trace: cannot write %s\n", trace_path.c_str());
  }
  return 0;
}
