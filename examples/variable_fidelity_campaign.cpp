// The paper's top-level workflow in one call: a variable-fidelity
// analysis campaign. NSU3D (RANS) anchors the most important flight
// condition at high fidelity; Cart3D (Euler) sweeps the broad envelope.
#include <cstdio>

#include "driver/variable_fidelity.hpp"
#include "support/table.hpp"

using namespace columbia;

int main() {
  driver::CampaignSpec spec;

  // High-fidelity anchors: cruise and a climb point.
  spec.anchor_points = {{0.75, 0.0, 0.0}, {0.70, 2.0, 0.0}};
  spec.wing_mesh.n_wrap = 32;
  spec.wing_mesh.n_span = 4;
  spec.wing_mesh.n_normal = 14;
  spec.nsu3d_options.mg_levels = 3;
  spec.nsu3d_max_cycles = 40;

  // Envelope database: transport configuration, inviscid sweep.
  spec.database.deflections = {0.0};
  spec.database.machs = {0.6, 0.8};
  spec.database.alphas_deg = {0.0, 4.0};
  spec.database.geometry = [](real_t) {
    return geom::make_transport(/*with_nacelle=*/true, 1);
  };
  spec.database.mesh_options.base_n = 8;
  spec.database.mesh_options.max_level = 2;
  spec.database.solver_options.mg_levels = 2;
  spec.database.max_cycles = 15;

  std::printf("running variable-fidelity campaign...\n\n");
  const driver::CampaignResult result = driver::run_campaign(spec);

  std::printf("high-fidelity (RANS) anchors:\n");
  Table a({"Mach", "alpha", "CL", "CD", "residual drop"});
  for (const auto& r : result.anchors)
    a.add_row({Table::num(r.wind.mach, 2), Table::num(r.wind.alpha_deg, 1),
               Table::num(r.cl, 4), Table::num(r.cd, 4),
               Table::num(r.residual_drop, 5)});
  a.print();

  std::printf("\nenvelope database (inviscid):\n");
  Table d({"Mach", "alpha", "CL", "CD"});
  for (const auto& r : result.database)
    d.add_row({Table::num(r.wind.mach, 2), Table::num(r.wind.alpha_deg, 1),
               Table::num(r.cl, 4), Table::num(r.cd, 4)});
  d.print();

  std::printf("\n%d cases on %d meshes; mesh rate %.1fM cells/min\n",
              result.database_stats.cases_run,
              result.database_stats.meshes_generated,
              result.database_stats.cells_per_minute() / 1e6);
  return 0;
}
