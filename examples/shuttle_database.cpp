// Aero-performance database fill for the Space Shuttle Launch Vehicle
// configuration — the paper's Sec. IV workflow: configuration-space
// (elevon deflections) x wind-space (Mach, alpha) sweep with mesh
// generation amortized per geometry instance and several cases in flight
// simultaneously.
//
// Resilience flags:
//   --faults "seed=7,case_throw=0.3"  arm deterministic fault injection
//                       (COLUMBIA_FAULTS grammar); crashed/diverged cases
//                       are retried, degraded, and recorded, and the
//                       sweep still completes
//   --manifest sweep.txt  durable per-case manifest: re-running with the
//                       same spec resumes after completed cases
//   --faults-help       print the full COLUMBIA_FAULTS grammar and exit
#include <cstdio>
#include <cstring>
#include <string>

#include "driver/database.hpp"
#include "resil/faults.hpp"
#include "support/table.hpp"

using namespace columbia;

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--faults-help") == 0) {
      std::printf("%s", resil::fault_grammar_help().c_str());
      return 0;
    }
  std::string faults_spec, manifest_path;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--faults") == 0) faults_spec = argv[i + 1];
    if (std::strcmp(argv[i], "--manifest") == 0) manifest_path = argv[i + 1];
  }
  if (!faults_spec.empty()) {
    try {
      resil::FaultInjector::global().configure(
          resil::parse_fault_spec(faults_spec));
      std::printf("faults: armed with '%s'\n", faults_spec.c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "faults: %s\n", e.what());
      return 1;
    }
  }

  driver::DatabaseSpec spec;
  spec.deflections = {-0.1, 0.0, 0.1};  // elevon settings (radians)
  spec.machs = {1.6, 2.6};
  spec.alphas_deg = {-2.0, 0.0, 2.0};
  spec.betas_deg = {0.0};
  spec.geometry = [](real_t d) { return geom::make_sslv(d, 1); };
  spec.mesh_options.base_n = 8;
  spec.mesh_options.max_level = 2;
  spec.solver_options.flux = euler::FluxScheme::VanLeer;
  spec.solver_options.mg_levels = 2;
  spec.solver_options.second_order = false;
  spec.max_cycles = 15;
  spec.simultaneous_cases = 6;
  spec.manifest_path = manifest_path;

  driver::DatabaseFill fill(spec);
  std::printf("filling %d-entry database (3 elevon settings x 6 wind "
              "points)...\n\n", fill.num_cases());
  const auto results = fill.run();

  Table t({"elevon", "Mach", "alpha", "CL", "CD", "status"});
  for (const auto& r : results)
    t.add_row({Table::num(r.deflection_rad, 2), Table::num(r.wind.mach, 1),
               Table::num(r.wind.alpha_deg, 1), Table::num(r.cl, 4),
               Table::num(r.cd, 4), driver::case_status_name(r.status)});
  t.print();

  const auto& st = fill.stats();
  std::printf("\n%d meshes for %d cases; meshing at %.1fM cells/min; "
              "solve wall time %.1f s\n",
              st.meshes_generated, st.cases_run,
              st.cells_per_minute() / 1e6, st.solve_seconds);
  if (st.cases_recovered + st.cases_degraded + st.cases_failed +
          st.cases_skipped >
      0)
    std::printf("resilience: %d recovered, %d degraded, %d failed, "
                "%d resumed from manifest\n",
                st.cases_recovered, st.cases_degraded, st.cases_failed,
                st.cases_skipped);
  std::printf("(a guidance team would now 'fly' the vehicle through this "
              "database)\n");
  return 0;
}
