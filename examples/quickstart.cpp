// Quickstart: inviscid flow over a sphere with the Cart3D-style solver.
//
//   1. build a watertight geometry,
//   2. generate the adapted cut-cell Cartesian mesh around it,
//   3. solve the Euler equations with multigrid,
//   4. integrate surface forces.
//
// Build and run:  ./build/examples/quickstart
// Pass `--trace flow.json` to record solver spans and open the file in
// chrome://tracing or https://ui.perfetto.dev.
#include <cstdio>
#include <cstring>
#include <string>

#include "cart3d/solver.hpp"
#include "geom/components.hpp"
#include "obs/obs.hpp"
#include "smp/pool.hpp"

using namespace columbia;

int main(int argc, char** argv) {
  std::string trace_path;
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], "--trace") == 0) trace_path = argv[i + 1];
  if (!trace_path.empty()) obs::set_enabled(true);

  // 1. Geometry: a unit-diameter sphere (any watertight TriSurface works;
  //    see geom/components.hpp for wings, bodies and full assemblies).
  const geom::TriSurface sphere = geom::make_sphere({0, 0, 0}, 0.5, 24, 48);
  std::printf("geometry: %d triangles, watertight=%s\n",
              sphere.num_triangles(),
              sphere.is_watertight() ? "yes" : "no");

  // 2. Mesh: adapted Cartesian grid with embedded boundaries.
  geom::Aabb domain;
  domain.expand({-2, -2, -2});
  domain.expand({2, 2, 2});
  cartesian::CartMeshOptions mesh_opt;
  mesh_opt.base_n = 8;
  mesh_opt.max_level = 2;
  const cartesian::CartMesh mesh =
      cartesian::build_cart_mesh(sphere, domain, mesh_opt);
  std::printf("mesh: %d cells (%d cut), %zu faces\n", mesh.num_cells(),
              mesh.num_cut_cells(), mesh.faces.size());

  // 3. Flow solution: Mach 0.3 at 2 degrees angle of attack.
  euler::FlowConditions conditions;
  conditions.mach = 0.3;
  conditions.alpha_deg = 2.0;
  cart3d::SolverOptions solver_opt;
  solver_opt.mg_levels = 3;
  solver_opt.cfl = 1.2;
  cart3d::Cart3DSolver solver(mesh, conditions, solver_opt);
  const std::vector<real_t> history = solver.solve(150, 4);
  std::printf("converged %zu cycles: residual %.3e -> %.3e (%.1f orders)\n",
              history.size() - 1, history.front(), history.back(),
              -std::log10(history.back() / history.front()));

  // 4. Aerodynamic forces from the embedded surface.
  const cart3d::Forces forces = solver.integrate_forces();
  std::printf("forces: CL=%.4f CD=%.4f (pressure only, inviscid)\n",
              forces.cl, forces.cd);

  if (!trace_path.empty()) {
    smp::ThreadPool::global().publish_stats();
    if (obs::write_chrome_trace_file(trace_path))
      std::printf("trace: %zu events -> %s\n", obs::num_trace_events(),
                  trace_path.c_str());
    else
      std::fprintf(stderr, "trace: cannot write %s\n", trace_path.c_str());
  }
  return 0;
}
