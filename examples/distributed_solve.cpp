// Distributed guarded RANS solve over a pluggable transport (paper
// Figs. 16-18: the same solve over different interconnects).
//
// Every group member runs the identical SPMD-replicated schedule: the full
// wing solver plus one wire halo exchange per multigrid cycle, carrying the
// live fine-grid densities over the chosen backend. The wire protocol
// (checksummed frames, deadline timeouts, bounded retransmit) guarantees
// delivered ghost values are bit-identical to the in-process exchange, so
// the residual/CL/CD history written by --history must match byte for byte
// across threads, shm, and tcp — with or without injected transport faults.
//
//   --backend threads|shm|tcp  wire layer (default threads)
//   --ranks N                  group size (default 2)
//   --strategy t2t|master      Fig. 7 exchange strategy (default t2t)
//   --tpp N                    threads per process for master (default 2)
//   --cycles N --orders X      convergence budget (default 40, 3 orders)
//   --checkpoint PATH          durable checkpoint; rank 0 writes, every
//                              rank resumes from it after a relaunch
//   --history PATH             rank 0 writes residuals + CL/CD (%.17g)
//   --faults SPEC              arm COLUMBIA_FAULTS fault injection
//   --faults-help              print the COLUMBIA_FAULTS grammar and exit
//   --relaunch N               recovery budget for dead/hung ranks
//   --overlap 0|1              split post()/finish() exchanges riding the
//                              multigrid level hooks (default 1)
//   --agglomerate N            min level nodes per active rank; coarse
//                              levels below it shrink their rank set
//                              (paper Fig. 19; 0 disables, default 64)
//   --trace PATH               record solver + halo.xchg spans and write a
//                              Chrome trace (feed to `columbia_report comm`
//                              for the per-level overlap/claimed table).
//                              Works on all three backends: the forked
//                              backends arm a per-rank flight recorder
//                              (durable PATH.shards.rank<r>.round<k>.jsonl
//                              telemetry shards, clock-synced against
//                              member 0), and the launcher merges the
//                              gathered shards into one clock-aligned
//                              multi-rank trace at PATH
//   --jsonl PATH               convergence JSONL sink; forked ranks write
//                              per-rank suffixed files (conv.rank0.jsonl),
//                              the threads backend one combined file
//
// Every multigrid level runs its own wire exchange per visit, posted on
// entry to the level and finished after its pre-smoother (the split rides
// core::MultigridDriver level hooks, so the exchange flies under the
// smoother). Coarse levels whose partitions fall below --agglomerate
// nodes/rank run on a shrunken active-rank set (idle members park), and a
// dedicated transfer plan with differing sender/receiver active sets
// carries the fine->coarse restriction pattern across the rank-set seam.
// All of it is read-only validation traffic, so the history artifact
// stays byte-identical across backends, strategies, overlap modes, and
// agglomeration settings.
//
// Recovery semantics: a rank that dies (conn_reset exhausting the retry
// budget, a crash) or hangs (peer_hang silencing its heartbeat) fails its
// round; the launcher kills the group, strips peer_hang (the relaunch IS
// the replacement node), re-forks, and everyone resumes from the last
// durable checkpoint. Status "recovered" on success after >= 1 relaunch.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/exchange_plan.hpp"
#include "core/multigrid.hpp"
#include "core/transport.hpp"
#include "mesh/builders.hpp"
#include "nsu3d/partitioned.hpp"
#include "nsu3d/solver.hpp"
#include "obs/obs.hpp"
#include "obs/shard.hpp"
#include "obs/telemetry.hpp"
#include "resil/faults.hpp"
#include "resil/guard.hpp"
#include "smp/pool.hpp"
#include "smp/process_group.hpp"
#include "support/durable.hpp"

using namespace columbia;

namespace {

struct Cli {
  std::string backend = "threads";
  int ranks = 2;
  core::ExchangeStrategy strategy = core::ExchangeStrategy::ThreadToThread;
  int tpp = 2;
  int cycles = 40;
  double orders = 3.0;
  std::string checkpoint;
  std::string history;
  std::string faults;
  int relaunch = 2;
  bool overlap = true;
  index_t agglomerate = 64;
  std::string trace;
  std::string jsonl;
};

void usage() {
  std::printf(
      "distributed_solve: SPMD guarded solve over a pluggable transport\n"
      "  --backend threads|shm|tcp  --ranks N  --strategy t2t|master\n"
      "  --tpp N  --cycles N  --orders X  --checkpoint PATH\n"
      "  --history PATH  --faults SPEC  --relaunch N\n"
      "  --overlap 0|1  --agglomerate N (min nodes/rank, 0 = off)\n"
      "  --trace PATH   Chrome trace of the spans, any backend (forked\n"
      "                 ranks record durable per-rank telemetry shards,\n"
      "                 clock-synced and merged into PATH by the launcher)\n"
      "  --jsonl PATH   convergence JSONL (per-rank suffixed when forked)\n"
      "  --faults-help              print the COLUMBIA_FAULTS grammar\n");
}

/// Halo pattern for the wire: the fine level cut into contiguous node
/// blocks. 8 partitions divide evenly by every supported --tpp, and the
/// modulo rank->member mapping spreads the channels over any group size.
constexpr index_t kHaloParts = 8;

int solve_rank(int rank, core::Transport& t, const Cli& cli) {
  // Forked ranks each own a process-wide sink: suffix it per rank so two
  // ranks never truncate each other's convergence stream. (The threads
  // backend shares one process; main() opens its single combined sink.)
  if (!cli.jsonl.empty() && cli.backend != "threads")
    obs::open_jsonl(obs::rank_suffixed_path(cli.jsonl, rank));

  mesh::WingMeshSpec spec;
  spec.n_wrap = 24;
  spec.n_span = 4;
  spec.n_normal = 10;
  spec.wall_spacing = 1e-4;
  const mesh::UnstructuredMesh wing = mesh::make_wing_mesh(spec);

  euler::FlowConditions conditions;
  conditions.mach = 0.75;
  conditions.alpha_deg = 0.0;
  conditions.reynolds = 3.0e6;

  nsu3d::Nsu3dOptions opt;
  opt.mg_levels = 3;
  opt.cycle = nsu3d::CycleType::W;
  opt.smoother = nsu3d::SmootherKind::LineImplicit;
  nsu3d::Nsu3dSolver solver(wing, conditions, opt);

  const int nl = solver.num_levels();

  // Per-level active-rank schedule (paper Fig. 19): a coarse level keeps
  // only enough group members to give each >= --agglomerate nodes.
  std::vector<index_t> level_nodes;
  for (int l = 0; l < nl; ++l) level_nodes.push_back(solver.level(l).num_nodes);
  const core::AgglomerationSchedule sched = core::AgglomerationSchedule::build(
      level_nodes, t.group_size(), cli.agglomerate);
  if (rank == 0) {
    for (int l = 0; l < nl; ++l)
      std::printf("agglomeration: level %d nodes=%lld active=%d/%d%s\n", l,
                  (long long)level_nodes[std::size_t(l)],
                  sched.active[std::size_t(l)], sched.group_size,
                  sched.active[std::size_t(l)] < sched.group_size
                      ? " (agglomerated)"
                      : "");
  }

  core::ExchangePlanOptions xopt;
  xopt.strategy = cli.strategy;
  xopt.threads_per_process =
      cli.strategy == core::ExchangeStrategy::MasterThread ? cli.tpp : 1;
  xopt.transport = &t;
  xopt.wire.deadline_ms = 200;
  xopt.wire.max_attempts = 8;
  xopt.wire.backoff_base_ms = 1;
  xopt.wire.backoff_max_ms = 8;
  xopt.wire.loopback_self = t.group_size() == 1;

  // One wire exchange plan per multigrid level, each on its own (possibly
  // agglomerated) active-rank set, plus the per-level partitioning it runs
  // over. Contiguous node blocks; the modulo rank->member mapping spreads
  // channels over the active members.
  std::vector<std::vector<index_t>> part{std::size_t(nl),
                                         std::vector<index_t>{}};
  std::vector<std::unique_ptr<core::ExchangePlan>> plans;
  for (int l = 0; l < nl; ++l) {
    const index_t nn = level_nodes[std::size_t(l)];
    auto& p = part[std::size_t(l)];
    p.resize(std::size_t(nn));
    for (index_t i = 0; i < nn; ++i) p[std::size_t(i)] = i * kHaloParts / nn;
    core::ExchangePlanOptions lopt = xopt;
    lopt.level = l;
    lopt.active_members = sched.active[std::size_t(l)];
    plans.push_back(std::make_unique<core::ExchangePlan>(
        nsu3d::halo_requests(solver.level(l), p, kHaloParts), lopt));
  }

  // Transfer plan across the rank-set seam between the two coarsest
  // levels: coarse partitions request the fine nodes whose agglomerate
  // lands on them but whose fine owner is another partition (the
  // restriction gather pattern). Sender ranks map through the fine
  // level's active set, receivers through the coarse level's.
  const int lf = nl - 2, lc = nl - 1;
  core::RequestLists xfer_reqs{std::size_t(kHaloParts),
                               std::vector<core::HaloRequest>{}};
  {
    const auto& fpart = part[std::size_t(lf)];
    const auto& cpart = part[std::size_t(lc)];
    const auto& to_coarse = solver.level(lf).to_coarse;
    for (index_t v = 0; v < level_nodes[std::size_t(lf)]; ++v) {
      const index_t fp = fpart[std::size_t(v)];
      const index_t cp = cpart[std::size_t(to_coarse[std::size_t(v)])];
      if (fp != cp) xfer_reqs[std::size_t(cp)].push_back({fp, v});
    }
  }
  core::ExchangePlanOptions xfopt = xopt;
  xfopt.level = lc;
  xfopt.active_members = sched.active[std::size_t(lc)];
  xfopt.sender_active_members = sched.active[std::size_t(lf)];
  core::ExchangePlan xfer_plan(std::move(xfer_reqs), xfopt);

  // Replicated per-partition data: every member carries the full density
  // array of the level, so each rank can check the wire-delivered ghosts
  // against the locally computed expectation — any silent corruption is a
  // hard stop. One buffer per level plan (posted on level entry, finished
  // and validated after the pre-smoother) plus one for the transfer plan.
  std::vector<core::PartitionData> data(
      std::size_t(nl),
      core::PartitionData(std::size_t(kHaloParts), std::vector<real_t>{}));
  core::PartitionData xfer_data(std::size_t(kHaloParts),
                                std::vector<real_t>{});

  const auto pack_level = [&](int l, core::PartitionData& dst) {
    const std::span<const nsu3d::State> u = solver.solution(l);
    for (auto& d : dst) {
      d.resize(u.size());
      for (std::size_t i = 0; i < u.size(); ++i) d[i] = u[i][0];
    }
  };
  const auto validate = [&](core::ExchangePlan& plan,
                            const core::PartitionData& got,
                            const core::PartitionData& want) {
    for (std::size_t p = 0; p < got.size(); ++p) {
      const auto& reqs = plan.requests()[p];
      for (std::size_t k = 0; k < reqs.size(); ++k) {
        const core::HaloRequest& r = reqs[k];
        if (got[p][k] !=
            want[std::size_t(r.from_partition)][std::size_t(r.item)])
          throw std::runtime_error("halo ghost mismatch on rank " +
                                   std::to_string(rank));
      }
    }
  };

  // Split exchange riding the level hooks: post on level entry, compute
  // (the pre-smoother) runs with the frames in flight, finish + validate
  // after. With --overlap 0 each exchange completes inside the begin hook
  // instead — same wire traffic, no compute under it.
  solver.set_level_hooks(
      [&](int l) {
        auto& plan = *plans[std::size_t(l)];
        pack_level(l, data[std::size_t(l)]);
        plan.post(data[std::size_t(l)]);
        if (l == lc) {
          pack_level(lf, xfer_data);
          xfer_plan.post(xfer_data);
        }
        if (!cli.overlap) {
          validate(plan, plan.finish(), data[std::size_t(l)]);
          if (l == lc) validate(xfer_plan, xfer_plan.finish(), xfer_data);
        }
      },
      [&](int l) {
        if (!cli.overlap) return;
        auto& plan = *plans[std::size_t(l)];
        validate(plan, plan.finish(), data[std::size_t(l)]);
        if (l == lc) validate(xfer_plan, xfer_plan.finish(), xfer_data);
      });

  resil::GuardCallbacks cb;
  cb.solver = "nsu3d";
  cb.residual_norm = [&] { return solver.residual_norm(); };
  // guarded_solve drives cycles itself (MultigridDriver::solve's emitting
  // loop is bypassed), so convergence telemetry is emitted here. Read-only
  // on the solve: histories stay bit-identical with the sink on or off.
  int telem_cycle = 0;
  cb.run_cycle = [&] {
    const real_t r = solver.run_cycle();
    if (obs::telemetry_active()) {
      obs::CycleRecord rec;
      rec.solver = "nsu3d";
      rec.cycle = ++telem_cycle;
      rec.residual = double(r);
      obs::emit_cycle(rec);
    }
    return r;
  };
  cb.snapshot = [&](std::uint64_t cycle, std::span<const real_t> history) {
    return solver.make_checkpoint(cycle, history);
  };
  cb.restore = [&](const resil::Checkpoint& c) { solver.restore_checkpoint(c); };

  resil::GuardedSolveOptions gopt;
  gopt.checkpoint_path = cli.checkpoint;
  gopt.checkpoint_interval = 5;
  gopt.resume = true;
  gopt.checkpoint_write = rank == 0;  // single writer, shared resume file
  const resil::GuardedSolveResult gr =
      resil::guarded_solve(gopt, cli.cycles, real_t(cli.orders), cb);
  if (gr.outcome == resil::SolveOutcome::Failed) return 3;
  // Exit grace: keep re-Acking duplicate frames until the wire is quiet,
  // so a peer whose final Ack was destroyed (conn_reset) is not stranded
  // retransmitting to an exited rank.
  for (auto& plan : plans) plan->drain();
  xfer_plan.drain();

  if (rank == 0) {
    const nsu3d::Forces f = solver.integrate_forces();
    std::printf("[rank 0] solve %s: %.3e -> %.3e in %zu cycles, "
                "CL=%.4f CD=%.4f%s\n",
                resil::outcome_name(gr.outcome), double(gr.history.front()),
                double(gr.history.back()), gr.history.size() - 1,
                double(f.cl), double(f.cd),
                gr.resumed ? " (resumed from checkpoint)" : "");
    if (!cli.history.empty()) {
      // Byte-stable history artifact: the soak script cmp's this file
      // across backends, so it must not mention the backend or strategy.
      std::string out;
      char buf[64];
      for (const real_t r : gr.history) {
        std::snprintf(buf, sizeof(buf), "%.17g\n", double(r));
        out += buf;
      }
      std::snprintf(buf, sizeof(buf), "CL %.17g\nCD %.17g\n", double(f.cl),
                    double(f.cd));
      out += buf;
      if (!support::durable_write_file(cli.history, out)) {
        std::fprintf(stderr, "history: cannot write %s\n",
                     cli.history.c_str());
        return 4;
      }
    }
  }
  return 0;
}

void print_group(const char* status, const core::TransportCounters& c,
                 int relaunches) {
  std::printf("status: %s (relaunches=%d)\n", status, relaunches);
  std::printf("resil.transport: timeout=%llu retransmit=%llu reconnect=%llu "
              "peer_lost=%llu heartbeat=%llu\n",
              (unsigned long long)c.timeouts(),
              (unsigned long long)c.retransmits(),
              (unsigned long long)c.reconnects(),
              (unsigned long long)c.peer_lost(),
              (unsigned long long)c.heartbeats());
}

/// In-process backend: one std::thread per rank over LocalGroup mailboxes,
/// with the same relaunch-on-failure loop ProcessGroup::run_recovering
/// applies to forked ranks. peer_hang on this backend throws instead of
/// hanging (the LocalTransport hang hook), so recovery is still exercised.
int run_threads(const Cli& cli) {
  // Rank threads each drive the solver kernels themselves; a 1-thread pool
  // takes the inline serial path, which is safe from concurrent callers
  // and bit-identical to any other pool size.
  if (cli.ranks > 1) smp::ThreadPool::global().resize(1);
  core::TransportCounters total;
  int relaunches = 0;
  bool ok = false;
  for (int round = 0; round <= cli.relaunch && !ok; ++round) {
    if (round > 0) {
      resil::FaultInjector& inj = resil::FaultInjector::global();
      resil::FaultSpec spec = inj.spec();
      spec.rate[std::size_t(resil::FaultKind::PeerHang)] = 0.0;
      inj.configure(spec);
      ++relaunches;
    }
    core::LocalGroup group(cli.ranks);
    std::vector<std::unique_ptr<core::Transport>> eps;
    for (int r = 0; r < cli.ranks; ++r) eps.push_back(group.endpoint(r));
    std::vector<int> codes(std::size_t(cli.ranks), 0);
    std::vector<std::thread> threads;
    for (int r = 0; r < cli.ranks; ++r)
      threads.emplace_back([&, r] {
        try {
          codes[std::size_t(r)] = solve_rank(r, *eps[std::size_t(r)], cli);
        } catch (const std::exception& e) {
          std::fprintf(stderr, "[rank %d] uncaught: %s\n", r, e.what());
          codes[std::size_t(r)] = smp::ProcessGroup::kExitUncaught;
        }
      });
    for (auto& th : threads) th.join();
    ok = true;
    for (const int c : codes) ok = ok && c == 0;
    for (const auto& ep : eps)
      for (int c = 0; c < core::kNumTransportCounters; ++c)
        total.v[c] += ep->counters().v[c];
  }
  print_group(!ok ? "failed" : relaunches > 0 ? "recovered" : "ok", total,
              relaunches);
  return ok ? 0 : 1;
}

int run_processes(const Cli& cli, smp::GroupBackend backend) {
  smp::ProcessGroupOptions opts;
  opts.ranks = cli.ranks;
  opts.backend = backend;
  // --trace on a forked backend: every rank records a durable telemetry
  // shard next to the requested trace path; the merge below builds the
  // single clock-aligned Chrome trace the flag promises.
  if (!cli.trace.empty()) opts.telemetry_base = cli.trace + ".shards";
  int relaunches = 0;
  const smp::GroupResult res = smp::ProcessGroup::run_recovering(
      opts, [&](int rank, core::Transport& t) { return solve_rank(rank, t, cli); },
      cli.relaunch, &relaunches);
  for (std::size_t r = 0; r < res.members.size(); ++r) {
    const smp::MemberReport& m = res.members[r];
    std::printf("[rank %zu] %s exit=%d heartbeats=%llu\n", r,
                m.hung ? "hung" : m.signaled ? "signaled" : "exited",
                m.exit_code, (unsigned long long)m.heartbeats);
  }
  print_group(!res.ok ? "failed" : relaunches > 0 ? "recovered" : "ok",
              res.total, relaunches);

  if (!cli.trace.empty()) {
    std::vector<obs::TelemetryShard> shards;
    for (const std::string& path : res.shards) {
      obs::TelemetryShard s;
      std::string err;
      if (obs::read_shard_file(path, s, &err))
        shards.push_back(std::move(s));
      else
        std::fprintf(stderr, "trace: skipping shard %s: %s\n", path.c_str(),
                     err.c_str());
    }
    const obs::MergedTelemetry merged = obs::merge_shards(std::move(shards));
    for (const std::string& w : merged.warnings)
      std::fprintf(stderr, "trace: warning: %s\n", w.c_str());
    if (obs::write_merged_chrome_trace_file(cli.trace, merged))
      std::printf("trace: %zu events from %zu shards (%d ranks, %d rounds) "
                  "-> %s\n",
                  merged.events.size(), merged.shards.size(), merged.ranks,
                  merged.rounds, cli.trace.c_str());
    else
      std::fprintf(stderr, "trace: cannot write %s\n", cli.trace.c_str());
  }
  return res.ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--faults-help") == 0) {
      std::puts(resil::fault_grammar_help().c_str());
      return 0;
    }
    if (std::strcmp(argv[i], "--help") == 0) {
      usage();
      return 0;
    }
  }
  for (int i = 1; i + 1 < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--backend") == 0) cli.backend = argv[i + 1];
    if (std::strcmp(a, "--ranks") == 0) cli.ranks = std::atoi(argv[i + 1]);
    if (std::strcmp(a, "--strategy") == 0) {
      if (std::strcmp(argv[i + 1], "master") == 0)
        cli.strategy = core::ExchangeStrategy::MasterThread;
      else if (std::strcmp(argv[i + 1], "t2t") != 0) {
        std::fprintf(stderr, "unknown --strategy '%s'\n", argv[i + 1]);
        return 1;
      }
    }
    if (std::strcmp(a, "--tpp") == 0) cli.tpp = std::atoi(argv[i + 1]);
    if (std::strcmp(a, "--cycles") == 0) cli.cycles = std::atoi(argv[i + 1]);
    if (std::strcmp(a, "--orders") == 0) cli.orders = std::atof(argv[i + 1]);
    if (std::strcmp(a, "--checkpoint") == 0) cli.checkpoint = argv[i + 1];
    if (std::strcmp(a, "--history") == 0) cli.history = argv[i + 1];
    if (std::strcmp(a, "--faults") == 0) cli.faults = argv[i + 1];
    if (std::strcmp(a, "--relaunch") == 0) cli.relaunch = std::atoi(argv[i + 1]);
    if (std::strcmp(a, "--overlap") == 0) cli.overlap = std::atoi(argv[i + 1]) != 0;
    if (std::strcmp(a, "--agglomerate") == 0)
      cli.agglomerate = index_t(std::atoll(argv[i + 1]));
    if (std::strcmp(a, "--trace") == 0) cli.trace = argv[i + 1];
    if (std::strcmp(a, "--jsonl") == 0) cli.jsonl = argv[i + 1];
  }
  if (cli.ranks < 1 || cli.tpp < 1 || kHaloParts % cli.tpp != 0) {
    std::fprintf(stderr, "bad --ranks/--tpp (tpp must divide %d)\n",
                 int(kHaloParts));
    return 1;
  }
  if (!cli.faults.empty()) {
    try {
      resil::FaultInjector::global().configure(
          resil::parse_fault_spec(cli.faults));
      std::printf("faults: armed with '%s'\n", cli.faults.c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "faults: %s\n", e.what());
      return 1;
    }
  }

  std::printf(
      "distributed_solve: backend=%s ranks=%d strategy=%s overlap=%d "
      "agglomerate=%lld\n",
      cli.backend.c_str(), cli.ranks,
      cli.strategy == core::ExchangeStrategy::MasterThread ? "master" : "t2t",
      cli.overlap ? 1 : 0, (long long)cli.agglomerate);
  if (!cli.trace.empty() || !cli.jsonl.empty()) obs::set_enabled(true);
  if (!cli.jsonl.empty() && cli.backend == "threads" &&
      !obs::open_jsonl(cli.jsonl))
    std::fprintf(stderr, "jsonl: cannot write %s\n", cli.jsonl.c_str());
  // Fork discipline: the process backends fork BEFORE any solver work has
  // touched the global thread pool; children build their own pools.
  int rc = 1;
  if (cli.backend == "threads") {
    rc = run_threads(cli);
  } else if (cli.backend == "shm") {
    rc = run_processes(cli, smp::GroupBackend::Shm);
  } else if (cli.backend == "tcp") {
    rc = run_processes(cli, smp::GroupBackend::Tcp);
  } else {
    std::fprintf(stderr, "unknown --backend '%s'\n", cli.backend.c_str());
    usage();
    return 1;
  }
  // The forked backends already wrote the merged multi-rank trace in
  // run_processes; this in-process export covers the threads backend.
  if (!cli.trace.empty() && cli.backend == "threads") {
    smp::ThreadPool::global().publish_stats();
    if (obs::write_chrome_trace_file(cli.trace))
      std::printf("trace: %zu events -> %s\n", obs::num_trace_events(),
                  cli.trace.c_str());
    else
      std::fprintf(stderr, "trace: cannot write %s\n", cli.trace.c_str());
  }
  return rc;
}
