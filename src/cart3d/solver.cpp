#include "cart3d/solver.hpp"

#include "cart3d/kernels.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "obs/obs.hpp"
#include "resil/faults.hpp"
#include "smp/pool.hpp"
#include "support/assert.hpp"
#include "support/timer.hpp"

namespace columbia::cart3d {

using cartesian::CartFace;
using cartesian::CartMesh;
using euler::Cons;
using euler::Prim;
using geom::Vec3;

namespace {

/// Unit outward normal of a boundary face (axis is encoded as
/// axis or -(axis+1) for the negative direction).
Vec3 boundary_normal(const CartFace& f) {
  const int a = f.axis >= 0 ? f.axis : -(f.axis + 1);
  const real_t sign = f.axis >= 0 ? 1.0 : -1.0;
  Vec3 n{};
  if (a == 0) n.x = sign;
  if (a == 1) n.y = sign;
  if (a == 2) n.z = sign;
  return n;
}

Vec3 axis_normal(int axis) {
  Vec3 n{};
  if (axis == 0) n.x = 1;
  if (axis == 1) n.y = 1;
  if (axis == 2) n.z = 1;
  return n;
}

// Cell-loop chunk grain. Cells are stored in SFC order, so contiguous
// chunks are spatially compact (cache/NUMA friendly). Fixed constant so
// chunk boundaries never depend on the thread count (determinism).
constexpr std::size_t kCellGrain = 512;

/// Elementwise (no cross-index writes) loop over the cells [0, n).
template <class Fn>
void for_cells(std::size_t n, Fn&& body) {
  smp::ThreadPool::global().parallel_for(
      0, n, kCellGrain, [&](std::size_t b, std::size_t e, int) {
        for (std::size_t i = b; i < e; ++i) body(i);
      });
}

}  // namespace

Cart3DSolver::Cart3DSolver(const CartMesh& mesh,
                           const euler::FlowConditions& conditions,
                           const SolverOptions& options)
    : opt_(options), cond_(conditions), freestream_(conditions.freestream()) {
  COLUMBIA_REQUIRE(opt_.mg_levels >= 1);
  hierarchy_ = cartesian::build_hierarchy(mesh, opt_.mg_levels, opt_.sfc);
  const std::size_t nl = hierarchy_.levels.size();
  state_.resize(nl);
  forcing_.resize(nl);
  residual_.resize(nl);
  restricted_snapshot_.resize(nl);
  work_.resize(nl);
  const Cons uinf = euler::to_conservative(freestream_);
  for (std::size_t l = 0; l < nl; ++l) {
    const std::size_t n = hierarchy_.levels[l].cells.size();
    state_[l].assign(n, uinf);
    forcing_[l].assign(n, Cons{});
    residual_[l].assign(n, Cons{});
  }
  if (obs::enabled())
    obs::gauge("cart3d.cut_cells")
        .set(std::uint64_t(hierarchy_.levels[0].num_cut_cells()));
}

void Cart3DSolver::compute_residual(int level, const std::vector<Cons>& u,
                                    std::vector<Cons>& res,
                                    bool second_order) {
  OBS_SPAN("cart3d.residual", "level", level);
  const CartMesh& m = hierarchy_.levels[std::size_t(level)];
  Workspace& ws = work_[std::size_t(level)];
  if (!ws.geom.built) ws.geom.build(m);  // pure geometry, built once
  kernels::residual(ws.geom, m, freestream_, opt_.flux, u, second_order,
                    ws.k, res);
}

void Cart3DSolver::smooth(int level, int steps) {
  OBS_SPAN("cart3d.smooth", "level", level);
  const CartMesh& m = hierarchy_.levels[std::size_t(level)];
  Workspace& ws = work_[std::size_t(level)];
  std::vector<Cons>& u = state_[std::size_t(level)];
  const std::vector<Cons>& f = forcing_[std::size_t(level)];
  const std::size_t n = m.cells.size();

  // Local time step: dt_i = CFL * V_i / sum(|lambda| A).
  ws.wave.assign(n, 0.0);
  auto& wave = ws.wave;
  {
    ws.w.resize(n);
    auto& w = ws.w;
    for_cells(n, [&](std::size_t i) { w[i] = euler::to_primitive(u[i]); });
    for (const CartFace& fc : m.faces) {
      const Vec3 nrm = axis_normal(fc.axis);
      const real_t sl = euler::spectral_radius(w[std::size_t(fc.left)], nrm);
      const real_t sr = euler::spectral_radius(w[std::size_t(fc.right)], nrm);
      wave[std::size_t(fc.left)] += sl * fc.area;
      wave[std::size_t(fc.right)] += sr * fc.area;
    }
    for (const CartFace& fc : m.boundary_faces)
      wave[std::size_t(fc.left)] +=
          euler::spectral_radius(w[std::size_t(fc.left)], boundary_normal(fc)) *
          fc.area;
    for_cells(n, [&](std::size_t i) {
      const cartesian::CartCell& c = m.cells[i];
      if (c.cut)
        wave[i] += euler::spectral_radius(w[i], normalized(c.wall_area)) *
                   norm(c.wall_area);
    });
  }

  const bool second = opt_.second_order && level == 0;
  // Three-stage Runge-Kutta smoother (Jameson-style coefficients).
  static constexpr real_t kAlpha[3] = {0.1481, 0.4, 1.0};
  for (int step = 0; step < steps; ++step) {
    ws.u0.assign(u.begin(), u.end());
    const std::vector<Cons>& u0 = ws.u0;
    for (real_t alpha : kAlpha) {
      compute_residual(level, u, residual_[std::size_t(level)], second);
      std::vector<Cons>& r = residual_[std::size_t(level)];
      for_cells(n, [&](std::size_t i) {
        const real_t v = m.cell_volume(m.cells[i]);
        if (wave[i] <= 0 || v <= 0) return;
        const real_t dt = opt_.cfl * v / wave[i];
        Cons unew = u0[i];
        for (int c = 0; c < 5; ++c)
          unew[std::size_t(c)] -= alpha * dt / v *
                                  (r[i][std::size_t(c)] - f[i][std::size_t(c)]);
        if (euler::is_valid(unew)) u[i] = unew;
        // else: keep the previous stage value (positivity guard).
      });
    }
  }
}

void Cart3DSolver::restrict_to(int level) {
  const auto& map = hierarchy_.maps[std::size_t(level)];
  const CartMesh& fine = hierarchy_.levels[std::size_t(level)];
  const CartMesh& coarse = hierarchy_.levels[std::size_t(level) + 1];
  std::vector<Cons>& uc = state_[std::size_t(level) + 1];
  std::vector<Cons>& fc = forcing_[std::size_t(level) + 1];
  const std::size_t nc = coarse.cells.size();

  // Volume-weighted state restriction.
  Workspace& wsc = work_[std::size_t(level) + 1];
  wsc.vol.assign(nc, 0.0);
  std::vector<real_t>& vol = wsc.vol;
  uc.assign(nc, Cons{});
  for (std::size_t i = 0; i < fine.cells.size(); ++i) {
    const std::size_t j = std::size_t(map[i]);
    const real_t v = fine.cell_volume(fine.cells[i]);
    vol[j] += v;
    for (int c = 0; c < 5; ++c)
      uc[j][std::size_t(c)] += v * state_[std::size_t(level)][i][std::size_t(c)];
  }
  for (std::size_t j = 0; j < nc; ++j) {
    if (vol[j] <= 0) {
      uc[j] = euler::to_conservative(freestream_);
      continue;
    }
    for (int c = 0; c < 5; ++c) uc[j][std::size_t(c)] /= vol[j];
  }
  restricted_snapshot_[std::size_t(level) + 1] = uc;

  // FAS forcing: f_c = R_c(restricted u) - I(R_f(u) - f_f). The fine
  // residual must come from the operator actually being solved on that
  // level (second order on the finest grid), else the coarse correction
  // targets the wrong equation and multigrid stalls.
  compute_residual(level, state_[std::size_t(level)],
                   residual_[std::size_t(level)],
                   opt_.second_order && level == 0);
  wsc.transferred.assign(nc, Cons{});
  std::vector<Cons>& transferred = wsc.transferred;
  for (std::size_t i = 0; i < fine.cells.size(); ++i) {
    const std::size_t j = std::size_t(map[i]);
    for (int c = 0; c < 5; ++c)
      transferred[j][std::size_t(c)] +=
          residual_[std::size_t(level)][i][std::size_t(c)] -
          forcing_[std::size_t(level)][i][std::size_t(c)];
  }
  compute_residual(level + 1, uc, residual_[std::size_t(level) + 1], false);
  fc.assign(nc, Cons{});
  for (std::size_t j = 0; j < nc; ++j)
    for (int c = 0; c < 5; ++c)
      fc[j][std::size_t(c)] = residual_[std::size_t(level) + 1][j][std::size_t(c)] -
                              transferred[j][std::size_t(c)];
}

// The driver's post-smoothing step after this correction is load-bearing:
// it damps the high-frequency error injected by the piecewise-constant
// prolongation, which the limited second-order fine operator would
// otherwise amplify.
void Cart3DSolver::prolong_correction(int level) {
  const auto& map = hierarchy_.maps[std::size_t(level)];
  const std::vector<Cons>& uc = state_[std::size_t(level) + 1];
  const std::vector<Cons>& snap = restricted_snapshot_[std::size_t(level) + 1];
  std::vector<Cons>& uf = state_[std::size_t(level)];
  for_cells(uf.size(), [&](std::size_t i) {
    const std::size_t j = std::size_t(map[i]);
    Cons unew = uf[i];
    for (int c = 0; c < 5; ++c)
      unew[std::size_t(c)] += opt_.correction_damping *
                              (uc[j][std::size_t(c)] - snap[j][std::size_t(c)]);
    if (euler::is_valid(unew)) uf[i] = unew;
  });
}

real_t Cart3DSolver::residual_norm() {
  compute_residual(0, state_[0], residual_[0],
                   opt_.second_order);
  const CartMesh& m = hierarchy_.levels[0];
  // Deterministic tree reduction: fixed chunking, partials combined in
  // chunk order, so the norm is bit-identical for every thread count.
  const real_t sum = smp::ThreadPool::global().reduce_sum(
      0, residual_[0].size(), kCellGrain, [&](std::size_t b, std::size_t e) {
        real_t s = 0;
        for (std::size_t i = b; i < e; ++i) {
          const real_t v = m.cell_volume(m.cells[i]);
          if (v <= 0) continue;
          const real_t r = residual_[0][i][0] / v;
          s += r * r;
        }
        return s;
      });
  return std::sqrt(sum / real_t(std::max<std::size_t>(1, residual_[0].size())));
}

real_t Cart3DSolver::run_cycle() { return driver_.run_cycle(*this); }

/// Fault hook (COLUMBIA_FAULTS state_nan): poison one energy entry after
/// the cycle's updates so the guard sees a non-finite residual.
void Cart3DSolver::poison_state(std::size_t i) {
  state_[0][i][4] = std::numeric_limits<real_t>::quiet_NaN();
}

resil::Checkpoint Cart3DSolver::make_checkpoint(
    std::uint64_t cycle, std::span<const real_t> history) const {
  resil::Checkpoint c;
  c.solver = "cart3d";
  c.cycle = cycle;
  c.state_stride = 5;
  c.history.assign(history.begin(), history.end());
  c.state.reserve(state_[0].size() * 5);
  for (const euler::Cons& s : state_[0])
    c.state.insert(c.state.end(), s.begin(), s.end());
  return c;
}

void Cart3DSolver::restore_checkpoint(const resil::Checkpoint& c) {
  if (c.solver != "cart3d")
    throw std::runtime_error("checkpoint solver mismatch: got '" + c.solver +
                             "', expected 'cart3d'");
  if (c.state_stride != 5 || c.state.size() != state_[0].size() * 5)
    throw std::runtime_error("checkpoint state size mismatch for cart3d grid");
  auto& u = state_[0];
  for (std::size_t i = 0; i < u.size(); ++i)
    for (std::size_t k = 0; k < 5; ++k) u[i][k] = c.state[i * 5 + k];
}

resil::GuardedSolveResult Cart3DSolver::solve_guarded(
    int max_cycles, real_t orders, const resil::GuardedSolveOptions& options) {
  return driver_.solve_guarded(*this, max_cycles, orders, options);
}

/// The RK smoother has no relaxation knob; backoff acts on CFL alone.
void Cart3DSolver::apply_backoff(const resil::GuardOptions& g) {
  opt_.cfl *= g.cfl_backoff;
}

void Cart3DSolver::telemetry_forces(double& cl, double& cd) const {
  const Forces f = integrate_forces();
  cl = double(f.cl);
  cd = double(f.cd);
}

std::vector<real_t> Cart3DSolver::solve(int max_cycles, real_t orders) {
  return driver_.solve(*this, max_cycles, orders);
}

Forces Cart3DSolver::integrate_forces() const {
  const CartMesh& m = hierarchy_.levels[0];
  Forces out;
  const real_t pinf = freestream_.p;
  for (std::size_t i = 0; i < m.cells.size(); ++i) {
    const cartesian::CartCell& c = m.cells[i];
    if (!c.cut) continue;
    const Prim w = euler::to_primitive(state_[0][i]);
    out.force += (w.p - pinf) * c.wall_area;
  }
  // Coefficients normalized by freestream dynamic pressure (unit reference
  // area; the examples report raw coefficients for trend comparisons).
  const real_t q = 0.5 * freestream_.rho * dot(freestream_.vel, freestream_.vel);
  if (q > 0) {
    const Vec3 drag_dir = normalized(freestream_.vel);
    out.cd = dot(out.force, drag_dir) / q;
    out.cl = (out.force.z - dot(out.force, drag_dir) * drag_dir.z) / q;
  }
  return out;
}

std::vector<LevelWork> Cart3DSolver::level_work() const {
  const std::vector<index_t> visits =
      core::cycle_visits(int(hierarchy_.levels.size()), opt_.cycle);

  std::vector<LevelWork> w;
  for (std::size_t l = 0; l < hierarchy_.levels.size(); ++l) {
    LevelWork lw;
    lw.cells = hierarchy_.levels[l].num_cells();
    lw.faces = index_t(hierarchy_.levels[l].faces.size());
    lw.visits_per_cycle = visits[l];
    w.push_back(lw);
  }
  return w;
}

}  // namespace columbia::cart3d
