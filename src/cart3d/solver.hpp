// Cart3D-style flow solver: cell-centered finite-volume Euler on the
// multilevel Cartesian cut-cell mesh.
//
// Per the paper (Sec. V): "a second-order cell-centered, finite-volume
// upwind spatial discretization combined with a multigrid accelerated
// Runge-Kutta scheme for advance to steady-state". The multigrid hierarchy
// comes from the single-pass SFC coarsener; restriction/prolongation are
// volume-weighted averaging and piecewise-constant injection through the
// fine-to-coarse cell maps (FAS formulation, V- or W-cycles as in Fig. 4).
#pragma once

#include <array>
#include <span>
#include <vector>

#include "cart3d/kernels.hpp"
#include "cartesian/coarsen.hpp"
#include "core/multigrid.hpp"
#include "core/params.hpp"
#include "euler/flux.hpp"
#include "euler/state.hpp"
#include "resil/checkpoint.hpp"
#include "resil/guard.hpp"
#include "support/types.hpp"

namespace columbia::cart3d {

using CycleType = core::CycleType;  // shared cycle vocabulary (core/)

/// Cycle-control fields (mg_levels, cycle, cfl, smoothing steps,
/// correction damping, second_order) live in core::SolveParams; only the
/// Cartesian-specific knobs are added here.
struct SolverOptions : core::SolveParams {
  SolverOptions() {
    mg_levels = 1;  // 1 = single grid
    cfl = 1.2;
    smooth_steps = 2;  // RK smoothing steps per level visit
  }
  euler::FluxScheme flux = euler::FluxScheme::Roe;
  cartesian::SfcKind sfc = cartesian::SfcKind::PeanoHilbert;
};

/// Aerodynamic force/moment integrals over the embedded surface.
struct Forces {
  geom::Vec3 force;   // pressure force vector (nondimensional)
  real_t cl = 0;      // lift coefficient direction (z in body axes)
  real_t cd = 0;      // drag (freestream direction)
};

/// Work performed per multigrid level in one cycle; the machine model
/// consumes these together with the partition communication graphs.
struct LevelWork {
  index_t cells = 0;
  index_t faces = 0;
  index_t visits_per_cycle = 0;  // W-cycle visits coarse levels 2^(l-1) times
};

class Cart3DSolver {
 public:
  Cart3DSolver(const cartesian::CartMesh& mesh,
               const euler::FlowConditions& conditions,
               const SolverOptions& options = {});

  /// Runs one multigrid cycle (or one smoothing iteration when
  /// mg_levels == 1); returns the fine-grid density-residual L2 norm.
  real_t run_cycle();

  /// Cycles until the residual drops by `orders` orders of magnitude or
  /// `max_cycles` elapse; returns the history of residual norms.
  std::vector<real_t> solve(int max_cycles, real_t orders = 6);

  /// Guarded solve: per-cycle NaN/blow-up detection, rollback to the last
  /// good checkpoint with CFL backoff, optional durable checkpoint +
  /// resume (see resil::guarded_solve). With faults off and no recovery
  /// triggered, the history matches solve() bit for bit.
  resil::GuardedSolveResult solve_guarded(
      int max_cycles, real_t orders = 6,
      const resil::GuardedSolveOptions& options = {});

  /// Snapshot of the fine-grid state plus cycle/history. Coarse-level
  /// state is rebuilt by the next cycle's FAS restriction, so restoring
  /// this checkpoint reproduces the uninterrupted residual history
  /// bit-identically.
  resil::Checkpoint make_checkpoint(std::uint64_t cycle,
                                    std::span<const real_t> history) const;

  /// Restores a checkpoint from make_checkpoint; throws std::runtime_error
  /// when the solver tag or state size does not match this configuration.
  void restore_checkpoint(const resil::Checkpoint& c);

  const std::vector<euler::Cons>& solution() const { return state_[0]; }
  /// Current state of any level (coarse levels hold the latest FAS
  /// restriction) — read-only, for per-level halo exchanges driven off
  /// the level hooks.
  const std::vector<euler::Cons>& solution(int level) const {
    return state_[std::size_t(level)];
  }
  const cartesian::CartMesh& mesh(int level = 0) const {
    return hierarchy_.levels[std::size_t(level)];
  }
  int num_levels() const { return int(hierarchy_.levels.size()); }

  /// Read-only level-visit hooks (core::MultigridDriver::set_level_hooks):
  /// `begin` fires on entry to a level visit, `end` right after its
  /// pre-smoother — the post()/finish() anchor points for split halo
  /// exchanges. Hooks must not mutate solver state; histories stay
  /// bit-identical with hooks installed or absent.
  void set_level_hooks(std::function<void(int)> begin,
                       std::function<void(int)> end) {
    driver_.set_level_hooks(std::move(begin), std::move(end));
  }

  Forces integrate_forces() const;

  /// Per-level cell/face counts with W/V visit multiplicity.
  std::vector<LevelWork> level_work() const;

  /// Density residual norm of the current fine-grid state.
  real_t residual_norm();

  /// Residual of `u` on `level` (public so benchmarks and equivalence
  /// tests can drive the hot kernel directly). Cell loops run on the
  /// shared-memory pool in SFC-contiguous chunks; results are
  /// bit-identical for every thread count.
  void compute_residual(int level, const std::vector<euler::Cons>& u,
                        std::vector<euler::Cons>& res, bool second_order);

 private:
  friend class core::MultigridDriver<Cart3DSolver>;

  SolverOptions opt_;
  euler::FlowConditions cond_;
  euler::Prim freestream_;
  cartesian::CartHierarchy hierarchy_;

  // Per level: state, residual, FAS forcing, gradients (level 0 only).
  std::vector<std::vector<euler::Cons>> state_;
  std::vector<std::vector<euler::Cons>> forcing_;
  std::vector<std::vector<euler::Cons>> residual_;

  /// Persistent per-level scratch so steady-state cycles perform no heap
  /// allocation (vectors keep capacity across sweeps).
  struct Workspace {
    kernels::LevelGeom geom;  // per-level geometry precompute (lazy-built)
    kernels::Scratch k;       // SoA residual scratch
    std::vector<euler::Prim> w;  // primitive cache (smoother wave speeds)
    std::vector<real_t> wave;    // sum |lambda| A
    std::vector<euler::Cons> u0;                   // RK stage base state
    // Restriction scratch (coarse-level sized).
    std::vector<real_t> vol;
    std::vector<euler::Cons> transferred;
  };
  std::vector<Workspace> work_;

  /// Cycle orchestration (level walk, convergence loop, guard wiring,
  /// telemetry, fault hooks) lives in the shared driver; this class keeps
  /// only the physics it feeds the driver.
  core::MultigridDriver<Cart3DSolver> driver_{"cart3d"};

  void smooth(int level, int steps);
  void restrict_to(int level);        // level -> level+1 (state + forcing)
  void prolong_correction(int level); // level+1 -> level

  // --- Adapter surface consumed by core::MultigridDriver ---
  const core::SolveParams& solve_params() const { return opt_; }
  std::size_t state_count() const { return state_[0].size(); }
  void poison_state(std::size_t i);
  void apply_backoff(const resil::GuardOptions& g);
  void telemetry_forces(double& cl, double& cd) const;

  // Scratch for prolongation: coarse state as restricted before smoothing.
  std::vector<std::vector<euler::Cons>> restricted_snapshot_;
};

}  // namespace columbia::cart3d
