// SFC-partitioned halo exchange for the Cartesian cut-cell solver.
//
// Paper Sec. V: Cart3D partitions cells into contiguous space-filling
// curve segments (cut cells weighted ~2.1x) and exchanges ghost states
// with one packed message per neighbor pair. This is that path on the
// repo's CartMesh: cartesian::partition_cells supplies the decomposition,
// and the ghost/flux-return schedules run through the same
// core::ExchangePlan the NSU3D decomposition uses.
#pragma once

#include <span>
#include <vector>

#include "cartesian/cart_mesh.hpp"
#include "core/exchange_plan.hpp"
#include "euler/flux.hpp"
#include "euler/state.hpp"
#include "support/types.hpp"

namespace columbia::cart3d {

/// Ghost-cell request lists of a cell decomposition: for each partition,
/// the unique cross-partition face neighbors it needs each exchange,
/// sorted by (owner, cell). `item` is the global cell index.
core::RequestLists halo_requests(const cartesian::CartMesh& m,
                                 std::span<const index_t> part,
                                 index_t nparts);

/// Parallel first-order residual evaluation: partitions cells per rank
/// (normally by cartesian::partition_cells), fetches ghost states through
/// a core::ExchangePlan, accumulates face fluxes rank-local on the thread
/// pool (interior faces owned by the left cell's partition; farfield and
/// cut-cell wall closures are cell-local), then returns cross-partition
/// face contributions through a second plan. The result matches the
/// single-partition evaluation bit-for-bit up to summation order, with
/// either exchange strategy and with halo fault injection on or off.
///
/// The per-rank face loop is split at plan-build time into interior faces
/// (both cells owned) and cross-partition faces, always run
/// interior-first; cell-local closures count as interior work. With
/// `overlap` set, the ghost exchange flies under the interior phase
/// (post → interior → finish → cross faces) and the contribution return
/// under the owned-row assembly; overlap on/off execute the identical
/// floating-point sequence, so results are bit-identical by construction.
std::vector<euler::Cons> parallel_residual(
    const cartesian::CartMesh& m, const std::vector<euler::Cons>& u,
    const euler::Prim& freestream, std::span<const index_t> part,
    index_t nparts, euler::FluxScheme flux = euler::FluxScheme::Roe,
    const core::ExchangePlanOptions& comm = {}, bool overlap = false);

}  // namespace columbia::cart3d
