// SoA kernel layer for the Cart3D residual.
//
// The scalar residual recomputed nearly all of its geometry every call:
// cell centers (bit arithmetic per access), face offset vectors, the
// least-squares Gram matrices and their 3x3 inverses, and the limiter's
// eps^2 = (0.3 h)^3 (a pow per face side). All of it is pure geometry —
// constant per mesh level — so LevelGeom hoists it into per-level SoA
// streams built once: per-face endpoint/offset/normal streams in face
// storage order, per-cell centers, Gram inverses (+ singular flag) and
// eps^2. The residual then runs three face sweeps (LSQ rhs + neighbor
// min/max fused; limiter; flux) over unit-stride streams plus blocked
// per-cell state, with the limiter's directional differences cached per
// face and reused bitwise by the reconstruction (identical expression,
// identical inputs).
//
// Bit-identity contract: every kernel performs exactly the arithmetic of
// the retained scalar reference (residual_reference below) in the same
// per-cell accumulation order. Hoisted values (Gram inverses, eps^2,
// offsets) are computed with the same expressions the scalar path
// evaluated per call. Negated offsets rely only on fl(-t) == -fl(t).
#pragma once

#include <array>
#include <span>
#include <vector>

#include "cartesian/cart_mesh.hpp"
#include "euler/flux.hpp"
#include "support/types.hpp"

namespace columbia::cart3d::kernels {

using euler::Cons;
using euler::Prim;

// Strides (in real_t) of the per-cell component blocks; padded so a block
// never straddles an extra cache line.
inline constexpr std::size_t kPrimStride = 8;   // [rho,u,v,w,p] + pad
inline constexpr std::size_t kGradStride = 32;  // [gx 5][gy 5][gz 5][min 5][max 5] + pad
inline constexpr std::size_t kRhsStride = 16;   // [rx 5][ry 5][rz 5] + pad
inline constexpr std::size_t kPhiStride = 8;    // [phi 5] + pad
inline constexpr std::size_t kFdqStride = 10;   // per face: [g.dl 5][g.dr 5]
inline constexpr std::size_t kGinvStride = 8;   // [i00,i01,i02,i11,i12,i22] + pad

/// Per-level geometry, built once per mesh level (everything here is a
/// pure function of the mesh).
struct LevelGeom {
  bool built = false;
  std::size_t cells = 0, faces = 0;

  // Per-cell streams.
  std::vector<real_t> eps2;  // venkat (0.3 h)^3, the scalar path's pow
  std::vector<real_t> ginv;  // kGinvStride-blocked LSQ Gram inverse
  std::vector<unsigned char> singular;  // |det| < 1e-30: keep zero gradient
  std::vector<index_t> cut_cells;       // indices of cut cells, in order

  // Per interior-face streams (face storage order).
  std::vector<index_t> fl, fr;
  std::vector<std::int8_t> axis;
  std::vector<real_t> area;
  std::vector<real_t> dabx, daby, dabz;  // center(right) - center(left)
  std::vector<real_t> dlx, dly, dlz;     // face center - center(left)
  std::vector<real_t> drx, dry, drz;     // face center - center(right)

  // Per boundary-face streams.
  std::vector<index_t> bfl;
  std::vector<real_t> barea;
  std::vector<real_t> bnx, bny, bnz;

  void build(const cartesian::CartMesh& m);
};

/// Per-level SoA scratch (persistent across sweeps).
struct Scratch {
  std::vector<Prim> w;      // AoS primitives (what the Riemann solvers eat)
  std::vector<real_t> pb;   // kPrimStride-blocked primitive scalars
  std::vector<real_t> gb;   // kGradStride-blocked gradients + min/max
  std::vector<real_t> rb;   // kRhsStride-blocked LSQ right-hand sides
  std::vector<real_t> ph;   // kPhiStride-blocked limiter values
  std::vector<real_t> fdq;  // kFdqStride per-face directional differences
  void resize(const LevelGeom& g, bool second_order);
};

/// Full second-/first-order residual against the precomputed geometry.
/// Bit-identical to residual_reference for every thread count.
void residual(const LevelGeom& g, const cartesian::CartMesh& m,
              const Prim& freestream, euler::FluxScheme scheme,
              std::span<const Cons> u, bool second_order, Scratch& s,
              std::vector<Cons>& res);

// --- Retained scalar reference path ---

/// Scratch for the scalar reference (the pre-SoA workspace layout).
struct ReferenceScratch {
  std::vector<Prim> w;
  std::vector<std::array<geom::Vec3, 5>> grad;
  std::vector<std::array<real_t, 5>> phi, qmin, qmax;
  std::vector<std::array<real_t, 6>> gram;
  std::vector<std::array<geom::Vec3, 5>> rhs;
};

/// Serial scalar residual: a verbatim retention of the pre-SoA loops
/// (geometry recomputed per call, AoS state). The equivalence tests assert
/// the SoA path reproduces it bit for bit; micro_kernels times it as the
/// seed-replica baseline.
void residual_reference(const cartesian::CartMesh& m, const Prim& freestream,
                        euler::FluxScheme scheme, std::span<const Cons> u,
                        bool second_order, ReferenceScratch& s,
                        std::vector<Cons>& res);

}  // namespace columbia::cart3d::kernels
