#include "cart3d/partitioned.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "obs/obs.hpp"
#include "smp/pool.hpp"
#include "support/assert.hpp"

namespace columbia::cart3d {

using cartesian::CartFace;
using cartesian::CartMesh;
using euler::Cons;
using euler::Prim;
using geom::Vec3;

namespace {

/// Unit outward normal of a domain-boundary face (axis is encoded as
/// axis or -(axis+1) for the negative direction).
Vec3 boundary_normal(const CartFace& f) {
  const int a = f.axis >= 0 ? f.axis : -(f.axis + 1);
  const real_t sign = f.axis >= 0 ? 1.0 : -1.0;
  Vec3 n{};
  if (a == 0) n.x = sign;
  if (a == 1) n.y = sign;
  if (a == 2) n.z = sign;
  return n;
}

Vec3 axis_normal(int axis) {
  Vec3 n{};
  if (axis == 0) n.x = 1;
  if (axis == 1) n.y = 1;
  if (axis == 2) n.z = 1;
  return n;
}

}  // namespace

core::RequestLists halo_requests(const CartMesh& m,
                                 std::span<const index_t> part,
                                 index_t nparts) {
  const std::size_t np = std::size_t(nparts);
  // Every cross-partition face makes each side a ghost of the other.
  // Deduplicate and sort by (owner, cell) for deterministic packing.
  std::vector<std::vector<std::pair<index_t, index_t>>> want(np);
  for (const CartFace& f : m.faces) {
    if (f.right == kInvalidIndex) continue;
    const index_t pl = part[std::size_t(f.left)];
    const index_t pr = part[std::size_t(f.right)];
    if (pl == pr) continue;
    want[std::size_t(pl)].push_back({pr, f.right});
    want[std::size_t(pr)].push_back({pl, f.left});
  }
  core::RequestLists requests(np);
  for (index_t p = 0; p < nparts; ++p) {
    auto& w = want[std::size_t(p)];
    std::sort(w.begin(), w.end());
    w.erase(std::unique(w.begin(), w.end()), w.end());
    requests[std::size_t(p)].reserve(w.size());
    for (const auto& [owner, cell] : w)
      requests[std::size_t(p)].push_back({owner, cell});
  }
  return requests;
}

std::vector<Cons> parallel_residual(const CartMesh& m,
                                    const std::vector<Cons>& u,
                                    const Prim& freestream,
                                    std::span<const index_t> part,
                                    index_t nparts, euler::FluxScheme flux,
                                    const core::ExchangePlanOptions& comm,
                                    bool overlap) {
  const std::size_t n = m.cells.size();
  const std::size_t np = std::size_t(nparts);
  COLUMBIA_REQUIRE(part.size() == n && u.size() == n);

  // Slot of every cell in its owner's packed state array (owned cells in
  // SFC order, which is ascending cell index).
  std::vector<index_t> slot(n, 0);
  std::vector<index_t> owned_count(np, 0);
  for (std::size_t i = 0; i < n; ++i)
    slot[i] = owned_count[std::size_t(part[i])]++;

  // Interior/cross face split per rank (built once with the plans): an
  // owned face is interior iff its right cell is owned too, so interior
  // faces plus the cell-local closures run without ghost data. Both lists
  // keep ascending face order; interior always runs first, making the
  // accumulation order a property of the decomposition alone.
  std::vector<std::vector<index_t>> interior_faces(np), cross_faces(np);
  std::vector<std::vector<index_t>> owned_cells(np);
  for (std::size_t fi = 0; fi < m.faces.size(); ++fi) {
    const CartFace& f = m.faces[fi];
    const index_t pl = part[std::size_t(f.left)];
    const bool cross =
        f.right != kInvalidIndex && part[std::size_t(f.right)] != pl;
    (cross ? cross_faces : interior_faces)[std::size_t(pl)].push_back(
        index_t(fi));
  }
  for (std::size_t i = 0; i < n; ++i)
    owned_cells[std::size_t(part[i])].push_back(index_t(i));

  // Packed arrays are component-major (plane c starts at c * owned_count)
  // and requests are emitted c-major, so consecutive requests against one
  // owner walk a single plane in ascending slot order.
  const core::RequestLists ghosts = halo_requests(m, part, nparts);
  core::RequestLists reqs1(np);
  for (index_t p = 0; p < nparts; ++p) {
    const auto& g = ghosts[std::size_t(p)];
    reqs1[std::size_t(p)].reserve(g.size() * 5);
    for (index_t c = 0; c < 5; ++c)
      for (const core::HaloRequest& r : g)
        reqs1[std::size_t(p)].push_back(
            {r.from_partition,
             c * owned_count[std::size_t(r.from_partition)] +
                 slot[std::size_t(r.item)]});
  }
  core::ExchangePlan plan1(std::move(reqs1), comm);

  // Residual-contribution lists: contrib[p][q] = cells owned by q whose
  // residual partition p accumulates (p owns cross faces via the left
  // cell), deduplicated and sorted.
  std::vector<std::map<index_t, std::vector<index_t>>> contrib(
      np, std::map<index_t, std::vector<index_t>>{});
  for (const CartFace& f : m.faces) {
    const index_t pl = part[std::size_t(f.left)];
    const index_t pr = part[std::size_t(f.right)];
    if (pl == pr) continue;
    contrib[std::size_t(pl)][pr].push_back(f.right);
  }
  for (auto& per_rank : contrib)
    for (auto& [q, cells] : per_rank) {
      std::sort(cells.begin(), cells.end());
      cells.erase(std::unique(cells.begin(), cells.end()), cells.end());
    }

  std::vector<std::map<index_t, index_t>> coff(np);
  std::vector<index_t> contrib_count(np, 0);
  for (index_t p = 0; p < nparts; ++p) {
    index_t off = 0;
    for (const auto& [q, cells] : contrib[std::size_t(p)]) {
      coff[std::size_t(p)][q] = off;
      off += index_t(cells.size());
    }
    contrib_count[std::size_t(p)] = off;
  }
  core::RequestLists reqs2(np);
  for (index_t p = 0; p < nparts; ++p)
    for (index_t q = 0; q < nparts; ++q) {
      const auto it = contrib[std::size_t(q)].find(p);
      if (it == contrib[std::size_t(q)].end()) continue;
      const index_t base = coff[std::size_t(q)].at(p);
      for (index_t c = 0; c < 5; ++c)
        for (std::size_t k = 0; k < it->second.size(); ++k)
          reqs2[std::size_t(p)].push_back(
              {q, c * contrib_count[std::size_t(q)] + base + index_t(k)});
    }
  core::ExchangePlan plan2(std::move(reqs2), comm);

  // Phase 1: pack owned states and post the ghost fetch; blocking mode
  // completes it here, overlap mode after the interior phase. Compute
  // order is identical either way.
  core::PartitionData state_data(np);
  for (index_t p = 0; p < nparts; ++p)
    state_data[std::size_t(p)].resize(
        std::size_t(owned_count[std::size_t(p)]) * 5);
  for (std::size_t c = 0; c < 5; ++c)
    for (std::size_t i = 0; i < n; ++i)
      state_data[std::size_t(part[i])]
                [c * std::size_t(owned_count[std::size_t(part[i])]) +
                 std::size_t(slot[i])] = u[i][c];
  plan1.post(state_data);
  const core::PartitionData* ghost_vals = overlap ? nullptr : &plan1.finish();

  // Phase 2a (interior): fully-owned face fluxes plus the cell-local
  // closures, one rank per partition on the pool; no ghost data touched,
  // so this is the compute that hides the exchange in overlap mode.
  std::vector<std::vector<Cons>> res_of(np);
  smp::ThreadPool::global().parallel_for(
      0, np, 1, [&](std::size_t pb, std::size_t pe, int) {
        // Level-tagged interior compute for the overlap-headroom analyzer
        // (paired against halo.xchg waits on the same level).
        OBS_SPAN("cart3d.partitioned.compute", "level",
                 std::int64_t(comm.level));
        for (std::size_t mep = pb; mep < pe; ++mep) {
          std::vector<Cons> res(n, Cons{});
          for (const index_t fi : interior_faces[mep]) {
            const CartFace& f = m.faces[std::size_t(fi)];
            const Vec3 nrm = axis_normal(f.axis);
            const Prim wl = euler::to_primitive(u[std::size_t(f.left)]);
            const Prim wr = euler::to_primitive(u[std::size_t(f.right)]);
            const Cons fl = euler::numerical_flux(wl, wr, nrm, flux);
            for (int c = 0; c < 5; ++c) {
              res[std::size_t(f.left)][std::size_t(c)] +=
                  f.area * fl[std::size_t(c)];
              res[std::size_t(f.right)][std::size_t(c)] -=
                  f.area * fl[std::size_t(c)];
            }
          }
          // Domain (farfield) boundary faces are cell-local.
          for (const CartFace& f : m.boundary_faces) {
            if (part[std::size_t(f.left)] != index_t(mep)) continue;
            const Vec3 nrm = boundary_normal(f);
            const Cons fl = euler::farfield_flux(
                euler::to_primitive(u[std::size_t(f.left)]), freestream, nrm,
                flux);
            for (int c = 0; c < 5; ++c)
              res[std::size_t(f.left)][std::size_t(c)] +=
                  f.area * fl[std::size_t(c)];
          }
          // Embedded (cut-cell) walls are cell-local.
          for (const index_t i : owned_cells[mep]) {
            if (!m.cells[std::size_t(i)].cut) continue;
            const Cons fl = euler::wall_flux(
                euler::to_primitive(u[std::size_t(i)]),
                m.cells[std::size_t(i)].wall_area);
            for (int c = 0; c < 5; ++c)
              res[std::size_t(i)][std::size_t(c)] += fl[std::size_t(c)];
          }
          res_of[mep] = std::move(res);
        }
      });

  // Overlap mode: interior work done — wait out the exchange now.
  if (overlap) ghost_vals = &plan1.finish();

  // Phase 2b (cross faces): scatter each rank's ghost block and
  // accumulate the halo-adjacent faces, same ascending face order as 2a.
  smp::ThreadPool::global().parallel_for(
      0, np, 1, [&](std::size_t pb, std::size_t pe, int) {
        OBS_SPAN("cart3d.partitioned.compute", "level",
                 std::int64_t(comm.level));
        for (std::size_t mep = pb; mep < pe; ++mep) {
          const index_t me = index_t(mep);
          std::vector<Cons> ghost(n, Cons{});  // sparse by construction
          const auto& g = ghosts[mep];
          const auto& got = (*ghost_vals)[mep];
          for (std::size_t c = 0; c < 5; ++c)
            for (std::size_t k = 0; k < g.size(); ++k)
              ghost[std::size_t(g[k].item)][c] = got[c * g.size() + k];

          auto state_of = [&](index_t i) -> const Cons& {
            return part[std::size_t(i)] == me ? u[std::size_t(i)]
                                              : ghost[std::size_t(i)];
          };

          auto& res = res_of[mep];
          for (const index_t fi : cross_faces[mep]) {
            const CartFace& f = m.faces[std::size_t(fi)];
            const Vec3 nrm = axis_normal(f.axis);
            const Prim wl = euler::to_primitive(state_of(f.left));
            const Prim wr = euler::to_primitive(state_of(f.right));
            const Cons fl = euler::numerical_flux(wl, wr, nrm, flux);
            for (int c = 0; c < 5; ++c) {
              res[std::size_t(f.left)][std::size_t(c)] +=
                  f.area * fl[std::size_t(c)];
              res[std::size_t(f.right)][std::size_t(c)] -=
                  f.area * fl[std::size_t(c)];
            }
          }
        }
      });

  // Phase 3: return cross-partition face contributions; the owned-row
  // copy hides the return trip in overlap mode.
  core::PartitionData contrib_data(np);
  for (index_t p = 0; p < nparts; ++p) {
    auto& buf = contrib_data[std::size_t(p)];
    buf.resize(std::size_t(contrib_count[std::size_t(p)]) * 5);
    std::size_t w = 0;
    for (std::size_t c = 0; c < 5; ++c)
      for (const auto& [q, cells] : contrib[std::size_t(p)])
        for (index_t i : cells)
          buf[w++] = res_of[std::size_t(p)][std::size_t(i)][c];
  }
  plan2.post(contrib_data);
  const core::PartitionData* returned = overlap ? nullptr : &plan2.finish();

  std::vector<Cons> result(n, Cons{});
  for (std::size_t i = 0; i < n; ++i)
    result[i] = res_of[std::size_t(part[i])][i];
  if (overlap) returned = &plan2.finish();

  for (index_t p = 0; p < nparts; ++p) {
    const auto& got = (*returned)[std::size_t(p)];
    std::size_t k = 0;
    for (index_t q = 0; q < nparts; ++q) {
      const auto it = contrib[std::size_t(q)].find(p);
      if (it == contrib[std::size_t(q)].end()) continue;
      // c-major to match the request emission; per-element add order
      // (ascending q) is unchanged, so the sums are bit-identical.
      for (std::size_t c = 0; c < 5; ++c)
        for (index_t i : it->second)
          result[std::size_t(i)][c] += got[k++];
    }
  }
  return result;
}

}  // namespace columbia::cart3d
