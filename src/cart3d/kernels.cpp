#include "cart3d/kernels.hpp"

#include <algorithm>
#include <cmath>

#include "smp/pool.hpp"

namespace columbia::cart3d::kernels {

using cartesian::CartCell;
using cartesian::CartFace;
using cartesian::CartMesh;
using geom::Vec3;

namespace {

// Cell-loop chunk grain: fixed so chunk boundaries never depend on the
// thread count (determinism); matches the solver's historical constant.
constexpr std::size_t kCellGrain = 512;

template <class Fn>
void for_cells(std::size_t n, Fn&& body) {
  smp::ThreadPool::global().parallel_for(
      0, n, kCellGrain, [&](std::size_t b, std::size_t e, int) {
        for (std::size_t i = b; i < e; ++i) body(i);
      });
}

Vec3 boundary_normal(const CartFace& f) {
  const int a = f.axis >= 0 ? f.axis : -(f.axis + 1);
  const real_t sign = f.axis >= 0 ? 1.0 : -1.0;
  Vec3 n{};
  if (a == 0) n.x = sign;
  if (a == 1) n.y = sign;
  if (a == 2) n.z = sign;
  return n;
}

Vec3 axis_normal(int axis) {
  Vec3 n{};
  if (axis == 0) n.x = 1;
  if (axis == 1) n.y = 1;
  if (axis == 2) n.z = 1;
  return n;
}

std::array<real_t, 5> prim_array(const Prim& w) {
  return {w.rho, w.vel.x, w.vel.y, w.vel.z, w.p};
}

Prim prim_from_array(const std::array<real_t, 5>& q) {
  return {q[0], {q[1], q[2], q[3]}, q[4]};
}

template <euler::FluxScheme S>
Cons scheme_flux(const Prim& l, const Prim& r, const Vec3& n) {
  if constexpr (S == euler::FluxScheme::Roe) return euler::roe_flux(l, r, n);
  if constexpr (S == euler::FluxScheme::VanLeer)
    return euler::van_leer_flux(l, r, n);
  return euler::rusanov_flux(l, r, n);
}

real_t venkat(real_t dplus, real_t dq, real_t eps2) {
  const real_t num = (dplus * dplus + eps2) + 2.0 * dplus * dq;
  const real_t den = dplus * dplus + 2.0 * dq * dq + dplus * dq + eps2;
  return den > 0 ? num / den : 1.0;
}

}  // namespace

void LevelGeom::build(const CartMesh& m) {
  const std::size_t n = m.cells.size();
  const std::size_t nf = m.faces.size();
  cells = n;
  faces = nf;

  // Per-cell eps^2 with the exact expression the scalar limiter evaluated
  // per face side.
  eps2.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const real_t h = m.cell_width(m.cells[i].level, 0);
    eps2[i] = std::pow(0.3 * h, 3);
  }

  cut_cells.clear();
  for (std::size_t i = 0; i < n; ++i)
    if (m.cells[i].cut) cut_cells.push_back(index_t(i));

  // Per-face streams.
  fl.resize(nf);
  fr.resize(nf);
  axis.resize(nf);
  area.resize(nf);
  dabx.resize(nf);
  daby.resize(nf);
  dabz.resize(nf);
  dlx.resize(nf);
  dly.resize(nf);
  dlz.resize(nf);
  drx.resize(nf);
  dry.resize(nf);
  drz.resize(nf);
  for (std::size_t e = 0; e < nf; ++e) {
    const CartFace& f = m.faces[e];
    fl[e] = f.left;
    fr[e] = f.right;
    axis[e] = f.axis;
    area[e] = f.area;
    const Vec3 cl = m.cell_center(m.cells[std::size_t(f.left)]);
    const Vec3 cr = m.cell_center(m.cells[std::size_t(f.right)]);
    const Vec3 dab = cr - cl;
    dabx[e] = dab.x;
    daby[e] = dab.y;
    dabz[e] = dab.z;
    const Vec3 dl = f.center - cl;
    dlx[e] = dl.x;
    dly[e] = dl.y;
    dlz[e] = dl.z;
    const Vec3 dr = f.center - cr;
    drx[e] = dr.x;
    dry[e] = dr.y;
    drz[e] = dr.z;
  }

  // LSQ Gram matrices: accumulated in face order exactly as the scalar
  // path did (both face sides add the same six products — the offset signs
  // cancel in d_i d_j), then inverted once with the scalar expressions.
  std::vector<std::array<real_t, 6>> gram(n, {0, 0, 0, 0, 0, 0});
  for (std::size_t e = 0; e < nf; ++e) {
    const real_t dx = dabx[e], dy = daby[e], dz = dabz[e];
    const std::array<real_t, 6> p{dx * dx, dx * dy, dx * dz,
                                  dy * dy, dy * dz, dz * dz};
    auto& gl = gram[std::size_t(fl[e])];
    for (int k = 0; k < 6; ++k) gl[std::size_t(k)] += p[std::size_t(k)];
    auto& gr = gram[std::size_t(fr[e])];
    for (int k = 0; k < 6; ++k) gr[std::size_t(k)] += p[std::size_t(k)];
  }
  ginv.assign(n * kGinvStride, 0.0);
  singular.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& g = gram[i];
    const real_t a = g[0], b = g[1], c = g[2], d = g[3], e = g[4], f3 = g[5];
    const real_t det = a * (d * f3 - e * e) - b * (b * f3 - e * c) +
                       c * (b * e - d * c);
    if (std::abs(det) < 1e-30) {
      singular[i] = 1;
      continue;
    }
    const real_t inv = 1.0 / det;
    real_t* const gi = ginv.data() + i * kGinvStride;
    gi[0] = (d * f3 - e * e) * inv;
    gi[1] = (c * e - b * f3) * inv;
    gi[2] = (b * e - c * d) * inv;
    gi[3] = (a * f3 - c * c) * inv;
    gi[4] = (b * c - a * e) * inv;
    gi[5] = (a * d - b * b) * inv;
  }

  // Boundary-face streams.
  const std::size_t nb = m.boundary_faces.size();
  bfl.resize(nb);
  barea.resize(nb);
  bnx.resize(nb);
  bny.resize(nb);
  bnz.resize(nb);
  for (std::size_t e = 0; e < nb; ++e) {
    const CartFace& f = m.boundary_faces[e];
    bfl[e] = f.left;
    barea[e] = f.area;
    const Vec3 bn = boundary_normal(f);
    bnx[e] = bn.x;
    bny[e] = bn.y;
    bnz[e] = bn.z;
  }
  built = true;
}

void Scratch::resize(const LevelGeom& g, bool second_order) {
  w.resize(g.cells);
  pb.resize(g.cells * kPrimStride);
  if (second_order) {
    gb.resize(g.cells * kGradStride);
    rb.resize(g.cells * kRhsStride);
    ph.resize(g.cells * kPhiStride);
    fdq.resize(g.faces * kFdqStride);
  }
}

namespace {

/// Vectorizable LSQ rhs update for one face side (restrict parameters:
/// the two cells of a face are distinct, so the blocks never overlap).
inline void lsq_rhs_edge(real_t* __restrict ra, real_t* __restrict rbv,
                         const real_t* __restrict pa,
                         const real_t* __restrict pbv, real_t dx, real_t dy,
                         real_t dz) {
  for (std::size_t c = 0; c < 5; ++c) {
    const real_t dq = pbv[c] - pa[c];
    ra[c] += dq * dx;
    ra[5 + c] += dq * dy;
    ra[10 + c] += dq * dz;
    const real_t dqr = pa[c] - pbv[c];
    rbv[c] += dqr * -dx;
    rbv[5 + c] += dqr * -dy;
    rbv[10 + c] += dqr * -dz;
  }
}

/// Directional differences g . d for both face sides, cached per face and
/// reused bitwise by the reconstruction (same association as geom::dot).
inline void limiter_fdq(real_t* __restrict fd, const real_t* __restrict ga,
                        const real_t* __restrict gbb, real_t dlx_, real_t dly_,
                        real_t dlz_, real_t drx_, real_t dry_, real_t drz_) {
  for (std::size_t c = 0; c < 5; ++c) {
    fd[c] = (ga[c] * dlx_ + ga[5 + c] * dly_) + ga[10 + c] * dlz_;
    fd[5 + c] = (gbb[c] * drx_ + gbb[5 + c] * dry_) + gbb[10 + c] * drz_;
  }
}

template <euler::FluxScheme S>
void flux_faces(const LevelGeom& g, const Scratch& s, bool second_order,
                std::vector<Cons>& res) {
  const real_t* const pb = s.pb.data();
  const real_t* const ph = s.ph.data();
  const real_t* const fdq = s.fdq.data();
  const Prim* const w = s.w.data();
  Cons* const r = res.data();
  for (std::size_t e = 0; e < g.faces; ++e) {
    const std::size_t a = std::size_t(g.fl[e]);
    const std::size_t b = std::size_t(g.fr[e]);
    const Vec3 nrm = axis_normal(g.axis[e]);
    Prim wl = w[a], wr = w[b];
    if (second_order) {
      const real_t* const pa = pb + a * kPrimStride;
      const real_t* const pbv = pb + b * kPrimStride;
      const real_t* const pha = ph + a * kPhiStride;
      const real_t* const phb = ph + b * kPhiStride;
      const real_t* const fd = fdq + e * kFdqStride;
      std::array<real_t, 5> ql, qr;
      for (std::size_t c = 0; c < 5; ++c) {
        ql[c] = pa[c] + pha[c] * fd[c];
        qr[c] = pbv[c] + phb[c] * fd[5 + c];
      }
      // Exact inverse of the scalar guard (q[0] <= 0 || q[4] <= 0 falls
      // back to the cell mean) so NaN reconstructions take the same path.
      if (!(ql[0] <= 0 || ql[4] <= 0)) wl = prim_from_array(ql);
      if (!(qr[0] <= 0 || qr[4] <= 0)) wr = prim_from_array(qr);
    }
    const Cons flux = scheme_flux<S>(wl, wr, nrm);
    const real_t ar = g.area[e];
    for (std::size_t c = 0; c < 5; ++c) {
      const real_t fc = ar * flux[c];
      r[a][c] += fc;
      r[b][c] -= fc;
    }
  }
}

}  // namespace

void residual(const LevelGeom& g, const CartMesh& m, const Prim& freestream,
              euler::FluxScheme scheme, std::span<const Cons> u,
              bool second_order, Scratch& s, std::vector<Cons>& res) {
  const std::size_t n = g.cells;
  s.resize(g, second_order);
  res.resize(n);

  // Fused setup pass: primitive cache + zero the residual; with second
  // order also seed the limiter (phi = 1), the neighbor min/max (own
  // value) and zero the LSQ rhs blocks — all stores nothing reads before
  // the later sweeps, so fusing is bit-neutral.
  Prim* const w = s.w.data();
  real_t* const pb = s.pb.data();
  real_t* const gb = s.gb.data();
  real_t* const rb = s.rb.data();
  real_t* const ph = s.ph.data();
  Cons* const r = res.data();
  for_cells(n, [&](std::size_t i) {
    const Prim wi = euler::to_primitive(u[i]);
    w[i] = wi;
    real_t* const __restrict p = pb + i * kPrimStride;
    p[0] = wi.rho;
    p[1] = wi.vel.x;
    p[2] = wi.vel.y;
    p[3] = wi.vel.z;
    p[4] = wi.p;
    if (second_order) {
      real_t* const __restrict bl = gb + i * kGradStride;
      real_t* const __restrict rl = rb + i * kRhsStride;
      real_t* const __restrict f = ph + i * kPhiStride;
      for (std::size_t c = 0; c < 5; ++c) {
        bl[15 + c] = bl[20 + c] = p[c];  // qmin/qmax seed
        rl[c] = rl[5 + c] = rl[10 + c] = 0.0;
        f[c] = 1.0;
      }
    }
    r[i] = Cons{};
  });

  if (second_order) {
    // LSQ rhs + neighbor min/max, fused into one serial face sweep (both
    // accumulate per cell in face order, exactly as the two scalar sweeps
    // did; they write disjoint arrays).
    for (std::size_t e = 0; e < g.faces; ++e) {
      const std::size_t a = std::size_t(g.fl[e]);
      const std::size_t b = std::size_t(g.fr[e]);
      lsq_rhs_edge(rb + a * kRhsStride, rb + b * kRhsStride,
                   pb + a * kPrimStride, pb + b * kPrimStride, g.dabx[e],
                   g.daby[e], g.dabz[e]);
      real_t* const __restrict bl = gb + a * kGradStride;
      real_t* const __restrict br = gb + b * kGradStride;
      const real_t* const __restrict pa = pb + a * kPrimStride;
      const real_t* const __restrict pbv = pb + b * kPrimStride;
      for (std::size_t c = 0; c < 5; ++c) {
        bl[15 + c] = std::min(bl[15 + c], pbv[c]);
        bl[20 + c] = std::max(bl[20 + c], pbv[c]);
        br[15 + c] = std::min(br[15 + c], pa[c]);
        br[20 + c] = std::max(br[20 + c], pa[c]);
      }
    }

    // Per-cell 3x3 solves against the precomputed Gram inverses (the
    // scalar path rebuilt and re-inverted the Gram matrix every call).
    const real_t* const ginv = g.ginv.data();
    const unsigned char* const sing = g.singular.data();
    for_cells(n, [&](std::size_t i) {
      real_t* const __restrict bl = gb + i * kGradStride;
      if (sing[i]) {
        for (std::size_t c = 0; c < 15; ++c) bl[c] = 0.0;  // isolated cell
        return;
      }
      const real_t* const __restrict gi = ginv + i * kGinvStride;
      const real_t* const __restrict rl = rb + i * kRhsStride;
      for (std::size_t c = 0; c < 5; ++c) {
        const real_t rx = rl[c], ry = rl[5 + c], rz = rl[10 + c];
        bl[c] = gi[0] * rx + gi[1] * ry + gi[2] * rz;
        bl[5 + c] = gi[1] * rx + gi[3] * ry + gi[4] * rz;
        bl[10 + c] = gi[2] * rx + gi[4] * ry + gi[5] * rz;
      }
    });

    // Venkatakrishnan limiter sweep; the directional differences are
    // cached per face for the flux reconstruction.
    const real_t* const eps2 = g.eps2.data();
    real_t* const fdq = s.fdq.data();
    for (std::size_t e = 0; e < g.faces; ++e) {
      const std::size_t a = std::size_t(g.fl[e]);
      const std::size_t b = std::size_t(g.fr[e]);
      const real_t* const ga = gb + a * kGradStride;
      const real_t* const gbb = gb + b * kGradStride;
      const real_t* const pa = pb + a * kPrimStride;
      const real_t* const pbv = pb + b * kPrimStride;
      real_t* const pha = ph + a * kPhiStride;
      real_t* const phb = ph + b * kPhiStride;
      real_t* const fd = fdq + e * kFdqStride;
      limiter_fdq(fd, ga, gbb, g.dlx[e], g.dly[e], g.dlz[e], g.drx[e],
                  g.dry[e], g.drz[e]);
      const real_t ea = eps2[a], eb = eps2[b];
      for (std::size_t c = 0; c < 5; ++c) {
        const real_t dqa = fd[c];
        real_t lim_a = 1.0;
        if (dqa > 1e-14)
          lim_a = venkat(ga[20 + c] - pa[c], dqa, ea);
        else if (dqa < -1e-14)
          lim_a = venkat(pa[c] - ga[15 + c], -dqa, ea);
        pha[c] = std::min(pha[c], lim_a);
        const real_t dqb = fd[5 + c];
        real_t lim_b = 1.0;
        if (dqb > 1e-14)
          lim_b = venkat(gbb[20 + c] - pbv[c], dqb, eb);
        else if (dqb < -1e-14)
          lim_b = venkat(pbv[c] - gbb[15 + c], -dqb, eb);
        phb[c] = std::min(phb[c], lim_b);
      }
    }
  }

  // Interior faces (scheme hoisted out of the sweep).
  switch (scheme) {
    case euler::FluxScheme::Roe:
      flux_faces<euler::FluxScheme::Roe>(g, s, second_order, res);
      break;
    case euler::FluxScheme::VanLeer:
      flux_faces<euler::FluxScheme::VanLeer>(g, s, second_order, res);
      break;
    case euler::FluxScheme::Rusanov:
      flux_faces<euler::FluxScheme::Rusanov>(g, s, second_order, res);
      break;
  }

  // Domain (farfield) boundary faces.
  for (std::size_t e = 0; e < g.bfl.size(); ++e) {
    const std::size_t i = std::size_t(g.bfl[e]);
    const Vec3 nrm{g.bnx[e], g.bny[e], g.bnz[e]};
    const Cons flux = euler::farfield_flux(w[i], freestream, nrm, scheme);
    const real_t ar = g.barea[e];
    for (std::size_t c = 0; c < 5; ++c) r[i][c] += ar * flux[c];
  }

  // Embedded (cut-cell) walls: only the precomputed cut list is visited
  // (cut indices are unique, so the scatter is race-free).
  const index_t* const cut = g.cut_cells.data();
  for_cells(g.cut_cells.size(), [&](std::size_t k) {
    const std::size_t i = std::size_t(cut[k]);
    const Cons flux = euler::wall_flux(w[i], m.cells[i].wall_area);
    for (std::size_t q = 0; q < 5; ++q) r[i][q] += flux[q];
  });
}

// --- Scalar reference: verbatim retention of the pre-SoA residual. ---

void residual_reference(const CartMesh& m, const Prim& freestream,
                        euler::FluxScheme scheme, std::span<const Cons> u,
                        bool second_order, ReferenceScratch& ws,
                        std::vector<Cons>& res) {
  const std::size_t n = m.cells.size();
  res.assign(n, Cons{});

  ws.w.resize(n);
  auto& w = ws.w;
  for (std::size_t i = 0; i < n; ++i) w[i] = euler::to_primitive(u[i]);

  auto& grad = ws.grad;
  auto& phi = ws.phi;
  if (second_order) {
    grad.assign(n, {});
    phi.assign(n, {1, 1, 1, 1, 1});

    ws.gram.assign(n, std::array<real_t, 6>{0, 0, 0, 0, 0, 0});
    ws.rhs.assign(n, std::array<Vec3, 5>{});
    auto& gram = ws.gram;
    auto& rhs = ws.rhs;
    auto accumulate = [&](index_t a, index_t b) {
      const Vec3 d = m.cell_center(m.cells[std::size_t(b)]) -
                     m.cell_center(m.cells[std::size_t(a)]);
      auto& g = gram[std::size_t(a)];
      g[0] += d.x * d.x;
      g[1] += d.x * d.y;
      g[2] += d.x * d.z;
      g[3] += d.y * d.y;
      g[4] += d.y * d.z;
      g[5] += d.z * d.z;
      const auto qa = prim_array(w[std::size_t(a)]);
      const auto qb = prim_array(w[std::size_t(b)]);
      for (int c = 0; c < 5; ++c)
        rhs[std::size_t(a)][std::size_t(c)] +=
            (qb[std::size_t(c)] - qa[std::size_t(c)]) * d;
    };
    for (const CartFace& f : m.faces) {
      accumulate(f.left, f.right);
      accumulate(f.right, f.left);
    }
    for (std::size_t i = 0; i < n; ++i) {
      const auto& g = gram[i];
      const real_t a = g[0], b = g[1], c = g[2], d = g[3], e = g[4],
                   f3 = g[5];
      const real_t det = a * (d * f3 - e * e) - b * (b * f3 - e * c) +
                         c * (b * e - d * c);
      if (std::abs(det) < 1e-30) continue;  // isolated cell: keep zero grad
      const real_t inv = 1.0 / det;
      const real_t i00 = (d * f3 - e * e) * inv;
      const real_t i01 = (c * e - b * f3) * inv;
      const real_t i02 = (b * e - c * d) * inv;
      const real_t i11 = (a * f3 - c * c) * inv;
      const real_t i12 = (b * c - a * e) * inv;
      const real_t i22 = (a * d - b * b) * inv;
      for (int q = 0; q < 5; ++q) {
        const Vec3 rv = rhs[i][std::size_t(q)];
        grad[i][std::size_t(q)] = {i00 * rv.x + i01 * rv.y + i02 * rv.z,
                                   i01 * rv.x + i11 * rv.y + i12 * rv.z,
                                   i02 * rv.x + i12 * rv.y + i22 * rv.z};
      }
    }

    ws.qmin.resize(n);
    ws.qmax.resize(n);
    auto& qmin = ws.qmin;
    auto& qmax = ws.qmax;
    for (std::size_t i = 0; i < n; ++i) qmin[i] = qmax[i] = prim_array(w[i]);
    auto minmax = [&](index_t a, index_t b) {
      const auto qb = prim_array(w[std::size_t(b)]);
      for (int c = 0; c < 5; ++c) {
        qmin[std::size_t(a)][std::size_t(c)] =
            std::min(qmin[std::size_t(a)][std::size_t(c)], qb[std::size_t(c)]);
        qmax[std::size_t(a)][std::size_t(c)] =
            std::max(qmax[std::size_t(a)][std::size_t(c)], qb[std::size_t(c)]);
      }
    };
    for (const CartFace& f : m.faces) {
      minmax(f.left, f.right);
      minmax(f.right, f.left);
    }
    auto limit_at = [&](index_t i, const Vec3& to_face) {
      const auto qi = prim_array(w[std::size_t(i)]);
      const real_t h = m.cell_width(m.cells[std::size_t(i)].level, 0);
      const real_t eps2 = std::pow(0.3 * h, 3);
      for (int c = 0; c < 5; ++c) {
        const real_t dq = dot(grad[std::size_t(i)][std::size_t(c)], to_face);
        real_t lim = 1.0;
        if (dq > 1e-14)
          lim = venkat(qmax[std::size_t(i)][std::size_t(c)] - qi[std::size_t(c)],
                       dq, eps2);
        else if (dq < -1e-14)
          lim = venkat(qi[std::size_t(c)] - qmin[std::size_t(i)][std::size_t(c)],
                       -dq, eps2);
        phi[std::size_t(i)][std::size_t(c)] =
            std::min(phi[std::size_t(i)][std::size_t(c)], lim);
      }
    };
    for (const CartFace& f : m.faces) {
      limit_at(f.left, f.center - m.cell_center(m.cells[std::size_t(f.left)]));
      limit_at(f.right,
               f.center - m.cell_center(m.cells[std::size_t(f.right)]));
    }
  }

  auto reconstruct = [&](index_t i, const Vec3& face_center) -> Prim {
    if (!second_order) return w[std::size_t(i)];
    const Vec3 d = face_center - m.cell_center(m.cells[std::size_t(i)]);
    auto q = prim_array(w[std::size_t(i)]);
    for (int c = 0; c < 5; ++c)
      q[std::size_t(c)] += phi[std::size_t(i)][std::size_t(c)] *
                           dot(grad[std::size_t(i)][std::size_t(c)], d);
    if (q[0] <= 0 || q[4] <= 0) return w[std::size_t(i)];
    return prim_from_array(q);
  };

  for (const CartFace& f : m.faces) {
    const Vec3 nrm = axis_normal(f.axis);
    const Prim wl = reconstruct(f.left, f.center);
    const Prim wr = reconstruct(f.right, f.center);
    const Cons flux = euler::numerical_flux(wl, wr, nrm, scheme);
    for (int c = 0; c < 5; ++c) {
      res[std::size_t(f.left)][std::size_t(c)] += f.area * flux[std::size_t(c)];
      res[std::size_t(f.right)][std::size_t(c)] -= f.area * flux[std::size_t(c)];
    }
  }

  for (const CartFace& f : m.boundary_faces) {
    const Vec3 nrm = boundary_normal(f);
    const Cons flux =
        euler::farfield_flux(w[std::size_t(f.left)], freestream, nrm, scheme);
    for (int c = 0; c < 5; ++c)
      res[std::size_t(f.left)][std::size_t(c)] += f.area * flux[std::size_t(c)];
  }

  for (std::size_t i = 0; i < n; ++i) {
    const CartCell& c = m.cells[i];
    if (!c.cut) continue;
    const Cons flux = euler::wall_flux(w[i], c.wall_area);
    for (int q = 0; q < 5; ++q) res[i][std::size_t(q)] += flux[std::size_t(q)];
  }
}

}  // namespace columbia::cart3d::kernels
