#include "perf/columbia.hpp"

#include <algorithm>
#include <cmath>

#include "support/assert.hpp"

namespace columbia::perf {

FabricModel numalink4() {
  // Paper Sec. II: NUMAlink4 peak 6.4 GB/s; microbenchmarks of ref. [4]
  // show ~1 us MPI latency and robust bandwidth under random-ring traffic.
  return FabricModel{"NUMAlink4", 1.1e-6, 3.2e9, 2.0e9, {0, 1.0, 1.0, 0.95, 0.9}};
}

FabricModel infiniband() {
  // Ref. [4]: InfiniBand delivers good nearest-neighbor bandwidth inside a
  // box but degrades across boxes, and collapses by orders of magnitude
  // for random-ring (scattered) communication patterns — the paper's
  // explanation for the multigrid inter-grid transfer penalty.
  return FabricModel{"InfiniBand", 8.0e-6, 0.9e9, 0.024e9,
                     {0, 1.0, 0.65, 0.55, 0.45}};
}

FabricModel shared_memory() {
  // Pure OpenMP within one cache-coherent box.
  return FabricModel{"shared", 2.0e-7, 3.2e9, 1.0e9, {0, 1.0, 1.0, 1.0, 1.0}};
}

index_t max_mpi_processes_infiniband(int nodes) {
  COLUMBIA_REQUIRE(nodes >= 1);
  if (nodes <= 1) return 1 << 30;  // no box-to-box IB traffic: unlimited
  // Eq. (1): #MPI <= sqrt(n/(n-1) * C) with C the per-box connection
  // capacity. The paper's practical statement (1524 processes on four
  // boxes) anchors C = 1524^2 * 3/4 = 1,741,932 connections.
  const real_t c = 1741932.0;
  const real_t n = real_t(nodes);
  return index_t(std::floor(std::sqrt(n / (n - 1) * c)));
}

real_t MachineModel::cpu_rate(real_t working_set_bytes,
                              const HybridLayout& layout) const {
  real_t rate = cfg_.clock_hz * cfg_.flops_per_cycle * cfg_.sustained_fraction;
  // Cache effect: smaller per-CPU working sets run faster (superlinear
  // speedups of Fig. 14b).
  const real_t ws = std::max(working_set_bytes, real_t(1e3));
  rate *= 1.0 + cfg_.cache_slope * std::log2(cfg_.cache_ref_bytes / ws);
  // Pure-OpenMP coarse-mode pointer penalty beyond 128 CPUs (Fig. 20).
  if (layout.fabric == Interconnect::SharedMemory && layout.total_cpus > 128)
    rate *= 1.0 - cfg_.coarse_mode_penalty;
  return rate;
}

CycleTime MachineModel::cycle_time(const std::vector<LevelLoad>& loads,
                                   const HybridLayout& layout) const {
  COLUMBIA_REQUIRE(layout.total_cpus >= 1);
  COLUMBIA_REQUIRE(layout.omp_threads_per_mpi >= 1);
  const int span = layout.nodes_override > 0
                       ? std::min(4, layout.nodes_override)
                       : std::min(4, nodes_spanned(layout.total_cpus));
  // Within a single box there is no box-to-box traffic: MPI rides the
  // cache-coherent shared memory regardless of the configured fabric
  // (paper Sec. VII: "from 32-496 CPUs ... there is no difference between
  // the two curves").
  FabricModel fabric =
      layout.fabric == Interconnect::NumaLink4
          ? numalink4()
          : (layout.fabric == Interconnect::InfiniBand ? infiniband()
                                                       : shared_memory());
  if (span <= 1 && layout.fabric == Interconnect::InfiniBand)
    fabric = numalink4();
  const real_t bw = fabric.bandwidth_Bps * fabric.node_span_factor[std::size_t(span)];
  // Scattered (random-ring) traffic shares a roughly fixed aggregate
  // bisection: the per-process slice shrinks as processes grow (ref. [4]
  // measures exactly this collapse for InfiniBand).
  const real_t scatter_share =
      128.0 / std::max<real_t>(128.0, real_t(layout.mpi_processes()));
  const real_t scatter_bw = fabric.scatter_bandwidth_Bps *
                            fabric.node_span_factor[std::size_t(span)] *
                            scatter_share;

  const index_t threads = layout.omp_threads_per_mpi;
  // Intra-process OpenMP efficiency (Fig. 15 anchors).
  const real_t omp_eff =
      1.0 / (1.0 + cfg_.omp_quad_overhead * real_t((threads - 1) * (threads - 1)));
  // Master-thread communication (Fig. 7b): while MPI messages are issued,
  // the other threads idle for the non-overlapped part of the exchange.
  const real_t master_penalty = 1.0 + 0.25 * real_t(threads - 1);

  CycleTime out;
  for (const LevelLoad& load : loads) {
    const real_t visits = real_t(load.visits_per_cycle);
    // Compute: busiest partition / (threads x per-CPU rate).
    const real_t ws = load.max_work_items * load.bytes_per_item /
                      real_t(threads);
    const real_t rate = cpu_rate(ws, layout);
    const real_t comp = load.max_work_items * load.flops_per_item /
                        (real_t(threads) * rate * omp_eff);
    out.compute_s += visits * comp;

    // Per-visit synchronization overhead (scales with process count).
    out.halo_s += visits * cfg_.sync_per_visit_s *
                  std::log(std::max<real_t>(2.0, real_t(layout.mpi_processes())));

    // Halo exchange: one packed message per neighbor per phase.
    const real_t msg_bytes = load.max_halo_items * load.halo_bytes_per_item;
    const real_t halo =
        real_t(load.exchanges_per_visit) *
        (real_t(load.comm_neighbors) * fabric.latency_s + msg_bytes / bw) *
        master_penalty;
    out.halo_s += visits * halo;

    // Inter-grid transfer (restriction + prolongation once per visit):
    // scattered traffic runs at the fabric's random-ring bandwidth.
    if (load.intergrid_items > 0) {
      const real_t ig_bytes = load.intergrid_items * load.halo_bytes_per_item;
      const real_t ig =
          2.0 * (real_t(load.intergrid_neighbors) * fabric.latency_s +
                 ig_bytes / std::max(scatter_bw, real_t(1.0))) *
          master_penalty;
      out.intergrid_s += visits * ig;
    }

    // Whole-machine FLOPs: busiest-partition work x process count is a
    // tight upper estimate of the total (partitions are balanced).
    out.flops += visits * load.max_work_items * load.flops_per_item *
                 real_t(layout.mpi_processes());
  }
  out.total_s = out.compute_s + out.halo_s + out.intergrid_s;
  return out;
}

real_t MachineModel::speedup(const std::vector<LevelLoad>& loads,
                             const HybridLayout& layout,
                             const std::vector<LevelLoad>& ref_loads,
                             const HybridLayout& ref_layout) const {
  const real_t t = cycle_time(loads, layout).total_s;
  const real_t t_ref = cycle_time(ref_loads, ref_layout).total_s;
  if (t <= 0) return 0;
  return real_t(ref_layout.total_cpus) * t_ref / t;
}

std::vector<LevelLoad> scale_loads(std::vector<LevelLoad> loads, real_t s) {
  COLUMBIA_REQUIRE(s > 0);
  const real_t surf = std::pow(s, 2.0 / 3.0);
  for (LevelLoad& l : loads) {
    l.max_work_items *= s;
    l.max_halo_items *= surf;
    l.intergrid_items *= surf;
  }
  return loads;
}

}  // namespace columbia::perf
