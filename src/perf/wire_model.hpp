// Machine-model attribution of measured wire traffic (paper Figs. 16-18).
//
// The communication observatory measures, per (level, strategy) exchange
// group, how long each delivered message actually spent on the wire
// (post begin -> wait end, clock-aligned across ranks). The analytic
// Columbia model (perf/columbia.hpp) prices the same message as
//
//   t = fabric latency + payload / fabric bandwidth
//
// This module joins the two: one row per exchange group with the measured
// mean/min delivery time against the model prediction for that group's
// mean message size, over the fabric standing in for the run's transport
// backend. The ratio column is the attribution — ~1 means the wire
// behaves like the modeled fabric; >> 1 means the time went somewhere the
// fabric model does not know about (scheduling, retransmits, overload).
//
// Backend -> fabric mapping (documented stand-ins, single-host reality):
//   threads/local -> shared_memory,  shm -> numalink4,  tcp -> infiniband
// i.e. the process-separated shm rings play the role of NUMAlink within a
// box and the socket backend the role of the InfiniBand inter-box story.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/comm_report.hpp"
#include "perf/columbia.hpp"
#include "support/table.hpp"

namespace columbia::perf {

/// One (level, strategy) exchange group: measured wire behavior joined
/// with the fabric-model prediction for the same traffic.
struct WireAttribution {
  std::int64_t level = -1;
  std::int64_t strat = -1;
  std::uint64_t messages = 0;  // matched post/wait pairs
  std::uint64_t bytes = 0;     // payload over those pairs
  double mean_bytes = 0;       // bytes / messages
  double measured_mean_s = 0;  // mean delivery (post begin -> wait end)
  double measured_min_s = 0;   // fastest delivery (latency-floor estimate)
  /// Effective delivered bandwidth: bytes / total measured transfer time.
  double measured_Bps = 0;
  double model_s = 0;          // latency + mean_bytes/bandwidth
  double ratio = 0;            // measured_mean_s / model_s (0 if no model)
};

/// The fabric standing in for a transport backend name ("threads",
/// "local", "shm", "tcp"; anything else maps to shared memory).
FabricModel fabric_for_backend(const std::string& backend);

/// Joins every matched exchange group of the report with `fabric`'s
/// prediction. Groups with no matched messages are skipped.
std::vector<WireAttribution> attribute_wire(const obs::CommReport& report,
                                            const FabricModel& fabric);

/// One-line description of the fabric constants, printed above the table.
std::string fabric_model_line(const FabricModel& fabric);

/// Figs. 16-18-style measured-vs-model table, one row per exchange group.
Table wire_model_table(const std::vector<WireAttribution>& rows,
                       const FabricModel& fabric);

/// Appends the attribution as a JSON array value on an in-progress writer.
void write_wire_model_json_into(obs::JsonWriter& w,
                                const std::vector<WireAttribution>& rows,
                                const FabricModel& fabric);

}  // namespace columbia::perf
