// Analytic performance model of the NASA Columbia supercomputer.
//
// The scaling studies of the paper ran on 2048 CPUs of Columbia (four SGI
// Altix 3700BX2 nodes, Sec. II). This model reproduces those studies from
// first principles plus a small set of documented calibration constants:
//
//   time/cycle = sum over multigrid levels of
//     visits x [ max-partition work / effective CPU rate
//                + halo exchanges (latency + payload/bandwidth)
//                + inter-grid transfer (scattered traffic) ]
//
// The work, halo, neighbor-degree and inter-grid quantities are *measured*
// from real partitionings produced by this repository's partitioners; the
// machine constants come from the paper (clock, FLOPS/cycle, NUMAlink4
// bandwidth, eq. (1) connection limit) and from its reference [4] (the
// InfiniBand random-ring collapse that the paper blames for the multigrid
// degradation). Calibration anchors are listed in EXPERIMENTS.md.
#pragma once

#include <vector>

#include "support/types.hpp"

namespace columbia::perf {

enum class Interconnect { NumaLink4, InfiniBand, SharedMemory };

/// Altix 3700BX2 node facts (paper Sec. II) + model calibration constants.
struct MachineConfig {
  int cpus_per_node = 512;
  int num_nodes = 20;
  real_t clock_hz = 1.6e9;
  real_t flops_per_cycle = 4;      // up to 4 FLOPS/cycle (2 MADDs)
  real_t l3_bytes = 9.0 * 1024 * 1024;
  real_t mem_per_cpu_bytes = 2.0 * real_t(1u << 30);

  /// Sustained fraction of peak for these CFD codes: the paper measures
  /// ~1.4-1.5 GFLOP/s per CPU (6.4 GF peak).
  real_t sustained_fraction = 0.24;
  /// Cache model: per-CPU rate multiplier 1 + slope*log2(ref/ws), i.e.
  /// smaller partitions run faster (the paper's superlinear speedups).
  real_t cache_slope = 0.03;
  real_t cache_ref_bytes = 1.0e9;
  /// Hybrid OpenMP efficiency: 1/(1 + c (T-1)^2); calibrated to the
  /// paper's Fig. 15 anchors (98.4% at T=2, 87.2% at T=4).
  real_t omp_quad_overhead = 0.0155;
  /// OpenMP "coarse mode" addressing penalty beyond 128 CPUs in one node
  /// (paper Sec. VII, Fig. 20 slope break).
  real_t coarse_mode_penalty = 0.035;
  /// Per-level-visit synchronization/software overhead, scaling with
  /// ln(processes): collective progress, MPI call overheads and load
  /// imbalance on levels that "contain minimal amounts of computational
  /// work, but span the same number of processors" (paper Sec. VI). This
  /// term produces the NUMAlink multigrid roll-off of Figs. 14b/21.
  real_t sync_per_visit_s = 8.0e-4;
};

/// Interconnect fabric: point-to-point latency/bandwidth plus the
/// scattered-traffic (random-ring) bandwidth of the paper's reference [4].
struct FabricModel {
  const char* name;
  real_t latency_s;
  real_t bandwidth_Bps;          // well-formed neighbor exchanges
  real_t scatter_bandwidth_Bps;  // random-ring / inter-grid traffic
  /// Bandwidth multiplier by number of Altix boxes spanned (index 1..4).
  real_t node_span_factor[5];
};

FabricModel numalink4();
FabricModel infiniband();
FabricModel shared_memory();

/// Eq. (1): the InfiniBand MPI-connection limit. For n >= 2 Altix boxes the
/// card connection table bounds the number of MPI processes; the paper's
/// practical statement — at most 1524 MPI processes on four boxes — anchors
/// the constant.
index_t max_mpi_processes_infiniband(int nodes);

/// How the CPUs are used (paper Sec. III: pure MPI, pure OpenMP, hybrid).
struct HybridLayout {
  index_t total_cpus = 1;
  index_t omp_threads_per_mpi = 1;
  Interconnect fabric = Interconnect::NumaLink4;
  /// Boxes the job actually spans (0 = minimal). The paper deliberately
  /// spread some runs: e.g. the 508-CPU Cart3D case ran across two boxes.
  int nodes_override = 0;

  index_t mpi_processes() const { return total_cpus / omp_threads_per_mpi; }
};

/// Per-multigrid-level load, measured from a real decomposition at MPI
/// process granularity.
struct LevelLoad {
  real_t max_work_items = 0;    // busiest partition (nodes or cells)
  real_t max_halo_items = 0;    // values exchanged by the busiest partition
  index_t comm_neighbors = 0;   // messages per halo exchange
  real_t intergrid_items = 0;   // busiest partition's off-part transfer
  index_t intergrid_neighbors = 0;
  index_t visits_per_cycle = 1;
  real_t flops_per_item = 65000;   // per item per visit (calibrated)
  real_t bytes_per_item = 2000;    // resident working set per item
  real_t halo_bytes_per_item = 48; // message payload per halo value
  int exchanges_per_visit = 2;     // residual + update (paper Sec. III)
};

struct CycleTime {
  real_t compute_s = 0;
  real_t halo_s = 0;
  real_t intergrid_s = 0;
  real_t total_s = 0;
  real_t flops = 0;  // per cycle, whole machine

  real_t tflops() const { return total_s > 0 ? flops / total_s / 1e12 : 0; }
};

class MachineModel {
 public:
  explicit MachineModel(const MachineConfig& cfg = {}) : cfg_(cfg) {}

  const MachineConfig& config() const { return cfg_; }

  /// Predicted wall-clock for one multigrid cycle under the given layout.
  CycleTime cycle_time(const std::vector<LevelLoad>& loads,
                       const HybridLayout& layout) const;

  /// Parallel speedup vs a reference layout, assuming the reference is
  /// assigned ideal speedup = its CPU count (paper convention).
  real_t speedup(const std::vector<LevelLoad>& loads,
                 const HybridLayout& layout,
                 const std::vector<LevelLoad>& ref_loads,
                 const HybridLayout& ref_layout) const;

  int nodes_spanned(index_t cpus) const {
    return int((cpus + cfg_.cpus_per_node - 1) / cfg_.cpus_per_node);
  }

 private:
  MachineConfig cfg_;
  real_t cpu_rate(real_t working_set_bytes, const HybridLayout& layout) const;
};

/// Scales measured loads to a larger problem: work scales by `s` (volume),
/// halos and inter-grid transfers by s^(2/3) (surface). Used to replay a
/// small in-repo mesh at the paper's 72M-point / 25M-cell sizes while
/// keeping the measured partition quality.
std::vector<LevelLoad> scale_loads(std::vector<LevelLoad> loads, real_t s);

}  // namespace columbia::perf
