// Adapters: turn measured decompositions of the two solvers' multigrid
// hierarchies into MachineModel level loads.
//
// The paper's runs put 72M points (NSU3D) / 25M cells (Cart3D) on up to
// ~2000 CPUs; the in-repo meshes are thousands of times smaller. Partition
// statistics (imbalance, halo size, communication degree, inter-grid
// crossing fraction) depend on the *granularity* — items per partition —
// not on the global problem size. The load models therefore measure each
// hierarchy level at the partition count P' that reproduces the target
// run's items-per-partition, and then rescale the per-partition work to
// the target granularity. Measurement is cached per (level, P').
#pragma once

#include <map>
#include <span>
#include <vector>

#include "cart3d/solver.hpp"
#include "cartesian/coarsen.hpp"
#include "core/exchange_plan.hpp"
#include "core/params.hpp"
#include "nsu3d/partitioned.hpp"
#include "perf/columbia.hpp"

namespace columbia::perf {

/// Kernel-cost constants. FLOPs per item per level visit are calibrated
/// against the paper's own arithmetic (EXPERIMENTS.md): NSU3D's 2.8 TFLOP/s
/// x 1.95 s/cycle over ~84M weighted node-visits of the 72M-point six-level
/// W-cycle gives ~65 kFLOPs per node-visit.
struct KernelCosts {
  real_t flops_per_item = 65000;
  real_t bytes_per_item = 2000;
  real_t halo_bytes_per_item = 48;  // six doubles per ghost node
  /// Fraction of crossing items actually moved by restriction and
  /// prolongation. NSU3D transfers per-fine-node data (1.0); Cart3D's
  /// piecewise-constant transfers move one value per coarse cell (~1/8
  /// of the crossing fine cells).
  real_t intergrid_weight = 1.0;
};

inline KernelCosts nsu3d_costs() { return {65000, 2000, 48, 1.0}; }
inline KernelCosts cart3d_costs() { return {10000, 600, 40, 0.15}; }

/// Per-level, per-granularity partition measurements.
struct MeasuredStats {
  real_t imbalance = 1.0;        // max part items / avg
  real_t max_halo_items = 0;     // at the measured granularity
  index_t comm_neighbors = 0;
  real_t intergrid_fraction = 0; // crossing items / part items
  index_t intergrid_neighbors = 0;
  real_t measured_avg_items = 1; // items per part in the measurement
};

/// Shared converter from a halo ExchangePlan to the communication fields
/// of a MeasuredStats: busiest-partition ghost count and communication
/// degree. Both load models feed their decomposition's plan through this,
/// so the perf model and the schedule the solvers actually execute can
/// never disagree about halo volume.
MeasuredStats stats_from_plan(const core::ExchangePlan& plan);

/// Load model for the NSU3D hierarchy.
class Nsu3dLoadModel {
 public:
  /// `scale` multiplies every level's node count to reach the target
  /// problem size (72M / fine_nodes for the paper's case).
  Nsu3dLoadModel(std::vector<nsu3d::Level> levels, real_t scale,
                 KernelCosts costs = nsu3d_costs());

  /// Loads for P MPI processes using the first `use_levels` levels
  /// (-1 = all); `visits` gives the per-level cycle multiplicities.
  /// `first_level` skips finer levels (Fig. 19 runs a coarse grid alone).
  std::vector<LevelLoad> loads(index_t nparts,
                               std::span<const index_t> visits,
                               int use_levels = -1, int first_level = 0);

  int num_levels() const { return int(levels_.size()); }
  real_t scaled_nodes(int level) const {
    return real_t(levels_[std::size_t(level)].num_nodes) * scale_;
  }

 private:
  std::vector<nsu3d::Level> levels_;
  real_t scale_;
  KernelCosts costs_;
  std::map<std::pair<int, index_t>, MeasuredStats> cache_;

  MeasuredStats measure(int level, index_t nparts);
};

/// Load model for a Cart3D hierarchy (SFC partitions, cut weight 2.1).
class Cart3dLoadModel {
 public:
  Cart3dLoadModel(const cartesian::CartHierarchy& h, real_t scale,
                  KernelCosts costs = cart3d_costs());

  std::vector<LevelLoad> loads(index_t nparts,
                               std::span<const index_t> visits,
                               int use_levels = -1);

  int num_levels() const { return int(h_->levels.size()); }
  real_t scaled_cells(int level) const {
    return real_t(h_->levels[std::size_t(level)].num_cells()) * scale_;
  }

 private:
  const cartesian::CartHierarchy* h_;
  real_t scale_;
  KernelCosts costs_;
  std::map<std::pair<int, index_t>, MeasuredStats> cache_;

  MeasuredStats measure(int level, index_t nparts);
};

/// W- or V-cycle visit multiplicities for `nl` levels (fine level first).
std::vector<index_t> cycle_visits(int nl, bool w_cycle);

}  // namespace columbia::perf
