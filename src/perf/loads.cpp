#include "perf/loads.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "cart3d/partitioned.hpp"
#include "graph/csr.hpp"
#include "graph/lines.hpp"
#include "graph/partition.hpp"
#include "support/assert.hpp"

namespace columbia::perf {

namespace {

/// Measurement partition counts are clamped so each part keeps at least one
/// item and the partitioner stays fast on the in-repo mesh sizes.
index_t clamp_parts(real_t wanted, index_t items) {
  // At least 8 parts so halo/degree statistics exist even when the target
  // granularity exceeds the in-repo mesh size (the (g/g_meas)^(2/3)
  // surface rescaling extrapolates from the measured granularity); at most
  // items/2 so parts are non-trivial, and 512 to bound partitioner cost.
  const index_t lo = std::min<index_t>(8, std::max<index_t>(1, items / 2));
  const index_t hi = std::max<index_t>(lo, std::min<index_t>(items, 512));
  return std::clamp<index_t>(index_t(std::lround(wanted)), lo, hi);
}

/// Builds a LevelLoad from measured stats at the target granularity.
LevelLoad load_from_stats(const MeasuredStats& st, real_t target_items_per_part,
                          index_t visits, const KernelCosts& costs,
                          bool with_intergrid) {
  LevelLoad load;
  const real_t g = std::max<real_t>(target_items_per_part, 0.0);
  load.max_work_items = std::max<real_t>(1.0, st.imbalance * g);
  // Halo scales with the partition surface: measured halo at measured
  // granularity, rescaled by (g / g_measured)^(2/3).
  const real_t surf =
      std::pow(std::max<real_t>(g, 1.0) / std::max<real_t>(st.measured_avg_items, 1.0),
               2.0 / 3.0);
  load.max_halo_items = st.max_halo_items * surf;
  load.comm_neighbors = st.comm_neighbors;
  if (with_intergrid) {
    // The crossing fraction is a partition-boundary (surface) effect:
    // larger partitions cross proportionally less, so rescale the measured
    // fraction by (g_meas/g)^(1/3).
    const real_t frac =
        st.intergrid_fraction *
        std::pow(std::max<real_t>(st.measured_avg_items, 1.0) /
                     std::max<real_t>(g, 1.0),
                 1.0 / 3.0);
    load.intergrid_items = std::min<real_t>(1.0, frac) *
                           load.max_work_items * costs.intergrid_weight;
    load.intergrid_neighbors = st.intergrid_neighbors;
  }
  load.visits_per_cycle = visits;
  load.flops_per_item = costs.flops_per_item;
  load.bytes_per_item = costs.bytes_per_item;
  load.halo_bytes_per_item = costs.halo_bytes_per_item;
  return load;
}

}  // namespace

std::vector<index_t> cycle_visits(int nl, bool w_cycle) {
  return core::cycle_visits(nl, w_cycle ? core::CycleType::W
                                        : core::CycleType::V);
}

MeasuredStats stats_from_plan(const core::ExchangePlan& plan) {
  MeasuredStats st;
  st.max_halo_items = real_t(plan.max_ghost_items());
  st.comm_neighbors = plan.max_neighbors();
  return st;
}

Nsu3dLoadModel::Nsu3dLoadModel(std::vector<nsu3d::Level> levels, real_t scale,
                               KernelCosts costs)
    : levels_(std::move(levels)), scale_(scale), costs_(costs) {
  COLUMBIA_REQUIRE(!levels_.empty() && scale_ > 0);
}

MeasuredStats Nsu3dLoadModel::measure(int level, index_t nparts) {
  const auto key = std::make_pair(level, nparts);
  const auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;

  // Build a two-level slice (level, level+1 if present) and decompose it:
  // the inter-grid crossing fraction needs the matched coarse partition.
  std::vector<nsu3d::Level> slice;
  slice.push_back(levels_[std::size_t(level)]);
  const bool has_coarse = std::size_t(level) + 1 < levels_.size();
  if (has_coarse) slice.push_back(levels_[std::size_t(level) + 1]);
  // to_coarse on the slice's fine level is already set by build_levels.

  const nsu3d::PartitionPlan plan =
      nsu3d::build_partition_plan(slice, nparts, 1234 + std::uint64_t(level));
  const nsu3d::LevelDecomposition& dec = plan.levels[0];

  MeasuredStats st = stats_from_plan(
      core::ExchangePlan(nsu3d::halo_requests(slice[0], dec.part, nparts)));
  st.measured_avg_items = std::max<real_t>(dec.avg_part_nodes, 1e-9);
  st.imbalance = dec.max_part_nodes / st.measured_avg_items;
  if (has_coarse) {
    st.intergrid_fraction =
        dec.max_intergrid_items / std::max<real_t>(dec.max_part_nodes, 1);
    st.intergrid_neighbors = dec.intergrid_degree;
  }
  cache_.emplace(key, st);
  return st;
}

std::vector<LevelLoad> Nsu3dLoadModel::loads(index_t nparts,
                                             std::span<const index_t> visits,
                                             int use_levels, int first_level) {
  const int nl_all = num_levels();
  const int last =
      use_levels < 0 ? nl_all : std::min(nl_all, first_level + use_levels);
  COLUMBIA_REQUIRE(first_level >= 0 && first_level < last);
  COLUMBIA_REQUIRE(index_t(visits.size()) >= index_t(last - first_level));

  std::vector<LevelLoad> loads;
  for (int l = first_level; l < last; ++l) {
    const real_t g = scaled_nodes(l) / real_t(nparts);
    const index_t pprime = clamp_parts(
        real_t(levels_[std::size_t(l)].num_nodes) / std::max<real_t>(g, 1e-9),
        levels_[std::size_t(l)].num_nodes);
    const MeasuredStats st = measure(l, pprime);
    const bool with_ig = l + 1 < last;
    loads.push_back(load_from_stats(st, g,
                                    visits[std::size_t(l - first_level)],
                                    costs_, with_ig));
  }
  return loads;
}

Cart3dLoadModel::Cart3dLoadModel(const cartesian::CartHierarchy& h,
                                 real_t scale, KernelCosts costs)
    : h_(&h), scale_(scale), costs_(costs) {
  COLUMBIA_REQUIRE(!h.levels.empty() && scale > 0);
}

MeasuredStats Cart3dLoadModel::measure(int level, index_t nparts) {
  const auto key = std::make_pair(level, nparts);
  const auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;

  const cartesian::CartMesh& m = h_->levels[std::size_t(level)];
  const auto part = cartesian::partition_cells(m, nparts);

  MeasuredStats st = stats_from_plan(
      core::ExchangePlan(cart3d::halo_requests(m, part, nparts)));
  std::vector<real_t> cells_in(std::size_t(nparts), 0.0);
  for (index_t p : part) cells_in[std::size_t(p)] += 1;
  real_t max_cells = 0;
  for (real_t c : cells_in) max_cells = std::max(max_cells, c);
  st.measured_avg_items =
      std::max<real_t>(real_t(m.num_cells()) / real_t(nparts), 1e-9);
  st.imbalance = max_cells / st.measured_avg_items;

  if (std::size_t(level) + 1 < h_->levels.size()) {
    const auto cpart =
        cartesian::partition_cells(h_->levels[std::size_t(level) + 1], nparts);
    const auto& map = h_->maps[std::size_t(level)];
    std::vector<real_t> crossing(std::size_t(nparts), 0.0);
    std::set<std::pair<index_t, index_t>> pairs;
    for (std::size_t i = 0; i < map.size(); ++i) {
      const index_t fp = part[i];
      const index_t cp = cpart[std::size_t(map[i])];
      if (fp == cp) continue;
      crossing[std::size_t(fp)] += 1;
      pairs.insert({std::min(fp, cp), std::max(fp, cp)});
    }
    real_t max_cross = 0;
    for (real_t c : crossing) max_cross = std::max(max_cross, c);
    st.intergrid_fraction = max_cross / std::max<real_t>(max_cells, 1);
    std::vector<index_t> deg(std::size_t(nparts), 0);
    for (const auto& [a, b] : pairs) {
      ++deg[std::size_t(a)];
      ++deg[std::size_t(b)];
    }
    for (index_t d : deg)
      st.intergrid_neighbors = std::max(st.intergrid_neighbors, d);
  }
  cache_.emplace(key, st);
  return st;
}

std::vector<LevelLoad> Cart3dLoadModel::loads(index_t nparts,
                                              std::span<const index_t> visits,
                                              int use_levels) {
  const int nl_all = num_levels();
  const int last = use_levels < 0 ? nl_all : std::min(nl_all, use_levels);
  COLUMBIA_REQUIRE(index_t(visits.size()) >= index_t(last));

  std::vector<LevelLoad> loads;
  for (int l = 0; l < last; ++l) {
    const real_t g = scaled_cells(l) / real_t(nparts);
    const index_t items = h_->levels[std::size_t(l)].num_cells();
    const index_t pprime =
        clamp_parts(real_t(items) / std::max<real_t>(g, 1e-9), items);
    const MeasuredStats st = measure(l, pprime);
    loads.push_back(load_from_stats(st, g, visits[std::size_t(l)], costs_,
                                    l + 1 < last));
  }
  return loads;
}

}  // namespace columbia::perf
