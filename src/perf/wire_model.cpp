#include "perf/wire_model.hpp"

#include "obs/json.hpp"

namespace columbia::perf {

FabricModel fabric_for_backend(const std::string& backend) {
  if (backend == "shm") return numalink4();
  if (backend == "tcp") return infiniband();
  return shared_memory();  // threads / local / in-process recordings
}

std::vector<WireAttribution> attribute_wire(const obs::CommReport& report,
                                            const FabricModel& fabric) {
  std::vector<WireAttribution> rows;
  for (const obs::CommGroup& g : report.groups) {
    if (g.messages == 0) continue;
    WireAttribution a;
    a.level = g.level;
    a.strat = g.strat;
    a.messages = g.messages;
    a.bytes = g.bytes;
    a.mean_bytes = double(g.bytes) / double(g.messages);
    a.measured_mean_s = g.xfer_s / double(g.messages);
    a.measured_min_s = g.xfer_min_s;
    a.measured_Bps = g.xfer_s > 0 ? double(g.bytes) / g.xfer_s : 0;
    a.model_s = double(fabric.latency_s) +
                a.mean_bytes / double(fabric.bandwidth_Bps);
    a.ratio = a.model_s > 0 ? a.measured_mean_s / a.model_s : 0;
    rows.push_back(a);
  }
  return rows;
}

std::string fabric_model_line(const FabricModel& fabric) {
  return "fabric model: " + std::string(fabric.name) + " (latency " +
         Table::num(double(fabric.latency_s) * 1e6, 3) + " us, bandwidth " +
         Table::num(double(fabric.bandwidth_Bps) / 1e9, 3) + " GB/s)";
}

Table wire_model_table(const std::vector<WireAttribution>& rows,
                       const FabricModel& fabric) {
  (void)fabric;  // callers print fabric_model_line(fabric) above the table
  Table t({"level", "strategy", "msgs", "mean KB", "measured us", "min us",
           "MB/s", "model us", "ratio"});
  for (const WireAttribution& a : rows) {
    t.add_row({a.level >= 0 ? std::to_string(a.level) : "-",
               obs::strategy_name(a.strat), std::to_string(a.messages),
               Table::num(a.mean_bytes / 1e3, 2),
               Table::num(a.measured_mean_s * 1e6, 3),
               Table::num(a.measured_min_s * 1e6, 3),
               Table::num(a.measured_Bps / 1e6, 2),
               Table::num(a.model_s * 1e6, 3), Table::num(a.ratio, 2)});
  }
  return t;
}

void write_wire_model_json_into(obs::JsonWriter& w,
                                const std::vector<WireAttribution>& rows,
                                const FabricModel& fabric) {
  w.begin_object();
  w.kv("fabric", fabric.name);
  w.kv("latency_s", double(fabric.latency_s));
  w.kv("bandwidth_Bps", double(fabric.bandwidth_Bps));
  w.key("groups").begin_array();
  for (const WireAttribution& a : rows) {
    w.begin_object();
    w.kv("level", a.level);
    w.kv("strategy", obs::strategy_name(a.strat));
    w.kv("messages", a.messages);
    w.kv("bytes", a.bytes);
    w.kv("mean_bytes", a.mean_bytes);
    w.kv("measured_mean_s", a.measured_mean_s);
    w.kv("measured_min_s", a.measured_min_s);
    w.kv("measured_Bps", a.measured_Bps);
    w.kv("model_s", a.model_s);
    w.kv("ratio", a.ratio);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

}  // namespace columbia::perf
