#include "smp/tcp_transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "support/assert.hpp"

namespace columbia::smp {

namespace {

using Clock = std::chrono::steady_clock;

int remaining_ms(Clock::time_point until) {
  const auto d = std::chrono::duration_cast<std::chrono::milliseconds>(
      until - Clock::now());
  return int(std::max<std::int64_t>(d.count(), 0));
}

void close_quiet(int& fd) {
  if (fd >= 0) ::close(fd);
  fd = -1;
}

/// Blocking write of the whole buffer; false once the connection is gone.
bool write_all(int fd, const std::uint8_t* p, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += std::size_t(w);
    n -= std::size_t(w);
  }
  return true;
}

class TcpTransport final : public core::Transport {
 public:
  TcpTransport(int rank, std::vector<std::uint16_t> ports, int listen_fd,
               TcpGroupOptions opt)
      : rank_(rank),
        ports_(std::move(ports)),
        listen_fd_(listen_fd),
        opt_(opt),
        links_(ports_.size()) {}

  ~TcpTransport() override {
    for (Link& l : links_) {
      close_quiet(l.out_fd);
      if (l.in_fd != l.out_fd) close_quiet(l.in_fd);
      l.in_fd = -1;
    }
    close_quiet(listen_fd_);
  }

  core::TransportBackend backend() const override {
    return core::TransportBackend::Tcp;
  }
  int group_rank() const override { return rank_; }
  int group_size() const override { return int(ports_.size()); }

  bool send(int to, std::span<const std::uint8_t> datagram) override {
    COLUMBIA_REQUIRE(to >= 0 && to < group_size());
    if (!ensure_link(to)) return false;
    Link& l = links_[std::size_t(to)];
    const std::uint32_t len = std::uint32_t(datagram.size());
    std::uint8_t prefix[4];
    std::memcpy(prefix, &len, 4);
    if (write_all(l.out_fd, prefix, 4) &&
        write_all(l.out_fd, datagram.data(), datagram.size()))
      return true;
    drop_link(l);
    return false;
  }

  core::RecvOutcome recv(int from, std::vector<std::uint8_t>& datagram,
                         int deadline_ms) override {
    COLUMBIA_REQUIRE(from >= 0 && from < group_size());
    const auto until = Clock::now() + std::chrono::milliseconds(deadline_ms);
    if (!ensure_link(from, until))
      return links_[std::size_t(from)].gone ? core::RecvOutcome::PeerGone
                                            : core::RecvOutcome::Timeout;
    Link& l = links_[std::size_t(from)];
    for (;;) {
      if (extract_datagram(l, datagram)) return core::RecvOutcome::Ok;
      const int wait = remaining_ms(until);
      struct pollfd pfd = {l.in_fd, POLLIN, 0};
      const int pr = ::poll(&pfd, 1, std::max(wait, 0));
      if (pr == 0) return core::RecvOutcome::Timeout;
      if (pr < 0) {
        if (errno == EINTR) continue;
        drop_link(l);
        return core::RecvOutcome::Reset;
      }
      std::uint8_t chunk[16384];
      const ssize_t n = ::recv(l.in_fd, chunk, sizeof chunk, 0);
      if (n == 0) {
        drop_link(l);
        return core::RecvOutcome::Closed;
      }
      if (n < 0) {
        if (errno == EINTR) continue;
        drop_link(l);
        return core::RecvOutcome::Reset;
      }
      l.rx.insert(l.rx.end(), chunk, chunk + n);
    }
  }

  bool reconnect(int peer) override {
    COLUMBIA_REQUIRE(peer >= 0 && peer < group_size());
    drop_link(links_[std::size_t(peer)]);
    return ensure_link(peer);
  }

  /// Abrupt close with SO_LINGER 0: the kernel sends RST, so the peer
  /// observes ECONNRESET — the genuine article, not a clean FIN.
  void inject_reset(int peer) override {
    COLUMBIA_REQUIRE(peer >= 0 && peer < group_size());
    Link& l = links_[std::size_t(peer)];
    if (l.out_fd >= 0) {
      struct linger lg = {1, 0};
      ::setsockopt(l.out_fd, SOL_SOCKET, SO_LINGER, &lg, sizeof lg);
    }
    drop_link(l);
  }

 private:
  struct Link {
    int out_fd = -1;               // where our datagrams go
    int in_fd = -1;                // where the peer's arrive (== out_fd
                                   // except for the self-pair)
    std::vector<std::uint8_t> rx;  // undelivered stream bytes
    /// Proven peer exit: every listener predates the fork and a group
    /// incarnation never reuses ports, so a refused connect means the
    /// peer process closed its listener by exiting. Sticky — the peer
    /// cannot come back within this group's lifetime.
    bool gone = false;
  };

  void drop_link(Link& l) {
    if (l.in_fd != l.out_fd) close_quiet(l.in_fd);
    l.in_fd = -1;
    close_quiet(l.out_fd);
    l.rx.clear();
  }

  static bool extract_datagram(Link& l, std::vector<std::uint8_t>& out) {
    if (l.rx.size() < 4) return false;
    std::uint32_t len;
    std::memcpy(&len, l.rx.data(), 4);
    if (l.rx.size() < 4 + std::size_t(len)) return false;
    out.assign(l.rx.begin() + 4, l.rx.begin() + 4 + len);
    l.rx.erase(l.rx.begin(), l.rx.begin() + 4 + len);
    return true;
  }

  bool ensure_link(int peer) {
    return ensure_link(
        peer, Clock::now() + std::chrono::milliseconds(opt_.connect_timeout_ms));
  }

  bool ensure_link(int peer, Clock::time_point until) {
    Link& l = links_[std::size_t(peer)];
    if (l.out_fd >= 0) return true;
    if (l.gone) return false;
    if (peer == rank_) return link_self(until);
    if (peer < rank_) return link_connect(peer, until);
    return link_accept(peer, until);
  }

  /// -1 = deadline expired, -2 = the peer's listener refuses connections
  /// (the peer process exited; see Link::gone).
  int connect_to(int peer, Clock::time_point until) {
    // The peer's listener predates the fork, so a connect is only ever
    // refused once the peer has exited. A few confirming retries guard
    // against exotic kernel races; anything else retries to the deadline.
    int refused = 0;
    for (;;) {
      const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
      COLUMBIA_REQUIRE(fd >= 0);
      struct sockaddr_in addr = {};
      addr.sin_family = AF_INET;
      addr.sin_port = htons(ports_[std::size_t(peer)]);
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                    sizeof addr) == 0) {
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
        return fd;
      }
      const bool was_refused = errno == ECONNREFUSED;
      ::close(fd);
      refused = was_refused ? refused + 1 : 0;
      if (refused >= 3) return -2;
      if (Clock::now() >= until) return -1;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }

  /// Connect side (peer < rank_, or the self-pair's outgoing half):
  /// connect and introduce ourselves.
  bool link_connect(int peer, Clock::time_point until) {
    const int fd = connect_to(peer, until);
    if (fd == -2) links_[std::size_t(peer)].gone = true;
    if (fd < 0) return false;
    const std::uint32_t hello = std::uint32_t(rank_);
    if (!write_all(fd, reinterpret_cast<const std::uint8_t*>(&hello), 4)) {
      int tmp = fd;
      close_quiet(tmp);
      return false;
    }
    Link& l = links_[std::size_t(peer)];
    l.out_fd = l.in_fd = fd;
    return true;
  }

  /// Accept side (peer > rank_): accept connections on our listener until
  /// the wanted peer introduces itself; other peers' connections are
  /// stored for later.
  bool link_accept(int peer, Clock::time_point until) {
    COLUMBIA_REQUIRE(listen_fd_ >= 0);
    while (links_[std::size_t(peer)].out_fd < 0) {
      struct pollfd pfd = {listen_fd_, POLLIN, 0};
      const int pr = ::poll(&pfd, 1, std::max(remaining_ms(until), 0));
      if (pr == 0) return false;
      if (pr < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) continue;
      std::uint32_t hello = 0;
      if (!read_exact(fd, reinterpret_cast<std::uint8_t*>(&hello), 4, until) ||
          int(hello) < 0 || int(hello) >= group_size()) {
        ::close(fd);
        continue;
      }
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      Link& l = links_[std::size_t(hello)];
      drop_link(l);  // a reconnecting peer supersedes its dead link
      l.out_fd = l.in_fd = fd;
    }
    return true;
  }

  /// Self-pair: connect to our own listener (the handshake completes
  /// against the backlog, no concurrent accept needed), then accept the
  /// other end. out = the connected half, in = the accepted half.
  bool link_self(Clock::time_point until) {
    const int out = connect_to(rank_, until);
    if (out < 0) return false;
    struct pollfd pfd = {listen_fd_, POLLIN, 0};
    if (::poll(&pfd, 1, std::max(remaining_ms(until), 1)) <= 0) {
      int tmp = out;
      close_quiet(tmp);
      return false;
    }
    const int in = ::accept(listen_fd_, nullptr, nullptr);
    if (in < 0) {
      int tmp = out;
      close_quiet(tmp);
      return false;
    }
    Link& l = links_[std::size_t(rank_)];
    l.out_fd = out;
    l.in_fd = in;
    return true;
  }

  static bool read_exact(int fd, std::uint8_t* p, std::size_t n,
                         Clock::time_point until) {
    while (n > 0) {
      struct pollfd pfd = {fd, POLLIN, 0};
      const int pr = ::poll(&pfd, 1, std::max(remaining_ms(until), 0));
      if (pr <= 0 && errno != EINTR) return false;
      if (pr <= 0) continue;
      const ssize_t r = ::recv(fd, p, n, 0);
      if (r == 0) return false;
      if (r < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      p += std::size_t(r);
      n -= std::size_t(r);
    }
    return true;
  }

  int rank_;
  std::vector<std::uint16_t> ports_;
  int listen_fd_;
  TcpGroupOptions opt_;
  std::vector<Link> links_;
};

}  // namespace

TcpGroup::TcpGroup(int size, TcpGroupOptions options)
    : size_(size), opt_(options) {
  COLUMBIA_REQUIRE(size >= 1);
  listen_fds_.resize(std::size_t(size), -1);
  ports_.resize(std::size_t(size), 0);
  for (int r = 0; r < size; ++r) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    COLUMBIA_REQUIRE(fd >= 0);
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    struct sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_port = 0;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    COLUMBIA_REQUIRE(::bind(fd, reinterpret_cast<struct sockaddr*>(&addr),
                            sizeof addr) == 0);
    COLUMBIA_REQUIRE(::listen(fd, size + 1) == 0);
    socklen_t alen = sizeof addr;
    COLUMBIA_REQUIRE(::getsockname(
                         fd, reinterpret_cast<struct sockaddr*>(&addr),
                         &alen) == 0);
    listen_fds_[std::size_t(r)] = fd;
    ports_[std::size_t(r)] = ntohs(addr.sin_port);
  }
}

TcpGroup::~TcpGroup() {
  for (int& fd : listen_fds_) close_quiet(fd);
}

std::unique_ptr<core::Transport> TcpGroup::endpoint(int rank) {
  COLUMBIA_REQUIRE(rank >= 0 && rank < size_);
  const int mine = listen_fds_[std::size_t(rank)];
  COLUMBIA_REQUIRE(mine >= 0);
  listen_fds_[std::size_t(rank)] = -1;
  for (int& fd : listen_fds_) close_quiet(fd);
  return std::make_unique<TcpTransport>(rank, ports_, mine, opt_);
}

}  // namespace columbia::smp
