// Thread-rank message-passing runtime (MPI-like, in-process).
//
// Substitutes for MPI on the machines this repo runs on: each "rank" is a
// thread; point-to-point messages are typed byte buffers moved through
// per-rank mailboxes; collectives are built on the same primitives. The
// NSU3D halo exchange and the hybrid master-thread communication pattern
// of the paper (Fig. 7b) run unmodified on top of this runtime, and the
// per-rank traffic counters feed the Columbia machine model.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <mutex>
#include <span>
#include <vector>

#include "support/assert.hpp"
#include "support/types.hpp"

namespace columbia::smp {

/// Traffic counters per rank (messages sent, payload bytes).
struct TrafficStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
};

class Runtime;

/// Per-rank communication handle passed to the rank function.
class Comm {
 public:
  int rank() const { return rank_; }
  int size() const;

  /// Sends a copy of `data` to `to` with a user tag. Non-blocking
  /// (buffered): always returns immediately.
  void send(int to, int tag, std::span<const real_t> data);

  /// Blocks until a message with `tag` from `from` arrives; returns it.
  std::vector<real_t> recv(int from, int tag);

  /// Barrier across all ranks.
  void barrier();

  /// Sum / max reduction of one double across all ranks (returns on all).
  real_t allreduce_sum(real_t value);
  real_t allreduce_max(real_t value);

  TrafficStats traffic() const;

 private:
  friend class Runtime;
  Comm(Runtime* rt, int rank) : rt_(rt), rank_(rank) {}
  Runtime* rt_;
  int rank_;
};

/// Owns the mailboxes and runs rank functions on std::threads.
class Runtime {
 public:
  explicit Runtime(int num_ranks);

  int size() const { return num_ranks_; }

  /// Runs `fn(comm)` on every rank concurrently; returns when all finish.
  /// May be called repeatedly; mailboxes must be drained by the ranks.
  void run(const std::function<void(Comm&)>& fn);

  /// Aggregate traffic across ranks since construction.
  TrafficStats total_traffic() const;

 private:
  friend class Comm;

  struct Message {
    int from;
    int tag;
    std::vector<real_t> data;
  };

  struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Message> queue;
  };

  int num_ranks_;
  std::vector<Mailbox> boxes_;
  std::vector<TrafficStats> stats_;

  // Barrier state.
  std::mutex barrier_mu_;
  std::condition_variable barrier_cv_;
  int barrier_count_ = 0;
  std::uint64_t barrier_generation_ = 0;

  // Reduction state.
  std::mutex reduce_mu_;
  std::condition_variable reduce_cv_;
  real_t reduce_acc_ = 0;
  int reduce_count_ = 0;
  std::uint64_t reduce_generation_ = 0;
  real_t reduce_result_ = 0;

  void post(int from, int to, int tag, std::span<const real_t> data);
  std::vector<real_t> take(int me, int from, int tag);
  void barrier_wait();
  real_t reduce(real_t v, bool is_sum);
};

}  // namespace columbia::smp
