// TCP socket transport between OS processes (same host today; nothing in
// the protocol assumes it).
//
// A TcpGroup binds one listening socket per member on 127.0.0.1, port 0
// (kernel-assigned), BEFORE the launcher forks — so every member knows
// every port and a connect can never be refused, only delayed. Each
// member's endpoint establishes the full connection mesh on first use:
// for every lower-ranked peer it connects and introduces itself with a
// hello carrying its rank; for every higher-ranked peer it accepts and
// reads the hello. Datagrams travel length-prefixed on the stream.
//
// Failure semantics: a read of 0 / ECONNRESET surfaces as
// RecvOutcome::Closed / Reset; send() reports false on a broken pipe;
// reconnect() re-runs the connect-or-accept handshake for that one peer
// (the connect side initiates, the accept side waits). inject_reset
// closes the socket with SO_LINGER 0 so the peer sees a genuine RST, not
// a tidy shutdown. Self-pairs (loopback harness) connect to the member's
// own listener, giving a real kernel-buffered TCP stream in one process.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/transport.hpp"

namespace columbia::smp {

struct TcpGroupOptions {
  /// Budget for establishing (or re-establishing) one peer link.
  int connect_timeout_ms = 10000;
};

/// The pre-forked listener set. Construct in the parent; in each forked
/// child call endpoint(rank) — it adopts rank's listener and closes the
/// others' (fork duplicated them all). Usable unforked too (loopback).
class TcpGroup {
 public:
  explicit TcpGroup(int size, TcpGroupOptions options = {});
  ~TcpGroup();
  TcpGroup(const TcpGroup&) = delete;
  TcpGroup& operator=(const TcpGroup&) = delete;

  int size() const { return size_; }
  std::uint16_t port(int rank) const { return ports_[std::size_t(rank)]; }

  /// Transfers ownership of rank's listener to the endpoint and closes
  /// every other listener still held by this process. Call at most once
  /// per process.
  std::unique_ptr<core::Transport> endpoint(int rank);

 private:
  int size_;
  TcpGroupOptions opt_;
  std::vector<int> listen_fds_;
  std::vector<std::uint16_t> ports_;
};

}  // namespace columbia::smp
