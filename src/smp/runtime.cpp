#include "smp/runtime.hpp"

#include <thread>

#include "obs/obs.hpp"

namespace columbia::smp {

int Comm::size() const { return rt_->size(); }

void Comm::send(int to, int tag, std::span<const real_t> data) {
  rt_->post(rank_, to, tag, data);
}

std::vector<real_t> Comm::recv(int from, int tag) {
  return rt_->take(rank_, from, tag);
}

void Comm::barrier() { rt_->barrier_wait(); }

real_t Comm::allreduce_sum(real_t value) { return rt_->reduce(value, true); }
real_t Comm::allreduce_max(real_t value) { return rt_->reduce(value, false); }

TrafficStats Comm::traffic() const { return rt_->stats_[std::size_t(rank_)]; }

Runtime::Runtime(int num_ranks)
    : num_ranks_(num_ranks),
      boxes_(std::size_t(num_ranks)),
      stats_(std::size_t(num_ranks)) {
  COLUMBIA_REQUIRE(num_ranks >= 1);
}

void Runtime::run(const std::function<void(Comm&)>& fn) {
  std::vector<std::thread> threads;
  threads.reserve(std::size_t(num_ranks_));
  for (int r = 0; r < num_ranks_; ++r) {
    threads.emplace_back([this, r, &fn] {
      Comm comm(this, r);
      fn(comm);
    });
  }
  for (auto& t : threads) t.join();
}

TrafficStats Runtime::total_traffic() const {
  TrafficStats total;
  for (const TrafficStats& s : stats_) {
    total.messages += s.messages;
    total.bytes += s.bytes;
  }
  return total;
}

void Runtime::post(int from, int to, int tag, std::span<const real_t> data) {
  COLUMBIA_REQUIRE(to >= 0 && to < num_ranks_);
  {
    Mailbox& box = boxes_[std::size_t(to)];
    std::lock_guard<std::mutex> lock(box.mu);
    box.queue.push_back(
        Message{from, tag, std::vector<real_t>(data.begin(), data.end())});
  }
  boxes_[std::size_t(to)].cv.notify_all();
  stats_[std::size_t(from)].messages += 1;
  stats_[std::size_t(from)].bytes += data.size() * sizeof(real_t);
  OBS_COUNT("smp.messages", 1);
  OBS_COUNT("smp.bytes", data.size() * sizeof(real_t));
  if (obs::enabled()) {
    static obs::Histogram& h = obs::histogram("smp.message_bytes");
    h.observe(std::uint64_t(data.size() * sizeof(real_t)));
  }
}

std::vector<real_t> Runtime::take(int me, int from, int tag) {
  Mailbox& box = boxes_[std::size_t(me)];
  std::unique_lock<std::mutex> lock(box.mu);
  while (true) {
    for (auto it = box.queue.begin(); it != box.queue.end(); ++it) {
      if (it->from == from && it->tag == tag) {
        std::vector<real_t> data = std::move(it->data);
        box.queue.erase(it);
        return data;
      }
    }
    box.cv.wait(lock);
  }
}

void Runtime::barrier_wait() {
  std::unique_lock<std::mutex> lock(barrier_mu_);
  const std::uint64_t gen = barrier_generation_;
  if (++barrier_count_ == num_ranks_) {
    barrier_count_ = 0;
    ++barrier_generation_;
    barrier_cv_.notify_all();
    return;
  }
  barrier_cv_.wait(lock, [&] { return barrier_generation_ != gen; });
}

real_t Runtime::reduce(real_t v, bool is_sum) {
  std::unique_lock<std::mutex> lock(reduce_mu_);
  const std::uint64_t gen = reduce_generation_;
  if (reduce_count_ == 0) {
    reduce_acc_ = v;
  } else {
    reduce_acc_ = is_sum ? reduce_acc_ + v : std::max(reduce_acc_, v);
  }
  if (++reduce_count_ == num_ranks_) {
    reduce_result_ = reduce_acc_;
    reduce_count_ = 0;
    ++reduce_generation_;
    reduce_cv_.notify_all();
    return reduce_result_;
  }
  reduce_cv_.wait(lock, [&] { return reduce_generation_ != gen; });
  return reduce_result_;
}

}  // namespace columbia::smp
