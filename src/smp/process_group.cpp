#include "smp/process_group.hpp"

#include <signal.h>
#include <sys/mman.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <thread>

#include "core/clock_sync.hpp"
#include "obs/shard.hpp"
#include "resil/faults.hpp"
#include "smp/shm_transport.hpp"
#include "smp/tcp_transport.hpp"
#include "support/assert.hpp"

namespace columbia::smp {

namespace {

using Clock = std::chrono::steady_clock;

/// Per-rank slot in the shared control block. The child owns the writes;
/// the parent only reads (exception: nothing — kills go through signals).
struct alignas(64) MemberControl {
  std::atomic<std::uint64_t> heartbeat;
  std::atomic<std::uint64_t> counters[core::kNumTransportCounters];
};

struct ControlBlock {
  static ControlBlock* map(int ranks) {
    const std::size_t bytes = sizeof(MemberControl) * std::size_t(ranks);
    void* p = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_ANONYMOUS, -1, 0);
    COLUMBIA_REQUIRE(p != MAP_FAILED);
    auto* slots = static_cast<MemberControl*>(p);
    for (int r = 0; r < ranks; ++r) {
      MemberControl* m = new (slots + r) MemberControl;
      m->heartbeat.store(0, std::memory_order_relaxed);
      for (auto& c : m->counters) c.store(0, std::memory_order_relaxed);
    }
    return reinterpret_cast<ControlBlock*>(slots);
  }
  static void unmap(ControlBlock* cb, int ranks) {
    ::munmap(cb, sizeof(MemberControl) * std::size_t(ranks));
  }
  MemberControl& member(int r) {
    return reinterpret_cast<MemberControl*>(this)[r];
  }
};

/// Child-side heartbeat pulse. Runs on its own thread; the injected
/// peer_hang stops it through the transport's hang hook, which is exactly
/// the point — a hung rank goes silent on every plane at once.
class HeartbeatPulse {
 public:
  HeartbeatPulse(MemberControl& slot, int period_ms)
      : slot_(slot), period_ms_(period_ms) {
    thread_ = std::thread([this] {
      while (!stop_.load(std::memory_order_relaxed)) {
        slot_.heartbeat.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::sleep_for(std::chrono::milliseconds(period_ms_));
      }
    });
  }
  /// Stops the pulse without joining (enter_hang never returns, so the
  /// hook must not block).
  void silence() { stop_.store(true, std::memory_order_relaxed); }
  ~HeartbeatPulse() {
    silence();
    if (thread_.joinable()) thread_.join();
  }

 private:
  MemberControl& slot_;
  int period_ms_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

obs::ShardClock to_shard_clock(const core::ClockEstimate& est) {
  return obs::ShardClock{est.synced, est.offset_ns, est.rtt_ns, est.samples};
}

[[noreturn]] void child_main(int rank, core::Transport& t,
                             MemberControl& slot,
                             const ProcessGroupOptions& opts,
                             const ProcessGroup::Body& body) {
  HeartbeatPulse pulse(slot, opts.heartbeat_ms);
  t.set_hang_hook([&pulse] { pulse.silence(); });
  t.set_counter_sink([&slot](core::TransportCounter c, std::uint64_t n) {
    slot.counters[std::size_t(c)].fetch_add(n, std::memory_order_relaxed);
  });
  std::unique_ptr<obs::FlightRecorder> recorder;
  if (!opts.telemetry_base.empty()) {
    obs::ShardOptions so;
    so.path =
        obs::shard_file_path(opts.telemetry_base, rank, opts.telemetry_round);
    so.rank = rank;
    so.ranks = opts.ranks;
    so.round = opts.telemetry_round;
    so.backend = group_backend_name(opts.backend);
    // Render from the injector this child inherited at fork time:
    // run_recovering strips peer_hang before relaunching, and the shard
    // must stamp what this round actually ran with.
    so.fault_spec =
        resil::render_fault_spec(resil::FaultInjector::global().spec());
    recorder = std::make_unique<obs::FlightRecorder>(so);
    recorder->set_clock(to_shard_clock(core::sync_group_clock(t)));
  }
  int code = ProcessGroup::kExitUncaught;
  try {
    code = body(rank, t);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[rank %d] uncaught: %s\n", rank, e.what());
  } catch (...) {
    std::fprintf(stderr, "[rank %d] uncaught non-exception\n", rank);
  }
  if (recorder) {
    // Teardown re-sync bounds clock drift over the run; with a dead peer
    // it burns its budget and the shard keeps the start estimate.
    recorder->finalize(to_shard_clock(core::sync_group_clock(t)));
  }
  pulse.silence();
  std::fflush(nullptr);
  // _exit, not exit: never run the parent's atexit handlers or flush its
  // inherited stream state twice.
  ::_exit(code);
}

}  // namespace

const char* group_backend_name(GroupBackend b) {
  return b == GroupBackend::Shm ? "shm" : "tcp";
}

int GroupResult::first_failure_exit() const {
  for (const MemberReport& m : members)
    if (m.exited && m.exit_code != 0) return m.exit_code;
  return 0;
}

GroupResult ProcessGroup::run(const ProcessGroupOptions& opts,
                              const Body& body) {
  COLUMBIA_REQUIRE(opts.ranks >= 1);
  COLUMBIA_REQUIRE(opts.heartbeat_ms >= 1);
  COLUMBIA_REQUIRE(opts.stall_ms > opts.heartbeat_ms);

  ControlBlock* cb = ControlBlock::map(opts.ranks);
  // Fabric before fork: children inherit the mapping / the listeners.
  std::unique_ptr<ShmGroup> shm;
  std::unique_ptr<TcpGroup> tcp;
  if (opts.backend == GroupBackend::Shm)
    shm = std::make_unique<ShmGroup>(opts.ranks,
                                     ShmGroupOptions{opts.shm_ring_bytes});
  else
    tcp = std::make_unique<TcpGroup>(opts.ranks);

  std::vector<pid_t> pids(std::size_t(opts.ranks), -1);
  for (int r = 0; r < opts.ranks; ++r) {
    std::fflush(nullptr);  // no buffered bytes duplicated into children
    const pid_t pid = ::fork();
    COLUMBIA_REQUIRE(pid >= 0);
    if (pid == 0) {
      std::unique_ptr<core::Transport> t =
          shm ? shm->endpoint(r) : tcp->endpoint(r);
      child_main(r, *t, cb->member(r), opts, body);
    }
    pids[std::size_t(r)] = pid;
  }
  if (tcp) tcp.reset();  // parent holds no listeners; children own theirs

  GroupResult res;
  res.members.resize(std::size_t(opts.ranks));

  // Supervision loop: reap exits, watch heartbeat freshness.
  const auto start = Clock::now();
  std::vector<std::uint64_t> last_beat(std::size_t(opts.ranks), 0);
  std::vector<Clock::time_point> last_change(std::size_t(opts.ranks), start);
  int live = opts.ranks;
  bool group_killed = false;
  while (live > 0) {
    for (int r = 0; r < opts.ranks; ++r) {
      MemberReport& m = res.members[std::size_t(r)];
      if (pids[std::size_t(r)] < 0) continue;
      int status = 0;
      const pid_t w = ::waitpid(pids[std::size_t(r)], &status, WNOHANG);
      if (w == pids[std::size_t(r)]) {
        if (WIFEXITED(status)) {
          m.exited = true;
          m.exit_code = WEXITSTATUS(status);
        } else if (WIFSIGNALED(status)) {
          m.signaled = true;
        }
        pids[std::size_t(r)] = -1;
        --live;
      }
    }
    if (live == 0) break;

    const auto now = Clock::now();
    bool kill_group = false;
    for (int r = 0; r < opts.ranks; ++r) {
      if (pids[std::size_t(r)] < 0) continue;
      const std::uint64_t beat =
          cb->member(r).heartbeat.load(std::memory_order_relaxed);
      if (beat != last_beat[std::size_t(r)]) {
        last_beat[std::size_t(r)] = beat;
        last_change[std::size_t(r)] = now;
      } else if (now - last_change[std::size_t(r)] >
                 std::chrono::milliseconds(opts.stall_ms)) {
        res.members[std::size_t(r)].hung = true;
        res.hung = true;
        kill_group = true;
      }
    }
    if (opts.wall_timeout_ms > 0 &&
        now - start > std::chrono::milliseconds(opts.wall_timeout_ms)) {
      res.hung = true;
      kill_group = true;
    }
    if (kill_group && !group_killed) {
      // One dead/hung rank strands the survivors mid-protocol; take the
      // whole group down and let the recovery driver relaunch it.
      group_killed = true;
      for (int r = 0; r < opts.ranks; ++r)
        if (pids[std::size_t(r)] >= 0) ::kill(pids[std::size_t(r)], SIGKILL);
    }
    std::this_thread::sleep_for(
        std::chrono::milliseconds(std::min(opts.heartbeat_ms, 20)));
  }

  for (int r = 0; r < opts.ranks; ++r) {
    MemberReport& m = res.members[std::size_t(r)];
    m.heartbeats = cb->member(r).heartbeat.load(std::memory_order_relaxed);
    for (int c = 0; c < core::kNumTransportCounters; ++c)
      m.counters.v[c] =
          cb->member(r).counters[c].load(std::memory_order_relaxed);
    m.counters.v[std::size_t(core::TransportCounter::Heartbeat)] +=
        m.heartbeats;
    for (int c = 0; c < core::kNumTransportCounters; ++c)
      res.total.v[c] += m.counters.v[c];
  }
  res.ok = true;
  for (const MemberReport& m : res.members)
    if (!m.exited || m.exit_code != 0) res.ok = false;

  if (!opts.telemetry_base.empty()) {
    // Gather whatever shards made it to disk — a killed rank's truncated
    // shard is exactly the artifact the merger is built to accept.
    for (int r = 0; r < opts.ranks; ++r) {
      const std::string path =
          obs::shard_file_path(opts.telemetry_base, r, opts.telemetry_round);
      if (::access(path.c_str(), F_OK) == 0) res.shards.push_back(path);
    }
  }

  ControlBlock::unmap(cb, opts.ranks);
  return res;
}

GroupResult ProcessGroup::run_recovering(const ProcessGroupOptions& opts,
                                         const Body& body, int max_relaunches,
                                         int* relaunches_out) {
  int relaunches = 0;
  GroupResult res = run(opts, body);
  while (!res.ok && relaunches < max_relaunches) {
    // Replace the dead node: a deterministic peer_hang (site = rank) would
    // re-fire on every relaunch, so the recovered group runs without it.
    // Children inherit the injector state at fork time.
    resil::FaultInjector& inj = resil::FaultInjector::global();
    resil::FaultSpec spec = inj.spec();
    spec.rate[std::size_t(resil::FaultKind::PeerHang)] = 0.0;
    inj.configure(spec);
    ++relaunches;
    const core::TransportCounters carried = res.total;
    std::vector<std::string> shards_carried = std::move(res.shards);
    // Each relaunch is a new round: its shards get distinct paths and a
    // distinct round stamp, so the merged timeline keeps rounds apart.
    ProcessGroupOptions round_opts = opts;
    round_opts.telemetry_round = opts.telemetry_round + relaunches;
    res = run(round_opts, body);
    for (int c = 0; c < core::kNumTransportCounters; ++c)
      res.total.v[c] += carried.v[c];
    shards_carried.insert(shards_carried.end(), res.shards.begin(),
                          res.shards.end());
    res.shards = std::move(shards_carried);
  }
  if (relaunches_out != nullptr) *relaunches_out = relaunches;
  return res;
}

}  // namespace columbia::smp
