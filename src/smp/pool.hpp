// Shared-memory parallel kernel layer: a persistent thread pool driving
// chunked range loops and deterministic tree reductions.
//
// This is the intra-node tier of the paper's hybrid model (Sec. III,
// Fig. 7): on each Altix node NSU3D threads its edge-based loops with
// OpenMP while MPI handles the inter-node tier. Here the same role is
// played by a process-wide pool whose thread count comes from the
// COLUMBIA_THREADS environment variable (default: hardware concurrency;
// 1 selects an exact serial path with zero synchronization).
//
// Determinism contract: chunk boundaries depend only on (n, grain), never
// on the thread count, and reduction partials are combined in chunk order
// on the calling thread. Together with color-major edge ordering (each
// color's edges touch disjoint nodes, so a node receives at most one
// contribution per color) every solver kernel produces bit-identical
// results for any thread count.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "support/types.hpp"

namespace columbia::smp {

/// Thread count requested by the environment: COLUMBIA_THREADS if set and
/// >= 1, else std::thread::hardware_concurrency().
int env_threads();

class ThreadPool {
 public:
  /// Process-wide pool, sized by env_threads() on first use.
  static ThreadPool& global();

  explicit ThreadPool(int num_threads = env_threads());
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Re-sizes the pool (joins and respawns workers). Intended for tests
  /// and benchmarks that sweep thread counts; must not be called from
  /// inside a parallel region.
  void resize(int num_threads);

  /// fn(begin, end, tid) over contiguous chunks of [begin, end). `tid` is
  /// the index of the executing thread in [0, num_threads()) — use it to
  /// select per-thread scratch. Chunk boundaries are a pure function of
  /// the range and grain. Serial path: one inline call fn(begin, end, 0).
  using RangeFn = std::function<void(std::size_t, std::size_t, int)>;
  void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                    const RangeFn& fn);

  /// Deterministic sum-reduction: `fn(begin, end)` returns the partial for
  /// one chunk; partials are combined in ascending chunk order on the
  /// calling thread, so the result is bit-identical for every thread
  /// count (including 1).
  using ReduceFn = std::function<real_t(std::size_t, std::size_t)>;
  real_t reduce_sum(std::size_t begin, std::size_t end, std::size_t grain,
                    const ReduceFn& fn);

  /// Per-thread utilization counters, recorded only while obs::enabled()
  /// is on (otherwise the pool pays a branch per job). Reset by resize().
  struct ThreadStats {
    std::uint64_t chunks = 0;   // chunks this thread executed
    std::uint64_t busy_ns = 0;  // wall time spent inside chunk bodies
  };
  std::vector<ThreadStats> thread_stats() const;
  void reset_stats();

  /// Copies the per-thread counters into the obs metrics registry as
  /// gauges pool.thread<k>.chunks / pool.thread<k>.busy_ns plus
  /// pool.threads; call before exporting metrics.
  void publish_stats() const;

 private:
  struct Job {
    const RangeFn* fn = nullptr;
    std::size_t begin = 0;
    std::size_t grain = 1;
    std::size_t num_chunks = 0;
    std::size_t end = 0;
  };

  void worker_loop(int tid);
  void run_job(const RangeFn& fn, std::size_t begin, std::size_t end,
               std::size_t grain, std::size_t num_chunks);
  void work_chunks(int tid);
  void start_workers();
  void stop_workers();

  int num_threads_ = 1;
  std::vector<std::thread> workers_;  // num_threads_ - 1 entries

  /// Cache-line-spaced so per-thread bumps never false-share.
  struct alignas(64) AtomicThreadStats {
    std::atomic<std::uint64_t> chunks{0};
    std::atomic<std::uint64_t> busy_ns{0};
  };
  std::unique_ptr<AtomicThreadStats[]> stats_;  // num_threads_ entries

  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  Job job_;
  std::uint64_t generation_ = 0;  // bumped when a job is published
  std::size_t next_chunk_ = 0;    // guarded by mu_
  std::size_t chunks_done_ = 0;   // guarded by mu_
  bool stopping_ = false;
};

/// Convenience: resize the global pool (tests / thread-sweep benchmarks).
void set_global_threads(int num_threads);

/// Chunk count used by the pool for a range: ceil((end-begin)/grain).
inline std::size_t num_chunks(std::size_t begin, std::size_t end,
                              std::size_t grain) {
  const std::size_t n = end - begin;
  return grain == 0 ? 1 : (n + grain - 1) / grain;
}

}  // namespace columbia::smp
