#include "smp/hybrid.hpp"

#include <map>

#include "obs/obs.hpp"
#include "resil/faults.hpp"
#include "support/assert.hpp"

namespace columbia::smp {

namespace {

/// A sender never injects into more than this many attempts of one
/// message, so the final attempt is always clean and every exchange
/// terminates with the original payload delivered intact.
constexpr int kMaxHaloAttempts = 4;

/// Sends `payload` wrapped in a checksummed frame (resil::frame_payload).
/// The fault injector may corrupt or drop the frame in transit; the
/// sender then retransmits (the receiver rejects the bad frame), bounded
/// by kMaxHaloAttempts. Fault decisions are a pure function of
/// (seed, exchange seq, sender, receiver, attempt) — deterministic at any
/// thread interleaving.
void send_halo(Comm& comm, int to, int tag,
               const std::vector<real_t>& payload, std::uint64_t seq,
               std::int64_t strat, std::int64_t level) {
  resil::FaultInjector& inj = resil::FaultInjector::global();
  // One halo.xchg.post span per attempt (plus a retransmit marker per
  // faulted attempt) keeps the comm observatory's k-th-post-to-k-th-wait
  // matching valid under retransmission; core::ExchangePlan mirrors this.
  const std::int64_t me = comm.rank();
  const std::int64_t bytes = std::int64_t(payload.size() * sizeof(real_t));
  for (int attempt = 0;; ++attempt) {
    bool faulted = false;
    {
      obs::SpanGuard post("halo.xchg.post", {{"rank", me},
                                             {"nbr", std::int64_t(to)},
                                             {"level", level},
                                             {"strat", strat},
                                             {"bytes", bytes}});
      std::vector<real_t> frame = resil::frame_payload(payload);
      if (inj.armed() && attempt + 1 < kMaxHaloAttempts) {
        const std::uint64_t site =
            resil::halo_site(seq, std::uint64_t(comm.rank()),
                             std::uint64_t(to), std::uint64_t(attempt));
        if (inj.should_inject(resil::FaultKind::HaloDrop, site)) {
          resil::drop_frame(frame);
          faulted = true;
        } else if (inj.should_inject(resil::FaultKind::HaloCorrupt, site)) {
          resil::corrupt_frame(frame, site);
          faulted = true;
        }
      }
      comm.send(to, tag, frame);
    }
    if (!faulted) return;
    OBS_COUNT("resil.halo.retransmits", 1);
    {
      obs::SpanGuard rt("halo.xchg.retransmit", {{"rank", me},
                                                 {"nbr", std::int64_t(to)},
                                                 {"level", level},
                                                 {"strat", strat},
                                                 {"bytes", bytes}});
    }
  }
}

/// Receives frames from `from` until one validates; returns its payload.
/// Bounded by the sender's attempt cap.
std::vector<real_t> recv_halo(Comm& comm, int from, int tag,
                              std::int64_t strat, std::int64_t level) {
  std::vector<real_t> payload;
  const std::int64_t me = comm.rank();
  for (int attempt = 0; attempt < kMaxHaloAttempts; ++attempt) {
    // The wait span covers the blocking mailbox recv plus validation —
    // the genuine wait time the merger attributes late-sender/receiver.
    obs::SpanGuard wait("halo.xchg.wait", {{"rank", me},
                                           {"nbr", std::int64_t(from)},
                                           {"level", level},
                                           {"strat", strat}});
    const std::vector<real_t> frame = comm.recv(from, tag);
    if (resil::unframe_payload(frame, payload)) return payload;
    OBS_COUNT("resil.halo.rejected", 1);
  }
  COLUMBIA_REQUIRE(!"halo frame never validated within attempt cap");
  return payload;
}

/// Attributes the runtime-wide traffic delta of one exchange to the named
/// per-strategy counters (halo.<strategy>.messages / .bytes).
class TrafficScope {
 public:
  TrafficScope(Runtime& rt, const char* messages_name, const char* bytes_name)
      : rt_(rt), messages_name_(messages_name), bytes_name_(bytes_name) {
    if (obs::enabled()) before_ = rt_.total_traffic();
  }
  ~TrafficScope() {
    if (!obs::enabled()) return;
    const TrafficStats after = rt_.total_traffic();
    obs::counter(messages_name_).add(after.messages - before_.messages);
    obs::counter(bytes_name_).add(after.bytes - before_.bytes);
  }

 private:
  Runtime& rt_;
  const char* messages_name_;
  const char* bytes_name_;
  TrafficStats before_{};
};

/// Serves requests whose owner lives in the same rank by direct copy.
void serve_local(const PartitionData& data, const RequestLists& requests,
                 index_t part, index_t parts_begin, index_t parts_end,
                 std::vector<real_t>& out) {
  const auto& reqs = requests[std::size_t(part)];
  out.resize(reqs.size());
  for (std::size_t k = 0; k < reqs.size(); ++k) {
    const HaloRequest& r = reqs[k];
    if (r.from_partition >= parts_begin && r.from_partition < parts_end)
      out[k] = data[std::size_t(r.from_partition)][std::size_t(r.item)];
  }
}

}  // namespace

PartitionData exchange_thread_to_thread(Runtime& rt, const PartitionData& data,
                                        const RequestLists& requests,
                                        int level) {
  OBS_SPAN("halo.exchange.t2t");
  OBS_COUNT("halo.t2t.exchanges", 1);
  TrafficScope traffic(rt, "halo.t2t.messages", "halo.t2t.bytes");
  const index_t nparts = index_t(data.size());
  COLUMBIA_REQUIRE(index_t(requests.size()) == nparts);
  COLUMBIA_REQUIRE(rt.size() == int(nparts));

  // Precompute, per ordered partition pair, the items to ship.
  // sends[p][q] = item list p must send to q (q requested them from p).
  std::vector<std::map<index_t, std::vector<index_t>>> sends(
      std::size_t(nparts), std::map<index_t, std::vector<index_t>>{});
  for (index_t q = 0; q < nparts; ++q)
    for (const HaloRequest& r : requests[std::size_t(q)])
      if (r.from_partition != q)
        sends[std::size_t(r.from_partition)][q].push_back(r.item);

  const std::uint64_t seq =
      resil::FaultInjector::global().next_exchange_seq();
  PartitionData out(std::size_t(nparts), std::vector<real_t>{});
  const std::int64_t lvl = level;
  rt.run([&](Comm& comm) {
    const index_t me = index_t(comm.rank());
    serve_local(data, requests, me, me, me + 1, out[std::size_t(me)]);
    for (const auto& [q, items] : sends[std::size_t(me)]) {
      std::vector<real_t> buf;
      {
        obs::SpanGuard pack(
            "halo.xchg.pack",
            {{"rank", std::int64_t(me)},
             {"nbr", std::int64_t(q)},
             {"level", lvl},
             {"strat", std::int64_t(0)},
             {"bytes", std::int64_t(items.size() * sizeof(real_t))}});
        buf.reserve(items.size());
        for (index_t item : items)
          buf.push_back(data[std::size_t(me)][std::size_t(item)]);
      }
      send_halo(comm, int(q), 10, buf, seq, 0, lvl);
    }
    // Receive in the deterministic order of our request list's senders.
    std::map<index_t, std::vector<real_t>> received;
    const auto& reqs = requests[std::size_t(me)];
    for (const HaloRequest& r : reqs)
      if (r.from_partition != me &&
          !received.count(r.from_partition))
        received[r.from_partition] =
            recv_halo(comm, int(r.from_partition), 10, 0, lvl);
    obs::SpanGuard unpack(
        "halo.xchg.unpack",
        {{"rank", std::int64_t(me)},
         {"nbr", std::int64_t(-1)},
         {"level", lvl},
         {"strat", std::int64_t(0)},
         {"bytes", std::int64_t(reqs.size() * sizeof(real_t))}});
    std::map<index_t, std::size_t> cursor;
    for (std::size_t k = 0; k < reqs.size(); ++k) {
      const HaloRequest& r = reqs[k];
      if (r.from_partition == me) continue;
      out[std::size_t(me)][k] =
          received[r.from_partition][cursor[r.from_partition]++];
    }
  });
  return out;
}

PartitionData exchange_master_thread(Runtime& rt, const PartitionData& data,
                                     const RequestLists& requests,
                                     int threads_per_process, int level) {
  OBS_SPAN("halo.exchange.master");
  OBS_COUNT("halo.master.exchanges", 1);
  TrafficScope traffic(rt, "halo.master.messages", "halo.master.bytes");
  const index_t nparts = index_t(data.size());
  COLUMBIA_REQUIRE(index_t(requests.size()) == nparts);
  COLUMBIA_REQUIRE(threads_per_process >= 1);
  COLUMBIA_REQUIRE(nparts % threads_per_process == 0);
  const index_t nprocs = nparts / threads_per_process;
  COLUMBIA_REQUIRE(rt.size() == int(nprocs));
  const index_t tpp = index_t(threads_per_process);

  auto proc_of = [&](index_t part) { return part / tpp; };

  // sends[P][Q] = (owner partition, item) pairs process P ships to Q,
  // in the deterministic order of Q's partitions' request lists.
  std::vector<std::map<index_t, std::vector<HaloRequest>>> sends(
      std::size_t(nprocs), std::map<index_t, std::vector<HaloRequest>>{});
  for (index_t q = 0; q < nparts; ++q) {
    const index_t qp = proc_of(q);
    for (const HaloRequest& r : requests[std::size_t(q)]) {
      const index_t op = proc_of(r.from_partition);
      if (op != qp) sends[std::size_t(op)][qp].push_back(r);
    }
  }

  const std::uint64_t seq =
      resil::FaultInjector::global().next_exchange_seq();
  PartitionData out(std::size_t(nparts), std::vector<real_t>{});
  const std::int64_t lvl = level;
  rt.run([&](Comm& comm) {
    const index_t me = index_t(comm.rank());
    const index_t first = me * tpp, last = first + tpp;

    // Intra-process requests: direct shared-memory copies (all partitions
    // of this process, "thread-parallel" conceptually).
    for (index_t p = first; p < last; ++p)
      serve_local(data, requests, p, first, last, out[std::size_t(p)]);

    // Master thread packs ONE buffer per remote process and sends it
    // (Fig. 7b): all ghost values from every local partition together.
    for (const auto& [qp, items] : sends[std::size_t(me)]) {
      std::vector<real_t> buf;
      {
        obs::SpanGuard pack(
            "halo.xchg.pack",
            {{"rank", std::int64_t(me)},
             {"nbr", std::int64_t(qp)},
             {"level", lvl},
             {"strat", std::int64_t(1)},
             {"bytes", std::int64_t(items.size() * sizeof(real_t))}});
        buf.reserve(items.size());
        for (const HaloRequest& r : items)
          buf.push_back(
              data[std::size_t(r.from_partition)][std::size_t(r.item)]);
      }
      send_halo(comm, int(qp), 11, buf, seq, 1, lvl);
    }
    // Receive one message per remote process and scatter to the local
    // partitions' request slots (thread-parallel unpack in the paper).
    // The unpack span wraps the whole scatter; nested wait spans are
    // excluded from its exclusive time by the profile builder.
    obs::SpanGuard unpack("halo.xchg.unpack", {{"rank", std::int64_t(me)},
                                               {"nbr", std::int64_t(-1)},
                                               {"level", lvl},
                                               {"strat", std::int64_t(1)}});
    std::map<index_t, std::vector<real_t>> received;
    std::map<index_t, std::size_t> cursor;
    for (index_t p = first; p < last; ++p) {
      const auto& reqs = requests[std::size_t(p)];
      for (std::size_t k = 0; k < reqs.size(); ++k) {
        const index_t op = proc_of(reqs[k].from_partition);
        if (op == me) continue;
        if (!received.count(op))
          received[op] = recv_halo(comm, int(op), 11, 1, lvl);
        out[std::size_t(p)][k] = received[op][cursor[op]++];
      }
    }
  });
  return out;
}

}  // namespace columbia::smp
