// POSIX shared-memory transport between forked OS processes.
//
// A ShmGroup owns one anonymous MAP_SHARED mapping holding an SPSC byte
// ring per directed member pair. The parent creates the group BEFORE
// forking; every child inherits the mapping and drives its endpoint
// (ShmGroup::endpoint) against the rings. Datagrams travel length-prefixed
// ([u32 length][bytes]); the producer publishes the tail index with
// release ordering only after the whole datagram is written, so a consumer
// that observes the tail sees complete messages — the ring never delivers
// a torn datagram (the frame checksum above would catch one anyway).
//
// Failure semantics: send() reports false when the ring stays full past a
// bounded wait (the peer stopped draining); recv() polls until the
// deadline; inject_reset drops everything in flight toward this member,
// which is what a real link reset does to unacknowledged data.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "core/transport.hpp"

namespace columbia::smp {

struct ShmGroupOptions {
  /// Per-directed-pair ring capacity in bytes. Must exceed the largest
  /// datagram (wire header + framed payload) by at least the length
  /// prefix.
  std::size_t ring_bytes = std::size_t(1) << 20;
};

/// One SPSC ring: head is the consumer cursor, tail the producer cursor
/// (both monotone; the ring holds tail - head live bytes). Lives inside
/// the shared mapping, so members must be trivially layout-stable.
struct ShmRing {
  alignas(64) std::atomic<std::uint64_t> head;
  alignas(64) std::atomic<std::uint64_t> tail;
};

/// The shared fabric. Construct in the parent BEFORE forking; endpoints
/// work from the parent (loopback harness) or any forked child. The group
/// must outlive every endpoint using it (in a child, for the child's
/// lifetime — the mapping is released by _exit).
class ShmGroup {
 public:
  explicit ShmGroup(int size, ShmGroupOptions options = {});
  ~ShmGroup();
  ShmGroup(const ShmGroup&) = delete;
  ShmGroup& operator=(const ShmGroup&) = delete;

  int size() const { return size_; }
  std::size_t ring_bytes() const { return opt_.ring_bytes; }

  std::unique_ptr<core::Transport> endpoint(int rank);

  ShmRing& ring(int from, int to);
  std::uint8_t* ring_data(int from, int to);

 private:
  int size_;
  ShmGroupOptions opt_;
  std::size_t stride_ = 0;  // bytes per (ring header + buffer), 64-aligned
  void* map_ = nullptr;
  std::size_t map_bytes_ = 0;
};

}  // namespace columbia::smp
