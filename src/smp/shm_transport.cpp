#include "smp/shm_transport.hpp"

#include <sys/mman.h>

#include <chrono>
#include <cstring>
#include <thread>

#include "support/assert.hpp"

namespace columbia::smp {

namespace {

constexpr std::size_t kAlign = 64;

std::size_t align_up(std::size_t n) { return (n + kAlign - 1) & ~(kAlign - 1); }

/// Bounded wait for ring space before send() gives up and reports the
/// link down; recv() uses its caller-supplied deadline instead.
constexpr int kSendStallMs = 500;
constexpr auto kPollNap = std::chrono::microseconds(200);

class ShmTransport final : public core::Transport {
 public:
  ShmTransport(ShmGroup* group, int rank) : group_(group), rank_(rank) {}

  core::TransportBackend backend() const override {
    return core::TransportBackend::Shm;
  }
  int group_rank() const override { return rank_; }
  int group_size() const override { return group_->size(); }

  bool send(int to, std::span<const std::uint8_t> datagram) override {
    COLUMBIA_REQUIRE(to >= 0 && to < group_->size());
    const std::uint64_t need = 4 + std::uint64_t(datagram.size());
    const std::uint64_t cap = group_->ring_bytes();
    COLUMBIA_REQUIRE(need <= cap);
    ShmRing& r = group_->ring(rank_, to);
    std::uint8_t* buf = group_->ring_data(rank_, to);
    const auto until = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(kSendStallMs);
    std::uint64_t tail = r.tail.load(std::memory_order_relaxed);
    for (;;) {
      const std::uint64_t head = r.head.load(std::memory_order_acquire);
      if (cap - (tail - head) >= need) break;
      if (std::chrono::steady_clock::now() >= until) return false;
      std::this_thread::sleep_for(kPollNap);
    }
    const std::uint32_t len = std::uint32_t(datagram.size());
    std::uint8_t prefix[4];
    std::memcpy(prefix, &len, 4);
    write_wrapped(buf, cap, tail, prefix, 4);
    write_wrapped(buf, cap, tail + 4, datagram.data(), datagram.size());
    r.tail.store(tail + need, std::memory_order_release);
    return true;
  }

  core::RecvOutcome recv(int from, std::vector<std::uint8_t>& datagram,
                         int deadline_ms) override {
    COLUMBIA_REQUIRE(from >= 0 && from < group_->size());
    ShmRing& r = group_->ring(from, rank_);
    const std::uint8_t* buf = group_->ring_data(from, rank_);
    const std::uint64_t cap = group_->ring_bytes();
    const auto until = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(deadline_ms);
    for (;;) {
      const std::uint64_t head = r.head.load(std::memory_order_relaxed);
      const std::uint64_t tail = r.tail.load(std::memory_order_acquire);
      // The producer publishes tail once per whole datagram, so any
      // readable length prefix is followed by its complete body.
      if (tail - head >= 4) {
        std::uint8_t prefix[4];
        read_wrapped(buf, cap, head, prefix, 4);
        std::uint32_t len;
        std::memcpy(&len, prefix, 4);
        COLUMBIA_REQUIRE(tail - head >= 4 + std::uint64_t(len));
        datagram.resize(len);
        read_wrapped(buf, cap, head + 4, datagram.data(), len);
        r.head.store(head + 4 + len, std::memory_order_release);
        return core::RecvOutcome::Ok;
      }
      if (std::chrono::steady_clock::now() >= until)
        return core::RecvOutcome::Timeout;
      std::this_thread::sleep_for(kPollNap);
    }
  }

  /// A reset loses in-flight data: discard everything queued toward this
  /// member (we are that ring's consumer, so advancing head is safe).
  void inject_reset(int peer) override {
    ShmRing& r = group_->ring(peer, rank_);
    r.head.store(r.tail.load(std::memory_order_acquire),
                 std::memory_order_release);
  }

 private:
  static void write_wrapped(std::uint8_t* buf, std::uint64_t cap,
                            std::uint64_t pos, const std::uint8_t* src,
                            std::size_t n) {
    const std::uint64_t at = pos % cap;
    const std::size_t first = std::size_t(std::min<std::uint64_t>(n, cap - at));
    std::memcpy(buf + at, src, first);
    if (first < n) std::memcpy(buf, src + first, n - first);
  }
  static void read_wrapped(const std::uint8_t* buf, std::uint64_t cap,
                           std::uint64_t pos, std::uint8_t* dst,
                           std::size_t n) {
    const std::uint64_t at = pos % cap;
    const std::size_t first = std::size_t(std::min<std::uint64_t>(n, cap - at));
    std::memcpy(dst, buf + at, first);
    if (first < n) std::memcpy(dst + first, buf, n - first);
  }

  ShmGroup* group_;
  int rank_;
};

}  // namespace

ShmGroup::ShmGroup(int size, ShmGroupOptions options)
    : size_(size), opt_(options) {
  COLUMBIA_REQUIRE(size >= 1);
  COLUMBIA_REQUIRE(opt_.ring_bytes >= 4096);
  stride_ = align_up(sizeof(ShmRing)) + align_up(opt_.ring_bytes);
  map_bytes_ = stride_ * std::size_t(size) * std::size_t(size);
  map_ = ::mmap(nullptr, map_bytes_, PROT_READ | PROT_WRITE,
                MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  COLUMBIA_REQUIRE(map_ != MAP_FAILED);
  for (int f = 0; f < size; ++f)
    for (int t = 0; t < size; ++t) {
      ShmRing* r = new (static_cast<std::uint8_t*>(map_) +
                        stride_ * (std::size_t(f) * std::size_t(size) +
                                   std::size_t(t))) ShmRing;
      r->head.store(0, std::memory_order_relaxed);
      r->tail.store(0, std::memory_order_relaxed);
    }
}

ShmGroup::~ShmGroup() {
  if (map_ != nullptr && map_ != MAP_FAILED) ::munmap(map_, map_bytes_);
}

ShmRing& ShmGroup::ring(int from, int to) {
  return *reinterpret_cast<ShmRing*>(
      static_cast<std::uint8_t*>(map_) +
      stride_ * (std::size_t(from) * std::size_t(size_) + std::size_t(to)));
}

std::uint8_t* ShmGroup::ring_data(int from, int to) {
  return static_cast<std::uint8_t*>(map_) +
         stride_ * (std::size_t(from) * std::size_t(size_) + std::size_t(to)) +
         align_up(sizeof(ShmRing));
}

std::unique_ptr<core::Transport> ShmGroup::endpoint(int rank) {
  COLUMBIA_REQUIRE(rank >= 0 && rank < size_);
  return std::make_unique<ShmTransport>(this, rank);
}

}  // namespace columbia::smp
