// Fork-based rank launcher with a heartbeat failure detector.
//
// ProcessGroup::run forks one OS process per rank, hands each child a
// Transport endpoint onto the group fabric (shared-memory rings or TCP
// sockets, built pre-fork), and watches them: every child pulses a
// per-rank heartbeat counter in an anonymous MAP_SHARED control block;
// the parent polls exits AND heartbeat freshness. A child that dies is
// reaped; a child whose heartbeat stalls (the injected peer_hang, a
// deadlock, a livelock) is declared hung, the whole group is killed, and
// the launcher reports it — a hang NEVER propagates to the caller as a
// hang. Transport failure counters are mirrored into the control block,
// so the parent can aggregate resil.transport.* across ranks even from
// children that did not exit cleanly.
//
// run_recovering is the rank-failure recovery driver: when a round fails
// (hang, crash, nonzero exit), it strips peer_hang from the process-wide
// fault injector — relaunching IS replacing the dead node; a deterministic
// hang would otherwise re-fire forever — and re-forks the group. Children
// resume from the last durable resil::checkpoint via their own body logic
// (resil::guarded_solve with resume=true).
//
// Fork discipline: the parent must not have live worker threads the
// children depend on (a forked child inherits memory but NOT threads).
// Launch before touching the global smp thread pool; children create
// their pools after the fork.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/transport.hpp"

namespace columbia::smp {

enum class GroupBackend { Shm, Tcp };
const char* group_backend_name(GroupBackend b);

struct ProcessGroupOptions {
  int ranks = 2;
  GroupBackend backend = GroupBackend::Shm;
  /// Child heartbeat period.
  int heartbeat_ms = 25;
  /// A running child whose heartbeat has not advanced for this long is
  /// declared hung.
  int stall_ms = 2000;
  /// Whole-group watchdog; 0 disables. The group is killed when it fires.
  int wall_timeout_ms = 120000;
  /// Per-pair ring capacity for the Shm backend.
  std::size_t shm_ring_bytes = std::size_t(1) << 20;
  /// Flight recorder (obs/shard.hpp): when non-empty, every child arms a
  /// FlightRecorder writing the durable shard
  /// obs::shard_file_path(telemetry_base, rank, telemetry_round), and the
  /// group runs the clock-sync handshake (core/clock_sync.hpp) against
  /// member 0 right after fork and again at teardown, stamping both
  /// estimates into the shard. Empty = no per-rank telemetry.
  std::string telemetry_base;
  /// Launch round stamped into shard headers; run_recovering bumps it on
  /// every relaunch so merged timelines keep rounds separable.
  int telemetry_round = 0;
};

/// One rank's fate, as the parent saw it.
struct MemberReport {
  int exit_code = -1;     // valid when exited
  bool exited = false;    // normal _exit
  bool signaled = false;  // killed by a signal (including our SIGKILL)
  bool hung = false;      // heartbeat stalled; we killed it
  std::uint64_t heartbeats = 0;
  core::TransportCounters counters;
};

struct GroupResult {
  /// Every rank exited with code 0.
  bool ok = false;
  /// At least one rank was declared hung by the failure detector.
  bool hung = false;
  std::vector<MemberReport> members;
  /// Sum of all members' transport counters (heartbeats included).
  core::TransportCounters total;
  /// Telemetry shards found on disk after the run (telemetry-armed runs
  /// only; a rank killed before its first flush leaves none).
  /// run_recovering accumulates shards across all rounds.
  std::vector<std::string> shards;

  int first_failure_exit() const;
};

class ProcessGroup {
 public:
  /// Runs in the forked child: do the rank's work against the endpoint,
  /// return the process exit code (0 = success). Exceptions escaping the
  /// body exit with kExitUncaught.
  using Body = std::function<int(int rank, core::Transport& transport)>;

  static constexpr int kExitUncaught = 70;

  /// Forks opts.ranks children, supervises them, reaps them all. Never
  /// hangs longer than the watchdog allows.
  static GroupResult run(const ProcessGroupOptions& opts, const Body& body);

  /// run() with relaunch-on-failure: after a failed round the injected
  /// peer_hang is disarmed (the relaunch replaces the "dead node") and the
  /// group is re-forked, up to max_relaunches extra rounds. relaunches_out
  /// (optional) reports how many recoveries happened.
  static GroupResult run_recovering(const ProcessGroupOptions& opts,
                                    const Body& body, int max_relaunches = 1,
                                    int* relaunches_out = nullptr);
};

}  // namespace columbia::smp
