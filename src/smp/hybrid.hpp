// The two hybrid MPI/OpenMP communication strategies of paper Fig. 7.
//
// Partitions are grouped into "processes" of `threads_per_process`
// partitions each. A halo exchange then has two implementations:
//
//   (a) thread-to-thread (Fig. 7a): every partition is its own rank and
//       sends directly to every partition it talks to. The paper found
//       this scales poorly because thread-level MPI calls serialize.
//
//   (b) master-thread (Fig. 7b): partitions of one process pack all values
//       bound for a remote process into a single buffer; the master rank
//       alone sends/receives one message per remote process and the
//       payload is scattered locally. Fewer, larger messages — the
//       strategy NSU3D uses exclusively.
//
// Intra-process requests are served by direct copy (shared memory).
//
// Resilience: every inter-process message travels in a checksummed frame
// ([count, crc32, payload...]); a receiver rejects truncated or corrupted
// frames and the sender retransmits, so delivered halo values are always
// exactly the originals — exchanges are bit-identical with fault injection
// (COLUMBIA_FAULTS halo_corrupt / halo_drop) on or off.
// These entry points re-derive the message layouts and reallocate their
// buffers on every call; they are the threaded reference implementation of
// the protocol. Steady-state solver code uses core::ExchangePlan, which
// precomputes the same layouts once and reuses persistent buffers
// (tests/test_core.cpp pins the two implementations bit-identical).
#pragma once

#include <vector>

#include "core/halo.hpp"
#include "smp/runtime.hpp"

namespace columbia::smp {

/// Request vocabulary shared with core::ExchangePlan (see core/halo.hpp);
/// aliased so existing call sites keep compiling.
using HaloRequest = core::HaloRequest;
using PartitionData = core::PartitionData;
using RequestLists = core::RequestLists;

/// Fig. 7(a): one rank per partition, direct thread-to-thread messages.
/// `level` tags the exchange's halo.xchg spans for the comm observatory
/// (-1 = untagged); it never affects the delivered values.
PartitionData exchange_thread_to_thread(Runtime& rt, const PartitionData& data,
                                        const RequestLists& requests,
                                        int level = -1);

/// Fig. 7(b): one rank per process of `threads_per_process` partitions;
/// the master packs/sends one message per remote process. `level` as in
/// exchange_thread_to_thread.
PartitionData exchange_master_thread(Runtime& rt, const PartitionData& data,
                                     const RequestLists& requests,
                                     int threads_per_process, int level = -1);

}  // namespace columbia::smp
