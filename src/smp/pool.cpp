#include "smp/pool.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <string>

#include "obs/obs.hpp"
#include "support/assert.hpp"
#include "support/timer.hpp"

namespace columbia::smp {

int env_threads() {
  if (const char* s = std::getenv("COLUMBIA_THREADS")) {
    const int n = std::atoi(s);
    if (n >= 1) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? int(hw) : 1;
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void set_global_threads(int num_threads) {
  ThreadPool::global().resize(num_threads);
}

ThreadPool::ThreadPool(int num_threads) {
  COLUMBIA_REQUIRE(num_threads >= 1);
  num_threads_ = num_threads;
  stats_ = std::make_unique<AtomicThreadStats[]>(std::size_t(num_threads_));
  start_workers();
}

ThreadPool::~ThreadPool() { stop_workers(); }

void ThreadPool::start_workers() {
  workers_.reserve(std::size_t(num_threads_) - 1);
  for (int t = 1; t < num_threads_; ++t)
    workers_.emplace_back([this, t] { worker_loop(t); });
}

void ThreadPool::stop_workers() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
  workers_.clear();
  stopping_ = false;
}

void ThreadPool::resize(int num_threads) {
  COLUMBIA_REQUIRE(num_threads >= 1);
  if (num_threads == num_threads_) return;
  stop_workers();
  num_threads_ = num_threads;
  stats_ = std::make_unique<AtomicThreadStats[]>(std::size_t(num_threads_));
  start_workers();
}

std::vector<ThreadPool::ThreadStats> ThreadPool::thread_stats() const {
  std::vector<ThreadStats> out(static_cast<std::size_t>(num_threads_));
  for (int t = 0; t < num_threads_; ++t) {
    out[std::size_t(t)].chunks = stats_[t].chunks.load(std::memory_order_relaxed);
    out[std::size_t(t)].busy_ns =
        stats_[t].busy_ns.load(std::memory_order_relaxed);
  }
  return out;
}

void ThreadPool::reset_stats() {
  for (int t = 0; t < num_threads_; ++t) {
    stats_[t].chunks.store(0, std::memory_order_relaxed);
    stats_[t].busy_ns.store(0, std::memory_order_relaxed);
  }
}

void ThreadPool::publish_stats() const {
  if (!obs::enabled()) return;
  obs::gauge("pool.threads").set(std::uint64_t(num_threads_));
  const std::vector<ThreadStats> snap = thread_stats();
  for (int t = 0; t < num_threads_; ++t) {
    const std::string prefix = "pool.thread" + std::to_string(t);
    obs::gauge(prefix + ".chunks").set(snap[std::size_t(t)].chunks);
    obs::gauge(prefix + ".busy_ns").set(snap[std::size_t(t)].busy_ns);
  }
}

void ThreadPool::worker_loop(int tid) {
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      start_cv_.wait(lock, [&] {
        return stopping_ || (job_.fn != nullptr && next_chunk_ < job_.num_chunks);
      });
      if (stopping_) return;
    }
    work_chunks(tid);
  }
}

void ThreadPool::work_chunks(int tid) {
  // Utilization accounting is gated on the runtime obs flag so the
  // tracing-off path costs one relaxed load per chunk.
  const bool timed = obs::enabled();
  std::uint64_t chunks = 0;
  std::uint64_t busy_ns = 0;
  std::unique_lock<std::mutex> lock(mu_);
  while (job_.fn != nullptr && next_chunk_ < job_.num_chunks) {
    const std::size_t c = next_chunk_++;
    const RangeFn* fn = job_.fn;
    const std::size_t b = job_.begin + c * job_.grain;
    const std::size_t e = std::min(job_.end, b + job_.grain);
    lock.unlock();
    if (timed) {
      const std::uint64_t t0 = WallTimer::now_ns();
      (*fn)(b, e, tid);
      busy_ns += WallTimer::now_ns() - t0;
      ++chunks;
    } else {
      (*fn)(b, e, tid);
    }
    lock.lock();
    if (++chunks_done_ == job_.num_chunks) done_cv_.notify_all();
  }
  if (timed && chunks > 0) {
    stats_[tid].chunks.fetch_add(chunks, std::memory_order_relaxed);
    stats_[tid].busy_ns.fetch_add(busy_ns, std::memory_order_relaxed);
  }
}

void ThreadPool::run_job(const RangeFn& fn, std::size_t begin, std::size_t end,
                         std::size_t grain, std::size_t chunks) {
  OBS_COUNT("pool.jobs", 1);
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = Job{&fn, begin, grain, chunks, end};
    next_chunk_ = 0;
    chunks_done_ = 0;
    ++generation_;
  }
  start_cv_.notify_all();
  work_chunks(0);  // the caller participates
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return chunks_done_ == job_.num_chunks; });
  job_.fn = nullptr;
}

namespace {
/// One job at a time; nested or concurrent parallel regions fall back to
/// the inline serial path (well-defined from any thread, unlike a
/// recursive try_lock).
std::atomic_flag g_busy = ATOMIC_FLAG_INIT;
}  // namespace

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              std::size_t grain, const RangeFn& fn) {
  if (end <= begin) return;
  grain = std::max<std::size_t>(1, grain);
  if (num_threads_ == 1 || end - begin <= grain) {
    fn(begin, end, 0);
    return;
  }
  if (g_busy.test_and_set(std::memory_order_acquire)) {
    fn(begin, end, 0);
    return;
  }
  run_job(fn, begin, end, grain, num_chunks(begin, end, grain));
  g_busy.clear(std::memory_order_release);
}

real_t ThreadPool::reduce_sum(std::size_t begin, std::size_t end,
                              std::size_t grain, const ReduceFn& fn) {
  if (end <= begin) return 0;
  grain = std::max<std::size_t>(1, grain);
  const std::size_t chunks = num_chunks(begin, end, grain);
  std::vector<real_t> partial(chunks, 0.0);
  // Identical chunking on every path keeps the combine order — and thus
  // the rounding — independent of the thread count.
  const bool serial = num_threads_ == 1 || chunks == 1 ||
                      g_busy.test_and_set(std::memory_order_acquire);
  if (serial) {
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t b = begin + c * grain;
      partial[c] = fn(b, std::min(end, b + grain));
    }
  } else {
    const RangeFn chunked = [&](std::size_t b, std::size_t e, int) {
      partial[(b - begin) / grain] = fn(b, e);
    };
    run_job(chunked, begin, end, grain, chunks);
    g_busy.clear(std::memory_order_release);
  }
  real_t sum = 0;
  for (std::size_t c = 0; c < chunks; ++c) sum += partial[c];
  return sum;
}

}  // namespace columbia::smp
