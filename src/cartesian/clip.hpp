// Triangle-against-box polygon clipping.
//
// A cut cell's wall boundary condition needs the area vector of the piece
// of surface inside the cell (paper Sec. V: embedded-boundary cut cells).
// Sutherland-Hodgman clipping against the six box planes yields the clipped
// polygon; its area vector is exact for planar input.
#pragma once

#include <vector>

#include "geom/aabb.hpp"
#include "geom/vec3.hpp"

namespace columbia::cartesian {

/// Clips triangle (a,b,c) to the box; returns the clipped polygon's
/// vertices (empty when no overlap).
std::vector<geom::Vec3> clip_triangle_to_box(const geom::Vec3& a,
                                             const geom::Vec3& b,
                                             const geom::Vec3& c,
                                             const geom::Aabb& box);

/// Area vector (normal scaled by area) of a planar polygon.
geom::Vec3 polygon_area_vector(const std::vector<geom::Vec3>& poly);

}  // namespace columbia::cartesian
