#include "cartesian/coarsen.hpp"

#include "sfc/sfc_partition.hpp"

#include "support/assert.hpp"

namespace columbia::cartesian {

CoarsenResult coarsen_sfc(const CartMesh& fine, SfcKind kind) {
  CoarsenResult out;
  out.coarse.domain = fine.domain;
  out.coarse.base_n = fine.base_n;
  out.coarse.max_level = fine.max_level;
  out.fine_to_coarse.assign(fine.cells.size(), kInvalidIndex);

  const std::size_t n = fine.cells.size();
  std::size_t i = 0;
  while (i < n) {
    const CartCell& c = fine.cells[i];
    bool collapsed = false;
    // Coarsening may proceed below the base grid (negative levels) as long
    // as the parent span still tiles the domain and the packed level field
    // stays in range.
    const std::uint32_t pspan2 = fine.cell_span(c) * 2;
    const std::uint32_t n_fine =
        std::uint32_t(fine.base_n) << fine.max_level;
    const bool can_coarsen =
        c.level > -8 && pspan2 <= n_fine && n_fine % pspan2 == 0;
    if (can_coarsen && i + 8 <= n) {
      // Candidate parent: the level-1 cell containing c.
      const std::uint32_t pspan = fine.cell_span(c) * 2;
      const std::array<std::uint32_t, 3> parent = {
          c.anchor[0] / pspan * pspan, c.anchor[1] / pspan * pspan,
          c.anchor[2] / pspan * pspan};
      // The SFC groups the 8 siblings contiguously; verify the next 8
      // cells are exactly those siblings at the same level.
      bool octet = true;
      for (std::size_t k = 0; k < 8 && octet; ++k) {
        const CartCell& s = fine.cells[i + k];
        if (s.level != c.level) {
          octet = false;
          break;
        }
        for (int a = 0; a < 3; ++a)
          if (s.anchor[std::size_t(a)] / pspan * pspan !=
              parent[std::size_t(a)]) {
            octet = false;
            break;
          }
      }
      if (octet) {
        CartCell p;
        p.anchor = parent;
        p.level = std::int8_t(c.level - 1);
        real_t frac = 0;
        for (std::size_t k = 0; k < 8; ++k) {
          const CartCell& s = fine.cells[i + k];
          p.cut = p.cut || s.cut;
          frac += s.fluid_frac;
          p.wall_area += s.wall_area;
          out.fine_to_coarse[i + k] = index_t(out.coarse.cells.size());
        }
        p.fluid_frac = frac / 8.0;
        out.coarse.cells.push_back(p);
        i += 8;
        collapsed = true;
      }
    }
    if (!collapsed) {
      out.fine_to_coarse[i] = index_t(out.coarse.cells.size());
      out.coarse.cells.push_back(c);
      ++i;
    }
  }

  // The single-pass construction already leaves cells SFC-ordered, but the
  // parent's own key differs from its first child's; re-sorting keeps keys
  // exact and is O(n log n) on an almost-sorted array.
  std::vector<index_t> old_index(out.coarse.cells.size());
  {
    // Track positions across the sort to fix fine_to_coarse.
    out.coarse.sfc_keys.resize(out.coarse.cells.size());
    for (std::size_t k = 0; k < out.coarse.cells.size(); ++k)
      out.coarse.sfc_keys[k] = sfc_key_of(out.coarse, out.coarse.cells[k], kind);
    const auto order = sfc::sort_order(out.coarse.sfc_keys);
    std::vector<index_t> new_of_old(order.size());
    for (std::size_t k = 0; k < order.size(); ++k)
      new_of_old[std::size_t(order[k])] = index_t(k);
    std::vector<CartCell> sorted(order.size());
    std::vector<std::uint64_t> skeys(order.size());
    for (std::size_t k = 0; k < order.size(); ++k) {
      sorted[k] = out.coarse.cells[std::size_t(order[k])];
      skeys[k] = out.coarse.sfc_keys[std::size_t(order[k])];
    }
    out.coarse.cells = std::move(sorted);
    out.coarse.sfc_keys = std::move(skeys);
    for (auto& f2c : out.fine_to_coarse)
      f2c = new_of_old[std::size_t(f2c)];
    (void)old_index;
  }
  build_faces(out.coarse);
  return out;
}

CartHierarchy build_hierarchy(const CartMesh& fine, int num_levels,
                              SfcKind kind) {
  COLUMBIA_REQUIRE(num_levels >= 1);
  CartHierarchy h;
  h.levels.push_back(fine);
  for (int l = 1; l < num_levels; ++l) {
    CoarsenResult r = coarsen_sfc(h.levels.back(), kind);
    if (r.coarse.cells.size() >= h.levels.back().cells.size()) break;
    h.maps.push_back(std::move(r.fine_to_coarse));
    h.levels.push_back(std::move(r.coarse));
  }
  return h;
}

}  // namespace columbia::cartesian
