#include "cartesian/inside.hpp"

#include <algorithm>
#include <cmath>

#include "support/assert.hpp"

namespace columbia::cartesian {

using geom::Vec3;

InsideClassifier::InsideClassifier(const geom::TriSurface& surface, int grid)
    : surface_(surface), bounds_(surface.bounds()), grid_(grid) {
  COLUMBIA_REQUIRE(grid >= 1);
  // Pad the bounds slightly so boundary queries never index out of range.
  const Vec3 pad = 1e-9 * (bounds_.hi - bounds_.lo) + Vec3{1e-12, 1e-12, 1e-12};
  bounds_.lo -= pad;
  bounds_.hi += pad;
  dx_ = (bounds_.hi.x - bounds_.lo.x) / grid_;
  dy_ = (bounds_.hi.y - bounds_.lo.y) / grid_;

  buckets_.assign(std::size_t(grid_) * std::size_t(grid_),
                  std::vector<index_t>{});
  for (index_t t = 0; t < surface_.num_triangles(); ++t) {
    const geom::Aabb tb = surface_.triangle_bounds(t);
    const int ix0 = std::clamp(int((tb.lo.x - bounds_.lo.x) / dx_), 0, grid_ - 1);
    const int ix1 = std::clamp(int((tb.hi.x - bounds_.lo.x) / dx_), 0, grid_ - 1);
    const int iy0 = std::clamp(int((tb.lo.y - bounds_.lo.y) / dy_), 0, grid_ - 1);
    const int iy1 = std::clamp(int((tb.hi.y - bounds_.lo.y) / dy_), 0, grid_ - 1);
    for (int iy = iy0; iy <= iy1; ++iy)
      for (int ix = ix0; ix <= ix1; ++ix)
        buckets_[std::size_t(iy) * std::size_t(grid_) + std::size_t(ix)]
            .push_back(t);
  }
}

std::size_t InsideClassifier::bucket_of(real_t x, real_t y) const {
  const int ix = std::clamp(int((x - bounds_.lo.x) / dx_), 0, grid_ - 1);
  const int iy = std::clamp(int((y - bounds_.lo.y) / dy_), 0, grid_ - 1);
  return std::size_t(iy) * std::size_t(grid_) + std::size_t(ix);
}

bool InsideClassifier::inside(const Vec3& p) const {
  if (!bounds_.contains(p)) return false;
  // Count crossings of the downward ray {(p.x, p.y, z) : z < p.z}.
  int crossings = 0;
  for (index_t t : buckets_[bucket_of(p.x, p.y)]) {
    const geom::Triangle& tri = surface_.triangle(t);
    const Vec3& a = surface_.vertex(tri.v[0]);
    const Vec3& b = surface_.vertex(tri.v[1]);
    const Vec3& c = surface_.vertex(tri.v[2]);
    // 2D point-in-triangle in the (x, y) projection via edge functions.
    const real_t d1 = (b.x - a.x) * (p.y - a.y) - (b.y - a.y) * (p.x - a.x);
    const real_t d2 = (c.x - b.x) * (p.y - b.y) - (c.y - b.y) * (p.x - b.x);
    const real_t d3 = (a.x - c.x) * (p.y - c.y) - (a.y - c.y) * (p.x - c.x);
    const bool has_neg = (d1 < 0) || (d2 < 0) || (d3 < 0);
    const bool has_pos = (d1 > 0) || (d2 > 0) || (d3 > 0);
    if (has_neg && has_pos) continue;  // outside the projected triangle
    // Height of the triangle plane at (p.x, p.y).
    const Vec3 n = cross(b - a, c - a);
    if (std::abs(n.z) < 1e-30) continue;  // vertical triangle: no z-crossing
    const real_t z =
        a.z - ((p.x - a.x) * n.x + (p.y - a.y) * n.y) / n.z;
    if (z < p.z) ++crossings;
  }
  return (crossings % 2) == 1;
}

real_t InsideClassifier::fluid_fraction(const geom::Aabb& box,
                                        int samples) const {
  COLUMBIA_REQUIRE(samples >= 1);
  int fluid = 0;
  const Vec3 size = box.hi - box.lo;
  for (int k = 0; k < samples; ++k)
    for (int j = 0; j < samples; ++j)
      for (int i = 0; i < samples; ++i) {
        const Vec3 p = box.lo + Vec3{size.x * (i + 0.5) / samples,
                                     size.y * (j + 0.5) / samples,
                                     size.z * (k + 0.5) / samples};
        if (!inside(p)) ++fluid;
      }
  return real_t(fluid) / real_t(samples * samples * samples);
}

}  // namespace columbia::cartesian
