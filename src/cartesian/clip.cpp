#include "cartesian/clip.hpp"

namespace columbia::cartesian {

using geom::Vec3;

namespace {

/// Clips `poly` against the half-space {p : sign*(p[axis] - value) <= 0}.
std::vector<Vec3> clip_halfspace(const std::vector<Vec3>& poly, int axis,
                                 real_t value, real_t sign) {
  std::vector<Vec3> out;
  const std::size_t n = poly.size();
  if (n == 0) return out;
  auto side = [&](const Vec3& p) {
    const real_t coord = axis == 0 ? p.x : (axis == 1 ? p.y : p.z);
    return sign * (coord - value);
  };
  for (std::size_t i = 0; i < n; ++i) {
    const Vec3& cur = poly[i];
    const Vec3& nxt = poly[(i + 1) % n];
    const real_t sc = side(cur), sn = side(nxt);
    if (sc <= 0) out.push_back(cur);
    if ((sc < 0 && sn > 0) || (sc > 0 && sn < 0)) {
      const real_t t = sc / (sc - sn);
      out.push_back(cur + t * (nxt - cur));
    }
  }
  return out;
}

}  // namespace

std::vector<Vec3> clip_triangle_to_box(const Vec3& a, const Vec3& b,
                                       const Vec3& c, const geom::Aabb& box) {
  std::vector<Vec3> poly{a, b, c};
  poly = clip_halfspace(poly, 0, box.lo.x, -1);
  poly = clip_halfspace(poly, 0, box.hi.x, +1);
  poly = clip_halfspace(poly, 1, box.lo.y, -1);
  poly = clip_halfspace(poly, 1, box.hi.y, +1);
  poly = clip_halfspace(poly, 2, box.lo.z, -1);
  poly = clip_halfspace(poly, 2, box.hi.z, +1);
  return poly;
}

Vec3 polygon_area_vector(const std::vector<Vec3>& poly) {
  Vec3 area{};
  if (poly.size() < 3) return area;
  for (std::size_t i = 1; i + 1 < poly.size(); ++i)
    area += 0.5 * cross(poly[i] - poly[0], poly[i + 1] - poly[0]);
  return area;
}

}  // namespace columbia::cartesian
