// Solution-adaptive mesh refinement.
//
// Cart3D's meshes are *adaptively refined*: beyond the geometry-driven
// refinement of the initial mesh (paper Sec. V, "14 levels of adaptive
// subdivision" for the SSLV), cells are subdivided where the flow demands
// it. This module refines a flagged subset of cells, restores 2:1 balance,
// re-classifies cut cells, and re-establishes the SFC ordering — returning
// a mesh indistinguishable from a first-build at the finer resolution.
#pragma once

#include <vector>

#include "cartesian/cart_mesh.hpp"
#include "euler/state.hpp"

namespace columbia::cartesian {

/// Refines every flagged cell one level (deepening max_level if needed),
/// restores 2:1 balance, re-classifies against `surface` (may be null for
/// geometry-free meshes), and rebuilds SFC order + faces.
/// `flags` is parallel to m.cells.
CartMesh refine_cells(const CartMesh& m, const geom::TriSurface* surface,
                      const std::vector<bool>& flags,
                      SfcKind sfc = SfcKind::PeanoHilbert,
                      real_t min_fluid_frac = 0.05);

/// Flags the `fraction` of cells with the largest density jumps across
/// their faces (undivided gradient indicator — the standard shock/feature
/// sensor).
std::vector<bool> flag_by_density_jump(const CartMesh& m,
                                       std::span<const euler::Cons> solution,
                                       real_t fraction = 0.1);

}  // namespace columbia::cartesian
