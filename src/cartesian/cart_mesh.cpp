#include "cartesian/cart_mesh.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "cartesian/clip.hpp"
#include "geom/tribox.hpp"
#include "sfc/hilbert.hpp"
#include "sfc/morton.hpp"
#include "sfc/sfc_partition.hpp"
#include "support/assert.hpp"

namespace columbia::cartesian {

using geom::Aabb;
using geom::Vec3;

namespace {

/// Packs (level, anchor) into a hash key: 4 bits level, 20 bits per coord.
std::uint64_t pack_key(int level, const std::array<std::uint32_t, 3>& a) {
  // 4-bit level field: levels live in [-8, 7] (sub-base coarsening goes
  // negative), which is injective modulo 16.
  return (std::uint64_t(level & 0xF) << 60) | (std::uint64_t(a[0]) << 40) |
         (std::uint64_t(a[1]) << 20) | std::uint64_t(a[2]);
}

struct Proto {
  std::array<std::uint32_t, 3> anchor;
  std::int8_t level;
};

}  // namespace

index_t CartMesh::num_cut_cells() const {
  index_t n = 0;
  for (const CartCell& c : cells)
    if (c.cut) ++n;
  return n;
}

real_t CartMesh::cell_width(int level, int axis) const {
  const real_t extent =
      axis == 0 ? domain.hi.x - domain.lo.x
                : (axis == 1 ? domain.hi.y - domain.lo.y
                             : domain.hi.z - domain.lo.z);
  // ldexp handles the negative levels created by sub-base coarsening.
  return extent / std::ldexp(real_t(base_n), level);
}

Aabb CartMesh::cell_box(const CartCell& c) const {
  const real_t n_fine = real_t(std::uint32_t(base_n) << max_level);
  const std::uint32_t span = cell_span(c);
  Aabb box;
  const Vec3 ext = domain.hi - domain.lo;
  box.lo = domain.lo + Vec3{ext.x * real_t(c.anchor[0]) / n_fine,
                            ext.y * real_t(c.anchor[1]) / n_fine,
                            ext.z * real_t(c.anchor[2]) / n_fine};
  box.hi = domain.lo + Vec3{ext.x * real_t(c.anchor[0] + span) / n_fine,
                            ext.y * real_t(c.anchor[1] + span) / n_fine,
                            ext.z * real_t(c.anchor[2] + span) / n_fine};
  return box;
}

Vec3 CartMesh::cell_center(const CartCell& c) const {
  return cell_box(c).center();
}

real_t CartMesh::cell_volume(const CartCell& c) const {
  return cell_width(c.level, 0) * cell_width(c.level, 1) *
         cell_width(c.level, 2) * c.fluid_frac;
}

real_t CartMesh::total_fluid_volume() const {
  real_t v = 0;
  for (const CartCell& c : cells) v += cell_volume(c);
  return v;
}

namespace {

/// Candidate triangles possibly overlapping `box`, by brute AABB test.
/// Surfaces in this repo stay small enough (1e4-1e5 tris) that the n_cells
/// x n_tris AABB prefilter dominated by refinement locality is acceptable.
void candidates(const geom::TriSurface& s,
                const std::vector<Aabb>& tri_boxes, const Aabb& box,
                std::vector<index_t>& out) {
  out.clear();
  for (index_t t = 0; t < s.num_triangles(); ++t)
    if (tri_boxes[std::size_t(t)].overlaps(box)) out.push_back(t);
}

bool intersects_surface(const geom::TriSurface& s,
                        std::span<const index_t> cand, const Aabb& box) {
  for (index_t t : cand) {
    const geom::Triangle& tri = s.triangle(t);
    if (geom::triangle_box_overlap(s.vertex(tri.v[0]), s.vertex(tri.v[1]),
                                   s.vertex(tri.v[2]), box))
      return true;
  }
  return false;
}

}  // namespace

std::uint64_t sfc_key_of(const CartMesh& m, const CartCell& c, SfcKind kind) {
  const std::uint32_t half = m.cell_span(c) / 2;
  const std::uint32_t x = c.anchor[0] + half;
  const std::uint32_t y = c.anchor[1] + half;
  const std::uint32_t z = c.anchor[2] + half;
  if (kind == SfcKind::Morton) return sfc::morton3(x, y, z);
  // Bits needed to address finest cell centers.
  int bits = 1;
  while ((std::uint32_t(m.base_n) << m.max_level) >> bits) ++bits;
  bits = std::min(bits + 1, 21);
  return sfc::hilbert3(x, y, z, bits);
}

void sort_cells_by_sfc(CartMesh& m, SfcKind kind) {
  m.sfc_keys.resize(m.cells.size());
  for (std::size_t i = 0; i < m.cells.size(); ++i)
    m.sfc_keys[i] = sfc_key_of(m, m.cells[i], kind);
  const auto order = sfc::sort_order(m.sfc_keys);
  std::vector<CartCell> sorted(m.cells.size());
  std::vector<std::uint64_t> skeys(m.cells.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    sorted[i] = m.cells[std::size_t(order[i])];
    skeys[i] = m.sfc_keys[std::size_t(order[i])];
  }
  m.cells = std::move(sorted);
  m.sfc_keys = std::move(skeys);
}

void build_faces(CartMesh& m) {
  m.faces.clear();
  m.boundary_faces.clear();
  std::unordered_map<std::uint64_t, index_t> at;
  at.reserve(m.cells.size() * 2);
  for (std::size_t i = 0; i < m.cells.size(); ++i)
    at[pack_key(m.cells[i].level, m.cells[i].anchor)] = index_t(i);
  const std::int64_t n_fine =
      std::int64_t(std::uint32_t(m.base_n) << m.max_level);

  for (std::size_t ci = 0; ci < m.cells.size(); ++ci) {
    const CartCell& c = m.cells[ci];
    const std::int64_t span = std::int64_t(m.cell_span(c));
    const Aabb box = m.cell_box(c);
    const int a1[3] = {1, 2, 0}, a2[3] = {2, 0, 1};
    for (int axis = 0; axis < 3; ++axis) {
      const real_t face_area = m.cell_width(c.level, a1[axis]) *
                               m.cell_width(c.level, a2[axis]);
      for (int dir = -1; dir <= 1; dir += 2) {
        std::array<std::int64_t, 3> q = {c.anchor[0], c.anchor[1],
                                         c.anchor[2]};
        q[std::size_t(axis)] += dir > 0 ? span : -1;

        Vec3 fcenter = box.center();
        if (axis == 0) fcenter.x = dir > 0 ? box.hi.x : box.lo.x;
        if (axis == 1) fcenter.y = dir > 0 ? box.hi.y : box.lo.y;
        if (axis == 2) fcenter.z = dir > 0 ? box.hi.z : box.lo.z;

        if (q[std::size_t(axis)] < 0 || q[std::size_t(axis)] >= n_fine) {
          CartFace f;
          f.left = index_t(ci);
          f.right = kInvalidIndex;
          f.axis = std::int8_t(dir > 0 ? axis : -(axis + 1));
          f.area = face_area * c.fluid_frac;
          f.center = fcenter;
          m.boundary_faces.push_back(f);
          continue;
        }

        // Same-level neighbor: the +direction side owns the face.
        const std::array<std::uint32_t, 3> same = {
            std::uint32_t(q[0]) / std::uint32_t(span) * std::uint32_t(span),
            std::uint32_t(q[1]) / std::uint32_t(span) * std::uint32_t(span),
            std::uint32_t(q[2]) / std::uint32_t(span) * std::uint32_t(span)};
        const auto it = at.find(pack_key(c.level, same));
        if (it != at.end()) {
          if (dir > 0) {
            const CartCell& nb = m.cells[std::size_t(it->second)];
            CartFace f;
            f.left = index_t(ci);
            f.right = it->second;
            f.axis = std::int8_t(axis);
            f.area = face_area * std::min(c.fluid_frac, nb.fluid_frac);
            f.center = fcenter;
            if (f.area > 0) m.faces.push_back(f);
          }
          continue;
        }
        // Coarser neighbor: the finer cell owns the face.
        for (int lc = int(c.level) - 1; lc >= -8; --lc) {
          const std::uint32_t cspan = 1u << (m.max_level - lc);
          const std::array<std::uint32_t, 3> aligned = {
              std::uint32_t(q[0]) / cspan * cspan,
              std::uint32_t(q[1]) / cspan * cspan,
              std::uint32_t(q[2]) / cspan * cspan};
          const auto itc = at.find(pack_key(lc, aligned));
          if (itc == at.end()) continue;
          const CartCell& nb = m.cells[std::size_t(itc->second)];
          CartFace f;
          f.axis = std::int8_t(axis);
          f.area = face_area * std::min(c.fluid_frac, nb.fluid_frac);
          f.center = fcenter;
          if (dir > 0) {
            f.left = index_t(ci);
            f.right = itc->second;
          } else {
            f.left = itc->second;
            f.right = index_t(ci);
          }
          if (f.area > 0) m.faces.push_back(f);
          break;
        }
        // Finer neighbors add the face from their side.
      }
    }
  }
}

CartMesh build_cart_mesh(const geom::TriSurface& surface, const Aabb& domain,
                         const CartMeshOptions& opt) {
  COLUMBIA_REQUIRE(opt.base_n >= 2 && opt.max_level >= 0);
  COLUMBIA_REQUIRE(opt.max_level <= 7);  // pack_key level field
  COLUMBIA_REQUIRE((std::uint64_t(opt.base_n) << opt.max_level) <= (1u << 20));

  CartMesh m;
  m.domain = domain;
  m.base_n = opt.base_n;
  m.max_level = opt.max_level;

  std::vector<Aabb> tri_boxes(std::size_t(surface.num_triangles()));
  for (index_t t = 0; t < surface.num_triangles(); ++t)
    tri_boxes[std::size_t(t)] = surface.triangle_bounds(t);

  // 1) Base grid.
  std::vector<Proto> active;
  const std::uint32_t base_span = 1u << opt.max_level;
  for (std::uint32_t k = 0; k < std::uint32_t(opt.base_n); ++k)
    for (std::uint32_t j = 0; j < std::uint32_t(opt.base_n); ++j)
      for (std::uint32_t i = 0; i < std::uint32_t(opt.base_n); ++i)
        active.push_back(
            {{i * base_span, j * base_span, k * base_span}, 0});

  auto proto_box = [&](const Proto& p) {
    CartCell c;
    c.anchor = p.anchor;
    c.level = p.level;
    return m.cell_box(c);
  };

  // 2) Refine cells that intersect the surface, level by level.
  std::vector<index_t> cand;
  for (int lvl = 0; lvl < opt.max_level; ++lvl) {
    std::vector<Proto> next;
    next.reserve(active.size());
    for (const Proto& p : active) {
      if (int(p.level) != lvl) {
        next.push_back(p);
        continue;
      }
      const Aabb box = proto_box(p);
      candidates(surface, tri_boxes, box, cand);
      if (!intersects_surface(surface, cand, box)) {
        next.push_back(p);
        continue;
      }
      const std::uint32_t half = (1u << (opt.max_level - p.level)) / 2;
      for (int oc = 0; oc < 8; ++oc) {
        Proto child;
        child.level = std::int8_t(p.level + 1);
        child.anchor = {p.anchor[0] + ((oc & 1) ? half : 0),
                        p.anchor[1] + ((oc & 2) ? half : 0),
                        p.anchor[2] + ((oc & 4) ? half : 0)};
        next.push_back(child);
      }
    }
    active = std::move(next);
  }

  // 3) 2:1 balance: split any cell with a face neighbor two or more levels
  // finer. Iterate to a fixed point (propagation is monotone).
  bool changed = true;
  while (changed) {
    changed = false;
    std::unordered_map<std::uint64_t, index_t> at;
    at.reserve(active.size() * 2);
    for (std::size_t i = 0; i < active.size(); ++i)
      at[pack_key(active[i].level, active[i].anchor)] = index_t(i);
    const std::int64_t n_fine =
        std::int64_t(std::uint32_t(opt.base_n) << opt.max_level);

    std::vector<bool> split(active.size(), false);
    for (const Proto& p : active) {
      if (p.level < 2) continue;
      const std::int64_t span = 1 << (opt.max_level - p.level);
      for (int axis = 0; axis < 3; ++axis)
        for (int dir = -1; dir <= 1; dir += 2) {
          std::array<std::int64_t, 3> q = {p.anchor[0], p.anchor[1],
                                           p.anchor[2]};
          q[std::size_t(axis)] += dir > 0 ? span : -1;
          if (q[std::size_t(axis)] < 0 || q[std::size_t(axis)] >= n_fine)
            continue;
          // Find the containing cell by walking up levels.
          for (int lc = int(p.level) - 2; lc >= 0; --lc) {
            const std::uint32_t cspan = 1u << (opt.max_level - lc);
            const std::array<std::uint32_t, 3> aligned = {
                std::uint32_t(q[0]) / cspan * cspan,
                std::uint32_t(q[1]) / cspan * cspan,
                std::uint32_t(q[2]) / cspan * cspan};
            const auto it = at.find(pack_key(lc, aligned));
            if (it != at.end()) {
              if (!split[std::size_t(it->second)]) {
                split[std::size_t(it->second)] = true;
                changed = true;
              }
              break;
            }
          }
        }
    }
    if (!changed) break;
    std::vector<Proto> next;
    next.reserve(active.size() + 8);
    for (std::size_t i = 0; i < active.size(); ++i) {
      const Proto& p = active[i];
      if (!split[i]) {
        next.push_back(p);
        continue;
      }
      const std::uint32_t half = (1u << (opt.max_level - p.level)) / 2;
      for (int oc = 0; oc < 8; ++oc) {
        Proto child;
        child.level = std::int8_t(p.level + 1);
        child.anchor = {p.anchor[0] + ((oc & 1) ? half : 0),
                        p.anchor[1] + ((oc & 2) ? half : 0),
                        p.anchor[2] + ((oc & 4) ? half : 0)};
        next.push_back(child);
      }
    }
    active = std::move(next);
  }

  // 4) Classify cells: cut / fluid / solid. Solid cells are dropped.
  const InsideClassifier classifier(surface);
  for (const Proto& p : active) {
    CartCell c;
    c.anchor = p.anchor;
    c.level = p.level;
    const Aabb box = m.cell_box(c);
    candidates(surface, tri_boxes, box, cand);
    if (intersects_surface(surface, cand, box)) {
      c.cut = true;
      c.fluid_frac = classifier.fluid_fraction(box, opt.classify_samples);
      if (c.fluid_frac < opt.min_fluid_frac) continue;  // effectively solid
      // Wall area vector: clipped surface polygons. Triangle normals point
      // out of the solid (into the fluid); the wall boundary of the fluid
      // control volume points the other way.
      Vec3 wall{};
      for (index_t t : cand) {
        const geom::Triangle& tri = surface.triangle(t);
        const auto poly =
            clip_triangle_to_box(surface.vertex(tri.v[0]),
                                 surface.vertex(tri.v[1]),
                                 surface.vertex(tri.v[2]), box);
        wall += polygon_area_vector(poly);
      }
      c.wall_area = -1.0 * wall;
    } else {
      if (classifier.inside(box.center())) continue;  // solid: drop
    }
    m.cells.push_back(c);
  }

  // 5) SFC ordering + 6) faces.
  sort_cells_by_sfc(m, opt.sfc);
  build_faces(m);
  return m;
}

CartMesh build_uniform_mesh(const Aabb& domain, int n_per_axis, SfcKind sfc,
                            int coarsenable_levels) {
  COLUMBIA_REQUIRE(coarsenable_levels >= 0);
  COLUMBIA_REQUIRE(n_per_axis % (1 << coarsenable_levels) == 0);
  CartMesh m;
  m.domain = domain;
  m.base_n = n_per_axis >> coarsenable_levels;
  m.max_level = coarsenable_levels;
  COLUMBIA_REQUIRE(m.base_n >= 1);
  for (std::uint32_t k = 0; k < std::uint32_t(n_per_axis); ++k)
    for (std::uint32_t j = 0; j < std::uint32_t(n_per_axis); ++j)
      for (std::uint32_t i = 0; i < std::uint32_t(n_per_axis); ++i) {
        CartCell c;
        c.anchor = {i, j, k};
        c.level = std::int8_t(coarsenable_levels);
        m.cells.push_back(c);
      }
  sort_cells_by_sfc(m, sfc);
  build_faces(m);
  return m;
}

std::vector<index_t> partition_cells(const CartMesh& m, index_t nparts,
                                     real_t cut_weight) {
  std::vector<real_t> w(m.cells.size());
  for (std::size_t i = 0; i < m.cells.size(); ++i)
    w[i] = m.cells[i].cut ? cut_weight : 1.0;
  return sfc::partition_weighted(m.sfc_keys, w, nparts);
}

PartitionSurfaceStats partition_surface_stats(const CartMesh& m,
                                              std::span<const index_t> part,
                                              index_t nparts) {
  std::vector<real_t> cells_in(std::size_t(nparts), 0.0);
  std::vector<real_t> cut_faces(std::size_t(nparts), 0.0);
  for (index_t p : part) COLUMBIA_REQUIRE(p >= 0 && p < nparts);
  for (std::size_t i = 0; i < part.size(); ++i)
    cells_in[std::size_t(part[i])] += 1.0;
  for (const CartFace& f : m.faces) {
    if (f.right == kInvalidIndex) continue;
    const index_t pl = part[std::size_t(f.left)];
    const index_t pr = part[std::size_t(f.right)];
    if (pl != pr) {
      cut_faces[std::size_t(pl)] += 1.0;
      cut_faces[std::size_t(pr)] += 1.0;
    }
  }
  PartitionSurfaceStats st;
  real_t mean_v = 0;
  index_t used = 0;
  for (index_t p = 0; p < nparts; ++p) {
    if (cells_in[std::size_t(p)] == 0) continue;
    st.mean_surface_to_volume +=
        cut_faces[std::size_t(p)] / cells_in[std::size_t(p)];
    mean_v += cells_in[std::size_t(p)];
    ++used;
  }
  if (used > 0) {
    st.mean_surface_to_volume /= real_t(used);
    mean_v /= real_t(used);
    st.ideal_cubic = 6.0 / std::cbrt(mean_v);
  }
  return st;
}

}  // namespace columbia::cartesian
