// Point-in-solid classification for watertight triangulations.
//
// The Cartesian mesh generator must classify cells as fluid, solid, or cut
// (paper Sec. V). Solidity queries use vertical (z-direction) ray casting
// against the component triangulation, accelerated by bucketing triangles
// into an (x, y) grid so each query touches only the triangles over its
// column.
#pragma once

#include <vector>

#include "geom/surface.hpp"

namespace columbia::cartesian {

class InsideClassifier {
 public:
  /// Builds the column index. `grid` controls the (x,y) bucket resolution.
  explicit InsideClassifier(const geom::TriSurface& surface, int grid = 64);

  /// True when p lies inside the solid (odd number of surface crossings
  /// below... i.e. along the -z ray).
  bool inside(const geom::Vec3& p) const;

  /// Fraction of `samples`^3 sub-points of the box that are in the fluid
  /// (outside the solid). 1 = fully fluid, 0 = fully solid.
  real_t fluid_fraction(const geom::Aabb& box, int samples = 3) const;

 private:
  const geom::TriSurface& surface_;
  geom::Aabb bounds_;
  int grid_;
  real_t dx_, dy_;
  std::vector<std::vector<index_t>> buckets_;  // triangle ids per (x,y) cell

  std::size_t bucket_of(real_t x, real_t y) const;
};

}  // namespace columbia::cartesian
