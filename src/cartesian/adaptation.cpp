#include "cartesian/adaptation.hpp"

#include <algorithm>
#include <memory>
#include <unordered_map>

#include "cartesian/clip.hpp"
#include "geom/tribox.hpp"
#include "support/assert.hpp"

namespace columbia::cartesian {

namespace {

std::uint64_t pack(int level, const std::array<std::uint32_t, 3>& a) {
  return (std::uint64_t(level & 0xF) << 60) | (std::uint64_t(a[0]) << 40) |
         (std::uint64_t(a[1]) << 20) | std::uint64_t(a[2]);
}

struct Proto {
  std::array<std::uint32_t, 3> anchor;
  std::int8_t level;
};

void split_into(const Proto& p, int max_level, std::vector<Proto>& out) {
  const std::uint32_t half = (1u << (max_level - p.level)) / 2;
  COLUMBIA_REQUIRE(half >= 1);
  for (int oc = 0; oc < 8; ++oc) {
    Proto c;
    c.level = std::int8_t(p.level + 1);
    c.anchor = {p.anchor[0] + ((oc & 1) ? half : 0),
                p.anchor[1] + ((oc & 2) ? half : 0),
                p.anchor[2] + ((oc & 4) ? half : 0)};
    out.push_back(c);
  }
}

}  // namespace

CartMesh refine_cells(const CartMesh& m, const geom::TriSurface* surface,
                      const std::vector<bool>& flags, SfcKind sfc,
                      real_t min_fluid_frac) {
  COLUMBIA_REQUIRE(flags.size() == m.cells.size());

  CartMesh out;
  out.domain = m.domain;
  out.base_n = m.base_n;
  out.max_level = m.max_level;

  // Deepen the unit lattice if any flagged cell already sits at max_level.
  bool deepen = false;
  for (std::size_t i = 0; i < m.cells.size(); ++i)
    if (flags[i] && int(m.cells[i].level) == m.max_level) deepen = true;
  const int shift = deepen ? 1 : 0;
  if (deepen) {
    out.max_level = m.max_level + 1;
    COLUMBIA_REQUIRE(out.max_level <= 7);
    COLUMBIA_REQUIRE((std::uint64_t(out.base_n) << out.max_level) <=
                     (1u << 20));
  }

  std::vector<Proto> active;
  active.reserve(m.cells.size() + 8);
  for (std::size_t i = 0; i < m.cells.size(); ++i) {
    Proto p;
    p.anchor = {m.cells[i].anchor[0] << shift, m.cells[i].anchor[1] << shift,
                m.cells[i].anchor[2] << shift};
    p.level = m.cells[i].level;
    if (flags[i])
      split_into(p, out.max_level, active);
    else
      active.push_back(p);
  }

  // Restore 2:1 balance (same fixed-point sweep as the initial build).
  bool changed = true;
  while (changed) {
    changed = false;
    std::unordered_map<std::uint64_t, index_t> at;
    at.reserve(active.size() * 2);
    for (std::size_t i = 0; i < active.size(); ++i)
      at[pack(active[i].level, active[i].anchor)] = index_t(i);
    const std::int64_t n_fine =
        std::int64_t(std::uint32_t(out.base_n) << out.max_level);

    std::vector<bool> split(active.size(), false);
    for (const Proto& p : active) {
      if (p.level < 2) continue;
      const std::int64_t span = 1 << (out.max_level - p.level);
      for (int axis = 0; axis < 3; ++axis)
        for (int dir = -1; dir <= 1; dir += 2) {
          std::array<std::int64_t, 3> q = {p.anchor[0], p.anchor[1],
                                           p.anchor[2]};
          q[std::size_t(axis)] += dir > 0 ? span : -1;
          if (q[std::size_t(axis)] < 0 || q[std::size_t(axis)] >= n_fine)
            continue;
          for (int lc = int(p.level) - 2; lc >= -8; --lc) {
            const std::uint32_t cspan = 1u << (out.max_level - lc);
            const std::array<std::uint32_t, 3> aligned = {
                std::uint32_t(q[0]) / cspan * cspan,
                std::uint32_t(q[1]) / cspan * cspan,
                std::uint32_t(q[2]) / cspan * cspan};
            const auto it = at.find(pack(lc, aligned));
            if (it != at.end()) {
              if (!split[std::size_t(it->second)]) {
                split[std::size_t(it->second)] = true;
                changed = true;
              }
              break;
            }
          }
        }
    }
    if (!changed) break;
    std::vector<Proto> next;
    next.reserve(active.size() + 8);
    for (std::size_t i = 0; i < active.size(); ++i) {
      if (split[i])
        split_into(active[i], out.max_level, next);
      else
        next.push_back(active[i]);
    }
    active = std::move(next);
  }

  // Classify against the surface (cut flags, fluid fractions, wall areas).
  std::vector<geom::Aabb> tri_boxes;
  const InsideClassifier* classifier = nullptr;
  std::unique_ptr<InsideClassifier> owned;
  if (surface != nullptr) {
    tri_boxes.resize(std::size_t(surface->num_triangles()));
    for (index_t t = 0; t < surface->num_triangles(); ++t)
      tri_boxes[std::size_t(t)] = surface->triangle_bounds(t);
    owned = std::make_unique<InsideClassifier>(*surface);
    classifier = owned.get();
  }

  for (const Proto& p : active) {
    CartCell c;
    c.anchor = p.anchor;
    c.level = p.level;
    if (surface != nullptr) {
      const geom::Aabb box = out.cell_box(c);
      bool cut = false;
      geom::Vec3 wall{};
      for (index_t t = 0; t < surface->num_triangles(); ++t) {
        if (!tri_boxes[std::size_t(t)].overlaps(box)) continue;
        const geom::Triangle& tri = surface->triangle(t);
        if (!cut &&
            geom::triangle_box_overlap(surface->vertex(tri.v[0]),
                                       surface->vertex(tri.v[1]),
                                       surface->vertex(tri.v[2]), box))
          cut = true;
        wall += polygon_area_vector(clip_triangle_to_box(
            surface->vertex(tri.v[0]), surface->vertex(tri.v[1]),
            surface->vertex(tri.v[2]), box));
      }
      if (cut) {
        c.cut = true;
        c.fluid_frac = classifier->fluid_fraction(box, 3);
        if (c.fluid_frac < min_fluid_frac) continue;
        c.wall_area = -1.0 * wall;
      } else if (classifier->inside(box.center())) {
        continue;  // fully solid
      }
    }
    out.cells.push_back(c);
  }

  sort_cells_by_sfc(out, sfc);
  build_faces(out);
  return out;
}

std::vector<bool> flag_by_density_jump(const CartMesh& m,
                                       std::span<const euler::Cons> solution,
                                       real_t fraction) {
  COLUMBIA_REQUIRE(solution.size() == m.cells.size());
  COLUMBIA_REQUIRE(fraction > 0 && fraction <= 1);
  std::vector<real_t> indicator(m.cells.size(), 0.0);
  for (const CartFace& f : m.faces) {
    if (f.right == kInvalidIndex) continue;
    const real_t jump = std::abs(solution[std::size_t(f.left)][0] -
                                 solution[std::size_t(f.right)][0]);
    indicator[std::size_t(f.left)] =
        std::max(indicator[std::size_t(f.left)], jump);
    indicator[std::size_t(f.right)] =
        std::max(indicator[std::size_t(f.right)], jump);
  }
  std::vector<real_t> sorted = indicator;
  std::sort(sorted.begin(), sorted.end());
  const std::size_t cut_idx =
      std::size_t(real_t(sorted.size()) * (1.0 - fraction));
  const real_t threshold =
      sorted[std::min(cut_idx, sorted.size() - 1)];
  std::vector<bool> flags(m.cells.size(), false);
  for (std::size_t i = 0; i < flags.size(); ++i)
    flags[i] = indicator[i] > threshold && indicator[i] > 0;
  return flags;
}

}  // namespace columbia::cartesian
