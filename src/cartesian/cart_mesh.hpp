// Multilevel adaptively-refined Cartesian mesh with embedded boundaries.
//
// This is the Cart3D substrate of the paper (Sec. V): a Cartesian mesh is
// generated automatically around a watertight component triangulation by
// recursive subdivision of the cells that intersect geometry, with 2:1
// level balance; cells fully inside the solid are discarded; cells crossed
// by the surface become cut cells. Cells are ordered along a space-filling
// curve (Morton or Peano-Hilbert), which later drives both mesh coarsening
// and domain decomposition.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "cartesian/inside.hpp"
#include "geom/surface.hpp"
#include "support/types.hpp"

namespace columbia::cartesian {

enum class SfcKind { Morton, PeanoHilbert };

struct CartCell {
  /// Min corner in finest-grid integer units.
  std::array<std::uint32_t, 3> anchor;
  /// Refinement level: 0 = base grid, up to options.max_level.
  std::int8_t level;  // may go negative after sub-base coarsening
  bool cut = false;
  /// Fluid volume fraction (1 for uncut cells).
  real_t fluid_frac = 1.0;
  /// Area vector of the embedded surface inside this cell, oriented out of
  /// the fluid (into the solid). Zero for uncut cells.
  geom::Vec3 wall_area;
};

struct CartFace {
  index_t left;   // cell index
  index_t right;  // cell index, or kInvalidIndex for a domain-boundary face
  std::int8_t axis;  // 0, 1, 2; normal points from left to right (+axis)
  real_t area;       // fluid-scaled face area
  geom::Vec3 center;
};

struct CartMeshOptions {
  int base_n = 8;     // base cells per axis (level 0)
  int max_level = 3;  // maximum subdivision depth
  SfcKind sfc = SfcKind::PeanoHilbert;
  /// Minimum fluid fraction kept for a cut cell (the classic "small cell"
  /// clamp); cells below it are treated as solid and dropped.
  real_t min_fluid_frac = 0.05;
  int classify_samples = 3;  // fluid_fraction sampling resolution per axis
};

class CartMesh {
 public:
  geom::Aabb domain;
  int base_n = 0;
  int max_level = 0;
  std::vector<CartCell> cells;    // SFC-ordered
  std::vector<std::uint64_t> sfc_keys;  // parallel to cells
  std::vector<CartFace> faces;          // interior fluid faces
  std::vector<CartFace> boundary_faces;  // domain boundary (farfield)

  index_t num_cells() const { return index_t(cells.size()); }
  index_t num_cut_cells() const;

  /// Edge length of a level-L cell along axis a.
  real_t cell_width(int level, int axis) const;
  geom::Vec3 cell_center(const CartCell& c) const;
  geom::Aabb cell_box(const CartCell& c) const;
  real_t cell_volume(const CartCell& c) const;  // fluid-scaled

  /// Span of the cell in finest-grid units (levels may be negative after
  /// sub-base coarsening, giving spans larger than the base cell).
  std::uint32_t cell_span(const CartCell& c) const {
    return 1u << (max_level - int(c.level));
  }

  /// Total fluid volume (sum of cell volumes).
  real_t total_fluid_volume() const;
};

/// Generates the adapted cut-cell mesh around `surface`.
/// The paper quotes 3-5 million cells/minute for this step on Itanium2
/// (Sec. IV); the generator is a single-threaded direct implementation.
CartMesh build_cart_mesh(const geom::TriSurface& surface,
                         const geom::Aabb& domain,
                         const CartMeshOptions& opt = {});

/// Uniform mesh with no geometry (all cells fluid, no cut cells).
/// `coarsenable_levels` places all cells at that refinement level above a
/// base grid of n_per_axis / 2^levels, so the SFC coarsener can build that
/// many multigrid levels below it. n_per_axis must be divisible by
/// 2^coarsenable_levels.
CartMesh build_uniform_mesh(const geom::Aabb& domain, int n_per_axis,
                            SfcKind sfc = SfcKind::PeanoHilbert,
                            int coarsenable_levels = 0);

/// SFC key of a cell's center (used for ordering and partitioning).
std::uint64_t sfc_key_of(const CartMesh& m, const CartCell& c, SfcKind kind);

/// Reorders cells (and keys) along the SFC.
void sort_cells_by_sfc(CartMesh& m, SfcKind kind);

/// Rebuilds interior and boundary face lists from the cell list. Handles
/// arbitrary level differences across a face (the finer side owns it).
void build_faces(CartMesh& m);

/// SFC partition of the cells into contiguous curve segments, cut cells
/// weighted `cut_weight` (2.1 in the paper's Fig. 12).
std::vector<index_t> partition_cells(const CartMesh& m, index_t nparts,
                                     real_t cut_weight = 2.1);

struct PartitionSurfaceStats {
  real_t mean_surface_to_volume = 0;  // averaged over parts
  real_t ideal_cubic = 0;             // 6 * V^(2/3) / V for the mean part
};

/// Communication quality of a partition: cut faces per part vs the ideal
/// cube (paper: SFC partitions "track that of an idealized cubic
/// partitioner").
PartitionSurfaceStats partition_surface_stats(const CartMesh& m,
                                              std::span<const index_t> part,
                                              index_t nparts);

}  // namespace columbia::cartesian
