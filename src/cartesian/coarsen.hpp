// Single-pass SFC mesh coarsening.
//
// The paper (Sec. V, Figs. 10-11): "Tracing along the SFC, cells that
// collapse into the same coarse cell ('siblings') are collected whenever
// they are all the same size, and the corresponding coarse cell is inserted
// into a new mesh structure... the coarse mesh is automatically generated
// with its cells already ordered along the SFC" — so the result can be
// re-coarsened immediately. Measured coarsening ratios exceed 7 on typical
// adapted meshes.
#pragma once

#include "cartesian/cart_mesh.hpp"

namespace columbia::cartesian {

struct CoarsenResult {
  CartMesh coarse;
  /// fine_to_coarse[i] = index of the coarse cell covering fine cell i.
  std::vector<index_t> fine_to_coarse;

  real_t coarsening_ratio() const {
    return coarse.cells.empty()
               ? 0.0
               : real_t(fine_to_coarse.size()) / real_t(coarse.cells.size());
  }
};

/// One coarsening sweep. Octets of same-size siblings contiguous on the
/// curve collapse into their parent; everything else passes through.
/// Cells already at level 0 (the base grid) never coarsen.
CoarsenResult coarsen_sfc(const CartMesh& fine, SfcKind kind = SfcKind::PeanoHilbert);

/// Builds an n-level multigrid hierarchy: [0] = fine mesh copy, then each
/// successive entry one sweep coarser. Stops early if a sweep achieves no
/// reduction. maps[l] holds fine_to_coarse from level l to l+1.
struct CartHierarchy {
  std::vector<CartMesh> levels;
  std::vector<std::vector<index_t>> maps;
};

CartHierarchy build_hierarchy(const CartMesh& fine, int num_levels,
                              SfcKind kind = SfcKind::PeanoHilbert);

}  // namespace columbia::cartesian
