#include "resil/guard.hpp"

#include <algorithm>
#include <cmath>

#include "obs/obs.hpp"
#include "support/assert.hpp"

namespace columbia::resil {

const char* outcome_name(SolveOutcome o) {
  switch (o) {
    case SolveOutcome::Ok: return "ok";
    case SolveOutcome::Recovered: return "recovered";
    case SolveOutcome::Degraded: return "degraded";
    case SolveOutcome::Failed: return "failed";
  }
  return "?";
}

GuardedSolveResult guarded_solve(const GuardedSolveOptions& opt,
                                 int max_cycles, real_t orders,
                                 const GuardCallbacks& cb) {
  COLUMBIA_REQUIRE(cb.residual_norm && cb.run_cycle && cb.snapshot &&
                   cb.restore);
  OBS_SPAN("resil.guarded_solve");
  GuardedSolveResult out;
  std::uint64_t cycle = 0;

  if (opt.resume && !opt.checkpoint_path.empty()) {
    if (auto c = try_read_checkpoint_file(opt.checkpoint_path);
        c && c->solver == cb.solver) {
      cb.restore(*c);
      out.history.assign(c->history.begin(), c->history.end());
      cycle = c->cycle;
      out.resumed = true;
      out.resumed_from = cycle;
      OBS_COUNT("resil.checkpoint.restore", 1);
    }
  }
  if (out.history.empty()) out.history.push_back(cb.residual_norm());

  const real_t target = out.history.front() * std::pow(10.0, -orders);
  real_t best = out.history.front();
  for (real_t r : out.history)
    if (std::isfinite(r)) best = std::min(best, r);
  if (!out.history.empty() && out.history.back() <= target) return out;

  Checkpoint good = cb.snapshot(cycle, out.history);
  int retries_left = opt.guard.max_retries;

  while (cycle < std::uint64_t(std::max(0, max_cycles))) {
    const real_t r = cb.run_cycle();
    const bool diverged =
        !std::isfinite(r) ||
        (best > 0 && r > opt.guard.blowup_factor * best);
    if (diverged) {
      if (retries_left <= 0) {
        out.outcome = SolveOutcome::Failed;
        OBS_COUNT("resil.solve.failed", 1);
        return out;
      }
      --retries_left;
      OBS_SPAN("resil.recover");
      OBS_COUNT("resil.recover.rollback", 1);
      OBS_COUNT("resil.recover.backoff", 1);
      cb.restore(good);
      out.history.assign(good.history.begin(), good.history.end());
      cycle = good.cycle;
      if (cb.backoff) cb.backoff();
      ++out.rollbacks;
      ++out.backoffs;
      continue;
    }
    ++cycle;
    out.history.push_back(r);
    best = std::min(best, r);
    const bool due = opt.checkpoint_interval > 0 &&
                     cycle % std::uint64_t(opt.checkpoint_interval) == 0;
    if (due || r <= target) {
      good = cb.snapshot(cycle, out.history);
      OBS_COUNT("resil.checkpoint.write", 1);
      if (!opt.checkpoint_path.empty() && opt.checkpoint_write)
        write_checkpoint_file(opt.checkpoint_path, good);
    }
    if (r <= target) break;
  }

  out.outcome =
      out.rollbacks > 0 ? SolveOutcome::Recovered : SolveOutcome::Ok;
  return out;
}

}  // namespace columbia::resil
