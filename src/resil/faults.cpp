#include "resil/faults.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/obs.hpp"
#include "resil/crc32.hpp"
#include "support/random.hpp"

namespace columbia::resil {

namespace {

/// Distinct salt per fault kind so the same site draws independently for
/// each kind.
constexpr std::array<std::uint64_t, kNumFaultKinds> kKindSalt = {
    0x9e3779b97f4a7c15ull, 0xc2b2ae3d27d4eb4full, 0x165667b19e3779f9ull,
    0x27d4eb2f165667c5ull, 0x85ebca6b27d4eb4full, 0xc2b2ae3585ebca77ull,
    0xff51afd7ed558ccdull, 0xc4ceb9fe1a85ec53ull};

double parse_number(const std::string& tok) {
  std::size_t pos = 0;
  const double v = std::stod(tok, &pos);
  if (pos != tok.size()) throw std::invalid_argument("trailing characters");
  return v;
}

void bump_obs(FaultKind k) {
  switch (k) {
    case FaultKind::HaloCorrupt: OBS_COUNT("resil.fault.halo_corrupt", 1); break;
    case FaultKind::HaloDrop: OBS_COUNT("resil.fault.halo_drop", 1); break;
    case FaultKind::StateNaN: OBS_COUNT("resil.fault.state_nan", 1); break;
    case FaultKind::CaseThrow: OBS_COUNT("resil.fault.case_throw", 1); break;
    case FaultKind::MsgDelay: OBS_COUNT("resil.fault.msg_delay", 1); break;
    case FaultKind::MsgDrop: OBS_COUNT("resil.fault.msg_drop", 1); break;
    case FaultKind::ConnReset: OBS_COUNT("resil.fault.conn_reset", 1); break;
    case FaultKind::PeerHang: OBS_COUNT("resil.fault.peer_hang", 1); break;
  }
}

}  // namespace

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::HaloCorrupt: return "halo_corrupt";
    case FaultKind::HaloDrop: return "halo_drop";
    case FaultKind::StateNaN: return "state_nan";
    case FaultKind::CaseThrow: return "case_throw";
    case FaultKind::MsgDelay: return "msg_delay";
    case FaultKind::MsgDrop: return "msg_drop";
    case FaultKind::ConnReset: return "conn_reset";
    case FaultKind::PeerHang: return "peer_hang";
  }
  return "?";
}

const std::string& fault_grammar_help() {
  static const std::string help = [] {
    std::string s =
        "COLUMBIA_FAULTS grammar: seed=<u64>[,<kind>=<rate>[@<max>]]...\n"
        "  kinds:";
    for (int k = 0; k < kNumFaultKinds; ++k) {
      s += k == 0 ? " " : " | ";
      s += fault_kind_name(FaultKind(k));
    }
    s +=
        "\n"
        "  <rate> is the per-opportunity probability in [0, 1]; @<max> caps\n"
        "  the total injections of that kind. Exception: msg_delay's @ suffix\n"
        "  is the injected latency in milliseconds (default 10).\n"
        "  example: seed=42,state_nan=0.25@1,msg_drop=0.1,peer_hang=1@1";
    return s;
  }();
  return help;
}

namespace {
/// Distinguishes our own diagnostics from std::stod's bare
/// invalid_argument inside parse_fault_spec's catch blocks.
struct ParseFail : std::invalid_argument {
  using std::invalid_argument::invalid_argument;
};
}  // namespace

FaultSpec parse_fault_spec(const std::string& spec) {
  // Every rejection names the offending token AND restates the whole
  // grammar: a typo'd COLUMBIA_FAULTS is usually fixed from the error
  // message alone, without digging up this file.
  const auto fail = [](const std::string& detail) {
    throw ParseFail("COLUMBIA_FAULTS: " + detail + "\n" +
                    fault_grammar_help());
  };
  FaultSpec out;
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t end = spec.find(',', start);
    if (end == std::string::npos) end = spec.size();
    const std::string tok = spec.substr(start, end - start);
    start = end + 1;
    if (tok.empty()) {
      if (end == spec.size()) break;
      continue;
    }
    const std::size_t eq = tok.find('=');
    if (eq == std::string::npos)
      fail("token '" + tok + "' is not key=value");
    const std::string key = tok.substr(0, eq);
    std::string val = tok.substr(eq + 1);
    try {
      if (key == "seed") {
        out.seed = std::stoull(val);
        continue;
      }
      int kind = -1;
      for (int k = 0; k < kNumFaultKinds; ++k)
        if (key == fault_kind_name(FaultKind(k))) kind = k;
      if (kind < 0) fail("unknown fault kind '" + key + "' in '" + tok + "'");
      std::uint64_t at_value = 0;
      bool has_at = false;
      const std::size_t at = val.find('@');
      if (at != std::string::npos) {
        at_value = std::stoull(val.substr(at + 1));
        has_at = true;
        val = val.substr(0, at);
      }
      const double rate = parse_number(val);
      if (!(rate >= 0.0 && rate <= 1.0))
        fail("rate outside [0, 1] in '" + tok + "'");
      out.rate[std::size_t(kind)] = rate;
      if (has_at) {
        // msg_delay's @ suffix parameterizes the fault (latency in ms)
        // rather than capping it; every other kind's @ is the budget cap.
        if (FaultKind(kind) == FaultKind::MsgDelay)
          out.param[std::size_t(kind)] = at_value;
        else
          out.max_count[std::size_t(kind)] = at_value;
      }
    } catch (const ParseFail&) {
      throw;
    } catch (const std::exception&) {
      fail("bad value in '" + tok + "'");
    }
  }
  return out;
}

std::string render_fault_spec(const FaultSpec& spec) {
  if (!spec.any()) return "";
  std::string out = "seed=" + std::to_string(spec.seed);
  char buf[64];
  for (int k = 0; k < kNumFaultKinds; ++k) {
    const double rate = spec.rate[std::size_t(k)];
    if (rate <= 0) continue;
    std::snprintf(buf, sizeof(buf), "%.10g", rate);
    out += ',';
    out += fault_kind_name(FaultKind(k));
    out += '=';
    out += buf;
    if (FaultKind(k) == FaultKind::MsgDelay) {
      // The @ suffix is the delay latency for this kind; render it when it
      // differs from the parser's default so the string round-trips.
      if (spec.param[std::size_t(k)] != 10) {
        out += '@';
        out += std::to_string(spec.param[std::size_t(k)]);
      }
    } else if (spec.max_count[std::size_t(k)] !=
               std::numeric_limits<std::uint64_t>::max()) {
      out += '@';
      out += std::to_string(spec.max_count[std::size_t(k)]);
    }
  }
  return out;
}

InjectedFault::InjectedFault(FaultKind kind, std::uint64_t site)
    : std::runtime_error(std::string("injected fault: ") +
                         fault_kind_name(kind) + " at site " +
                         std::to_string(site)),
      kind_(kind),
      site_(site) {}

FaultInjector& FaultInjector::global() {
  static FaultInjector* inj = [] {
    auto* p = new FaultInjector;
    if (const char* s = std::getenv("COLUMBIA_FAULTS"); s != nullptr && *s)
      p->configure(parse_fault_spec(s));
    return p;
  }();
  return *inj;
}

void FaultInjector::configure(const FaultSpec& spec) {
  spec_ = spec;
  for (auto& f : fired_) f.store(0, std::memory_order_relaxed);
  armed_.store(spec.any(), std::memory_order_relaxed);
}

void FaultInjector::reset() {
  spec_ = FaultSpec{};
  for (auto& f : fired_) f.store(0, std::memory_order_relaxed);
  exchange_seq_.store(0, std::memory_order_relaxed);
  armed_.store(false, std::memory_order_relaxed);
}

bool FaultInjector::should_inject(FaultKind k, std::uint64_t site) {
  if (!armed_.load(std::memory_order_relaxed)) return false;
  const std::size_t ki = std::size_t(k);
  const double rate = spec_.rate[ki];
  if (rate <= 0) return false;
  // Pure (seed, kind, site) decision: interleavings cannot change the set.
  SplitMix64 gen(spec_.seed ^ kKindSalt[ki] ^
                 (site * 0x2545f4914f6cdd1dull + 0x9e3779b97f4a7c15ull));
  const double u = double(gen.next() >> 11) * 0x1.0p-53;
  if (u >= rate) return false;
  // Budget cap: claim a slot; a full budget suppresses the injection.
  auto& fired = fired_[ki];
  std::uint64_t cur = fired.load(std::memory_order_relaxed);
  while (cur < spec_.max_count[ki]) {
    if (fired.compare_exchange_weak(cur, cur + 1,
                                    std::memory_order_relaxed)) {
      bump_obs(k);
      return true;
    }
  }
  return false;
}

void FaultInjector::maybe_throw(FaultKind k, std::uint64_t site) {
  if (should_inject(k, site)) throw InjectedFault(k, site);
}

std::uint64_t FaultInjector::injected_total() const {
  std::uint64_t t = 0;
  for (const auto& f : fired_) t += f.load(std::memory_order_relaxed);
  return t;
}

std::uint64_t halo_site(std::uint64_t exchange_seq, std::uint64_t sender,
                        std::uint64_t receiver, std::uint64_t attempt) {
  SplitMix64 gen(exchange_seq * 0x100000001b3ull + sender * 0x10001ull +
                 receiver * 0x101ull + attempt);
  return gen.next();
}

std::uint64_t site_hash(std::uint64_t seed, std::uint64_t site) {
  SplitMix64 gen(seed * 0xff51afd7ed558ccdull ^ site);
  return gen.next();
}

std::vector<real_t> frame_payload(std::span<const real_t> payload) {
  std::vector<real_t> frame;
  frame.reserve(payload.size() + 2);
  frame.push_back(real_t(payload.size()));
  frame.push_back(real_t(
      crc32(payload.data(), payload.size() * sizeof(real_t))));
  frame.insert(frame.end(), payload.begin(), payload.end());
  return frame;
}

void frame_payload_into(std::span<const real_t> payload,
                        std::vector<real_t>& frame) {
  frame.resize(payload.size() + 2);
  frame[0] = real_t(payload.size());
  frame[1] =
      real_t(crc32(payload.data(), payload.size() * sizeof(real_t)));
  std::copy(payload.begin(), payload.end(), frame.begin() + 2);
}

bool unframe_payload(std::span<const real_t> frame,
                     std::vector<real_t>& payload) {
  if (frame.size() < 2) return false;
  const real_t declared = frame[0];
  if (!(declared >= 0) || declared != std::floor(declared)) return false;
  const std::size_t n = std::size_t(declared);
  if (frame.size() != n + 2) return false;
  const auto stored = std::uint32_t(frame[1]);
  const std::uint32_t computed =
      crc32(frame.data() + 2, n * sizeof(real_t));
  if (stored != computed) return false;
  payload.assign(frame.begin() + 2, frame.end());
  return true;
}

void corrupt_frame(std::vector<real_t>& frame, std::uint64_t site) {
  if (frame.size() <= 2) return;
  const std::size_t n = frame.size() - 2;
  const std::size_t k = 2 + std::size_t(site_hash(0x5eedull, site) % n);
  // Flip a mantissa bit so the checksum no longer matches (and the value
  // would be silently wrong without it).
  std::uint64_t bits;
  std::memcpy(&bits, &frame[k], sizeof(bits));
  bits ^= 1ull << 21;
  std::memcpy(&frame[k], &bits, sizeof(bits));
}

void drop_frame(std::vector<real_t>& frame) {
  if (frame.size() > 2) frame.resize(2);
}

}  // namespace columbia::resil
