// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320).
//
// The resilience layer checksums everything that crosses a failure
// boundary: checkpoint files on disk and halo-exchange payloads in flight.
// One shared table-driven implementation keeps the two formats honest with
// each other (a checkpoint written here validates against the same
// polynomial the halo frames use).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace columbia::resil {

inline const std::array<std::uint32_t, 256>& crc32_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[std::size_t(i)] = c;
    }
    return t;
  }();
  return table;
}

/// Checksum of `n` bytes. Pass a previous result as `crc` to extend a
/// running checksum over multiple buffers (streaming use).
inline std::uint32_t crc32(const void* data, std::size_t n,
                           std::uint32_t crc = 0) {
  const auto& table = crc32_table();
  const auto* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  for (std::size_t i = 0; i < n; ++i)
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  return ~crc;
}

}  // namespace columbia::resil
