#include "resil/checkpoint.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "resil/crc32.hpp"
#include "support/durable.hpp"

namespace columbia::resil {

namespace {

constexpr char kMagic[8] = {'C', 'O', 'L', 'C', 'K', 'P', 'T', '1'};
constexpr std::uint32_t kVersion = 1;

/// Accumulates the payload CRC alongside the raw writes so the trailing
/// checksum covers exactly the bytes between version and crc.
class CrcWriter {
 public:
  explicit CrcWriter(std::ostream& out) : out_(out) {}

  template <typename T>
  void put(const T& v) {
    out_.write(reinterpret_cast<const char*>(&v), sizeof(T));
    crc_ = crc32(&v, sizeof(T), crc_);
    bytes_ += sizeof(T);
  }
  void put_bytes(const void* p, std::size_t n) {
    out_.write(static_cast<const char*>(p), std::streamsize(n));
    crc_ = crc32(p, n, crc_);
    bytes_ += n;
  }

  std::uint32_t crc() const { return crc_; }
  std::size_t bytes() const { return bytes_; }

 private:
  std::ostream& out_;
  std::uint32_t crc_ = 0;
  std::size_t bytes_ = 0;
};

class CrcReader {
 public:
  explicit CrcReader(std::istream& in) : in_(in) {}

  template <typename T>
  T get() {
    T v;
    get_bytes(&v, sizeof(T));
    return v;
  }
  void get_bytes(void* p, std::size_t n) {
    in_.read(static_cast<char*>(p), std::streamsize(n));
    if (!in_)
      throw CheckpointError(CheckpointError::Kind::Truncated, "truncated");
    crc_ = crc32(p, n, crc_);
  }

  std::uint32_t crc() const { return crc_; }

 private:
  std::istream& in_;
  std::uint32_t crc_ = 0;
};

}  // namespace

const char* checkpoint_error_kind_name(CheckpointError::Kind k) {
  switch (k) {
    case CheckpointError::Kind::BadMagic: return "bad_magic";
    case CheckpointError::Kind::BadVersion: return "bad_version";
    case CheckpointError::Kind::Truncated: return "truncated";
    case CheckpointError::Kind::CrcMismatch: return "crc_mismatch";
    case CheckpointError::Kind::Malformed: return "malformed";
  }
  return "?";
}

std::size_t write_checkpoint(std::ostream& out, const Checkpoint& c) {
  out.write(kMagic, sizeof(kMagic));
  const std::uint32_t version = kVersion;
  out.write(reinterpret_cast<const char*>(&version), sizeof(version));

  CrcWriter w(out);
  w.put<std::uint32_t>(std::uint32_t(c.solver.size()));
  w.put_bytes(c.solver.data(), c.solver.size());
  w.put<std::uint64_t>(c.cycle);
  w.put<std::uint64_t>(c.state_stride);
  w.put<std::uint64_t>(std::uint64_t(c.history.size()));
  w.put_bytes(c.history.data(), c.history.size() * sizeof(double));
  w.put<std::uint64_t>(std::uint64_t(c.state.size()));
  w.put_bytes(c.state.data(), c.state.size() * sizeof(double));

  const std::uint32_t crc = w.crc();
  out.write(reinterpret_cast<const char*>(&crc), sizeof(crc));
  return sizeof(kMagic) + sizeof(version) + w.bytes() + sizeof(crc);
}

Checkpoint read_checkpoint(std::istream& in) {
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
    throw CheckpointError(CheckpointError::Kind::BadMagic, "bad magic");
  std::uint32_t version = 0;
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  if (!in)
    throw CheckpointError(CheckpointError::Kind::Truncated, "truncated");
  if (version != kVersion)
    throw CheckpointError(
        CheckpointError::Kind::BadVersion,
        "unsupported version " + std::to_string(version) + " (reader is " +
            std::to_string(kVersion) + ")");

  CrcReader r(in);
  Checkpoint c;
  const auto solver_len = r.get<std::uint32_t>();
  if (solver_len > 64)
    throw CheckpointError(CheckpointError::Kind::Malformed,
                          "implausible solver tag");
  c.solver.resize(solver_len);
  r.get_bytes(c.solver.data(), solver_len);
  c.cycle = r.get<std::uint64_t>();
  c.state_stride = r.get<std::uint64_t>();
  const auto nhist = r.get<std::uint64_t>();
  c.history.resize(nhist);
  r.get_bytes(c.history.data(), nhist * sizeof(double));
  const auto nstate = r.get<std::uint64_t>();
  c.state.resize(nstate);
  r.get_bytes(c.state.data(), nstate * sizeof(double));

  const std::uint32_t computed = r.crc();
  std::uint32_t stored = 0;
  in.read(reinterpret_cast<char*>(&stored), sizeof(stored));
  if (!in)
    throw CheckpointError(CheckpointError::Kind::Truncated, "truncated");
  if (stored != computed)
    throw CheckpointError(CheckpointError::Kind::CrcMismatch, "CRC mismatch");
  return c;
}

bool write_checkpoint_file(const std::string& path, const Checkpoint& c) {
  // Serialize in memory, publish through the durable-write discipline
  // (staged + fsync + rename + directory sync): the checkpoint a recovery
  // depends on must actually be on disk, not in a page cache a crash can
  // eat.
  std::ostringstream buf(std::ios::binary);
  write_checkpoint(buf, c);
  if (!buf) return false;
  return support::durable_write_file(path, buf.str());
}

std::optional<Checkpoint> try_read_checkpoint_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  try {
    return read_checkpoint(in);
  } catch (const std::runtime_error&) {
    return std::nullopt;
  }
}

}  // namespace columbia::resil
