#include "resil/manifest.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "support/durable.hpp"

namespace columbia::resil {

SweepManifest::SweepManifest(std::string path) : path_(std::move(path)) {
  std::ifstream in(path_);
  if (!in) return;
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream ls(line);
    std::string tag;
    ManifestEntry e;
    if (!(ls >> tag) || tag != "case") continue;  // header/garbage line
    if (!(ls >> e.case_id >> e.status)) continue;
    bool ok = true;
    for (double& v : e.values)
      if (!(ls >> v)) {
        ok = false;  // truncated trailing line: skip, the case re-runs
        break;
      }
    if (ok) entries_[e.case_id] = e;
  }
}

bool SweepManifest::contains(std::uint64_t case_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.count(case_id) != 0;
}

const ManifestEntry* SweepManifest::find(std::uint64_t case_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(case_id);
  return it == entries_.end() ? nullptr : &it->second;
}

void SweepManifest::record(const ManifestEntry& e) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_[e.case_id] = e;
  char buf[512];
  int n = std::snprintf(buf, sizeof(buf), "case %llu %s",
                        static_cast<unsigned long long>(e.case_id),
                        e.status.c_str());
  for (double v : e.values)
    n += std::snprintf(buf + n, sizeof(buf) - std::size_t(n), " %.17g", v);
  // Durable append (staged + fsync + rename): a manifest entry is a
  // promise that the case never re-runs, so it must survive a crash that
  // lands right after the sweep moves on.
  support::durable_append_line(path_, buf);
}

std::size_t SweepManifest::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace columbia::resil
