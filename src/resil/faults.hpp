// Deterministic fault injection for testing recovery paths.
//
// Every injection decision is a pure function of (seed, fault kind, site):
// a site is a stable integer identifying one opportunity (a halo message
// attempt, a solver cycle, a database case), so the set of injected faults
// is reproducible from the seed alone — thread interleavings cannot change
// it. That makes every recovery path exercisable in CI: corrupt or drop a
// halo payload in smp::exchange_*, poison a solver's state mid-cycle,
// throw from a database case worker, all on demand.
//
// Spec grammar (COLUMBIA_FAULTS environment variable, mirroring
// COLUMBIA_TRACE, or parse_fault_spec + FaultInjector::configure):
//
//   seed=<u64>[,<kind>=<rate>[@<max>]]...
//   kinds: halo_corrupt | halo_drop | state_nan | case_throw
//        | msg_delay | msg_drop | conn_reset | peer_hang
//
// `rate` is the per-opportunity probability in [0, 1]; `@max` optionally
// caps the total injections of that kind (the cap is exact under
// sequential opportunities; under concurrent ones the *selected* sites are
// still deterministic but which of them land within the cap can race).
// Example: COLUMBIA_FAULTS="seed=42,state_nan=0.25@1,halo_corrupt=0.1".
//
// The msg_* / conn_reset / peer_hang kinds fire at the multi-process
// transport seam (core::ExchangePlan over a core::Transport backend):
//   msg_delay  holds a frame for a fixed latency before the send — here
//              alone, `@<ms>` sets that latency in milliseconds (default
//              10) instead of an injection cap;
//   msg_drop   swallows the frame on the wire (the receiver times out and
//              the sender retransmits);
//   conn_reset tears down the peer connection mid-message (the transport
//              reconnects and retransmits);
//   peer_hang  stops the selected rank responding entirely, heartbeats
//              included — the site is the group rank, so which ranks hang
//              is reproducible; the launcher's failure detector must kill
//              the group and resume from the last durable checkpoint.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "support/types.hpp"

namespace columbia::resil {

enum class FaultKind : int {
  HaloCorrupt = 0,
  HaloDrop,
  StateNaN,
  CaseThrow,
  // Transport-seam kinds (multi-process wire layer).
  MsgDelay,
  MsgDrop,
  ConnReset,
  PeerHang,
};
inline constexpr int kNumFaultKinds = 8;

const char* fault_kind_name(FaultKind k);

struct FaultSpec {
  std::uint64_t seed = 0;
  std::array<double, kNumFaultKinds> rate{};
  std::array<std::uint64_t, kNumFaultKinds> max_count{};
  /// Per-kind shape parameter. Only msg_delay uses one today: the injected
  /// latency in milliseconds, set by that kind's `@` suffix.
  std::array<std::uint64_t, kNumFaultKinds> param{};

  FaultSpec() {
    max_count.fill(std::numeric_limits<std::uint64_t>::max());
    param[std::size_t(FaultKind::MsgDelay)] = 10;
  }

  bool any() const {
    for (double r : rate)
      if (r > 0) return true;
    return false;
  }
};

/// One-paragraph rendering of the full COLUMBIA_FAULTS grammar — embedded
/// in every parse error and printed by the examples' --faults-help.
const std::string& fault_grammar_help();

/// Parses the COLUMBIA_FAULTS grammar above. Throws std::invalid_argument
/// on malformed input (unknown kind, rate outside [0, 1], bad number); the
/// exception message names the offending token AND the full grammar.
FaultSpec parse_fault_spec(const std::string& spec);

/// Inverse of parse_fault_spec: the spec back in grammar form, suitable
/// for provenance stamps (telemetry shard headers record the fault mix a
/// run was launched under). Disarmed specs render as "" ; parsing the
/// rendered string reproduces the spec.
std::string render_fault_spec(const FaultSpec& spec);

/// Thrown by injected case-worker crashes (FaultKind::CaseThrow).
class InjectedFault : public std::runtime_error {
 public:
  InjectedFault(FaultKind kind, std::uint64_t site);
  FaultKind kind() const { return kind_; }
  std::uint64_t site() const { return site_; }

 private:
  FaultKind kind_;
  std::uint64_t site_;
};

class FaultInjector {
 public:
  /// Process-wide injector, configured once from COLUMBIA_FAULTS on first
  /// use (unset or empty => disarmed).
  static FaultInjector& global();

  FaultInjector() = default;

  void configure(const FaultSpec& spec);
  /// Disarms and zeroes the per-kind injection counters.
  void reset();
  const FaultSpec& spec() const { return spec_; }
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// Deterministic decision for one opportunity. True means the caller
  /// must apply the fault now; the per-kind counter (and the obs counter
  /// resil.fault.<kind>, when observability is on) is bumped.
  bool should_inject(FaultKind k, std::uint64_t site);

  /// Throws InjectedFault when should_inject fires — the one-line hook for
  /// case workers.
  void maybe_throw(FaultKind k, std::uint64_t site);

  /// Total injections of `k` so far.
  std::uint64_t injected(FaultKind k) const {
    return fired_[std::size_t(k)].load(std::memory_order_relaxed);
  }
  std::uint64_t injected_total() const;

  /// Monotone sequence number for halo exchanges; combined with
  /// sender/receiver/attempt into per-message sites (halo_site).
  std::uint64_t next_exchange_seq() {
    return exchange_seq_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  FaultSpec spec_;
  std::atomic<bool> armed_{false};
  std::array<std::atomic<std::uint64_t>, kNumFaultKinds> fired_{};
  std::atomic<std::uint64_t> exchange_seq_{0};
};

/// Stable 64-bit mix of the fields identifying one halo message attempt.
std::uint64_t halo_site(std::uint64_t exchange_seq, std::uint64_t sender,
                        std::uint64_t receiver, std::uint64_t attempt);

/// Deterministic hash used to pick *where* a fault lands (which payload
/// word, which node) once should_inject has fired.
std::uint64_t site_hash(std::uint64_t seed, std::uint64_t site);

// --- Checksummed halo frames -----------------------------------------------
//
// Wire layout: [payload_count, crc32(payload), payload...]. The count and
// checksum let the receiver detect truncation (a dropped payload) and
// corruption; the sender retransmits until a clean frame goes out, so the
// delivered values are always exactly the originals.

/// Wraps a payload in a checksummed frame.
std::vector<real_t> frame_payload(std::span<const real_t> payload);

/// In-place variant of frame_payload: rewrites `frame` without allocating
/// once its capacity covers payload.size() + 2. Persistent-buffer
/// exchanges (core::ExchangePlan) re-frame into the same vector every
/// attempt, so steady-state retransmits stay allocation-free.
void frame_payload_into(std::span<const real_t> payload,
                        std::vector<real_t>& frame);

/// Validates `frame`; on success fills `payload` and returns true. False
/// on length or checksum mismatch (payload then unspecified).
bool unframe_payload(std::span<const real_t> frame,
                     std::vector<real_t>& payload);

/// In-transit corruption: flips one payload word (chosen by the site hash)
/// after the checksum was computed. No-op on empty payloads.
void corrupt_frame(std::vector<real_t>& frame, std::uint64_t site);

/// In-transit drop: truncates the payload so the receiver sees a frame
/// shorter than its declared count.
void drop_frame(std::vector<real_t>& frame);

}  // namespace columbia::resil
