// Append-only sweep manifest: durable per-case completion records so a
// killed database sweep resumes from completed cases instead of
// re-running them (paper Sec. IV runs "as many cases as memory permits"
// for days — losing the sweep to one dead case is not acceptable).
//
// Format: a text file, one line per completed case,
//   case <id> <status> <v0> <v1> ... <v5>
// with values printed at full precision (%.17g) so reloaded results are
// bit-identical. Lines are flushed as they are appended; a truncated
// trailing line (process killed mid-write) is skipped on reload.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace columbia::resil {

struct ManifestEntry {
  std::uint64_t case_id = 0;
  std::string status;  // "ok" | "recovered" | "degraded" | "failed"
  /// Caller-defined payload (the database driver stores cl, cd,
  /// residual_drop, cycles, attempts, deflection).
  std::array<double, 6> values{};
};

class SweepManifest {
 public:
  /// Loads any existing entries from `path`; record() appends to the same
  /// file. The file is created on the first record().
  explicit SweepManifest(std::string path);

  bool contains(std::uint64_t case_id) const;
  /// nullptr when the case is not in the manifest. The pointer stays valid
  /// until the next record() call.
  const ManifestEntry* find(std::uint64_t case_id) const;

  /// Appends one completed case (thread-safe; one flushed line per call).
  void record(const ManifestEntry& e);

  std::size_t size() const;
  const std::string& path() const { return path_; }

 private:
  std::string path_;
  mutable std::mutex mu_;
  std::map<std::uint64_t, ManifestEntry> entries_;
};

}  // namespace columbia::resil
