// Guarded solves: per-cycle divergence detection with rollback to the
// last good checkpoint, CFL/relaxation backoff, and bounded retries.
//
// Both multigrid drivers (NSU3D and Cart3D) share this loop through a
// small callback bundle: the guard watches each cycle's residual for
// NaN/Inf or blow-up past `blowup_factor` x the best residual seen, and on
// a bad cycle restores the last good snapshot, asks the solver to back off
// (reduce CFL / under-relaxation), and retries. With an on-disk checkpoint
// path, periodic snapshots make the solve restartable across process
// deaths: resuming from cycle k reproduces the uninterrupted residual
// history bit for bit (the snapshot holds the exact fine-grid state).
//
// Recovery events surface in the obs layer: counters
// resil.recover.rollback / resil.recover.backoff /
// resil.checkpoint.write / resil.checkpoint.restore and a
// "resil.recover" span around each rollback.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "resil/checkpoint.hpp"
#include "support/types.hpp"

namespace columbia::resil {

enum class SolveOutcome { Ok, Recovered, Degraded, Failed };
const char* outcome_name(SolveOutcome o);

struct GuardOptions {
  int max_retries = 3;         // rollback budget for the whole solve
  real_t blowup_factor = 1e6;  // residual > factor * best-so-far => diverging
  real_t cfl_backoff = 0.5;    // applied by the solver's backoff callback
  real_t relax_backoff = 0.7;
};

struct GuardedSolveOptions {
  GuardOptions guard;
  /// Durable checkpoint file; empty keeps snapshots in memory only (still
  /// enough for rollback within the process).
  std::string checkpoint_path;
  int checkpoint_interval = 5;  // cycles between snapshots
  /// Load checkpoint_path before starting when it exists and matches.
  bool resume = true;
  /// Write snapshots to checkpoint_path. SPMD process groups set this on
  /// rank 0 only — every member still resumes from the shared file, but a
  /// single writer owns it (concurrent writers would race on the staging
  /// file). In-memory rollback snapshots are unaffected.
  bool checkpoint_write = true;
};

struct GuardedSolveResult {
  std::vector<real_t> history;  // includes the initial residual entry
  SolveOutcome outcome = SolveOutcome::Ok;
  int rollbacks = 0;   // bad cycles recovered by checkpoint restore
  int backoffs = 0;    // CFL/relaxation reductions applied
  bool resumed = false;
  std::uint64_t resumed_from = 0;  // cycle index of the loaded checkpoint
};

/// What the guard needs from a solver. `snapshot`/`restore` must round-trip
/// the full solver state exactly (bit-identical residuals afterwards);
/// `backoff` makes the next retry more dissipative and may be called up to
/// `max_retries` times.
struct GuardCallbacks {
  std::string solver;  // checkpoint tag, e.g. "nsu3d"
  std::function<real_t()> residual_norm;
  std::function<real_t()> run_cycle;
  std::function<Checkpoint(std::uint64_t cycle, std::span<const real_t>)>
      snapshot;
  std::function<void(const Checkpoint&)> restore;
  std::function<void()> backoff;
};

/// Runs guarded cycles until `max_cycles` total cycles are on the books
/// (cycles already banked by a resumed checkpoint count) or the residual
/// drops by `orders` orders of magnitude from the history's first entry.
/// Never throws on divergence: a solve that exhausts its retry budget
/// returns outcome Failed with the history so far.
GuardedSolveResult guarded_solve(const GuardedSolveOptions& opt,
                                 int max_cycles, real_t orders,
                                 const GuardCallbacks& cb);

}  // namespace columbia::resil
