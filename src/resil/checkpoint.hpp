// Versioned, CRC32-checksummed binary snapshots of solver state.
//
// A checkpoint captures everything a multigrid solver needs to resume a
// steady-state solve bit-identically: the fine-grid solution vector
// (including the SA working variable for NSU3D), the cycle count, and the
// residual history so far. Coarse-level state is rebuilt by the next cycle
// (FAS restriction overwrites it before use), so the fine grid alone
// determines every subsequent residual exactly — restarting from cycle k
// reproduces the uninterrupted history bit for bit.
//
// Wire format (little-endian host layout, as mesh::io):
//   magic "COLCKPT1" | u32 version | payload | u32 crc32(payload)
//   payload = u32 solver_len | solver bytes | u64 cycle | u64 stride
//           | u64 nhist | nhist f64 | u64 nstate | nstate f64
// Readers reject bad magic, unknown versions, truncation, and checksum
// mismatch with a typed CheckpointError (a std::runtime_error), so restore
// paths can tell WHY a snapshot was unusable without string-matching.
// Files are written through support::durable_write_file (staged, fsynced,
// renamed, directory-synced): recovery is only as trustworthy as the last
// checkpoint's durability.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace columbia::resil {

/// Why a checkpoint could not be read. Every reader failure carries one:
///   BadMagic    not a checkpoint file (or the header itself was mangled)
///   BadVersion  a real checkpoint from an incompatible format revision
///   Truncated   ends mid-payload — an interrupted or torn write
///   CrcMismatch right length, wrong bytes — silent corruption
///   Malformed   internally inconsistent fields (implausible sizes)
class CheckpointError : public std::runtime_error {
 public:
  enum class Kind { BadMagic, BadVersion, Truncated, CrcMismatch, Malformed };
  CheckpointError(Kind kind, const std::string& what)
      : std::runtime_error("columbia checkpoint: " + what), kind_(kind) {}
  Kind kind() const { return kind_; }

 private:
  Kind kind_;
};

const char* checkpoint_error_kind_name(CheckpointError::Kind k);

struct Checkpoint {
  std::string solver;            // "nsu3d" | "cart3d" | ...
  std::uint64_t cycle = 0;       // cycles completed when taken
  std::uint64_t state_stride = 0;  // components per node/cell
  std::vector<double> history;   // residual norms incl. the initial entry
  std::vector<double> state;     // flattened fine-grid solution
};

/// Writes `c` to the stream; returns bytes written.
std::size_t write_checkpoint(std::ostream& out, const Checkpoint& c);

/// Reads a checkpoint written by write_checkpoint. Throws CheckpointError
/// on bad magic/version, truncation, or CRC mismatch — and never returns
/// partial state: the Checkpoint is only handed back once fully validated.
Checkpoint read_checkpoint(std::istream& in);

/// Durable write via support::durable_write_file (staged, fsynced,
/// renamed): a crash mid-write never clobbers the previous good
/// checkpoint, and a published checkpoint survives power loss. False on
/// I/O failure.
bool write_checkpoint_file(const std::string& path, const Checkpoint& c);

/// Loads `path` if it exists and validates; std::nullopt when the file is
/// absent or unreadable/corrupt (a corrupt checkpoint is a recoverable
/// condition: the caller starts fresh instead of crashing).
std::optional<Checkpoint> try_read_checkpoint_file(const std::string& path);

}  // namespace columbia::resil
