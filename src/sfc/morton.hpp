// Morton (Z-order) space-filling curve encodings, 2D and 3D.
//
// Cart3D orders adaptively refined Cartesian cells along an SFC computed by
// "one-time inspection of the cell's coordinates" (paper Sec. V, Fig. 10);
// the Morton key of a cell is the bit-interleave of its integer coordinates
// at the finest level. The 2D form is used for illustration; 3D runs prefer
// Peano-Hilbert (see hilbert.hpp) for its better locality.
#pragma once

#include <cstdint>

#include "support/assert.hpp"

namespace columbia::sfc {

/// Spreads the low 32 bits of x so there is one zero bit between each.
constexpr std::uint64_t spread2(std::uint32_t x) {
  std::uint64_t v = x;
  v = (v | (v << 16)) & 0x0000ffff0000ffffull;
  v = (v | (v << 8)) & 0x00ff00ff00ff00ffull;
  v = (v | (v << 4)) & 0x0f0f0f0f0f0f0f0full;
  v = (v | (v << 2)) & 0x3333333333333333ull;
  v = (v | (v << 1)) & 0x5555555555555555ull;
  return v;
}

/// Spreads the low 21 bits of x so there are two zero bits between each.
constexpr std::uint64_t spread3(std::uint32_t x) {
  std::uint64_t v = x & 0x1fffff;
  v = (v | (v << 32)) & 0x1f00000000ffffull;
  v = (v | (v << 16)) & 0x1f0000ff0000ffull;
  v = (v | (v << 8)) & 0x100f00f00f00f00full;
  v = (v | (v << 4)) & 0x10c30c30c30c30c3ull;
  v = (v | (v << 2)) & 0x1249249249249249ull;
  return v;
}

/// 2D Morton key: interleaves x (even bits) and y (odd bits).
constexpr std::uint64_t morton2(std::uint32_t x, std::uint32_t y) {
  return spread2(x) | (spread2(y) << 1);
}

/// 3D Morton key for 21-bit coordinates.
constexpr std::uint64_t morton3(std::uint32_t x, std::uint32_t y,
                                std::uint32_t z) {
  return spread3(x) | (spread3(y) << 1) | (spread3(z) << 2);
}

/// Compacts every second bit back into the low 32 (inverse of spread2).
constexpr std::uint32_t compact2(std::uint64_t v) {
  v &= 0x5555555555555555ull;
  v = (v | (v >> 1)) & 0x3333333333333333ull;
  v = (v | (v >> 2)) & 0x0f0f0f0f0f0f0f0full;
  v = (v | (v >> 4)) & 0x00ff00ff00ff00ffull;
  v = (v | (v >> 8)) & 0x0000ffff0000ffffull;
  v = (v | (v >> 16)) & 0x00000000ffffffffull;
  return std::uint32_t(v);
}

/// Compacts every third bit (inverse of spread3).
constexpr std::uint32_t compact3(std::uint64_t v) {
  v &= 0x1249249249249249ull;
  v = (v | (v >> 2)) & 0x10c30c30c30c30c3ull;
  v = (v | (v >> 4)) & 0x100f00f00f00f00full;
  v = (v | (v >> 8)) & 0x1f0000ff0000ffull;
  v = (v | (v >> 16)) & 0x1f00000000ffffull;
  v = (v | (v >> 32)) & 0x1fffffull;
  return std::uint32_t(v);
}

struct Coord2 {
  std::uint32_t x, y;
};
struct Coord3 {
  std::uint32_t x, y, z;
};

constexpr Coord2 morton2_decode(std::uint64_t key) {
  return {compact2(key), compact2(key >> 1)};
}
constexpr Coord3 morton3_decode(std::uint64_t key) {
  return {compact3(key), compact3(key >> 1), compact3(key >> 2)};
}

}  // namespace columbia::sfc
