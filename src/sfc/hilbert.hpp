// Peano-Hilbert space-filling curve, 2D and 3D.
//
// "In 3D the Peano-Hilbert SFC is generally preferred" (paper Sec. V) for
// its unit-step locality: successive cells on the curve are face neighbors,
// which makes contiguous curve segments geometrically compact partitions.
// Implementation follows Skilling's transpose-based algorithm (AIP Conf.
// Proc. 707, 2004), generalized over dimension.
#pragma once

#include <cstdint>

namespace columbia::sfc {

/// Hilbert key of a 2D point with `bits`-bit coordinates (bits <= 31).
std::uint64_t hilbert2(std::uint32_t x, std::uint32_t y, int bits);

/// Hilbert key of a 3D point with `bits`-bit coordinates (bits <= 21).
std::uint64_t hilbert3(std::uint32_t x, std::uint32_t y, std::uint32_t z,
                       int bits);

/// Inverse transforms.
void hilbert2_decode(std::uint64_t key, int bits, std::uint32_t& x,
                     std::uint32_t& y);
void hilbert3_decode(std::uint64_t key, int bits, std::uint32_t& x,
                     std::uint32_t& y, std::uint32_t& z);

}  // namespace columbia::sfc
