#include "sfc/sfc_partition.hpp"

#include <algorithm>
#include <numeric>

#include "support/assert.hpp"

namespace columbia::sfc {

std::vector<index_t> sort_order(std::span<const std::uint64_t> keys) {
  std::vector<index_t> order(keys.size());
  std::iota(order.begin(), order.end(), index_t(0));
  std::stable_sort(order.begin(), order.end(), [&](index_t a, index_t b) {
    return keys[std::size_t(a)] < keys[std::size_t(b)];
  });
  return order;
}

std::vector<index_t> partition_weighted(std::span<const std::uint64_t> keys,
                                        std::span<const real_t> weights,
                                        index_t nparts) {
  COLUMBIA_REQUIRE(nparts >= 1);
  COLUMBIA_REQUIRE(weights.empty() || weights.size() == keys.size());
  const std::vector<index_t> order = sort_order(keys);

  real_t total = 0;
  if (weights.empty())
    total = real_t(keys.size());
  else
    for (real_t w : weights) total += w;

  std::vector<index_t> part(keys.size(), 0);
  // Walk the curve accumulating weight; close part p when the running sum
  // crosses (p+1)/nparts of the total. This is the "divide the SFC into
  // segments" partitioner of the paper and is exactly linear time.
  real_t acc = 0;
  index_t p = 0;
  for (index_t i = 0; i < index_t(order.size()); ++i) {
    const index_t item = order[std::size_t(i)];
    const real_t w = weights.empty() ? 1.0 : weights[std::size_t(item)];
    // Assign, then check whether this part has reached its share.
    part[std::size_t(item)] = p;
    acc += w;
    const real_t boundary = total * real_t(p + 1) / real_t(nparts);
    if (acc >= boundary && p + 1 < nparts) ++p;
  }
  return part;
}

real_t balance_factor(std::span<const index_t> part,
                      std::span<const real_t> weights, index_t nparts) {
  std::vector<real_t> pw(std::size_t(nparts), 0.0);
  real_t total = 0;
  for (std::size_t i = 0; i < part.size(); ++i) {
    const real_t w = weights.empty() ? 1.0 : weights[i];
    pw[std::size_t(part[i])] += w;
    total += w;
  }
  const real_t ideal = total / real_t(nparts);
  real_t max_w = 0;
  for (real_t w : pw) max_w = std::max(max_w, w);
  return ideal > 0 ? max_w / ideal : 1.0;
}

}  // namespace columbia::sfc
