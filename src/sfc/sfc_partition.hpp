// Weighted partitioning of SFC-ordered cell lists.
//
// Cart3D partitions a mesh on-the-fly while the SFC-ordered file is read,
// simply assigning contiguous curve segments to processors (paper Sec. V).
// Weights let cut-cells count more than whole hexes (2.1x in Fig. 12).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "support/types.hpp"

namespace columbia::sfc {

/// Splits items ordered by `keys` into `nparts` contiguous curve segments of
/// near-equal total weight. Returns part ids indexed like the inputs
/// (i.e. in the original, unsorted order).
std::vector<index_t> partition_weighted(std::span<const std::uint64_t> keys,
                                        std::span<const real_t> weights,
                                        index_t nparts);

/// Permutation that sorts items by key ascending (stable).
std::vector<index_t> sort_order(std::span<const std::uint64_t> keys);

/// Largest part weight divided by ideal (1.0 = perfect balance).
real_t balance_factor(std::span<const index_t> part,
                      std::span<const real_t> weights, index_t nparts);

}  // namespace columbia::sfc
