#include "sfc/hilbert.hpp"

#include "support/assert.hpp"

namespace columbia::sfc {

namespace {

// Skilling's algorithm operates on the "transposed" representation of the
// Hilbert index: n coordinates of b bits each, whose bit-interleave is the
// index. axes_to_transpose converts coordinates in place to that form;
// transpose_to_axes inverts it.

void axes_to_transpose(std::uint32_t* x, int bits, int n) {
  std::uint32_t m = 1u << (bits - 1);
  // Inverse undo of Gray code.
  for (std::uint32_t q = m; q > 1; q >>= 1) {
    const std::uint32_t p = q - 1;
    for (int i = 0; i < n; ++i) {
      if (x[i] & q) {
        x[0] ^= p;  // invert
      } else {
        const std::uint32_t t = (x[0] ^ x[i]) & p;
        x[0] ^= t;
        x[i] ^= t;
      }
    }
  }
  // Gray encode.
  for (int i = 1; i < n; ++i) x[i] ^= x[i - 1];
  std::uint32_t t = 0;
  for (std::uint32_t q = m; q > 1; q >>= 1)
    if (x[n - 1] & q) t ^= q - 1;
  for (int i = 0; i < n; ++i) x[i] ^= t;
}

void transpose_to_axes(std::uint32_t* x, int bits, int n) {
  const std::uint32_t m = 2u << (bits - 1);
  // Gray decode by H ^ (H/2).
  std::uint32_t t = x[n - 1] >> 1;
  for (int i = n - 1; i > 0; --i) x[i] ^= x[i - 1];
  x[0] ^= t;
  // Undo excess work.
  for (std::uint32_t q = 2; q != m; q <<= 1) {
    const std::uint32_t p = q - 1;
    for (int i = n - 1; i >= 0; --i) {
      if (x[i] & q) {
        x[0] ^= p;
      } else {
        const std::uint32_t tt = (x[0] ^ x[i]) & p;
        x[0] ^= tt;
        x[i] ^= tt;
      }
    }
  }
}

/// Interleaves the transposed form into a single key: bit (bits-1-b) of
/// axis i lands at position ((bits-1-b)*n + (n-1-i)).
std::uint64_t interleave(const std::uint32_t* x, int bits, int n) {
  std::uint64_t key = 0;
  for (int b = bits - 1; b >= 0; --b)
    for (int i = 0; i < n; ++i)
      key = (key << 1) | ((x[i] >> b) & 1u);
  return key;
}

void deinterleave(std::uint64_t key, int bits, int n, std::uint32_t* x) {
  for (int i = 0; i < n; ++i) x[i] = 0;
  for (int b = bits - 1; b >= 0; --b)
    for (int i = 0; i < n; ++i) {
      x[i] = (x[i] << 1) | std::uint32_t((key >> (std::uint64_t(b) * n +
                                                  std::uint64_t(n - 1 - i))) &
                                         1u);
    }
}

}  // namespace

std::uint64_t hilbert2(std::uint32_t x, std::uint32_t y, int bits) {
  COLUMBIA_REQUIRE(bits >= 1 && bits <= 31);
  std::uint32_t v[2] = {x, y};
  axes_to_transpose(v, bits, 2);
  return interleave(v, bits, 2);
}

std::uint64_t hilbert3(std::uint32_t x, std::uint32_t y, std::uint32_t z,
                       int bits) {
  COLUMBIA_REQUIRE(bits >= 1 && bits <= 21);
  std::uint32_t v[3] = {x, y, z};
  axes_to_transpose(v, bits, 3);
  return interleave(v, bits, 3);
}

void hilbert2_decode(std::uint64_t key, int bits, std::uint32_t& x,
                     std::uint32_t& y) {
  COLUMBIA_REQUIRE(bits >= 1 && bits <= 31);
  std::uint32_t v[2];
  deinterleave(key, bits, 2, v);
  transpose_to_axes(v, bits, 2);
  x = v[0];
  y = v[1];
}

void hilbert3_decode(std::uint64_t key, int bits, std::uint32_t& x,
                     std::uint32_t& y, std::uint32_t& z) {
  COLUMBIA_REQUIRE(bits >= 1 && bits <= 21);
  std::uint32_t v[3];
  deinterleave(key, bits, 3, v);
  transpose_to_axes(v, bits, 3);
  x = v[0];
  y = v[1];
  z = v[2];
}

}  // namespace columbia::sfc
