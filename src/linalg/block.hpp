// Fixed-size dense blocks used by the implicit solvers.
//
// NSU3D stores six unknowns per grid point (density, momentum x3, energy,
// turbulence working variable), so the point-implicit and line-implicit
// schemes invert dense 6x6 blocks at every point (paper Sec. III). Cart3D
// carries five unknowns per cell. Both sizes instantiate the same templates.
#pragma once

#include <array>
#include <cmath>

#include "support/assert.hpp"
#include "support/types.hpp"

namespace columbia::linalg {

/// Dense fixed-size column vector.
template <int N>
struct BlockVec {
  std::array<real_t, N> v{};

  real_t& operator[](int i) { return v[std::size_t(i)]; }
  real_t operator[](int i) const { return v[std::size_t(i)]; }

  BlockVec& operator+=(const BlockVec& o) {
    for (int i = 0; i < N; ++i) v[std::size_t(i)] += o[i];
    return *this;
  }
  BlockVec& operator-=(const BlockVec& o) {
    for (int i = 0; i < N; ++i) v[std::size_t(i)] -= o[i];
    return *this;
  }
  BlockVec& operator*=(real_t s) {
    for (int i = 0; i < N; ++i) v[std::size_t(i)] *= s;
    return *this;
  }

  friend BlockVec operator+(BlockVec a, const BlockVec& b) { return a += b; }
  friend BlockVec operator-(BlockVec a, const BlockVec& b) { return a -= b; }
  friend BlockVec operator*(real_t s, BlockVec a) { return a *= s; }

  real_t norm2() const {
    real_t s = 0;
    for (int i = 0; i < N; ++i) s += v[std::size_t(i)] * v[std::size_t(i)];
    return std::sqrt(s);
  }
};

/// Dense fixed-size row-major matrix with in-place LU (partial pivoting).
template <int N>
struct BlockMat {
  std::array<real_t, std::size_t(N) * N> a{};

  real_t& operator()(int r, int c) { return a[std::size_t(r) * N + c]; }
  real_t operator()(int r, int c) const { return a[std::size_t(r) * N + c]; }

  static BlockMat identity() {
    BlockMat m;
    for (int i = 0; i < N; ++i) m(i, i) = 1.0;
    return m;
  }

  static BlockMat diagonal(real_t d) {
    BlockMat m;
    for (int i = 0; i < N; ++i) m(i, i) = d;
    return m;
  }

  BlockMat& operator+=(const BlockMat& o) {
    for (std::size_t i = 0; i < a.size(); ++i) a[i] += o.a[i];
    return *this;
  }
  BlockMat& operator-=(const BlockMat& o) {
    for (std::size_t i = 0; i < a.size(); ++i) a[i] -= o.a[i];
    return *this;
  }
  BlockMat& operator*=(real_t s) {
    for (auto& x : a) x *= s;
    return *this;
  }
  friend BlockMat operator+(BlockMat x, const BlockMat& y) { return x += y; }
  friend BlockMat operator-(BlockMat x, const BlockMat& y) { return x -= y; }
  friend BlockMat operator*(real_t s, BlockMat x) { return x *= s; }

  friend BlockMat operator*(const BlockMat& x, const BlockMat& y) {
    BlockMat r;
    for (int i = 0; i < N; ++i)
      for (int k = 0; k < N; ++k) {
        const real_t xi = x(i, k);
        for (int j = 0; j < N; ++j) r(i, j) += xi * y(k, j);
      }
    return r;
  }

  friend BlockVec<N> operator*(const BlockMat& m, const BlockVec<N>& x) {
    BlockVec<N> r;
    for (int i = 0; i < N; ++i) {
      real_t s = 0;
      for (int j = 0; j < N; ++j) s += m(i, j) * x[j];
      r[i] = s;
    }
    return r;
  }

  real_t max_abs() const {
    real_t m = 0;
    for (real_t x : a) m = std::max(m, std::abs(x));
    return m;
  }
};

/// r -= m * x without materializing the product: each row's dot product
/// accumulates in the same ascending-j order operator* uses, then is
/// subtracted once — bit-identical to `r -= m * x`, one pass, no temp.
template <int N>
inline void msub(BlockVec<N>& r, const BlockMat<N>& m, const BlockVec<N>& x) {
  for (int i = 0; i < N; ++i) {
    real_t s = 0;
    for (int j = 0; j < N; ++j) s += m(i, j) * x[j];
    r[i] -= s;
  }
}

/// r -= x * y without materializing the product. The row accumulator
/// receives each element's terms in the same ascending-k order the
/// operator* loops produce, so the subtracted values are bit-identical;
/// the inner j-loops run unit-stride over the row-major storage.
template <int N>
inline void msub(BlockMat<N>& r, const BlockMat<N>& x, const BlockMat<N>& y) {
  for (int i = 0; i < N; ++i) {
    std::array<real_t, N> acc{};
    for (int k = 0; k < N; ++k) {
      const real_t xi = x(i, k);
      for (int j = 0; j < N; ++j)
        acc[std::size_t(j)] += xi * y(k, j);
    }
    for (int j = 0; j < N; ++j) r(i, j) -= acc[std::size_t(j)];
  }
}

/// Structured outcome of a block factorization. When a pivot is singular
/// to working precision, records WHICH column failed and how small the
/// best available pivot was, so callers can report the offending
/// point/equation instead of a bare boolean.
struct FactorStatus {
  bool ok = true;
  int pivot_col = -1;      ///< column of the failing pivot (-1 when ok)
  real_t pivot_mag = 0;    ///< |best pivot| found in that column

  explicit operator bool() const { return ok; }

  static FactorStatus singular(int col, real_t mag) {
    return FactorStatus{false, col, mag};
  }
};

/// LU factorization with partial pivoting, stored compactly.
///
/// Factor once per nonlinear iteration, then apply to many right-hand
/// sides — exactly the access pattern of the block-Jacobi smoother.
template <int N>
class BlockLU {
 public:
  BlockLU() = default;

  /// Factors `m`. When a pivot falls below `tiny` (singular to working
  /// precision) the status reports the failing column and pivot size and
  /// the factorization must not be used.
  FactorStatus factor_status(const BlockMat<N>& m, real_t tiny = 1e-300) {
    lu_ = m;
    for (int i = 0; i < N; ++i) piv_[std::size_t(i)] = i;
    for (int col = 0; col < N; ++col) {
      int p = col;
      real_t best = std::abs(lu_(col, col));
      for (int r = col + 1; r < N; ++r) {
        const real_t v = std::abs(lu_(r, col));
        if (v > best) {
          best = v;
          p = r;
        }
      }
      if (best < tiny) return FactorStatus::singular(col, best);
      if (p != col) {
        for (int c = 0; c < N; ++c) std::swap(lu_(p, c), lu_(col, c));
        std::swap(piv_[std::size_t(p)], piv_[std::size_t(col)]);
      }
      const real_t inv = 1.0 / lu_(col, col);
      for (int r = col + 1; r < N; ++r) {
        const real_t f = lu_(r, col) * inv;
        lu_(r, col) = f;
        for (int c = col + 1; c < N; ++c) lu_(r, c) -= f * lu_(col, c);
      }
    }
    return FactorStatus{};
  }

  /// Boolean convenience wrapper around factor_status.
  bool factor(const BlockMat<N>& m, real_t tiny = 1e-300) {
    return factor_status(m, tiny).ok;
  }

  /// Solves L U x = P b.
  BlockVec<N> solve(const BlockVec<N>& b) const {
    BlockVec<N> x;
    for (int i = 0; i < N; ++i) x[i] = b[piv_[std::size_t(i)]];
    for (int i = 1; i < N; ++i) {
      real_t s = x[i];
      for (int j = 0; j < i; ++j) s -= lu_(i, j) * x[j];
      x[i] = s;
    }
    for (int i = N - 1; i >= 0; --i) {
      real_t s = x[i];
      for (int j = i + 1; j < N; ++j) s -= lu_(i, j) * x[j];
      x[i] = s / lu_(i, i);
    }
    return x;
  }

  /// Solves for a matrix right-hand side: X = A^{-1} B. All columns are
  /// advanced together row-wise, so the inner loops are unit-stride over
  /// the row-major storage; per element this applies the identical
  /// ascending-j update chain (and the same final division) a column-by-
  /// column solve would, so the result is bit-identical to N vector
  /// solves.
  BlockMat<N> solve(const BlockMat<N>& b) const {
    BlockMat<N> x;
    for (int i = 0; i < N; ++i)
      for (int c = 0; c < N; ++c) x(i, c) = b(piv_[std::size_t(i)], c);
    for (int i = 1; i < N; ++i)
      for (int j = 0; j < i; ++j) {
        const real_t f = lu_(i, j);
        for (int c = 0; c < N; ++c) x(i, c) -= f * x(j, c);
      }
    for (int i = N - 1; i >= 0; --i) {
      for (int j = i + 1; j < N; ++j) {
        const real_t f = lu_(i, j);
        for (int c = 0; c < N; ++c) x(i, c) -= f * x(j, c);
      }
      const real_t d = lu_(i, i);
      for (int c = 0; c < N; ++c) x(i, c) /= d;
    }
    return x;
  }

 private:
  BlockMat<N> lu_;
  std::array<int, N> piv_{};
};

}  // namespace columbia::linalg
