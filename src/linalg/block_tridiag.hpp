// Block-tridiagonal LU solver (Thomas algorithm with dense blocks).
//
// The line-implicit smoother in NSU3D groups the tightly coupled points of
// each boundary-layer line and solves the discrete equations implicitly
// along the line with a block-tridiagonal LU decomposition (paper Sec. III,
// Fig. 5). The algorithm is inherently sequential along a line, which is
// why partitioning must never split a line across processors.
#pragma once

#include <vector>

#include "linalg/block.hpp"
#include "support/assert.hpp"

namespace columbia::linalg {

/// Structured outcome of a block-tridiagonal solve: when a pivot block is
/// singular, records the line row whose eliminated diagonal failed plus
/// the FactorStatus detail, so the caller can name the offending point.
struct TridiagStatus {
  FactorStatus factor{};
  std::size_t row = 0;  ///< line index of the singular diagonal block

  bool ok() const { return factor.ok; }
  explicit operator bool() const { return factor.ok; }
};

/// Solves the block-tridiagonal system
///   lower[i] x[i-1] + diag[i] x[i] + upper[i] x[i+1] = rhs[i]
/// for i = 0..n-1 (lower[0] and upper[n-1] ignored), in place in `rhs`.
///
/// On a singular pivot block the status identifies the failing row and
/// column; `rhs` is then undefined.
template <int N>
TridiagStatus solve_block_tridiag_status(std::vector<BlockMat<N>>& lower,
                                         std::vector<BlockMat<N>>& diag,
                                         std::vector<BlockMat<N>>& upper,
                                         std::vector<BlockVec<N>>& rhs) {
  const std::size_t n = diag.size();
  COLUMBIA_REQUIRE(lower.size() == n && upper.size() == n && rhs.size() == n);
  if (n == 0) return TridiagStatus{};

  // Forward elimination: diag[i] <- diag[i] - lower[i] D^{-1}_{i-1} upper[i-1]
  std::vector<BlockLU<N>> lu(n);
  FactorStatus fs = lu[0].factor_status(diag[0]);
  if (!fs) return TridiagStatus{fs, 0};
  for (std::size_t i = 1; i < n; ++i) {
    // G = lower[i] * inv(diag[i-1]) computed via transpose-free column solves:
    // we need lower[i] * D^{-1}, i.e. solve D^T y = lower[i]^T per row. It is
    // simpler and equally stable to compute M = D^{-1} upper[i-1] and
    // subtract lower[i] * M.
    const BlockMat<N> m = lu[i - 1].solve(upper[i - 1]);
    msub(diag[i], lower[i], m);
    const BlockVec<N> r = lu[i - 1].solve(rhs[i - 1]);
    msub(rhs[i], lower[i], r);
    fs = lu[i].factor_status(diag[i]);
    if (!fs) return TridiagStatus{fs, i};
  }

  // Back substitution.
  rhs[n - 1] = lu[n - 1].solve(rhs[n - 1]);
  for (std::size_t i = n - 1; i-- > 0;) {
    BlockVec<N> r = rhs[i];
    msub(r, upper[i], rhs[i + 1]);
    rhs[i] = lu[i].solve(r);
  }
  return TridiagStatus{};
}

/// Boolean convenience wrapper around solve_block_tridiag_status.
template <int N>
bool solve_block_tridiag(std::vector<BlockMat<N>>& lower,
                         std::vector<BlockMat<N>>& diag,
                         std::vector<BlockMat<N>>& upper,
                         std::vector<BlockVec<N>>& rhs) {
  return solve_block_tridiag_status<N>(lower, diag, upper, rhs).ok();
}

/// Scalar tridiagonal convenience overload (used in tests and the 1-equation
/// turbulence line sweep).
inline bool solve_tridiag(std::vector<real_t>& lower, std::vector<real_t>& diag,
                          std::vector<real_t>& upper, std::vector<real_t>& rhs) {
  const std::size_t n = diag.size();
  COLUMBIA_REQUIRE(lower.size() == n && upper.size() == n && rhs.size() == n);
  if (n == 0) return true;
  for (std::size_t i = 1; i < n; ++i) {
    if (diag[i - 1] == 0.0) return false;
    const real_t f = lower[i] / diag[i - 1];
    diag[i] -= f * upper[i - 1];
    rhs[i] -= f * rhs[i - 1];
  }
  if (diag[n - 1] == 0.0) return false;
  rhs[n - 1] /= diag[n - 1];
  for (std::size_t i = n - 1; i-- > 0;) {
    if (diag[i] == 0.0) return false;
    rhs[i] = (rhs[i] - upper[i] * rhs[i + 1]) / diag[i];
  }
  return true;
}

}  // namespace columbia::linalg
