#include "obs/trace.hpp"

#include <array>
#include <atomic>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <ostream>
#include <string_view>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "support/build_info.hpp"
#include "support/timer.hpp"

namespace columbia::obs {
namespace {

/// Shared by both build variants: a "columbia" metadata object alongside
/// traceEvents so offline tools (columbia_report) know the provenance and
/// thread count of the run that produced the trace.
void write_provenance(JsonWriter& w, std::int64_t threads) {
  const BuildInfo& bi = build_info();
  w.key("columbia").begin_object();
  w.kv("git_sha", bi.git_sha);
  w.kv("build_type", bi.build_type);
  w.kv("obs", bi.obs_compiled);
  w.kv("threads", threads);
  w.kv("hardware_threads", std::int64_t(hardware_threads()));
  w.end_object();
}

}  // namespace

std::int64_t TraceEvent::arg_or(const char* key, std::int64_t fallback) const {
  for (int i = 0; i < nargs; ++i) {
    const char* a = args[i].name;
    if (a != nullptr && std::string_view(a) == key) return args[i].value;
  }
  return fallback;
}

}  // namespace columbia::obs

namespace columbia::obs {

#if COLUMBIA_OBS_ENABLED

namespace {

bool env_enabled() {
  const char* s = std::getenv("COLUMBIA_TRACE");
  return s != nullptr && std::atoi(s) != 0;
}

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag{env_enabled()};
  return flag;
}

/// Append-only event buffer owned by one writer thread. Slots below the
/// published count are immutable; the release store on publish pairs with
/// the reader's acquire load, so snapshots are race-free without locking
/// the hot path. Chunks are never freed or moved once allocated.
class ThreadBuffer {
 public:
  static constexpr std::size_t kChunkSize = 4096;

  void push(const TraceEvent& e) {
    const std::size_t n = count_.load(std::memory_order_relaxed);
    const std::size_t chunk = n / kChunkSize;
    if (chunk >= chunks_.size()) {
      // Rare (every kChunkSize events). The lock only orders the vector
      // growth against concurrent snapshot() readers; the owning thread is
      // the sole writer of chunks_.
      std::lock_guard<std::mutex> lock(chunks_mu_);
      chunks_.push_back(std::make_unique<Chunk>());
    }
    chunks_[chunk]->ev[n % kChunkSize] = e;
    count_.store(n + 1, std::memory_order_release);
  }

  std::size_t count() const { return count_.load(std::memory_order_acquire); }

  void snapshot(std::vector<TraceEvent>& out, std::uint32_t tid) const {
    std::lock_guard<std::mutex> lock(chunks_mu_);
    const std::size_t n = count_.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < n; ++i) {
      TraceEvent e = chunks_[i / kChunkSize]->ev[i % kChunkSize];
      e.tid = tid;
      out.push_back(e);
    }
  }

  void reset() { count_.store(0, std::memory_order_release); }

 private:
  struct Chunk {
    std::array<TraceEvent, kChunkSize> ev;
  };
  std::vector<std::unique_ptr<Chunk>> chunks_;
  mutable std::mutex chunks_mu_;
  std::atomic<std::size_t> count_{0};
};

struct Registry {
  std::mutex mu;
  // Buffers are registered once per recording thread and never removed:
  // thread_local pointers into this list must stay valid after the thread
  // exits (pool resizes join and respawn workers).
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;
};

Registry& registry() {
  static Registry* reg = new Registry;  // leaked: outlives static dtors
  return *reg;
}

ThreadBuffer& local_buffer() {
  thread_local ThreadBuffer* buf = nullptr;
  if (buf == nullptr) {
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    reg.buffers.push_back(std::make_unique<ThreadBuffer>());
    buf = reg.buffers.back().get();
  }
  return *buf;
}

std::uint64_t epoch_ns() {
  static const std::uint64_t epoch = WallTimer::now_ns();
  return epoch;
}

}  // namespace

bool enabled() { return enabled_flag().load(std::memory_order_relaxed); }

void set_enabled(bool on) {
  epoch_ns();  // pin the epoch no later than the first enable
  enabled_flag().store(on, std::memory_order_relaxed);
}

void record_span_event(const char* name, char phase, const SpanArg* args,
                       int nargs) {
  TraceEvent e;
  e.name = name;
  e.nargs = nargs < kMaxSpanArgs ? nargs : kMaxSpanArgs;
  for (int i = 0; i < e.nargs; ++i) e.args[i] = args[i];
  e.ts_ns = WallTimer::now_ns();
  e.phase = phase;
  local_buffer().push(e);
}

std::uint64_t trace_epoch_ns() { return epoch_ns(); }

std::size_t num_trace_events() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  std::size_t total = 0;
  for (const auto& b : reg.buffers) total += b->count();
  return total;
}

std::vector<TraceEvent> trace_snapshot() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  std::vector<TraceEvent> out;
  for (std::size_t t = 0; t < reg.buffers.size(); ++t)
    reg.buffers[t]->snapshot(out, std::uint32_t(t));
  return out;
}

void write_chrome_trace(std::ostream& os) {
  const std::vector<TraceEvent> events = trace_snapshot();
  const std::uint64_t epoch = epoch_ns();
  JsonWriter w(os);
  w.begin_object();
  w.kv("displayTimeUnit", "ms");
  write_provenance(w, gauge("pool.threads").value());
  w.key("traceEvents").begin_array();
  for (const TraceEvent& e : events) {
    w.begin_object();
    w.kv("name", e.name);
    w.kv("ph", std::string(1, e.phase));
    // Chrome expects microseconds; fractional part preserves ns ticks.
    const std::uint64_t rel = e.ts_ns >= epoch ? e.ts_ns - epoch : 0;
    w.kv("ts", double(rel) / 1e3);
    w.kv("pid", std::int64_t(0));
    w.kv("tid", std::int64_t(e.tid));
    if (e.phase == 'B' && e.nargs > 0) {
      w.key("args").begin_object();
      for (int i = 0; i < e.nargs; ++i)
        if (e.args[i].name != nullptr) w.kv(e.args[i].name, e.args[i].value);
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << '\n';
}

bool write_chrome_trace_file(const std::string& path) {
  std::ofstream os(path);
  if (!os) return false;
  write_chrome_trace(os);
  return bool(os);
}

void reset_trace() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (auto& b : reg.buffers) b->reset();
}

#else  // !COLUMBIA_OBS_ENABLED — keep the link surface, record nothing.

std::uint64_t trace_epoch_ns() { return 0; }

std::size_t num_trace_events() { return 0; }

std::vector<TraceEvent> trace_snapshot() { return {}; }

void write_chrome_trace(std::ostream& os) {
  JsonWriter w(os);
  w.begin_object();
  w.kv("displayTimeUnit", "ms");
  write_provenance(w, 0);
  w.key("traceEvents").begin_array().end_array();
  w.end_object();
  os << '\n';
}

bool write_chrome_trace_file(const std::string& path) {
  std::ofstream os(path);
  if (!os) return false;
  write_chrome_trace(os);
  return bool(os);
}

void reset_trace() {}

#endif  // COLUMBIA_OBS_ENABLED

}  // namespace columbia::obs
