// Hierarchical scoped spans recorded into per-thread buffers and exported
// as Chrome trace_event JSON (load in chrome://tracing or Perfetto).
//
// Recording path: an `OBS_SPAN("name")` guard pushes a begin event on
// construction and an end event on destruction into the calling thread's
// buffer. Buffers are append-only chunked arrays published with a single
// release store per event — no locks on the hot path, and readers
// (exporters) synchronize through one acquire load of the event count.
//
// Cost model: with the runtime flag off (the default) a span is one
// relaxed atomic load and a branch; compiled out (-DCOLUMBIA_OBS=OFF) it
// is nothing at all. Tracing never touches solver arithmetic, so residual
// histories are bit-identical with tracing on or off at any thread count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <string>
#include <vector>

#ifndef COLUMBIA_OBS_ENABLED
#define COLUMBIA_OBS_ENABLED 1
#endif

namespace columbia::obs {

/// True when the observability layer is compiled in (COLUMBIA_OBS=ON).
inline constexpr bool kCompiledIn = COLUMBIA_OBS_ENABLED != 0;

#if COLUMBIA_OBS_ENABLED
/// Master runtime switch for spans and metrics. Defaults to off unless the
/// COLUMBIA_TRACE environment variable is set to a nonzero value.
bool enabled();
void set_enabled(bool on);
#else
constexpr bool enabled() { return false; }
inline void set_enabled(bool) {}
#endif

/// Named integer attribute attached to a 'B' event. `name` must be a
/// string literal (or otherwise outlive the recorder).
struct SpanArg {
  const char* name = nullptr;
  std::int64_t value = 0;
};

/// Maximum attributes per span: the halo.xchg family needs
/// rank/nbr/level/strat/bytes.
inline constexpr int kMaxSpanArgs = 5;

/// One begin or end event. `name` and arg names must be string literals
/// (or otherwise outlive the recorder); `tid` is filled in at export time
/// from the owning buffer.
struct TraceEvent {
  const char* name = nullptr;
  SpanArg args[kMaxSpanArgs];  // optional integer arguments on 'B' events
  int nargs = 0;
  std::uint64_t ts_ns = 0;
  std::uint32_t tid = 0;
  char phase = 'B';  // 'B' or 'E'

  /// Value of the argument named `key`, or `fallback` when absent.
  std::int64_t arg_or(const char* key, std::int64_t fallback) const;
};

#if COLUMBIA_OBS_ENABLED
void record_span_event(const char* name, char phase,
                       const SpanArg* args = nullptr, int nargs = 0);
#else
inline void record_span_event(const char*, char, const SpanArg* = nullptr,
                              int = 0) {}
#endif

/// RAII span. Prefer the OBS_SPAN macro (obs/obs.hpp), which names the
/// guard for you.
class SpanGuard {
 public:
  explicit SpanGuard(const char* name) {
    if (enabled()) {
      name_ = name;
      record_span_event(name, 'B');
    }
  }
  SpanGuard(const char* name, const char* arg_name, std::int64_t arg_value) {
    if (enabled()) {
      name_ = name;
      const SpanArg arg{arg_name, arg_value};
      record_span_event(name, 'B', &arg, 1);
    }
  }
  /// Multi-attribute span (at most kMaxSpanArgs; extras are dropped).
  SpanGuard(const char* name, std::initializer_list<SpanArg> args) {
    if (enabled()) {
      name_ = name;
      record_span_event(name, 'B', args.begin(), int(args.size()));
    }
  }
  ~SpanGuard() {
    if (name_) record_span_event(name_, 'E');
  }

  /// Ends the span before scope exit (idempotent); the destructor then
  /// records nothing.
  void close() {
    if (name_) {
      record_span_event(name_, 'E');
      name_ = nullptr;
    }
  }

  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

 private:
  // Non-null iff a begin event was recorded: the end event pairs with it
  // even if tracing is switched off mid-span.
  const char* name_ = nullptr;
};

/// Total events recorded across all thread buffers.
std::size_t num_trace_events();

/// The recorder epoch: the steady-clock tick (WallTimer::now_ns units) all
/// exported timestamps are relative to. Pinned at the first of set_enabled
/// / export / this call — a forked rank pins its own epoch, which is why
/// telemetry shards record it (obs/shard.hpp) for offline clock alignment.
std::uint64_t trace_epoch_ns();

/// All recorded events, per-buffer in program order (so each thread's
/// begin/end events are properly nested), with `tid` filled in.
std::vector<TraceEvent> trace_snapshot();

/// Writes the Chrome trace_event JSON document ("traceEvents" array of
/// duration events). Timestamps are microseconds relative to the recorder
/// epoch, at nanosecond resolution.
void write_chrome_trace(std::ostream& os);

/// Convenience: write_chrome_trace to `path`; false if the file cannot be
/// opened.
bool write_chrome_trace_file(const std::string& path);

/// Clears every buffer's event count (buffers themselves persist, so
/// thread-local recorders stay valid). Call only while no spans are open.
void reset_trace();

}  // namespace columbia::obs
