#include "obs/report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <mutex>
#include <ostream>
#include <sstream>

#include "obs/comm_report.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "support/durable.hpp"
#include "support/timer.hpp"

namespace columbia::obs {

bool is_comm_phase(const std::string& name) {
  return name.rfind("halo.", 0) == 0;
}

namespace {

struct Key {
  std::string phase;
  std::int64_t level;
  bool operator<(const Key& o) const {
    if (phase != o.phase) return phase < o.phase;
    return level < o.level;
  }
};

struct Accum {
  std::vector<double> instances_s;     // exclusive seconds per span instance
  std::map<int, double> thread_s;      // exclusive seconds per tid
};

double imbalance_of(const std::map<int, double>& thread_s) {
  if (thread_s.size() < 2) return 1.0;
  double sum = 0, mx = 0;
  for (const auto& [tid, s] : thread_s) {
    sum += s;
    mx = std::max(mx, s);
  }
  const double mean = sum / double(thread_s.size());
  return mean > 0 ? mx / mean : 1.0;
}

double p95_of(std::vector<double>& v) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const std::size_t idx =
      std::size_t(std::ceil(0.95 * double(v.size()))) - 1;
  return v[std::min(idx, v.size() - 1)];
}

}  // namespace

PhaseProfile build_profile(const std::vector<PhaseEvent>& events) {
  PhaseProfile out;

  // Regroup per thread, preserving each thread's recording order (both
  // producers append per-thread in order even when tids interleave).
  std::map<int, std::vector<const PhaseEvent*>> per_tid;
  for (const PhaseEvent& e : events) per_tid[e.tid].push_back(&e);

  struct Frame {
    const std::string* name;
    std::int64_t level;
    double start_us;
    double child_us = 0;  // inclusive time of completed children
  };

  std::map<Key, Accum> accum;
  std::map<int, double> comm_thread_s;
  std::map<std::int64_t, Accum> level_accum;
  std::map<std::int64_t, double> level_comm_s;

  for (const auto& [tid, evs] : per_tid) {
    if (evs.empty()) continue;
    out.wall_s =
        std::max(out.wall_s, (evs.back()->ts_us - evs.front()->ts_us) / 1e6);
    std::vector<Frame> stack;
    for (const PhaseEvent* e : evs) {
      if (e->phase == 'B') {
        stack.push_back({&e->name, e->level, e->ts_us});
        continue;
      }
      if (e->phase != 'E') continue;
      // Unmatched ends (window cut mid-span, or a begin recorded before
      // the window opened) are dropped rather than guessed at.
      if (stack.empty() || *stack.back().name != e->name) continue;
      const Frame f = stack.back();
      stack.pop_back();
      const double incl_us = e->ts_us - f.start_us;
      const double excl_s =
          std::max(0.0, (incl_us - f.child_us)) / 1e6;
      if (!stack.empty()) stack.back().child_us += incl_us;
      Accum& a = accum[{*f.name, f.level}];
      a.instances_s.push_back(excl_s);
      a.thread_s[tid] += excl_s;
      out.busy_s += excl_s;
      if (is_comm_phase(*f.name)) {
        out.comm_s += excl_s;
        comm_thread_s[tid] += excl_s;
      }
      if (f.level >= 0) {
        Accum& la = level_accum[f.level];
        la.instances_s.push_back(excl_s);
        la.thread_s[tid] += excl_s;
        if (is_comm_phase(*f.name)) level_comm_s[f.level] += excl_s;
      }
    }
  }

  for (auto& [key, a] : accum) {
    PhaseStats s;
    s.phase = key.phase;
    s.level = key.level;
    s.calls = a.instances_s.size();
    s.threads = int(a.thread_s.size());
    double mn = a.instances_s.empty() ? 0 : a.instances_s.front(), mx = 0;
    for (double x : a.instances_s) {
      s.total_s += x;
      mn = std::min(mn, x);
      mx = std::max(mx, x);
    }
    s.min_s = mn;
    s.max_s = mx;
    s.mean_s = s.calls > 0 ? s.total_s / double(s.calls) : 0;
    s.p95_s = p95_of(a.instances_s);
    s.imbalance = imbalance_of(a.thread_s);
    out.phases.push_back(std::move(s));
  }
  std::sort(out.phases.begin(), out.phases.end(),
            [](const PhaseStats& a, const PhaseStats& b) {
              if (a.total_s != b.total_s) return a.total_s > b.total_s;
              if (a.phase != b.phase) return a.phase < b.phase;
              return a.level < b.level;
            });

  for (auto& [level, a] : level_accum) {
    LevelStats ls;
    ls.level = level;
    ls.calls = a.instances_s.size();
    for (double x : a.instances_s) ls.total_s += x;
    ls.imbalance = imbalance_of(a.thread_s);
    const auto it = level_comm_s.find(level);
    ls.comm_s = it != level_comm_s.end() ? it->second : 0;
    out.levels.push_back(ls);
  }

  for (const auto& [tid, s] : comm_thread_s) out.comm_per_thread.push_back(s);
  out.comm_fraction = out.busy_s > 0 ? out.comm_s / out.busy_s : 0;
  return out;
}

namespace {

struct CommTotals {
  std::uint64_t exchanges = 0, messages = 0, bytes = 0, retransmits = 0;
};

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Sums the registry's halo transport counters without creating entries.
CommTotals comm_counter_totals() {
  CommTotals t;
  for (const std::string& name : counter_names()) {
    const std::uint64_t v = counter(name).value();
    if (name == "resil.halo.retransmits") {
      t.retransmits += v;
    } else if (name.rfind("halo.", 0) == 0) {
      if (ends_with(name, ".exchanges")) t.exchanges += v;
      if (ends_with(name, ".messages")) t.messages += v;
      if (ends_with(name, ".bytes")) t.bytes += v;
    }
  }
  return t;
}

}  // namespace

std::vector<PhaseEvent> phase_events_since(std::uint64_t min_ts_ns) {
  const std::vector<TraceEvent> snap = trace_snapshot();
  std::uint64_t epoch = ~std::uint64_t(0);
  for (const TraceEvent& e : snap)
    if (e.ts_ns >= min_ts_ns) epoch = std::min(epoch, e.ts_ns);
  std::vector<PhaseEvent> events;
  events.reserve(snap.size());
  for (const TraceEvent& e : snap) {
    if (e.ts_ns < min_ts_ns || e.name == nullptr) continue;
    PhaseEvent pe;
    pe.name = e.name;
    pe.phase = e.phase;
    pe.ts_us = double(e.ts_ns - epoch) / 1e3;
    pe.tid = int(e.tid);
    if (e.phase == 'B') {
      pe.level = e.arg_or("level", -1);
      pe.rank = e.arg_or("rank", -1);
      pe.nbr = e.arg_or("nbr", -1);
      pe.strat = e.arg_or("strat", -1);
      pe.bytes = e.arg_or("bytes", -1);
    }
    events.push_back(std::move(pe));
  }
  return events;
}

PhaseProfile current_profile(std::uint64_t min_ts_ns) {
  PhaseProfile p = build_profile(phase_events_since(min_ts_ns));
  const CommTotals t = comm_counter_totals();
  p.comm_exchanges = t.exchanges;
  p.comm_messages = t.messages;
  p.comm_bytes = t.bytes;
  p.comm_retransmits = t.retransmits;
  return p;
}

Table profile_table(const PhaseProfile& p) {
  Table t({"phase", "level", "calls", "threads", "total s", "min ms",
           "mean ms", "p95 ms", "max ms", "imbalance"});
  for (const PhaseStats& s : p.phases) {
    t.add_row({s.phase, s.level >= 0 ? std::to_string(s.level) : "-",
               std::to_string(s.calls), std::to_string(s.threads),
               Table::num(s.total_s, 4), Table::num(s.min_s * 1e3, 3),
               Table::num(s.mean_s * 1e3, 3), Table::num(s.p95_s * 1e3, 3),
               Table::num(s.max_s * 1e3, 3), Table::num(s.imbalance, 2)});
  }
  return t;
}

Table level_table(const PhaseProfile& p) {
  // "comm s" rides at the end so older fixtures' pinned row prefixes keep
  // matching; it is nonzero only when halo spans carried a level arg.
  Table t({"level", "calls", "excl s", "share", "imbalance", "comm s"});
  double sum = 0;
  for (const LevelStats& l : p.levels) sum += l.total_s;
  for (const LevelStats& l : p.levels) {
    t.add_row({std::to_string(l.level), std::to_string(l.calls),
               Table::num(l.total_s, 4),
               Table::num(sum > 0 ? l.total_s / sum : 0, 3),
               Table::num(l.imbalance, 2), Table::num(l.comm_s, 4)});
  }
  return t;
}

Table summary_table(const PhaseProfile& p) {
  Table t({"metric", "value"});
  t.add_row({"wall s", Table::num(p.wall_s, 4)});
  t.add_row({"busy s (sum of exclusive)", Table::num(p.busy_s, 4)});
  t.add_row({"comm s", Table::num(p.comm_s, 4)});
  t.add_row({"comm fraction", Table::num(p.comm_fraction, 3)});
  double crit = 0;
  for (double s : p.comm_per_thread) crit = std::max(crit, s);
  t.add_row({"halo critical path s (busiest thread)", Table::num(crit, 4)});
  t.add_row({"halo exchanges", std::to_string(p.comm_exchanges)});
  t.add_row({"halo messages", std::to_string(p.comm_messages)});
  t.add_row({"halo MB", Table::num(double(p.comm_bytes) / 1e6, 3)});
  t.add_row({"halo retransmits", std::to_string(p.comm_retransmits)});
  return t;
}

void write_profile_json(std::ostream& os, const std::string& name,
                        const PhaseProfile& p, const CommReport* comm) {
  JsonWriter w(os);
  write_profile_json_into(w, name, p, comm);
}

void write_profile_json_into(JsonWriter& w, const std::string& name,
                             const PhaseProfile& p, const CommReport* comm) {
  w.begin_object();
  w.kv("solver", name);
  w.kv("wall_s", p.wall_s);
  w.kv("busy_s", p.busy_s);
  w.key("comm").begin_object();
  w.kv("seconds", p.comm_s);
  w.kv("fraction", p.comm_fraction);
  double crit = 0;
  for (double s : p.comm_per_thread) crit = std::max(crit, s);
  w.kv("critical_path_s", crit);
  w.key("per_thread_s").begin_array();
  for (double s : p.comm_per_thread) w.value(s);
  w.end_array();
  w.kv("exchanges", p.comm_exchanges);
  w.kv("messages", p.comm_messages);
  w.kv("bytes", p.comm_bytes);
  w.kv("retransmits", p.comm_retransmits);
  w.end_object();
  if (comm != nullptr && !comm->empty()) {
    w.key("comm_xchg");
    write_comm_json_into(w, *comm);
  }
  w.key("levels").begin_array();
  for (const LevelStats& l : p.levels) {
    w.begin_object();
    w.kv("level", l.level);
    w.kv("calls", l.calls);
    w.kv("seconds", l.total_s);
    w.kv("imbalance", l.imbalance);
    w.kv("comm_s", l.comm_s);
    w.end_object();
  }
  w.end_array();
  w.key("phases").begin_array();
  for (const PhaseStats& s : p.phases) {
    w.begin_object();
    w.kv("phase", s.phase);
    w.kv("level", s.level);
    w.kv("calls", s.calls);
    w.kv("threads", s.threads);
    w.kv("total_s", s.total_s);
    w.kv("min_s", s.min_s);
    w.kv("mean_s", s.mean_s);
    w.kv("p95_s", s.p95_s);
    w.kv("max_s", s.max_s);
    w.kv("imbalance", s.imbalance);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

// --- COLUMBIA_REPORT switch ----------------------------------------------

namespace {

struct ReportConfig {
  bool on = false;
  std::string path;
};

ReportConfig& report_config() {
  static ReportConfig* cfg = [] {
    auto* c = new ReportConfig;  // outlives static dtors
    const char* env = std::getenv("COLUMBIA_REPORT");
    if (env != nullptr && *env != '\0' && std::string(env) != "0") {
      c->on = true;
      if (std::string(env) != "1") c->path = env;
    }
    return c;
  }();
  return *cfg;
}

/// Serializes concurrent end-of-solve reports (database sweeps run cases
/// on worker threads): whole-summary prints and whole-line appends.
std::mutex& report_mu() {
  static std::mutex* mu = new std::mutex;
  return *mu;
}

}  // namespace

bool report_enabled() { return report_config().on; }

const std::string& report_path() { return report_config().path; }

void set_report(bool on, const std::string& path) {
  report_config().on = on;
  report_config().path = path;
}

SolveReportScope::SolveReportScope(std::string name)
    : name_(std::move(name)) {
  if (!kCompiledIn || !report_enabled()) return;
  active_ = true;
  was_enabled_ = enabled();
  set_enabled(true);
  t0_ns_ = WallTimer::now_ns();
  const CommTotals t0 = comm_counter_totals();
  c0_exchanges_ = t0.exchanges;
  c0_messages_ = t0.messages;
  c0_bytes_ = t0.bytes;
  c0_retransmits_ = t0.retransmits;
}

SolveReportScope::~SolveReportScope() {
  if (!active_) return;
  const std::vector<PhaseEvent> events = phase_events_since(t0_ns_);
  set_enabled(was_enabled_);
  PhaseProfile p = build_profile(events);
  const CommTotals t = comm_counter_totals();
  p.comm_exchanges = t.exchanges - std::min(t.exchanges, c0_exchanges_);
  p.comm_messages = t.messages - std::min(t.messages, c0_messages_);
  p.comm_bytes = t.bytes - std::min(t.bytes, c0_bytes_);
  p.comm_retransmits =
      t.retransmits - std::min(t.retransmits, c0_retransmits_);
  const CommReport comm = build_comm_report(events);

  std::lock_guard<std::mutex> lock(report_mu());
  std::cerr << "== columbia report: " << name_ << " ==\n"
            << summary_table(p).to_string();
  const Table lt = level_table(p);
  if (!lt.rows().empty()) std::cerr << lt.to_string();
  std::cerr << profile_table(p).to_string();
  if (!comm.empty()) {
    std::cerr << "-- comm observatory: wait matrix --\n"
              << comm_wait_matrix_table(comm).to_string()
              << "-- comm observatory: strategy rollup --\n"
              << comm_strategy_table(comm).to_string();
    if (!comm.levels.empty())
      std::cerr << "-- comm observatory: overlap headroom --\n"
                << comm_overlap_table(comm).to_string();
  }

  if (!report_path().empty()) {
    std::ostringstream line;
    write_profile_json(line, name_, p, &comm);
    if (!support::durable_append_line(report_path(), line.str()))
      std::cerr << "columbia report: cannot append to " << report_path()
                << '\n';
  }
}

}  // namespace columbia::obs
