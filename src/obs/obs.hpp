// Umbrella header for the observability layer (spans, metrics registry,
// convergence telemetry) plus the instrumentation macros used in the hot
// layers.
//
// Compile-time switch: configure with -DCOLUMBIA_OBS=OFF to compile every
// span and counter out entirely (the API surface remains and exporters
// produce empty documents). Runtime switch: obs::set_enabled(true) or the
// COLUMBIA_TRACE=1 environment variable; disabled by default, in which
// case an instrumented hot path costs one relaxed atomic load.
#pragma once

#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"

#define COLUMBIA_OBS_CONCAT_IMPL(a, b) a##b
#define COLUMBIA_OBS_CONCAT(a, b) COLUMBIA_OBS_CONCAT_IMPL(a, b)

/// Scoped span: OBS_SPAN("nsu3d.smooth") or
/// OBS_SPAN("nsu3d.smooth", "level", l) for an integer argument shown in
/// the trace viewer.
#define OBS_SPAN(...)                                             \
  ::columbia::obs::SpanGuard COLUMBIA_OBS_CONCAT(obs_span_guard_, \
                                                 __LINE__)(__VA_ARGS__)

/// Bumps the named counter by `n`. The registry lookup resolves once per
/// call site, and only after observability is first enabled; disabled or
/// compiled-out builds pay a branch at most.
#define OBS_COUNT(name_literal, n)                             \
  do {                                                         \
    if (::columbia::obs::enabled()) {                          \
      static ::columbia::obs::Counter& obs_count_counter_ =    \
          ::columbia::obs::counter(name_literal);              \
      obs_count_counter_.add(std::uint64_t(n));                \
    }                                                          \
  } while (0)
