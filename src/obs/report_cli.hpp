// The columbia_report command-line logic (tools/columbia_report is a thin
// main around run()). Lives in the obs library so the report tests can
// drive it hermetically against committed fixtures and so the analysis
// shares obs::build_profile with the in-process flight recorder.
//
// Inputs are classified by content, not extension:
//   * Chrome trace JSON ({"traceEvents": [...]}) — from
//     obs::write_chrome_trace_file or an example's --trace flag. One file
//     prints its phase profile; several files become a scaling series
//     (Fig. 14b/15-style speedup and parallel-efficiency table, keyed by
//     each trace's recorded thread count).
//   * Convergence JSONL (lines with "cycle"/"residual") — from
//     obs::open_jsonl. Prints the residual trajectory summary and the
//     per-level exclusive-time rollup.
//   * bench --json reports ({"bench": ...}) — with --baseline PATH, runs
//     the perf-regression gate against the committed BENCH_*.json.
//
// Gate semantics: timing metrics regress when current exceeds baseline by
// more than --tolerance; count metrics (messages, allocs/exchange) must
// not grow at all; thread-sweep timings whose thread count exceeds the
// host's hardware threads are skipped with an explicit reason rather than
// failed (a 1-core CI box cannot measure a 4-thread sweep).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace columbia::obs::report {

/// Exit codes of run(): Ok also covers "nothing regressed".
enum ExitCode { kOk = 0, kRegression = 1, kUsage = 2 };

/// Runs the CLI: `args` excludes argv[0]; human output goes to `out`,
/// diagnostics to `err`. Returns an ExitCode value.
int run(const std::vector<std::string>& args, std::ostream& out,
        std::ostream& err);

}  // namespace columbia::obs::report
