#include "obs/json.hpp"

#include <cmath>
#include <cstdio>

namespace columbia::obs {

void JsonWriter::comma() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (!stack_.empty() && stack_.back()++ > 0) os_ << ',';
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  os_ << '{';
  stack_.push_back(0);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  stack_.pop_back();
  os_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma();
  os_ << '[';
  stack_.push_back(0);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  stack_.pop_back();
  os_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& k) {
  comma();
  os_ << '"' << escape(k) << "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  comma();
  os_ << '"' << escape(v) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) { return value(std::string(v)); }

JsonWriter& JsonWriter::value(double v) {
  comma();
  if (!std::isfinite(v)) {
    // JSON has no Infinity/NaN; null is the conventional stand-in.
    os_ << "null";
    return *this;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  os_ << buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  comma();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  comma();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  comma();
  os_ << (v ? "true" : "false");
  return *this;
}

std::string JsonWriter::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += char(c);
        }
    }
  }
  return out;
}

}  // namespace columbia::obs
