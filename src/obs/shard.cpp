#include "obs/shard.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <fstream>
#include <map>
#include <mutex>
#include <ostream>
#include <set>
#include <sstream>
#include <thread>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry.hpp"
#include "support/build_info.hpp"
#include "support/durable.hpp"
#include "support/timer.hpp"

namespace columbia::obs {

namespace {

/// Steady-clock nanosecond quantities can exceed the 53-bit integers a
/// JSON double round-trips (a multi-host offset carries the boot-time
/// difference), so the shard serializes them as decimal strings; small
/// derived times travel as relative microseconds in plain numbers.
void write_clock_into(JsonWriter& w, const char* key, const ShardClock& c) {
  w.key(key).begin_object();
  w.kv("synced", c.synced);
  w.kv("offset_ns", std::to_string(c.offset_ns));
  w.kv("rtt_ns", std::to_string(c.rtt_ns));
  w.kv("samples", c.samples);
  w.end_object();
}

std::int64_t parse_i64(const JsonValue& obj, const std::string& key) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) return 0;
  if (v->is_number()) return std::int64_t(v->number());
  if (!v->is_string()) return 0;
  char* end = nullptr;
  const long long n = std::strtoll(v->str().c_str(), &end, 10);
  return end != v->str().c_str() ? std::int64_t(n) : 0;
}

ShardClock parse_clock(const JsonValue& parent, const std::string& key) {
  ShardClock c;
  const JsonValue* v = parent.find(key);
  if (v == nullptr || !v->is_object()) return c;
  const JsonValue* synced = v->find("synced");
  c.synced = synced != nullptr && synced->is_bool() && synced->boolean();
  c.offset_ns = parse_i64(*v, "offset_ns");
  c.rtt_ns = parse_i64(*v, "rtt_ns");
  c.samples = int(v->number_or("samples", 0));
  return c;
}

void write_header_line(std::ostream& os, const ShardOptions& opt,
                       std::uint64_t base_ns, const ShardClock& clock) {
  JsonWriter w(os);
  const BuildInfo& bi = build_info();
  w.begin_object();
  w.kv("telemetry_shard", 1);
  w.kv("rank", opt.rank);
  w.kv("ranks", opt.ranks);
  w.kv("round", opt.round);
  w.kv("pid", std::int64_t(::getpid()));
  w.kv("backend", opt.backend);
  w.kv("git_sha", bi.git_sha);
  w.kv("build_type", bi.build_type);
  w.kv("obs", bi.obs_compiled);
  w.kv("fault_spec", opt.fault_spec);
  w.kv("clock_base_ns", std::to_string(base_ns));
  write_clock_into(w, "clock", clock);
  w.end_object();
  os << '\n';
}

}  // namespace

// --- Recorder (rank-process side) ------------------------------------------

#if COLUMBIA_OBS_ENABLED

/// Owns the recorder's serialization lock and the optional autoflush
/// thread. A pimpl so the header stays free of <thread>/<mutex>.
struct FlightRecorder::Flusher {
  std::mutex mu;                 // guards write_image + clock/flush state
  std::mutex wake_mu;
  std::condition_variable wake;
  bool stop = false;
  std::thread thread;

  void start(int period_ms, FlightRecorder* rec) {
    thread = std::thread([this, period_ms, rec] {
      std::unique_lock<std::mutex> lock(wake_mu);
      while (!stop) {
        wake.wait_for(lock, std::chrono::milliseconds(period_ms));
        if (stop) break;
        lock.unlock();
        rec->flush();
        lock.lock();
      }
    });
  }

  void halt() {
    {
      std::lock_guard<std::mutex> lock(wake_mu);
      stop = true;
    }
    wake.notify_all();
    if (thread.joinable()) thread.join();
  }

  ~Flusher() { halt(); }
};

FlightRecorder::FlightRecorder(const ShardOptions& opt)
    : opt_(opt), flusher_(std::make_unique<Flusher>()) {
  // A forked child inherits the parent's trace buffers verbatim; this
  // shard must carry only what THIS rank records.
  reset_trace();
  set_enabled(true);
  base_ns_ = trace_epoch_ns();
  flush();
  if (opt_.flush_ms > 0) flusher_->start(opt_.flush_ms, this);
}

FlightRecorder::~FlightRecorder() {
  flusher_->halt();
  if (!finalized_) {
    // No footer: whoever reads this shard sees a truncated (but complete
    // through the last flush) recording — the crashed-rank signature.
    std::lock_guard<std::mutex> lock(flusher_->mu);
    write_image(false, ShardClock{});
  }
}

void FlightRecorder::set_clock(const ShardClock& clock) {
  {
    std::lock_guard<std::mutex> lock(flusher_->mu);
    clock_ = clock;
  }
  flush();
}

bool FlightRecorder::flush() {
  std::lock_guard<std::mutex> lock(flusher_->mu);
  if (finalized_) return true;
  return write_image(false, ShardClock{});
}

bool FlightRecorder::finalize(const ShardClock& end_clock) {
  flusher_->halt();
  std::lock_guard<std::mutex> lock(flusher_->mu);
  if (finalized_) return true;
  finalized_ = true;
  return write_image(true, end_clock);
}

bool FlightRecorder::write_image(bool with_footer,
                                 const ShardClock& end_clock) {
  std::ostringstream os;
  write_header_line(os, opt_, base_ns_, clock_);

  for (const TraceEvent& e : trace_snapshot()) {
    JsonWriter w(os);
    w.begin_object();
    w.kv("name", e.name);
    w.kv("ph", std::string(1, e.phase));
    const std::uint64_t rel = e.ts_ns >= base_ns_ ? e.ts_ns - base_ns_ : 0;
    w.kv("ts", double(rel) / 1e3);
    w.kv("tid", std::int64_t(e.tid));
    if (e.phase == 'B' && e.nargs > 0) {
      w.key("args").begin_object();
      for (int i = 0; i < e.nargs; ++i)
        if (e.args[i].name != nullptr) w.kv(e.args[i].name, e.args[i].value);
      w.end_object();
    }
    w.end_object();
    os << '\n';
  }

  // Convergence JSONL lines, wrapped so the shard stays one-object-per-
  // line. The sink lines are themselves JsonWriter output, so splicing
  // them in verbatim keeps the document well-formed.
  const std::string conv = jsonl_buffer();
  std::size_t start = 0;
  while (start < conv.size()) {
    std::size_t end = conv.find('\n', start);
    if (end == std::string::npos) end = conv.size();
    if (end > start)
      os << "{\"conv\":" << conv.substr(start, end - start) << "}\n";
    start = end + 1;
  }

  {
    std::ostringstream ms;
    write_metrics_json(ms);
    std::string mjson = ms.str();
    // write_metrics_json terminates its document with '\n'; embedded in a
    // JSONL line that newline would split the record in two.
    while (!mjson.empty() && (mjson.back() == '\n' || mjson.back() == '\r'))
      mjson.pop_back();
    os << "{\"metrics\":" << mjson << "}\n";
  }

  const std::uint64_t now = WallTimer::now_ns();
  const double now_us =
      now >= base_ns_ ? double(now - base_ns_) / 1e3 : 0.0;
  ++flushes_;
  os << "{\"flush\":" << flushes_ << ",\"ts\":";
  {
    JsonWriter w(os);
    w.value(now_us);
  }
  os << "}\n";

  if (with_footer) {
    JsonWriter w(os);
    w.begin_object();
    w.kv("end", 1);
    w.kv("ts", now_us);
    w.kv("events", std::uint64_t(num_trace_events()));
    write_clock_into(w, "end_clock", end_clock);
    w.end_object();
    os << '\n';
  }
  return support::durable_write_file(opt_.path, os.str());
}

#else  // !COLUMBIA_OBS_ENABLED

FlightRecorder::FlightRecorder(const ShardOptions& opt) : path_(opt.path) {
  // Span recording is compiled out; leave a valid header-only shard so
  // downstream gathering/merging degrades to empty timelines, not errors.
  std::ostringstream os;
  write_header_line(os, opt, 0, ShardClock{});
  support::durable_write_file(path_, os.str());
}

#endif  // COLUMBIA_OBS_ENABLED

// --- Offline ingest / merge -------------------------------------------------

bool is_shard_text(const std::string& text) {
  std::size_t nl = text.find('\n');
  if (nl == std::string::npos) nl = text.size();
  JsonValue head;
  if (!parse_json(text.substr(0, nl), head)) return false;
  return head.find("telemetry_shard") != nullptr;
}

bool parse_shard(const std::string& text, TelemetryShard& out,
                 std::string* error) {
  const std::vector<JsonValue> lines = parse_jsonl(text);
  if (lines.empty() || lines.front().find("telemetry_shard") == nullptr) {
    if (error != nullptr) *error = "not a telemetry shard (no header line)";
    return false;
  }
  const JsonValue& h = lines.front();
  out.rank = int(h.number_or("rank", 0));
  out.ranks = int(h.number_or("ranks", 1));
  out.round = int(h.number_or("round", 0));
  out.pid = std::int64_t(h.number_or("pid", 0));
  out.backend = h.string_or("backend", "");
  out.git_sha = h.string_or("git_sha", "");
  out.build_type = h.string_or("build_type", "");
  const JsonValue* obs = h.find("obs");
  out.obs = obs == nullptr || !obs->is_bool() || obs->boolean();
  out.fault_spec = h.string_or("fault_spec", "");
  out.clock_base_ns = std::uint64_t(parse_i64(h, "clock_base_ns"));
  out.clock = parse_clock(h, "clock");

  for (std::size_t i = 1; i < lines.size(); ++i) {
    const JsonValue& l = lines[i];
    if (!l.is_object()) continue;
    if (const JsonValue* ph = l.find("ph"); ph != nullptr) {
      const std::string p = ph->is_string() ? ph->str() : "";
      if (p != "B" && p != "E") continue;
      PhaseEvent pe;
      pe.name = l.string_or("name", "");
      pe.phase = p[0];
      pe.ts_us = l.number_or("ts", 0);
      pe.tid = int(l.number_or("tid", 0));
      if (const JsonValue* args = l.find("args");
          args != nullptr && args->is_object()) {
        pe.level = std::int64_t(args->number_or("level", -1));
        pe.rank = std::int64_t(args->number_or("rank", -1));
        pe.nbr = std::int64_t(args->number_or("nbr", -1));
        pe.strat = std::int64_t(args->number_or("strat", -1));
        pe.bytes = std::int64_t(args->number_or("bytes", -1));
      }
      pe.round = out.round;
      out.events.push_back(std::move(pe));
      continue;
    }
    if (const JsonValue* conv = l.find("conv"); conv != nullptr) {
      out.conv.push_back(*conv);
      continue;
    }
    if (l.find("flush") != nullptr) {
      // Each image carries one marker numbered with the cumulative flush
      // count, so the value (not the line count) is the liveness pulse.
      out.flushes = int(l.number_or("flush", double(out.flushes + 1)));
      out.last_flush_us = l.number_or("ts", out.last_flush_us);
      continue;
    }
    if (l.find("end") != nullptr) {
      out.truncated = false;
      out.end_us = l.number_or("ts", 0);
      out.end_clock = parse_clock(l, "end_clock");
      continue;
    }
    // "metrics" and anything newer: carried for humans, not merged.
  }
  return true;
}

bool read_shard_file(const std::string& path, TelemetryShard& out,
                     std::string* error) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  std::ostringstream ss;
  ss << is.rdbuf();
  out.path = path;
  return parse_shard(ss.str(), out, error);
}

MergedTelemetry merge_shards(std::vector<TelemetryShard> shards) {
  MergedTelemetry m;
  if (shards.empty()) return m;
  std::stable_sort(shards.begin(), shards.end(),
                   [](const TelemetryShard& a, const TelemetryShard& b) {
                     if (a.round != b.round) return a.round < b.round;
                     if (a.rank != b.rank) return a.rank < b.rank;
                     return a.path < b.path;
                   });

  const TelemetryShard& first = shards.front();
  m.backend = first.backend;
  m.git_sha = first.git_sha;
  m.build_type = first.build_type;

  // Provenance guard: merged analysis is only meaningful when every shard
  // came from the same build of the same run configuration.
  auto mismatch = [&](const std::string& what, const std::string& a,
                      const std::string& b, const TelemetryShard& s) {
    m.warnings.push_back("provenance mismatch: " + what + " is '" + b +
                         "' in " + s.path + " but '" + a + "' in " +
                         first.path);
  };
  std::set<int> ranks, rounds;
  for (const TelemetryShard& s : shards) {
    ranks.insert(s.rank);
    rounds.insert(s.round);
    if (s.git_sha != first.git_sha)
      mismatch("git SHA", first.git_sha, s.git_sha, s);
    if (s.build_type != first.build_type)
      mismatch("build type", first.build_type, s.build_type, s);
    if (s.fault_spec != first.fault_spec)
      mismatch("fault spec", first.fault_spec, s.fault_spec, s);
    if (s.backend != first.backend)
      mismatch("backend", first.backend, s.backend, s);
    if (s.ranks != first.ranks)
      mismatch("group size", std::to_string(first.ranks),
               std::to_string(s.ranks), s);
    if (!s.clock.synced && s.rank != 0)
      m.warnings.push_back("clock: rank " + std::to_string(s.rank) +
                           " round " + std::to_string(s.round) +
                           " never synced (offset 0 assumed): " + s.path);
  }
  m.ranks = int(ranks.size());
  m.rounds = int(rounds.size());

  // Clock-align within each launch round, then serialize the rounds onto
  // disjoint windows: a failed round's unmatched posts must not slide
  // under the next round's waits in the k-th-to-k-th pairing.
  double next_round_base_us = 0;
  int tid_base = 0;
  for (std::size_t i = 0; i < shards.size();) {
    std::size_t j = i;
    while (j < shards.size() && shards[j].round == shards[i].round) ++j;

    double round_min = 0, round_max = 0;
    bool any = false;
    auto corrected_base_us = [](const TelemetryShard& s) {
      return (double(s.clock_base_ns) + double(s.clock.offset_ns)) / 1e3;
    };
    for (std::size_t k = i; k < j; ++k) {
      const TelemetryShard& s = shards[k];
      const double base = corrected_base_us(s);
      double last = std::max(s.last_flush_us, s.end_us);
      for (const PhaseEvent& e : s.events) last = std::max(last, e.ts_us);
      if (!any || base < round_min) round_min = base;
      if (!any || base + last > round_max) round_max = base + last;
      any = true;
    }
    if (!any) round_min = round_max = 0;
    const double shift = next_round_base_us - round_min;

    for (std::size_t k = i; k < j; ++k) {
      TelemetryShard& s = shards[k];
      s.merged_base_us = corrected_base_us(s) + shift;
      int max_tid = 0;
      for (PhaseEvent& e : s.events) {
        max_tid = std::max(max_tid, e.tid);
        e.ts_us += s.merged_base_us;
        e.tid += tid_base;
        e.round = s.round;
        m.event_member.push_back(s.rank);
        m.events.push_back(std::move(e));
      }
      s.events.clear();
      tid_base += max_tid + 1;
    }
    next_round_base_us = (round_max + shift) + 1e3;  // 1 ms inter-round gap
    i = j;
  }
  m.shards = std::move(shards);
  return m;
}

void write_merged_chrome_trace(std::ostream& os, const MergedTelemetry& m) {
  std::set<int> tids, members;
  for (const PhaseEvent& e : m.events) tids.insert(e.tid);
  for (const int r : m.event_member) members.insert(r);
  for (const TelemetryShard& s : m.shards) members.insert(s.rank);

  JsonWriter w(os);
  w.begin_object();
  w.kv("displayTimeUnit", "ms");
  w.key("columbia").begin_object();
  w.kv("git_sha", m.git_sha);
  w.kv("build_type", m.build_type);
  w.kv("obs", m.shards.empty() ? true : m.shards.front().obs);
  w.kv("threads", std::int64_t(tids.size()));
  w.kv("hardware_threads", std::int64_t(hardware_threads()));
  w.kv("backend", m.backend);
  w.kv("ranks", std::int64_t(m.ranks));
  w.kv("rounds", std::int64_t(m.rounds));
  w.key("warnings").begin_array();
  for (const std::string& s : m.warnings) w.value(s);
  w.end_array();
  w.key("shards").begin_array();
  for (const TelemetryShard& s : m.shards) {
    w.begin_object();
    w.kv("path", s.path);
    w.kv("rank", s.rank);
    w.kv("ranks", s.ranks);
    w.kv("round", s.round);
    w.kv("pid", s.pid);
    w.kv("backend", s.backend);
    w.kv("git_sha", s.git_sha);
    w.kv("build_type", s.build_type);
    w.kv("fault_spec", s.fault_spec);
    w.kv("truncated", s.truncated);
    w.kv("flushes", s.flushes);
    w.kv("start_us", s.merged_base_us);
    w.kv("last_flush_us", s.merged_base_us + s.last_flush_us);
    if (!s.truncated) w.kv("end_us", s.merged_base_us + s.end_us);
    write_clock_into(w, "clock", s.clock);
    if (!s.truncated) write_clock_into(w, "end_clock", s.end_clock);
    w.end_object();
  }
  w.end_array();
  w.end_object();

  w.key("traceEvents").begin_array();
  for (const int r : members) {
    w.begin_object();
    w.kv("name", "process_name");
    w.kv("ph", "M");
    w.kv("pid", std::int64_t(r));
    w.kv("tid", std::int64_t(0));
    w.key("args").begin_object();
    w.kv("name", "rank " + std::to_string(r) +
                     (m.backend.empty() ? "" : " (" + m.backend + ")"));
    w.end_object();
    w.end_object();
  }
  for (std::size_t i = 0; i < m.events.size(); ++i) {
    const PhaseEvent& e = m.events[i];
    w.begin_object();
    w.kv("name", e.name);
    w.kv("ph", std::string(1, e.phase));
    w.kv("ts", e.ts_us);
    w.kv("pid",
         std::int64_t(i < m.event_member.size() ? m.event_member[i] : 0));
    w.kv("tid", std::int64_t(e.tid));
    if (e.phase == 'B') {
      w.key("args").begin_object();
      if (e.level >= 0) w.kv("level", e.level);
      if (e.rank >= 0) w.kv("rank", e.rank);
      if (e.nbr >= 0) w.kv("nbr", e.nbr);
      if (e.strat >= 0) w.kv("strat", e.strat);
      if (e.bytes >= 0) w.kv("bytes", e.bytes);
      w.kv("round", e.round);
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << '\n';
}

bool write_merged_chrome_trace_file(const std::string& path,
                                    const MergedTelemetry& m) {
  std::ostringstream os;
  write_merged_chrome_trace(os, m);
  return support::durable_write_file(path, os.str());
}

std::string rank_suffixed_path(const std::string& path, int rank) {
  const std::size_t slash = path.find_last_of('/');
  const std::size_t dot = path.find_last_of('.');
  const std::string suffix = ".rank" + std::to_string(rank);
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash) || dot == 0)
    return path + suffix;
  return path.substr(0, dot) + suffix + path.substr(dot);
}

std::string shard_file_path(const std::string& base, int rank, int round) {
  return base + ".rank" + std::to_string(rank) + ".round" +
         std::to_string(round) + ".jsonl";
}

}  // namespace columbia::obs
