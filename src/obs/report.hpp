// Performance observatory: rolls the raw span stream (obs/trace.hpp) up
// into the paper-style quantities its evaluation reasons about — exclusive
// per-phase/per-level time tables, load-imbalance factors (max/mean across
// threads, the quantity the paper tracks across ranks and multigrid
// levels), and the communication fraction of total busy time.
//
// Two consumers share this aggregation:
//   * in-process: MultigridDriver wraps every solve in a SolveReportScope;
//     with COLUMBIA_REPORT set, the end of the solve prints a
//     flight-recorder summary and can append the profile as JSONL.
//   * offline: tools/columbia_report parses Chrome-trace files back into
//     PhaseEvents and feeds them through the same profile builder, so the
//     live summary and the offline analysis can never disagree.
//
// Everything here is read-only over recorded telemetry: building or
// printing a profile never feeds back into solver arithmetic, so residual
// histories stay bit-identical with COLUMBIA_REPORT on or off.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "support/table.hpp"

namespace columbia::obs {

/// One begin/end span event with owned strings — the common currency of
/// the in-process snapshot and the offline Chrome-trace ingest.
struct PhaseEvent {
  std::string name;
  char phase = 'B';         // 'B' or 'E'
  double ts_us = 0;         // relative timestamp, microseconds
  int tid = 0;
  std::int64_t level = -1;  // multigrid level from the span arg; -1 = none
  // halo.xchg attributes (comm observatory); -1 when absent.
  std::int64_t rank = -1;   // logical rank that recorded the span
  std::int64_t nbr = -1;    // neighbor rank the message moves to/from
  std::int64_t strat = -1;  // exchange strategy: 0 = t2t, 1 = master
  std::int64_t bytes = -1;  // payload bytes (post/pack spans)
  /// Launch round the event was recorded in (run_recovering relaunches).
  /// In-process recordings are always round 0; merged telemetry shards
  /// stamp it so post/wait matching never pairs across a relaunch seam.
  std::int64_t round = 0;
};

/// Exclusive-time statistics for one (phase, level) pair. `min/mean/p95/
/// max` are over individual span instances (exclusive duration: the span
/// minus its same-thread children); `imbalance` is max/mean over the
/// per-thread exclusive totals — 1.0 means perfectly balanced, and it is
/// reported only when more than one thread recorded the phase.
struct PhaseStats {
  std::string phase;
  std::int64_t level = -1;
  std::uint64_t calls = 0;
  int threads = 0;       // distinct tids that recorded this phase
  double total_s = 0;    // sum of exclusive seconds over all instances
  double min_s = 0, mean_s = 0, p95_s = 0, max_s = 0;  // per-instance
  double imbalance = 1;  // max/mean of per-thread totals
};

/// Per-multigrid-level rollup: every level-tagged phase's exclusive time
/// summed per level, with the cross-thread imbalance of that level's work.
struct LevelStats {
  std::int64_t level = 0;
  std::uint64_t calls = 0;
  double total_s = 0;
  double imbalance = 1;  // max/mean of per-thread totals on this level
  double comm_s = 0;     // exclusive halo.* share of total_s on this level
};

/// Whole-run rollup produced by build_profile().
struct PhaseProfile {
  std::vector<PhaseStats> phases;  // sorted by total_s descending
  std::vector<LevelStats> levels;  // ascending by level
  double wall_s = 0;  // max over threads of (last end - first begin)
  double busy_s = 0;  // sum of all exclusive time, all threads
  /// Exclusive time spent in communication phases (span names beginning
  /// with "halo.") and its share of busy_s — the paper's communication
  /// fraction.
  double comm_s = 0;
  double comm_fraction = 0;
  /// Per-thread total communication seconds (index = position in the
  /// sorted tid list, not the tid itself). max(comm_per_thread) is the
  /// halo critical-path estimate: no schedule can finish its exchanges
  /// faster than its busiest thread.
  std::vector<double> comm_per_thread;
  /// Transport totals from the metrics registry (in-process profiles
  /// only; zero for offline trace ingest, which has no counter stream).
  std::uint64_t comm_exchanges = 0;
  std::uint64_t comm_messages = 0;
  std::uint64_t comm_bytes = 0;
  std::uint64_t comm_retransmits = 0;
};

/// True for span names the profile counts as communication.
bool is_comm_phase(const std::string& name);

/// Aggregates balanced begin/end pairs into a profile. Events must be
/// grouped per thread in recording order (both producers guarantee this);
/// unmatched begins/ends at the edges of the window are dropped.
PhaseProfile build_profile(const std::vector<PhaseEvent>& events);

/// Converts the live trace buffers into PhaseEvents, keeping only events
/// with ts_ns >= min_ts_ns — the shared front half of current_profile()
/// and the comm-observatory analyzer (obs/comm_report.hpp).
std::vector<PhaseEvent> phase_events_since(std::uint64_t min_ts_ns = 0);

/// Converts the live trace buffers into PhaseEvents, keeping only events
/// with ts_ns >= min_ts_ns (so a solve can profile just its own window),
/// then builds the profile and fills the transport totals from the
/// "halo.*" counters.
PhaseProfile current_profile(std::uint64_t min_ts_ns = 0);

/// Per-(phase, level) table of the profile: calls, exclusive totals,
/// instance min/mean/p95/max (milliseconds) and the imbalance factor.
Table profile_table(const PhaseProfile& p);

/// Per-multigrid-level rollup: exclusive seconds and imbalance for every
/// level-tagged phase, summed per level. Empty table if nothing carried a
/// level argument.
Table level_table(const PhaseProfile& p);

/// One-line-per-field summary (wall, busy, comm fraction, traffic).
Table summary_table(const PhaseProfile& p);

struct CommReport;  // obs/comm_report.hpp

/// Writes the profile as one JSON object:
/// {"solver", "wall_s", "busy_s", "comm": {...}, "phases": [...]}. When
/// `comm` is non-null a "comm_xchg" object (wait matrix, late-sender/
/// receiver split, overlap headroom) is appended.
void write_profile_json(std::ostream& os, const std::string& name,
                        const PhaseProfile& p,
                        const CommReport* comm = nullptr);

class JsonWriter;

/// Same object, emitted as the next value of an in-progress JsonWriter —
/// lets bench::Reporter embed the profile inside its own document.
void write_profile_json_into(JsonWriter& w, const std::string& name,
                             const PhaseProfile& p,
                             const CommReport* comm = nullptr);

// --- COLUMBIA_REPORT runtime switch -------------------------------------
//
// COLUMBIA_REPORT=1 prints the flight-recorder summary (stderr) at the
// end of every solve; any other non-zero value is a path the profile is
// appended to as JSONL, one record per solve, in addition to the summary.

/// True when end-of-solve reporting is requested (env or override).
bool report_enabled();
/// JSONL destination ("" = print only).
const std::string& report_path();
/// Test/driver override; replaces whatever the environment said.
void set_report(bool on, const std::string& path = "");

/// RAII hook used by core::MultigridDriver: when reporting is enabled,
/// construction turns the span recorder on and marks the window start;
/// destruction builds the profile for the window, prints the summary and
/// appends the JSONL record, then restores the previous recorder state.
/// Inert when reporting is off or the obs layer is compiled out.
class SolveReportScope {
 public:
  explicit SolveReportScope(std::string name);
  ~SolveReportScope();

  SolveReportScope(const SolveReportScope&) = delete;
  SolveReportScope& operator=(const SolveReportScope&) = delete;

 private:
  std::string name_;
  bool active_ = false;
  bool was_enabled_ = false;
  std::uint64_t t0_ns_ = 0;
  // Transport counters at window start: the registry is cumulative across
  // the process, the report wants this solve's traffic only.
  std::uint64_t c0_exchanges_ = 0, c0_messages_ = 0, c0_bytes_ = 0,
                c0_retransmits_ = 0;
};

}  // namespace columbia::obs
