#include "obs/json_parse.hpp"

#include <cctype>
#include <cstdlib>
#include <sstream>

namespace columbia::obs {

const JsonValue* JsonValue::find(const std::string& key) const {
  for (const auto& [k, v] : members_)
    if (k == key) return &v;
  return nullptr;
}

double JsonValue::number_or(const std::string& key, double dflt) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->is_number() ? v->number() : dflt;
}

std::string JsonValue::string_or(const std::string& key,
                                 const std::string& dflt) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->is_string() ? v->str() : dflt;
}

JsonValue JsonValue::null() { return {}; }

JsonValue JsonValue::boolean(bool b) {
  JsonValue v;
  v.kind_ = Kind::Bool;
  v.boolean_ = b;
  return v;
}

JsonValue JsonValue::number(double d) {
  JsonValue v;
  v.kind_ = Kind::Number;
  v.number_ = d;
  return v;
}

JsonValue JsonValue::string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::String;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::array(std::vector<JsonValue> items) {
  JsonValue v;
  v.kind_ = Kind::Array;
  v.items_ = std::move(items);
  return v;
}

JsonValue JsonValue::object(
    std::vector<std::pair<std::string, JsonValue>> members) {
  JsonValue v;
  v.kind_ = Kind::Object;
  v.members_ = std::move(members);
  return v;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& s) : s_(s) {}

  bool run(JsonValue& out, std::string* error) {
    skip_ws();
    if (!value(out)) return fail(error);
    skip_ws();
    if (p_ != s_.size()) {
      err_ = "trailing characters after value";
      return fail(error);
    }
    return true;
  }

 private:
  bool fail(std::string* error) {
    if (error != nullptr) {
      std::ostringstream os;
      os << "offset " << p_ << ": " << (err_.empty() ? "parse error" : err_);
      *error = os.str();
    }
    return false;
  }

  void skip_ws() {
    while (p_ < s_.size() && (s_[p_] == ' ' || s_[p_] == '\t' ||
                              s_[p_] == '\n' || s_[p_] == '\r'))
      ++p_;
  }

  char peek() const { return p_ < s_.size() ? s_[p_] : '\0'; }

  bool value(JsonValue& out) {
    switch (peek()) {
      case '{': return object(out);
      case '[': return array(out);
      case '"': {
        std::string s;
        if (!string(s)) return false;
        out = JsonValue::string(std::move(s));
        return true;
      }
      case 't': return literal("true", JsonValue::boolean(true), out);
      case 'f': return literal("false", JsonValue::boolean(false), out);
      case 'n': return literal("null", JsonValue::null(), out);
      default: return number(out);
    }
  }

  bool literal(const char* word, JsonValue v, JsonValue& out) {
    for (const char* c = word; *c != '\0'; ++c, ++p_) {
      if (peek() != *c) {
        err_ = std::string("expected '") + word + "'";
        return false;
      }
    }
    out = std::move(v);
    return true;
  }

  bool number(JsonValue& out) {
    const std::size_t start = p_;
    if (peek() == '-') ++p_;
    if (!std::isdigit(static_cast<unsigned char>(peek()))) {
      err_ = "expected value";
      p_ = start;
      return false;
    }
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++p_;
    if (peek() == '.') {
      ++p_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) {
        err_ = "expected digit after '.'";
        return false;
      }
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++p_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++p_;
      if (peek() == '+' || peek() == '-') ++p_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) {
        err_ = "expected exponent digit";
        return false;
      }
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++p_;
    }
    out = JsonValue::number(std::strtod(s_.c_str() + start, nullptr));
    return true;
  }

  void append_utf8(std::string& s, unsigned cp) {
    if (cp < 0x80) {
      s += char(cp);
    } else if (cp < 0x800) {
      s += char(0xC0 | (cp >> 6));
      s += char(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      s += char(0xE0 | (cp >> 12));
      s += char(0x80 | ((cp >> 6) & 0x3F));
      s += char(0x80 | (cp & 0x3F));
    } else {
      s += char(0xF0 | (cp >> 18));
      s += char(0x80 | ((cp >> 12) & 0x3F));
      s += char(0x80 | ((cp >> 6) & 0x3F));
      s += char(0x80 | (cp & 0x3F));
    }
  }

  bool hex4(unsigned& out) {
    out = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = peek();
      unsigned d = 0;
      if (c >= '0' && c <= '9') d = unsigned(c - '0');
      else if (c >= 'a' && c <= 'f') d = unsigned(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') d = unsigned(c - 'A' + 10);
      else {
        err_ = "bad \\u escape";
        return false;
      }
      out = out * 16 + d;
      ++p_;
    }
    return true;
  }

  bool string(std::string& out) {
    ++p_;  // opening quote
    out.clear();
    while (true) {
      if (p_ >= s_.size()) {
        err_ = "unterminated string";
        return false;
      }
      const unsigned char c = static_cast<unsigned char>(s_[p_]);
      if (c == '"') {
        ++p_;
        return true;
      }
      if (c < 0x20) {
        err_ = "unescaped control character in string";
        return false;
      }
      if (c != '\\') {
        out += char(c);
        ++p_;
        continue;
      }
      ++p_;  // backslash
      switch (peek()) {
        case '"': out += '"'; ++p_; break;
        case '\\': out += '\\'; ++p_; break;
        case '/': out += '/'; ++p_; break;
        case 'b': out += '\b'; ++p_; break;
        case 'f': out += '\f'; ++p_; break;
        case 'n': out += '\n'; ++p_; break;
        case 'r': out += '\r'; ++p_; break;
        case 't': out += '\t'; ++p_; break;
        case 'u': {
          ++p_;
          unsigned cp = 0;
          if (!hex4(cp)) return false;
          if (cp >= 0xD800 && cp <= 0xDBFF && peek() == '\\') {
            // High surrogate: pair with the following \uDC00-\uDFFF.
            const std::size_t save = p_;
            ++p_;
            unsigned lo = 0;
            if (peek() == 'u' && (++p_, hex4(lo)) && lo >= 0xDC00 &&
                lo <= 0xDFFF) {
              cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
            } else {
              p_ = save;  // lone surrogate: emit as-is
            }
          }
          append_utf8(out, cp);
          break;
        }
        default:
          err_ = "bad escape character";
          return false;
      }
    }
  }

  bool array(JsonValue& out) {
    ++p_;  // '['
    std::vector<JsonValue> items;
    skip_ws();
    if (peek() == ']') {
      ++p_;
      out = JsonValue::array(std::move(items));
      return true;
    }
    while (true) {
      skip_ws();
      JsonValue v;
      if (!value(v)) return false;
      items.push_back(std::move(v));
      skip_ws();
      if (peek() == ',') {
        ++p_;
        continue;
      }
      if (peek() == ']') {
        ++p_;
        out = JsonValue::array(std::move(items));
        return true;
      }
      err_ = "expected ',' or ']'";
      return false;
    }
  }

  bool object(JsonValue& out) {
    ++p_;  // '{'
    std::vector<std::pair<std::string, JsonValue>> members;
    skip_ws();
    if (peek() == '}') {
      ++p_;
      out = JsonValue::object(std::move(members));
      return true;
    }
    while (true) {
      skip_ws();
      if (peek() != '"') {
        err_ = "expected object key";
        return false;
      }
      std::string key;
      if (!string(key)) return false;
      skip_ws();
      if (peek() != ':') {
        err_ = "expected ':'";
        return false;
      }
      ++p_;
      skip_ws();
      JsonValue v;
      if (!value(v)) return false;
      members.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (peek() == ',') {
        ++p_;
        continue;
      }
      if (peek() == '}') {
        ++p_;
        out = JsonValue::object(std::move(members));
        return true;
      }
      err_ = "expected ',' or '}'";
      return false;
    }
  }

  const std::string& s_;
  std::size_t p_ = 0;
  std::string err_;
};

}  // namespace

bool parse_json(const std::string& text, JsonValue& out, std::string* error) {
  return Parser(text).run(out, error);
}

std::vector<JsonValue> parse_jsonl(const std::string& text,
                                   std::string* error) {
  std::vector<JsonValue> out;
  std::istringstream is(text);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    bool blank = true;
    for (char c : line)
      if (c != ' ' && c != '\t' && c != '\r') blank = false;
    if (blank) continue;
    JsonValue v;
    std::string err;
    if (!parse_json(line, v, &err)) {
      if (error != nullptr) {
        std::ostringstream os;
        os << "line " << lineno << ": " << err;
        *error = os.str();
      }
      break;  // truncated-tail tolerance: keep what parsed
    }
    out.push_back(std::move(v));
  }
  return out;
}

}  // namespace columbia::obs
