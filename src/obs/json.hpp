// Minimal streaming JSON writer shared by every machine-readable output in
// the repo: Chrome trace export, the metrics registry dump, convergence
// telemetry JSONL, and the bench harnesses' --json reports.
//
// The writer tracks the container stack and inserts commas itself, so call
// sites read like the document they produce. Doubles are emitted with
// enough digits to round-trip ("%.17g" would be noisy; "%.10g" keeps bench
// series diffable while exceeding every consumer's needs).
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace columbia::obs {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Key of the next value inside an object.
  JsonWriter& key(const std::string& k);

  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(int v) { return value(std::int64_t(v)); }
  JsonWriter& value(bool v);

  /// key + value in one call.
  template <class T>
  JsonWriter& kv(const std::string& k, const T& v) {
    key(k);
    return value(v);
  }

  /// Escapes `s` per RFC 8259 (quotes, backslash, control characters).
  static std::string escape(const std::string& s);

 private:
  void comma();

  std::ostream& os_;
  // One entry per open container: number of items emitted so far; -1 when
  // the next token is a value completing a key.
  std::vector<long> stack_;
  bool pending_key_ = false;
};

}  // namespace columbia::obs
