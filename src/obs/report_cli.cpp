#include "obs/report_cli.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <map>
#include <ostream>
#include <set>
#include <sstream>

#include "obs/comm_report.hpp"
#include "obs/json.hpp"
#include "obs/json_parse.hpp"
#include "obs/report.hpp"
#include "obs/shard.hpp"
#include "perf/wire_model.hpp"
#include "support/build_info.hpp"
#include "support/table.hpp"

namespace columbia::obs::report {

namespace {

constexpr const char* kUsageText =
    "usage: columbia_report [options] FILE...\n"
    "       columbia_report comm TRACE...\n"
    "\n"
    "  FILE               Chrome trace JSON (--trace / write_chrome_trace),\n"
    "                     convergence JSONL (--jsonl / open_jsonl), a\n"
    "                     per-rank telemetry shard (*.rankR.roundK.jsonl,\n"
    "                     written by the distributed flight recorder), or\n"
    "                     a bench --json report (classified by content)\n"
    "  comm TRACE...      communication observatory: per-rank wait-state\n"
    "                     attribution from the traces' halo.xchg spans —\n"
    "                     rank x neighbor wait matrix with late-sender /\n"
    "                     late-receiver split, per-(level, strategy)\n"
    "                     critical path, per-level overlap headroom and\n"
    "                     coarse-level agglomeration advice (Figs. 16-19).\n"
    "                     Shard files given together are clock-aligned and\n"
    "                     merged first; merged traces add a rank-liveness\n"
    "                     timeline and a measured-vs-model fabric table\n"
    "  --fabric NAME      machine model to price wire traffic against, by\n"
    "                     backend name (threads/shm/tcp); default: the\n"
    "                     trace's recorded backend\n"
    "  --json             comm mode: emit the report as one JSON document\n"
    "                     (provenance_mismatch flag, warnings, wait\n"
    "                     matrix, wire model, liveness) instead of tables\n"
    "  --baseline PATH    perf gate: compare the bench-report FILE against\n"
    "                     the committed baseline at PATH\n"
    "  --tolerance T      allowed timing slowdown for the gate: '10%', or\n"
    "                     a fraction like 0.1 (default 10%)\n"
    "  --version          print the build provenance stamp and exit\n"
    "\n"
    "Traces: one file prints its phase profile (exclusive per-phase and\n"
    "per-level times, imbalance factors, communication fraction and halo\n"
    "critical-path estimate); several files form a scaling series with a\n"
    "Fig. 15-style speedup / parallel-efficiency table.\n";

struct Options {
  std::vector<std::string> files;
  std::string baseline;
  std::string fabric;  // backend name overriding the trace's for the model
  double tolerance = 0.10;
  bool tolerance_set = false;
  bool comm = false;
  bool json = false;
};

/// One-line provenance stamp (satellite of ISSUE 7): archived reports stay
/// attributable to the build that produced them.
std::string version_line() {
  const BuildInfo& bi = build_info();
  return std::string("columbia_report ") + bi.git_sha + " (" +
         bi.build_type + ", obs " + (bi.obs_compiled ? "on" : "off") + ")";
}

bool parse_tolerance(const std::string& s, double& out) {
  if (s.empty()) return false;
  std::string body = s;
  bool percent = false;
  if (body.back() == '%') {
    percent = true;
    body.pop_back();
  }
  char* end = nullptr;
  const double v = std::strtod(body.c_str(), &end);
  if (end != body.c_str() + body.size() || v < 0) return false;
  // Bare numbers < 1 read as fractions ("0.1"), >= 1 as percent ("25").
  out = percent ? v / 100.0 : (v < 1.0 ? v : v / 100.0);
  return true;
}

bool read_file(const std::string& path, std::string& out, std::ostream& err) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    err << "columbia_report: cannot open " << path << "\n";
    return false;
  }
  std::ostringstream ss;
  ss << is.rdbuf();
  out = ss.str();
  return true;
}

// --- trace ingest ---------------------------------------------------------

/// One rank shard's liveness story on the merged timeline: when it
/// started, when the autoflush thread last proved it alive, whether it
/// reached its footer, and what the clock sync against member 0 measured.
struct LivenessRow {
  int rank = 0;
  int round = 0;
  std::int64_t pid = 0;
  bool truncated = true;
  int flushes = 0;
  double start_us = 0;       // merged timeline (member 0's clock)
  double last_flush_us = 0;  // merged timeline
  double end_us = 0;         // merged timeline; valid when !truncated
  ShardClock clock;
  std::string fault_spec;
};

struct TraceRun {
  std::string path;
  std::int64_t threads = 0;  // from "columbia" metadata, else max tid + 1
  std::string git_sha;
  std::string build_type;
  std::string backend;  // wire backend the run recorded over ("" if unknown)
  PhaseProfile profile;
  std::vector<PhaseEvent> events;  // kept for the comm observatory
  std::vector<LivenessRow> liveness;   // per-shard, for multi-process runs
  std::vector<std::string> warnings;   // merge provenance / sync anomalies
  bool provenance_mismatch = false;    // see check_provenance()
};

/// Raw-ns clock fields are JSON strings in shard documents (doubles lose
/// precision past 2^53); merged-trace metadata round-trips them the same
/// way, so accept either spelling.
std::int64_t i64_field(const JsonValue& o, const char* key) {
  const JsonValue* v = o.find(key);
  if (v == nullptr) return 0;
  if (v->is_number()) return std::int64_t(v->number());
  if (v->is_string()) return std::strtoll(v->str().c_str(), nullptr, 10);
  return 0;
}

ShardClock clock_field(const JsonValue& o, const char* key) {
  ShardClock c;
  const JsonValue* v = o.find(key);
  if (v == nullptr || !v->is_object()) return c;
  const JsonValue* s = v->find("synced");
  c.synced = s != nullptr && s->is_bool() && s->boolean();
  c.offset_ns = i64_field(*v, "offset_ns");
  c.rtt_ns = i64_field(*v, "rtt_ns");
  c.samples = int(v->number_or("samples", 0));
  return c;
}

bool ingest_trace(const std::string& path, const JsonValue& doc,
                  TraceRun& run, std::ostream& err) {
  const JsonValue* evs = doc.find("traceEvents");
  if (evs == nullptr || !evs->is_array()) {
    err << "columbia_report: " << path << ": no traceEvents array\n";
    return false;
  }
  std::vector<PhaseEvent> events;
  events.reserve(evs->items().size());
  std::int64_t max_tid = 0;
  for (const JsonValue& e : evs->items()) {
    if (!e.is_object()) continue;
    const std::string ph = e.string_or("ph", "");
    if (ph != "B" && ph != "E") continue;  // ignore metadata/counter events
    PhaseEvent pe;
    pe.name = e.string_or("name", "");
    pe.phase = ph[0];
    pe.ts_us = e.number_or("ts", 0);
    pe.tid = int(e.number_or("tid", 0));
    max_tid = std::max(max_tid, std::int64_t(pe.tid));
    if (const JsonValue* args = e.find("args");
        args != nullptr && args->is_object()) {
      pe.level = std::int64_t(args->number_or("level", -1));
      pe.rank = std::int64_t(args->number_or("rank", -1));
      pe.nbr = std::int64_t(args->number_or("nbr", -1));
      pe.strat = std::int64_t(args->number_or("strat", -1));
      pe.bytes = std::int64_t(args->number_or("bytes", -1));
      pe.round = std::int64_t(args->number_or("round", 0));
    }
    events.push_back(std::move(pe));
  }
  run.path = path;
  run.profile = build_profile(events);
  run.events = std::move(events);
  if (const JsonValue* meta = doc.find("columbia");
      meta != nullptr && meta->is_object()) {
    run.threads = std::int64_t(meta->number_or("threads", 0));
    run.git_sha = meta->string_or("git_sha", "");
    run.build_type = meta->string_or("build_type", "");
    run.backend = meta->string_or("backend", "");
    if (const JsonValue* ws = meta->find("warnings");
        ws != nullptr && ws->is_array())
      for (const JsonValue& wv : ws->items())
        if (wv.is_string()) run.warnings.push_back(wv.str());
    if (const JsonValue* sh = meta->find("shards");
        sh != nullptr && sh->is_array()) {
      for (const JsonValue& sv : sh->items()) {
        if (!sv.is_object()) continue;
        LivenessRow lr;
        lr.rank = int(sv.number_or("rank", 0));
        lr.round = int(sv.number_or("round", 0));
        lr.pid = std::int64_t(sv.number_or("pid", 0));
        const JsonValue* tr = sv.find("truncated");
        lr.truncated = tr != nullptr && tr->is_bool() && tr->boolean();
        lr.flushes = int(sv.number_or("flushes", 0));
        lr.start_us = sv.number_or("start_us", 0);
        lr.last_flush_us = sv.number_or("last_flush_us", 0);
        lr.end_us = sv.number_or("end_us", 0);
        lr.clock = clock_field(sv, "clock");
        lr.fault_spec = sv.string_or("fault_spec", "");
        run.liveness.push_back(std::move(lr));
      }
    }
  }
  if (run.threads <= 0) run.threads = max_tid + 1;
  return true;
}

/// A TraceRun straight from merged telemetry shards, bypassing the Chrome
/// trace round-trip: the same events `write_merged_chrome_trace` would
/// emit, so both the phase profile and the comm observatory accept it.
TraceRun from_merged_shards(MergedTelemetry m, std::string label) {
  TraceRun run;
  run.path = std::move(label);
  run.git_sha = m.git_sha;
  run.build_type = m.build_type;
  run.backend = m.backend;
  run.warnings = std::move(m.warnings);
  std::set<int> tids;
  for (const PhaseEvent& e : m.events) tids.insert(e.tid);
  run.threads = std::int64_t(tids.size());
  if (run.threads <= 0) run.threads = 1;
  run.profile = build_profile(m.events);
  run.events = std::move(m.events);
  for (const TelemetryShard& s : m.shards) {
    LivenessRow lr;
    lr.rank = s.rank;
    lr.round = s.round;
    lr.pid = s.pid;
    lr.truncated = s.truncated;
    lr.flushes = s.flushes;
    lr.start_us = s.merged_base_us;
    lr.last_flush_us = s.merged_base_us + s.last_flush_us;
    lr.end_us = s.truncated ? 0 : s.merged_base_us + s.end_us;
    lr.clock = s.clock;
    lr.fault_spec = s.fault_spec;
    run.liveness.push_back(std::move(lr));
  }
  return run;
}

/// Provenance guard: the merge already cross-checks shard-vs-shard stamps
/// (those arrive in run.warnings); here the trace is additionally checked
/// against the analyzing binary, and the JSON `provenance_mismatch` flag
/// is derived. Clock-sync anomalies warn without raising the flag.
void check_provenance(TraceRun& run) {
  const BuildInfo& bi = build_info();
  if (!run.git_sha.empty() && run.git_sha != bi.git_sha)
    run.warnings.push_back("provenance mismatch: trace recorded at git " +
                           run.git_sha + " but this binary is " + bi.git_sha);
  if (!run.build_type.empty() && run.build_type != bi.build_type)
    run.warnings.push_back("provenance mismatch: trace recorded by a " +
                           run.build_type + " build but this binary is " +
                           bi.build_type);
  for (const std::string& w : run.warnings)
    if (w.find("mismatch") != std::string::npos) run.provenance_mismatch = true;
}

void print_single_run(const TraceRun& run, std::ostream& out) {
  out << "== trace: " << run.path << " (threads=" << run.threads;
  if (!run.git_sha.empty()) out << ", git " << run.git_sha;
  out << ") ==\n";
  out << summary_table(run.profile).to_string();
  const Table lt = level_table(run.profile);
  if (!lt.rows().empty()) {
    out << "-- per-level rollup --\n";
    out << lt.to_string();
  }
  out << "-- phase profile --\n";
  out << profile_table(run.profile).to_string();
}

void print_scaling_table(std::vector<TraceRun>& runs, std::ostream& out) {
  std::sort(runs.begin(), runs.end(),
            [](const TraceRun& a, const TraceRun& b) {
              return a.threads < b.threads;
            });
  const TraceRun& base = runs.front();
  out << "== scaling series (reference: " << base.path << ", threads="
      << base.threads << ") ==\n";
  Table t({"threads", "wall s", "speedup", "ideal", "efficiency",
           "comm frac", "trace"});
  for (const TraceRun& r : runs) {
    const double speedup =
        r.profile.wall_s > 0 ? base.profile.wall_s / r.profile.wall_s : 0;
    const double ideal = double(r.threads) / double(base.threads);
    t.add_row({std::to_string(r.threads), Table::num(r.profile.wall_s, 4),
               Table::num(speedup, 3), Table::num(ideal, 3),
               Table::num(ideal > 0 ? speedup / ideal : 0, 3),
               Table::num(r.profile.comm_fraction, 3), r.path});
  }
  out << t.to_string();
}

// --- comm observatory (halo.xchg spans) -----------------------------------

void print_comm_run(const TraceRun& run, const CommReport& r,
                    std::ostream& out) {
  out << "== comm observatory: " << run.path << " (threads=" << run.threads;
  if (!run.git_sha.empty()) out << ", git " << run.git_sha;
  out << ") ==\n";
  if (r.empty()) {
    out << "no halo.xchg spans in trace (record with the comm observatory "
           "instrumentation enabled)\n";
    return;
  }
  Table s({"metric", "value"});
  s.add_row({"ranks", std::to_string(r.ranks)});
  s.add_row({"wait s", Table::num(r.wait_s, 6)});
  s.add_row({"late-sender s", Table::num(r.late_sender_s, 6)});
  s.add_row({"late-receiver s", Table::num(r.late_receiver_s, 6)});
  s.add_row({"retransmits", std::to_string(r.retransmits)});
  out << s.to_string();
  out << "-- wait matrix (rank x neighbor) --\n"
      << comm_wait_matrix_table(r).to_string();
  out << "-- strategy rollup --\n" << comm_strategy_table(r).to_string();
  if (!r.levels.empty())
    out << "-- overlap headroom --\n" << comm_overlap_table(r).to_string();
}

void print_liveness(const TraceRun& run, std::ostream& out) {
  if (run.liveness.empty()) return;
  out << "-- rank liveness (merged timeline, member 0's clock) --\n";
  Table t({"rank", "round", "pid", "status", "flushes", "start ms",
           "last flush ms", "end ms", "offset us", "rtt us", "sync"});
  for (const LivenessRow& r : run.liveness) {
    t.add_row({std::to_string(r.rank), std::to_string(r.round),
               std::to_string(r.pid), r.truncated ? "TRUNCATED" : "complete",
               std::to_string(r.flushes), Table::num(r.start_us / 1e3, 3),
               Table::num(r.last_flush_us / 1e3, 3),
               r.truncated ? "-" : Table::num(r.end_us / 1e3, 3),
               Table::num(double(r.clock.offset_ns) / 1e3, 3),
               Table::num(double(r.clock.rtt_ns) / 1e3, 3),
               r.clock.synced ? std::to_string(r.clock.samples) + " pings"
                              : "-"});
  }
  out << t.to_string();
}

/// The fabric standing in for this run's wire: --fabric wins, else the
/// backend recorded in the trace/shard metadata. Empty means the trace
/// predates backend stamping — no model table then.
std::string model_backend(const Options& opt, const TraceRun& run) {
  return opt.fabric.empty() ? run.backend : opt.fabric;
}

void print_wire_model(const Options& opt, const TraceRun& run,
                      const CommReport& r, std::ostream& out) {
  const std::string backend = model_backend(opt, run);
  if (backend.empty() || r.empty()) return;
  const perf::FabricModel fabric = perf::fabric_for_backend(backend);
  const std::vector<perf::WireAttribution> rows =
      perf::attribute_wire(r, fabric);
  if (rows.empty()) return;
  out << "-- measured vs machine model (backend " << backend << ") --\n"
      << perf::fabric_model_line(fabric) << "\n"
      << perf::wire_model_table(rows, fabric).to_string();
}

/// `comm --json`: the whole report as one machine-readable document, for
/// soak/CI assertions (provenance_mismatch flag, non-empty wait matrix).
void write_comm_json(const Options& opt, const std::vector<TraceRun>& runs,
                     const std::vector<CommReport>& reports,
                     std::ostream& out) {
  const BuildInfo& bi = build_info();
  JsonWriter w(out);
  w.begin_object();
  w.kv("report", "comm");
  w.kv("git_sha", bi.git_sha);
  w.kv("build_type", bi.build_type);
  w.key("runs").begin_array();
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const TraceRun& run = runs[i];
    w.begin_object();
    w.kv("trace", run.path);
    w.kv("threads", run.threads);
    w.kv("backend", run.backend);
    w.kv("git_sha", run.git_sha);
    w.kv("build_type", run.build_type);
    w.kv("provenance_mismatch", run.provenance_mismatch);
    w.key("warnings").begin_array();
    for (const std::string& s : run.warnings) w.value(s);
    w.end_array();
    w.key("comm");
    write_comm_json_into(w, reports[i]);
    const std::string backend = model_backend(opt, run);
    if (!backend.empty() && !reports[i].empty()) {
      const perf::FabricModel fabric = perf::fabric_for_backend(backend);
      w.key("wire_model");
      write_wire_model_json_into(w, perf::attribute_wire(reports[i], fabric),
                                 fabric);
    }
    w.key("liveness").begin_array();
    for (const LivenessRow& lr : run.liveness) {
      w.begin_object();
      w.kv("rank", lr.rank);
      w.kv("round", lr.round);
      w.kv("pid", lr.pid);
      w.kv("truncated", lr.truncated);
      w.kv("flushes", lr.flushes);
      w.kv("start_us", lr.start_us);
      w.kv("last_flush_us", lr.last_flush_us);
      if (!lr.truncated) w.kv("end_us", lr.end_us);
      w.key("clock").begin_object();
      w.kv("synced", lr.clock.synced);
      w.kv("offset_ns", std::to_string(lr.clock.offset_ns));
      w.kv("rtt_ns", std::to_string(lr.clock.rtt_ns));
      w.kv("samples", lr.clock.samples);
      w.end_object();
      w.kv("fault_spec", lr.fault_spec);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  out << "\n";
}

/// Fig. 16-18-style cross-trace comparison: one row per (trace, level,
/// strategy) so two runs of the same case under different strategies (or
/// transports) line up.
void print_comm_comparison(const std::vector<TraceRun>& runs,
                           const std::vector<CommReport>& reports,
                           std::ostream& out) {
  out << "== strategy comparison (" << runs.size() << " traces) ==\n";
  Table t({"trace", "level", "strategy", "msgs", "wait ms", "wait/msg (us)",
           "crit path ms"});
  for (std::size_t i = 0; i < runs.size(); ++i) {
    for (const CommGroup& g : reports[i].groups) {
      t.add_row({runs[i].path,
                 g.level >= 0 ? std::to_string(g.level) : "-",
                 strategy_name(g.strat), std::to_string(g.messages),
                 Table::num(g.wait_s * 1e3, 3),
                 Table::num(g.messages > 0
                                ? g.wait_s * 1e6 / double(g.messages)
                                : 0,
                            3),
                 Table::num(g.critical_path_s * 1e3, 3)});
    }
  }
  out << t.to_string();
}

// --- convergence JSONL ingest --------------------------------------------

void print_convergence(const std::string& path,
                       const std::vector<JsonValue>& records,
                       std::ostream& out) {
  out << "== convergence: " << path << " (" << records.size()
      << " cycles) ==\n";
  if (records.empty()) return;
  const double r0 = records.front().number_or("residual", 0);
  const double rn = records.back().number_or("residual", 0);
  Table s({"metric", "value"});
  s.add_row({"solver", records.front().string_or("solver", "?")});
  s.add_row({"cycles", std::to_string(records.size())});
  s.add_row({"first residual", Table::num(r0, 4)});
  s.add_row({"last residual", Table::num(rn, 4)});
  s.add_row({"orders dropped",
             Table::num(r0 > 0 && rn > 0 ? std::log10(r0 / rn) : 0, 3)});
  out << s.to_string();

  // Mean exclusive seconds per level per cycle, over all cycles.
  std::map<std::int64_t, double> level_s;
  for (const JsonValue& rec : records) {
    const JsonValue* levels = rec.find("levels");
    if (levels == nullptr || !levels->is_array()) continue;
    for (const JsonValue& l : levels->items())
      level_s[std::int64_t(l.number_or("level", -1))] +=
          l.number_or("seconds", 0);
  }
  if (level_s.empty()) return;
  double sum = 0;
  for (const auto& [lvl, sec] : level_s) sum += sec;
  out << "-- per-level rollup (exclusive, all cycles) --\n";
  Table t({"level", "total s", "s/cycle", "share"});
  for (const auto& [lvl, sec] : level_s) {
    t.add_row({std::to_string(lvl), Table::num(sec, 4),
               Table::num(sec / double(records.size()), 4),
               Table::num(sum > 0 ? sec / sum : 0, 3)});
  }
  out << t.to_string();
}

// --- perf-regression gate -------------------------------------------------

struct GateResult {
  Table table{{"series", "key", "metric", "baseline", "current", "delta",
               "verdict"}};
  int regressions = 0;
  int compared = 0;
  int skipped = 0;
};

std::string pct(double baseline, double current) {
  if (baseline == 0) return "n/a";
  return Table::num(100.0 * (current - baseline) / baseline, 1) + "%";
}

enum class MetricKind { Timing, Count, Exact };

/// How the gate treats a numeric field, by column/field name. Unknown
/// fields are informational only.
bool metric_kind_of(const std::string& name, MetricKind& kind) {
  if (name == "ns_per_edge" || name == "exchange (us)" ||
      name == "wait/exchange (us)") {
    kind = MetricKind::Timing;
    return true;
  }
  if (name == "allocs/exchange") {
    kind = MetricKind::Count;
    return true;
  }
  if (name == "messages" || name == "ranks" || name == "total MB" ||
      name == "mean msg (KB)") {
    kind = MetricKind::Exact;
    return true;
  }
  return false;
}

void compare_metric(GateResult& g, const std::string& series,
                    const std::string& key, const std::string& metric,
                    MetricKind kind, double base, double cur, double tol,
                    const std::string& skip_reason) {
  const std::string b = Table::num(base, 4), c = Table::num(cur, 4);
  if (!skip_reason.empty()) {
    ++g.skipped;
    g.table.add_row(
        {series, key, metric, b, c, pct(base, cur), "skipped: " + skip_reason});
    return;
  }
  ++g.compared;
  std::string verdict = "ok";
  switch (kind) {
    case MetricKind::Timing:
      if (cur > base * (1.0 + tol)) {
        verdict = "REGRESSION";
        ++g.regressions;
      } else if (base > cur * (1.0 + tol)) {
        verdict = "improved";
      }
      break;
    case MetricKind::Count:
      if (cur > base) {
        verdict = "REGRESSION";
        ++g.regressions;
      } else if (cur < base) {
        verdict = "improved";
      }
      break;
    case MetricKind::Exact:
      // Cells round-trip through %.4g table formatting: allow 0.5%.
      if (std::abs(cur - base) > 0.005 * std::max(std::abs(base), 1e-12)) {
        verdict = "REGRESSION (value changed)";
        ++g.regressions;
      }
      break;
  }
  g.table.add_row({series, key, metric, b, c, pct(base, cur), verdict});
}

/// micro_kernels schema: {"bench":"micro_kernels","hardware_threads":N,
/// "kernels":[{"kernel","threads","ns_per_edge",...}]}.
void gate_micro_kernels(GateResult& g, const JsonValue& baseline,
                        const JsonValue& current, double tol) {
  const JsonValue* cur_rows = current.find("kernels");
  const JsonValue* base_rows = baseline.find("kernels");
  if (cur_rows == nullptr || base_rows == nullptr) return;
  const auto hw =
      std::int64_t(current.number_or("hardware_threads",
                                     double(hardware_threads())));
  auto key_of = [](const JsonValue& row) {
    return row.string_or("kernel", "?") + " t=" +
           std::to_string(std::int64_t(row.number_or("threads", 1)));
  };
  for (const JsonValue& brow : base_rows->items()) {
    const JsonValue* crow = nullptr;
    for (const JsonValue& c : cur_rows->items())
      if (key_of(c) == key_of(brow)) crow = &c;
    const std::string key = key_of(brow);
    if (crow == nullptr) {
      ++g.regressions;
      g.table.add_row({"kernels", key, "ns_per_edge",
                       Table::num(brow.number_or("ns_per_edge", 0), 4), "-",
                       "n/a", "REGRESSION (row missing)"});
      continue;
    }
    const auto threads = std::int64_t(brow.number_or("threads", 1));
    std::string skip;
    if (threads > hw) {
      // ROADMAP: a single-hardware-thread host cannot measure the sweep;
      // the multi-thread rows only time pool oversubscription there.
      skip = hw == 1 ? "single hardware thread"
                     : "host has only " + std::to_string(hw) +
                           " hardware threads";
    }
    compare_metric(g, "kernels", key, "ns_per_edge", MetricKind::Timing,
                   brow.number_or("ns_per_edge", 0),
                   crow->number_or("ns_per_edge", 0), tol, skip);
  }
}

/// bench::Reporter schema: {"bench","meta",...,"tables":{series:[rows]}}.
/// Rows are matched within a series by the value of their first member
/// (e.g. "strategy", "schedule").
void gate_reporter_tables(GateResult& g, const JsonValue& baseline,
                          const JsonValue& current, double tol) {
  const JsonValue* base_tables = baseline.find("tables");
  const JsonValue* cur_tables = current.find("tables");
  if (base_tables == nullptr || cur_tables == nullptr) return;
  for (const auto& [series, brows] : base_tables->members()) {
    const JsonValue* crows = cur_tables->find(series);
    if (crows == nullptr || !crows->is_array() || !brows.is_array()) continue;
    auto key_of = [](const JsonValue& row) -> std::string {
      if (!row.is_object() || row.members().empty()) return "?";
      const JsonValue& v = row.members().front().second;
      return v.is_string() ? v.str() : Table::num(v.number(), 6);
    };
    for (const JsonValue& brow : brows.items()) {
      const JsonValue* crow = nullptr;
      for (const JsonValue& c : crows->items())
        if (key_of(c) == key_of(brow)) crow = &c;
      const std::string key = key_of(brow);
      if (crow == nullptr) {
        ++g.regressions;
        g.table.add_row({series, key, "-", "-", "-", "n/a",
                         "REGRESSION (row missing)"});
        continue;
      }
      for (const auto& [field, bval] : brow.members()) {
        MetricKind kind;
        if (!bval.is_number() || !metric_kind_of(field, kind)) continue;
        const JsonValue* cval = crow->find(field);
        if (cval == nullptr || !cval->is_number()) continue;
        compare_metric(g, series, key, field, kind, bval.number(),
                       cval->number(), tol, "");
      }
    }
  }
}

int run_gate(const Options& opt, const JsonValue& current,
             std::ostream& out, std::ostream& err) {
  std::string base_text;
  if (!read_file(opt.baseline, base_text, err)) return kUsage;
  JsonValue baseline;
  std::string jerr;
  if (!parse_json(base_text, baseline, &jerr)) {
    err << "columbia_report: " << opt.baseline << ": " << jerr << "\n";
    return kUsage;
  }
  const std::string bname = baseline.string_or("bench", "");
  if (bname != current.string_or("bench", "")) {
    err << "columbia_report: baseline is '" << bname << "' but current is '"
        << current.string_or("bench", "") << "'\n";
    return kUsage;
  }
  GateResult g;
  if (bname == "micro_kernels")
    gate_micro_kernels(g, baseline, current, opt.tolerance);
  else
    gate_reporter_tables(g, baseline, current, opt.tolerance);

  out << "== perf gate: " << bname << " vs " << opt.baseline
      << " (tolerance " << Table::num(opt.tolerance * 100, 3) << "%) ==\n";
  out << g.table.to_string();
  out << g.compared << " compared, " << g.skipped << " skipped, "
      << g.regressions << " regression" << (g.regressions == 1 ? "" : "s")
      << "\n";
  if (g.compared == 0 && g.regressions == 0) {
    err << "columbia_report: warning: nothing compared (schema mismatch?)\n";
  }
  return g.regressions > 0 ? kRegression : kOk;
}

}  // namespace

int run(const std::vector<std::string>& args, std::ostream& out,
        std::ostream& err) {
  Options opt;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--help" || a == "-h") {
      out << kUsageText;
      return kOk;
    }
    if (a == "--version") {
      out << version_line() << "\n";
      return kOk;
    }
    if (a == "comm" && opt.files.empty() && !opt.comm) {
      opt.comm = true;
      continue;
    }
    if (a == "--baseline") {
      if (i + 1 >= args.size()) {
        err << "columbia_report: --baseline needs a path\n";
        return kUsage;
      }
      opt.baseline = args[++i];
      continue;
    }
    if (a == "--fabric") {
      if (i + 1 >= args.size()) {
        err << "columbia_report: --fabric needs a backend name\n";
        return kUsage;
      }
      opt.fabric = args[++i];
      continue;
    }
    if (a == "--json") {
      opt.json = true;
      continue;
    }
    if (a == "--tolerance") {
      if (i + 1 >= args.size() ||
          !parse_tolerance(args[i + 1], opt.tolerance)) {
        err << "columbia_report: bad --tolerance (want '10%' or 0.1)\n";
        return kUsage;
      }
      opt.tolerance_set = true;
      ++i;
      continue;
    }
    if (!a.empty() && a[0] == '-') {
      err << "columbia_report: unknown option " << a << "\n" << kUsageText;
      return kUsage;
    }
    opt.files.push_back(a);
  }
  if (opt.files.empty()) {
    err << kUsageText;
    return kUsage;
  }

  // Provenance header on every emitted report (satellite of ISSUE 7).
  // --json keeps stdout a single parseable document instead.
  if (!opt.json) out << version_line() << "\n";

  std::vector<TraceRun> traces;
  std::vector<TelemetryShard> shard_inputs;
  for (const std::string& path : opt.files) {
    std::string text;
    if (!read_file(path, text, err)) return kUsage;
    // Telemetry shards first: they are JSONL, not one JSON value, and all
    // shard files of an invocation merge into ONE clock-aligned run.
    if (is_shard_text(text)) {
      TelemetryShard shard;
      std::string serr;
      if (!parse_shard(text, shard, &serr)) {
        err << "columbia_report: " << path << ": " << serr << "\n";
        return kUsage;
      }
      shard.path = path;
      shard_inputs.push_back(std::move(shard));
      continue;
    }
    JsonValue doc;
    if (parse_json(text, doc)) {
      if (doc.find("traceEvents") != nullptr) {
        TraceRun run;
        if (!ingest_trace(path, doc, run, err)) return kUsage;
        traces.push_back(std::move(run));
        continue;
      }
      if (opt.comm) {
        err << "columbia_report: " << path
            << ": the comm subcommand wants Chrome trace files\n";
        return kUsage;
      }
      if (doc.find("bench") != nullptr) {
        if (opt.baseline.empty()) {
          err << "columbia_report: " << path
              << " is a bench report; pass --baseline PATH to gate it\n";
          return kUsage;
        }
        return run_gate(opt, doc, out, err);
      }
      err << "columbia_report: " << path
          << ": unrecognized JSON document (no traceEvents/bench)\n";
      return kUsage;
    }
    if (opt.comm) {
      err << "columbia_report: " << path
          << ": the comm subcommand wants Chrome trace files\n";
      return kUsage;
    }
    // Not a single JSON value: try JSONL convergence records.
    std::string jerr;
    const std::vector<JsonValue> records = parse_jsonl(text, &jerr);
    if (!records.empty() && records.front().find("cycle") != nullptr) {
      print_convergence(path, records, out);
      continue;
    }
    err << "columbia_report: " << path << ": cannot parse ("
        << (jerr.empty() ? "empty document" : jerr) << ")\n";
    return kUsage;
  }

  if (!shard_inputs.empty()) {
    std::string label = shard_inputs.front().path;
    if (shard_inputs.size() > 1)
      label += " (+" + std::to_string(shard_inputs.size() - 1) + " shards)";
    traces.push_back(
        from_merged_shards(merge_shards(std::move(shard_inputs)), label));
  }

  // Provenance guard: mismatches across shards (from the merge) and
  // between the trace and this binary warn on stderr; --json additionally
  // carries them as a machine-readable flag.
  for (TraceRun& run : traces) {
    check_provenance(run);
    for (const std::string& w : run.warnings)
      err << "columbia_report: warning: " << run.path << ": " << w << "\n";
  }

  if (opt.comm) {
    std::vector<CommReport> reports;
    reports.reserve(traces.size());
    for (const TraceRun& run : traces)
      reports.push_back(build_comm_report(run.events));
    if (opt.json) {
      write_comm_json(opt, traces, reports, out);
      return kOk;
    }
    for (std::size_t i = 0; i < traces.size(); ++i) {
      print_comm_run(traces[i], reports[i], out);
      print_liveness(traces[i], out);
      print_wire_model(opt, traces[i], reports[i], out);
    }
    if (traces.size() > 1) print_comm_comparison(traces, reports, out);
    return kOk;
  }

  for (const TraceRun& run : traces) print_single_run(run, out);
  if (traces.size() > 1) print_scaling_table(traces, out);
  return kOk;
}

}  // namespace columbia::obs::report
