#include "obs/metrics.hpp"

#include <map>
#include <memory>
#include <mutex>
#include <ostream>

#include "obs/json.hpp"

namespace columbia::obs {

void Histogram::reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

namespace {

/// unique_ptr values keep metric addresses stable across rehashes.
struct MetricsRegistry {
  std::mutex mu;
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

MetricsRegistry& registry() {
  static MetricsRegistry* reg = new MetricsRegistry;  // outlives static dtors
  return *reg;
}

template <class T>
T& lookup(std::map<std::string, std::unique_ptr<T>>& m, std::mutex& mu,
          const std::string& name) {
  std::lock_guard<std::mutex> lock(mu);
  std::unique_ptr<T>& slot = m[name];
  if (!slot) slot = std::make_unique<T>();
  return *slot;
}

template <class T>
std::vector<std::string> names_of(
    const std::map<std::string, std::unique_ptr<T>>& m, std::mutex& mu) {
  std::lock_guard<std::mutex> lock(mu);
  std::vector<std::string> out;
  out.reserve(m.size());
  for (const auto& [name, _] : m) out.push_back(name);
  return out;
}

}  // namespace

Counter& counter(const std::string& name) {
  MetricsRegistry& reg = registry();
  return lookup(reg.counters, reg.mu, name);
}

Gauge& gauge(const std::string& name) {
  MetricsRegistry& reg = registry();
  return lookup(reg.gauges, reg.mu, name);
}

Histogram& histogram(const std::string& name) {
  MetricsRegistry& reg = registry();
  return lookup(reg.histograms, reg.mu, name);
}

void reset_metrics() {
  MetricsRegistry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (auto& [_, c] : reg.counters) c->reset();
  for (auto& [_, g] : reg.gauges) g->reset();
  for (auto& [_, h] : reg.histograms) h->reset();
}

std::vector<std::string> counter_names() {
  MetricsRegistry& reg = registry();
  return names_of(reg.counters, reg.mu);
}

std::vector<std::string> gauge_names() {
  MetricsRegistry& reg = registry();
  return names_of(reg.gauges, reg.mu);
}

std::vector<std::string> histogram_names() {
  MetricsRegistry& reg = registry();
  return names_of(reg.histograms, reg.mu);
}

void write_metrics_json(std::ostream& os) {
  MetricsRegistry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  JsonWriter w(os);
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, c] : reg.counters) w.kv(name, c->value());
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, g] : reg.gauges) w.kv(name, g->value());
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : reg.histograms) {
    w.key(name).begin_object();
    w.kv("count", h->count());
    w.kv("sum", h->sum());
    w.kv("mean", h->mean());
    w.key("buckets").begin_array();
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      const std::uint64_t n = h->bucket(i);
      if (n == 0) continue;
      const std::uint64_t lo = i == 0 ? 0 : std::uint64_t(1) << (i - 1);
      const std::uint64_t hi =
          i == 0 ? 0
                 : (i >= 64 ? ~std::uint64_t(0) : (std::uint64_t(1) << i) - 1);
      w.begin_array().value(lo).value(hi).value(n).end_array();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.end_object();
  os << '\n';
}

}  // namespace columbia::obs
