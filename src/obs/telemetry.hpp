// Solver convergence telemetry: per-cycle residual, force coefficients,
// and per-level wall-clock timings streamed as JSONL (one JSON object per
// line) to a process-wide sink.
//
// A record is emitted by the solvers' solve() loops only when the runtime
// observability flag is on AND a sink has been opened, so steady-state
// solves pay nothing by default. Emission is timing/IO only — it never
// feeds back into the arithmetic, so residual histories are bit-identical
// with telemetry on or off.
#pragma once

#include <string>
#include <vector>

#include "obs/trace.hpp"  // enabled() / kCompiledIn

namespace columbia::obs {

struct LevelSeconds {
  int level = 0;
  double seconds = 0;  // wall time attributed to this level in the cycle
};

struct CycleRecord {
  std::string solver;  // "nsu3d" or "cart3d"
  int cycle = 0;       // 1-based cycle index within the solve
  double residual = 0;
  bool has_forces = false;
  double cl = 0, cd = 0;
  std::vector<LevelSeconds> levels;
};

#if COLUMBIA_OBS_ENABLED
/// Opens (truncates) the JSONL sink; false on failure. Thread-safe.
bool open_jsonl(const std::string& path);
void close_jsonl();
bool jsonl_open();

/// Every line emitted since open_jsonl (the sink's in-memory image of the
/// file). The flight recorder embeds this in the telemetry shard so a
/// rank's convergence stream survives even when its sink file does not.
std::string jsonl_buffer();

/// True when a record emitted now would actually be written.
bool telemetry_active();

/// Appends one line to the sink (no-op when inactive). Thread-safe:
/// records from simultaneous solves interleave whole lines.
void emit_cycle(const CycleRecord& rec);
#else
inline bool open_jsonl(const std::string&) { return false; }
inline void close_jsonl() {}
inline bool jsonl_open() { return false; }
inline std::string jsonl_buffer() { return {}; }
constexpr bool telemetry_active() { return false; }
inline void emit_cycle(const CycleRecord&) {}
#endif

}  // namespace columbia::obs
