// Minimal recursive-descent JSON parser — the read side of obs/json.hpp.
//
// Every machine-readable artifact in this repo (Chrome traces, convergence
// JSONL, metrics dumps, bench --json reports) is produced by JsonWriter;
// this parser exists so in-repo tools (tools/columbia_report) and tests
// can consume those documents without an external dependency. It parses
// strict RFC 8259 JSON: objects, arrays, strings (with escapes, including
// \uXXXX and surrogate pairs), numbers, true/false/null. Numbers are held
// as double — exact for every value JsonWriter emits at %.10g and for
// 53-bit integers, which covers all in-repo producers.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace columbia::obs {

class JsonValue {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::Null; }
  bool is_object() const { return kind_ == Kind::Object; }
  bool is_array() const { return kind_ == Kind::Array; }
  bool is_number() const { return kind_ == Kind::Number; }
  bool is_string() const { return kind_ == Kind::String; }
  bool is_bool() const { return kind_ == Kind::Bool; }

  bool boolean() const { return boolean_; }
  double number() const { return number_; }
  const std::string& str() const { return string_; }
  const std::vector<JsonValue>& items() const { return items_; }
  /// Object members in document order (duplicate keys preserved).
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  /// First member named `key`, or nullptr (also nullptr on non-objects).
  const JsonValue* find(const std::string& key) const;

  /// Typed lookups with defaults, tolerant of missing keys / wrong kinds.
  double number_or(const std::string& key, double dflt) const;
  std::string string_or(const std::string& key, const std::string& dflt) const;

  // Construction (parser and tests).
  static JsonValue null();
  static JsonValue boolean(bool b);
  static JsonValue number(double v);
  static JsonValue string(std::string s);
  static JsonValue array(std::vector<JsonValue> items);
  static JsonValue object(std::vector<std::pair<std::string, JsonValue>> m);

 private:
  Kind kind_ = Kind::Null;
  bool boolean_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Parses exactly one JSON value spanning all of `text` (surrounding
/// whitespace allowed). Returns false and fills `error` (when non-null)
/// with "offset N: message" on malformed input.
bool parse_json(const std::string& text, JsonValue& out,
                std::string* error = nullptr);

/// Parses a JSONL document: one JSON value per non-empty line. Stops at
/// the first malformed line, returning the values parsed so far (a
/// truncated tail — e.g. a run killed mid-write — thus degrades to a
/// shorter series, matching the resilience manifest's tolerance).
std::vector<JsonValue> parse_jsonl(const std::string& text,
                                   std::string* error = nullptr);

}  // namespace columbia::obs
