// Process-wide metrics registry: named counters, gauges, and log2-bucket
// histograms, all backed by relaxed atomics so hot paths pay one atomic
// add when observability is enabled and a branch when it is not.
//
// Registry entries are created on first lookup and never removed, so
// references returned by counter()/gauge()/histogram() stay valid for the
// process lifetime — cache them at call sites:
//
//   static obs::Counter& c = obs::counter("halo.master.messages");
//   c.add(msgs);
//
// reset_metrics() zeroes values but keeps the entries (and references).
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/trace.hpp"  // enabled() / kCompiledIn

namespace columbia::obs {

class Counter {
 public:
  void add(std::uint64_t n = 1) {
    if (enabled()) v_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  /// Unconditional (gauges record configuration, not hot-path traffic).
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Power-of-two bucket histogram of nonnegative integer samples (message
/// bytes, chunk sizes, ...). Bucket 0 holds zeros; bucket i >= 1 holds
/// samples in [2^(i-1), 2^i).
class Histogram {
 public:
  static constexpr int kBuckets = 65;

  void observe(std::uint64_t x) {
    if (!enabled()) return;
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(x, std::memory_order_relaxed);
    buckets_[std::size_t(bucket_of(x))].fetch_add(1,
                                                  std::memory_order_relaxed);
  }

  static int bucket_of(std::uint64_t x) { return std::bit_width(x); }

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t bucket(int i) const {
    return buckets_[std::size_t(i)].load(std::memory_order_relaxed);
  }
  double mean() const {
    const std::uint64_t n = count();
    return n > 0 ? double(sum()) / double(n) : 0.0;
  }
  void reset();

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
};

/// Registry lookups (create-on-first-use; stable references).
Counter& counter(const std::string& name);
Gauge& gauge(const std::string& name);
Histogram& histogram(const std::string& name);

/// Zeroes every registered metric (entries and references survive).
void reset_metrics();

/// Snapshot of registered names, sorted, for reports and tests.
std::vector<std::string> counter_names();
std::vector<std::string> gauge_names();
std::vector<std::string> histogram_names();

/// Dumps the whole registry as one JSON object:
/// {"counters": {...}, "gauges": {...}, "histograms": {name: {count, sum,
/// mean, buckets: [[lo, hi, n], ...nonzero]}}}.
void write_metrics_json(std::ostream& os);

}  // namespace columbia::obs
