#include "obs/comm_report.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "obs/json.hpp"

namespace columbia::obs {

bool is_xchg_phase(const std::string& name) {
  return name.rfind("halo.xchg.", 0) == 0;
}

std::string strategy_name(std::int64_t strat) {
  if (strat == 0) return "t2t";
  if (strat == 1) return "master";
  return "-";
}

namespace {

enum class Kind { Pack, Post, Wait, Unpack, Retransmit, Park, Other };

Kind kind_of(const std::string& name) {
  if (name == "halo.xchg.pack") return Kind::Pack;
  if (name == "halo.xchg.post") return Kind::Post;
  if (name == "halo.xchg.wait") return Kind::Wait;
  if (name == "halo.xchg.unpack") return Kind::Unpack;
  if (name == "halo.xchg.retransmit") return Kind::Retransmit;
  if (name == "halo.xchg.park") return Kind::Park;
  return Kind::Other;
}

/// One completed halo.xchg span on the merged timeline.
struct CommSpan {
  Kind kind = Kind::Other;
  std::int64_t level = -1, rank = -1, nbr = -1, strat = -1, bytes = -1;
  std::int64_t round = 0;  // relaunch round (merged telemetry shards)
  double t0_us = 0, t1_us = 0;
  double excl_us = 0;  // minus same-thread children (nested waits)
};

struct GroupKey {
  std::int64_t level, strat;
  bool operator<(const GroupKey& o) const {
    if (level != o.level) return level < o.level;
    return strat < o.strat;
  }
};

/// Waits match posts k-th-to-k-th per directed pair WITHIN one relaunch
/// round: a failed round's unmatched post tail must never slide under the
/// next round's waits (in-process recordings are all round 0).
struct PairKey {
  std::int64_t round, sender, receiver;
  bool operator<(const PairKey& o) const {
    if (round != o.round) return round < o.round;
    if (sender != o.sender) return sender < o.sender;
    return receiver < o.receiver;
  }
};

/// Longest dependency chain through one group's exchange DAG. Edges:
/// same-rank happens-before (any span that ended at or before this span
/// began) and matched post -> wait. Exclusive durations keep nested spans
/// (master-strategy unpack around its waits) from double-counting.
double critical_path_us(const std::vector<CommSpan>& spans,
                        const std::map<const CommSpan*, const CommSpan*>&
                            matched_post) {
  // Process in end-time order so every dependency is resolved before its
  // dependents; per rank, keep the running max of finished-chain lengths
  // keyed by end time for the happens-before lookup.
  std::vector<const CommSpan*> order;
  order.reserve(spans.size());
  for (const CommSpan& s : spans) order.push_back(&s);
  std::stable_sort(order.begin(), order.end(),
                   [](const CommSpan* a, const CommSpan* b) {
                     if (a->t1_us != b->t1_us) return a->t1_us < b->t1_us;
                     return a->t0_us < b->t0_us;
                   });

  struct RankChain {
    std::vector<double> t1;       // nondecreasing (processing order)
    std::vector<double> best_cp;  // prefix max of cp at t1[i]
  };
  std::map<std::int64_t, RankChain> chains;
  std::map<const CommSpan*, double> cp;

  double best = 0;
  for (const CommSpan* s : order) {
    double dep = 0;
    RankChain& rc = chains[s->rank];
    // Largest chain among same-rank spans already finished when s began.
    const auto it =
        std::upper_bound(rc.t1.begin(), rc.t1.end(), s->t0_us);
    if (it != rc.t1.begin())
      dep = rc.best_cp[std::size_t(it - rc.t1.begin()) - 1];
    if (s->kind == Kind::Wait) {
      const auto m = matched_post.find(s);
      if (m != matched_post.end()) {
        const auto pc = cp.find(m->second);
        if (pc != cp.end()) dep = std::max(dep, pc->second);
      }
    }
    const double c = dep + s->excl_us;
    cp[s] = c;
    rc.t1.push_back(s->t1_us);
    rc.best_cp.push_back(
        rc.best_cp.empty() ? c : std::max(rc.best_cp.back(), c));
    best = std::max(best, c);
  }
  return best;
}

}  // namespace

CommReport build_comm_report(const std::vector<PhaseEvent>& events) {
  CommReport out;

  // Pass 1: close begin/end pairs per thread (same discipline as
  // build_profile) and keep the halo.xchg spans plus the per-level
  // comm/interior exclusive-time split the overlap analyzer needs.
  std::map<int, std::vector<const PhaseEvent*>> per_tid;
  for (const PhaseEvent& e : events) per_tid[e.tid].push_back(&e);

  struct Frame {
    const PhaseEvent* begin;
    double child_us = 0;
  };
  std::vector<CommSpan> spans;
  std::map<std::int64_t, double> level_comm_us, level_interior_us;
  std::map<std::int64_t, double> level_park_us;
  std::map<std::int64_t, std::set<std::int64_t>> level_ranks;
  std::map<std::int64_t, std::set<std::int64_t>> level_parked;

  for (const auto& [tid, evs] : per_tid) {
    std::vector<Frame> stack;
    for (const PhaseEvent* e : evs) {
      if (e->phase == 'B') {
        stack.push_back({e});
        continue;
      }
      if (e->phase != 'E') continue;
      if (stack.empty() || stack.back().begin->name != e->name) continue;
      const Frame f = stack.back();
      stack.pop_back();
      const double incl_us = e->ts_us - f.begin->ts_us;
      const double excl_us = std::max(0.0, incl_us - f.child_us);
      if (!stack.empty()) stack.back().child_us += incl_us;
      if (is_xchg_phase(f.begin->name)) {
        CommSpan s;
        s.kind = kind_of(f.begin->name);
        s.level = f.begin->level;
        s.rank = f.begin->rank;
        s.nbr = f.begin->nbr;
        s.strat = f.begin->strat;
        s.bytes = f.begin->bytes;
        s.round = f.begin->round;
        s.t0_us = f.begin->ts_us;
        s.t1_us = e->ts_us;
        s.excl_us = excl_us;
        spans.push_back(s);
        if (s.level >= 0) {
          level_ranks[s.level].insert(s.rank);
          if (s.kind == Kind::Park) {
            level_park_us[s.level] += s.excl_us;
            level_parked[s.level].insert(s.rank);
          }
        }
      }
      if (f.begin->level >= 0) {
        if (is_comm_phase(f.begin->name))
          level_comm_us[f.begin->level] += excl_us;
        else
          level_interior_us[f.begin->level] += excl_us;
      }
    }
  }
  if (spans.empty()) return out;

  // Pass 2: group by (level, strategy); match waits to posts k-th-to-k-th
  // per directed pair (recording order per thread is already time order,
  // and the group walk preserves it).
  std::map<GroupKey, std::vector<CommSpan>> groups;
  for (const CommSpan& s : spans) groups[{s.level, s.strat}].push_back(s);

  std::set<std::int64_t> all_ranks;
  std::map<std::int64_t, std::uint64_t> level_max_cell_msgs;

  for (auto& [key, gspans] : groups) {
    CommGroup g;
    g.level = key.level;
    g.strat = key.strat;

    std::map<PairKey, std::vector<const CommSpan*>> posts, waits;
    std::set<std::int64_t> ranks;
    for (const CommSpan& s : gspans) {
      ranks.insert(s.rank);
      all_ranks.insert(s.rank);
      const double excl_s = s.excl_us / 1e6;
      switch (s.kind) {
        case Kind::Pack:
          g.pack_s += excl_s;
          break;
        case Kind::Post:
          g.post_s += excl_s;
          posts[{s.round, s.rank, s.nbr}].push_back(&s);
          break;
        case Kind::Wait:
          g.wait_s += excl_s;
          waits[{s.round, s.nbr, s.rank}].push_back(&s);
          break;
        case Kind::Unpack:
          g.unpack_s += excl_s;
          break;
        case Kind::Retransmit:
          g.retransmits += 1;
          break;
        case Kind::Park:
        case Kind::Other:
          break;
      }
    }
    g.ranks = int(ranks.size());

    std::map<const CommSpan*, const CommSpan*> matched_post;
    // Cells aggregate over rounds: the matrix reports the directed pair,
    // not the launch attempt. Keyed (rank=receiver, nbr=sender).
    std::map<std::pair<std::int64_t, std::int64_t>, WaitCell> cells;
    for (auto& [pk, ws] : waits) {
      std::stable_sort(ws.begin(), ws.end(),
                       [](const CommSpan* a, const CommSpan* b) {
                         return a->t0_us < b->t0_us;
                       });
      auto pit = posts.find(pk);
      std::vector<const CommSpan*> ps =
          pit != posts.end() ? pit->second : std::vector<const CommSpan*>{};
      std::stable_sort(ps.begin(), ps.end(),
                       [](const CommSpan* a, const CommSpan* b) {
                         return a->t0_us < b->t0_us;
                       });
      WaitCell& cell = cells[{pk.receiver, pk.sender}];
      cell.rank = pk.receiver;
      cell.nbr = pk.sender;
      for (std::size_t k = 0; k < ws.size(); ++k) {
        const CommSpan* w = ws[k];
        const double dur_s = w->excl_us / 1e6;
        cell.wait_s += dur_s;
        if (k >= ps.size()) continue;  // sender side not captured
        const CommSpan* p = ps[k];
        matched_post[w] = p;
        cell.messages += 1;
        if (p->bytes > 0) cell.bytes += std::uint64_t(p->bytes);
        // Late sender: the portion of the wait that elapsed before the
        // matching post completed. Late receiver: how long the message
        // had been posted before the receiver started waiting.
        const double overlap_us =
            std::min(std::max(p->t1_us - w->t0_us, 0.0), w->excl_us);
        cell.late_sender_s += overlap_us / 1e6;
        cell.late_receiver_s += std::max(w->t0_us - p->t1_us, 0.0) / 1e6;
        // Measured delivery: post begin to wait end, the span the machine
        // model prices as latency + payload/bandwidth. Guard >= 0 — clock
        // correction is only good to the sync RTT.
        const double xfer_s = std::max(w->t1_us - p->t0_us, 0.0) / 1e6;
        if (cell.messages == 1 || xfer_s < cell.xfer_min_s)
          cell.xfer_min_s = xfer_s;
        cell.xfer_s += xfer_s;
      }
    }
    for (auto& [ck, cell] : cells) {
      g.messages += cell.messages;
      g.bytes += cell.bytes;
      if (cell.messages > 0) {
        if (g.messages == cell.messages || cell.xfer_min_s < g.xfer_min_s)
          g.xfer_min_s = cell.xfer_min_s;  // first matched cell seeds the min
        g.xfer_s += cell.xfer_s;
      }
      if (g.level >= 0) {
        std::uint64_t& mx = level_max_cell_msgs[g.level];
        mx = std::max(mx, cell.messages);
      }
      g.cells.push_back(cell);
    }
    g.critical_path_s = critical_path_us(gspans, matched_post) / 1e6;

    out.wait_s += g.wait_s;
    out.retransmits += g.retransmits;
    for (const WaitCell& c : g.cells) {
      out.late_sender_s += c.late_sender_s;
      out.late_receiver_s += c.late_receiver_s;
    }
    out.groups.push_back(std::move(g));
  }
  out.ranks = int(all_ranks.size());

  // Pass 3: per-level overlap headroom + agglomeration advice.
  for (const auto& [level, ranks] : level_ranks) {
    LevelOverlap lo;
    lo.level = level;
    lo.ranks = int(ranks.size());
    for (const CommGroup& g : out.groups)
      if (g.level == level) lo.wait_s += g.wait_s;
    const auto ci = level_comm_us.find(level);
    lo.comm_s = ci != level_comm_us.end() ? ci->second / 1e6 : 0;
    const auto ii = level_interior_us.find(level);
    lo.interior_s = ii != level_interior_us.end() ? ii->second / 1e6 : 0;
    lo.coverable_s = std::min(lo.wait_s, lo.interior_s);
    lo.headroom = lo.wait_s > 0 ? lo.coverable_s / lo.wait_s : 1;
    // Claimed overlap: late-receiver time is exactly the share of each
    // message's life spent already-delivered while the receiver computed.
    for (const CommGroup& g : out.groups)
      if (g.level == level)
        for (const WaitCell& c : g.cells) lo.claimed_s += c.late_receiver_s;
    const auto pu = level_park_us.find(level);
    lo.park_s = pu != level_park_us.end() ? pu->second / 1e6 : 0;
    const auto pr = level_parked.find(level);
    lo.parked_ranks = pr != level_parked.end() ? int(pr->second.size()) : 0;
    const auto mi = level_max_cell_msgs.find(level);
    lo.exchanges = mi != level_max_cell_msgs.end() ? mi->second : 0;
    if (lo.exchanges > 0 && lo.ranks > 0) {
      const double n = double(lo.ranks) * double(lo.exchanges);
      lo.comm_per_exchange_s = lo.comm_s / n;
      lo.compute_per_exchange_s = lo.interior_s / n;
      lo.agglomerate = lo.compute_per_exchange_s < lo.comm_per_exchange_s;
    }
    out.levels.push_back(lo);
  }
  return out;
}

Table comm_wait_matrix_table(const CommReport& r) {
  Table t({"level", "strat", "rank", "nbr", "msgs", "KB", "wait ms",
           "late-send ms", "late-recv ms"});
  for (const CommGroup& g : r.groups) {
    for (const WaitCell& c : g.cells) {
      t.add_row({g.level >= 0 ? std::to_string(g.level) : "-",
                 strategy_name(g.strat), std::to_string(c.rank),
                 std::to_string(c.nbr), std::to_string(c.messages),
                 Table::num(double(c.bytes) / 1e3, 2),
                 Table::num(c.wait_s * 1e3, 3),
                 Table::num(c.late_sender_s * 1e3, 3),
                 Table::num(c.late_receiver_s * 1e3, 3)});
    }
  }
  return t;
}

Table comm_strategy_table(const CommReport& r) {
  Table t({"level", "strategy", "ranks", "msgs", "KB", "wait ms",
           "late-send %", "late-recv %", "crit path ms", "retransmits"});
  for (const CommGroup& g : r.groups) {
    double ls = 0, lr = 0;
    for (const WaitCell& c : g.cells) {
      ls += c.late_sender_s;
      lr += c.late_receiver_s;
    }
    const double split = ls + lr;
    t.add_row({g.level >= 0 ? std::to_string(g.level) : "-",
               strategy_name(g.strat), std::to_string(g.ranks),
               std::to_string(g.messages),
               Table::num(double(g.bytes) / 1e3, 2),
               Table::num(g.wait_s * 1e3, 3),
               Table::num(split > 0 ? 100 * ls / split : 0, 1),
               Table::num(split > 0 ? 100 * lr / split : 0, 1),
               Table::num(g.critical_path_s * 1e3, 3),
               std::to_string(g.retransmits)});
  }
  return t;
}

Table comm_overlap_table(const CommReport& r) {
  // "claimed ms" vs "coverable ms" closes the loop on the headroom
  // advisor: coverable is what interior compute could hide, claimed is
  // the late-receiver time the split post()/finish() path actually hid.
  Table t({"level", "ranks", "exchanges", "comm ms", "wait ms",
           "interior ms", "coverable ms", "claimed ms", "headroom",
           "park ms", "advice"});
  for (const LevelOverlap& l : r.levels) {
    t.add_row({std::to_string(l.level), std::to_string(l.ranks),
               std::to_string(l.exchanges), Table::num(l.comm_s * 1e3, 3),
               Table::num(l.wait_s * 1e3, 3),
               Table::num(l.interior_s * 1e3, 3),
               Table::num(l.coverable_s * 1e3, 3),
               Table::num(l.claimed_s * 1e3, 3),
               Table::num(l.headroom, 3),
               Table::num(l.park_s * 1e3, 3),
               l.agglomerate ? "agglomerate" : "-"});
  }
  return t;
}

void write_comm_json_into(JsonWriter& w, const CommReport& r) {
  w.begin_object();
  w.kv("wait_s", r.wait_s);
  w.kv("late_sender_s", r.late_sender_s);
  w.kv("late_receiver_s", r.late_receiver_s);
  w.kv("retransmits", r.retransmits);
  w.kv("ranks", std::int64_t(r.ranks));
  w.key("groups").begin_array();
  for (const CommGroup& g : r.groups) {
    w.begin_object();
    w.kv("level", g.level);
    w.kv("strategy", strategy_name(g.strat));
    w.kv("ranks", std::int64_t(g.ranks));
    w.kv("messages", g.messages);
    w.kv("bytes", g.bytes);
    w.kv("pack_s", g.pack_s);
    w.kv("post_s", g.post_s);
    w.kv("wait_s", g.wait_s);
    w.kv("unpack_s", g.unpack_s);
    w.kv("xfer_s", g.xfer_s);
    w.kv("xfer_min_s", g.xfer_min_s);
    w.kv("critical_path_s", g.critical_path_s);
    w.kv("retransmits", g.retransmits);
    w.key("cells").begin_array();
    for (const WaitCell& c : g.cells) {
      w.begin_object();
      w.kv("rank", c.rank);
      w.kv("nbr", c.nbr);
      w.kv("messages", c.messages);
      w.kv("bytes", c.bytes);
      w.kv("wait_s", c.wait_s);
      w.kv("late_sender_s", c.late_sender_s);
      w.kv("late_receiver_s", c.late_receiver_s);
      w.kv("xfer_s", c.xfer_s);
      w.kv("xfer_min_s", c.xfer_min_s);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.key("levels").begin_array();
  for (const LevelOverlap& l : r.levels) {
    w.begin_object();
    w.kv("level", l.level);
    w.kv("ranks", std::int64_t(l.ranks));
    w.kv("exchanges", l.exchanges);
    w.kv("wait_s", l.wait_s);
    w.kv("comm_s", l.comm_s);
    w.kv("interior_s", l.interior_s);
    w.kv("coverable_s", l.coverable_s);
    w.kv("claimed_s", l.claimed_s);
    w.kv("headroom", l.headroom);
    w.kv("park_s", l.park_s);
    w.kv("parked_ranks", std::int64_t(l.parked_ranks));
    w.kv("comm_per_exchange_s", l.comm_per_exchange_s);
    w.kv("compute_per_exchange_s", l.compute_per_exchange_s);
    w.kv("agglomerate", l.agglomerate);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

}  // namespace columbia::obs
