// Distributed flight recorder: durable per-rank telemetry shards and the
// clock-aligned offline merge.
//
// A forked rank process records spans/counters/convergence telemetry in
// its own address space and then _exit()s — before this layer, all of it
// died with the process, which is why `--trace` was documented "threads
// backend only". The FlightRecorder gives every rank a durable shard
// file: a JSONL document holding the rank's Chrome-trace span stream, its
// metrics-registry snapshot, its convergence JSONL lines, and a header
// stamping rank / pid / launch round / backend / build provenance / fault
// spec / steady-clock epoch + the clock-sync offset estimated against
// member 0 (core/clock_sync.hpp).
//
// Durability discipline: every flush rewrites the whole shard through
// support::durable_write_file (tmp + fsync + rename), and an autoflush
// thread keeps doing so on a short period — so a rank killed by the
// watchdog (peer_hang) or a crash leaves the complete shard of its last
// flush, never a torn file. A shard without its footer line is truncated
// but fully mergeable; parse_jsonl's stop-at-first-bad-line tolerance
// covers even a mid-rename power cut.
//
// The offline half parses shards back, applies each rank's clock offset
// to express every timestamp on member 0's clock, serializes relaunch
// rounds (so k-th-post-to-k-th-wait matching never pairs across a
// relaunch seam), namespaces thread ids, and emits one merged Chrome
// trace consumable by `columbia_report comm` — the same wait-matrix /
// critical-path / overlap math as the in-process observatory, now valid
// for the shm and tcp process backends.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "obs/json_parse.hpp"
#include "obs/report.hpp"

namespace columbia::obs {

/// Clock-sync result stamped into the shard header (mirrors
/// core::ClockEstimate without making obs depend on core).
struct ShardClock {
  bool synced = false;
  std::int64_t offset_ns = 0;  // member-0 clock minus this rank's clock
  std::int64_t rtt_ns = 0;     // RTT of the min-RTT sample used
  int samples = 0;
};

struct ShardOptions {
  std::string path;        // shard file destination
  int rank = 0;            // group member index
  int ranks = 1;           // group size
  int round = 0;           // run_recovering launch round
  std::string backend;     // wire backend name ("shm", "tcp", ...)
  std::string fault_spec;  // COLUMBIA_FAULTS stamp (resil::render_fault_spec)
  /// Autoflush period; <= 0 records only on explicit flush/finalize.
  int flush_ms = 250;
};

#if COLUMBIA_OBS_ENABLED

/// Arms the span recorder for one rank process and keeps its shard
/// durable. Construction clears any trace events inherited over fork(),
/// enables recording, writes the first shard image, and starts the
/// autoflush thread; destruction without finalize() leaves the truncated
/// shard of the last flush (exactly what a killed rank leaves).
class FlightRecorder {
 public:
  explicit FlightRecorder(const ShardOptions& opt);
  ~FlightRecorder();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Records the group-start clock-sync estimate and reflushes.
  void set_clock(const ShardClock& clock);

  /// Serializes the current telemetry state and durably rewrites the
  /// shard. False when the write failed (the previous image survives).
  bool flush();

  /// Final flush with the footer line (end clock estimate + drift
  /// baseline); stops the autoflush thread first. Idempotent.
  bool finalize(const ShardClock& end_clock);

  const std::string& path() const { return opt_.path; }

 private:
  bool write_image(bool with_footer, const ShardClock& end_clock);

  ShardOptions opt_;
  ShardClock clock_{};
  std::uint64_t base_ns_ = 0;  // recorder epoch (trace_epoch_ns)
  int flushes_ = 0;
  bool finalized_ = false;
  struct Flusher;
  std::unique_ptr<Flusher> flusher_;
};

#else  // !COLUMBIA_OBS_ENABLED — recorder degrades to a header-only shard.

class FlightRecorder {
 public:
  explicit FlightRecorder(const ShardOptions& opt);
  ~FlightRecorder() = default;
  void set_clock(const ShardClock&) {}
  bool flush() { return true; }
  bool finalize(const ShardClock&) { return true; }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

#endif  // COLUMBIA_OBS_ENABLED

// --- Offline shard ingest / merge -----------------------------------------

/// One parsed shard. Event timestamps are microseconds relative to
/// `clock_base_ns`, uncorrected (merge_shards applies the clock offsets).
struct TelemetryShard {
  std::string path;
  int rank = 0, ranks = 1, round = 0;
  std::int64_t pid = 0;
  std::string backend, git_sha, build_type, fault_spec;
  bool obs = true;
  std::uint64_t clock_base_ns = 0;
  ShardClock clock;      // group-start estimate
  ShardClock end_clock;  // footer estimate (valid when !truncated)
  /// No footer line: the rank was killed / crashed after its last flush.
  bool truncated = true;
  int flushes = 0;          // autoflush markers seen (liveness pulses)
  double last_flush_us = 0; // rel time of the last flush marker
  double end_us = 0;        // rel time of the footer (when !truncated)
  std::vector<PhaseEvent> events;  // per-thread recording order
  std::vector<JsonValue> conv;     // embedded convergence cycle records
  /// Filled by merge_shards: this shard's rel-0 instant on the merged
  /// timeline (member 0's clock, rounds serialized), microseconds.
  double merged_base_us = 0;
};

/// Parses one shard document. False (with `error`) when the text does not
/// begin with a telemetry_shard header; a malformed tail after the header
/// parses as a truncated shard, never an error.
bool parse_shard(const std::string& text, TelemetryShard& out,
                 std::string* error = nullptr);
bool read_shard_file(const std::string& path, TelemetryShard& out,
                     std::string* error = nullptr);

/// The merged multi-rank timeline plus everything the report layer needs
/// to attribute it: per-shard metadata (events moved out), the member rank
/// behind every merged event, and provenance-mismatch warnings.
struct MergedTelemetry {
  std::vector<PhaseEvent> events;   // clock-corrected, rounds serialized
  std::vector<int> event_member;    // group rank per event (Chrome pid)
  std::vector<TelemetryShard> shards;  // sorted by (round, rank)
  std::vector<std::string> warnings;   // provenance / sync anomalies
  int ranks = 0;
  int rounds = 0;
  std::string backend;    // from the first shard
  std::string git_sha;    // from the first shard
  std::string build_type; // from the first shard
};

/// Clock-aligns and concatenates shards: each event timestamp moves onto
/// member 0's clock via its shard's offset, relaunch rounds are re-based
/// onto disjoint windows in round order, and thread ids are namespaced per
/// shard. Provenance stamps (git SHA, build type, fault spec, backend,
/// group size) are cross-checked and mismatches recorded as warnings.
MergedTelemetry merge_shards(std::vector<TelemetryShard> shards);

/// Merged Chrome trace: pid = group rank, one process-name metadata row
/// per rank, and a "columbia" block carrying per-shard provenance, clock
/// estimates and liveness — the input `columbia_report comm` consumes.
void write_merged_chrome_trace(std::ostream& os, const MergedTelemetry& m);
bool write_merged_chrome_trace_file(const std::string& path,
                                    const MergedTelemetry& m);

/// True when `text` (a whole file) looks like a telemetry shard document.
bool is_shard_text(const std::string& text);

/// "conv.jsonl" -> "conv.rank3.jsonl": the per-rank spelling of any
/// single-process artifact path, inserted before the final extension (or
/// appended when there is none). Forked ranks must never append to one
/// shared JSONL file — each gets its own suffixed sink.
std::string rank_suffixed_path(const std::string& path, int rank);

/// Canonical shard path for (base, rank, round):
/// "<base>.rank<r>.round<k>.jsonl".
std::string shard_file_path(const std::string& base, int rank, int round);

}  // namespace columbia::obs
