#include "obs/telemetry.hpp"

#if COLUMBIA_OBS_ENABLED

#include <fstream>
#include <mutex>
#include <sstream>

#include "obs/json.hpp"

namespace columbia::obs {

namespace {

struct Sink {
  std::mutex mu;
  std::ofstream os;
  bool open = false;
};

Sink& sink() {
  static Sink* s = new Sink;  // outlives static dtors
  return *s;
}

}  // namespace

bool open_jsonl(const std::string& path) {
  Sink& s = sink();
  std::lock_guard<std::mutex> lock(s.mu);
  if (s.open) s.os.close();
  s.os.open(path, std::ios::trunc);
  s.open = bool(s.os);
  return s.open;
}

void close_jsonl() {
  Sink& s = sink();
  std::lock_guard<std::mutex> lock(s.mu);
  if (s.open) s.os.close();
  s.open = false;
}

bool jsonl_open() {
  Sink& s = sink();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.open;
}

bool telemetry_active() { return enabled() && jsonl_open(); }

void emit_cycle(const CycleRecord& rec) {
  if (!enabled()) return;
  // Render outside the sink lock; write the finished line atomically.
  std::ostringstream line;
  JsonWriter w(line);
  w.begin_object();
  w.kv("solver", rec.solver);
  w.kv("cycle", rec.cycle);
  w.kv("residual", rec.residual);
  if (rec.has_forces) {
    w.kv("cl", rec.cl);
    w.kv("cd", rec.cd);
  }
  if (!rec.levels.empty()) {
    w.key("levels").begin_array();
    for (const LevelSeconds& l : rec.levels) {
      w.begin_object();
      w.kv("level", l.level);
      w.kv("seconds", l.seconds);
      w.end_object();
    }
    w.end_array();
  }
  w.end_object();

  Sink& s = sink();
  std::lock_guard<std::mutex> lock(s.mu);
  if (!s.open) return;
  s.os << line.str() << '\n';
  s.os.flush();
}

}  // namespace columbia::obs

#endif  // COLUMBIA_OBS_ENABLED
