#include "obs/telemetry.hpp"

#if COLUMBIA_OBS_ENABLED

#include <mutex>
#include <sstream>

#include "obs/json.hpp"
#include "support/durable.hpp"

namespace columbia::obs {

namespace {

/// Convergence records accumulate in memory and every emit lands the whole
/// file tmp+rename (support::durable_write_file): a crashed run leaves the
/// complete records of every finished cycle, never a torn last line.
/// Convergence files are a few KB, so the rewrite-per-cycle is cheap.
struct Sink {
  std::mutex mu;
  std::string path;
  std::string buffer;  // all lines emitted since open_jsonl
  bool open = false;
};

Sink& sink() {
  static Sink* s = new Sink;  // outlives static dtors
  return *s;
}

}  // namespace

bool open_jsonl(const std::string& path) {
  Sink& s = sink();
  std::lock_guard<std::mutex> lock(s.mu);
  s.path = path;
  s.buffer.clear();
  s.open = support::durable_write_file(path, "");
  return s.open;
}

void close_jsonl() {
  Sink& s = sink();
  std::lock_guard<std::mutex> lock(s.mu);
  s.open = false;
  s.path.clear();
  s.buffer.clear();
}

bool jsonl_open() {
  Sink& s = sink();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.open;
}

std::string jsonl_buffer() {
  Sink& s = sink();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.buffer;
}

bool telemetry_active() { return enabled() && jsonl_open(); }

void emit_cycle(const CycleRecord& rec) {
  if (!enabled()) return;
  // Render outside the sink lock; write the finished line atomically.
  std::ostringstream line;
  JsonWriter w(line);
  w.begin_object();
  w.kv("solver", rec.solver);
  w.kv("cycle", rec.cycle);
  w.kv("residual", rec.residual);
  if (rec.has_forces) {
    w.kv("cl", rec.cl);
    w.kv("cd", rec.cd);
  }
  if (!rec.levels.empty()) {
    w.key("levels").begin_array();
    for (const LevelSeconds& l : rec.levels) {
      w.begin_object();
      w.kv("level", l.level);
      w.kv("seconds", l.seconds);
      w.end_object();
    }
    w.end_array();
  }
  w.end_object();

  Sink& s = sink();
  std::lock_guard<std::mutex> lock(s.mu);
  if (!s.open) return;
  s.buffer += line.str();
  s.buffer += '\n';
  support::durable_write_file(s.path, s.buffer);
}

}  // namespace columbia::obs

#endif  // COLUMBIA_OBS_ENABLED
