// Communication observatory: merges every rank's halo.xchg spans onto the
// recorder's common clock and attributes each blocking wait to its cause,
// Scalasca-style — late sender (the receiver blocked before the matching
// send was posted) vs late receiver (the message sat delivered before the
// receiver asked for it). The same merged timeline yields the per-(level,
// strategy) rank×neighbor wait matrix, the critical path through the
// exchange DAG, and the per-level overlap headroom the ROADMAP's
// comm/compute-overlap item needs: how much of the measured wait could
// interior compute at that level have hidden, and which coarse levels have
// shrunk into the paper's Fig. 19 regime where an exchange costs more than
// the work it unblocks (the agglomeration advisor).
//
// Inputs are PhaseEvents (obs/report.hpp), so the live SolveReportScope
// summary and the offline `columbia_report comm` subcommand run the exact
// same math; committed fixture traces in tests/data pin it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/report.hpp"
#include "support/table.hpp"

namespace columbia::obs {

/// One cell of the rank×neighbor wait matrix: everything `rank` spent
/// blocked on messages from `nbr`, split by cause. Waits are matched to
/// posts k-th-to-k-th per directed pair, so retransmitted attempts line up
/// with their re-receives.
struct WaitCell {
  std::int64_t rank = -1;  // waiting (receiving) rank
  std::int64_t nbr = -1;   // sending rank it waited on
  std::uint64_t messages = 0;   // matched post/wait pairs
  std::uint64_t bytes = 0;      // payload bytes of the matched posts
  double wait_s = 0;            // total blocking-wait seconds
  double late_sender_s = 0;     // wait overlapped by the sender's post
  double late_receiver_s = 0;   // message aged before the wait began
  /// Measured end-to-end delivery: sum over matched pairs of (wait end -
  /// post begin) — the wire's share of each message's life, the quantity
  /// the machine-model attribution compares against perf::FabricModel.
  double xfer_s = 0;
  /// Fastest single delivery in the cell (the latency-floor estimate).
  double xfer_min_s = 0;
};

/// Per-(multigrid level, exchange strategy) rollup of the exchange phases.
struct CommGroup {
  std::int64_t level = -1;  // -1 = spans recorded without a level
  std::int64_t strat = -1;  // 0 = thread-to-thread, 1 = master-thread
  std::vector<WaitCell> cells;  // sorted by (rank, nbr)
  double pack_s = 0, post_s = 0, wait_s = 0, unpack_s = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t messages = 0;  // matched pairs over all cells
  std::uint64_t bytes = 0;
  /// Summed measured delivery time and its per-group minimum (see
  /// WaitCell::xfer_s); 0 when no pair matched.
  double xfer_s = 0;
  double xfer_min_s = 0;
  /// Longest dependency chain through the group's exchange DAG: spans
  /// chain sequentially per rank (exclusive durations, so nested waits are
  /// not double-counted) and each wait additionally depends on its matched
  /// post on the sending rank.
  double critical_path_s = 0;
  int ranks = 0;  // distinct ranks that recorded spans in this group
};

/// Per-level overlap headroom and the Fig. 19 agglomeration advice.
struct LevelOverlap {
  std::int64_t level = -1;
  double wait_s = 0;      // blocking wait at this level (all strategies)
  double comm_s = 0;      // all exclusive halo.* seconds at this level
  double interior_s = 0;  // exclusive non-comm seconds at this level
  double coverable_s = 0; // min(wait_s, interior_s)
  double headroom = 1;    // coverable_s / wait_s; 1 when wait_s == 0
  /// Overlap actually claimed by the split post()/finish() path: the
  /// late-receiver seconds at this level — message time that aged under
  /// interior compute before the receiver's wait began. The blocking path
  /// shows ~0 here; the report pairs it against coverable_s to close the
  /// loop on the headroom advisor ("claimed vs coverable").
  double claimed_s = 0;
  /// Rank-agglomeration accounting: exclusive seconds members spent parked
  /// (outside the level's active set, validating locally) and how many
  /// distinct ranks parked.
  double park_s = 0;
  int parked_ranks = 0;
  std::uint64_t exchanges = 0;  // max matched messages over any cell
  int ranks = 0;
  double comm_per_exchange_s = 0;     // comm_s / ranks / exchanges
  double compute_per_exchange_s = 0;  // interior_s / ranks / exchanges
  /// True when per-rank interior work per exchange has dropped below the
  /// per-exchange communication cost — the regime where the paper's
  /// coarse multigrid levels stop scaling and fewer ranks would win.
  bool agglomerate = false;
};

/// Whole-window communication report.
struct CommReport {
  std::vector<CommGroup> groups;    // sorted by (level, strat)
  std::vector<LevelOverlap> levels; // ascending by level
  double wait_s = 0, late_sender_s = 0, late_receiver_s = 0;
  std::uint64_t retransmits = 0;
  int ranks = 0;  // distinct ranks over all comm spans

  bool empty() const { return groups.empty(); }
};

/// True for span names belonging to the halo.xchg instrumentation family.
bool is_xchg_phase(const std::string& name);

/// Builds the report from a window of events (same input contract as
/// build_profile: per-thread recording order, unmatched edges dropped).
CommReport build_comm_report(const std::vector<PhaseEvent>& events);

/// Rank×neighbor wait matrix: one row per (level, strategy, rank, nbr).
Table comm_wait_matrix_table(const CommReport& r);

/// Fig. 16–18-style per-strategy comparison across all groups.
Table comm_strategy_table(const CommReport& r);

/// Per-level overlap headroom + agglomeration advice.
Table comm_overlap_table(const CommReport& r);

class JsonWriter;

/// Emits the report as the next value of an in-progress JsonWriter (used
/// for the "comm_xchg" object of the COLUMBIA_REPORT JSONL record).
void write_comm_json_into(JsonWriter& w, const CommReport& r);

/// Human-readable name of a strategy id ("t2t", "master", or "-").
std::string strategy_name(std::int64_t strat);

}  // namespace columbia::obs
