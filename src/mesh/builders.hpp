// Synthetic unstructured-mesh generators.
//
// The paper's NSU3D benchmarks run on hybrid viscous meshes around
// transport configurations (Fig. 13): geometrically-stretched near-wall
// layers (normal spacing ~1e-5 chord) under an isotropic outer region.
// We synthesize topologically equivalent meshes analytically: the grids are
// emitted as fully general unstructured element lists, so every downstream
// code path (dual metrics, line extraction, agglomeration, partitioning,
// the flow solver) treats them exactly as it would a CAD-generated mesh.
#pragma once

#include "mesh/unstructured.hpp"

namespace columbia::mesh {

/// Uniform box mesh [lo,hi] with nx*ny*nz cells.
/// `tetrahedralize` splits every hex into 6 conforming tets.
UnstructuredMesh make_box_mesh(int nx, int ny, int nz, const geom::Vec3& lo,
                               const geom::Vec3& hi,
                               bool tetrahedralize = false,
                               BoundaryTag tag = BoundaryTag::Farfield);

struct WingMeshSpec {
  int n_wrap = 32;     // points around the section (periodic)
  int n_span = 8;      // spanwise cells
  int n_normal = 16;   // layers from wall to farfield
  real_t chord = 1.0;
  real_t span = 4.0;
  real_t thickness = 0.12;      // section t/c
  real_t farfield_radius = 10;  // in chords
  real_t wall_spacing = 1e-4;   // first-layer height in chords
  /// Fraction of normal layers kept hexahedral (the "prismatic" stretched
  /// wall block); layers above are split into prisms.
  real_t hex_layer_fraction = 0.5;
};

/// O-mesh around a constant-chord wing section, extruded in span.
/// Near-wall layers are hexahedra with geometric stretching (first spacing
/// spec.wall_spacing); the outer block is prisms. Boundary tags: the wing
/// surface is Wall, the outer shell Farfield, the span ends Symmetry.
UnstructuredMesh make_wing_mesh(const WingMeshSpec& spec);

struct MeshStats {
  index_t points = 0;
  index_t edges = 0;
  std::array<index_t, 4> elements_by_type{};  // tet, pyramid, prism, hex
  real_t max_aspect_ratio = 0;                // worst nodal coupling ratio
  real_t total_volume = 0;
};

MeshStats compute_stats(const UnstructuredMesh& m);

}  // namespace columbia::mesh
