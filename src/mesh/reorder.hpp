// Cache-locality mesh reordering.
//
// Paper Sec. III: "For cache-based scalar processors, such as the Intel
// Itanium on the NASA Columbia machine, the grid data is reordered for
// cache locality using a reverse Cuthill-McKee type algorithm." This
// module applies RCM to the node numbering of an unstructured mesh,
// renumbering elements and boundary faces consistently, and reports the
// locality improvement.
#pragma once

#include <vector>

#include "mesh/unstructured.hpp"

namespace columbia::mesh {

struct ReorderResult {
  /// perm[new_id] = old_id (the RCM ordering applied).
  std::vector<index_t> perm;
  double mean_edge_span_before = 0;
  double mean_edge_span_after = 0;
};

/// Renumbers the mesh nodes with reverse Cuthill-McKee (in place).
/// Returns the permutation and the bandwidth-proxy improvement.
ReorderResult reorder_for_cache(UnstructuredMesh& m);

}  // namespace columbia::mesh
