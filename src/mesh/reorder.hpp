// Cache-locality mesh reordering.
//
// Paper Sec. III: "For cache-based scalar processors, such as the Intel
// Itanium on the NASA Columbia machine, the grid data is reordered for
// cache locality using a reverse Cuthill-McKee type algorithm." This
// module applies RCM to the node numbering of an unstructured mesh,
// renumbering elements and boundary faces consistently, and reports the
// locality improvement.
#pragma once

#include <span>
#include <vector>

#include "mesh/unstructured.hpp"

namespace columbia::mesh {

struct ReorderResult {
  /// perm[new_id] = old_id (the RCM ordering applied).
  std::vector<index_t> perm;
  double mean_edge_span_before = 0;
  double mean_edge_span_after = 0;
};

/// Renumbers the mesh nodes with reverse Cuthill-McKee (in place).
/// Returns the permutation and the bandwidth-proxy improvement.
ReorderResult reorder_for_cache(UnstructuredMesh& m);

/// Applies a permutation (perm[new_id] = old_id) to one parallel array:
/// out[k] = v[perm[k]]. Shared by the RCM node reorder and the
/// color-major edge reorder of the solver levels.
template <class T>
std::vector<T> permuted(const std::vector<T>& v, std::span<const index_t> perm) {
  std::vector<T> out;
  out.reserve(v.size());
  for (index_t old_id : perm) out.push_back(v[std::size_t(old_id)]);
  return out;
}

}  // namespace columbia::mesh
