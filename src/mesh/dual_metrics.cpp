#include "mesh/dual_metrics.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <unordered_map>

#include "support/assert.hpp"

namespace columbia::mesh {

namespace {

using geom::Vec3;

/// Area vector of triangle (a,b,c) = 0.5 (b-a) x (c-a).
Vec3 tri_area(const Vec3& a, const Vec3& b, const Vec3& c) {
  return 0.5 * cross(b - a, c - a);
}

/// (1/3) x_centroid . area — the divergence-theorem volume contribution of
/// one oriented triangle.
real_t tri_volume_term(const Vec3& a, const Vec3& b, const Vec3& c) {
  return dot((a + b + c) / 3.0, tri_area(a, b, c)) / 3.0;
}

std::uint64_t edge_key(index_t a, index_t b) {
  const index_t lo = std::min(a, b), hi = std::max(a, b);
  return (std::uint64_t(std::uint32_t(lo)) << 32) | std::uint32_t(hi);
}

}  // namespace

DualMetrics compute_dual_metrics(const UnstructuredMesh& m) {
  DualMetrics dm;
  const index_t np = m.num_points();
  dm.node_volume.assign(std::size_t(np), 0.0);
  dm.boundary_normal.assign(std::size_t(np), {});

  std::unordered_map<std::uint64_t, index_t> edge_id;
  auto get_edge = [&](index_t a, index_t b) {
    const auto [it, inserted] = edge_id.emplace(edge_key(a, b),
                                                index_t(dm.edges.size()));
    if (inserted) {
      dm.edges.emplace_back(std::min(a, b), std::max(a, b));
      dm.edge_normal.push_back({});
    }
    return it->second;
  };

  for (index_t ei = 0; ei < m.num_elements(); ++ei) {
    const Element& e = m.elements[std::size_t(ei)];
    const int nn = e.num_nodes();

    Vec3 cc{};
    for (int k = 0; k < nn; ++k) cc += m.points[std::size_t(e.nodes[std::size_t(k)])];
    cc = cc / real_t(nn);

    const auto faces = element_faces(e.type);
    std::vector<Vec3> fcenters(faces.size());
    for (std::size_t f = 0; f < faces.size(); ++f) {
      Vec3 fc{};
      for (int k = 0; k < faces[f].n; ++k)
        fc += m.points[std::size_t(e.nodes[std::size_t(faces[f].v[std::size_t(k)])])];
      fcenters[f] = fc / real_t(faces[f].n);
    }

    // Dual faces: for each element edge, the quad (edge mid, fc1, cc, fc2)
    // where f1, f2 are the two element faces containing the edge.
    for (const auto& le : element_edges(e.type)) {
      const index_t a = e.nodes[std::size_t(le[0])];
      const index_t b = e.nodes[std::size_t(le[1])];
      const Vec3& pa = m.points[std::size_t(a)];
      const Vec3& pb = m.points[std::size_t(b)];
      const Vec3 emid = 0.5 * (pa + pb);

      int found[2] = {-1, -1};
      int nfound = 0;
      for (std::size_t f = 0; f < faces.size() && nfound < 2; ++f) {
        bool has_a = false, has_b = false;
        for (int k = 0; k < faces[f].n; ++k) {
          const int lv = faces[f].v[std::size_t(k)];
          if (lv == le[0]) has_a = true;
          if (lv == le[1]) has_b = true;
        }
        if (has_a && has_b) found[nfound++] = int(f);
      }
      COLUMBIA_ASSERT(nfound == 2);
      const Vec3& fc1 = fcenters[std::size_t(found[0])];
      const Vec3& fc2 = fcenters[std::size_t(found[1])];

      // Quad (emid, fc1, cc, fc2) as two triangles; orient a -> b.
      Vec3 n = tri_area(emid, fc1, cc) + tri_area(emid, cc, fc2);
      if (dot(n, pb - pa) < 0) n = -1.0 * n;

      const index_t eid = get_edge(a, b);
      // dm.edges stores (min,max); accumulate in that orientation.
      if (a < b)
        dm.edge_normal[std::size_t(eid)] += n;
      else
        dm.edge_normal[std::size_t(eid)] -= n;

      // Volume contributions: the dual face bounds a's subvolume (outward
      // = a->b) and b's subvolume (outward = b->a). Use the divergence
      // theorem on the two oriented triangles for each side.
      const real_t va = tri_volume_term(emid, fc1, cc) +
                        tri_volume_term(emid, cc, fc2);
      real_t sign = dot(tri_area(emid, fc1, cc) + tri_area(emid, cc, fc2),
                        pb - pa) < 0
                        ? -1.0
                        : 1.0;
      dm.node_volume[std::size_t(a)] += sign * va;
      dm.node_volume[std::size_t(b)] -= sign * va;
    }

    // Element-boundary pieces of the dual volumes: for every face and every
    // vertex on it, the quad (vertex, mid(to next), face center, mid(to
    // prev)), oriented outward like the face. Internal faces appear twice
    // with opposite orientations and cancel in the *closure*, but their
    // volume terms belong to this element's subvolumes and must be added.
    for (std::size_t f = 0; f < faces.size(); ++f) {
      const LocalFace& lf = faces[f];
      for (int k = 0; k < lf.n; ++k) {
        const int kprev = (k + lf.n - 1) % lf.n;
        const int knext = (k + 1) % lf.n;
        const index_t a = e.nodes[std::size_t(lf.v[std::size_t(k)])];
        const Vec3& pa = m.points[std::size_t(a)];
        const Vec3 mnext =
            0.5 * (pa + m.points[std::size_t(e.nodes[std::size_t(lf.v[std::size_t(knext)])])]);
        const Vec3 mprev =
            0.5 * (pa + m.points[std::size_t(e.nodes[std::size_t(lf.v[std::size_t(kprev)])])]);
        const Vec3& fc = fcenters[f];
        dm.node_volume[std::size_t(a)] += tri_volume_term(pa, mnext, fc) +
                                          tri_volume_term(pa, fc, mprev);
      }
    }
  }

  // Boundary closure: same per-vertex quads, from the tagged boundary faces.
  for (const BoundaryFace& bf : m.boundary) {
    Vec3 fc{};
    for (int k = 0; k < bf.n; ++k) fc += m.points[std::size_t(bf.nodes[std::size_t(k)])];
    fc = fc / real_t(bf.n);
    for (int k = 0; k < bf.n; ++k) {
      const int kprev = (k + bf.n - 1) % bf.n;
      const int knext = (k + 1) % bf.n;
      const index_t a = bf.nodes[std::size_t(k)];
      const Vec3& pa = m.points[std::size_t(a)];
      const Vec3 mnext = 0.5 * (pa + m.points[std::size_t(bf.nodes[std::size_t(knext)])]);
      const Vec3 mprev = 0.5 * (pa + m.points[std::size_t(bf.nodes[std::size_t(kprev)])]);
      const Vec3 n = tri_area(pa, mnext, fc) + tri_area(pa, fc, mprev);
      dm.boundary_normal[std::size_t(a)][std::size_t(bf.tag)] += n;
    }
  }

  // Approximate wall distance: multi-source Dijkstra from wall nodes along
  // mesh edges. Adequate for the turbulence source terms of a benchmark.
  dm.wall_distance.assign(std::size_t(np),
                          std::numeric_limits<real_t>::infinity());
  using Item = std::pair<real_t, index_t>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  for (index_t v = 0; v < np; ++v) {
    const Vec3& wn = dm.boundary_normal[std::size_t(v)][std::size_t(BoundaryTag::Wall)];
    if (dot(wn, wn) > 0) {
      dm.wall_distance[std::size_t(v)] = 0.0;
      pq.push({0.0, v});
    }
  }
  // Build adjacency on the fly from the edge list.
  std::vector<std::vector<std::pair<index_t, real_t>>> adj(
      std::size_t(np), std::vector<std::pair<index_t, real_t>>{});
  for (const auto& [a, b] : dm.edges) {
    const real_t len = distance(m.points[std::size_t(a)], m.points[std::size_t(b)]);
    adj[std::size_t(a)].push_back({b, len});
    adj[std::size_t(b)].push_back({a, len});
  }
  while (!pq.empty()) {
    const auto [d, v] = pq.top();
    pq.pop();
    if (d > dm.wall_distance[std::size_t(v)]) continue;
    for (const auto& [u, len] : adj[std::size_t(v)]) {
      const real_t nd = d + len;
      if (nd < dm.wall_distance[std::size_t(u)]) {
        dm.wall_distance[std::size_t(u)] = nd;
        pq.push({nd, u});
      }
    }
  }
  // No wall at all (e.g. pure farfield test boxes): distance = large.
  for (real_t& d : dm.wall_distance)
    if (!std::isfinite(d)) d = 1e10;

  return dm;
}

std::vector<real_t> DualMetrics::edge_coupling(const UnstructuredMesh& m) const {
  std::vector<real_t> w(edges.size());
  for (std::size_t e = 0; e < edges.size(); ++e) {
    const auto [a, b] = edges[e];
    const real_t len =
        distance(m.points[std::size_t(a)], m.points[std::size_t(b)]);
    w[e] = len > 0 ? norm(edge_normal[e]) / len : 0.0;
  }
  return w;
}

real_t DualMetrics::max_anisotropy(const UnstructuredMesh& m) const {
  const std::vector<real_t> w = edge_coupling(m);
  std::vector<real_t> strongest(std::size_t(m.num_points()), 0.0);
  std::vector<real_t> weakest(std::size_t(m.num_points()),
                              std::numeric_limits<real_t>::infinity());
  for (std::size_t e = 0; e < edges.size(); ++e) {
    const auto [a, b] = edges[e];
    strongest[std::size_t(a)] = std::max(strongest[std::size_t(a)], w[e]);
    strongest[std::size_t(b)] = std::max(strongest[std::size_t(b)], w[e]);
    weakest[std::size_t(a)] = std::min(weakest[std::size_t(a)], w[e]);
    weakest[std::size_t(b)] = std::min(weakest[std::size_t(b)], w[e]);
  }
  real_t ratio = 1.0;
  for (index_t v = 0; v < m.num_points(); ++v) {
    if (weakest[std::size_t(v)] > 0 &&
        std::isfinite(weakest[std::size_t(v)]))
      ratio = std::max(ratio, strongest[std::size_t(v)] / weakest[std::size_t(v)]);
  }
  return ratio;
}

real_t metric_closure_error(const UnstructuredMesh& m, const DualMetrics& dm) {
  std::vector<geom::Vec3> residual(std::size_t(m.num_points()));
  for (std::size_t e = 0; e < dm.edges.size(); ++e) {
    const auto [a, b] = dm.edges[e];
    residual[std::size_t(a)] += dm.edge_normal[e];
    residual[std::size_t(b)] -= dm.edge_normal[e];
  }
  for (index_t v = 0; v < m.num_points(); ++v)
    for (const geom::Vec3& bn : dm.boundary_normal[std::size_t(v)])
      residual[std::size_t(v)] += bn;
  real_t err = 0;
  for (const geom::Vec3& r : residual) err = std::max(err, norm(r));
  return err;
}

}  // namespace columbia::mesh
