// Median-dual control-volume metrics for the node-centered solver.
//
// NSU3D stores the unknowns at grid points and integrates over median dual
// control volumes (paper Fig. 2): the dual cell of a node is bounded by
// facets connecting edge midpoints, face centroids and element centroids.
// This module assembles, per mesh:
//   - the unique edge list with one accumulated directed dual-face area per
//     edge (flux coefficient of the edge-based residual loop),
//   - the dual volume of every node,
//   - the boundary closure: per node and boundary tag, the outward wall
//     area vector (lumped from the adjacent boundary faces).
// Discrete conservation holds by construction: for every interior node the
// signed sum of incident edge normals plus boundary normals vanishes.
#pragma once

#include <span>
#include <vector>

#include "mesh/unstructured.hpp"

namespace columbia::mesh {

struct DualMetrics {
  /// Unique mesh edges (a < b).
  std::vector<std::pair<index_t, index_t>> edges;
  /// Directed dual-face area of each edge, oriented from a toward b.
  std::vector<geom::Vec3> edge_normal;
  /// Median-dual volume of each node.
  std::vector<real_t> node_volume;
  /// Outward boundary area vector per node, one slot per BoundaryTag.
  std::vector<std::array<geom::Vec3, 3>> boundary_normal;
  /// Distance from each node to the nearest Wall-tagged node (approximate,
  /// graph propagation). Used by the turbulence model.
  std::vector<real_t> wall_distance;

  index_t num_edges() const { return index_t(edges.size()); }

  /// Edge coupling weight |n|/|dx| — large across the thin direction of
  /// stretched cells; feeds line extraction and agglomeration priorities.
  std::vector<real_t> edge_coupling(const UnstructuredMesh& m) const;

  /// Max anisotropy ratio over nodes: strongest/weakest incident coupling.
  real_t max_anisotropy(const UnstructuredMesh& m) const;
};

/// Assembles the metrics. Cost: one pass over elements plus hashing edges.
DualMetrics compute_dual_metrics(const UnstructuredMesh& m);

/// Conservation check: returns the max over nodes of |closure residual| =
/// |sum of signed edge normals + sum of boundary normals| (should be ~0).
real_t metric_closure_error(const UnstructuredMesh& m, const DualMetrics& dm);

}  // namespace columbia::mesh
