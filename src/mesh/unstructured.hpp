// Unstructured hybrid mesh representation.
//
// NSU3D operates on mixed-element meshes: high-aspect-ratio prismatic (or
// hexahedral) layers near walls for the boundary layer, isotropic tetrahedra
// in the outer field, pyramids in transition regions (paper Sec. III). The
// solver itself is edge-based and node-centered; elements only matter for
// building the median-dual metrics (see dual_metrics.hpp).
#pragma once

#include <array>
#include <span>
#include <vector>

#include "geom/vec3.hpp"
#include "support/types.hpp"

namespace columbia::mesh {

enum class ElementType : std::uint8_t { Tet, Pyramid, Prism, Hex };

/// Number of vertices of each element type.
constexpr int element_num_nodes(ElementType t) {
  switch (t) {
    case ElementType::Tet: return 4;
    case ElementType::Pyramid: return 5;
    case ElementType::Prism: return 6;
    case ElementType::Hex: return 8;
  }
  return 0;
}

struct Element {
  ElementType type;
  std::array<index_t, 8> nodes;  // first element_num_nodes(type) valid

  int num_nodes() const { return element_num_nodes(type); }
};

/// One face of the canonical element: up to 4 local vertex indices,
/// ordered counter-clockwise seen from outside the element.
struct LocalFace {
  int n;
  std::array<int, 4> v;
};

/// Canonical face tables (outward orientation).
std::span<const LocalFace> element_faces(ElementType t);

/// Canonical edge tables (local vertex index pairs).
std::span<const std::array<int, 2>> element_edges(ElementType t);

/// Boundary condition classes used by the flow solvers.
enum class BoundaryTag : std::uint8_t { Wall, Farfield, Symmetry };

struct BoundaryFace {
  int n;                         // 3 or 4 vertices
  std::array<index_t, 4> nodes;  // global, outward orientation
  BoundaryTag tag;
};

struct UnstructuredMesh {
  std::vector<geom::Vec3> points;
  std::vector<Element> elements;
  std::vector<BoundaryFace> boundary;

  index_t num_points() const { return index_t(points.size()); }
  index_t num_elements() const { return index_t(elements.size()); }

  /// Counts per element type: [tet, pyramid, prism, hex].
  std::array<index_t, 4> element_counts() const;

  /// Geometric volume of an element (positive for valid orientation).
  real_t element_volume(index_t e) const;

  /// Sum of element volumes.
  real_t total_volume() const;
};

}  // namespace columbia::mesh
