#include "mesh/unstructured.hpp"

#include "support/assert.hpp"

namespace columbia::mesh {

namespace {

// Canonical vertex numbering:
//   Tet: 0-3 positively oriented (v1-v0, v2-v0, v3-v0 right-handed).
//   Pyramid: quad base 0,1,2,3 (CCW seen from the apex side is *inward*,
//            so the base face below lists it reversed), apex 4.
//   Prism: bottom triangle 0,1,2 and top triangle 3,4,5 (aligned).
//   Hex: bottom 0,1,2,3 (CCW seen from below = outward), top 4,5,6,7 above.

constexpr LocalFace kTetFaces[] = {
    {3, {0, 2, 1, -1}}, {3, {0, 1, 3, -1}}, {3, {1, 2, 3, -1}},
    {3, {2, 0, 3, -1}}};

constexpr LocalFace kPyramidFaces[] = {{4, {0, 3, 2, 1}},
                                       {3, {0, 1, 4, -1}},
                                       {3, {1, 2, 4, -1}},
                                       {3, {2, 3, 4, -1}},
                                       {3, {3, 0, 4, -1}}};

constexpr LocalFace kPrismFaces[] = {{3, {0, 2, 1, -1}},
                                     {3, {3, 4, 5, -1}},
                                     {4, {0, 1, 4, 3}},
                                     {4, {1, 2, 5, 4}},
                                     {4, {2, 0, 3, 5}}};

constexpr LocalFace kHexFaces[] = {{4, {0, 3, 2, 1}}, {4, {4, 5, 6, 7}},
                                   {4, {0, 1, 5, 4}}, {4, {1, 2, 6, 5}},
                                   {4, {2, 3, 7, 6}}, {4, {3, 0, 4, 7}}};

constexpr std::array<int, 2> kTetEdges[] = {{0, 1}, {0, 2}, {0, 3},
                                            {1, 2}, {1, 3}, {2, 3}};
constexpr std::array<int, 2> kPyramidEdges[] = {{0, 1}, {1, 2}, {2, 3}, {3, 0},
                                                {0, 4}, {1, 4}, {2, 4}, {3, 4}};
constexpr std::array<int, 2> kPrismEdges[] = {{0, 1}, {1, 2}, {2, 0},
                                              {3, 4}, {4, 5}, {5, 3},
                                              {0, 3}, {1, 4}, {2, 5}};
constexpr std::array<int, 2> kHexEdges[] = {{0, 1}, {1, 2}, {2, 3}, {3, 0},
                                            {4, 5}, {5, 6}, {6, 7}, {7, 4},
                                            {0, 4}, {1, 5}, {2, 6}, {3, 7}};

}  // namespace

std::span<const LocalFace> element_faces(ElementType t) {
  switch (t) {
    case ElementType::Tet: return kTetFaces;
    case ElementType::Pyramid: return kPyramidFaces;
    case ElementType::Prism: return kPrismFaces;
    case ElementType::Hex: return kHexFaces;
  }
  return {};
}

std::span<const std::array<int, 2>> element_edges(ElementType t) {
  switch (t) {
    case ElementType::Tet: return kTetEdges;
    case ElementType::Pyramid: return kPyramidEdges;
    case ElementType::Prism: return kPrismEdges;
    case ElementType::Hex: return kHexEdges;
  }
  return {};
}

std::array<index_t, 4> UnstructuredMesh::element_counts() const {
  std::array<index_t, 4> c{};
  for (const Element& e : elements) ++c[std::size_t(e.type)];
  return c;
}

real_t UnstructuredMesh::element_volume(index_t ei) const {
  // Divergence theorem over the element's faces with centroid fans:
  // V = (1/3) sum over boundary triangles of centroid . n_scaled / 2.
  const Element& e = elements[std::size_t(ei)];
  real_t v6 = 0;  // six times the volume
  for (const LocalFace& f : element_faces(e.type)) {
    const geom::Vec3& p0 = points[std::size_t(e.nodes[std::size_t(f.v[0])])];
    for (int k = 1; k + 1 < f.n; ++k) {
      const geom::Vec3& p1 =
          points[std::size_t(e.nodes[std::size_t(f.v[std::size_t(k)])])];
      const geom::Vec3& p2 =
          points[std::size_t(e.nodes[std::size_t(f.v[std::size_t(k) + 1])])];
      v6 += dot(p0, cross(p1, p2));
    }
  }
  return v6 / 6.0;
}

real_t UnstructuredMesh::total_volume() const {
  real_t v = 0;
  for (index_t e = 0; e < num_elements(); ++e) v += element_volume(e);
  return v;
}

}  // namespace columbia::mesh
