// Mesh and solution file I/O.
//
// The paper (Sec. VI) singles out I/O as the looming bottleneck: "the grid
// input file for the flow solver in the 72 million point case measures 35
// Gbytes". This module provides the two formats the repo uses:
//   - a compact binary format for UnstructuredMesh round-trips (the
//     solver's native "grid input file"),
//   - legacy-ASCII VTK writers for meshes and solutions so results can be
//     inspected in ParaView/VisIt.
#pragma once

#include <iosfwd>
#include <span>
#include <string>

#include "mesh/unstructured.hpp"

namespace columbia::mesh {

/// Writes the mesh in the repo's binary format. Returns bytes written.
std::size_t write_binary(std::ostream& out, const UnstructuredMesh& m);

/// Reads a mesh written by write_binary. Throws std::runtime_error on a
/// malformed stream.
UnstructuredMesh read_binary(std::istream& in);

/// Size in bytes write_binary would produce (for the paper's 35 GB / 72M
/// point bookkeeping; see tests).
std::size_t binary_size_bytes(const UnstructuredMesh& m);

/// Legacy-ASCII VTK unstructured grid, with optional per-point scalar
/// fields (parallel arrays of values, one per mesh point).
struct PointField {
  std::string name;
  std::span<const real_t> values;
};

void write_vtk(std::ostream& out, const UnstructuredMesh& m,
               std::span<const PointField> fields = {});

}  // namespace columbia::mesh
