#include "mesh/builders.hpp"

#include <cmath>
#include <numbers>

#include "mesh/dual_metrics.hpp"
#include "support/assert.hpp"

namespace columbia::mesh {

namespace {

constexpr real_t kPi = std::numbers::pi_v<real_t>;

/// Standard 6-tet decomposition of a hex around the 0-6 diagonal. Applied
/// uniformly to a structured grid it is conforming: shared quad faces are
/// cut along the same spatial diagonal on both sides.
constexpr int kHexToTets[6][4] = {{0, 1, 2, 6}, {0, 2, 3, 6}, {0, 3, 7, 6},
                                  {0, 7, 4, 6}, {0, 4, 5, 6}, {0, 5, 1, 6}};

Element make_tet(index_t a, index_t b, index_t c, index_t d) {
  Element e;
  e.type = ElementType::Tet;
  e.nodes = {a, b, c, d, -1, -1, -1, -1};
  return e;
}

Element make_hex(const std::array<index_t, 8>& n) {
  Element e;
  e.type = ElementType::Hex;
  e.nodes = n;
  return e;
}

Element make_prism(index_t a, index_t b, index_t c, index_t d, index_t e_,
                   index_t f) {
  Element e;
  e.type = ElementType::Prism;
  e.nodes = {a, b, c, d, e_, f, -1, -1};
  return e;
}

void add_boundary_quad(UnstructuredMesh& m, index_t a, index_t b, index_t c,
                       index_t d, BoundaryTag tag) {
  BoundaryFace f;
  f.n = 4;
  f.nodes = {a, b, c, d};
  f.tag = tag;
  m.boundary.push_back(f);
}

/// NACA-00xx half thickness (closed trailing edge).
real_t naca_t(real_t t, real_t x) {
  const real_t s = std::sqrt(x);
  return 5.0 * t *
         (0.2969 * s - 0.1260 * x - 0.3516 * x * x + 0.2843 * x * x * x -
          0.1036 * x * x * x * x);
}

}  // namespace

UnstructuredMesh make_box_mesh(int nx, int ny, int nz, const geom::Vec3& lo,
                               const geom::Vec3& hi, bool tetrahedralize,
                               BoundaryTag tag) {
  COLUMBIA_REQUIRE(nx >= 1 && ny >= 1 && nz >= 1);
  UnstructuredMesh m;
  const int px = nx + 1, py = ny + 1, pz = nz + 1;
  auto id = [&](int i, int j, int k) {
    return index_t((k * py + j) * px + i);
  };
  for (int k = 0; k < pz; ++k)
    for (int j = 0; j < py; ++j)
      for (int i = 0; i < px; ++i)
        m.points.push_back({lo.x + (hi.x - lo.x) * real_t(i) / real_t(nx),
                            lo.y + (hi.y - lo.y) * real_t(j) / real_t(ny),
                            lo.z + (hi.z - lo.z) * real_t(k) / real_t(nz)});

  for (int k = 0; k < nz; ++k)
    for (int j = 0; j < ny; ++j)
      for (int i = 0; i < nx; ++i) {
        const std::array<index_t, 8> n = {
            id(i, j, k),         id(i + 1, j, k),     id(i + 1, j + 1, k),
            id(i, j + 1, k),     id(i, j, k + 1),     id(i + 1, j, k + 1),
            id(i + 1, j + 1, k + 1), id(i, j + 1, k + 1)};
        if (tetrahedralize) {
          for (const auto& t : kHexToTets)
            m.elements.push_back(make_tet(n[std::size_t(t[0])], n[std::size_t(t[1])],
                                          n[std::size_t(t[2])], n[std::size_t(t[3])]));
        } else {
          m.elements.push_back(make_hex(n));
        }
      }

  // Boundary faces: for tet meshes emit the triangulated faces matching the
  // hex decomposition diagonals; for hex meshes emit quads. Outward order.
  auto add_face = [&](index_t a, index_t b, index_t c, index_t d) {
    if (!tetrahedralize) {
      add_boundary_quad(m, a, b, c, d, tag);
    } else {
      BoundaryFace f1{3, {a, b, c, -1}, tag}, f2{3, {a, c, d, -1}, tag};
      m.boundary.push_back(f1);
      m.boundary.push_back(f2);
    }
  };
  // The 6-tet split cuts each exterior quad through specific diagonals; we
  // must pick the triangulation that matches. Diagonals (in the local hex
  // frame): bottom 0-2, top 4-6, front 0-5, back 3-6, right 1-6, left 0-7.
  for (int j = 0; j < ny; ++j)
    for (int i = 0; i < nx; ++i) {
      // bottom (z=lo, outward -z): quad (0,3,2,1) diag 0-2.
      add_face(id(i, j, 0), id(i, j + 1, 0), id(i + 1, j + 1, 0),
               id(i + 1, j, 0));
      // top (z=hi, outward +z): quad (4,5,6,7) diag 4-6.
      add_face(id(i, j, nz), id(i + 1, j, nz), id(i + 1, j + 1, nz),
               id(i, j + 1, nz));
    }
  for (int k = 0; k < nz; ++k)
    for (int i = 0; i < nx; ++i) {
      // front (y=lo, outward -y): quad (0,1,5,4) diag 0-5.
      add_face(id(i, 0, k), id(i + 1, 0, k), id(i + 1, 0, k + 1),
               id(i, 0, k + 1));
      // back (y=hi, outward +y): quad (2,3,7,6) diag 3-6 => start at 3.
      add_face(id(i, ny, k), id(i, ny, k + 1), id(i + 1, ny, k + 1),
               id(i + 1, ny, k));
    }
  for (int k = 0; k < nz; ++k)
    for (int j = 0; j < ny; ++j) {
      // left (x=lo, outward -x): quad (3,0,4,7) diag 0-7 => start at 0.
      add_face(id(0, j, k), id(0, j, k + 1), id(0, j + 1, k + 1),
               id(0, j + 1, k));
      // right (x=hi, outward +x): quad (1,2,6,5) diag 1-6.
      add_face(id(nx, j, k), id(nx, j + 1, k), id(nx, j + 1, k + 1),
               id(nx, j, k + 1));
    }
  return m;
}

UnstructuredMesh make_wing_mesh(const WingMeshSpec& spec) {
  COLUMBIA_REQUIRE(spec.n_wrap >= 8 && spec.n_span >= 1 && spec.n_normal >= 3);
  COLUMBIA_REQUIRE(spec.wall_spacing > 0 &&
                   spec.wall_spacing < spec.farfield_radius);
  UnstructuredMesh m;

  const int ni = spec.n_wrap;           // periodic
  const int nj = spec.n_span + 1;       // point counts
  const int nk = spec.n_normal + 1;
  auto id = [&](int i, int j, int k) {
    return index_t((k * nj + j) * ni + (i % ni));
  };

  // Geometric blending parameter t_k in [0,1]: t_1 fixes the wall spacing.
  // Solve for ratio r in  t_k = (r^k - 1)/(r^K - 1)  such that
  // t_1 * farfield_offset ~= wall_spacing. Bisection on r.
  const int K = spec.n_normal;
  const real_t offset0 = spec.farfield_radius;  // rough blend magnitude
  auto t_of = [&](real_t r, int k) {
    return r == 1.0 ? real_t(k) / real_t(K)
                    : (std::pow(r, k) - 1.0) / (std::pow(r, K) - 1.0);
  };
  real_t rlo = 1.0001, rhi = 4.0;
  for (int it = 0; it < 80; ++it) {
    const real_t rm = 0.5 * (rlo + rhi);
    if (t_of(rm, 1) * offset0 > spec.wall_spacing)
      rlo = rm;
    else
      rhi = rm;
  }
  const real_t ratio = 0.5 * (rlo + rhi);

  // Section loop (x around chord, z thickness), and its far circle.
  for (int k = 0; k < nk; ++k) {
    const real_t t = t_of(ratio, k);
    for (int j = 0; j < nj; ++j) {
      const real_t y = (real_t(j) / real_t(spec.n_span) - 0.5) * spec.span;
      for (int i = 0; i < ni; ++i) {
        // Wrap clockwise (s decreasing with i) so the (i, j, k) frame is
        // right-handed and every element gets positive volume.
        const real_t s = 2 * kPi * real_t(ni - i) / real_t(ni);
        const real_t xbar = 0.5 * (1.0 + std::cos(s));
        real_t zb = naca_t(spec.thickness, xbar);
        if (s > kPi) zb = -zb;
        const geom::Vec3 foil{xbar * spec.chord, y, zb * spec.chord};
        const geom::Vec3 circle{
            (0.5 + spec.farfield_radius * std::cos(s)) * spec.chord, y,
            spec.farfield_radius * std::sin(s) * spec.chord};
        m.points.push_back(foil + t * (circle - foil));
      }
    }
  }

  const int k_hex = std::max(1, int(std::lround(spec.hex_layer_fraction *
                                                spec.n_normal)));
  for (int k = 0; k < spec.n_normal; ++k)
    for (int j = 0; j < spec.n_span; ++j)
      for (int i = 0; i < ni; ++i) {
        const std::array<index_t, 8> n = {
            id(i, j, k),         id(i + 1, j, k),
            id(i + 1, j + 1, k), id(i, j + 1, k),
            id(i, j, k + 1),     id(i + 1, j, k + 1),
            id(i + 1, j + 1, k + 1), id(i, j + 1, k + 1)};
        if (k < k_hex) {
          m.elements.push_back(make_hex(n));
        } else {
          // Prism split cutting the two j-faces along the 0-5 (= 3-6)
          // diagonal; k-faces and wrap faces stay quads so the interface
          // with the hex block below conforms.
          m.elements.push_back(
              make_prism(n[0], n[5], n[1], n[3], n[6], n[2]));
          m.elements.push_back(
              make_prism(n[0], n[4], n[5], n[3], n[7], n[6]));
        }
      }

  // Boundary: wall at k=0 (outward = -k side: into the wing), farfield at
  // k=K (outward = +k), symmetry at j ends. Prism-region j-faces are
  // triangles cut along the 0-5 diagonal.
  for (int j = 0; j < spec.n_span; ++j)
    for (int i = 0; i < ni; ++i) {
      // Wall: hex face (0,3,2,1) orientation (outward points below k=0).
      add_boundary_quad(m, id(i, j, 0), id(i, j + 1, 0), id(i + 1, j + 1, 0),
                        id(i + 1, j, 0), BoundaryTag::Wall);
      // Farfield: face (4,5,6,7) at k=K.
      add_boundary_quad(m, id(i, j, K), id(i + 1, j, K), id(i + 1, j + 1, K),
                        id(i, j + 1, K), BoundaryTag::Farfield);
    }
  for (int k = 0; k < spec.n_normal; ++k)
    for (int i = 0; i < ni; ++i) {
      const index_t a0 = id(i, 0, k), a1 = id(i + 1, 0, k),
                    a5 = id(i + 1, 0, k + 1), a4 = id(i, 0, k + 1);
      const index_t b2 = id(i + 1, spec.n_span, k), b3 = id(i, spec.n_span, k),
                    b7 = id(i, spec.n_span, k + 1),
                    b6 = id(i + 1, spec.n_span, k + 1);
      if (k < k_hex) {
        // front (j=0): hex face (0,1,5,4); back (j=end): face (2,3,7,6).
        add_boundary_quad(m, a0, a1, a5, a4, BoundaryTag::Symmetry);
        add_boundary_quad(m, b2, b3, b7, b6, BoundaryTag::Symmetry);
      } else {
        BoundaryFace f;
        f.tag = BoundaryTag::Symmetry;
        f.n = 3;
        f.nodes = {a0, a1, a5, -1};
        m.boundary.push_back(f);
        f.nodes = {a0, a5, a4, -1};
        m.boundary.push_back(f);
        // Back face triangulated along the 3-6 diagonal (same spatial
        // diagonal as the prisms' cut): triangles (2,3,6) and (3,7,6).
        f.nodes = {b2, b3, b6, -1};
        m.boundary.push_back(f);
        f.nodes = {b3, b7, b6, -1};
        m.boundary.push_back(f);
      }
    }
  return m;
}

MeshStats compute_stats(const UnstructuredMesh& m) {
  MeshStats st;
  st.points = m.num_points();
  st.elements_by_type = m.element_counts();
  st.total_volume = m.total_volume();
  const DualMetrics dm = compute_dual_metrics(m);
  st.edges = dm.num_edges();
  st.max_aspect_ratio = dm.max_anisotropy(m);
  return st;
}

}  // namespace columbia::mesh
