#include "mesh/reorder.hpp"

#include "graph/csr.hpp"
#include "graph/rcm.hpp"
#include "mesh/dual_metrics.hpp"
#include "support/assert.hpp"

namespace columbia::mesh {

ReorderResult reorder_for_cache(UnstructuredMesh& m) {
  // Node adjacency from the mesh edges.
  const DualMetrics dm = compute_dual_metrics(m);
  const graph::Csr g = graph::Csr::from_edges(m.num_points(), dm.edges);

  ReorderResult out;
  out.mean_edge_span_before = graph::mean_edge_span(g);
  out.perm = graph::reverse_cuthill_mckee(g);

  // inverse[old] = new.
  std::vector<index_t> inverse(std::size_t(m.num_points()));
  for (index_t i = 0; i < m.num_points(); ++i)
    inverse[std::size_t(out.perm[std::size_t(i)])] = i;

  // Apply to points, elements, boundary faces.
  std::vector<geom::Vec3> points(m.points.size());
  for (index_t i = 0; i < m.num_points(); ++i)
    points[std::size_t(i)] = m.points[std::size_t(out.perm[std::size_t(i)])];
  m.points = std::move(points);
  for (Element& e : m.elements)
    for (int k = 0; k < e.num_nodes(); ++k)
      e.nodes[std::size_t(k)] = inverse[std::size_t(e.nodes[std::size_t(k)])];
  for (BoundaryFace& f : m.boundary)
    for (int k = 0; k < f.n; ++k)
      f.nodes[std::size_t(k)] = inverse[std::size_t(f.nodes[std::size_t(k)])];

  out.mean_edge_span_after =
      graph::mean_edge_span(graph::permute(g, out.perm));
  return out;
}

}  // namespace columbia::mesh
