#include "mesh/io.hpp"

#include <cmath>
#include <cstring>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>

#include "support/assert.hpp"

namespace columbia::mesh {

namespace {

constexpr char kMagic[8] = {'C', 'O', 'L', 'M', 'E', 'S', 'H', '1'};

template <typename T>
void put(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T get(std::istream& in) {
  T v;
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!in) throw std::runtime_error("columbia mesh: truncated stream");
  return v;
}

}  // namespace

std::size_t binary_size_bytes(const UnstructuredMesh& m) {
  std::size_t bytes = sizeof(kMagic) + 3 * sizeof(std::uint64_t);
  bytes += std::size_t(m.num_points()) * 3 * sizeof(real_t);
  for (const Element& e : m.elements)
    bytes += 1 + std::size_t(e.num_nodes()) * sizeof(index_t);
  for (const BoundaryFace& f : m.boundary)
    bytes += 2 + std::size_t(f.n) * sizeof(index_t);
  return bytes;
}

std::size_t write_binary(std::ostream& out, const UnstructuredMesh& m) {
  out.write(kMagic, sizeof(kMagic));
  put<std::uint64_t>(out, std::uint64_t(m.num_points()));
  put<std::uint64_t>(out, std::uint64_t(m.num_elements()));
  put<std::uint64_t>(out, std::uint64_t(m.boundary.size()));
  for (const geom::Vec3& p : m.points) {
    put(out, p.x);
    put(out, p.y);
    put(out, p.z);
  }
  for (const Element& e : m.elements) {
    put<std::uint8_t>(out, std::uint8_t(e.type));
    for (int k = 0; k < e.num_nodes(); ++k) put(out, e.nodes[std::size_t(k)]);
  }
  for (const BoundaryFace& f : m.boundary) {
    put<std::uint8_t>(out, std::uint8_t(f.n));
    put<std::uint8_t>(out, std::uint8_t(f.tag));
    for (int k = 0; k < f.n; ++k) put(out, f.nodes[std::size_t(k)]);
  }
  return binary_size_bytes(m);
}

UnstructuredMesh read_binary(std::istream& in) {
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
    throw std::runtime_error("columbia mesh: bad magic");
  const auto np = get<std::uint64_t>(in);
  const auto ne = get<std::uint64_t>(in);
  const auto nb = get<std::uint64_t>(in);

  UnstructuredMesh m;
  m.points.resize(np);
  for (geom::Vec3& p : m.points) {
    p.x = get<real_t>(in);
    p.y = get<real_t>(in);
    p.z = get<real_t>(in);
  }
  m.elements.reserve(ne);
  for (std::uint64_t i = 0; i < ne; ++i) {
    Element e;
    const auto t = get<std::uint8_t>(in);
    if (t > std::uint8_t(ElementType::Hex))
      throw std::runtime_error("columbia mesh: bad element type");
    e.type = ElementType(t);
    e.nodes.fill(kInvalidIndex);
    for (int k = 0; k < e.num_nodes(); ++k) {
      e.nodes[std::size_t(k)] = get<index_t>(in);
      if (e.nodes[std::size_t(k)] < 0 ||
          std::uint64_t(e.nodes[std::size_t(k)]) >= np)
        throw std::runtime_error("columbia mesh: element index out of range");
    }
    m.elements.push_back(e);
  }
  m.boundary.reserve(nb);
  for (std::uint64_t i = 0; i < nb; ++i) {
    BoundaryFace f;
    f.n = get<std::uint8_t>(in);
    if (f.n != 3 && f.n != 4)
      throw std::runtime_error("columbia mesh: bad boundary face size");
    const auto tag = get<std::uint8_t>(in);
    if (tag > std::uint8_t(BoundaryTag::Symmetry))
      throw std::runtime_error("columbia mesh: bad boundary tag");
    f.tag = BoundaryTag(tag);
    f.nodes.fill(kInvalidIndex);
    for (int k = 0; k < f.n; ++k) {
      f.nodes[std::size_t(k)] = get<index_t>(in);
      if (f.nodes[std::size_t(k)] < 0 ||
          std::uint64_t(f.nodes[std::size_t(k)]) >= np)
        throw std::runtime_error("columbia mesh: face index out of range");
    }
    m.boundary.push_back(f);
  }
  return m;
}

void write_vtk(std::ostream& out, const UnstructuredMesh& m,
               std::span<const PointField> fields) {
  // Refuse non-finite data up front: a NaN deep inside a multi-GB ASCII
  // file is far harder to diagnose than an error naming the culprit, and
  // downstream viewers silently misrender it.
  for (std::size_t i = 0; i < m.points.size(); ++i) {
    const geom::Vec3& p = m.points[i];
    if (!std::isfinite(p.x) || !std::isfinite(p.y) || !std::isfinite(p.z))
      throw std::runtime_error("write_vtk: non-finite coordinate at point " +
                               std::to_string(i));
  }
  for (const PointField& f : fields)
    for (std::size_t i = 0; i < f.values.size(); ++i)
      if (!std::isfinite(f.values[i]))
        throw std::runtime_error("write_vtk: non-finite value in field '" +
                                 f.name + "' at point " + std::to_string(i));
  out << "# vtk DataFile Version 3.0\n"
      << "columbia-repro mesh\nASCII\nDATASET UNSTRUCTURED_GRID\n";
  out << "POINTS " << m.num_points() << " double\n";
  for (const geom::Vec3& p : m.points)
    out << p.x << ' ' << p.y << ' ' << p.z << '\n';

  std::size_t list_len = 0;
  for (const Element& e : m.elements)
    list_len += 1 + std::size_t(e.num_nodes());
  out << "CELLS " << m.num_elements() << ' ' << list_len << '\n';
  for (const Element& e : m.elements) {
    out << e.num_nodes();
    for (int k = 0; k < e.num_nodes(); ++k)
      out << ' ' << e.nodes[std::size_t(k)];
    out << '\n';
  }
  out << "CELL_TYPES " << m.num_elements() << '\n';
  for (const Element& e : m.elements) {
    // VTK ids: tet 10, pyramid 14, wedge 13, hex 12.
    switch (e.type) {
      case ElementType::Tet: out << 10 << '\n'; break;
      case ElementType::Pyramid: out << 14 << '\n'; break;
      case ElementType::Prism: out << 13 << '\n'; break;
      case ElementType::Hex: out << 12 << '\n'; break;
    }
  }
  if (!fields.empty()) {
    out << "POINT_DATA " << m.num_points() << '\n';
    for (const PointField& f : fields) {
      COLUMBIA_REQUIRE(index_t(f.values.size()) == m.num_points());
      out << "SCALARS " << f.name << " double 1\nLOOKUP_TABLE default\n";
      for (real_t v : f.values) out << v << '\n';
    }
  }
}

}  // namespace columbia::mesh
