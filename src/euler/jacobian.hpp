// Analytic Euler flux Jacobian dF/dU.
//
// The point- and line-implicit smoothers of NSU3D assemble dense 6x6 blocks
// per grid point (paper Sec. III); the 5x5 mean-flow part comes from this
// Jacobian, the sixth (turbulence) row/column from the SA linearization.
#pragma once

#include "euler/state.hpp"
#include "linalg/block.hpp"

namespace columbia::euler {

/// dF(U, n)/dU for the unit normal n. Standard closed form for a perfect
/// gas (see e.g. Hirsch vol. 2); conservative variables ordering
/// [rho, rho u, rho v, rho w, rho E].
inline linalg::BlockMat<5> flux_jacobian(const Prim& w, const geom::Vec3& n) {
  const real_t g = kGamma;
  const real_t u = w.vel.x, v = w.vel.y, wz = w.vel.z;
  const real_t q2 = u * u + v * v + wz * wz;
  const real_t un = dot(w.vel, n);
  const real_t h = g / (g - 1) * w.p / w.rho + 0.5 * q2;  // total enthalpy
  const real_t gm1 = g - 1;

  linalg::BlockMat<5> a;
  // Row 0: continuity.
  a(0, 0) = 0;
  a(0, 1) = n.x;
  a(0, 2) = n.y;
  a(0, 3) = n.z;
  a(0, 4) = 0;
  // Rows 1-3: momentum.
  const real_t vel[3] = {u, v, wz};
  const real_t nn[3] = {n.x, n.y, n.z};
  for (int i = 0; i < 3; ++i) {
    a(1 + i, 0) = 0.5 * gm1 * q2 * nn[i] - vel[i] * un;
    for (int j = 0; j < 3; ++j)
      a(1 + i, 1 + j) = vel[i] * nn[j] - gm1 * vel[j] * nn[i] +
                        (i == j ? un : 0.0);
    a(1 + i, 4) = gm1 * nn[i];
  }
  // Row 4: energy.
  a(4, 0) = (0.5 * gm1 * q2 - h) * un;
  for (int j = 0; j < 3; ++j)
    a(4, 1 + j) = h * nn[j] - gm1 * vel[j] * un;
  a(4, 4) = g * un;
  return a;
}

}  // namespace columbia::euler
