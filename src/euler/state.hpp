// Perfect-gas state vectors and conversions.
//
// Both solvers carry the compressible-flow unknowns the paper describes:
// Cart3D solves five equations per cell (density, momentum, energy);
// NSU3D adds a sixth coupled unknown, the Spalart-Allmaras turbulence
// working variable (paper Secs. III, V).
#pragma once

#include <array>
#include <cmath>

#include "geom/vec3.hpp"
#include "support/assert.hpp"
#include "support/types.hpp"

namespace columbia::euler {

inline constexpr real_t kGamma = 1.4;

/// Conservative state: [rho, rho*u, rho*v, rho*w, rho*E].
using Cons = std::array<real_t, 5>;

/// Primitive state.
struct Prim {
  real_t rho;
  geom::Vec3 vel;
  real_t p;

  real_t sound_speed() const { return std::sqrt(kGamma * p / rho); }
  real_t mach() const { return norm(vel) / sound_speed(); }
};

inline Cons to_conservative(const Prim& w) {
  const real_t ke = 0.5 * w.rho * dot(w.vel, w.vel);
  return {w.rho, w.rho * w.vel.x, w.rho * w.vel.y, w.rho * w.vel.z,
          w.p / (kGamma - 1) + ke};
}

inline Prim to_primitive(const Cons& u) {
  COLUMBIA_ASSERT(u[0] > 0);
  const real_t inv_rho = 1.0 / u[0];
  const geom::Vec3 vel{u[1] * inv_rho, u[2] * inv_rho, u[3] * inv_rho};
  const real_t p = (kGamma - 1) * (u[4] - 0.5 * u[0] * dot(vel, vel));
  return {u[0], vel, p};
}

/// True when the state is physically admissible.
inline bool is_valid(const Cons& u) {
  if (!(u[0] > 0) || !std::isfinite(u[0])) return false;
  for (real_t x : u)
    if (!std::isfinite(x)) return false;
  return to_primitive(u).p > 0;
}

/// Freestream conditions from the wind-space parameters of the paper's
/// database fills: Mach number, angle of attack, sideslip (Sec. IV).
/// Nondimensionalization: rho_inf = 1, a_inf = 1 (so |v| = Mach).
struct FlowConditions {
  real_t mach = 0.75;
  real_t alpha_deg = 0.0;  // angle of attack (pitch plane, x-z)
  real_t beta_deg = 0.0;   // sideslip (x-y)
  real_t reynolds = 3.0e6; // used by the viscous/turbulent terms in NSU3D

  Prim freestream() const {
    const real_t a = alpha_deg * real_t(3.14159265358979323846 / 180.0);
    const real_t b = beta_deg * real_t(3.14159265358979323846 / 180.0);
    const geom::Vec3 dir{std::cos(a) * std::cos(b), -std::sin(b),
                         std::sin(a) * std::cos(b)};
    // rho = 1, a_inf = 1 => p = 1/gamma.
    return {1.0, mach * dir, 1.0 / kGamma};
  }
};

inline Cons operator+(const Cons& a, const Cons& b) {
  Cons r;
  for (int i = 0; i < 5; ++i) r[std::size_t(i)] = a[std::size_t(i)] + b[std::size_t(i)];
  return r;
}
inline Cons operator-(const Cons& a, const Cons& b) {
  Cons r;
  for (int i = 0; i < 5; ++i) r[std::size_t(i)] = a[std::size_t(i)] - b[std::size_t(i)];
  return r;
}
inline Cons operator*(real_t s, const Cons& a) {
  Cons r;
  for (int i = 0; i < 5; ++i) r[std::size_t(i)] = s * a[std::size_t(i)];
  return r;
}

}  // namespace columbia::euler
