#include "euler/flux.hpp"

namespace columbia::euler {

using geom::Vec3;

Cons numerical_flux(const Prim& l, const Prim& r, const Vec3& n,
                    FluxScheme scheme) {
  switch (scheme) {
    case FluxScheme::Roe: return roe_flux(l, r, n);
    case FluxScheme::VanLeer: return van_leer_flux(l, r, n);
    case FluxScheme::Rusanov: return rusanov_flux(l, r, n);
  }
  return {};
}

Cons farfield_flux(const Prim& interior, const Prim& freestream,
                   const Vec3& unit_n, FluxScheme scheme) {
  // Upwind flux between the interior state and the freestream handles both
  // characteristic directions automatically.
  return numerical_flux(interior, freestream, unit_n, scheme);
}

}  // namespace columbia::euler
