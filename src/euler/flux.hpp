// Inviscid numerical fluxes.
//
// Cart3D uses a second-order cell-centered upwind scheme; NSU3D uses a
// second-order node-centered upwind-biased scheme (paper Secs. III, V).
// Both reduce at a face to a Riemann flux between reconstructed left and
// right states. We provide Roe's approximate Riemann solver (with an
// entropy fix), van Leer flux-vector splitting, and Rusanov (local
// Lax-Friedrichs) as a robust fallback.
//
// The Riemann solvers are defined inline: the SoA kernel layer calls them
// from the per-edge/per-face hot loops, where the call overhead and lost
// register allocation of an out-of-line call are measurable. The inline
// bodies are the single definition — the out-of-line dispatch in flux.cpp
// wraps these same functions, so both entry points produce bit-identical
// values.
#pragma once

#include <algorithm>
#include <cmath>

#include "euler/state.hpp"

namespace columbia::euler {

enum class FluxScheme { Roe, VanLeer, Rusanov };

/// Physical (analytic) flux through unit normal n.
inline Cons physical_flux(const Prim& w, const geom::Vec3& n) {
  const real_t un = dot(w.vel, n);
  const real_t rho_un = w.rho * un;
  const real_t e = w.p / (kGamma - 1) + 0.5 * w.rho * dot(w.vel, w.vel);
  return {rho_un, rho_un * w.vel.x + w.p * n.x, rho_un * w.vel.y + w.p * n.y,
          rho_un * w.vel.z + w.p * n.z, un * (e + w.p)};
}

/// Spectral radius |u.n| + a: the wave-speed bound used in time steps.
inline real_t spectral_radius(const Prim& w, const geom::Vec3& unit_n) {
  return std::abs(dot(w.vel, unit_n)) + w.sound_speed();
}

namespace detail {

inline real_t total_enthalpy(const Prim& w) {
  return kGamma / (kGamma - 1) * w.p / w.rho + 0.5 * dot(w.vel, w.vel);
}

}  // namespace detail

inline Cons roe_flux(const Prim& l, const Prim& r, const geom::Vec3& n) {
  using geom::Vec3;
  // Roe average.
  const real_t sl = std::sqrt(l.rho), sr = std::sqrt(r.rho);
  const real_t inv = 1.0 / (sl + sr);
  const Vec3 vel = (sl * l.vel + sr * r.vel) * inv;
  const real_t h =
      (sl * detail::total_enthalpy(l) + sr * detail::total_enthalpy(r)) * inv;
  const real_t q2 = dot(vel, vel);
  const real_t a2 = (kGamma - 1) * (h - 0.5 * q2);
  const real_t a = std::sqrt(std::max<real_t>(a2, 1e-12));
  const real_t un = dot(vel, n);

  // Wave strengths.
  const real_t drho = r.rho - l.rho;
  const real_t dp = r.p - l.p;
  const Vec3 dvel = r.vel - l.vel;
  const real_t dun = dot(dvel, n);

  real_t lam1 = std::abs(un - a);
  real_t lam2 = std::abs(un);
  real_t lam3 = std::abs(un + a);
  // Harten entropy fix on the nonlinear waves.
  const real_t eps = 0.1 * a;
  auto fix = [&](real_t lam) {
    return lam < eps ? 0.5 * (lam * lam / eps + eps) : lam;
  };
  lam1 = fix(lam1);
  lam3 = fix(lam3);

  // Wave strengths use the Roe-averaged density rho_roe = sqrt(rho_l rho_r).
  const real_t rho_roe = sl * sr;
  const real_t w2 = lam2 * (drho - dp / a2);
  const real_t w1r = lam1 * (dp - rho_roe * a * dun) / (2 * a2);
  const real_t w3r = lam3 * (dp + rho_roe * a * dun) / (2 * a2);

  // |A| dU assembled from the characteristic decomposition.
  Cons diss{};
  // Acoustic waves.
  const Vec3 u_minus = vel - a * n;
  const Vec3 u_plus = vel + a * n;
  diss[0] += w1r + w3r;
  diss[1] += w1r * u_minus.x + w3r * u_plus.x;
  diss[2] += w1r * u_minus.y + w3r * u_plus.y;
  diss[3] += w1r * u_minus.z + w3r * u_plus.z;
  diss[4] += w1r * (h - a * un) + w3r * (h + a * un);
  // Entropy wave.
  diss[0] += w2;
  diss[1] += w2 * vel.x;
  diss[2] += w2 * vel.y;
  diss[3] += w2 * vel.z;
  diss[4] += w2 * 0.5 * q2;
  // Shear waves.
  const Vec3 dvt = dvel - dun * n;
  diss[1] += lam2 * rho_roe * dvt.x;
  diss[2] += lam2 * rho_roe * dvt.y;
  diss[3] += lam2 * rho_roe * dvt.z;
  diss[4] += lam2 * rho_roe * (dot(vel, dvel) - un * dun);

  const Cons fl = physical_flux(l, n);
  const Cons fr = physical_flux(r, n);
  Cons f;
  for (int i = 0; i < 5; ++i)
    f[std::size_t(i)] =
        0.5 * (fl[std::size_t(i)] + fr[std::size_t(i)]) - 0.5 * diss[std::size_t(i)];
  return f;
}

inline Cons van_leer_flux(const Prim& l, const Prim& r, const geom::Vec3& n) {
  auto split = [&](const Prim& w, real_t sign) {
    const real_t a = w.sound_speed();
    const real_t un = dot(w.vel, n);
    const real_t m = un / a;
    Cons f{};
    // Supersonic limits: F+ carries the full flux when m >= 1 and nothing
    // when m <= -1; F- is the mirror image.
    if (sign > 0) {
      if (m >= 1.0) return physical_flux(w, n);
      if (m <= -1.0) return Cons{};
    } else {
      if (m <= -1.0) return physical_flux(w, n);
      if (m >= 1.0) return Cons{};
    }
    // Subsonic split flux.
    const real_t fmass = sign * 0.25 * w.rho * a * (m + sign) * (m + sign);
    const real_t common = (-un + sign * 2 * a) / kGamma;
    f[0] = fmass;
    f[1] = fmass * (w.vel.x + n.x * common);
    f[2] = fmass * (w.vel.y + n.y * common);
    f[3] = fmass * (w.vel.z + n.z * common);
    const real_t term = ((kGamma - 1) * un + sign * 2 * a);
    f[4] = fmass * (0.5 * (dot(w.vel, w.vel) - un * un) +
                    term * term / (2 * (kGamma * kGamma - 1)));
    return f;
  };
  const Cons fp = split(l, +1.0);
  const Cons fm = split(r, -1.0);
  return fp + fm;
}

inline Cons rusanov_flux(const Prim& l, const Prim& r, const geom::Vec3& n) {
  const real_t s = std::max(spectral_radius(l, n), spectral_radius(r, n));
  const Cons ul = to_conservative(l), ur = to_conservative(r);
  const Cons fl = physical_flux(l, n), fr = physical_flux(r, n);
  Cons f;
  for (int i = 0; i < 5; ++i)
    f[std::size_t(i)] = 0.5 * (fl[std::size_t(i)] + fr[std::size_t(i)]) -
                        0.5 * s * (ur[std::size_t(i)] - ul[std::size_t(i)]);
  return f;
}

/// Numerical flux across a face with *unit* normal n and the given left and
/// right states. All schemes are consistent (F(w,w,n) = physical_flux) and
/// conservative (F(l,r,n) = -F(r,l,-n)).
Cons numerical_flux(const Prim& left, const Prim& right, const geom::Vec3& n,
                    FluxScheme scheme);

/// Flux through a solid wall (pressure only; exact for slip walls).
inline Cons wall_flux(const Prim& w, const geom::Vec3& n) {
  // Slip wall: only the pressure term survives (u.n = 0 enforced weakly).
  return {0, w.p * n.x, w.p * n.y, w.p * n.z, 0};
}

/// Characteristic farfield flux: switches between inflow/outflow using the
/// freestream state (1D Riemann invariants along the boundary normal).
Cons farfield_flux(const Prim& interior, const Prim& freestream,
                   const geom::Vec3& unit_n, FluxScheme scheme);

}  // namespace columbia::euler
