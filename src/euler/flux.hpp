// Inviscid numerical fluxes.
//
// Cart3D uses a second-order cell-centered upwind scheme; NSU3D uses a
// second-order node-centered upwind-biased scheme (paper Secs. III, V).
// Both reduce at a face to a Riemann flux between reconstructed left and
// right states. We provide Roe's approximate Riemann solver (with an
// entropy fix), van Leer flux-vector splitting, and Rusanov (local
// Lax-Friedrichs) as a robust fallback.
#pragma once

#include "euler/state.hpp"

namespace columbia::euler {

enum class FluxScheme { Roe, VanLeer, Rusanov };

/// Physical (analytic) flux through unit normal n.
Cons physical_flux(const Prim& w, const geom::Vec3& n);

/// Numerical flux across a face with *unit* normal n and the given left and
/// right states. All schemes are consistent (F(w,w,n) = physical_flux) and
/// conservative (F(l,r,n) = -F(r,l,-n)).
Cons numerical_flux(const Prim& left, const Prim& right, const geom::Vec3& n,
                    FluxScheme scheme);

/// Spectral radius |u.n| + a: the wave-speed bound used in time steps.
real_t spectral_radius(const Prim& w, const geom::Vec3& unit_n);

/// Flux through a solid wall (pressure only; exact for slip walls).
Cons wall_flux(const Prim& w, const geom::Vec3& n);

/// Characteristic farfield flux: switches between inflow/outflow using the
/// freestream state (1D Riemann invariants along the boundary normal).
Cons farfield_flux(const Prim& interior, const Prim& freestream,
                   const geom::Vec3& unit_n, FluxScheme scheme);

}  // namespace columbia::euler
