#include "support/durable.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace columbia::support {

bool durable_write_file(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) return false;
    os.write(content.data(), std::streamsize(content.size()));
    os.flush();
    if (!os) {
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

bool durable_append_line(const std::string& path, const std::string& line) {
  std::ostringstream content;
  {
    std::ifstream is(path, std::ios::binary);
    if (is) content << is.rdbuf();
  }
  content << line;
  if (line.empty() || line.back() != '\n') content << '\n';
  return durable_write_file(path, content.str());
}

}  // namespace columbia::support
