#include "support/durable.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace columbia::support {

namespace {

/// fsync the directory holding `path` so the rename itself is durable
/// (without this the new name can vanish in a crash even though the data
/// blocks survived). Best-effort: some filesystems reject directory
/// fsync; the file-data fsync already happened.
void sync_parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.empty() ? "/" : dir.c_str(),
                        O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

bool durable_write_file(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  const char* p = content.data();
  std::size_t left = content.size();
  while (left > 0) {
    const ssize_t w = ::write(fd, p, left);
    if (w < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      std::remove(tmp.c_str());
      return false;
    }
    p += std::size_t(w);
    left -= std::size_t(w);
  }
  // The staging file's data must be on disk BEFORE the rename publishes
  // it; otherwise a crash can leave the new name pointing at garbage —
  // exactly the torn artifact this helper exists to rule out.
  const bool synced = ::fsync(fd) == 0;
  if (::close(fd) != 0 || !synced) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  sync_parent_dir(path);
  return true;
}

bool durable_append_line(const std::string& path, const std::string& line) {
  std::ostringstream content;
  {
    std::ifstream is(path, std::ios::binary);
    if (is) content << is.rdbuf();
  }
  content << line;
  if (line.empty() || line.back() != '\n') content << '\n';
  return durable_write_file(path, content.str());
}

}  // namespace columbia::support
