// Console table formatting for benchmark harnesses.
//
// Every figure-reproduction binary prints its series through this class so
// the output is uniform and easy to diff against EXPERIMENTS.md.
#pragma once

#include <string>
#include <vector>

namespace columbia {

/// Fixed-column ASCII table. Columns are sized to the widest cell.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends one row; pads or truncates to the header width.
  void add_row(std::vector<std::string> cells);

  /// Renders the table with a rule under the header.
  std::string to_string() const;

  /// Convenience: renders and writes to stdout.
  void print() const;

  /// Formats a double with `digits` significant decimals.
  static std::string num(double v, int digits = 3);

  /// Read access for exporters (the bench JSON reporter serializes the
  /// same tables the console prints).
  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace columbia
