#include "support/build_info.hpp"

#include <thread>

// The definitions come from src/support/CMakeLists.txt (configure-time
// `git rev-parse`); the fallbacks keep non-git tarball builds working.
#ifndef COLUMBIA_GIT_SHA
#define COLUMBIA_GIT_SHA "unknown"
#endif
#ifndef COLUMBIA_BUILD_TYPE
#define COLUMBIA_BUILD_TYPE "unknown"
#endif
#ifndef COLUMBIA_OBS_ENABLED
#define COLUMBIA_OBS_ENABLED 1
#endif

namespace columbia {

const BuildInfo& build_info() {
  static const BuildInfo info{COLUMBIA_GIT_SHA, COLUMBIA_BUILD_TYPE,
                              COLUMBIA_OBS_ENABLED != 0};
  return info;
}

unsigned hardware_threads() { return std::thread::hardware_concurrency(); }

}  // namespace columbia
