// Crash-durable file writes: stage the full new contents in `path + ".tmp"`
// and std::rename it over the destination — the same discipline as
// resil::checkpoint — so an aborted run leaves either the previous complete
// file or the new complete file, never a truncated artifact for the perf
// gate or report ingest to choke on.
#pragma once

#include <string>

namespace columbia::support {

/// Atomically replaces `path` with `content`. False (and no change to any
/// existing file at `path`) if the staging file cannot be written or the
/// rename fails.
bool durable_write_file(const std::string& path, const std::string& content);

/// Atomically appends `line` (a trailing '\n' is added when missing) to the
/// file at `path`, creating it when absent. Implemented as read-modify-
/// rewrite through durable_write_file: intended for modest append-style
/// artifacts (JSONL reports), not high-rate logs.
bool durable_append_line(const std::string& path, const std::string& line);

}  // namespace columbia::support
