// Crash-durable file writes: stage the full new contents in `path + ".tmp"`,
// fsync the staged data, rename it over the destination, and fsync the
// parent directory — so an aborted run (or a power cut, which a bare
// tmp+rename does NOT survive) leaves either the previous complete file or
// the new complete file, never a truncated artifact. resil::checkpoint and
// the run manifest write through these helpers; recovery-from-checkpoint
// is only as trustworthy as this discipline.
#pragma once

#include <string>

namespace columbia::support {

/// Atomically replaces `path` with `content`. False (and no change to any
/// existing file at `path`) if the staging file cannot be written or the
/// rename fails.
bool durable_write_file(const std::string& path, const std::string& content);

/// Atomically appends `line` (a trailing '\n' is added when missing) to the
/// file at `path`, creating it when absent. Implemented as read-modify-
/// rewrite through durable_write_file: intended for modest append-style
/// artifacts (JSONL reports), not high-rate logs.
bool durable_append_line(const std::string& path, const std::string& line);

}  // namespace columbia::support
