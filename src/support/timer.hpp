// Wall-clock timer for benchmark harnesses and the span recorder.
#pragma once

#include <chrono>
#include <cstdint>

namespace columbia {

class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Monotonic tick, in nanoseconds since an arbitrary process-stable
  /// epoch. The raw unit consumed by the obs span recorder; subtract two
  /// ticks for an interval.
  static std::uint64_t now_ns() {
    return std::uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                             clock::now().time_since_epoch())
                             .count());
  }

  /// Nanoseconds elapsed since construction or the last reset().
  std::uint64_t elapsed_ns() const {
    return std::uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                             clock::now() - start_)
                             .count());
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace columbia
