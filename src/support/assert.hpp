// Lightweight contract checks used across the library.
//
// COLUMBIA_REQUIRE is always on (API preconditions, cheap);
// COLUMBIA_ASSERT compiles out in release internal hot loops unless
// COLUMBIA_CHECKED is defined.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace columbia::detail {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  std::fprintf(stderr, "%s failed: %s at %s:%d\n", kind, expr, file, line);
  std::abort();
}

}  // namespace columbia::detail

#define COLUMBIA_REQUIRE(expr)                                              \
  do {                                                                      \
    if (!(expr))                                                            \
      ::columbia::detail::contract_failure("precondition", #expr, __FILE__, \
                                           __LINE__);                       \
  } while (0)

#if defined(COLUMBIA_CHECKED) || !defined(NDEBUG)
#define COLUMBIA_ASSERT(expr)                                             \
  do {                                                                    \
    if (!(expr))                                                          \
      ::columbia::detail::contract_failure("assertion", #expr, __FILE__, \
                                           __LINE__);                     \
  } while (0)
#else
#define COLUMBIA_ASSERT(expr) ((void)0)
#endif
