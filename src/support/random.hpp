// Deterministic, fast pseudo-random generation (SplitMix64 / xoshiro256**).
//
// All stochastic pieces of the library (mesh perturbation, workload
// generation, partitioner tie-breaking) draw from these generators so that
// every test and benchmark is reproducible bit-for-bit across runs.
#pragma once

#include <cstdint>

namespace columbia {

/// SplitMix64: used to seed larger-state generators and for cheap hashing.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: main generator. Not cryptographic; plenty for simulation.
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() { return double(next() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n).
  std::uint64_t below(std::uint64_t n) { return next() % n; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace columbia
