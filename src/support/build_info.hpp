// Build/run provenance stamped into every machine-readable report so a
// baseline JSON and a fresh measurement can be compared meaningfully: a
// regression verdict is only as good as the knowledge that both runs came
// from comparable builds and thread configurations.
#pragma once

#include <string>

namespace columbia {

struct BuildInfo {
  std::string git_sha;     // short SHA at configure time ("unknown" outside git)
  std::string build_type;  // CMAKE_BUILD_TYPE ("Release", "RelWithDebInfo", ...)
  bool obs_compiled = false;  // COLUMBIA_OBS layer compiled in
};

/// Provenance of this binary, captured at CMake configure time.
const BuildInfo& build_info();

/// Hardware threads visible to this process (0 when unknown).
unsigned hardware_threads();

}  // namespace columbia
