// Common scalar and index typedefs.
#pragma once

#include <cstdint>

namespace columbia {

/// Index type for mesh entities (vertices, edges, cells). 32-bit indices
/// keep the CSR structures compact; meshes in this repo stay far below 2^31.
using index_t = std::int32_t;

/// Floating-point type for all flow-state arithmetic.
using real_t = double;

inline constexpr index_t kInvalidIndex = -1;

}  // namespace columbia
