// Reverse Cuthill-McKee ordering for cache locality.
//
// NSU3D reorders grid data "for cache locality using a reverse Cuthill-McKee
// type algorithm" on cache-based scalar processors such as Columbia's
// Itanium2 (paper Sec. III). The ordering narrows the adjacency bandwidth so
// that edge-loop gather/scatter traffic stays in cache.
#pragma once

#include <vector>

#include "graph/csr.hpp"

namespace columbia::graph {

/// Returns a permutation `perm` such that new vertex i is old vertex
/// perm[i]. Handles disconnected graphs by restarting from the
/// minimum-degree unvisited vertex of each component.
std::vector<index_t> reverse_cuthill_mckee(const Csr& g);

}  // namespace columbia::graph
