// Compressed-sparse-row adjacency structure.
//
// Every graph algorithm in the library (partitioning, agglomeration, RCM,
// coloring, line extraction) operates on this one structure. Vertex and
// edge weights are optional; an empty weight vector means "all ones".
#pragma once

#include <span>
#include <utility>
#include <vector>

#include "support/types.hpp"

namespace columbia::graph {

/// Undirected graph in CSR form. Each undirected edge is stored twice
/// (once per endpoint). Weights, when present, are parallel arrays.
class Csr {
 public:
  Csr() = default;

  /// Builds from an undirected edge list over `num_vertices` vertices.
  /// Self-loops are dropped; duplicate edges are kept (callers dedupe).
  static Csr from_edges(index_t num_vertices,
                        std::span<const std::pair<index_t, index_t>> edges);

  /// Same, with one weight per input edge (applied to both directions).
  static Csr from_weighted_edges(
      index_t num_vertices,
      std::span<const std::pair<index_t, index_t>> edges,
      std::span<const real_t> edge_weights);

  index_t num_vertices() const { return index_t(xadj_.size()) - 1; }
  index_t num_directed_edges() const { return index_t(adjncy_.size()); }

  /// Neighbors of vertex v.
  std::span<const index_t> neighbors(index_t v) const {
    return {adjncy_.data() + xadj_[std::size_t(v)],
            adjncy_.data() + xadj_[std::size_t(v) + 1]};
  }

  /// Weights of the edges leaving v (parallel to neighbors(v)).
  /// Empty when the graph is unweighted.
  std::span<const real_t> edge_weights(index_t v) const {
    if (eweights_.empty()) return {};
    return {eweights_.data() + xadj_[std::size_t(v)],
            eweights_.data() + xadj_[std::size_t(v) + 1]};
  }

  index_t degree(index_t v) const {
    return xadj_[std::size_t(v) + 1] - xadj_[std::size_t(v)];
  }

  bool has_vertex_weights() const { return !vweights_.empty(); }
  bool has_edge_weights() const { return !eweights_.empty(); }

  real_t vertex_weight(index_t v) const {
    return vweights_.empty() ? 1.0 : vweights_[std::size_t(v)];
  }
  void set_vertex_weights(std::vector<real_t> w) { vweights_ = std::move(w); }
  std::span<const real_t> vertex_weights() const { return vweights_; }

  real_t total_vertex_weight() const;

  /// Maximum vertex degree (paper quotes 18 for the fine-grid communication
  /// graph and 19 for the inter-grid graph).
  index_t max_degree() const;

  const std::vector<index_t>& xadj() const { return xadj_; }
  const std::vector<index_t>& adjncy() const { return adjncy_; }

  /// Assembles from already-built CSR arrays (used by graph algorithms that
  /// construct coarse graphs directly).
  static Csr from_csr_arrays(std::vector<index_t> xadj,
                             std::vector<index_t> adjncy,
                             std::vector<real_t> edge_weights = {});

 private:
  std::vector<index_t> xadj_{0};
  std::vector<index_t> adjncy_;
  std::vector<real_t> eweights_;  // per directed edge, optional
  std::vector<real_t> vweights_;  // per vertex, optional
};

/// Permutes a graph: new vertex `i` is old vertex `perm[i]`.
Csr permute(const Csr& g, std::span<const index_t> perm);

/// Mean inverse bandwidth proxy: average |perm-index distance| over edges.
/// Lower is better cache locality; RCM should reduce it substantially.
double mean_edge_span(const Csr& g);

}  // namespace columbia::graph
