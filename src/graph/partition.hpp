// Multilevel k-way graph partitioner (METIS substitute).
//
// NSU3D feeds the adjacency graph of every multigrid level to METIS (paper
// Sec. III). This module implements the same multilevel scheme family:
//   1. coarsen by heavy-edge matching,
//   2. initial k-way partition by recursive region-growing bisection,
//   3. uncoarsen with boundary greedy (FM-style) refinement.
// Vertex weights support the line-contracted graphs (Fig. 6b) and Cart3D's
// cut-cell weighting; edge weights bias the matching toward strong couplings.
#pragma once

#include <vector>

#include "graph/csr.hpp"

namespace columbia::graph {

struct PartitionOptions {
  /// Allowed load imbalance: max part weight <= (1+imbalance)*ideal.
  real_t imbalance = 0.03;
  /// Refinement passes per uncoarsening level.
  int refine_passes = 4;
  /// Stop coarsening once the graph is this small (times nparts).
  index_t coarsen_to_per_part = 16;
  /// RNG seed for tie-breaking.
  std::uint64_t seed = 12345;
};

struct PartitionQuality {
  real_t edge_cut = 0;       // sum of weights of cut edges
  real_t imbalance = 0;      // max part weight / ideal - 1
  index_t nonempty_parts = 0;
};

/// Partitions g into nparts parts; returns one part id per vertex.
/// nparts >= 1; every id is in [0, nparts). Parts may be empty only when
/// the graph has fewer (weighted) vertices than parts — the paper itself
/// notes empty coarse-level partitions at 2008 CPUs (Sec. VI).
std::vector<index_t> partition(const Csr& g, index_t nparts,
                               const PartitionOptions& opt = {});

/// Edge cut / balance metrics of an existing assignment.
PartitionQuality evaluate_partition(const Csr& g,
                                    std::span<const index_t> part,
                                    index_t nparts);

/// Communication graph between parts: vertices = parts, edge (p,q) present
/// when any mesh edge straddles p and q; edge weight = number (or weight
/// sum) of straddling edges. This is what the machine model consumes.
Csr communication_graph(const Csr& g, std::span<const index_t> part,
                        index_t nparts);

}  // namespace columbia::graph
