#include "graph/csr.hpp"

#include <cmath>
#include <cstdlib>

#include "support/assert.hpp"

namespace columbia::graph {

namespace {

Csr build(index_t num_vertices,
          std::span<const std::pair<index_t, index_t>> edges,
          std::span<const real_t> edge_weights) {
  COLUMBIA_REQUIRE(num_vertices >= 0);
  COLUMBIA_REQUIRE(edge_weights.empty() || edge_weights.size() == edges.size());

  std::vector<index_t> deg(std::size_t(num_vertices), 0);
  for (const auto& [a, b] : edges) {
    COLUMBIA_REQUIRE(a >= 0 && a < num_vertices && b >= 0 && b < num_vertices);
    if (a == b) continue;
    ++deg[std::size_t(a)];
    ++deg[std::size_t(b)];
  }

  std::vector<index_t> xadj(std::size_t(num_vertices) + 1, 0);
  for (index_t v = 0; v < num_vertices; ++v)
    xadj[std::size_t(v) + 1] = xadj[std::size_t(v)] + deg[std::size_t(v)];

  std::vector<index_t> adjncy(std::size_t(xadj.back()));
  std::vector<real_t> ew;
  if (!edge_weights.empty()) ew.resize(adjncy.size());

  std::vector<index_t> fill(xadj.begin(), xadj.end() - 1);
  for (std::size_t e = 0; e < edges.size(); ++e) {
    const auto [a, b] = edges[e];
    if (a == b) continue;
    adjncy[std::size_t(fill[std::size_t(a)])] = b;
    adjncy[std::size_t(fill[std::size_t(b)])] = a;
    if (!ew.empty()) {
      ew[std::size_t(fill[std::size_t(a)])] = edge_weights[e];
      ew[std::size_t(fill[std::size_t(b)])] = edge_weights[e];
    }
    ++fill[std::size_t(a)];
    ++fill[std::size_t(b)];
  }

  return Csr::from_csr_arrays(std::move(xadj), std::move(adjncy),
                              std::move(ew));
}

}  // namespace

Csr Csr::from_csr_arrays(std::vector<index_t> xadj, std::vector<index_t> adjncy,
                         std::vector<real_t> edge_weights) {
  COLUMBIA_REQUIRE(!xadj.empty());
  COLUMBIA_REQUIRE(std::size_t(xadj.back()) == adjncy.size());
  COLUMBIA_REQUIRE(edge_weights.empty() ||
                   edge_weights.size() == adjncy.size());
  Csr g;
  g.xadj_ = std::move(xadj);
  g.adjncy_ = std::move(adjncy);
  g.eweights_ = std::move(edge_weights);
  return g;
}

Csr Csr::from_edges(index_t num_vertices,
                    std::span<const std::pair<index_t, index_t>> edges) {
  return build(num_vertices, edges, {});
}

Csr Csr::from_weighted_edges(index_t num_vertices,
                             std::span<const std::pair<index_t, index_t>> edges,
                             std::span<const real_t> edge_weights) {
  return build(num_vertices, edges, edge_weights);
}

real_t Csr::total_vertex_weight() const {
  if (vweights_.empty()) return real_t(num_vertices());
  real_t s = 0;
  for (real_t w : vweights_) s += w;
  return s;
}

index_t Csr::max_degree() const {
  index_t m = 0;
  for (index_t v = 0; v < num_vertices(); ++v) m = std::max(m, degree(v));
  return m;
}

Csr permute(const Csr& g, std::span<const index_t> perm) {
  const index_t n = g.num_vertices();
  COLUMBIA_REQUIRE(index_t(perm.size()) == n);
  std::vector<index_t> inv(std::size_t(n), kInvalidIndex);
  for (index_t i = 0; i < n; ++i) inv[std::size_t(perm[std::size_t(i)])] = i;
  for (index_t i = 0; i < n; ++i) COLUMBIA_REQUIRE(inv[std::size_t(i)] >= 0);

  std::vector<std::pair<index_t, index_t>> edges;
  std::vector<real_t> w;
  edges.reserve(std::size_t(g.num_directed_edges()) / 2);
  for (index_t v = 0; v < n; ++v) {
    const auto nbrs = g.neighbors(v);
    const auto ws = g.edge_weights(v);
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      if (nbrs[k] > v) {
        edges.emplace_back(inv[std::size_t(v)], inv[std::size_t(nbrs[k])]);
        if (!ws.empty()) w.push_back(ws[k]);
      }
    }
  }
  Csr out = w.empty() ? Csr::from_edges(n, edges)
                      : Csr::from_weighted_edges(n, edges, w);
  if (g.has_vertex_weights()) {
    std::vector<real_t> vw(std::size_t(n), 0.0);
    for (index_t i = 0; i < n; ++i)
      vw[std::size_t(i)] = g.vertex_weight(perm[std::size_t(i)]);
    out.set_vertex_weights(std::move(vw));
  }
  return out;
}

double mean_edge_span(const Csr& g) {
  double total = 0;
  std::size_t count = 0;
  for (index_t v = 0; v < g.num_vertices(); ++v) {
    for (index_t u : g.neighbors(v)) {
      if (u > v) {
        total += std::abs(double(u) - double(v));
        ++count;
      }
    }
  }
  return count == 0 ? 0.0 : total / double(count);
}

}  // namespace columbia::graph
